# Empty dependencies file for ablation_adaptive_lease.
# This may be replaced when dependencies are built.
