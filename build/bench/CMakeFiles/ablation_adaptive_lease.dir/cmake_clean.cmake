file(REMOVE_RECURSE
  "CMakeFiles/ablation_adaptive_lease.dir/ablation_adaptive_lease.cc.o"
  "CMakeFiles/ablation_adaptive_lease.dir/ablation_adaptive_lease.cc.o.d"
  "ablation_adaptive_lease"
  "ablation_adaptive_lease.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_adaptive_lease.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
