# Empty dependencies file for ablation_noc_topology.
# This may be replaced when dependencies are built.
