
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_noc_topology.cc" "bench/CMakeFiles/ablation_noc_topology.dir/ablation_noc_topology.cc.o" "gcc" "bench/CMakeFiles/ablation_noc_topology.dir/ablation_noc_topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/gtsc_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/gtsc_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/CMakeFiles/gtsc_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/gtsc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gtsc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/gtsc_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/gtsc_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/gtsc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gtsc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
