file(REMOVE_RECURSE
  "CMakeFiles/table2_validation.dir/table2_validation.cc.o"
  "CMakeFiles/table2_validation.dir/table2_validation.cc.o.d"
  "table2_validation"
  "table2_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
