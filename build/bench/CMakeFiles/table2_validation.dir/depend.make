# Empty dependencies file for table2_validation.
# This may be replaced when dependencies are built.
