# Empty compiler generated dependencies file for fig17_l1_energy.
# This may be replaced when dependencies are built.
