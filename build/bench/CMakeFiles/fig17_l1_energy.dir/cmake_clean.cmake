file(REMOVE_RECURSE
  "CMakeFiles/fig17_l1_energy.dir/fig17_l1_energy.cc.o"
  "CMakeFiles/fig17_l1_energy.dir/fig17_l1_energy.cc.o.d"
  "fig17_l1_energy"
  "fig17_l1_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_l1_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
