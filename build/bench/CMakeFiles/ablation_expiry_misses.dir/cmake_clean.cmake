file(REMOVE_RECURSE
  "CMakeFiles/ablation_expiry_misses.dir/ablation_expiry_misses.cc.o"
  "CMakeFiles/ablation_expiry_misses.dir/ablation_expiry_misses.cc.o.d"
  "ablation_expiry_misses"
  "ablation_expiry_misses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_expiry_misses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
