# Empty dependencies file for ablation_expiry_misses.
# This may be replaced when dependencies are built.
