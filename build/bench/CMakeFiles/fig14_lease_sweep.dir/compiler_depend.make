# Empty compiler generated dependencies file for fig14_lease_sweep.
# This may be replaced when dependencies are built.
