# Empty dependencies file for fig15_noc_traffic.
# This may be replaced when dependencies are built.
