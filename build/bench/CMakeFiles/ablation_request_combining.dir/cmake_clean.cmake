file(REMOVE_RECURSE
  "CMakeFiles/ablation_request_combining.dir/ablation_request_combining.cc.o"
  "CMakeFiles/ablation_request_combining.dir/ablation_request_combining.cc.o.d"
  "ablation_request_combining"
  "ablation_request_combining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_request_combining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
