# Empty dependencies file for ablation_request_combining.
# This may be replaced when dependencies are built.
