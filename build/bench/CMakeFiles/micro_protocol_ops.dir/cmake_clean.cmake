file(REMOVE_RECURSE
  "CMakeFiles/micro_protocol_ops.dir/micro_protocol_ops.cc.o"
  "CMakeFiles/micro_protocol_ops.dir/micro_protocol_ops.cc.o.d"
  "micro_protocol_ops"
  "micro_protocol_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_protocol_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
