# Empty compiler generated dependencies file for ablation_tc_lease.
# This may be replaced when dependencies are built.
