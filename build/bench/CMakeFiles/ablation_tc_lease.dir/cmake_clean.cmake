file(REMOVE_RECURSE
  "CMakeFiles/ablation_tc_lease.dir/ablation_tc_lease.cc.o"
  "CMakeFiles/ablation_tc_lease.dir/ablation_tc_lease.cc.o.d"
  "ablation_tc_lease"
  "ablation_tc_lease.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tc_lease.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
