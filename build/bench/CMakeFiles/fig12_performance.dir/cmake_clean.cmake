file(REMOVE_RECURSE
  "CMakeFiles/fig12_performance.dir/fig12_performance.cc.o"
  "CMakeFiles/fig12_performance.dir/fig12_performance.cc.o.d"
  "fig12_performance"
  "fig12_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
