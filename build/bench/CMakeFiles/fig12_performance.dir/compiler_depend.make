# Empty compiler generated dependencies file for fig12_performance.
# This may be replaced when dependencies are built.
