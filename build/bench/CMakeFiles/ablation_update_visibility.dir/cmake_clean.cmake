file(REMOVE_RECURSE
  "CMakeFiles/ablation_update_visibility.dir/ablation_update_visibility.cc.o"
  "CMakeFiles/ablation_update_visibility.dir/ablation_update_visibility.cc.o.d"
  "ablation_update_visibility"
  "ablation_update_visibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_update_visibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
