# Empty dependencies file for fig13_stalls.
# This may be replaced when dependencies are built.
