file(REMOVE_RECURSE
  "CMakeFiles/fig13_stalls.dir/fig13_stalls.cc.o"
  "CMakeFiles/fig13_stalls.dir/fig13_stalls.cc.o.d"
  "fig13_stalls"
  "fig13_stalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_stalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
