# Empty compiler generated dependencies file for gpu_scheduler_test.
# This may be replaced when dependencies are built.
