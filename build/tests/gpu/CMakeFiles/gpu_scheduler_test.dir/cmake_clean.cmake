file(REMOVE_RECURSE
  "CMakeFiles/gpu_scheduler_test.dir/scheduler_test.cc.o"
  "CMakeFiles/gpu_scheduler_test.dir/scheduler_test.cc.o.d"
  "gpu_scheduler_test"
  "gpu_scheduler_test.pdb"
  "gpu_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
