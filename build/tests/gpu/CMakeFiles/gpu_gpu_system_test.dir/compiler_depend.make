# Empty compiler generated dependencies file for gpu_gpu_system_test.
# This may be replaced when dependencies are built.
