file(REMOVE_RECURSE
  "CMakeFiles/gpu_gpu_system_test.dir/gpu_system_test.cc.o"
  "CMakeFiles/gpu_gpu_system_test.dir/gpu_system_test.cc.o.d"
  "gpu_gpu_system_test"
  "gpu_gpu_system_test.pdb"
  "gpu_gpu_system_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_gpu_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
