# Empty dependencies file for gpu_coalescer_test.
# This may be replaced when dependencies are built.
