file(REMOVE_RECURSE
  "CMakeFiles/gpu_coalescer_test.dir/coalescer_test.cc.o"
  "CMakeFiles/gpu_coalescer_test.dir/coalescer_test.cc.o.d"
  "gpu_coalescer_test"
  "gpu_coalescer_test.pdb"
  "gpu_coalescer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_coalescer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
