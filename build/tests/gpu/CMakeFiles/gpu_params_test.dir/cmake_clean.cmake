file(REMOVE_RECURSE
  "CMakeFiles/gpu_params_test.dir/params_test.cc.o"
  "CMakeFiles/gpu_params_test.dir/params_test.cc.o.d"
  "gpu_params_test"
  "gpu_params_test.pdb"
  "gpu_params_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_params_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
