# Empty dependencies file for gpu_params_test.
# This may be replaced when dependencies are built.
