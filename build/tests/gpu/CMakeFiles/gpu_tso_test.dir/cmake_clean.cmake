file(REMOVE_RECURSE
  "CMakeFiles/gpu_tso_test.dir/tso_test.cc.o"
  "CMakeFiles/gpu_tso_test.dir/tso_test.cc.o.d"
  "gpu_tso_test"
  "gpu_tso_test.pdb"
  "gpu_tso_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_tso_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
