# Empty dependencies file for gpu_tso_test.
# This may be replaced when dependencies are built.
