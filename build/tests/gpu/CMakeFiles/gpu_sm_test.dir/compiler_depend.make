# Empty compiler generated dependencies file for gpu_sm_test.
# This may be replaced when dependencies are built.
