file(REMOVE_RECURSE
  "CMakeFiles/gpu_sm_test.dir/sm_test.cc.o"
  "CMakeFiles/gpu_sm_test.dir/sm_test.cc.o.d"
  "gpu_sm_test"
  "gpu_sm_test.pdb"
  "gpu_sm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_sm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
