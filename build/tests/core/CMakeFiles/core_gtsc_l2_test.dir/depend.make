# Empty dependencies file for core_gtsc_l2_test.
# This may be replaced when dependencies are built.
