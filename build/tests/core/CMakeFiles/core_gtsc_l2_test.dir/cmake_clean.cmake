file(REMOVE_RECURSE
  "CMakeFiles/core_gtsc_l2_test.dir/gtsc_l2_test.cc.o"
  "CMakeFiles/core_gtsc_l2_test.dir/gtsc_l2_test.cc.o.d"
  "core_gtsc_l2_test"
  "core_gtsc_l2_test.pdb"
  "core_gtsc_l2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_gtsc_l2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
