# Empty compiler generated dependencies file for core_write_buffer_test.
# This may be replaced when dependencies are built.
