file(REMOVE_RECURSE
  "CMakeFiles/core_write_buffer_test.dir/write_buffer_test.cc.o"
  "CMakeFiles/core_write_buffer_test.dir/write_buffer_test.cc.o.d"
  "core_write_buffer_test"
  "core_write_buffer_test.pdb"
  "core_write_buffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_write_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
