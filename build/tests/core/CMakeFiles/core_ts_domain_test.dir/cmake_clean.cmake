file(REMOVE_RECURSE
  "CMakeFiles/core_ts_domain_test.dir/ts_domain_test.cc.o"
  "CMakeFiles/core_ts_domain_test.dir/ts_domain_test.cc.o.d"
  "core_ts_domain_test"
  "core_ts_domain_test.pdb"
  "core_ts_domain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_ts_domain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
