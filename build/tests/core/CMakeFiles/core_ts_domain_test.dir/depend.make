# Empty dependencies file for core_ts_domain_test.
# This may be replaced when dependencies are built.
