file(REMOVE_RECURSE
  "CMakeFiles/core_gtsc_l1_test.dir/gtsc_l1_test.cc.o"
  "CMakeFiles/core_gtsc_l1_test.dir/gtsc_l1_test.cc.o.d"
  "core_gtsc_l1_test"
  "core_gtsc_l1_test.pdb"
  "core_gtsc_l1_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_gtsc_l1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
