# Empty dependencies file for core_gtsc_l1_test.
# This may be replaced when dependencies are built.
