# CMake generated Testfile for 
# Source directory: /root/repo/tests/core
# Build directory: /root/repo/build/tests/core
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core/core_ts_domain_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_gtsc_l1_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_gtsc_l2_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_write_buffer_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_gtsc_l1_corner_test[1]_include.cmake")
