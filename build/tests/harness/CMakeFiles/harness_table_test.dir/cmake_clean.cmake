file(REMOVE_RECURSE
  "CMakeFiles/harness_table_test.dir/table_test.cc.o"
  "CMakeFiles/harness_table_test.dir/table_test.cc.o.d"
  "harness_table_test"
  "harness_table_test.pdb"
  "harness_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harness_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
