# Empty compiler generated dependencies file for harness_table_test.
# This may be replaced when dependencies are built.
