file(REMOVE_RECURSE
  "CMakeFiles/harness_runner_test.dir/runner_test.cc.o"
  "CMakeFiles/harness_runner_test.dir/runner_test.cc.o.d"
  "harness_runner_test"
  "harness_runner_test.pdb"
  "harness_runner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harness_runner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
