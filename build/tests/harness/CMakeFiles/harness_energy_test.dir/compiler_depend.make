# Empty compiler generated dependencies file for harness_energy_test.
# This may be replaced when dependencies are built.
