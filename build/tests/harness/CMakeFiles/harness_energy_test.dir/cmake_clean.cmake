file(REMOVE_RECURSE
  "CMakeFiles/harness_energy_test.dir/energy_test.cc.o"
  "CMakeFiles/harness_energy_test.dir/energy_test.cc.o.d"
  "harness_energy_test"
  "harness_energy_test.pdb"
  "harness_energy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harness_energy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
