# Empty dependencies file for harness_report_test.
# This may be replaced when dependencies are built.
