file(REMOVE_RECURSE
  "CMakeFiles/harness_report_test.dir/report_test.cc.o"
  "CMakeFiles/harness_report_test.dir/report_test.cc.o.d"
  "harness_report_test"
  "harness_report_test.pdb"
  "harness_report_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harness_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
