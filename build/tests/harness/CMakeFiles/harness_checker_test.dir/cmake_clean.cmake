file(REMOVE_RECURSE
  "CMakeFiles/harness_checker_test.dir/checker_test.cc.o"
  "CMakeFiles/harness_checker_test.dir/checker_test.cc.o.d"
  "harness_checker_test"
  "harness_checker_test.pdb"
  "harness_checker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harness_checker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
