# CMake generated Testfile for 
# Source directory: /root/repo/tests/integration
# Build directory: /root/repo/build/tests/integration
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/integration/integration_smoke_test[1]_include.cmake")
include("/root/repo/build/tests/integration/integration_consistency_test[1]_include.cmake")
include("/root/repo/build/tests/integration/integration_property_test[1]_include.cmake")
include("/root/repo/build/tests/integration/integration_system_invariants_test[1]_include.cmake")
include("/root/repo/build/tests/integration/integration_benchmark_matrix_test[1]_include.cmake")
include("/root/repo/build/tests/integration/integration_golden_test[1]_include.cmake")
