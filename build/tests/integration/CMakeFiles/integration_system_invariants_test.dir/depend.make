# Empty dependencies file for integration_system_invariants_test.
# This may be replaced when dependencies are built.
