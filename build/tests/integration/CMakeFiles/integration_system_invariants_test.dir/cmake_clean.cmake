file(REMOVE_RECURSE
  "CMakeFiles/integration_system_invariants_test.dir/system_invariants_test.cc.o"
  "CMakeFiles/integration_system_invariants_test.dir/system_invariants_test.cc.o.d"
  "integration_system_invariants_test"
  "integration_system_invariants_test.pdb"
  "integration_system_invariants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_system_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
