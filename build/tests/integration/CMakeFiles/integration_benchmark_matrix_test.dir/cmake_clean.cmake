file(REMOVE_RECURSE
  "CMakeFiles/integration_benchmark_matrix_test.dir/benchmark_matrix_test.cc.o"
  "CMakeFiles/integration_benchmark_matrix_test.dir/benchmark_matrix_test.cc.o.d"
  "integration_benchmark_matrix_test"
  "integration_benchmark_matrix_test.pdb"
  "integration_benchmark_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_benchmark_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
