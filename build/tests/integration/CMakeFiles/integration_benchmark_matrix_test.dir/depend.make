# Empty dependencies file for integration_benchmark_matrix_test.
# This may be replaced when dependencies are built.
