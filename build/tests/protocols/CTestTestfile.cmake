# CMake generated Testfile for 
# Source directory: /root/repo/tests/protocols
# Build directory: /root/repo/build/tests/protocols
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/protocols/protocols_builders_test[1]_include.cmake")
include("/root/repo/build/tests/protocols/protocols_tc_test[1]_include.cmake")
include("/root/repo/build/tests/protocols/protocols_baseline_test[1]_include.cmake")
include("/root/repo/build/tests/protocols/protocols_tc_corner_test[1]_include.cmake")
