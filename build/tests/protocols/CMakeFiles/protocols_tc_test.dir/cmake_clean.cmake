file(REMOVE_RECURSE
  "CMakeFiles/protocols_tc_test.dir/tc_test.cc.o"
  "CMakeFiles/protocols_tc_test.dir/tc_test.cc.o.d"
  "protocols_tc_test"
  "protocols_tc_test.pdb"
  "protocols_tc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocols_tc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
