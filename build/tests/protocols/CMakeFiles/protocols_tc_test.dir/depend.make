# Empty dependencies file for protocols_tc_test.
# This may be replaced when dependencies are built.
