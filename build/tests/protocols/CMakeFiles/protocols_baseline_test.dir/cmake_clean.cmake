file(REMOVE_RECURSE
  "CMakeFiles/protocols_baseline_test.dir/baseline_test.cc.o"
  "CMakeFiles/protocols_baseline_test.dir/baseline_test.cc.o.d"
  "protocols_baseline_test"
  "protocols_baseline_test.pdb"
  "protocols_baseline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocols_baseline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
