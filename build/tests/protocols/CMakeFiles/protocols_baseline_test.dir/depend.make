# Empty dependencies file for protocols_baseline_test.
# This may be replaced when dependencies are built.
