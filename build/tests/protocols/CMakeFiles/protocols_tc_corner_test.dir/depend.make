# Empty dependencies file for protocols_tc_corner_test.
# This may be replaced when dependencies are built.
