# Empty dependencies file for protocols_builders_test.
# This may be replaced when dependencies are built.
