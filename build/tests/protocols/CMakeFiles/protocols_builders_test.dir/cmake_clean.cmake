file(REMOVE_RECURSE
  "CMakeFiles/protocols_builders_test.dir/builders_test.cc.o"
  "CMakeFiles/protocols_builders_test.dir/builders_test.cc.o.d"
  "protocols_builders_test"
  "protocols_builders_test.pdb"
  "protocols_builders_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocols_builders_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
