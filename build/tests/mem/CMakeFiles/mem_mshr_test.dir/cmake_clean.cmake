file(REMOVE_RECURSE
  "CMakeFiles/mem_mshr_test.dir/mshr_test.cc.o"
  "CMakeFiles/mem_mshr_test.dir/mshr_test.cc.o.d"
  "mem_mshr_test"
  "mem_mshr_test.pdb"
  "mem_mshr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_mshr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
