# Empty dependencies file for mem_mshr_test.
# This may be replaced when dependencies are built.
