# Empty dependencies file for mem_packet_test.
# This may be replaced when dependencies are built.
