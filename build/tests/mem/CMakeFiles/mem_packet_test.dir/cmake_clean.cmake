file(REMOVE_RECURSE
  "CMakeFiles/mem_packet_test.dir/packet_test.cc.o"
  "CMakeFiles/mem_packet_test.dir/packet_test.cc.o.d"
  "mem_packet_test"
  "mem_packet_test.pdb"
  "mem_packet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_packet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
