# Empty dependencies file for mem_cache_array_test.
# This may be replaced when dependencies are built.
