file(REMOVE_RECURSE
  "CMakeFiles/workloads_trace_file_test.dir/trace_file_test.cc.o"
  "CMakeFiles/workloads_trace_file_test.dir/trace_file_test.cc.o.d"
  "workloads_trace_file_test"
  "workloads_trace_file_test.pdb"
  "workloads_trace_file_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_trace_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
