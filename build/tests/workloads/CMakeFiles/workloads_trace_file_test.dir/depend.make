# Empty dependencies file for workloads_trace_file_test.
# This may be replaced when dependencies are built.
