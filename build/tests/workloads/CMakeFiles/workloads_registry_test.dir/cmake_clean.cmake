file(REMOVE_RECURSE
  "CMakeFiles/workloads_registry_test.dir/registry_test.cc.o"
  "CMakeFiles/workloads_registry_test.dir/registry_test.cc.o.d"
  "workloads_registry_test"
  "workloads_registry_test.pdb"
  "workloads_registry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
