# Empty dependencies file for workloads_behavior_test.
# This may be replaced when dependencies are built.
