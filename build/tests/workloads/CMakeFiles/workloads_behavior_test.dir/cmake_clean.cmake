file(REMOVE_RECURSE
  "CMakeFiles/workloads_behavior_test.dir/behavior_test.cc.o"
  "CMakeFiles/workloads_behavior_test.dir/behavior_test.cc.o.d"
  "workloads_behavior_test"
  "workloads_behavior_test.pdb"
  "workloads_behavior_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_behavior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
