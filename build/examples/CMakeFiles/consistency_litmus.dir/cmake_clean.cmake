file(REMOVE_RECURSE
  "CMakeFiles/consistency_litmus.dir/consistency_litmus.cpp.o"
  "CMakeFiles/consistency_litmus.dir/consistency_litmus.cpp.o.d"
  "consistency_litmus"
  "consistency_litmus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consistency_litmus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
