# Empty dependencies file for consistency_litmus.
# This may be replaced when dependencies are built.
