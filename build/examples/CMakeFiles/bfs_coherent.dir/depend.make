# Empty dependencies file for bfs_coherent.
# This may be replaced when dependencies are built.
