file(REMOVE_RECURSE
  "CMakeFiles/bfs_coherent.dir/bfs_coherent.cpp.o"
  "CMakeFiles/bfs_coherent.dir/bfs_coherent.cpp.o.d"
  "bfs_coherent"
  "bfs_coherent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfs_coherent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
