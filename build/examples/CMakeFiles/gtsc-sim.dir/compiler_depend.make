# Empty compiler generated dependencies file for gtsc-sim.
# This may be replaced when dependencies are built.
