# Empty dependencies file for gtsc-sim.
# This may be replaced when dependencies are built.
