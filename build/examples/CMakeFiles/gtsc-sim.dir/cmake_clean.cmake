file(REMOVE_RECURSE
  "CMakeFiles/gtsc-sim.dir/gtsc_sim.cpp.o"
  "CMakeFiles/gtsc-sim.dir/gtsc_sim.cpp.o.d"
  "gtsc-sim"
  "gtsc-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtsc-sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
