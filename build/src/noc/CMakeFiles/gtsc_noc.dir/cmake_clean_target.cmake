file(REMOVE_RECURSE
  "libgtsc_noc.a"
)
