file(REMOVE_RECURSE
  "CMakeFiles/gtsc_noc.dir/crossbar.cc.o"
  "CMakeFiles/gtsc_noc.dir/crossbar.cc.o.d"
  "CMakeFiles/gtsc_noc.dir/mesh.cc.o"
  "CMakeFiles/gtsc_noc.dir/mesh.cc.o.d"
  "libgtsc_noc.a"
  "libgtsc_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtsc_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
