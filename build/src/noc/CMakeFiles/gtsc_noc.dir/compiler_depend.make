# Empty compiler generated dependencies file for gtsc_noc.
# This may be replaced when dependencies are built.
