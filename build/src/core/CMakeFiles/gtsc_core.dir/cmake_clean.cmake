file(REMOVE_RECURSE
  "CMakeFiles/gtsc_core.dir/gtsc_l1.cc.o"
  "CMakeFiles/gtsc_core.dir/gtsc_l1.cc.o.d"
  "CMakeFiles/gtsc_core.dir/gtsc_l2.cc.o"
  "CMakeFiles/gtsc_core.dir/gtsc_l2.cc.o.d"
  "libgtsc_core.a"
  "libgtsc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtsc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
