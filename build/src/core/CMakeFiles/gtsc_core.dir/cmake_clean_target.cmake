file(REMOVE_RECURSE
  "libgtsc_core.a"
)
