# Empty dependencies file for gtsc_core.
# This may be replaced when dependencies are built.
