file(REMOVE_RECURSE
  "libgtsc_mem.a"
)
