file(REMOVE_RECURSE
  "CMakeFiles/gtsc_mem.dir/cache_array.cc.o"
  "CMakeFiles/gtsc_mem.dir/cache_array.cc.o.d"
  "CMakeFiles/gtsc_mem.dir/dram.cc.o"
  "CMakeFiles/gtsc_mem.dir/dram.cc.o.d"
  "CMakeFiles/gtsc_mem.dir/packet.cc.o"
  "CMakeFiles/gtsc_mem.dir/packet.cc.o.d"
  "libgtsc_mem.a"
  "libgtsc_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtsc_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
