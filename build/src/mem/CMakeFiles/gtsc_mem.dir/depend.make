# Empty dependencies file for gtsc_mem.
# This may be replaced when dependencies are built.
