file(REMOVE_RECURSE
  "libgtsc_harness.a"
)
