# Empty dependencies file for gtsc_harness.
# This may be replaced when dependencies are built.
