file(REMOVE_RECURSE
  "CMakeFiles/gtsc_harness.dir/checker.cc.o"
  "CMakeFiles/gtsc_harness.dir/checker.cc.o.d"
  "CMakeFiles/gtsc_harness.dir/report.cc.o"
  "CMakeFiles/gtsc_harness.dir/report.cc.o.d"
  "CMakeFiles/gtsc_harness.dir/runner.cc.o"
  "CMakeFiles/gtsc_harness.dir/runner.cc.o.d"
  "CMakeFiles/gtsc_harness.dir/table.cc.o"
  "CMakeFiles/gtsc_harness.dir/table.cc.o.d"
  "libgtsc_harness.a"
  "libgtsc_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtsc_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
