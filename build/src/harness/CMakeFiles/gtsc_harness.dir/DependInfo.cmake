
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harness/checker.cc" "src/harness/CMakeFiles/gtsc_harness.dir/checker.cc.o" "gcc" "src/harness/CMakeFiles/gtsc_harness.dir/checker.cc.o.d"
  "/root/repo/src/harness/report.cc" "src/harness/CMakeFiles/gtsc_harness.dir/report.cc.o" "gcc" "src/harness/CMakeFiles/gtsc_harness.dir/report.cc.o.d"
  "/root/repo/src/harness/runner.cc" "src/harness/CMakeFiles/gtsc_harness.dir/runner.cc.o" "gcc" "src/harness/CMakeFiles/gtsc_harness.dir/runner.cc.o.d"
  "/root/repo/src/harness/table.cc" "src/harness/CMakeFiles/gtsc_harness.dir/table.cc.o" "gcc" "src/harness/CMakeFiles/gtsc_harness.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/energy/CMakeFiles/gtsc_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/CMakeFiles/gtsc_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/gtsc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gtsc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/gtsc_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gtsc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/gtsc_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/gtsc_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
