file(REMOVE_RECURSE
  "CMakeFiles/gtsc_energy.dir/energy_model.cc.o"
  "CMakeFiles/gtsc_energy.dir/energy_model.cc.o.d"
  "libgtsc_energy.a"
  "libgtsc_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtsc_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
