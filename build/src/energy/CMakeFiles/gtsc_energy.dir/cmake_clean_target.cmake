file(REMOVE_RECURSE
  "libgtsc_energy.a"
)
