# Empty dependencies file for gtsc_energy.
# This may be replaced when dependencies are built.
