
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/coalescer.cc" "src/gpu/CMakeFiles/gtsc_gpu.dir/coalescer.cc.o" "gcc" "src/gpu/CMakeFiles/gtsc_gpu.dir/coalescer.cc.o.d"
  "/root/repo/src/gpu/gpu_system.cc" "src/gpu/CMakeFiles/gtsc_gpu.dir/gpu_system.cc.o" "gcc" "src/gpu/CMakeFiles/gtsc_gpu.dir/gpu_system.cc.o.d"
  "/root/repo/src/gpu/sm.cc" "src/gpu/CMakeFiles/gtsc_gpu.dir/sm.cc.o" "gcc" "src/gpu/CMakeFiles/gtsc_gpu.dir/sm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/gtsc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/gtsc_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gtsc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
