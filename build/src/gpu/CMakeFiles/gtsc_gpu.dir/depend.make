# Empty dependencies file for gtsc_gpu.
# This may be replaced when dependencies are built.
