file(REMOVE_RECURSE
  "libgtsc_gpu.a"
)
