file(REMOVE_RECURSE
  "CMakeFiles/gtsc_gpu.dir/coalescer.cc.o"
  "CMakeFiles/gtsc_gpu.dir/coalescer.cc.o.d"
  "CMakeFiles/gtsc_gpu.dir/gpu_system.cc.o"
  "CMakeFiles/gtsc_gpu.dir/gpu_system.cc.o.d"
  "CMakeFiles/gtsc_gpu.dir/sm.cc.o"
  "CMakeFiles/gtsc_gpu.dir/sm.cc.o.d"
  "libgtsc_gpu.a"
  "libgtsc_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtsc_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
