file(REMOVE_RECURSE
  "libgtsc_workloads.a"
)
