
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/coherent.cc" "src/workloads/CMakeFiles/gtsc_workloads.dir/coherent.cc.o" "gcc" "src/workloads/CMakeFiles/gtsc_workloads.dir/coherent.cc.o.d"
  "/root/repo/src/workloads/litmus.cc" "src/workloads/CMakeFiles/gtsc_workloads.dir/litmus.cc.o" "gcc" "src/workloads/CMakeFiles/gtsc_workloads.dir/litmus.cc.o.d"
  "/root/repo/src/workloads/private_set.cc" "src/workloads/CMakeFiles/gtsc_workloads.dir/private_set.cc.o" "gcc" "src/workloads/CMakeFiles/gtsc_workloads.dir/private_set.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/workloads/CMakeFiles/gtsc_workloads.dir/registry.cc.o" "gcc" "src/workloads/CMakeFiles/gtsc_workloads.dir/registry.cc.o.d"
  "/root/repo/src/workloads/trace_file.cc" "src/workloads/CMakeFiles/gtsc_workloads.dir/trace_file.cc.o" "gcc" "src/workloads/CMakeFiles/gtsc_workloads.dir/trace_file.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpu/CMakeFiles/gtsc_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gtsc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/gtsc_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/gtsc_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
