# Empty dependencies file for gtsc_workloads.
# This may be replaced when dependencies are built.
