file(REMOVE_RECURSE
  "CMakeFiles/gtsc_workloads.dir/coherent.cc.o"
  "CMakeFiles/gtsc_workloads.dir/coherent.cc.o.d"
  "CMakeFiles/gtsc_workloads.dir/litmus.cc.o"
  "CMakeFiles/gtsc_workloads.dir/litmus.cc.o.d"
  "CMakeFiles/gtsc_workloads.dir/private_set.cc.o"
  "CMakeFiles/gtsc_workloads.dir/private_set.cc.o.d"
  "CMakeFiles/gtsc_workloads.dir/registry.cc.o"
  "CMakeFiles/gtsc_workloads.dir/registry.cc.o.d"
  "CMakeFiles/gtsc_workloads.dir/trace_file.cc.o"
  "CMakeFiles/gtsc_workloads.dir/trace_file.cc.o.d"
  "libgtsc_workloads.a"
  "libgtsc_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtsc_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
