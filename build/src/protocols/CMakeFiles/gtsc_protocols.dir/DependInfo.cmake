
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocols/builders.cc" "src/protocols/CMakeFiles/gtsc_protocols.dir/builders.cc.o" "gcc" "src/protocols/CMakeFiles/gtsc_protocols.dir/builders.cc.o.d"
  "/root/repo/src/protocols/no_l1.cc" "src/protocols/CMakeFiles/gtsc_protocols.dir/no_l1.cc.o" "gcc" "src/protocols/CMakeFiles/gtsc_protocols.dir/no_l1.cc.o.d"
  "/root/repo/src/protocols/noncoh_l1.cc" "src/protocols/CMakeFiles/gtsc_protocols.dir/noncoh_l1.cc.o" "gcc" "src/protocols/CMakeFiles/gtsc_protocols.dir/noncoh_l1.cc.o.d"
  "/root/repo/src/protocols/simple_l2.cc" "src/protocols/CMakeFiles/gtsc_protocols.dir/simple_l2.cc.o" "gcc" "src/protocols/CMakeFiles/gtsc_protocols.dir/simple_l2.cc.o.d"
  "/root/repo/src/protocols/tc_l1.cc" "src/protocols/CMakeFiles/gtsc_protocols.dir/tc_l1.cc.o" "gcc" "src/protocols/CMakeFiles/gtsc_protocols.dir/tc_l1.cc.o.d"
  "/root/repo/src/protocols/tc_l2.cc" "src/protocols/CMakeFiles/gtsc_protocols.dir/tc_l2.cc.o" "gcc" "src/protocols/CMakeFiles/gtsc_protocols.dir/tc_l2.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gtsc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/gtsc_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/gtsc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gtsc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/gtsc_noc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
