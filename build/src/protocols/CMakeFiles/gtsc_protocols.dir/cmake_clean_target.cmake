file(REMOVE_RECURSE
  "libgtsc_protocols.a"
)
