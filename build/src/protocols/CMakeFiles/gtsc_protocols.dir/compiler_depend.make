# Empty compiler generated dependencies file for gtsc_protocols.
# This may be replaced when dependencies are built.
