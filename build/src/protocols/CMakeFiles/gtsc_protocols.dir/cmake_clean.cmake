file(REMOVE_RECURSE
  "CMakeFiles/gtsc_protocols.dir/builders.cc.o"
  "CMakeFiles/gtsc_protocols.dir/builders.cc.o.d"
  "CMakeFiles/gtsc_protocols.dir/no_l1.cc.o"
  "CMakeFiles/gtsc_protocols.dir/no_l1.cc.o.d"
  "CMakeFiles/gtsc_protocols.dir/noncoh_l1.cc.o"
  "CMakeFiles/gtsc_protocols.dir/noncoh_l1.cc.o.d"
  "CMakeFiles/gtsc_protocols.dir/simple_l2.cc.o"
  "CMakeFiles/gtsc_protocols.dir/simple_l2.cc.o.d"
  "CMakeFiles/gtsc_protocols.dir/tc_l1.cc.o"
  "CMakeFiles/gtsc_protocols.dir/tc_l1.cc.o.d"
  "CMakeFiles/gtsc_protocols.dir/tc_l2.cc.o"
  "CMakeFiles/gtsc_protocols.dir/tc_l2.cc.o.d"
  "libgtsc_protocols.a"
  "libgtsc_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtsc_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
