# Empty dependencies file for gtsc_sim.
# This may be replaced when dependencies are built.
