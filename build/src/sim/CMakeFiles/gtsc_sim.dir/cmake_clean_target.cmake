file(REMOVE_RECURSE
  "libgtsc_sim.a"
)
