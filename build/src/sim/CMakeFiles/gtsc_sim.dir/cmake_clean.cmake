file(REMOVE_RECURSE
  "CMakeFiles/gtsc_sim.dir/config.cc.o"
  "CMakeFiles/gtsc_sim.dir/config.cc.o.d"
  "CMakeFiles/gtsc_sim.dir/log.cc.o"
  "CMakeFiles/gtsc_sim.dir/log.cc.o.d"
  "CMakeFiles/gtsc_sim.dir/stats.cc.o"
  "CMakeFiles/gtsc_sim.dir/stats.cc.o.d"
  "libgtsc_sim.a"
  "libgtsc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtsc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
