/**
 * @file
 * Domain example: level-synchronized BFS — the paper's motivating
 * irregular workload — run on every protocol/consistency pair, with
 * a side-by-side comparison of cycles, L1 behaviour, traffic and
 * energy. Shows why timestamp coherence matters for irregular
 * GPU workloads with inter-SM read-write sharing.
 *
 * Usage: bfs_coherent [key=value ...]
 */

#include <cstdio>

#include "harness/runner.hh"
#include "harness/table.hh"

int
main(int argc, char **argv)
{
    using namespace gtsc;
    sim::Config cfg = harness::benchConfig();
    cfg.setBool("check.enabled", true); // demonstrate checked runs
    for (int i = 1; i < argc; ++i) {
        if (!cfg.parseOverride(argv[i])) {
            std::fprintf(stderr, "bad override '%s'\n", argv[i]);
            return 1;
        }
    }

    struct Cfg
    {
        const char *proto;
        const char *cons;
        const char *label;
    };
    const Cfg configs[] = {
        {"nol1", "rc", "BL (no L1)"}, {"tc", "sc", "TC-SC"},
        {"tc", "rc", "TC-RC"},        {"gtsc", "sc", "G-TSC-SC"},
        {"gtsc", "rc", "G-TSC-RC"},
    };

    harness::Table table({"config", "cycles", "speedup", "L1 hit%",
                          "renewals", "NoC KB", "energy uJ",
                          "violations"});
    double base = 0;
    for (const Cfg &c : configs) {
        harness::RunResult r =
            harness::runOne(cfg, c.proto, c.cons, "bfs");
        if (base == 0)
            base = static_cast<double>(r.cycles);
        double probes = static_cast<double>(
            r.l1Hits + r.l1MissCold + r.l1MissExpired);
        table.row(c.label);
        table.cellInt(r.cycles);
        table.cell(base / static_cast<double>(r.cycles));
        table.cell(probes > 0 ? 100.0 * r.l1Hits / probes : 0.0, 1);
        table.cellInt(r.renewalsSent);
        table.cell(r.nocBytes / 1024.0, 1);
        table.cell(r.energy.total() * 1e6, 1);
        table.cellInt(r.checkerViolations);
    }

    std::printf("BFS (3 level-synchronized kernels) across "
                "coherence protocols\n\n%s\n",
                table.toString().c_str());
    std::printf("G-TSC services frontier/visited sharing with "
                "logical-time renewals instead of physical leases:\n"
                "no write stalls, data-less renewals, and no global "
                "synchronized counters.\n");
    return 0;
}
