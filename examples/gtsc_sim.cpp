/**
 * @file
 * gtsc_sim — the command-line driver for the simulator.
 *
 *   gtsc_sim run <protocol> <sc|tso|rc> <workload> [key=value ...]
 *       Run one simulation and print its summary and statistics.
 *       Options: --csv/--json <file> write machine-readable results,
 *                --config <file> loads key=value lines first,
 *                --stats dumps every raw counter, -v / -vv logging.
 *
 *   gtsc_sim sweep <workload> [key=value ...] [--csv <file>]
 *       Run every (protocol, consistency) combination on a workload
 *       and print a comparison table.
 *
 *   gtsc_sim list
 *       List workloads, protocols and consistency models.
 *
 *   gtsc_sim config [key=value ...]
 *       Print the effective configuration a run would use.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/table.hh"
#include "sim/log.hh"
#include "workloads/registry.hh"

namespace
{

using namespace gtsc;

struct Args
{
    std::vector<std::string> positional;
    std::vector<std::string> overrides;
    std::string csvPath;
    std::string jsonPath;
    std::string configPath;
    bool dumpStats = false;
};

Args
parse(int argc, char **argv, int first)
{
    Args args;
    for (int i = first; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--csv" && i + 1 < argc) {
            args.csvPath = argv[++i];
        } else if (a == "--json" && i + 1 < argc) {
            args.jsonPath = argv[++i];
        } else if (a == "--config" && i + 1 < argc) {
            args.configPath = argv[++i];
        } else if (a == "--stats") {
            args.dumpStats = true;
        } else if (a == "-v") {
            sim::setLogLevel(1);
        } else if (a == "-vv") {
            sim::setLogLevel(2);
        } else if (a.find('=') != std::string::npos) {
            args.overrides.push_back(a);
        } else {
            args.positional.push_back(a);
        }
    }
    return args;
}

sim::Config
configFor(const Args &args)
{
    sim::Config cfg = harness::benchConfig();
    if (!args.configPath.empty())
        cfg.loadFile(args.configPath);
    cfg.parseOverrides(args.overrides); // CLI overrides the file
    return cfg;
}

int
cmdRun(const Args &args)
{
    if (args.positional.size() != 3) {
        std::fprintf(stderr,
                     "usage: gtsc_sim run <protocol> <sc|tso|rc> "
                     "<workload> [key=value ...]\n");
        return 2;
    }
    sim::Config cfg = configFor(args);
    harness::RunResult r =
        harness::runOne(cfg, args.positional[0], args.positional[1],
                        args.positional[2]);
    std::printf("%s\n", harness::summaryLine(r).c_str());
    if (args.dumpStats)
        std::printf("%s", r.stats.toString().c_str());
    if (!args.csvPath.empty())
        harness::writeCsv(args.csvPath, {r});
    if (!args.jsonPath.empty())
        harness::writeJson(args.jsonPath, {r});
    return (r.checkerViolations == 0 && r.verified) ? 0 : 1;
}

int
cmdSweep(const Args &args)
{
    if (args.positional.size() != 1) {
        std::fprintf(stderr, "usage: gtsc_sim sweep <workload> "
                             "[key=value ...] [--csv <file>]\n");
        return 2;
    }
    const std::string &wl = args.positional[0];
    sim::Config cfg = configFor(args);

    harness::Table table({"protocol", "model", "cycles", "L1 hit%",
                          "NoC KB", "energy uJ", "violations"});
    std::vector<harness::RunResult> all;
    for (const char *proto : {"nol1", "noncoh", "tc", "gtsc"}) {
        for (const char *cons : {"sc", "tso", "rc"}) {
            harness::RunResult r = harness::runOne(cfg, proto, cons, wl);
            all.push_back(r);
            double probes = static_cast<double>(
                r.l1Hits + r.l1MissCold + r.l1MissExpired);
            table.row(proto);
            table.cell(cons);
            table.cellInt(r.cycles);
            table.cell(probes > 0 ? 100.0 * r.l1Hits / probes : 0.0, 1);
            table.cell(r.nocBytes / 1024.0, 1);
            table.cell(r.energy.total() * 1e6, 1);
            table.cellInt(r.checkerViolations);
        }
    }
    std::printf("%s\n", table.toString().c_str());
    if (!args.csvPath.empty()) {
        harness::writeCsv(args.csvPath, all);
        std::printf("wrote %zu rows to %s\n", all.size(),
                    args.csvPath.c_str());
    }
    if (!args.jsonPath.empty())
        harness::writeJson(args.jsonPath, all);
    return 0;
}

int
cmdList()
{
    std::printf("protocols:   gtsc tc nol1 noncoh\n");
    std::printf("consistency: sc tso rc\n");
    std::printf("workloads (coherence-required):");
    for (const auto &n : workloads::coherentSet())
        std::printf(" %s", n.c_str());
    std::printf("\nworkloads (no coherence needed):");
    for (const auto &n : workloads::privateSet())
        std::printf(" %s", n.c_str());
    std::printf("\ntest kernels: mp sb stress pingpong\n");
    return 0;
}

int
cmdConfig(const Args &args)
{
    sim::Config cfg = configFor(args);
    // Touch the common keys so their defaults appear.
    (void)gpu::GpuParams::fromConfig(cfg);
    (void)cfg.getUint("gtsc.lease", 10);
    (void)cfg.getUint("gtsc.ts_bits", 16);
    (void)cfg.getUint("tc.lease", 100);
    (void)cfg.getUint("l1.size_bytes", 16 * 1024);
    (void)cfg.getUint("l2.partition_bytes", 128 * 1024);
    (void)cfg.getUint("noc.bytes_per_cycle", 32);
    (void)cfg.getString("noc.topology", "xbar");
    (void)cfg.getString("gpu.scheduler", "gto");
    std::printf("%s", cfg.toString().c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: gtsc_sim <run|sweep|list|config> ...\n");
        return 2;
    }
    std::string cmd = argv[1];
    Args args = parse(argc, argv, 2);
    if (cmd == "run")
        return cmdRun(args);
    if (cmd == "sweep")
        return cmdSweep(args);
    if (cmd == "list")
        return cmdList();
    if (cmd == "config")
        return cmdConfig(args);
    std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
    return 2;
}
