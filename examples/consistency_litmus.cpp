/**
 * @file
 * Domain example: memory-consistency litmus tests on top of the
 * coherence protocols. Runs message-passing and store-buffering
 * kernels across (protocol, model) pairs and reports the observed
 * outcomes — the programmer-visible face of Section II-B.
 *
 * Usage: consistency_litmus [key=value ...]
 */

#include <cstdio>

#include "harness/runner.hh"
#include "harness/table.hh"

int
main(int argc, char **argv)
{
    using namespace gtsc;
    sim::Config cfg;
    cfg.setInt("gpu.num_sms", 4);
    cfg.setInt("gpu.warps_per_sm", 4);
    cfg.setInt("gpu.num_partitions", 2);
    for (int i = 1; i < argc; ++i) {
        if (!cfg.parseOverride(argv[i])) {
            std::fprintf(stderr, "bad override '%s'\n", argv[i]);
            return 1;
        }
    }

    harness::Table table({"protocol", "model", "MP: data after flag",
                          "SB: (0,0) forbidden", "checked loads",
                          "violations"});
    int failures = 0;
    for (const char *proto : {"gtsc", "tc", "nol1"}) {
        for (const char *cons : {"sc", "rc"}) {
            harness::RunResult mp =
                harness::runOne(cfg, proto, cons, "mp");
            harness::RunResult sb =
                harness::runOne(cfg, proto, cons, "sb");
            table.row(proto);
            table.cell(cons);
            table.cell(mp.verified ? "PASS" : "FAIL");
            table.cell(sb.verified ? "PASS" : "FAIL");
            table.cellInt(mp.loadsChecked + sb.loadsChecked);
            table.cellInt(mp.checkerViolations + sb.checkerViolations);
            failures += !mp.verified + !sb.verified +
                        (mp.checkerViolations > 0) +
                        (sb.checkerViolations > 0);
        }
    }

    std::printf("Litmus outcomes (message passing, store "
                "buffering with fences)\n\n%s\n",
                table.toString().c_str());
    std::printf("MP: a consumer that spun until the flag was set "
                "must read the producer's data.\n"
                "SB: with a fence between each thread's store and "
                "load, both threads reading 0 is forbidden.\n");
    return failures == 0 ? 0 : 1;
}
