/**
 * @file
 * Quickstart: build a GPU with the G-TSC protocol, run the
 * message-passing microkernel under release consistency, and print
 * the headline statistics. See README.md for a walkthrough.
 *
 * Usage: quickstart [key=value ...]
 *   e.g. quickstart gpu.num_sms=8 gtsc.lease=16 gpu.consistency=sc
 */

#include <cstdio>

#include "harness/runner.hh"

int
main(int argc, char **argv)
{
    gtsc::sim::Config cfg = gtsc::harness::benchConfig();
    for (int i = 1; i < argc; ++i) {
        if (!cfg.parseOverride(argv[i])) {
            std::fprintf(stderr, "bad override '%s'\n", argv[i]);
            return 1;
        }
    }
    std::string consistency = cfg.getString("gpu.consistency", "rc");

    gtsc::harness::RunResult r =
        gtsc::harness::runOne(cfg, "gtsc", consistency, "mp");

    std::printf("G-TSC quickstart: message-passing kernel (%s)\n",
                r.consistency.c_str());
    std::printf("  cycles                 %llu\n",
                static_cast<unsigned long long>(r.cycles));
    std::printf("  instructions           %llu\n",
                static_cast<unsigned long long>(r.instructions));
    std::printf("  L1 hits / cold / expired  %llu / %llu / %llu\n",
                static_cast<unsigned long long>(r.l1Hits),
                static_cast<unsigned long long>(r.l1MissCold),
                static_cast<unsigned long long>(r.l1MissExpired));
    std::printf("  renewal requests       %llu\n",
                static_cast<unsigned long long>(r.renewalsSent));
    std::printf("  NoC bytes              %llu\n",
                static_cast<unsigned long long>(r.nocBytes));
    std::printf("  energy (J)             %.6f\n", r.energy.total());
    std::printf("  loads checked          %llu\n",
                static_cast<unsigned long long>(r.loadsChecked));
    std::printf("  coherence violations   %llu\n",
                static_cast<unsigned long long>(r.checkerViolations));
    std::printf("  functional check       %s\n",
                r.verified ? "PASS" : "FAIL");
    return (r.checkerViolations == 0 && r.verified) ? 0 : 1;
}
