/**
 * @file
 * Protocol explorer: run any (protocol, consistency, workload)
 * combination and print the full statistics dump, the coherence-
 * checker verdict and the energy breakdown. The workhorse example
 * for poking at the simulator.
 *
 * Usage: protocol_explorer <protocol> <sc|rc> <workload> [key=value..]
 *   protocols: gtsc tc nol1 noncoh
 *   workloads: bh cc dlp vpr stn bfs ccp ge hs km bp sgm
 *              mp sb stress pingpong
 */

#include <cstdio>
#include <cstring>

#include "harness/runner.hh"
#include "sim/log.hh"

int
main(int argc, char **argv)
{
    if (argc < 4) {
        std::fprintf(stderr,
                     "usage: %s <protocol> <sc|rc> <workload> "
                     "[key=value ...]\n",
                     argv[0]);
        return 2;
    }
    gtsc::sim::setLogLevel(1);
    gtsc::sim::Config cfg = gtsc::harness::benchConfig();
    for (int i = 4; i < argc; ++i) {
        if (!cfg.parseOverride(argv[i])) {
            std::fprintf(stderr, "bad override '%s'\n", argv[i]);
            return 2;
        }
    }

    gtsc::harness::RunResult r =
        gtsc::harness::runOne(cfg, argv[1], argv[2], argv[3]);

    std::printf("== %s / %s / %s ==\n", r.workload.c_str(),
                r.protocol.c_str(), r.consistency.c_str());
    std::printf("%s", r.stats.toString().c_str());
    std::printf("energy.core %.6e J\n", r.energy.core);
    std::printf("energy.l1 %.6e J\n", r.energy.l1);
    std::printf("energy.l2 %.6e J\n", r.energy.l2);
    std::printf("energy.noc %.6e J\n", r.energy.noc);
    std::printf("energy.dram %.6e J\n", r.energy.dram);
    std::printf("energy.total %.6e J\n", r.energy.total());
    std::printf("checker.loads %llu\n",
                static_cast<unsigned long long>(r.loadsChecked));
    std::printf("checker.violations %llu\n",
                static_cast<unsigned long long>(r.checkerViolations));
    std::printf("workload.verified %s\n", r.verified ? "true" : "false");
    return (r.checkerViolations == 0 && r.verified) ? 0 : 1;
}
