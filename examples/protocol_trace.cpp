/**
 * @file
 * Educational walkthrough of the paper's Figure 9: two SMs exchange
 * locations X and Y under G-TSC, and every protocol message and
 * timestamp assignment is printed step by step. SM0 executes
 * {ld X; st Y; ld X}, SM1 executes {ld Y; st X; ld Y}; the final
 * logical order is A1 -> B1 -> B2 -> B3 -> A2 -> A3 even though the
 * operations interleave differently in physical time.
 *
 * Usage: protocol_trace [gtsc.lease=N]
 */

#include <cstdio>
#include <deque>

#include "core/gtsc_builder.hh"
#include "core/gtsc_l1.hh"
#include "core/gtsc_l2.hh"

using namespace gtsc;

namespace
{

constexpr Addr kX = 0x000;
constexpr Addr kY = 0x080;

const char *
addrName(Addr a)
{
    return a == kX ? "X" : "Y";
}

struct TraceRig
{
    sim::Config cfg;
    sim::StatSet stats;
    sim::EventQueue events;
    mem::MainMemory memory;
    std::unique_ptr<core::TsDomain> domain;
    std::unique_ptr<mem::DramChannel> dram;
    std::unique_ptr<core::GtscL2> l2;
    std::vector<std::unique_ptr<core::GtscL1>> l1s;
    Cycle now = 0;
    std::uint64_t nextId = 1;

    explicit TraceRig(int argc, char **argv)
    {
        cfg.setInt("gpu.num_partitions", 1);
        cfg.setInt("gpu.warps_per_sm", 1);
        cfg.setInt("gtsc.lease", 5);
        cfg.setInt("l2.access_latency", 1);
        cfg.setInt("l1.hit_latency", 1);
        for (int i = 1; i < argc; ++i)
            cfg.parseOverride(argv[i]);

        domain = std::make_unique<core::TsDomain>(cfg, stats);
        dram = std::make_unique<mem::DramChannel>(cfg, stats, events,
                                                  memory, "dram");
        l2 = std::make_unique<core::GtscL2>(0, cfg, stats, events,
                                            *dram, memory, *domain,
                                            nullptr);
        l2->setSend([this](mem::Packet &&p) {
            std::printf("    L2 -> SM%u: %-8s %s wts=%llu rts=%llu\n",
                        p.src, mem::msgTypeName(p.type),
                        addrName(p.lineAddr),
                        static_cast<unsigned long long>(p.wts),
                        static_cast<unsigned long long>(p.rts));
            l1s[p.src]->receiveResponse(std::move(p), now);
        });
        for (SmId s = 0; s < 2; ++s) {
            l1s.push_back(std::make_unique<core::GtscL1>(
                s, cfg, stats, events, *domain, nullptr));
            core::GtscL1 *l1 = l1s.back().get();
            l1->setSend([this, s](mem::Packet &&p) {
                std::printf(
                    "    SM%u -> L2: %-8s %s wts=%llu warp_ts=%llu\n",
                    s, mem::msgTypeName(p.type), addrName(p.lineAddr),
                    static_cast<unsigned long long>(p.wts),
                    static_cast<unsigned long long>(p.warpTs));
                l2->receiveRequest(std::move(p), now);
            });
            l1->setLoadDone([s](const mem::Access &a,
                                const mem::AccessResult &r) {
                std::printf("    SM%u load %s done: value=%u at "
                            "logical ts %llu%s\n",
                            s, addrName(a.lineAddr), r.data.word(0),
                            static_cast<unsigned long long>(r.loadTs),
                            r.l1Hit ? " (L1 hit)" : "");
            });
            l1->setStoreDone([s](const mem::Access &a, Cycle) {
                std::printf("    SM%u store %s globally performed\n",
                            s, addrName(a.lineAddr));
            });
        }
    }

    void
    settle(unsigned cycles = 400)
    {
        for (unsigned i = 0; i < cycles; ++i) {
            ++now;
            events.runUntil(now);
            l2->tick(now);
            for (auto &l1 : l1s)
                l1->tick(now);
            dram->tick(now);
        }
    }

    void
    op(SmId sm, bool is_store, Addr line, std::uint32_t value,
       const char *label)
    {
        std::printf("%s: SM%u %s %s  [warp_ts=%llu]\n", label, sm,
                    is_store ? "st" : "ld", addrName(line),
                    static_cast<unsigned long long>(l1s[sm]->warpTs(0)));
        mem::Access a;
        a.isStore = is_store;
        a.lineAddr = line;
        a.wordMask = 1;
        a.sm = sm;
        a.warp = 0;
        a.id = nextId++;
        if (is_store)
            a.storeData.setWord(0, value);
        l1s[sm]->access(a, now);
        settle();
        std::printf("    => warp_ts now %llu, mem_ts %llu\n\n",
                    static_cast<unsigned long long>(l1s[sm]->warpTs(0)),
                    static_cast<unsigned long long>(l2->memTs()));
    }
};

} // namespace

int
main(int argc, char **argv)
{
    std::printf("G-TSC protocol walkthrough: the paper's Figure 9\n");
    std::printf("SM0: ld X; st Y; ld X      SM1: ld Y; st X; ld Y\n\n");

    TraceRig rig(argc, argv);

    rig.op(0, false, kX, 0, "A1"); // ld X -> fill [1, 1+lease]
    rig.op(1, false, kY, 0, "B1"); // ld Y -> fill
    rig.op(0, true, kY, 7, "A2");  // st Y -> wts = rts(Y)+1
    rig.op(1, true, kX, 8, "B2");  // st X -> wts = rts(X)+1
    rig.op(0, false, kX, 0, "A3"); // ld X: warp_ts beyond lease ->
                                   // renewal; data changed -> fill
    rig.op(1, false, kY, 0, "B3"); // ld Y: same on the other side

    std::printf(
        "Timestamp order of the six operations: A1 -> B1 -> B2 -> "
        "B3 -> A2 -> A3\n"
        "(writes were logically scheduled after every outstanding "
        "read lease\nwithout stalling — the key G-TSC property).\n");
    return 0;
}
