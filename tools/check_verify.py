#!/usr/bin/env python3
"""Gate the protocol verification lab's results for CI's verify job.

Usage:
    tools/check_verify.py RESULT.json [RESULT2.json ...]

Each file is the --out JSON of one `gtsc_verify` invocation. Fails
(exit 1) when any file:

  * is missing, unreadable, or not a gtsc_verify result,
  * reports violations != 0 (an invariant witness or a forbidden
    litmus outcome — the report was already printed by gtsc_verify),
  * is an --explore result that did not fully enumerate its state
    space ("complete": false — a truncated run proves nothing), or
  * is a --litmus result that executed zero runs.

Stdlib only, no third-party deps.
"""

import json
import sys


def check(path: str) -> bool:
    try:
        with open(path, encoding="utf-8") as f:
            blob = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"FAIL: {path}: {e}")
        return False

    mode = blob.get("mode")
    if mode not in ("explore", "litmus"):
        print(f"FAIL: {path}: not a gtsc_verify result (mode={mode!r})")
        return False

    ok = True
    violations = int(blob.get("violations", -1))
    if violations != 0:
        print(f"FAIL: {path}: {violations} violation(s)")
        for w in blob.get("witnesses", []):
            for v in w.get("violations", []):
                print(f"  witness: {v}")
        for fail in blob.get("failures", []):
            print(f"  litmus: seed={fail.get('seed')} "
                  f"cell={fail.get('cell')} spec={fail.get('spec')}")
        ok = False

    if mode == "explore":
        if not blob.get("complete", False):
            print(f"FAIL: {path}: exploration incomplete "
                  f"(states_visited={blob.get('states_visited')}, "
                  f"truncated={blob.get('truncated')})")
            ok = False
        if ok:
            print(f"OK: {path}: {blob.get('states_visited')} states, "
                  f"{blob.get('transitions')} transitions, complete, "
                  f"0 violations "
                  f"({float(blob.get('states_per_sec', 0)):.0f} "
                  f"states/s)")
    else:
        runs = int(blob.get("runs", 0))
        if runs == 0:
            print(f"FAIL: {path}: litmus batch executed zero runs")
            ok = False
        if ok:
            print(f"OK: {path}: {blob.get('tests')} litmus tests, "
                  f"{runs} runs, 0 forbidden outcomes "
                  f"(seed {blob.get('seed')})")
    return ok


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    results = [check(p) for p in sys.argv[1:]]
    return 0 if all(results) else 1


if __name__ == "__main__":
    sys.exit(main())
