#!/usr/bin/env python3
"""Plot gtsc-sim CSV sweeps and obs timeline series.

Usage:
    gtsc-sim sweep bfs --csv bfs.csv
    tools/plot_results.py bfs.csv [-o bfs.png] [--metric cycles]

    # stat-timeline CSV written under obs.trace_dir:
    tools/plot_results.py --timeline run.timeline.csv \
        [--keys l1.hits,sm.mem_stall_cycles] [-o run.png]

Sweep mode produces a grouped bar chart of <metric> per (protocol,
consistency), normalized to the nol1/rc baseline when --normalize is
given. Timeline mode plots per-interval counter deltas against the
cycle axis. Requires matplotlib; falls back to an ASCII chart
without it.
"""

import argparse
import csv
import sys


def read_rows(path):
    with open(path, newline="") as f:
        return list(csv.DictReader(f))


def ascii_chart(rows, metric, normalize):
    base = None
    if normalize:
        for r in rows:
            if r["protocol"] == "nol1" and r["consistency"] == "rc":
                base = float(r[metric])
    width = 50
    values = [(f'{r["protocol"]}/{r["consistency"]}',
               float(r[metric]) / (base or 1.0)) for r in rows]
    top = max(v for _, v in values) or 1.0
    print(f"{metric}" + (" (normalized to nol1/rc)" if base else ""))
    for label, v in values:
        bar = "#" * max(1, int(width * v / top))
        print(f"{label:>14} {bar} {v:.3g}")


def timeline_keys(rows, wanted):
    keys = [k for k in rows[0] if k != "cycle"]
    if wanted:
        missing = [k for k in wanted if k not in keys]
        if missing:
            sys.exit(f"unknown timeline keys {missing}; "
                     f"available: {', '.join(keys)}")
        return wanted
    # Default: the busiest few series, so the plot stays readable.
    totals = {k: sum(float(r[k]) for r in rows) for k in keys}
    keys.sort(key=lambda k: -totals[k])
    return keys[:8]


def ascii_timeline(rows, keys):
    width = 50
    for key in keys:
        values = [float(r[key]) for r in rows]
        top = max(values) or 1.0
        print(f"\n{key} (per-interval delta, max {top:g})")
        for r, v in zip(rows, values):
            bar = "#" * int(width * v / top)
            print(f"{int(r['cycle']):>10} {bar}")


def plot_timeline(args):
    rows = read_rows(args.timeline)
    if not rows:
        sys.exit("empty timeline CSV")
    wanted = args.keys.split(",") if args.keys else None
    keys = timeline_keys(rows, wanted)

    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        ascii_timeline(rows, keys)
        return

    cycles = [int(r["cycle"]) for r in rows]
    fig, ax = plt.subplots(figsize=(8, 4))
    for key in keys:
        ax.plot(cycles, [float(r[key]) for r in rows], label=key,
                linewidth=1.2)
    ax.set_xlabel("cycle")
    ax.set_ylabel("per-interval delta")
    ax.legend(fontsize=7)
    fig.tight_layout()
    out = (args.output
           or args.timeline.rsplit(".", 1)[0] + ".png")
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("csv", nargs="?",
                    help="CSV from gtsc-sim sweep --csv")
    ap.add_argument("-o", "--output", help="PNG path (matplotlib)")
    ap.add_argument("--metric", default="cycles")
    ap.add_argument("--normalize", action="store_true",
                    help="normalize to the nol1/rc row")
    ap.add_argument("--timeline",
                    help="plot an obs .timeline.csv instead of a "
                         "sweep CSV")
    ap.add_argument("--keys",
                    help="comma-separated timeline counters to plot "
                         "(default: busiest 8)")
    args = ap.parse_args()

    if args.timeline:
        plot_timeline(args)
        return
    if not args.csv:
        ap.error("need a sweep CSV (or --timeline)")

    rows = read_rows(args.csv)
    if not rows:
        sys.exit("empty CSV")
    if args.metric not in rows[0]:
        sys.exit(f"unknown metric '{args.metric}'; "
                 f"columns: {', '.join(rows[0])}")

    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        ascii_chart(rows, args.metric, args.normalize)
        return

    base = 1.0
    if args.normalize:
        for r in rows:
            if r["protocol"] == "nol1" and r["consistency"] == "rc":
                base = float(r[args.metric])

    labels = [f'{r["protocol"]}\n{r["consistency"]}' for r in rows]
    values = [float(r[args.metric]) / base for r in rows]
    colors = {"nol1": "#999999", "noncoh": "#bbbb66",
              "tc": "#cc6666", "gtsc": "#6688cc"}
    bar_colors = [colors.get(r["protocol"], "#333333") for r in rows]

    fig, ax = plt.subplots(figsize=(1 + 0.7 * len(rows), 4))
    ax.bar(range(len(rows)), values, color=bar_colors)
    ax.set_xticks(range(len(rows)))
    ax.set_xticklabels(labels, fontsize=8)
    ax.set_ylabel(args.metric +
                  (" (normalized)" if args.normalize else ""))
    ax.set_title(rows[0]["workload"])
    fig.tight_layout()
    out = args.output or args.csv.rsplit(".", 1)[0] + ".png"
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
