#!/usr/bin/env python3
"""Gate the single-thread hot-path bench output for CI's perf-smoke job.

Usage:
    tools/check_single_thread_perf.py BENCH_sweep_scaling.json \
        [--min-geomean MCYC] [--min-speedup X]

Reads the "single_thread" section emitted by `bench/sweep_scaling
--only single` and fails (exit 1) when:

  * the section is missing or has no cells,
  * any cell simulated zero cycles (a run silently did nothing),
  * the geomean throughput is below --min-geomean simulated
    megacycles per wall-clock second (default 0.50), or
  * a baseline geomean was embedded (--baseline-mcyc at bench time)
    and the speedup against it is below --min-speedup (default 0.8).

On a geomean failure the report lists every cell's signed delta
against the floor, slowest first, so the offending cells are visible
in the CI log without downloading the artifact.

The default floors are deliberately conservative: hosted CI runners
are slow and noisy (±20% run-to-run observed even on one machine),
so this guards against the hot path falling off a cliff — an
accidental debug build, a quadratic scan reintroduced into the
per-cycle loop — not against single-digit regressions. The geomean
floor tracks the measured baseline (0.69-0.71 Mcyc/s geomean across
recent runs on the reference runner after the issue-path/NoC
fast-lane refactor, see BENCH_sweep_scaling.json) with ~30%
headroom for runner noise. Track the trajectory across pushes
through the uploaded BENCH artifacts instead.

Stdlib only, no third-party deps.
"""

import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json", help="BENCH_sweep_scaling.json")
    parser.add_argument("--min-geomean", type=float, default=0.50,
                        help="geomean Mcycles/sec floor (default 0.50)")
    parser.add_argument("--min-speedup", type=float, default=0.8,
                        help="floor on speedup_vs_baseline when a "
                             "baseline is embedded (default 0.8)")
    args = parser.parse_args()

    with open(args.bench_json, encoding="utf-8") as f:
        blob = json.load(f)

    section = blob.get("single_thread")
    if not section or not section.get("cells"):
        print(f"FAIL: no single_thread cells in {args.bench_json}")
        return 1

    failed = False
    for cell in section["cells"]:
        status = "ok"
        if cell.get("cycles", 0) <= 0:
            status = "FAIL (zero cycles simulated)"
            failed = True
        print(f"{cell['cell']}: {cell['seconds']:.3f}s "
              f"{cell['mcyc_per_sec']:.3f} Mcyc/s {status}")

    geomean = float(section.get("geomean_mcyc_per_sec", 0.0))
    line = f"geomean: {geomean:.3f} Mcyc/s"
    if geomean < args.min_geomean:
        line += f" FAIL (< floor {args.min_geomean:g})"
        failed = True
        print(line)
        print(f"per-cell delta vs floor {args.min_geomean:g} Mcyc/s, "
              "slowest first:")
        ranked = sorted(section["cells"],
                        key=lambda c: c["mcyc_per_sec"])
        for cell in ranked:
            delta = cell["mcyc_per_sec"] - args.min_geomean
            print(f"  {cell['cell']}: {cell['mcyc_per_sec']:.3f} "
                  f"({delta:+.3f})")
    else:
        print(line)

    baseline = float(section.get("baseline_geomean_mcyc_per_sec", 0.0))
    if baseline > 0.0:
        speedup = float(section.get("speedup_vs_baseline", 0.0))
        line = (f"speedup vs baseline {baseline:g} Mcyc/s: "
                f"{speedup:.2f}x")
        if speedup < args.min_speedup:
            line += f" FAIL (< floor {args.min_speedup:g}x)"
            failed = True
        print(line)

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
