#!/usr/bin/env python3
"""Minimal client for the gtscd simulation-serving daemon.

Talks line-delimited JSON over the daemon's unix socket (protocol in
docs/SERVING.md) and renders per-cell results as they stream back.
Stdlib only — usable from CI, notebooks and shell scripts without a
virtualenv.

Usage:
    tools/gtsc_client.py --socket PATH ping [--wait SECS]
    tools/gtsc_client.py --socket PATH stats
    tools/gtsc_client.py --socket PATH run \
        --cell WORKLOAD:PROTOCOL:CONSISTENCY [--cell ...] \
        [--set key=value ...] [--jobs N] [--no-store] \
        [--expect-hits N] [--expect-misses N] [--json]
    tools/gtsc_client.py --socket PATH shutdown

Examples:
    # Wait for a freshly launched daemon to come up.
    tools/gtsc_client.py --socket /tmp/gtscd.sock ping --wait 30

    # Run two cells of the fig12 matrix; exit 1 unless both were
    # cache misses (fresh simulations).
    tools/gtsc_client.py --socket /tmp/gtscd.sock run \
        --cell bh:tc:sc --cell bh:gtsc:rc \
        --set sim.max_cycles=20000 --expect-misses 2

Exit status: 0 on success, 1 on daemon errors or unmet
--expect-hits / --expect-misses, 2 on usage / connection failure.
"""

import argparse
import json
import socket
import sys
import time


def connect(path: str, wait: float) -> socket.socket:
    """Connect to the daemon, retrying for up to `wait` seconds."""
    deadline = time.monotonic() + wait
    while True:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.connect(path)
            return sock
        except OSError as e:
            sock.close()
            if time.monotonic() >= deadline:
                print(f"gtsc_client: cannot connect to {path}: {e}",
                      file=sys.stderr)
                sys.exit(2)
            time.sleep(0.2)


def request(sock: socket.socket, req: dict):
    """Send one request; yield response objects until its final one.

    The daemon streams `result` lines for a run before the terminal
    `done` / `pong` / `stats` / `bye` / `error` line.
    """
    sock.sendall((json.dumps(req) + "\n").encode())
    buf = b""
    while True:
        nl = buf.find(b"\n")
        if nl < 0:
            chunk = sock.recv(65536)
            if not chunk:
                print("gtsc_client: daemon closed the connection",
                      file=sys.stderr)
                sys.exit(2)
            buf += chunk
            continue
        line, buf = buf[:nl], buf[nl + 1:]
        resp = json.loads(line)
        yield resp
        if resp.get("op") in ("done", "pong", "stats", "bye",
                              "error"):
            return


def parse_cell(text: str) -> dict:
    parts = text.split(":")
    if len(parts) != 3:
        print(f"gtsc_client: bad --cell '{text}' "
              f"(want WORKLOAD:PROTOCOL:CONSISTENCY)",
              file=sys.stderr)
        sys.exit(2)
    return {"workload": parts[0], "protocol": parts[1],
            "consistency": parts[2]}


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--socket", required=True,
                        help="gtscd unix socket path")
    parser.add_argument("command",
                        choices=["ping", "stats", "run", "shutdown"])
    parser.add_argument("--wait", type=float, default=0.0,
                        help="seconds to retry the connection "
                             "(and, for ping, the ping itself)")
    parser.add_argument("--cell", action="append", default=[],
                        metavar="W:P:C",
                        help="workload:protocol:consistency cell "
                             "(repeatable)")
    parser.add_argument("--set", action="append", default=[],
                        metavar="KEY=VALUE", dest="overrides",
                        help="base config override (repeatable)")
    parser.add_argument("--jobs", type=int, default=0,
                        help="sweep workers for this request")
    parser.add_argument("--no-store", action="store_true",
                        help="bypass the result store for this run")
    parser.add_argument("--expect-hits", type=int, default=None,
                        help="fail unless exactly N cells were "
                             "cache hits")
    parser.add_argument("--expect-misses", type=int, default=None,
                        help="fail unless exactly N cells were "
                             "simulated fresh")
    parser.add_argument("--json", action="store_true",
                        help="print raw response lines instead of "
                             "the table")
    args = parser.parse_args()

    sock = connect(args.socket, args.wait)

    if args.command == "ping":
        for resp in request(sock, {"op": "ping", "id": "cli"}):
            if args.json:
                print(json.dumps(resp))
            elif resp.get("op") == "pong":
                print(f"pong schema={resp.get('schema')} "
                      f"code={resp.get('code')} "
                      f"store={resp.get('store') or '(none)'}")
            else:
                print(json.dumps(resp))
                return 1
        return 0

    if args.command in ("stats", "shutdown"):
        ok = True
        for resp in request(sock, {"op": args.command, "id": "cli"}):
            print(json.dumps(resp))
            ok = ok and resp.get("ok", False)
        return 0 if ok else 1

    # run
    if not args.cell:
        print("gtsc_client: run needs at least one --cell",
              file=sys.stderr)
        return 2
    config = {}
    for ov in args.overrides:
        key, sep, value = ov.partition("=")
        if not sep:
            print(f"gtsc_client: bad --set '{ov}'", file=sys.stderr)
            return 2
        config[key] = value
    req = {"op": "run", "id": "cli",
           "cells": [parse_cell(c) for c in args.cell]}
    if config:
        req["config"] = config
    if args.jobs:
        req["jobs"] = args.jobs
    if args.no_store:
        req["store"] = False

    hits = misses = 0
    failed = False
    for resp in request(sock, req):
        if args.json:
            print(json.dumps(resp))
        if not resp.get("ok", False):
            if not args.json:
                print(f"error: {resp.get('message')}",
                      file=sys.stderr)
            failed = True
            continue
        op = resp.get("op")
        if op == "result":
            cached = resp.get("cached", False)
            hits += 1 if cached else 0
            misses += 0 if cached else 1
            if not args.json:
                cell = req["cells"][resp["cell"]]
                result = resp.get("result", {})
                print(f"[{resp['cell']}] "
                      f"{cell['workload']}/{cell['protocol']}-"
                      f"{cell['consistency']}: "
                      f"{'hit ' if cached else 'miss'} "
                      f"cycles={result.get('cycles')} "
                      f"insns={result.get('instructions')} "
                      f"key={resp.get('key', '')[:12]}")
        elif op == "done" and not args.json:
            print(f"done: {resp.get('cells')} cells, "
                  f"{resp.get('hits')} hits, "
                  f"{resp.get('misses')} misses in "
                  f"{resp.get('seconds')}s")

    if args.expect_hits is not None and hits != args.expect_hits:
        print(f"FAIL: expected {args.expect_hits} hits, got {hits}",
              file=sys.stderr)
        failed = True
    if args.expect_misses is not None and misses != args.expect_misses:
        print(f"FAIL: expected {args.expect_misses} misses, "
              f"got {misses}", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
