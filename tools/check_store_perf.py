#!/usr/bin/env python3
"""Gate the result-store bench section for CI's store-serving job.

Usage:
    tools/check_store_perf.py BENCH_sweep_scaling.json \
        [--min-speedup X]

Reads the "result_store" section emitted by `bench/sweep_scaling
--only store` and fails (exit 1) when:

  * the section is missing or ran zero cells,
  * the warm pass hit fewer than all cells, missed any cell, or
    called runOne() at all (a warm rerun must come entirely from the
    content-addressed store),
  * any warm result differed bit-for-bit from its cold twin
    ("identical": false), or
  * the cold/warm wall-clock speedup is below --min-speedup
    (default 1.5 — intentionally far under the ~100x a healthy
    store delivers, so slow CI filesystems don't flap the gate).

Stdlib only, no third-party deps.
"""

import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json", help="BENCH_sweep_scaling.json")
    parser.add_argument("--min-speedup", type=float, default=1.5,
                        help="floor on cold/warm wall-clock speedup "
                             "(default 1.5)")
    args = parser.parse_args()

    with open(args.bench_json, encoding="utf-8") as f:
        blob = json.load(f)

    section = blob.get("result_store")
    if not section or not section.get("cells"):
        print(f"FAIL: no result_store section in {args.bench_json} "
              f"(run bench/sweep_scaling --only store)")
        return 1

    cells = int(section["cells"])
    hits = int(section.get("warm_hits", -1))
    misses = int(section.get("warm_misses", -1))
    run_ones = int(section.get("warm_run_one_calls", -1))
    identical = bool(section.get("identical", False))
    cold = float(section.get("cold_seconds", 0.0))
    warm = float(section.get("warm_seconds", 0.0))
    speedup = float(section.get("speedup", 0.0))

    print(f"cells: {cells}")
    print(f"cold: {cold:.4f}s  warm: {warm:.4f}s  "
          f"speedup: {speedup:.1f}x")
    print(f"warm pass: {hits} hits, {misses} misses, "
          f"{run_ones} runOne() calls")

    failed = False
    if hits != cells:
        print(f"FAIL: warm pass hit {hits}/{cells} cells")
        failed = True
    if misses != 0:
        print(f"FAIL: warm pass missed {misses} cells")
        failed = True
    if run_ones != 0:
        print(f"FAIL: warm pass simulated {run_ones} cells "
              f"(expected zero runOne() calls)")
        failed = True
    if not identical:
        print("FAIL: warm results not bit-identical to cold results")
        failed = True
    if speedup < args.min_speedup:
        print(f"FAIL: speedup {speedup:.2f}x below floor "
              f"{args.min_speedup:g}x")
        failed = True

    if not failed:
        print("OK")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
