#!/usr/bin/env python3
"""Gate the shard-scaling bench output for CI's perf-smoke job.

Usage:
    tools/check_shard_perf.py BENCH_sweep_scaling.json [--slack PCT]

Reads the "shard_scaling" section emitted by bench/sweep_scaling and
fails (exit 1) when any sharded run is more than --slack percent
(default 10) slower than the serial (shards=1) run of the same
workload. This is a regression guard, not a speedup gate: hosted CI
runners have few cores and noisy neighbours, so all it pins is that
turning sharding on never costs meaningful wall-clock. It also fails
when the cycle counts differ across shard counts — the sharded loop
must be bit-identical to the serial one, and a cycle divergence here
means the equivalence tests were not run or are broken.

Stdlib only, no third-party deps.
"""

import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json", help="BENCH_sweep_scaling.json")
    parser.add_argument("--slack", type=float, default=10.0,
                        help="allowed slowdown in percent (default 10)")
    args = parser.parse_args()

    with open(args.bench_json, encoding="utf-8") as f:
        blob = json.load(f)

    section = blob.get("shard_scaling")
    if not section or not section.get("runs"):
        print(f"FAIL: no shard_scaling runs in {args.bench_json}")
        return 1

    runs = section["runs"]
    serial = next((r for r in runs if r["shards"] == 1), None)
    if serial is None:
        print("FAIL: no shards=1 baseline in shard_scaling runs")
        return 1

    # On a single-hardware-thread host the shard threads timeshare
    # one core, so a slowdown is expected and means nothing; only the
    # cycle-equality check is meaningful there.
    hw = int(blob.get("hw_threads", 0))
    gate_time = hw >= 2
    if not gate_time:
        print(f"note: hw_threads={hw} < 2, timing gate skipped "
              "(cycle equality still checked)")

    limit = serial["seconds"] * (1.0 + args.slack / 100.0)
    failed = False
    for run in runs:
        slowdown = (run["seconds"] / serial["seconds"] - 1.0) * 100.0
        status = "ok"
        if run["cycles"] != serial["cycles"]:
            status = "FAIL (cycles diverged: "
            status += f"{run['cycles']} vs {serial['cycles']})"
            failed = True
        elif gate_time and run["shards"] != 1 and run["seconds"] > limit:
            status = f"FAIL (>{args.slack:g}% slower than serial)"
            failed = True
        print(f"shards={run['shards']}: {run['seconds']:.3f}s "
              f"({slowdown:+.1f}% vs serial) {status}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
