#!/usr/bin/env python3
"""Validate gtsc trace files against the Chrome/Perfetto trace_event
JSON schema subset the simulator emits.

Usage:
    tools/check_trace.py TRACE.json [TRACE2.json ...]
    tools/check_trace.py --dir TRACE_DIR      # every *.trace.json

Checks (stdlib only, no third-party deps):
  - the file is valid JSON of the {"traceEvents": [...]} object form;
  - every event carries the required trace_event keys (name, ph, pid,
    tid) with sane types;
  - instant events ("ph": "i") carry an integer ts and a scope "s";
  - metadata events ("ph": "M") are thread_name / dropped_events rows;
  - every tid used by an instant event has a thread_name row, so the
    Perfetto UI shows a labeled track (sm0, l1.sm0, ...);
  - timestamps are non-negative and non-decreasing per track (the
    simulator records in cycle order);
  - args hex addresses look like hex ("0x..." strings).

Exit status 0 when every file passes, 1 otherwise.
"""

import argparse
import json
import pathlib
import sys

REQUIRED_EVENT_KEYS = {"name", "ph", "pid", "tid"}
KNOWN_METADATA = {"thread_name", "process_name", "dropped_events"}


def fail(path, msg):
    print(f"{path}: {msg}", file=sys.stderr)
    return False


def check_event(path, i, ev):
    if not isinstance(ev, dict):
        return fail(path, f"event #{i}: not an object")
    missing = REQUIRED_EVENT_KEYS - ev.keys()
    if missing:
        return fail(path, f"event #{i}: missing keys {sorted(missing)}")
    if not isinstance(ev["name"], str) or not ev["name"]:
        return fail(path, f"event #{i}: bad name")
    if not isinstance(ev["tid"], int) or not isinstance(ev["pid"], int):
        return fail(path, f"event #{i}: pid/tid must be integers")
    ph = ev["ph"]
    if ph == "M":
        if ev["name"] not in KNOWN_METADATA:
            return fail(path, f"event #{i}: unknown metadata "
                              f"'{ev['name']}'")
        if ev["name"] == "thread_name":
            name = ev.get("args", {}).get("name")
            if not isinstance(name, str) or not name:
                return fail(path, f"event #{i}: thread_name without "
                                  "args.name")
    elif ph == "i":
        if not isinstance(ev.get("ts"), int) or ev["ts"] < 0:
            return fail(path, f"event #{i}: instant event needs a "
                              "non-negative integer ts")
        if ev.get("s") not in ("t", "p", "g"):
            return fail(path, f"event #{i}: instant event needs scope "
                              "s in t/p/g")
        args = ev.get("args", {})
        if not isinstance(args, dict):
            return fail(path, f"event #{i}: args must be an object")
        addr = args.get("addr")
        if addr is not None and (not isinstance(addr, str)
                                 or not addr.startswith("0x")):
            return fail(path, f"event #{i}: addr must be a '0x...' "
                              "hex string")
    else:
        return fail(path, f"event #{i}: unsupported phase '{ph}'")
    return True


def check_trace(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, f"unreadable or invalid JSON: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return fail(path, "top level must be an object with "
                          "'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return fail(path, "'traceEvents' must be an array")

    ok = True
    named_tids = set()
    last_ts = {}
    instants = 0
    for i, ev in enumerate(events):
        if not check_event(path, i, ev):
            ok = False
            continue
        if ev["ph"] == "M" and ev["name"] == "thread_name":
            named_tids.add(ev["tid"])
        elif ev["ph"] == "i":
            instants += 1
            tid = ev["tid"]
            if tid not in named_tids:
                ok = fail(path, f"event #{i}: tid {tid} has no "
                                "thread_name metadata row")
            if ev["ts"] < last_ts.get(tid, 0):
                ok = fail(path, f"event #{i}: ts regressed on tid "
                                f"{tid}")
            last_ts[tid] = ev["ts"]

    if ok:
        print(f"{path}: OK ({len(named_tids)} tracks, "
              f"{instants} events)")
    return ok


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*", help="trace JSON files")
    ap.add_argument("--dir", help="check every *.trace.json under DIR")
    ap.add_argument("--require-tracks", type=int, default=0,
                    help="fail unless at least N named tracks exist "
                         "across all files")
    args = ap.parse_args()

    paths = [pathlib.Path(p) for p in args.paths]
    if args.dir:
        paths += sorted(pathlib.Path(args.dir).glob("*.trace.json"))
    if not paths:
        ap.error("no trace files given (and --dir matched none)")

    ok = True
    total_tracks = set()
    for p in paths:
        if not check_trace(p):
            ok = False
            continue
        with open(p, encoding="utf-8") as f:
            doc = json.load(f)
        for ev in doc["traceEvents"]:
            if ev.get("ph") == "M" and ev.get("name") == "thread_name":
                total_tracks.add((str(p), ev["tid"],
                                  ev["args"]["name"]))
    if args.require_tracks and len(total_tracks) < args.require_tracks:
        ok = fail("<all>", f"expected at least {args.require_tracks} "
                           f"tracks, found {len(total_tracks)}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
