/**
 * @file
 * The exhaustive explorer: smoke enumeration of a reduced space
 * (complete, clean, fast), determinism, mutation catching with a
 * minimized witness, and the 8-bit rollover sweep actually crossing
 * epoch resets.
 */

#include <gtest/gtest.h>

#include <string>

#include "verify/explorer.hh"

using namespace gtsc;
using namespace gtsc::verify;

namespace
{

sim::Config
smokeConfig()
{
    sim::Config cfg;
    cfg.setInt("verify.ops_per_thread", 2);
    return cfg;
}

sim::Config
rolloverConfig()
{
    sim::Config cfg;
    cfg.setInt("gtsc.ts_bits", 8);
    cfg.setInt("gtsc.lease", 10);
    cfg.setInt("verify.boosts", 1);
    cfg.setInt("gtsc.spin_ts_boost", 245);
    cfg.setInt("verify.lines", 1);
    cfg.setInt("verify.ops_per_thread", 2);
    return cfg;
}

} // namespace

TEST(VerifyExplorer, SmokeEnumerationIsCompleteAndClean)
{
    // CTest smoke bound: a reduced space (1 line, 2 ops) enumerates
    // completely in a couple of seconds, orders of magnitude under
    // the 30s budget.
    sim::Config cfg = smokeConfig();
    cfg.setInt("verify.lines", 1);
    auto result = explore(cfg);
    for (const auto &w : result.witnesses)
        ADD_FAILURE() << w.report;
    EXPECT_TRUE(result.ok());
    EXPECT_TRUE(result.stats.complete);
    EXPECT_GT(result.stats.statesVisited, 1000u);
    EXPECT_EQ(result.stats.truncated, 0u);
}

TEST(VerifyExplorer, EnumerationIsDeterministic)
{
    sim::Config cfg = smokeConfig();
    cfg.setInt("verify.lines", 1);
    auto a = explore(cfg);
    auto b = explore(cfg);
    EXPECT_EQ(a.stats.statesVisited, b.stats.statesVisited);
    EXPECT_EQ(a.stats.transitions, b.stats.transitions);
    EXPECT_EQ(a.stats.deduped, b.stats.deduped);
    EXPECT_EQ(a.stats.terminals, b.stats.terminals);
}

TEST(VerifyExplorer, StateCapTruncatesAndReportsIncomplete)
{
    sim::Config cfg = smokeConfig();
    cfg.setInt("verify.max_states", 500);
    auto result = explore(cfg);
    EXPECT_TRUE(result.ok());
    EXPECT_FALSE(result.stats.complete);
    EXPECT_EQ(result.stats.statesVisited, 500u);
}

TEST(VerifyExplorer, CatchesBrokenLeaseCheckWithMinimizedWitness)
{
    sim::Config cfg = smokeConfig();
    cfg.set("verify.mutation", "write_ignores_lease");
    auto result = explore(cfg);
    ASSERT_FALSE(result.ok());
    const Witness &w = result.witnesses.front();
    EXPECT_FALSE(w.violations.empty());
    // Minimized: the shortest known repro is 5 actions (load, two
    // deliveries, store, delivery); allow slack but require real
    // shrinking versus arbitrary DFS paths.
    EXPECT_LE(w.actions.size(), 8u);
    EXPECT_GE(w.actions.size(), 3u);
    // The witness report carries the transcript in the obs format.
    EXPECT_NE(w.report.find("violations:"), std::string::npos);
    EXPECT_NE(w.report.find("message transcript:"), std::string::npos);
    EXPECT_NE(w.report.find("BusRd"), std::string::npos);
}

TEST(VerifyExplorer, CatchesBrokenRenewalMatching)
{
    sim::Config cfg;
    cfg.setInt("verify.ops_per_thread", 3);
    cfg.set("verify.mutation", "renew_mismatched_wts");
    auto result = explore(cfg);
    ASSERT_FALSE(result.ok());
    EXPECT_FALSE(result.witnesses.front().violations.empty());
}

TEST(VerifyExplorer, RolloverSweepCrossesEpochsCleanly)
{
    // With epoch expansion forbidden the explorer must truncate:
    // proof that 8-bit overflow resets are genuinely reachable.
    sim::Config capped = rolloverConfig();
    capped.setInt("verify.max_epochs", 1);
    capped.setInt("verify.max_states", 20000);
    auto guard = explore(capped);
    EXPECT_TRUE(guard.ok());
    EXPECT_GT(guard.stats.truncated, 0u);

    // A bounded slice of the full rollover space stays violation
    // free (the complete ~540k-state closure runs in CI, not here).
    sim::Config cfg = rolloverConfig();
    cfg.setInt("verify.max_states", 60000);
    auto result = explore(cfg);
    for (const auto &w : result.witnesses)
        ADD_FAILURE() << w.report;
    EXPECT_TRUE(result.ok());
}
