/**
 * @file
 * Litmus engine: spec round-trip, seeded determinism, the SC
 * interleaving enumerator against hand-derived outcome sets, oracle
 * evaluation end-to-end, and ddmin shrinking of a failing spec.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "harness/runner.hh"
#include "verify/litmus_gen.hh"

using namespace gtsc;
using namespace gtsc::verify;
using workloads::LitmusSpec;

TEST(VerifyLitmus, SpecFormatParseRoundTrip)
{
    for (const auto &shape : litmusShapes())
    {
        for (std::uint64_t seed = 1; seed <= 5; ++seed)
        {
            LitmusSpec spec = makeLitmusSpec(shape, seed);
            LitmusSpec back;
            std::string err;
            ASSERT_TRUE(
                LitmusSpec::parse(spec.format(), back, &err))
                << shape << " seed " << seed << ": " << err;
            EXPECT_EQ(spec.format(), back.format());
        }
    }
}

TEST(VerifyLitmus, GenerationIsSeedDeterministic)
{
    for (const auto &shape : litmusShapes())
    {
        EXPECT_EQ(makeLitmusSpec(shape, 7).format(),
                  makeLitmusSpec(shape, 7).format());
        // Seeds actually vary the program (values/locs/delays).
        std::set<std::string> distinct;
        for (std::uint64_t seed = 0; seed < 8; ++seed)
            distinct.insert(makeLitmusSpec(shape, seed).format());
        EXPECT_GT(distinct.size(), 1u) << shape;
    }
}

TEST(VerifyLitmus, ScEnumeratorMatchesHandDerivedMp)
{
    // MP without the data dependency: W x=1; W y=1 || R y; R x.
    LitmusSpec spec;
    std::string err;
    ASSERT_TRUE(LitmusSpec::parse(
        "v1;shape=mp;seed=0;sc_only=0;locs=0.0,1.0;"
        "t=W0=1,W1=1;t=R1:r0,R0:r1;forbid=t1.r0=1&t1.r1=0",
        spec, &err))
        << err;
    auto outcomes = enumerateScOutcomes(spec);
    // (r0, r1) in (thread,reg) ascending order: y then x.
    std::set<std::vector<std::uint32_t>> got(outcomes.begin(),
                                             outcomes.end());
    std::set<std::vector<std::uint32_t>> want = {
        {0, 0}, {0, 1}, {1, 1}};
    EXPECT_EQ(got, want); // {1, 0} is the forbidden one
}

TEST(VerifyLitmus, ScForbiddenClausesAreTheComplement)
{
    LitmusSpec spec;
    std::string err;
    ASSERT_TRUE(LitmusSpec::parse(
        "v1;shape=custom;seed=0;sc_only=0;locs=0.0,1.0;"
        "t=W0=1,W1=1;t=R1:r0,R0:r1",
        spec, &err))
        << err;
    auto clauses = scForbiddenClauses(spec);
    // Domains: r0 in {0,1}, r1 in {0,1}; SC reaches 3 of 4.
    ASSERT_EQ(clauses.size(), 1u);
    ASSERT_EQ(clauses[0].size(), 2u);
    // The single forbidden outcome is r0=1 (flag seen), r1=0 (data
    // missed).
    std::uint32_t r0 = 0, r1 = 0;
    for (const auto &t : clauses[0])
    {
        if (t.reg == 0)
            r0 = t.value;
        else
            r1 = t.value;
    }
    EXPECT_EQ(r0, 1u);
    EXPECT_EQ(r1, 0u);
}

TEST(VerifyLitmus, MatrixRespectsScOnly)
{
    LitmusSpec iriw = makeLitmusSpec("iriw", 1);
    EXPECT_TRUE(iriw.scOnly);
    for (const auto &[p, c] : litmusMatrix(iriw))
    {
        (void)p;
        EXPECT_EQ(c, "sc");
    }
    LitmusSpec mp = makeLitmusSpec("mp", 1);
    bool sawRc = false;
    for (const auto &[p, c] : litmusMatrix(mp))
    {
        (void)p;
        sawRc |= c == "rc";
    }
    EXPECT_TRUE(sawRc);
}

TEST(VerifyLitmus, FixedSeedBatchPassesOnGtsc)
{
    // One spec per shape, full matrix; the real protocols must never
    // produce a forbidden outcome.
    auto result = runLitmusBatch(harness::benchConfig(), 12345,
                                 static_cast<unsigned>(
                                     litmusShapes().size()));
    for (const auto &f : result.failures)
        ADD_FAILURE() << f.report;
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(result.tests, litmusShapes().size());
}

TEST(VerifyLitmus, ForbiddenOutcomeIsDetectedAndShrunk)
{
    // Sabotage the oracle: forbid an outcome SC *requires* (both
    // readers terminate having read something), so every run fails
    // and the shrinker has real work. The noise ops around the core
    // must shrink away.
    LitmusSpec spec;
    std::string err;
    ASSERT_TRUE(LitmusSpec::parse(
        "v1;shape=custom;seed=9;sc_only=1;locs=0.0,1.0;"
        "t=W0=1,D5,W1=2;t=D3,R1:r0,R0:r1;"
        "forbid=t1.r0=0|t1.r0=2",
        spec, &err))
        << err;
    sim::Config base = harness::benchConfig();
    ASSERT_FALSE(runLitmusCell(base, spec, "gtsc", "sc"));

    LitmusSpec small = shrinkLitmus(base, spec, "gtsc", "sc");
    ASSERT_FALSE(runLitmusCell(base, small, "gtsc", "sc"));
    std::size_t ops = 0;
    for (const auto &t : small.threads)
        ops += t.size();
    // 1-minimal: the load of loc1 alone (reads 0) reproduces.
    EXPECT_LT(ops, 3u);
    // Replayable: the shrunk spec round-trips.
    LitmusSpec back;
    ASSERT_TRUE(LitmusSpec::parse(small.format(), back, &err)) << err;
    EXPECT_EQ(small.format(), back.format());
}
