/**
 * @file
 * The invariant evaluators, fed known-good and hand-crafted
 * known-bad states. A real settled snapshot from the model must pass
 * everything; each targeted corruption must trip exactly its check.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "verify/invariants.hh"
#include "verify/model.hh"

using namespace gtsc;
using namespace gtsc::verify;

namespace
{

struct Fixture
{
    sim::Config cfg;
    ModelSim model;
    WorldState good;
    InvariantParams params;

    Fixture() : model(cfg)
    {
        auto init = model.init();
        EXPECT_TRUE(init.violations.empty());
        good = init.state;
        params = model.invariantParams();

        // Give the state one resident line in each cache so the
        // cross-level checks have something to look at.
        core::VerifyLineState line;
        line.lineAddr = model.lineAddr(0);
        line.meta.wts = 5;
        line.meta.rts = 15;
        line.meta.epoch = 0;
        good.l2.lines.push_back(line);
        good.l1[0].lines.push_back(line);
        good.l2.memTs = 15;
    }

    static bool
    has(const std::vector<std::string> &violations,
        const std::string &name)
    {
        return std::any_of(violations.begin(), violations.end(),
                           [&](const std::string &v) {
                               return v.rfind(name + ":", 0) == 0;
                           });
    }
};

} // namespace

TEST(VerifyInvariants, SettledSnapshotIsClean)
{
    Fixture f;
    EXPECT_TRUE(checkStateInvariants(f.good, f.params).empty());
    EXPECT_TRUE(checkTransitionInvariants(f.good, f.good).empty());
}

TEST(VerifyInvariants, WtsAboveRtsTrips)
{
    Fixture f;
    WorldState bad = f.good;
    bad.l2.lines[0].meta.wts = bad.l2.lines[0].meta.rts + 1;
    EXPECT_TRUE(
        Fixture::has(checkStateInvariants(bad, f.params), "WtsRtsOrder"));
}

TEST(VerifyInvariants, TimestampPastWidthTrips)
{
    Fixture f;
    WorldState bad = f.good;
    bad.l1[0].warpTs[0] = f.params.tsMax + 1;
    EXPECT_TRUE(
        Fixture::has(checkStateInvariants(bad, f.params), "TsBound"));
}

TEST(VerifyInvariants, StaleEpochResidentLineTrips)
{
    Fixture f;
    WorldState bad = f.good;
    bad.domain.epoch = 1;
    bad.l1[0].epoch = 1; // adopted, but the line below was not flushed
    EXPECT_TRUE(Fixture::has(checkStateInvariants(bad, f.params),
                             "L1LineEpoch"));
}

TEST(VerifyInvariants, L1NewerThanL2Trips)
{
    Fixture f;
    WorldState bad = f.good;
    bad.l1[0].lines[0].meta.wts = bad.l2.lines[0].meta.wts + 1;
    bad.l1[0].lines[0].meta.rts = bad.l2.lines[0].meta.rts + 1;
    EXPECT_TRUE(Fixture::has(checkStateInvariants(bad, f.params),
                             "L1L2Containment"));
}

TEST(VerifyInvariants, StaleL1LeaseOverlappingNewerVersionTrips)
{
    Fixture f;
    WorldState bad = f.good;
    // L2 moved to version 10; the L1 still holds version 5 with a
    // lease reaching past 10.
    bad.l2.lines[0].meta.wts = 10;
    bad.l2.lines[0].meta.rts = 20;
    bad.l1[0].lines[0].meta.rts = 12;
    EXPECT_TRUE(Fixture::has(checkStateInvariants(bad, f.params),
                             "L1L2Containment"));
}

TEST(VerifyInvariants, LeaseBeyondMemTsAfterL2EvictTrips)
{
    Fixture f;
    WorldState bad = f.good;
    bad.l2.lines.clear(); // line gone from L2, lease not folded
    bad.l2.memTs = bad.l1[0].lines[0].meta.rts - 1;
    EXPECT_TRUE(Fixture::has(checkStateInvariants(bad, f.params),
                             "MemTsDominance"));
}

TEST(VerifyInvariants, SameVersionDifferentDataTrips)
{
    Fixture f;
    WorldState bad = f.good;
    bad.l1[0].lines[0].data.setWord(3, 0xbad);
    EXPECT_TRUE(Fixture::has(checkStateInvariants(bad, f.params),
                             "SameVersionSameData"));

    // A store-locked line is exempt (merged words precede the ack).
    bad.l1[0].storeByLine.push_back({bad.l1[0].lines[0].lineAddr, 9});
    bad.l1[0].pendingStores.emplace_back();
    bad.l1[0].pendingStores.back().id = 9;
    bad.l1[0].pendingStores.back().access.lineAddr =
        bad.l1[0].lines[0].lineAddr;
    EXPECT_FALSE(Fixture::has(checkStateInvariants(bad, f.params),
                              "SameVersionSameData"));
}

TEST(VerifyInvariants, OrphanedStoreLockTrips)
{
    Fixture f;
    WorldState bad = f.good;
    bad.l1[0].storeByLine.push_back({f.model.lineAddr(1), 42});
    EXPECT_TRUE(Fixture::has(checkStateInvariants(bad, f.params),
                             "StoreLockConsistency"));
}

TEST(VerifyInvariants, DeadMshrEntryTrips)
{
    Fixture f;
    WorldState bad = f.good;
    core::L1VerifyState::MshrEntryState entry;
    entry.lineAddr = f.model.lineAddr(0);
    entry.requestSent = true;
    entry.outstanding = 0; // expects no response: lost message
    entry.lockWait = false;
    entry.waiters.emplace_back();
    bad.l1[0].mshr.push_back(entry);
    EXPECT_TRUE(
        Fixture::has(checkStateInvariants(bad, f.params), "MshrLive"));
}

TEST(VerifyInvariants, EpochRewindTrips)
{
    Fixture f;
    WorldState after = f.good;
    WorldState before = f.good;
    before.domain.epoch = 2;
    after.domain.epoch = 1;
    EXPECT_TRUE(Fixture::has(checkTransitionInvariants(before, after),
                             "EpochMonotone"));
}

TEST(VerifyInvariants, SameEpochTimeRewindsTrip)
{
    Fixture f;
    WorldState before = f.good;

    WorldState after = f.good;
    after.l2.memTs = before.l2.memTs - 1;
    EXPECT_TRUE(Fixture::has(checkTransitionInvariants(before, after),
                             "MemTsMonotone"));

    after = f.good;
    after.l2.lines[0].meta.wts = before.l2.lines[0].meta.wts - 1;
    EXPECT_TRUE(Fixture::has(checkTransitionInvariants(before, after),
                             "L2WtsMonotone"));

    after = f.good;
    after.l1[0].warpTs[0] = 10;
    WorldState before2 = f.good;
    before2.l1[0].warpTs[0] = 11;
    EXPECT_TRUE(Fixture::has(checkTransitionInvariants(before2, after),
                             "WarpTsMonotone"));

    // Across an epoch change every rewind is by design.
    after = f.good;
    after.domain.epoch = before.domain.epoch + 1;
    after.l2.memTs = 1;
    EXPECT_TRUE(checkTransitionInvariants(before, after).empty());
}
