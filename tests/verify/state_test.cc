/**
 * @file
 * Canonicalization and hashing: states that differ only in history
 * (absolute request ids, held-message arrival order across SMs) must
 * key identically; states that differ in behaviour must not.
 */

#include <gtest/gtest.h>

#include "verify/model.hh"
#include "verify/shrink.hh"
#include "verify/state.hh"

using namespace gtsc;
using namespace gtsc::verify;

namespace
{

WorldState
smallState()
{
    sim::Config cfg;
    ModelSim model(cfg);
    return model.init().state;
}

} // namespace

TEST(VerifyState, CanonicalKeyIsDeterministic)
{
    WorldState a = smallState();
    WorldState b = smallState();
    EXPECT_EQ(canonicalKey(a), canonicalKey(b));
    EXPECT_TRUE(hashKey(canonicalKey(a)) == hashKey(canonicalKey(b)));
}

TEST(VerifyState, NextAccessIdIsHistoryNotBehaviour)
{
    WorldState a = smallState();
    WorldState b = a;
    b.nextAccessId += 1000;
    EXPECT_EQ(canonicalKey(a), canonicalKey(b));
}

TEST(VerifyState, PendingPacketOrderAcrossSmsIsCanonicalized)
{
    WorldState a = smallState();
    mem::Packet p0;
    p0.type = mem::MsgType::BusRd;
    p0.lineAddr = kVerifyBase;
    p0.src = 0;
    mem::Packet p1 = p0;
    p1.src = 1;

    WorldState b = a;
    a.reqs.push_back(p0);
    a.reqs.push_back(p1);
    b.reqs.push_back(p1);
    b.reqs.push_back(p0);
    EXPECT_EQ(canonicalKey(a), canonicalKey(b));

    // Same-SM order is FIFO delivery order: NOT canonicalized.
    mem::Packet p0b = p0;
    p0b.type = mem::MsgType::BusWr;
    WorldState c = smallState();
    WorldState d = c;
    c.reqs = {p0, p0b};
    d.reqs = {p0b, p0};
    EXPECT_NE(canonicalKey(c), canonicalKey(d));
}

TEST(VerifyState, RequestIdsAreRenumberedOrderPreserving)
{
    WorldState a = smallState();
    WorldState b = a;
    auto mk = [](std::uint64_t id) {
        mem::Packet p;
        p.type = mem::MsgType::BusWr;
        p.lineAddr = kVerifyBase;
        p.reqId = id;
        return p;
    };
    // (3, 7) and (13, 27): same relative order, different absolutes.
    a.reqs = {mk(3), mk(7)};
    b.reqs = {mk(13), mk(27)};
    EXPECT_EQ(canonicalKey(a), canonicalKey(b));

    // Inverted relative order is different behaviour.
    WorldState c = a;
    c.reqs = {mk(7), mk(3)};
    EXPECT_NE(canonicalKey(a), canonicalKey(c));
}

TEST(VerifyState, BehaviourDifferencesChangeTheKey)
{
    WorldState a = smallState();

    WorldState b = a;
    b.threads[0].issued++;
    EXPECT_NE(canonicalKey(a), canonicalKey(b));

    WorldState c = a;
    c.domain.epoch++;
    EXPECT_NE(canonicalKey(a), canonicalKey(c));

    WorldState d = a;
    d.l2.memTs++;
    EXPECT_NE(canonicalKey(a), canonicalKey(d));

    WorldState e = a;
    e.memLines[0].setWord(0, 0x1234);
    EXPECT_NE(canonicalKey(a), canonicalKey(e));
}

TEST(VerifyState, HashSplitsDifferentKeys)
{
    Hash128 h1 = hashKey("abc");
    Hash128 h2 = hashKey("abd");
    Hash128 h3 = hashKey("abc");
    EXPECT_FALSE(h1 == h2);
    EXPECT_TRUE(h1 == h3);
}

TEST(VerifyShrink, DdminIsOneMinimal)
{
    // Fails iff the sequence contains both 3 and 7.
    auto fails = [](const std::vector<int> &v) {
        bool has3 = false, has7 = false;
        for (int x : v)
        {
            has3 |= x == 3;
            has7 |= x == 7;
        }
        return has3 && has7;
    };
    std::vector<int> input = {1, 2, 3, 4, 5, 6, 7, 8};
    auto out = ddmin(input, fails);
    EXPECT_EQ(out, (std::vector<int>{3, 7}));
}

TEST(VerifyShrink, DdminKeepsOrder)
{
    // Fails iff 7 appears before 3 somewhere.
    auto fails = [](const std::vector<int> &v) {
        int seen7 = 0;
        for (int x : v)
        {
            if (x == 7)
                seen7 = 1;
            if (x == 3 && seen7)
                return true;
        }
        return false;
    };
    std::vector<int> input = {9, 7, 1, 3, 7, 2};
    auto out = ddmin(input, fails);
    EXPECT_EQ(out, (std::vector<int>{7, 3}));
}
