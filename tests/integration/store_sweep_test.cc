/**
 * @file
 * End-to-end contract of the persistent result store: a warm rerun
 * of a figure-12-style experiment matrix through SweepRunner
 * performs ZERO simulations (runOne is never called) and returns
 * results bit-identical to the cold pass — same CSV report rows,
 * same JSON, same full stat dumps. This is the acceptance gate for
 * `sweep.store`; CI additionally runs the real bench matrix twice
 * (see .github/workflows/ci.yml, store-serving job).
 */

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "serve/result_store.hh"

namespace fs = std::filesystem;
using namespace gtsc;

namespace
{

struct TempDir
{
    TempDir()
    {
        std::string tmpl =
            (fs::temp_directory_path() / "gtsc-store-sweep-XXXXXX")
                .string();
        path = mkdtemp(tmpl.data());
    }
    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
    std::string path;
};

std::vector<harness::RunSpec>
matrix()
{
    sim::Config cfg;
    cfg.setInt("gpu.num_sms", 2);
    cfg.setInt("gpu.warps_per_sm", 2);
    cfg.setInt("gpu.num_partitions", 2);
    cfg.setDouble("wl.scale", 0.25);
    cfg.setBool("check.enabled", false);

    std::vector<harness::RunSpec> specs;
    for (const char *wl : {"bh", "cc", "vpr", "bfs"})
        for (const char *proto : {"tc", "gtsc"})
            for (const char *cons : {"sc", "rc"})
                specs.push_back(
                    harness::RunSpec{cfg, proto, cons, wl, ""});
    return specs;
}

serve::ResultStore
storeAt(const std::string &root)
{
    serve::ResultStore::Options opts;
    opts.root = root;
    return serve::ResultStore(opts);
}

} // namespace

TEST(StoreSweep, WarmRerunSkipsEverySimulationBitIdentically)
{
    TempDir td;
    std::vector<harness::RunSpec> specs = matrix();

    // Cold pass: everything misses, simulates, and is inserted.
    serve::ResultStore cold = storeAt(td.path);
    harness::SweepOptions coldOpts;
    coldOpts.jobs = 1;
    coldOpts.cache = &cold;
    std::uint64_t before = harness::runOneCallCount();
    std::vector<harness::RunResult> coldRes =
        harness::SweepRunner(coldOpts).run(specs);
    EXPECT_EQ(harness::runOneCallCount() - before, specs.size());
    EXPECT_EQ(cold.stats().hits, 0u);
    EXPECT_EQ(cold.stats().puts, specs.size());

    // Warm pass through a fresh store instance on the same root —
    // exactly what a rerun of the bench binary does.
    serve::ResultStore warm = storeAt(td.path);
    harness::SweepOptions warmOpts;
    warmOpts.jobs = 1;
    warmOpts.cache = &warm;
    before = harness::runOneCallCount();
    std::vector<harness::RunResult> warmRes =
        harness::SweepRunner(warmOpts).run(specs);

    EXPECT_EQ(harness::runOneCallCount() - before, 0u)
        << "warm rerun must not simulate anything";
    EXPECT_EQ(warm.stats().hits, specs.size());
    EXPECT_EQ(warm.stats().misses, 0u);
    EXPECT_EQ(warm.stats().repaired, 0u);

    ASSERT_EQ(warmRes.size(), coldRes.size());
    for (std::size_t i = 0; i < coldRes.size(); ++i) {
        EXPECT_EQ(harness::csvRow(warmRes[i]),
                  harness::csvRow(coldRes[i]))
            << specs[i].displayLabel();
        EXPECT_EQ(harness::toJson(warmRes[i]),
                  harness::toJson(coldRes[i]))
            << specs[i].displayLabel();
        EXPECT_EQ(warmRes[i].stats.toString(),
                  coldRes[i].stats.toString())
            << specs[i].displayLabel();
    }
}

TEST(StoreSweep, ParallelWarmPassStaysBitIdentical)
{
    TempDir td;
    std::vector<harness::RunSpec> specs = matrix();

    serve::ResultStore cold = storeAt(td.path);
    harness::SweepOptions coldOpts;
    coldOpts.jobs = 2; // concurrent inserts into one store
    coldOpts.cache = &cold;
    std::vector<harness::RunResult> coldRes =
        harness::SweepRunner(coldOpts).run(specs);
    EXPECT_EQ(cold.stats().puts, specs.size());

    serve::ResultStore warm = storeAt(td.path);
    harness::SweepOptions warmOpts;
    warmOpts.jobs = 2;
    warmOpts.cache = &warm;
    std::uint64_t before = harness::runOneCallCount();
    std::vector<harness::RunResult> warmRes =
        harness::SweepRunner(warmOpts).run(specs);
    EXPECT_EQ(harness::runOneCallCount() - before, 0u);

    ASSERT_EQ(warmRes.size(), coldRes.size());
    for (std::size_t i = 0; i < coldRes.size(); ++i)
        EXPECT_EQ(harness::csvRow(warmRes[i]),
                  harness::csvRow(coldRes[i]));
}
