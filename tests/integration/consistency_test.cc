/**
 * Memory-consistency litmus tests run on the full simulator.
 *
 *  - Message passing (mp): with fences, the consumer that saw the
 *    flag must see the data — on every protocol and model.
 *  - Store buffering (sb): with fences between the store and load,
 *    both threads observing the initial value is forbidden.
 *
 * Each litmus runs across protocols, models and several seeds (the
 * seed perturbs timing through the workload scale).
 */

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "workloads/common.hh"

using namespace gtsc;
using harness::RunResult;
using harness::runOne;

namespace
{

sim::Config
litmusConfig(std::uint64_t seed)
{
    sim::Config cfg;
    cfg.setInt("gpu.num_sms", 4);
    cfg.setInt("gpu.warps_per_sm", 4);
    cfg.setInt("gpu.num_partitions", 2);
    cfg.setInt("l1.size_bytes", 4 * 1024);
    cfg.setInt("l2.partition_bytes", 32 * 1024);
    cfg.setInt("wl.seed", static_cast<std::int64_t>(seed));
    return cfg;
}

struct LitmusParam
{
    const char *protocol;
    const char *consistency;
};

class LitmusMatrix : public ::testing::TestWithParam<LitmusParam>
{
};

} // namespace

TEST_P(LitmusMatrix, MessagePassingObservesData)
{
    const auto &p = GetParam();
    for (std::uint64_t seed : {1, 2, 3}) {
        RunResult r = runOne(litmusConfig(seed), p.protocol,
                             p.consistency, "mp");
        EXPECT_EQ(r.checkerViolations, 0u)
            << p.protocol << "/" << p.consistency << " seed " << seed;
        EXPECT_EQ(r.spinGiveups, 0u)
            << "consumer must eventually see the flag";
        EXPECT_TRUE(r.verified)
            << "flag seen but stale data read: " << p.protocol << "/"
            << p.consistency;
    }
}

TEST_P(LitmusMatrix, StoreBufferingWithFencesForbidden)
{
    const auto &p = GetParam();
    for (std::uint64_t seed : {1, 2, 3, 4}) {
        sim::Config cfg = litmusConfig(seed);
        RunResult r = runOne(cfg, p.protocol, p.consistency, "sb");
        EXPECT_EQ(r.checkerViolations, 0u)
            << p.protocol << "/" << p.consistency;
        EXPECT_TRUE(r.verified)
            << "forbidden SB outcome (0,0) observed on " << p.protocol
            << "/" << p.consistency << " seed " << seed;
    }
}

TEST_P(LitmusMatrix, CoRRNeverTravelsBackInTime)
{
    const auto &p = GetParam();
    for (std::uint64_t seed : {1, 2, 3, 4, 5}) {
        RunResult r = runOne(litmusConfig(seed), p.protocol,
                             p.consistency, "corr");
        EXPECT_EQ(r.checkerViolations, 0u)
            << p.protocol << "/" << p.consistency;
        EXPECT_TRUE(r.verified)
            << "coRR violated (new then old) on " << p.protocol << "/"
            << p.consistency << " seed " << seed;
    }
}

TEST_P(LitmusMatrix, IriwAgreementUnderSc)
{
    const auto &p = GetParam();
    if (std::string(p.consistency) != "sc")
        GTEST_SKIP() << "IRIW disagreement is only forbidden "
                        "under SC (write atomicity)";
    for (std::uint64_t seed : {1, 2, 3, 4, 5}) {
        RunResult r = runOne(litmusConfig(seed), p.protocol,
                             p.consistency, "iriw");
        EXPECT_EQ(r.checkerViolations, 0u) << p.protocol;
        EXPECT_TRUE(r.verified)
            << "IRIW readers disagreed on store order under SC: "
            << p.protocol << " seed " << seed;
    }
}

TEST(LitmusGtsc, IriwAgreementEvenUnderRc)
{
    // Timestamp order is a total order on stores, so G-TSC keeps
    // write atomicity in *logical* time even under RC.
    for (std::uint64_t seed : {1, 2, 3, 4, 5}) {
        RunResult r = runOne(litmusConfig(seed), "gtsc", "rc", "iriw");
        EXPECT_EQ(r.checkerViolations, 0u);
        EXPECT_TRUE(r.verified) << "seed " << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, LitmusMatrix,
    ::testing::Values(LitmusParam{"gtsc", "sc"},
                      LitmusParam{"gtsc", "rc"},
                      LitmusParam{"tc", "sc"}, LitmusParam{"tc", "rc"},
                      LitmusParam{"nol1", "sc"},
                      LitmusParam{"nol1", "rc"}),
    [](const ::testing::TestParamInfo<LitmusParam> &info) {
        return std::string(info.param.protocol) + "_" +
               info.param.consistency;
    });
