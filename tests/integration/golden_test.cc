/**
 * Golden-statistics regression tests (gem5-style): pinned end-to-end
 * numbers for a handful of configurations. The simulator is fully
 * deterministic, so any diff here means the *timing model* changed —
 * which must be a deliberate decision, not an accident.
 *
 * If you intentionally change timing behaviour, re-generate with:
 *
 *   for spec in "gtsc rc bh" "gtsc sc stress" "tc rc stn" \
 *               "nol1 rc vpr" "gtsc tso km"; do set -- $spec; \
 *     ./build/examples/gtsc-sim run $1 $2 $3 gpu.num_sms=4 \
 *       gpu.warps_per_sm=4 gpu.num_partitions=2 wl.scale=0.5 --stats; \
 *   done
 *
 * and update the table below, explaining the change in your commit.
 */

#include <gtest/gtest.h>

#include "harness/runner.hh"

using namespace gtsc;

namespace
{

struct Golden
{
    const char *protocol;
    const char *consistency;
    const char *workload;
    Cycle cycles;
    std::uint64_t instructions;
    std::uint64_t l1Hits;
    std::uint64_t l2Accesses;
    std::uint64_t nocReqBytes;
    std::uint64_t nocRespBytes;
    std::uint64_t dramReads;
};

const Golden kGolden[] = {
    {"gtsc", "rc", "bh", 6453, 2000, 363, 649, 13836, 69766, 339},
    {"gtsc", "sc", "stress", 2006, 470, 41, 272, 12664, 21932, 129},
    {"tc", "rc", "stn", 3416, 1120, 0, 1024, 28160, 113920, 64},
    {"nol1", "rc", "vpr", 2956, 848, 0, 480, 11520, 34560, 205},
    {"gtsc", "tso", "km", 7287, 1664, 361, 719, 16692, 88308, 528},
};

class GoldenStats : public ::testing::TestWithParam<Golden>
{
};

} // namespace

TEST_P(GoldenStats, ExactMatch)
{
    const Golden &g = GetParam();
    sim::Config cfg;
    cfg.setInt("gpu.num_sms", 4);
    cfg.setInt("gpu.warps_per_sm", 4);
    cfg.setInt("gpu.num_partitions", 2);
    cfg.setDouble("wl.scale", 0.5);

    harness::RunResult r =
        harness::runOne(cfg, g.protocol, g.consistency, g.workload);
    EXPECT_EQ(r.cycles, g.cycles);
    EXPECT_EQ(r.instructions, g.instructions);
    EXPECT_EQ(r.l1Hits, g.l1Hits);
    EXPECT_EQ(r.l2Accesses, g.l2Accesses);
    EXPECT_EQ(r.stats.get("noc.req.bytes"), g.nocReqBytes);
    EXPECT_EQ(r.stats.get("noc.resp.bytes"), g.nocRespBytes);
    EXPECT_EQ(r.stats.get("dram.reads"), g.dramReads);
    EXPECT_EQ(r.checkerViolations, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Pinned, GoldenStats, ::testing::ValuesIn(kGolden),
    [](const ::testing::TestParamInfo<Golden> &info) {
        return std::string(info.param.protocol) + "_" +
               info.param.consistency + "_" + info.param.workload;
    });
