/**
 * Equivalence tests for the hybrid main loop (gpu.fast_forward).
 *
 * The fast-forward optimisation must be invisible: for every
 * protocol and workload, a run with the knob on must produce a
 * bit-identical statistics dump (every counter, histogram and
 * distribution) and the same final cycle count as a run with the
 * knob off. The matrix below crosses the coherence protocols with a
 * litmus kernel (fine-grained synchronisation, frequent short
 * stalls) and a coherent workload (long DRAM-bound quiet phases,
 * where skipping actually pays).
 */

#include <gtest/gtest.h>

#include "harness/runner.hh"

using namespace gtsc;

namespace
{

struct Case
{
    const char *protocol;
    const char *consistency;
    const char *workload;
};

const Case kCases[] = {
    {"gtsc", "sc", "mp"},   {"gtsc", "rc", "cc"},
    {"tc", "sc", "mp"},     {"tc", "rc", "cc"},
    {"noncoh", "sc", "mp"}, {"noncoh", "rc", "ccp"},
};

sim::Config
smallConfig()
{
    sim::Config cfg;
    cfg.setInt("gpu.num_sms", 4);
    cfg.setInt("gpu.warps_per_sm", 4);
    cfg.setInt("gpu.num_partitions", 2);
    cfg.setDouble("wl.scale", 0.5);
    return cfg;
}

class FastForwardEquivalence : public ::testing::TestWithParam<Case>
{
};

} // namespace

TEST_P(FastForwardEquivalence, StatsBitIdentical)
{
    const Case &c = GetParam();

    sim::Config off = smallConfig();
    off.setBool("gpu.fast_forward", false);
    harness::RunResult slow =
        harness::runOne(off, c.protocol, c.consistency, c.workload);

    sim::Config on = smallConfig();
    on.setBool("gpu.fast_forward", true);
    harness::RunResult fast =
        harness::runOne(on, c.protocol, c.consistency, c.workload);

    EXPECT_EQ(slow.cycles, fast.cycles);
    EXPECT_EQ(slow.checkerViolations, fast.checkerViolations);
    // Some cells legitimately fail workload verification (noncoh on
    // a message-passing litmus reads stale data by design); the knob
    // must not change the outcome either way.
    EXPECT_EQ(slow.verified, fast.verified);
    // The whole point: every stat — counters, histograms,
    // distributions — is byte-for-byte the same.
    EXPECT_EQ(slow.stats.toString(), fast.stats.toString());
    // The knob-off run must never skip.
    EXPECT_EQ(slow.fastForwarded, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, FastForwardEquivalence, ::testing::ValuesIn(kCases),
    [](const ::testing::TestParamInfo<Case> &info) {
        return std::string(info.param.protocol) + "_" +
               info.param.consistency + "_" + info.param.workload;
    });

/**
 * The optimisation must actually fire somewhere, or the equivalence
 * matrix above is vacuous. CCP (private, memory-bound) has long
 * stretches where every warp waits on DRAM.
 */
TEST(FastForward, SkipsCyclesOnMemoryBoundWorkload)
{
    sim::Config cfg = smallConfig();
    cfg.setBool("gpu.fast_forward", true);
    harness::RunResult r = harness::runOne(cfg, "gtsc", "rc", "ccp");
    EXPECT_GT(r.fastForwarded, 0u);
    EXPECT_LT(r.fastForwarded, r.cycles);
}
