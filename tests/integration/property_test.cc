/**
 * Property-based sweep: the randomized stress kernel must produce
 * ZERO coherence violations under the runtime checker for every
 * combination of protocol, consistency model, G-TSC lease, update-
 * visibility option, MSHR-combining policy and cache geometry.
 * This is the main correctness net for the protocol corner cases.
 */

#include <gtest/gtest.h>

#include "harness/runner.hh"

using namespace gtsc;
using harness::RunResult;
using harness::runOne;

namespace
{

struct SweepParam
{
    std::string protocol;
    std::string consistency;
    std::int64_t lease;
    std::string visibility;
    bool combine;
    std::int64_t l1Bytes;
    std::uint64_t seed;

    std::string
    tag() const
    {
        std::string s = protocol + "_" + consistency + "_L" +
                        std::to_string(lease) + "_" + visibility +
                        (combine ? "_comb" : "_fwd") + "_l1x" +
                        std::to_string(l1Bytes / 1024) + "_s" +
                        std::to_string(seed);
        return s;
    }
};

class StressSweep : public ::testing::TestWithParam<SweepParam>
{
};

std::vector<SweepParam>
buildSweep()
{
    std::vector<SweepParam> out;
    // G-TSC corners: lease x visibility x combining x cache size.
    for (std::int64_t lease : {2, 8, 20}) {
        for (const char *vis : {"block", "dualcopy", "writebuffer"}) {
            for (bool combine : {true, false}) {
                out.push_back({"gtsc", "rc", lease, vis, combine,
                               2 * 1024, 1});
            }
        }
    }
    // Tiny caches force evictions/conflicts; multiple seeds.
    for (std::uint64_t seed : {1, 2, 3}) {
        out.push_back({"gtsc", "rc", 10, "block", true, 1024, seed});
        out.push_back({"gtsc", "sc", 10, "block", true, 1024, seed});
        out.push_back({"gtsc", "tso", 10, "block", true, 1024, seed});
        out.push_back({"tc", "rc", 10, "block", true, 1024, seed});
        out.push_back({"tc", "sc", 10, "block", true, 1024, seed});
        out.push_back({"tc", "tso", 10, "block", true, 1024, seed});
        out.push_back({"nol1", "rc", 10, "block", true, 1024, seed});
        out.push_back({"nol1", "tso", 10, "block", true, 1024, seed});
    }
    return out;
}

} // namespace

TEST_P(StressSweep, NoCoherenceViolations)
{
    const SweepParam &p = GetParam();
    sim::Config cfg;
    cfg.setInt("gpu.num_sms", 4);
    cfg.setInt("gpu.warps_per_sm", 4);
    cfg.setInt("gpu.num_partitions", 2);
    cfg.setInt("l1.size_bytes", p.l1Bytes);
    cfg.setInt("l1.assoc", 2);
    cfg.setInt("l2.partition_bytes", 16 * 1024);
    cfg.setInt("gtsc.lease", p.lease);
    cfg.set("gtsc.update_visibility", p.visibility);
    cfg.setBool("gtsc.combine_mshr", p.combine);
    cfg.setInt("wl.seed", static_cast<std::int64_t>(p.seed));
    cfg.setDouble("wl.scale", 0.75);

    RunResult r = runOne(cfg, p.protocol, p.consistency, "stress");
    EXPECT_GT(r.loadsChecked, 100u);
    EXPECT_EQ(r.checkerViolations, 0u) << p.tag();
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, StressSweep, ::testing::ValuesIn(buildSweep()),
    [](const ::testing::TestParamInfo<SweepParam> &info) {
        return info.param.tag();
    });

// The mesh interconnect must preserve coherence too (different
// delivery orders than the crossbar).
TEST(StressMesh, MeshTopologyStaysCoherent)
{
    for (const char *proto : {"gtsc", "tc"}) {
        sim::Config cfg;
        cfg.setInt("gpu.num_sms", 4);
        cfg.setInt("gpu.warps_per_sm", 4);
        cfg.setInt("gpu.num_partitions", 2);
        cfg.set("noc.topology", "mesh");
        cfg.setDouble("wl.scale", 0.75);
        harness::RunResult r = runOne(cfg, proto, "rc", "stress");
        EXPECT_GT(r.loadsChecked, 100u) << proto;
        EXPECT_EQ(r.checkerViolations, 0u) << proto;
    }
}

// Every optional substrate feature enabled at once must still be
// coherent: mesh NoC, FR-FCFS DRAM, adaptive leases, round-robin
// scheduling, TSO.
TEST(StressKitchenSink, AllFeaturesTogetherStayCoherent)
{
    sim::Config cfg;
    cfg.setInt("gpu.num_sms", 4);
    cfg.setInt("gpu.warps_per_sm", 4);
    cfg.setInt("gpu.num_partitions", 2);
    cfg.set("noc.topology", "mesh");
    cfg.set("dram.scheduler", "frfcfs");
    cfg.setBool("gtsc.adaptive_lease", true);
    cfg.set("gpu.scheduler", "rr");
    cfg.setDouble("wl.scale", 0.75);
    harness::RunResult r = runOne(cfg, "gtsc", "tso", "stress");
    EXPECT_GT(r.loadsChecked, 100u);
    EXPECT_EQ(r.checkerViolations, 0u);
}

// Narrow timestamps force frequent overflow resets (Section V-D):
// the reset protocol itself must preserve coherence.
TEST(StressOverflow, FrequentTsResetsStayCoherent)
{
    for (std::uint64_t seed : {1, 2}) {
        sim::Config cfg;
        cfg.setInt("gpu.num_sms", 4);
        cfg.setInt("gpu.warps_per_sm", 4);
        cfg.setInt("gpu.num_partitions", 2);
        cfg.setInt("l1.size_bytes", 2 * 1024);
        cfg.setInt("l2.partition_bytes", 16 * 1024);
        cfg.setInt("gtsc.ts_bits", 8); // tsMax = 255
        cfg.setInt("gtsc.lease", 8);
        cfg.setInt("wl.seed", static_cast<std::int64_t>(seed));
        cfg.setDouble("wl.scale", 3.0);

        harness::RunResult r = runOne(cfg, "gtsc", "rc", "stress");
        EXPECT_GT(r.tsResets, 0u) << "overflow path not exercised";
        EXPECT_EQ(r.checkerViolations, 0u) << "seed " << seed;
    }
}

// Multi-kernel workloads cross kernel-boundary flushes; coherence
// and functional results must survive them.
TEST(StressMultiKernel, BfsLevelsStayCoherent)
{
    for (const char *proto : {"gtsc", "tc", "nol1"}) {
        sim::Config cfg;
        cfg.setInt("gpu.num_sms", 4);
        cfg.setInt("gpu.warps_per_sm", 4);
        cfg.setInt("gpu.num_partitions", 2);
        cfg.setDouble("wl.scale", 0.5);
        harness::RunResult r = runOne(cfg, proto, "rc", "bfs");
        EXPECT_EQ(r.checkerViolations, 0u) << proto;
        EXPECT_EQ(r.stats.get("gpu.kernels_run"), 3u);
    }
}
