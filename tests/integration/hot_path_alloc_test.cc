/**
 * Zero-alloc steady state: after a warm-up kernel has populated the
 * packet/MSHR pools, ring buffers, stat counters, memory lines and
 * queue capacities, a subsequent kernel that re-executes the same
 * access pattern must run the entire hot loop — launch, cycle loop,
 * kernel-boundary flush — without a single heap allocation.
 *
 * Global operator new/delete are replaced with counting versions for
 * this binary; the kernel-start hook snapshots the counter at each
 * kernel boundary, so the assertion covers everything between two
 * hook firings. The workload pre-builds the later kernels' programs
 * during the warm-up launch (makeProgram only std::moves them out),
 * keeping the measured region free of test-induced allocations.
 */

#include "gpu/gpu_system.hh"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "protocols/builders.hh"

using namespace gtsc;
using gpu::GpuSystem;
using gpu::WarpInstr;

namespace
{

std::atomic<std::uint64_t> g_allocs{0};

} // namespace

void *
operator new(std::size_t n)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc{};
}

void *
operator new[](std::size_t n)
{
    return ::operator new(n);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace
{

/**
 * Three identical kernels over the same footprint: shared reads (so
 * TC/G-TSC renewal traffic flows), private strided writes, compute
 * and a fence. Kernel 0 is the warm-up; kernels 1 and 2 must not
 * allocate. All programs are built during kernel 0's launch.
 */
class SteadyWorkload : public gpu::Workload
{
  public:
    static constexpr unsigned kKernels = 3;

    std::string name() const override { return "STEADY"; }
    bool requiresCoherence() const override { return false; }
    unsigned numKernels() const override { return kKernels; }

    void
    initMemory(mem::MainMemory &memory, unsigned) override
    {
        // Same lines every kernel: only kernel 0 creates them.
        for (Addr a = kShared; a < kShared + kSharedBytes; a += 4)
            memory.writeWord(a, 1);
    }

    std::unique_ptr<gpu::WarpProgram>
    makeProgram(unsigned kernel, SmId sm, WarpId warp,
                const gpu::GpuParams &params) override
    {
        if (kernel == 0 && stash_.empty()) {
            warpsPerSm_ = params.warpsPerSm;
            const unsigned warps = params.numSms * params.warpsPerSm;
            stash_.resize(kKernels);
            for (unsigned k = 0; k < kKernels; ++k) {
                stash_[k].resize(warps);
                for (unsigned s = 0; s < params.numSms; ++s)
                    for (unsigned w = 0; w < params.warpsPerSm; ++w)
                        stash_[k][s * params.warpsPerSm + w] =
                            build(s, w, params);
            }
        }
        return std::move(stash_[kernel][sm * warpsPerSm_ + warp]);
    }

  private:
    static constexpr Addr kShared = 0x10000;
    static constexpr Addr kPrivate = 0x40000;
    static constexpr unsigned kSharedBytes = 2048;

    std::unique_ptr<gpu::WarpProgram>
    build(SmId sm, WarpId warp, const gpu::GpuParams &params)
    {
        std::vector<WarpInstr> t;
        const unsigned id = sm * params.warpsPerSm + warp;
        const Addr priv = kPrivate + Addr(id) * 4096;
        for (unsigned i = 0; i < 8; ++i) {
            // Everyone streams the shared region (renewals, hits)...
            t.push_back(WarpInstr::loadStrided(
                kShared + (i * 128) % kSharedBytes, params.warpSize));
            t.push_back(WarpInstr::compute(4));
            // ...and writes a private stripe (misses, write-backs).
            t.push_back(WarpInstr::storeStrided(priv + i * 128,
                                                params.warpSize));
        }
        t.push_back(WarpInstr::fence());
        t.push_back(WarpInstr::exit());
        return std::make_unique<gpu::TraceProgram>(std::move(t));
    }

    /** stash_[kernel][sm * warpsPerSm + warp], moved out at launch. */
    std::vector<std::vector<std::unique_ptr<gpu::WarpProgram>>> stash_;
    unsigned warpsPerSm_ = 0;
};

class HotPathAlloc : public ::testing::TestWithParam<const char *>
{
};

} // namespace

TEST_P(HotPathAlloc, SteadyStateKernelsAllocateNothing)
{
    sim::Config cfg;
    cfg.setInt("gpu.num_sms", 2);
    cfg.setInt("gpu.warps_per_sm", 4);
    cfg.setInt("gpu.num_partitions", 2);

    auto builder = protocols::makeProtocol(GetParam());
    SteadyWorkload wl;
    GpuSystem sys(cfg, *builder, wl);

    std::vector<std::uint64_t> snap;
    snap.reserve(SteadyWorkload::kKernels); // the hook must not allocate
    sys.setKernelStartHook([&](const mem::MainMemory &, unsigned) {
        snap.push_back(g_allocs.load(std::memory_order_relaxed));
    });
    Cycle cycles = sys.run();
    EXPECT_GT(cycles, 0u);

    ASSERT_EQ(snap.size(), SteadyWorkload::kKernels);
    // Kernel 0 allocates: pools, counters, queues, memory lines.
    EXPECT_GT(snap[1], snap[0]);
    // Kernels 1..N-1 re-run the same pattern with everything warm:
    // launch, cycle loop and boundary flush must stay off the heap.
    EXPECT_EQ(snap[2] - snap[1], 0u)
        << "hot loop allocated " << (snap[2] - snap[1])
        << " times after warm-up";
}

INSTANTIATE_TEST_SUITE_P(Protocols, HotPathAlloc,
                         ::testing::Values("gtsc", "tc"),
                         [](const ::testing::TestParamInfo<const char *>
                                &info) { return info.param; });
