/**
 * Hot-path equivalence: the data-oriented per-cycle core must be
 * provably behavior-preserving. Every run of the pinned
 * configurations below — across fast_forward off/on, shards 1/2 and
 * the active-set scheduler on/off (8 combinations) — must reproduce,
 * bit for bit, the artifacts the pre-refactor seed produced: the
 * full stat dump, trace.json, timeline.csv and transcript.txt.
 *
 * The small artifacts (stats, timeline) are stored verbatim under
 * tests/integration/goldens/ so a mismatch shows a readable diff;
 * the multi-megabyte ones (trace, transcript) are pinned by size +
 * FNV-1a-64 hash in goldens/MANIFEST.txt.
 *
 * If you intentionally change the timing model, regenerate with the
 * commands in goldens/MANIFEST.txt's sibling files, i.e.:
 *
 *   ./build/examples/gtsc-sim run gtsc rc <wl> gpu.num_sms=4 \
 *     gpu.warps_per_sm=4 gpu.num_partitions=2 wl.scale=0.5 \
 *     obs.trace=true obs.sample_interval=200 obs.trace_dir=DIR --stats
 *
 * for wl in {bh, cc}, then refresh the stored files and manifest
 * hashes, explaining the change in your commit.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "harness/runner.hh"

using namespace gtsc;

#ifndef GTSC_GOLDEN_DIR
#error "GTSC_GOLDEN_DIR must point at tests/integration/goldens"
#endif

namespace
{

namespace fs = std::filesystem;

std::string
slurp(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << "cannot open " << path;
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

std::uint64_t
fnv64(const std::string &bytes)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : bytes) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

struct GoldenEntry
{
    std::uint64_t size = 0;
    std::uint64_t hash = 0;
};

/** MANIFEST.txt rows: "<workload> <kind> <size> <fnv64-hex>". */
std::map<std::string, GoldenEntry>
loadManifest()
{
    std::map<std::string, GoldenEntry> out;
    std::ifstream in(fs::path(GTSC_GOLDEN_DIR) / "MANIFEST.txt");
    EXPECT_TRUE(in) << "missing goldens/MANIFEST.txt";
    std::string wl, kind, hashHex;
    std::uint64_t size;
    while (in >> wl >> kind >> size >> hashHex) {
        GoldenEntry e;
        e.size = size;
        e.hash = std::stoull(hashHex, nullptr, 16);
        out[wl + "/" + kind] = e;
    }
    return out;
}

struct Setting
{
    bool fastForward;
    int shards;
    bool activeSet;
};

class HotPathEquivalence
    : public ::testing::TestWithParam<std::string>
{
};

} // namespace

TEST_P(HotPathEquivalence, BitIdenticalToSeed)
{
    const std::string wl = GetParam();
    const auto manifest = loadManifest();

    const std::string goldStats =
        slurp(fs::path(GTSC_GOLDEN_DIR) / (wl + ".stats.txt"));
    const std::string goldTimeline =
        slurp(fs::path(GTSC_GOLDEN_DIR) / (wl + ".timeline.csv"));

    const Setting kSettings[] = {
        {false, 1, false}, {true, 1, false},
        {false, 2, false}, {true, 2, false},
        {false, 1, true},  {true, 1, true},
        {false, 2, true},  {true, 2, true}};

    for (const Setting &s : kSettings) {
        SCOPED_TRACE(std::string("fast_forward=") +
                     (s.fastForward ? "on" : "off") +
                     " shards=" + std::to_string(s.shards) +
                     " active_set=" + (s.activeSet ? "on" : "off"));

        fs::path dir = fs::temp_directory_path() /
                       ("gtsc_hot_path_eq_" + wl + "_" +
                        std::to_string(s.fastForward) + "_" +
                        std::to_string(s.shards) + "_" +
                        std::to_string(s.activeSet));
        fs::remove_all(dir);

        sim::Config cfg;
        cfg.setInt("gpu.num_sms", 4);
        cfg.setInt("gpu.warps_per_sm", 4);
        cfg.setInt("gpu.num_partitions", 2);
        cfg.setDouble("wl.scale", 0.5);
        cfg.setBool("gpu.fast_forward", s.fastForward);
        cfg.setInt("gpu.shards", s.shards);
        cfg.setBool("gpu.active_set", s.activeSet);
        cfg.setBool("obs.trace", true);
        cfg.setInt("obs.sample_interval", 200);
        cfg.set("obs.trace_dir", dir.string());

        harness::RunResult r = harness::runOne(cfg, "gtsc", "rc", wl);

        // Full stat dump, byte for byte.
        EXPECT_EQ(r.stats.toString(), goldStats);

        std::string trace, timeline, transcript;
        for (const std::string &f : r.obsFiles) {
            if (f.size() > 11 &&
                f.compare(f.size() - 11, 11, ".trace.json") == 0)
                trace = slurp(f);
            else if (f.size() > 13 &&
                     f.compare(f.size() - 13, 13, ".timeline.csv") == 0)
                timeline = slurp(f);
            else if (f.size() > 15 &&
                     f.compare(f.size() - 15, 15,
                               ".transcript.txt") == 0)
                transcript = slurp(f);
        }
        ASSERT_FALSE(trace.empty());
        ASSERT_FALSE(timeline.empty());
        ASSERT_FALSE(transcript.empty());

        EXPECT_EQ(timeline, goldTimeline);

        auto check = [&](const char *kind, const std::string &bytes) {
            auto it = manifest.find(wl + "/" + kind);
            ASSERT_NE(it, manifest.end()) << kind;
            EXPECT_EQ(bytes.size(), it->second.size) << kind;
            EXPECT_EQ(fnv64(bytes), it->second.hash) << kind;
        };
        check("stats", r.stats.toString() );
        check("trace", trace);
        check("timeline", timeline);
        check("transcript", transcript);

        fs::remove_all(dir);
    }
}

INSTANTIATE_TEST_SUITE_P(Workloads, HotPathEquivalence,
                         ::testing::Values("bh", "cc"),
                         [](const ::testing::TestParamInfo<std::string>
                                &info) { return info.param; });
