/**
 * The full benchmark matrix under the runtime coherence checker:
 * every paper benchmark on every coherent protocol and consistency
 * model (plus the non-coherent L1 on the set that tolerates it),
 * at a tiny configuration. This is the broadest correctness net:
 * every workload's access patterns drive every protocol.
 *
 * The whole matrix is simulated once, up front, through the parallel
 * SweepRunner (worker count from GTSC_JOBS, default hardware
 * threads); each TEST_P then asserts on its cached cell. Results are
 * identical to running each cell inline — see sweep_test.cc for the
 * determinism regression.
 */

#include <gtest/gtest.h>

#include <map>

#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "workloads/registry.hh"

using namespace gtsc;
using harness::RunResult;
using harness::RunSpec;

namespace
{

struct MatrixParam
{
    std::string workload;
    std::string protocol;
    std::string consistency;

    std::string
    tag() const
    {
        return workload + "_" + protocol + "_" + consistency;
    }
};

std::vector<MatrixParam>
buildMatrix()
{
    std::vector<MatrixParam> out;
    for (const auto &wl : workloads::allBenchmarks()) {
        for (const char *proto : {"gtsc", "tc", "nol1"}) {
            for (const char *cons : {"sc", "rc"})
                out.push_back({wl, proto, cons});
        }
        out.push_back({wl, "gtsc", "tso"});
    }
    for (const auto &wl : workloads::privateSet())
        out.push_back({wl, "noncoh", "rc"});
    return out;
}

sim::Config
matrixConfig()
{
    sim::Config cfg;
    cfg.setInt("gpu.num_sms", 4);
    cfg.setInt("gpu.warps_per_sm", 4);
    cfg.setInt("gpu.num_partitions", 2);
    cfg.setInt("l1.size_bytes", 4 * 1024);
    cfg.setInt("l2.partition_bytes", 32 * 1024);
    cfg.setDouble("wl.scale", 0.4);
    return cfg;
}

/** Simulate the whole matrix once (parallel); cache per-cell. */
const RunResult &
matrixResult(const MatrixParam &p)
{
    static const std::map<std::string, RunResult> kResults = [] {
        std::vector<MatrixParam> params = buildMatrix();
        std::vector<RunSpec> specs;
        specs.reserve(params.size());
        for (const auto &mp : params) {
            RunSpec spec;
            spec.config = matrixConfig();
            spec.protocol = mp.protocol;
            spec.consistency = mp.consistency;
            spec.workload = mp.workload;
            spec.label = mp.tag();
            specs.push_back(std::move(spec));
        }
        harness::SweepRunner runner;
        std::vector<RunResult> results = runner.run(specs);
        std::map<std::string, RunResult> byTag;
        for (std::size_t i = 0; i < params.size(); ++i)
            byTag.emplace(params[i].tag(), std::move(results[i]));
        return byTag;
    }();
    return kResults.at(p.tag());
}

class BenchmarkMatrix : public ::testing::TestWithParam<MatrixParam>
{
};

} // namespace

TEST_P(BenchmarkMatrix, RunsCleanUnderChecker)
{
    const MatrixParam &p = GetParam();
    const RunResult &r = matrixResult(p);
    EXPECT_GT(r.instructions, 0u);
    EXPECT_GT(r.loadsChecked, 0u) << p.tag();
    EXPECT_EQ(r.checkerViolations, 0u) << p.tag();
    EXPECT_TRUE(r.verified) << p.tag();
    // Warps must not have abandoned synchronization spins.
    EXPECT_EQ(r.spinGiveups, 0u) << p.tag();
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, BenchmarkMatrix,
    ::testing::ValuesIn(buildMatrix()),
    [](const ::testing::TestParamInfo<MatrixParam> &info) {
        return info.param.tag();
    });
