/**
 * The full benchmark matrix under the runtime coherence checker:
 * every paper benchmark on every coherent protocol and consistency
 * model (plus the non-coherent L1 on the set that tolerates it),
 * at a tiny configuration. This is the broadest correctness net:
 * every workload's access patterns drive every protocol.
 */

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "workloads/registry.hh"

using namespace gtsc;
using harness::RunResult;
using harness::runOne;

namespace
{

struct MatrixParam
{
    std::string workload;
    std::string protocol;
    std::string consistency;

    std::string
    tag() const
    {
        return workload + "_" + protocol + "_" + consistency;
    }
};

std::vector<MatrixParam>
buildMatrix()
{
    std::vector<MatrixParam> out;
    for (const auto &wl : workloads::allBenchmarks()) {
        for (const char *proto : {"gtsc", "tc", "nol1"}) {
            for (const char *cons : {"sc", "rc"})
                out.push_back({wl, proto, cons});
        }
        out.push_back({wl, "gtsc", "tso"});
    }
    for (const auto &wl : workloads::privateSet())
        out.push_back({wl, "noncoh", "rc"});
    return out;
}

class BenchmarkMatrix : public ::testing::TestWithParam<MatrixParam>
{
};

} // namespace

TEST_P(BenchmarkMatrix, RunsCleanUnderChecker)
{
    const MatrixParam &p = GetParam();
    sim::Config cfg;
    cfg.setInt("gpu.num_sms", 4);
    cfg.setInt("gpu.warps_per_sm", 4);
    cfg.setInt("gpu.num_partitions", 2);
    cfg.setInt("l1.size_bytes", 4 * 1024);
    cfg.setInt("l2.partition_bytes", 32 * 1024);
    cfg.setDouble("wl.scale", 0.4);

    RunResult r = runOne(cfg, p.protocol, p.consistency, p.workload);
    EXPECT_GT(r.instructions, 0u);
    EXPECT_GT(r.loadsChecked, 0u) << p.tag();
    EXPECT_EQ(r.checkerViolations, 0u) << p.tag();
    EXPECT_TRUE(r.verified) << p.tag();
    // Warps must not have abandoned synchronization spins.
    EXPECT_EQ(r.spinGiveups, 0u) << p.tag();
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, BenchmarkMatrix,
    ::testing::ValuesIn(buildMatrix()),
    [](const ::testing::TestParamInfo<MatrixParam> &info) {
        return info.param.tag();
    });
