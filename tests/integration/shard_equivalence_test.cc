/**
 * Equivalence tests for the sharded main loop (gpu.shards).
 *
 * Intra-run parallelism must be invisible: for every protocol, a
 * run at any shard count — with fast-forward on or off — must
 * produce a bit-identical statistics dump, the same final cycle
 * count, the same checker/verification verdicts, and byte-identical
 * observability artifacts (event trace, stat timeline, protocol
 * transcript) as the serial loop. The matrix crosses the coherence
 * protocols with a litmus kernel (fine-grained synchronisation,
 * cross-SM races through the NoC every few cycles) and coherent
 * workloads (DRAM-bound phases where shards fast-forward
 * independently inside windows).
 *
 * This test is also the TSan workhorse for the sharded loop: the CI
 * tsan job runs it to prove the shard threads share no unsynchronised
 * state.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "harness/runner.hh"
#include "obs/session.hh"

using namespace gtsc;

namespace
{

struct Case
{
    const char *protocol;
    const char *consistency;
    const char *workload;
};

const Case kCases[] = {
    {"gtsc", "rc", "cc"},
    {"gtsc", "sc", "mp"},
    {"tc", "rc", "cc"},
    {"noncoh", "rc", "ccp"},
};

sim::Config
smallConfig(unsigned shards, bool fast_forward)
{
    sim::Config cfg;
    cfg.setInt("gpu.num_sms", 4);
    cfg.setInt("gpu.warps_per_sm", 4);
    cfg.setInt("gpu.num_partitions", 2);
    cfg.setDouble("wl.scale", 0.5);
    cfg.setInt("gpu.shards", static_cast<int>(shards));
    cfg.setBool("gpu.fast_forward", fast_forward);
    cfg.setBool("obs.trace", true);
    cfg.setInt("obs.sample_interval", 50);
    return cfg;
}

std::string
traceJson(const harness::RunResult &r)
{
    std::ostringstream oss;
    r.obs->tracer()->writeChromeTrace(oss);
    return oss.str();
}

std::string
timelineCsv(const harness::RunResult &r)
{
    std::ostringstream oss;
    r.obs->timeline()->writeCsv(oss);
    return oss.str();
}

std::string
transcriptText(const harness::RunResult &r)
{
    std::ostringstream oss;
    r.obs->transcript()->writeText(oss);
    return oss.str();
}

class ShardEquivalence : public ::testing::TestWithParam<Case>
{
};

} // namespace

TEST_P(ShardEquivalence, BitIdenticalAtAnyShardCount)
{
    const Case &c = GetParam();

    harness::RunResult ref = harness::runOne(
        smallConfig(1, false), c.protocol, c.consistency, c.workload);
    ASSERT_EQ(ref.shards, 1u);
    ASSERT_NE(ref.obs, nullptr);
    const std::string ref_stats = ref.stats.toString();
    const std::string ref_trace = traceJson(ref);
    const std::string ref_timeline = timelineCsv(ref);
    const std::string ref_transcript = transcriptText(ref);

    for (unsigned shards : {1u, 2u, 4u}) {
        for (bool ff : {false, true}) {
            if (shards == 1 && !ff)
                continue; // the reference itself
            SCOPED_TRACE("shards=" + std::to_string(shards) +
                         " fast_forward=" + (ff ? "on" : "off"));
            harness::RunResult r =
                harness::runOne(smallConfig(shards, ff), c.protocol,
                                c.consistency, c.workload);
            EXPECT_EQ(r.shards, shards);
            EXPECT_EQ(r.cycles, ref.cycles);
            EXPECT_EQ(r.checkerViolations, ref.checkerViolations);
            EXPECT_EQ(r.verified, ref.verified);
            EXPECT_EQ(r.stats.toString(), ref_stats);
            EXPECT_EQ(traceJson(r), ref_trace);
            EXPECT_EQ(timelineCsv(r), ref_timeline);
            EXPECT_EQ(transcriptText(r), ref_transcript);
        }
    }
}

TEST(ShardEquivalence, EpochResetsStayCycleAccurate)
{
    // 8-bit timestamps overflow constantly, so this run crosses many
    // Section V-D epoch resets. The reset is recorded by the L2s on
    // the coordinator thread a whole window ahead of the SM shards;
    // L1s must adopt it at the exact recorded cycle
    // (TsDomain::epochAt), not on their next access — a plain
    // epoch() read here diverges (caught on the 16-SM bench before
    // epochAt existed).
    auto run = [](unsigned shards) {
        sim::Config cfg = smallConfig(shards, true);
        cfg.setInt("gtsc.ts_bits", 8);
        return harness::runOne(cfg, "gtsc", "rc", "cc");
    };
    harness::RunResult ref = run(1);
    ASSERT_GT(ref.tsResets, 0u) << "config no longer exercises resets";
    const std::string ref_stats = ref.stats.toString();
    for (unsigned shards : {2u, 4u}) {
        SCOPED_TRACE("shards=" + std::to_string(shards));
        harness::RunResult r = run(shards);
        EXPECT_EQ(r.cycles, ref.cycles);
        EXPECT_EQ(r.stats.toString(), ref_stats);
    }
}

TEST(ShardEquivalence, ShardCountClampsToSmCount)
{
    // 8 shards requested on a 4-SM machine: runs serial-equivalent
    // at the clamp, still bit-identical.
    sim::Config cfg = smallConfig(8, true);
    harness::RunResult r = harness::runOne(cfg, "gtsc", "rc", "mp");
    EXPECT_EQ(r.shards, 4u);
    harness::RunResult ref =
        harness::runOne(smallConfig(1, true), "gtsc", "rc", "mp");
    EXPECT_EQ(r.stats.toString(), ref.stats.toString());
    EXPECT_TRUE(r.verified);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ShardEquivalence, ::testing::ValuesIn(kCases),
    [](const ::testing::TestParamInfo<Case> &info) {
        return std::string(info.param.protocol) + "_" +
               info.param.consistency + "_" + info.param.workload;
    });
