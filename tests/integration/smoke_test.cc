/**
 * End-to-end smoke tests: whole-GPU simulations on tiny
 * configurations, checked by the runtime coherence checker.
 */

#include <gtest/gtest.h>

#include "harness/runner.hh"

using namespace gtsc;
using harness::RunResult;
using harness::runOne;

namespace
{

sim::Config
tinyConfig()
{
    sim::Config cfg;
    cfg.setInt("gpu.num_sms", 4);
    cfg.setInt("gpu.warps_per_sm", 4);
    cfg.setInt("gpu.num_partitions", 2);
    cfg.setInt("l1.size_bytes", 4 * 1024);
    cfg.setInt("l2.partition_bytes", 32 * 1024);
    cfg.setDouble("wl.scale", 0.5);
    return cfg;
}

} // namespace

TEST(Smoke, MessagePassingGtscRc)
{
    RunResult r = runOne(tinyConfig(), "gtsc", "rc", "mp");
    EXPECT_GT(r.cycles, 0u);
    EXPECT_EQ(r.checkerViolations, 0u);
    EXPECT_TRUE(r.verified) << "consumer must observe the data";
    EXPECT_EQ(r.spinGiveups, 0u);
}

TEST(Smoke, MessagePassingAllProtocols)
{
    for (const char *proto : {"gtsc", "tc", "nol1"}) {
        for (const char *cons : {"sc", "rc"}) {
            RunResult r = runOne(tinyConfig(), proto, cons, "mp");
            EXPECT_EQ(r.checkerViolations, 0u)
                << proto << "/" << cons;
            EXPECT_TRUE(r.verified) << proto << "/" << cons;
        }
    }
}

TEST(Smoke, StressCheckedOnAllCoherentProtocols)
{
    for (const char *proto : {"gtsc", "tc", "nol1"}) {
        for (const char *cons : {"sc", "rc"}) {
            RunResult r = runOne(tinyConfig(), proto, cons, "stress");
            EXPECT_GT(r.loadsChecked, 0u) << proto;
            EXPECT_EQ(r.checkerViolations, 0u)
                << proto << "/" << cons;
        }
    }
}

TEST(Smoke, PingPongFigure9)
{
    RunResult r = runOne(tinyConfig(), "gtsc", "rc", "pingpong");
    EXPECT_EQ(r.checkerViolations, 0u);
}

TEST(Smoke, BenchmarkBfsRunsOnGtsc)
{
    sim::Config cfg = tinyConfig();
    cfg.setDouble("wl.scale", 0.25);
    RunResult r = runOne(cfg, "gtsc", "rc", "bfs");
    EXPECT_EQ(r.checkerViolations, 0u);
    EXPECT_GT(r.instructions, 0u);
    EXPECT_GT(r.nocBytes, 0u);
}
