/**
 * Whole-system statistics invariants, cross-checked after full runs:
 * conservation laws that hold regardless of protocol or workload.
 */

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "workloads/registry.hh"

using namespace gtsc;
using harness::RunResult;
using harness::runOne;

namespace
{

sim::Config
smallConfig()
{
    sim::Config cfg;
    cfg.setInt("gpu.num_sms", 4);
    cfg.setInt("gpu.warps_per_sm", 6);
    cfg.setInt("gpu.num_partitions", 2);
    cfg.setDouble("wl.scale", 0.5);
    return cfg;
}

} // namespace

TEST(SystemInvariants, BaselineNeverTouchesL1)
{
    RunResult r = runOne(smallConfig(), "nol1", "rc", "vpr");
    EXPECT_EQ(r.stats.get("l1.tag_accesses"), 0u);
    EXPECT_EQ(r.stats.get("l1.hits"), 0u);
    EXPECT_GT(r.stats.get("l1.bypass_reads"), 0u);
    EXPECT_GT(r.stats.get("l1.bypass_writes"), 0u);
}

TEST(SystemInvariants, CycleAccountingSumsToTotal)
{
    for (const char *proto : {"gtsc", "tc", "nol1"}) {
        RunResult r = runOne(smallConfig(), proto, "rc", "bh");
        std::uint64_t sm_cycles =
            r.stats.get("sm.active_cycles") +
            r.stats.get("sm.mem_stall_cycles") +
            r.stats.get("sm.compute_stall_cycles") +
            r.stats.get("sm.idle_cycles");
        EXPECT_EQ(sm_cycles, r.cycles * 4) << proto
            << ": every SM-cycle is classified exactly once";
    }
}

TEST(SystemInvariants, RequestsAndResponsesBalance)
{
    for (const char *proto : {"gtsc", "tc", "nol1"}) {
        RunResult r = runOne(smallConfig(), proto, "rc", "stn");
        // Every request eventually gets exactly one response, and
        // both networks drained before the run ended.
        std::uint64_t reqs = r.stats.get("noc.req.packets");
        std::uint64_t resps = r.stats.get("noc.resp.packets");
        EXPECT_EQ(reqs, resps) << proto;
        EXPECT_GT(reqs, 0u);
    }
}

TEST(SystemInvariants, GtscResponseMixMatchesRequests)
{
    RunResult r = runOne(smallConfig(), "gtsc", "rc", "bh");
    // BusRd -> BusFill or BusRnw; BusWr -> BusWrAck.
    EXPECT_EQ(r.stats.get("noc.req.packets.BusRd"),
              r.stats.get("noc.resp.packets.BusFill") +
                  r.stats.get("noc.resp.packets.BusRnw"));
    EXPECT_EQ(r.stats.get("noc.req.packets.BusWr"),
              r.stats.get("noc.resp.packets.BusWrAck"));
}

TEST(SystemInvariants, L2AccessesMatchDeliveredRequests)
{
    for (const char *proto : {"gtsc", "tc"}) {
        RunResult r = runOne(smallConfig(), proto, "rc", "vpr");
        // Each delivered request is processed exactly once (waiter
        // replays after a miss re-process the packet, so accesses
        // can exceed deliveries only via those replays: accesses ==
        // deliveries + replayed-miss waiters; at minimum:).
        EXPECT_GE(r.stats.get("l2.accesses"),
                  r.stats.get("noc.req.packets"))
            << proto;
    }
}

TEST(SystemInvariants, EnergyBreakdownIsConsistent)
{
    RunResult r = runOne(smallConfig(), "gtsc", "rc", "km");
    EXPECT_GT(r.energy.core, 0.0);
    EXPECT_GT(r.energy.l1, 0.0);
    EXPECT_GT(r.energy.l2, 0.0);
    EXPECT_GT(r.energy.noc, 0.0);
    EXPECT_GT(r.energy.dram, 0.0);
    EXPECT_NEAR(r.energy.total(),
                r.energy.core + r.energy.l1 + r.energy.l2 +
                    r.energy.noc + r.energy.dram,
                1e-12);
}

TEST(SystemInvariants, BaselineL1EnergyIsStaticFree)
{
    // The BL configuration has no L1 arrays: only the (absent)
    // dynamic component may appear.
    RunResult r = runOne(smallConfig(), "nol1", "rc", "km");
    EXPECT_EQ(r.energy.l1, 0.0);
}

TEST(SystemInvariants, DeterministicAcrossRuns)
{
    RunResult a = runOne(smallConfig(), "gtsc", "rc", "bfs");
    RunResult b = runOne(smallConfig(), "gtsc", "rc", "bfs");
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.nocBytes, b.nocBytes);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.l1Hits, b.l1Hits);
}

TEST(SystemInvariants, SeedChangesSchedule)
{
    sim::Config cfg = smallConfig();
    RunResult a = runOne(cfg, "gtsc", "rc", "vpr");
    cfg.setInt("wl.seed", 99);
    RunResult b = runOne(cfg, "gtsc", "rc", "vpr");
    EXPECT_NE(a.cycles, b.cycles);
}

TEST(SystemInvariants, ScaleGrowsWork)
{
    sim::Config cfg = smallConfig();
    RunResult small = runOne(cfg, "gtsc", "rc", "bh");
    cfg.setDouble("wl.scale", 1.5);
    RunResult big = runOne(cfg, "gtsc", "rc", "bh");
    EXPECT_GT(big.instructions, small.instructions * 2);
    EXPECT_GT(big.cycles, small.cycles);
}

TEST(SystemInvariants, PaperScaleConfigRuns)
{
    // One sanity run at the paper's machine shape (scaled-down
    // workload to keep the test fast).
    sim::Config cfg = harness::paperConfig();
    cfg.setDouble("wl.scale", 0.2);
    RunResult r = runOne(cfg, "gtsc", "rc", "bh");
    EXPECT_EQ(r.checkerViolations, 0u);
    EXPECT_GT(r.instructions, 0u);
}

TEST(SystemInvariants, L2ServiceLatencyCoversEveryAccess)
{
    RunResult r = runOne(smallConfig(), "gtsc", "rc", "bh");
    const sim::Distribution &d =
        r.stats.getDistribution("l2.service_latency");
    // Every network-delivered request is sampled once on first
    // processing (waiter replays carry no injection stamp).
    EXPECT_EQ(d.count(), r.stats.get("noc.req.packets"));
    // Service latency includes at least the NoC traversal.
    EXPECT_GE(d.min(), 10.0);
}
