/**
 * Structural characterization of the twelve benchmark generators:
 * each synthetic workload must actually exhibit the sharing/intensity
 * pattern DESIGN.md says it mirrors (that is what makes the figure
 * results meaningful). These tests inspect the generated traces.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workloads/common.hh"
#include "workloads/registry.hh"

using namespace gtsc;
using gpu::WarpInstr;

namespace
{

struct TraceStats
{
    unsigned loads = 0;
    unsigned stores = 0;
    unsigned fences = 0;
    unsigned spins = 0;
    std::uint64_t computeCycles = 0;
    std::set<Addr> loadLines;
    std::set<Addr> storeLines;
    std::set<Addr> sharedStoreLines; ///< stores below kPrivateBase
};

gpu::GpuParams
gpuShape()
{
    sim::Config cfg;
    cfg.setInt("gpu.num_sms", 4);
    cfg.setInt("gpu.warps_per_sm", 4);
    return gpu::GpuParams::fromConfig(cfg);
}

TraceStats
characterize(const std::string &name, SmId sm, WarpId warp,
             unsigned kernel = 0)
{
    sim::Config cfg;
    auto wl = workloads::makeWorkload(name, cfg);
    auto prog = wl->makeProgram(kernel, sm, warp, gpuShape());
    TraceStats st;
    for (unsigned i = 0; i < 100000; ++i) {
        WarpInstr instr = prog->next();
        if (instr.op == WarpInstr::Op::Exit)
            return st;
        switch (instr.op) {
          case WarpInstr::Op::Load:
            ++st.loads;
            for (unsigned l = 0; l < 32; ++l) {
                if (instr.activeMask & (1u << l))
                    st.loadLines.insert(mem::lineAlign(instr.laneAddr(l)));
            }
            break;
          case WarpInstr::Op::Store:
            ++st.stores;
            for (unsigned l = 0; l < 32; ++l) {
                if (instr.activeMask & (1u << l)) {
                    Addr line = mem::lineAlign(instr.laneAddr(l));
                    st.storeLines.insert(line);
                    if (line < workloads::kPrivateBase)
                        st.sharedStoreLines.insert(line);
                }
            }
            break;
          case WarpInstr::Op::Fence:
            ++st.fences;
            break;
          case WarpInstr::Op::SpinLoad:
            ++st.spins;
            prog->observe(instr.spinExpect); // satisfy the spin
            break;
          case WarpInstr::Op::Compute:
            st.computeCycles += instr.computeCycles;
            break;
          default:
            break;
        }
        if (instr.op == WarpInstr::Op::Load ||
            instr.op == WarpInstr::Op::SpinLoad) {
            prog->observe(1);
        }
    }
    ADD_FAILURE() << name << " trace did not terminate";
    return st;
}

bool
intersects(const std::set<Addr> &a, const std::set<Addr> &b)
{
    for (Addr x : a) {
        if (b.count(x))
            return true;
    }
    return false;
}

} // namespace

TEST(Behavior, CoherentSetStoresToSharedLines)
{
    // Every coherence-required benchmark must write lines that other
    // SMs' warps read or write (that is why it needs coherence).
    for (const auto &name : workloads::coherentSet()) {
        auto wl = workloads::makeWorkload(name, sim::Config());
        bool shared_rw = false;
        for (unsigned k = 0; k < wl->numKernels() && !shared_rw; ++k) {
            TraceStats a = characterize(name, 0, 0, k);
            // Check against warps on *other* SMs.
            for (SmId sm = 1; sm < 4 && !shared_rw; ++sm) {
                for (WarpId w = 0; w < 4 && !shared_rw; ++w) {
                    TraceStats b = characterize(name, sm, w, k);
                    shared_rw =
                        intersects(a.sharedStoreLines, b.loadLines) ||
                        intersects(b.sharedStoreLines, a.loadLines) ||
                        intersects(a.sharedStoreLines,
                                   b.sharedStoreLines);
                }
            }
        }
        EXPECT_TRUE(shared_rw)
            << name << " claims to need coherence but has no "
                       "cross-SM read-write sharing";
    }
}

TEST(Behavior, CcIsRequestIntensive)
{
    // CC is the NoC-pressure workload: uncoalesced gathers mean many
    // distinct lines per load instruction and minimal compute.
    TraceStats cc = characterize("cc", 0, 0);
    EXPECT_GT(cc.loadLines.size(),
              static_cast<std::size_t>(cc.loads) * 4)
        << "CC gathers should touch many lines per instruction";
    EXPECT_LT(cc.computeCycles / std::max(1u, cc.loads), 20u);
    EXPECT_GT(cc.fences, 0u);
}

TEST(Behavior, CcpIsComputeBound)
{
    TraceStats ccp = characterize("ccp", 0, 0);
    EXPECT_GT(ccp.computeCycles,
              static_cast<std::uint64_t>(ccp.loads + ccp.stores) * 100)
        << "CCP must be dominated by compute";
}

TEST(Behavior, HsIsLoadDominant)
{
    // Section VI-E: load-heavy kernels keep logical time rolling
    // slowly; HS models that (reads tile, writes one line).
    TraceStats hs = characterize("hs", 0, 0);
    EXPECT_GE(hs.loads, hs.stores * 4);
    // And its footprint is fully private.
    EXPECT_TRUE(hs.sharedStoreLines.empty());
}

TEST(Behavior, BhHasHotReadSet)
{
    // BH rereads upper tree levels: distinct load lines must be far
    // fewer than total loads (reuse), and stores are sparse.
    TraceStats bh = characterize("bh", 0, 0);
    EXPECT_LT(bh.loadLines.size(), static_cast<std::size_t>(bh.loads));
    EXPECT_LT(bh.stores, bh.loads / 3);
}

TEST(Behavior, StnReusesItsTile)
{
    TraceStats stn = characterize("stn", 0, 0);
    // 10 distinct lines per iteration read, only 6 unique.
    EXPECT_LT(stn.loadLines.size(),
              static_cast<std::size_t>(stn.loads) / 2);
    EXPECT_GT(stn.fences, 5u) << "stencil iterations are fenced";
}

TEST(Behavior, DlpPipelineUsesSpinsAndFlags)
{
    // Stage warps (warp 0 of middle SMs) synchronize through spins.
    TraceStats stage = characterize("dlp", 1, 0);
    EXPECT_GT(stage.spins, 0u) << "pipeline stages wait on flags";
    EXPECT_GT(stage.fences, 0u);
    // Background warps do not.
    TraceStats bg = characterize("dlp", 1, 1);
    EXPECT_EQ(bg.spins, 0u);
}

TEST(Behavior, BfsIsMultiKernelMemoryIntensive)
{
    sim::Config cfg;
    auto wl = workloads::makeWorkload("bfs", cfg);
    EXPECT_EQ(wl->numKernels(), 3u);
    TraceStats l0 = characterize("bfs", 0, 0, 0);
    EXPECT_LT(l0.computeCycles / std::max(1u, l0.loads + l0.stores),
              10u)
        << "BFS is memory-intensive";
    EXPECT_GT(l0.fences, 4u) << "visited updates carry release fences";
}

TEST(Behavior, PrivateSetSharedRegionsAreReadOnly)
{
    // Already enforced in registry_test for stores >= kPrivateBase;
    // here: their *shared* loads exist (so the L1 matters) for the
    // lookup-table benchmarks.
    for (const char *name : {"ge", "km", "bp", "sgm"}) {
        TraceStats t = characterize(name, 0, 0);
        bool has_shared_load = false;
        for (Addr line : t.loadLines)
            has_shared_load |= (line < workloads::kPrivateBase);
        EXPECT_TRUE(has_shared_load)
            << name << " should read shared read-only data";
        EXPECT_TRUE(t.sharedStoreLines.empty()) << name;
    }
}

TEST(Behavior, KernelIndexChangesBfsFrontiers)
{
    TraceStats k0 = characterize("bfs", 0, 0, 0);
    TraceStats k1 = characterize("bfs", 0, 0, 1);
    // Frontier-in regions differ between levels.
    EXPECT_NE(k0.loadLines, k1.loadLines);
}

TEST(Behavior, WorkloadScaleControlsLength)
{
    sim::Config small;
    small.setDouble("wl.scale", 0.25);
    sim::Config large;
    large.setDouble("wl.scale", 2.0);
    for (const auto &name : workloads::allBenchmarks()) {
        auto ws = workloads::makeWorkload(name, small);
        auto wlg = workloads::makeWorkload(name, large);
        auto count = [&](gpu::Workload &w) {
            auto prog = w.makeProgram(0, 0, 0, gpuShape());
            unsigned n = 0;
            while (prog->next().op != WarpInstr::Op::Exit) {
                ++n;
                prog->observe(1);
            }
            return n;
        };
        EXPECT_GT(count(*wlg), count(*ws)) << name;
    }
}
