#include "workloads/trace_file.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "harness/runner.hh"
#include "workloads/registry.hh"

using namespace gtsc;
using workloads::TraceFileWorkload;

namespace
{

gpu::GpuParams
smallGpu()
{
    sim::Config cfg;
    cfg.setInt("gpu.num_sms", 2);
    cfg.setInt("gpu.warps_per_sm", 2);
    return gpu::GpuParams::fromConfig(cfg);
}

const char *kSample = R"(
# message passing as a trace
kernel 0
mem 0x1000 7
warp 0 0
st 0x2000 42
fence
st 0x2080 1
warp 1 0
spin 0x2080 1 512
ld 0x2000
cmp 10
)";

} // namespace

TEST(TraceFile, ParsesDirectives)
{
    auto wl = TraceFileWorkload::fromString(kSample, "T");
    EXPECT_EQ(wl->numKernels(), 1u);

    mem::MainMemory memory;
    wl->initMemory(memory, 0);
    EXPECT_EQ(memory.readWord(0x1000), 7u);

    auto p0 = wl->makeProgram(0, 0, 0, smallGpu());
    gpu::WarpInstr i = p0->next();
    EXPECT_EQ(i.op, gpu::WarpInstr::Op::Store);
    EXPECT_EQ(i.laneAddr(0), 0x2000u);
    EXPECT_TRUE(i.hasValue);
    EXPECT_EQ(i.value, 42u);
    EXPECT_EQ(p0->next().op, gpu::WarpInstr::Op::Fence);
    EXPECT_EQ(p0->next().op, gpu::WarpInstr::Op::Store);
    EXPECT_EQ(p0->next().op, gpu::WarpInstr::Op::Exit);

    auto p1 = wl->makeProgram(0, 1, 0, smallGpu());
    gpu::WarpInstr s = p1->next();
    EXPECT_EQ(s.op, gpu::WarpInstr::Op::SpinLoad);
    EXPECT_EQ(s.spinExpect, 1u);
    EXPECT_EQ(s.spinMaxIters, 512u);
    EXPECT_EQ(p1->next().op, gpu::WarpInstr::Op::Load);
    EXPECT_EQ(p1->next().op, gpu::WarpInstr::Op::Compute);
    EXPECT_EQ(p1->next().op, gpu::WarpInstr::Op::Exit);

    // Unmentioned warps exit immediately.
    auto p2 = wl->makeProgram(0, 0, 1, smallGpu());
    EXPECT_EQ(p2->next().op, gpu::WarpInstr::Op::Exit);
}

TEST(TraceFile, SyntaxErrorsAreFatalWithLineNumbers)
{
    EXPECT_THROW(TraceFileWorkload::fromString("bogus 1 2\n", "T"),
                 std::runtime_error);
    EXPECT_THROW(TraceFileWorkload::fromString("ld 0x100\n", "T"),
                 std::runtime_error) // instruction before warp
        ;
    EXPECT_THROW(TraceFileWorkload::fromString(
                     "warp 0 0\nld nothex\n", "T"),
                 std::runtime_error);
    EXPECT_THROW(TraceFileWorkload::fromString("", "T"),
                 std::runtime_error);
    EXPECT_THROW(TraceFileWorkload::fromString("kernel 5\n", "T"),
                 std::runtime_error); // out of order
}

TEST(TraceFile, BadOpcodeIsFatal)
{
    EXPECT_THROW(TraceFileWorkload::fromString(
                     "kernel 0\nwarp 0 0\nldx 0x100\n", "T"),
                 std::runtime_error);
}

TEST(TraceFile, TruncatedLineIsFatal)
{
    // Each directive missing a required operand.
    EXPECT_THROW(TraceFileWorkload::fromString(
                     "kernel 0\nwarp 0\n", "T"),
                 std::runtime_error);
    EXPECT_THROW(TraceFileWorkload::fromString(
                     "kernel 0\nmem 0x100\n", "T"),
                 std::runtime_error);
    EXPECT_THROW(TraceFileWorkload::fromString(
                     "kernel 0\nwarp 0 0\nst 0x100\n", "T"),
                 std::runtime_error);
    EXPECT_THROW(TraceFileWorkload::fromString(
                     "kernel 0\nwarp 0 0\nspin 0x100\n", "T"),
                 std::runtime_error);
    EXPECT_THROW(TraceFileWorkload::fromString("kernel\n", "T"),
                 std::runtime_error);
}

TEST(TraceFile, EmptyKernelIsFatal)
{
    // A declared kernel with no warp programs and no mem init is a
    // trace bug (it would silently simulate nothing).
    EXPECT_THROW(TraceFileWorkload::fromString("kernel 0\n", "T"),
                 std::runtime_error);
    EXPECT_THROW(TraceFileWorkload::fromString(
                     "kernel 0\nwarp 0 0\nld 0x100\nkernel 1\n", "T"),
                 std::runtime_error);
    // mem-init-only kernels stay legal (pure-load kernels exist).
    EXPECT_NO_THROW(TraceFileWorkload::fromString(
        "kernel 0\nmem 0x100 1\n", "T"));
}

TEST(TraceFile, RunsEndToEndThroughRegistry)
{
    // Write the sample to disk and run it through the full stack.
    std::string path = "/tmp/gtsc_trace_test.trace";
    {
        std::ofstream out(path);
        out << kSample;
    }
    sim::Config cfg;
    cfg.setInt("gpu.num_sms", 2);
    cfg.setInt("gpu.warps_per_sm", 2);
    cfg.setInt("gpu.num_partitions", 2);
    harness::RunResult r =
        harness::runOne(cfg, "gtsc", "rc", "trace:" + path);
    EXPECT_EQ(r.checkerViolations, 0u);
    EXPECT_EQ(r.spinGiveups, 0u);
    EXPECT_GT(r.instructions, 5u);
    std::remove(path.c_str());
}

TEST(TraceFile, MissingFileIsFatal)
{
    EXPECT_THROW(TraceFileWorkload("/nonexistent.trace"),
                 std::runtime_error);
}
