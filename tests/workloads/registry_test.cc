#include "workloads/registry.hh"

#include <gtest/gtest.h>

#include <stdexcept>

#include "workloads/common.hh"

using namespace gtsc;

namespace
{

gpu::GpuParams
smallGpu()
{
    sim::Config cfg;
    cfg.setInt("gpu.num_sms", 2);
    cfg.setInt("gpu.warps_per_sm", 2);
    return gpu::GpuParams::fromConfig(cfg);
}

std::vector<gpu::WarpInstr>
drain(gpu::WarpProgram &prog, unsigned limit = 100000)
{
    std::vector<gpu::WarpInstr> out;
    for (unsigned i = 0; i < limit; ++i) {
        gpu::WarpInstr instr = prog.next();
        out.push_back(instr);
        if (instr.op == gpu::WarpInstr::Op::Exit)
            return out;
        if (instr.op == gpu::WarpInstr::Op::Load ||
            instr.op == gpu::WarpInstr::Op::SpinLoad) {
            prog.observe(1); // pretend flags are raised
        }
    }
    ADD_FAILURE() << "program did not terminate";
    return out;
}

} // namespace

TEST(Registry, AllTwelveBenchmarksExist)
{
    sim::Config cfg;
    auto all = workloads::allBenchmarks();
    EXPECT_EQ(all.size(), 12u);
    for (const auto &name : all) {
        auto wl = workloads::makeWorkload(name, cfg);
        ASSERT_NE(wl, nullptr) << name;
        EXPECT_FALSE(wl->name().empty());
    }
    EXPECT_THROW(workloads::makeWorkload("nope", cfg),
                 std::runtime_error);
}

TEST(Registry, SetsPartitionCorrectly)
{
    sim::Config cfg;
    for (const auto &name : workloads::coherentSet()) {
        EXPECT_TRUE(workloads::makeWorkload(name, cfg)
                        ->requiresCoherence())
            << name;
    }
    for (const auto &name : workloads::privateSet()) {
        EXPECT_FALSE(workloads::makeWorkload(name, cfg)
                         ->requiresCoherence())
            << name;
    }
}

TEST(Registry, ProgramsTerminateAndAreDeterministic)
{
    sim::Config cfg;
    cfg.setDouble("wl.scale", 0.3);
    auto gpu_params = smallGpu();
    for (const auto &name : workloads::allBenchmarks()) {
        auto wl1 = workloads::makeWorkload(name, cfg);
        auto wl2 = workloads::makeWorkload(name, cfg);
        for (unsigned k = 0; k < wl1->numKernels(); ++k) {
            auto p1 = wl1->makeProgram(k, 0, 1, gpu_params);
            auto p2 = wl2->makeProgram(k, 0, 1, gpu_params);
            auto t1 = drain(*p1);
            auto t2 = drain(*p2);
            ASSERT_EQ(t1.size(), t2.size()) << name;
            for (std::size_t i = 0; i < t1.size(); ++i) {
                EXPECT_EQ(t1[i].op, t2[i].op) << name << " @" << i;
                EXPECT_EQ(t1[i].laneAddr(0), t2[i].laneAddr(0))
                    << name << " @" << i;
            }
        }
    }
}

TEST(Registry, DifferentWarpsGetDifferentStreams)
{
    sim::Config cfg;
    auto gpu_params = smallGpu();
    auto wl = workloads::makeWorkload("vpr", cfg);
    auto a = drain(*wl->makeProgram(0, 0, 0, gpu_params));
    auto b = drain(*wl->makeProgram(0, 1, 0, gpu_params));
    bool differ = a.size() != b.size();
    for (std::size_t i = 0; !differ && i < a.size(); ++i)
        differ = a[i].laneAddr(0) != b[i].laneAddr(0);
    EXPECT_TRUE(differ);
}

TEST(Registry, PrivateSetHasNoSharedStores)
{
    // The no-coherence set must only store to per-warp private
    // regions (shared regions are read-only after init).
    sim::Config cfg;
    auto gpu_params = smallGpu();
    for (const auto &name : workloads::privateSet()) {
        auto wl = workloads::makeWorkload(name, cfg);
        for (unsigned k = 0; k < wl->numKernels(); ++k) {
            auto t = drain(*wl->makeProgram(k, 0, 0, gpu_params));
            for (const auto &instr : t) {
                if (instr.op != gpu::WarpInstr::Op::Store)
                    continue;
                for (unsigned l = 0; l < gpu_params.warpSize; ++l) {
                    if (!(instr.activeMask & (1u << l)))
                        continue;
                    EXPECT_GE(instr.laneAddr(l), workloads::kPrivateBase)
                        << name;
                }
            }
        }
    }
}
