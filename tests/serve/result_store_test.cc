/**
 * @file
 * Unit tests for the persistent content-addressed result store and
 * its building blocks: the SHA-256 implementation (FIPS 180-4 known
 * answers), canonical key derivation (spelling/order invariance,
 * harness-knob exclusion), the bit-exact result codec, and the store
 * itself — crash/corruption repair, version fencing, concurrent
 * writers, and LRU eviction under a size cap.
 */

#include "serve/result_store.hh"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "harness/report.hh"
#include "serve/result_codec.hh"
#include "serve/sha256.hh"

namespace fs = std::filesystem;
using namespace gtsc;
using serve::ResultStore;
using serve::Sha256;

namespace
{

/** Fresh temp directory, removed on destruction. */
struct TempDir
{
    TempDir()
    {
        std::string tmpl =
            (fs::temp_directory_path() / "gtsc-store-test-XXXXXX")
                .string();
        path = mkdtemp(tmpl.data());
    }
    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
    std::string path;
};

ResultStore
makeStore(const std::string &root, std::uint64_t maxBytes = 0,
          const std::string &codeVersion = "")
{
    ResultStore::Options opts;
    opts.root = root;
    opts.maxBytes = maxBytes;
    opts.codeVersion = codeVersion;
    return ResultStore(opts);
}

/** A synthetic result exercising every codec field class. */
harness::RunResult
sampleResult()
{
    harness::RunResult r;
    r.workload = "bh";
    r.protocol = "gtsc";
    r.consistency = "rc";
    r.cycles = 123456;
    r.instructions = 789012;
    r.memStallCycles = 1111;
    r.activeCycles = 2222;
    r.nocBytes = 333;
    r.nocPackets = 44;
    r.avgNocLatency = 12.3456789;
    r.nocLatencyStddev = 0.1;
    r.nocLatencyP50 = 11.0;
    r.nocLatencyP99 = 99.5;
    r.l1Hits = 10;
    r.l1MissCold = 9;
    r.l1MissExpired = 8;
    r.renewalsSent = 7;
    r.l2Accesses = 6;
    r.dramAccesses = 5;
    r.tsResets = 4;
    r.spinRetries = 3;
    r.spinGiveups = 2;
    r.checkerViolations = 0;
    r.loadsChecked = 1000;
    r.verified = true;
    r.fastForwarded = 500;
    r.shards = 2;
    r.activitySm = 0.25;
    r.activityL1 = 1.0 / 3.0;
    r.activityL2 = 0.5;
    r.activityNoc = 0.75;
    r.activityDram = 0.0625;
    r.issueSlotsUsed = 777;
    r.smTicksExecuted = 888;
    r.nocTicksExecuted = 99;
    r.stats.counter("l1.hits") = 10;
    r.stats.counter("noc.packets") = 44;
    // Enough samples to engage the reservoir stride logic, plus
    // values whose doubles don't round-trip through decimal text.
    sim::Distribution &d = r.stats.distribution("noc.latency");
    for (int i = 0; i < 2000; ++i)
        d.sample(0.1 * i + 1.0 / 3.0);
    r.obsFiles = {"/tmp/out/trace.jsonl", "/tmp/out/stats.csv"};
    return r;
}

} // namespace

// ---------------------------------------------------------------
// SHA-256

TEST(Sha256, Fips180KnownAnswers)
{
    EXPECT_EQ(Sha256::hexDigest(""),
              "e3b0c44298fc1c149afbf4c8996fb924"
              "27ae41e4649b934ca495991b7852b855");
    EXPECT_EQ(Sha256::hexDigest("abc"),
              "ba7816bf8f01cfea414140de5dae2223"
              "b00361a396177a9cb410ff61f20015ad");
    EXPECT_EQ(Sha256::hexDigest("abcdbcdecdefdefgefghfghighijhijk"
                                "ijkljklmklmnlmnomnopnopq"),
              "248d6a61d20638b8e5c026930c3e6039"
              "a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, StreamingMatchesOneShot)
{
    std::string msg(1000, 'x');
    Sha256 h;
    for (std::size_t i = 0; i < msg.size(); i += 7)
        h.update(msg.substr(i, 7));
    std::string hex;
    for (std::uint8_t b : h.digest()) {
        static const char *k = "0123456789abcdef";
        hex += k[b >> 4];
        hex += k[b & 0xf];
    }
    EXPECT_EQ(hex, Sha256::hexDigest(msg));
}

// ---------------------------------------------------------------
// Key derivation

TEST(StoreKey, InvariantUnderSpellingAndInsertionOrder)
{
    TempDir td;
    ResultStore store = makeStore(td.path);

    sim::Config a;
    a.set("gpu.num_sms", "0x10");
    a.set("check.enabled", "true");
    a.set("tc.lease", "800");

    sim::Config b; // different order, different spellings
    b.set("tc.lease", "800");
    b.setInt("gpu.num_sms", 16);
    b.set("check.enabled", "1");

    EXPECT_EQ(store.keyFor(a, "gtsc", "rc", "bh"),
              store.keyFor(b, "gtsc", "rc", "bh"));
}

TEST(StoreKey, SensitiveToEveryIdentityComponent)
{
    TempDir td;
    ResultStore store = makeStore(td.path);
    sim::Config cfg;
    cfg.setInt("gpu.num_sms", 8);

    std::string base = store.keyFor(cfg, "gtsc", "rc", "bh");
    EXPECT_EQ(base.size(), 64u);
    EXPECT_NE(base, store.keyFor(cfg, "tc", "rc", "bh"));
    EXPECT_NE(base, store.keyFor(cfg, "gtsc", "sc", "bh"));
    EXPECT_NE(base, store.keyFor(cfg, "gtsc", "rc", "cc"));
    sim::Config other = cfg;
    other.setInt("gpu.num_sms", 16);
    EXPECT_NE(base, store.keyFor(other, "gtsc", "rc", "bh"));
}

TEST(StoreKey, HarnessOnlySweepKnobsExcluded)
{
    TempDir td;
    ResultStore store = makeStore(td.path);
    sim::Config plain;
    plain.setInt("gpu.num_sms", 8);

    sim::Config swept = plain;
    swept.setBool("sweep.store", true);
    swept.set("sweep.store_path", "/somewhere/else");
    swept.setInt("sweep.store_max_bytes", 1234);

    // Running with the store on must look up the very key a
    // store-less run would have produced.
    EXPECT_EQ(store.keyFor(plain, "gtsc", "rc", "bh"),
              store.keyFor(swept, "gtsc", "rc", "bh"));
}

TEST(StoreKey, CodeVersionChangesKey)
{
    TempDir td;
    ResultStore a = makeStore(td.path, 0, "vA");
    ResultStore b = makeStore(td.path, 0, "vB");
    sim::Config cfg;
    EXPECT_NE(a.keyFor(cfg, "gtsc", "rc", "bh"),
              b.keyFor(cfg, "gtsc", "rc", "bh"));
}

// ---------------------------------------------------------------
// Codec

TEST(ResultCodec, RoundTripIsBitExact)
{
    harness::RunResult r = sampleResult();
    std::string text = serve::encodeResult(r);

    harness::RunResult back;
    std::string err;
    ASSERT_TRUE(serve::decodeResult(text, &back, &err)) << err;

    // Re-encoding the decoded result must reproduce the bytes —
    // every field, double bit pattern, counter and distribution
    // (reservoir included) survived.
    EXPECT_EQ(serve::encodeResult(back), text);
    // And the derived reports the figures print are identical too.
    EXPECT_EQ(harness::csvRow(back), harness::csvRow(r));
    EXPECT_EQ(harness::toJson(back), harness::toJson(r));
    EXPECT_EQ(back.stats.toString(), r.stats.toString());
    EXPECT_EQ(back.stats.getDistribution("noc.latency").p99(),
              r.stats.getDistribution("noc.latency").p99());
    EXPECT_EQ(back.obsFiles, r.obsFiles);
    EXPECT_EQ(back.obs, nullptr);
}

TEST(ResultCodec, RejectsMalformedPayloads)
{
    harness::RunResult r = sampleResult();
    std::string text = serve::encodeResult(r);
    harness::RunResult out;
    std::string err;
    EXPECT_FALSE(
        serve::decodeResult(text.substr(0, text.size() / 2), &out,
                            &err));
    EXPECT_FALSE(serve::decodeResult("z bogus line\n", &out, &err));
    EXPECT_FALSE(serve::decodeResult("u cycles notanumber\n", &out,
                                     &err));
}

// ---------------------------------------------------------------
// Store behaviour

TEST(ResultStore, PutGetRoundTrip)
{
    TempDir td;
    ResultStore store = makeStore(td.path);
    harness::RunResult r = sampleResult();
    std::string key(64, 'a');

    harness::RunResult out;
    EXPECT_FALSE(store.get(key, &out)); // cold
    store.put(key, r);
    ASSERT_TRUE(store.get(key, &out));
    EXPECT_EQ(serve::encodeResult(out), serve::encodeResult(r));

    serve::StoreStats s = store.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.puts, 1u);
    EXPECT_EQ(s.repaired, 0u);
    EXPECT_EQ(store.entryCount(), 1u);
}

TEST(ResultStore, TruncatedEntryIsMissAndRepaired)
{
    TempDir td;
    ResultStore store = makeStore(td.path);
    std::string key(64, 'b');
    store.put(key, sampleResult());

    // Simulate a crash mid-write-through: chop the entry in half.
    std::string path = store.entryPath(key);
    std::string bytes;
    {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream buf;
        buf << in.rdbuf();
        bytes = buf.str();
    }
    {
        std::ofstream out(path,
                          std::ios::binary | std::ios::trunc);
        out << bytes.substr(0, bytes.size() / 2);
    }

    harness::RunResult out;
    EXPECT_FALSE(store.get(key, &out));
    EXPECT_EQ(store.stats().repaired, 1u);
    EXPECT_FALSE(fs::exists(path)) << "bad entry must be removed";

    // A fresh put repairs the slot and hits again.
    store.put(key, sampleResult());
    EXPECT_TRUE(store.get(key, &out));
}

TEST(ResultStore, GarbageEntryIsMissAndRepaired)
{
    TempDir td;
    ResultStore store = makeStore(td.path);
    std::string key(64, 'c');
    std::string path = store.entryPath(key);
    fs::create_directories(fs::path(path).parent_path());
    {
        std::ofstream out(path, std::ios::binary);
        out << "not a store entry at all\n";
    }
    harness::RunResult out;
    EXPECT_FALSE(store.get(key, &out));
    EXPECT_EQ(store.stats().repaired, 1u);
    EXPECT_FALSE(fs::exists(path));
}

TEST(ResultStore, VersionMismatchIsMiss)
{
    TempDir td;
    std::string key(64, 'd');
    {
        ResultStore vA = makeStore(td.path, 0, "vA");
        vA.put(key, sampleResult());
        harness::RunResult out;
        EXPECT_TRUE(vA.get(key, &out));
    }
    // A store from a different simulator generation must never
    // serve that entry, even when handed the same key.
    ResultStore vB = makeStore(td.path, 0, "vB");
    harness::RunResult out;
    EXPECT_FALSE(vB.get(key, &out));
    EXPECT_EQ(vB.stats().hits, 0u);
    EXPECT_GE(vB.stats().misses, 1u);
}

TEST(ResultStore, ConcurrentWritersOneWinnerNoTornReads)
{
    TempDir td;
    std::string key(64, 'e');
    harness::RunResult r = sampleResult();

    // Writers hammer the same key from separate store instances
    // (same root — the flock is what serializes them, not the
    // in-process mutex) while a reader polls. The reader must only
    // ever see a complete entry: any torn read would decode-fail
    // and bump `repaired`.
    constexpr int kWriters = 3;
    constexpr int kPutsPerWriter = 20;
    std::vector<std::thread> threads;
    threads.reserve(kWriters);
    for (int w = 0; w < kWriters; ++w) {
        threads.emplace_back([&td, &key, &r] {
            ResultStore mine = makeStore(td.path);
            for (int i = 0; i < kPutsPerWriter; ++i)
                mine.put(key, r);
        });
    }
    ResultStore reader = makeStore(td.path);
    std::uint64_t observedHits = 0;
    for (int i = 0; i < 200; ++i) {
        harness::RunResult out;
        if (reader.get(key, &out)) {
            observedHits++;
            EXPECT_EQ(serve::encodeResult(out),
                      serve::encodeResult(r));
        }
    }
    for (std::thread &t : threads)
        t.join();

    EXPECT_EQ(reader.stats().repaired, 0u)
        << "reader saw a torn entry";
    EXPECT_EQ(reader.entryCount(), 1u) << "exactly one winner";
    harness::RunResult out;
    EXPECT_TRUE(reader.get(key, &out));
    EXPECT_EQ(serve::encodeResult(out), serve::encodeResult(r));
    (void)observedHits; // may be 0 early on; correctness is above
}

TEST(ResultStore, EvictionRespectsCapAndKeepsRecentlyUsed)
{
    TempDir td;
    harness::RunResult r = sampleResult();
    auto keyOf = [](char c) { return std::string(64, c); };

    std::uint64_t entryBytes = 0;
    {
        ResultStore unlimited = makeStore(td.path);
        unlimited.put(keyOf('a'), r);
        entryBytes = unlimited.diskBytes();
        ASSERT_GT(entryBytes, 0u);
        unlimited.put(keyOf('b'), r);
        unlimited.put(keyOf('c'), r);

        // Pin distinct ages: a oldest, then b, then c. All three
        // are pinned hours apart so the hit-refresh below is
        // unambiguous even on filesystems with one-second
        // timestamp granularity.
        using namespace std::chrono_literals;
        auto now = fs::last_write_time(
            unlimited.entryPath(keyOf('c')));
        fs::last_write_time(unlimited.entryPath(keyOf('a')),
                            now - 3h);
        fs::last_write_time(unlimited.entryPath(keyOf('b')),
                            now - 2h);
        fs::last_write_time(unlimited.entryPath(keyOf('c')),
                            now - 1h);

        // A hit refreshes 'a' to now — it becomes most recent.
        harness::RunResult out;
        ASSERT_TRUE(unlimited.get(keyOf('a'), &out));
    }

    // Cap fits two entries; the next put triggers eviction of the
    // least recently used, which is now 'b' (a was refreshed).
    ResultStore capped = makeStore(td.path, entryBytes * 5 / 2);
    capped.put(keyOf('d'), r);

    EXPECT_LE(capped.diskBytes(), entryBytes * 5 / 2);
    EXPECT_GE(capped.stats().evictions, 1u);
    harness::RunResult out;
    EXPECT_TRUE(capped.get(keyOf('d'), &out)) << "newest kept";
    EXPECT_TRUE(capped.get(keyOf('a'), &out))
        << "hit-refreshed entry survived";
    EXPECT_FALSE(fs::exists(capped.entryPath(keyOf('b'))))
        << "LRU victim evicted";
}

TEST(ResultStore, StoreFromConfigHonoursKnobs)
{
    TempDir td;
    sim::Config off;
    EXPECT_EQ(serve::storeFromConfig(off), nullptr);
    off.setBool("sweep.store", false);
    EXPECT_EQ(serve::storeFromConfig(off), nullptr);

    sim::Config on;
    on.setBool("sweep.store", true);
    on.set("sweep.store_path", td.path + "/sub");
    auto store = serve::storeFromConfig(on);
    ASSERT_NE(store, nullptr);
    EXPECT_EQ(store->root(), td.path + "/sub");
}
