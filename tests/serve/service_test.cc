/**
 * @file
 * Protocol tests for the gtscd request handler, run without a
 * socket: ping/stats/shutdown, batched run requests streaming one
 * result line per cell, cache hit/miss accounting against the
 * persistent store, store bypass, and error reporting for malformed
 * or invalid requests.
 */

#include "serve/service.hh"

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/jsonl.hh"

namespace fs = std::filesystem;
using namespace gtsc;
using serve::Service;
using serve::ServiceOptions;

namespace
{

struct TempDir
{
    TempDir()
    {
        std::string tmpl =
            (fs::temp_directory_path() / "gtsc-service-test-XXXXXX")
                .string();
        path = mkdtemp(tmpl.data());
    }
    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
    std::string path;
};

sim::Config
tiny()
{
    sim::Config cfg;
    cfg.setInt("gpu.num_sms", 2);
    cfg.setInt("gpu.warps_per_sm", 2);
    cfg.setInt("gpu.num_partitions", 2);
    cfg.setDouble("wl.scale", 0.25);
    cfg.setBool("check.enabled", false);
    return cfg;
}

/** Feed one line, collect parsed response objects. */
struct Responses
{
    std::vector<serve::json::Value> lines;
    bool keepGoing = true;

    const serve::json::Value &
    last() const
    {
        return lines.back();
    }

    /** Count of "result" lines with the given cached flag. */
    int
    results(bool cached) const
    {
        int n = 0;
        for (const auto &v : lines) {
            const serve::json::Value *op = v.get("op");
            const serve::json::Value *c = v.get("cached");
            if (op && op->str == "result" && c &&
                c->boolean == cached)
                n++;
        }
        return n;
    }
};

Responses
ask(Service &service, const std::string &line)
{
    Responses out;
    out.keepGoing =
        service.handleLine(line, [&](const std::string &resp) {
            serve::json::Value v;
            std::string err;
            ASSERT_TRUE(serve::json::parse(resp, &v, &err))
                << "daemon emitted bad JSON: " << resp;
            out.lines.push_back(std::move(v));
        });
    return out;
}

/** Service with a fresh store rooted in `td`. */
Service
makeService(const TempDir &td)
{
    ServiceOptions opts;
    serve::ResultStore::Options so;
    so.root = td.path;
    opts.store = std::make_shared<serve::ResultStore>(so);
    opts.jobs = 1;
    opts.baseConfig = tiny();
    return Service(std::move(opts));
}

const std::string kTwoCells =
    R"({"op":"run","id":"t","cells":[)"
    R"({"workload":"bh","protocol":"tc","consistency":"sc"},)"
    R"({"workload":"bh","protocol":"gtsc","consistency":"rc"}]})";

} // namespace

TEST(Service, PingReportsVersionsAndStore)
{
    TempDir td;
    Service service = makeService(td);
    Responses r = ask(service, R"({"op":"ping","id":"x"})");
    ASSERT_EQ(r.lines.size(), 1u);
    EXPECT_TRUE(r.keepGoing);
    EXPECT_EQ(r.last().get("op")->str, "pong");
    EXPECT_EQ(r.last().get("id")->str, "x");
    EXPECT_DOUBLE_EQ(r.last().get("schema")->number,
                     serve::kStoreSchemaVersion);
    EXPECT_EQ(r.last().get("store")->str, td.path);
}

TEST(Service, RunStreamsResultsThenHitsOnRerun)
{
    TempDir td;
    Service service = makeService(td);

    Responses cold = ask(service, kTwoCells);
    ASSERT_EQ(cold.lines.size(), 3u); // 2 results + done
    EXPECT_EQ(cold.results(false), 2);
    EXPECT_EQ(cold.results(true), 0);
    const serve::json::Value &done = cold.last();
    EXPECT_EQ(done.get("op")->str, "done");
    EXPECT_DOUBLE_EQ(done.get("hits")->number, 0.0);
    EXPECT_DOUBLE_EQ(done.get("misses")->number, 2.0);

    // Every result line carries the store key and the report row.
    for (const auto &v : cold.lines) {
        if (v.get("op")->str != "result")
            continue;
        EXPECT_EQ(v.get("key")->str.size(), 64u);
        EXPECT_TRUE(v.get("result")->isObject());
        EXPECT_FALSE(v.get("csv")->str.empty());
    }

    Responses warm = ask(service, kTwoCells);
    EXPECT_EQ(warm.results(true), 2);
    EXPECT_EQ(warm.results(false), 0);
    EXPECT_DOUBLE_EQ(warm.last().get("hits")->number, 2.0);

    // Warm results are bit-identical to the cold ones, per cell.
    auto csvOf = [](const Responses &rs, int cell) {
        for (const auto &v : rs.lines) {
            if (v.get("op")->str == "result" &&
                static_cast<int>(v.get("cell")->number) == cell)
                return v.get("csv")->str;
        }
        return std::string();
    };
    EXPECT_EQ(csvOf(cold, 0), csvOf(warm, 0));
    EXPECT_EQ(csvOf(cold, 1), csvOf(warm, 1));
}

TEST(Service, MixedBatchCountsHitsAndMisses)
{
    TempDir td;
    Service service = makeService(td);
    ask(service, kTwoCells); // prime 2 cells

    Responses mixed = ask(
        service,
        R"({"op":"run","id":"m","cells":[)"
        R"({"workload":"bh","protocol":"tc","consistency":"sc"},)"
        R"({"workload":"bh","protocol":"gtsc","consistency":"rc"},)"
        R"({"workload":"cc","protocol":"gtsc","consistency":"sc"}]})");
    EXPECT_EQ(mixed.results(true), 2);
    EXPECT_EQ(mixed.results(false), 1);
    EXPECT_DOUBLE_EQ(mixed.last().get("hits")->number, 2.0);
    EXPECT_DOUBLE_EQ(mixed.last().get("misses")->number, 1.0);
}

TEST(Service, StoreFalseBypassesTheCache)
{
    TempDir td;
    Service service = makeService(td);
    ask(service, kTwoCells); // prime

    Responses bypass = ask(
        service,
        R"({"op":"run","id":"b","store":false,"cells":[)"
        R"({"workload":"bh","protocol":"tc","consistency":"sc"}]})");
    EXPECT_EQ(bypass.results(false), 1);
    EXPECT_EQ(bypass.results(true), 0);
}

TEST(Service, PerCellConfigOverridesChangeTheKey)
{
    TempDir td;
    Service service = makeService(td);
    ask(service, kTwoCells); // primes bh/tc-sc at base config

    // Same cell with a different lease is a different experiment.
    Responses other = ask(
        service,
        R"({"op":"run","id":"o","cells":[)"
        R"({"workload":"bh","protocol":"tc","consistency":"sc",)"
        R"("config":{"tc.lease":400}}]})");
    EXPECT_EQ(other.results(false), 1);
}

TEST(Service, StatsReflectStoreActivity)
{
    TempDir td;
    Service service = makeService(td);
    ask(service, kTwoCells);
    ask(service, kTwoCells);

    Responses stats = ask(service, R"({"op":"stats","id":"s"})");
    ASSERT_EQ(stats.lines.size(), 1u);
    EXPECT_DOUBLE_EQ(stats.last().get("hits")->number, 2.0);
    EXPECT_DOUBLE_EQ(stats.last().get("puts")->number, 2.0);
    EXPECT_DOUBLE_EQ(stats.last().get("entries")->number, 2.0);
    EXPECT_GT(stats.last().get("disk_bytes")->number, 0.0);
}

TEST(Service, ShutdownStopsTheLoop)
{
    TempDir td;
    Service service = makeService(td);
    Responses r = ask(service, R"({"op":"shutdown"})");
    EXPECT_FALSE(r.keepGoing);
    EXPECT_EQ(r.last().get("op")->str, "bye");
}

TEST(Service, ErrorsAreReportedNotFatal)
{
    TempDir td;
    Service service = makeService(td);

    auto expectError = [&](const std::string &line) {
        Responses r = ask(service, line);
        EXPECT_TRUE(r.keepGoing);
        ASSERT_EQ(r.lines.size(), 1u) << line;
        EXPECT_FALSE(r.last().get("ok")->boolean) << line;
        EXPECT_EQ(r.last().get("op")->str, "error");
        EXPECT_FALSE(r.last().get("message")->str.empty());
    };

    expectError("this is not json");
    expectError("[1,2,3]");
    expectError(R"({"op":"frobnicate"})");
    expectError(R"({"op":"run","cells":[]})");
    expectError(R"({"op":"run","cells":[{"workload":"bh"}]})");
    expectError(
        R"({"op":"run","cells":[{"workload":"bh",)"
        R"("protocol":"nosuch","consistency":"sc"}]})");
    expectError(
        R"({"op":"run","cells":[{"workload":"nosuch",)"
        R"("protocol":"gtsc","consistency":"sc"}]})");
    expectError(
        R"({"op":"run","cells":[{"workload":"bh",)"
        R"("protocol":"gtsc","consistency":"weak"}]})");

    // Blank lines are ignored, and the service still works after
    // all of the above.
    Responses blank = ask(service, "   ");
    EXPECT_TRUE(blank.lines.empty());
    Responses ping = ask(service, R"({"op":"ping"})");
    EXPECT_EQ(ping.last().get("op")->str, "pong");
}
