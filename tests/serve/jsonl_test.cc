/**
 * @file
 * Unit tests for the minimal JSON layer under the gtscd protocol:
 * full value grammar in, last-duplicate-wins object lookup, strict
 * trailing-garbage rejection, and the escape function the response
 * writers rely on.
 */

#include "serve/jsonl.hh"

#include <string>

#include <gtest/gtest.h>

using namespace gtsc::serve;

namespace
{

json::Value
parseOk(const std::string &text)
{
    json::Value v;
    std::string err;
    EXPECT_TRUE(json::parse(text, &v, &err)) << text << ": " << err;
    return v;
}

bool
parseFails(const std::string &text)
{
    json::Value v;
    std::string err;
    return !json::parse(text, &v, &err);
}

} // namespace

TEST(Jsonl, ParsesScalars)
{
    EXPECT_TRUE(parseOk("null").isNull());
    EXPECT_TRUE(parseOk("true").boolean);
    EXPECT_FALSE(parseOk("false").boolean);
    EXPECT_DOUBLE_EQ(parseOk("42").number, 42.0);
    EXPECT_DOUBLE_EQ(parseOk("-3.5e2").number, -350.0);
    EXPECT_EQ(parseOk("\"hi\"").str, "hi");
}

TEST(Jsonl, ParsesStringEscapes)
{
    json::Value v = parseOk(R"("a\"b\\c\n\tA")");
    EXPECT_EQ(v.str, "a\"b\\c\n\tA");
}

TEST(Jsonl, ParsesNestedStructures)
{
    json::Value v = parseOk(
        R"({"op":"run","cells":[{"workload":"bh"},{"workload":"cc"}],)"
        R"("jobs":2})");
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.get("op")->str, "run");
    const json::Value *cells = v.get("cells");
    ASSERT_TRUE(cells != nullptr && cells->isArray());
    ASSERT_EQ(cells->array.size(), 2u);
    EXPECT_EQ(cells->array[1].get("workload")->str, "cc");
    EXPECT_DOUBLE_EQ(v.get("jobs")->number, 2.0);
    EXPECT_EQ(v.get("missing"), nullptr);
}

TEST(Jsonl, DuplicateKeysKeepLast)
{
    json::Value v = parseOk(R"({"a":1,"a":2})");
    EXPECT_DOUBLE_EQ(v.get("a")->number, 2.0);
}

TEST(Jsonl, RejectsMalformedInput)
{
    EXPECT_TRUE(parseFails(""));
    EXPECT_TRUE(parseFails("{"));
    EXPECT_TRUE(parseFails("{\"a\":}"));
    EXPECT_TRUE(parseFails("[1,]"));
    EXPECT_TRUE(parseFails("\"unterminated"));
    EXPECT_TRUE(parseFails("tru"));
    EXPECT_TRUE(parseFails("{} trailing"));
    EXPECT_TRUE(parseFails("1 2"));
}

TEST(Jsonl, AllowsTrailingWhitespace)
{
    EXPECT_TRUE(parseOk("{}  \r\n").isObject());
}

TEST(Jsonl, AsStringCoercions)
{
    EXPECT_EQ(parseOk("\"x\"").asString(), "x");
    EXPECT_EQ(parseOk("true").asString(), "true");
    EXPECT_EQ(parseOk("false").asString(), "false");
    // Integral numbers must coerce without a decimal point, so
    // {"jobs": 4} and "sim.max_cycles": 20000 work as config values.
    EXPECT_EQ(parseOk("4").asString(), "4");
    EXPECT_EQ(parseOk("20000").asString(), "20000");
    EXPECT_EQ(parseOk("null").asString(), "");
}

TEST(Jsonl, EscapeRoundTripsThroughParse)
{
    std::string nasty = "a\"b\\c\nd\te\x01";
    json::Value v = parseOk("\"" + json::escape(nasty) + "\"");
    EXPECT_EQ(v.str, nasty);
}
