#include "noc/mesh.hh"

#include <gtest/gtest.h>

#include <map>

#include "noc/network.hh"

using namespace gtsc;

namespace
{

struct MeshFixture : public ::testing::Test
{
    sim::Config cfg;
    sim::StatSet stats;

    mem::Packet
    packet(std::uint32_t size, std::uint64_t id = 0)
    {
        mem::Packet p;
        p.type = mem::MsgType::BusRd;
        p.sizeBytes = size;
        p.reqId = id;
        return p;
    }
};

} // namespace

TEST_F(MeshFixture, GridGeometry)
{
    // 8 SMs + 4 partitions = 12 nodes -> 4x3 grid.
    noc::Mesh m(8, 4, true, cfg, stats, "noc.t");
    EXPECT_EQ(m.gridWidth(), 4u);
}

TEST_F(MeshFixture, RequestAndResponsePlacementsAgree)
{
    noc::Mesh req(8, 4, true, cfg, stats, "noc.req");
    noc::Mesh resp(4, 8, false, cfg, stats, "noc.resp");
    // Distance SM3 -> partition 2 equals partition 2 -> SM3.
    EXPECT_EQ(req.hops(3, 2), resp.hops(2, 3));
    EXPECT_EQ(req.hops(0, 0), resp.hops(0, 0));
}

TEST_F(MeshFixture, DeliversWithDistanceProportionalLatency)
{
    noc::Mesh m(8, 4, true, cfg, stats, "noc.t");
    std::map<std::uint64_t, Cycle> arrival;
    Cycle cur = 0;
    m.setDeliver([&](unsigned, mem::Packet &&p) {
        arrival[p.reqId] = cur;
    });
    // SM0 is far from partition 3 (node 11); SM7 is adjacent to
    // partition 0 (node 8).
    unsigned near_hops = m.hops(7, 0);
    unsigned far_hops = m.hops(0, 3);
    ASSERT_GT(far_hops, near_hops);
    m.inject(7, 0, packet(8, 1), 0);
    m.inject(0, 3, packet(8, 2), 0);
    for (cur = 1; cur <= 200 && arrival.size() < 2; ++cur)
        m.tick(cur);
    ASSERT_EQ(arrival.size(), 2u);
    EXPECT_LT(arrival[1], arrival[2])
        << "longer XY route takes longer";
}

TEST_F(MeshFixture, SharedLinksSerialize)
{
    cfg.setInt("noc.mesh_hop_latency", 1);
    noc::Mesh m(8, 4, true, cfg, stats, "noc.t");
    int delivered = 0;
    m.setDeliver([&](unsigned, mem::Packet &&) { ++delivered; });
    // Many large packets from the same source must serialize on the
    // source's first link.
    for (int i = 0; i < 8; ++i)
        m.inject(0, 3, packet(128, static_cast<unsigned>(i)), 0);
    Cycle c = 0;
    while (delivered < 8 && c < 1000)
        m.tick(++c);
    EXPECT_EQ(delivered, 8);
    // 8 x 4 tx cycles on the shared first link = at least 32 cycles.
    EXPECT_GE(c, 32u);
    EXPECT_TRUE(m.quiescent());
}

TEST_F(MeshFixture, HopsRecorded)
{
    noc::Mesh m(8, 4, true, cfg, stats, "noc.t");
    m.setDeliver([](unsigned, mem::Packet &&) {});
    m.inject(0, 3, packet(8), 0);
    for (Cycle c = 1; c <= 200; ++c)
        m.tick(c);
    EXPECT_EQ(stats.getDistribution("noc.t.hops").count(), 1u);
    EXPECT_GT(stats.getDistribution("noc.t.hops").mean(), 0.0);
}

TEST_F(MeshFixture, FactorySelectsTopology)
{
    auto xbar = noc::makeNetwork(4, 2, true, cfg, stats, "noc.a");
    EXPECT_NE(xbar, nullptr);
    cfg.set("noc.topology", "mesh");
    auto mesh = noc::makeNetwork(4, 2, true, cfg, stats, "noc.b");
    EXPECT_NE(dynamic_cast<noc::Mesh *>(mesh.get()), nullptr);
    cfg.set("noc.topology", "ring");
    EXPECT_THROW(noc::makeNetwork(4, 2, true, cfg, stats, "noc.c"),
                 std::runtime_error);
}

TEST_F(MeshFixture, BusyEjectionPortDoesNotBlockOthers)
{
    cfg.setInt("noc.mesh_hop_latency", 1);
    noc::Mesh m(8, 4, true, cfg, stats, "noc.t");
    std::vector<unsigned> order;
    m.setDeliver([&](unsigned dst, mem::Packet &&) {
        order.push_back(dst);
    });
    // Two 128B packets to dst 0 (second must wait for the port) and
    // one small packet to dst 1 arriving in between.
    m.inject(7, 0, packet(128, 1), 0);
    m.inject(6, 0, packet(128, 2), 0);
    m.inject(2, 1, packet(8, 3), 0);
    for (Cycle c = 1; c <= 300 && order.size() < 3; ++c)
        m.tick(c);
    ASSERT_EQ(order.size(), 3u);
    // dst 1's packet is not stuck behind dst 0's port contention.
    EXPECT_NE(order[2], 1u);
}

TEST_F(MeshFixture, HorizonNeverWhenEmpty)
{
    noc::Mesh m(8, 4, true, cfg, stats, "noc.t");
    EXPECT_EQ(m.nextWorkCycle(3), kCycleNever);
}

TEST_F(MeshFixture, HorizonIsConservativeAndExact)
{
    noc::Mesh m(8, 4, true, cfg, stats, "noc.t");
    std::vector<std::uint64_t> got;
    m.setDeliver([&](unsigned, mem::Packet &&p) {
        got.push_back(p.reqId);
    });
    m.inject(0, 3, packet(8, 9), 0);
    Cycle cur = 0;
    // Hop-by-hop traversal re-queues the packet at every router, so
    // follow the horizon chain until delivery; each link of the
    // chain must be a strict advance with no early delivery.
    for (int guard = 0; guard < 64 && got.empty(); ++guard) {
        Cycle h = m.nextWorkCycle(cur);
        ASSERT_NE(h, kCycleNever);
        ASSERT_GT(h, cur);
        for (Cycle c = cur + 1; c < h; ++c) {
            m.tick(c);
            EXPECT_TRUE(got.empty())
                << "delivered before horizon at " << c;
        }
        m.tick(h);
        cur = h;
    }
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(m.nextWorkCycle(cur), kCycleNever);
}
