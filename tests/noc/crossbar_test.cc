#include "noc/crossbar.hh"

#include <gtest/gtest.h>

#include <map>
#include <vector>

using namespace gtsc;

namespace
{

struct XbarFixture : public ::testing::Test
{
    sim::Config cfg;
    sim::StatSet stats;

    mem::Packet
    packet(std::uint32_t size, std::uint64_t id = 0)
    {
        mem::Packet p;
        p.type = mem::MsgType::BusRd;
        p.sizeBytes = size;
        p.reqId = id;
        return p;
    }
};

} // namespace

TEST_F(XbarFixture, DeliversAfterHopLatency)
{
    noc::Crossbar x(2, 2, cfg, stats, "noc.t");
    std::vector<std::uint64_t> got;
    Cycle delivered_at = 0;
    x.setDeliver([&](unsigned dst, mem::Packet &&p) {
        EXPECT_EQ(dst, 1u);
        got.push_back(p.reqId);
    });
    x.inject(0, 1, packet(8, 42), 0);
    // 8B @ 32B/cyc = 1 tx cycle + 12 hop latency = arrive at 13.
    for (Cycle c = 1; c <= 20 && got.empty(); ++c) {
        x.tick(c);
        if (!got.empty())
            delivered_at = c;
    }
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], 42u);
    EXPECT_GE(delivered_at, 13u);
    EXPECT_TRUE(x.quiescent());
}

TEST_F(XbarFixture, AccountsBytesPerType)
{
    noc::Crossbar x(1, 1, cfg, stats, "noc.t");
    x.setDeliver([](unsigned, mem::Packet &&) {});
    x.inject(0, 0, packet(140), 0);
    x.inject(0, 0, packet(12), 0);
    EXPECT_EQ(x.totalBytes(), 152u);
    x.flushStatWindow(); // batch the windowed per-type counters in
    EXPECT_EQ(stats.get("noc.t.packets"), 2u);
    EXPECT_EQ(stats.get("noc.t.bytes.BusRd"), 152u);
}

TEST_F(XbarFixture, SourceLinkSerializesLargePackets)
{
    noc::Crossbar x(1, 2, cfg, stats, "noc.t");
    // Two 128B packets from one source to different destinations:
    // 4 tx cycles each, so the second cannot arrive before 8 + hop.
    std::map<std::uint64_t, Cycle> arrival;
    Cycle cur = 0;
    x.setDeliver([&](unsigned, mem::Packet &&p) {
        arrival[p.reqId] = cur;
    });
    x.inject(0, 0, packet(128, 1), 0);
    x.inject(0, 1, packet(128, 2), 0);
    for (cur = 1; cur <= 100 && arrival.size() < 2; ++cur)
        x.tick(cur);
    ASSERT_EQ(arrival.size(), 2u);
    // First: 4 (tx) + 12 (hop) = 16. Second serializes: 8 + 12 = 20.
    EXPECT_GE(arrival[1], 16u);
    EXPECT_GE(arrival[2], 20u);
}

TEST_F(XbarFixture, DestPortSerializesEjection)
{
    cfg.setInt("noc.hop_latency", 1);
    noc::Crossbar x(4, 1, cfg, stats, "noc.t");
    std::vector<Cycle> deliveries;
    Cycle cur = 0;
    x.setDeliver([&](unsigned, mem::Packet &&) {
        deliveries.push_back(cur);
    });
    // Four 128B packets from different sources to one destination:
    // ejection runs one packet per 4 cycles.
    for (unsigned s = 0; s < 4; ++s)
        x.inject(s, 0, packet(128, s), 0);
    for (cur = 1; cur <= 100 && deliveries.size() < 4; ++cur)
        x.tick(cur);
    ASSERT_EQ(deliveries.size(), 4u);
    for (std::size_t i = 1; i < deliveries.size(); ++i)
        EXPECT_GE(deliveries[i] - deliveries[i - 1], 4u);
}

TEST_F(XbarFixture, LatencyDistributionRecorded)
{
    noc::Crossbar x(1, 1, cfg, stats, "noc.t");
    x.setDeliver([](unsigned, mem::Packet &&) {});
    x.inject(0, 0, packet(32), 0);
    for (Cycle c = 1; c < 40; ++c)
        x.tick(c);
    EXPECT_EQ(stats.getDistribution("noc.t.latency").count(), 1u);
    EXPECT_GE(stats.getDistribution("noc.t.latency").mean(), 13.0);
}

TEST_F(XbarFixture, RejectsZeroSizePackets)
{
    noc::Crossbar x(1, 1, cfg, stats, "noc.t");
    x.setDeliver([](unsigned, mem::Packet &&) {});
    EXPECT_THROW(x.inject(0, 0, packet(0), 0), std::runtime_error);
    EXPECT_THROW(x.inject(1, 0, packet(8), 0), std::runtime_error);
}

TEST_F(XbarFixture, HorizonNeverWhenEmpty)
{
    noc::Crossbar x(2, 2, cfg, stats, "noc.t");
    EXPECT_EQ(x.nextWorkCycle(7), kCycleNever);
}

TEST_F(XbarFixture, HorizonIsConservativeAndExact)
{
    noc::Crossbar x(2, 2, cfg, stats, "noc.t");
    std::vector<std::uint64_t> got;
    x.setDeliver([&](unsigned, mem::Packet &&p) {
        got.push_back(p.reqId);
    });
    x.inject(0, 1, packet(8, 42), 0);
    Cycle h = x.nextWorkCycle(0);
    ASSERT_NE(h, kCycleNever);
    // Ticking strictly before the horizon is a no-op...
    for (Cycle c = 1; c < h; ++c) {
        x.tick(c);
        EXPECT_TRUE(got.empty()) << "delivered before horizon at " << c;
    }
    // ...and the horizon itself is not late: the packet arrives there.
    x.tick(h);
    EXPECT_EQ(got.size(), 1u);
    EXPECT_EQ(x.nextWorkCycle(h), kCycleNever);
}
