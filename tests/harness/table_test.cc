#include "harness/table.hh"

#include <gtest/gtest.h>

#include "harness/runner.hh"

using namespace gtsc;

TEST(Table, RendersAlignedColumns)
{
    harness::Table t({"bench", "a", "b"});
    t.row("BH");
    t.cell(1.2345, 2);
    t.cellInt(42);
    t.row("LONGNAME");
    t.cell("x");
    std::string out = t.toString();
    EXPECT_NE(out.find("bench"), std::string::npos);
    EXPECT_NE(out.find("1.23"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
    EXPECT_NE(out.find("LONGNAME"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Geomean, Basics)
{
    EXPECT_DOUBLE_EQ(harness::geomean({4.0, 1.0}), 2.0);
    EXPECT_NEAR(harness::geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    EXPECT_EQ(harness::geomean({}), 0.0);
}
