#include "energy/energy_model.hh"

#include <gtest/gtest.h>

using namespace gtsc;
using energy::EnergyBreakdown;
using energy::EnergyModel;

namespace
{

sim::StatSet
baseStats()
{
    sim::StatSet s;
    s.counter("gpu.cycles") = 1000;
    s.counter("sm.active_cycles") = 800;
    s.counter("sm.instructions") = 500;
    s.counter("l1.tag_accesses") = 400;
    s.counter("l1.data_reads") = 300;
    s.counter("l1.data_writes") = 100;
    s.counter("l2.accesses") = 200;
    s.counter("noc.req.bytes") = 4096;
    s.counter("noc.resp.bytes") = 8192;
    s.counter("dram.reads") = 50;
    s.counter("dram.writes") = 10;
    return s;
}

} // namespace

TEST(EnergyModel, BreakdownPositiveAndSummable)
{
    sim::Config cfg;
    EnergyModel em(cfg);
    EnergyBreakdown e = em.compute(baseStats(), "gtsc", 4);
    EXPECT_GT(e.core, 0.0);
    EXPECT_GT(e.l1, 0.0);
    EXPECT_GT(e.l2, 0.0);
    EXPECT_GT(e.noc, 0.0);
    EXPECT_GT(e.dram, 0.0);
    EXPECT_NEAR(e.total(), e.core + e.l1 + e.l2 + e.noc + e.dram,
                1e-15);
}

TEST(EnergyModel, GtscL1MetadataCostsMoreThanTc)
{
    sim::Config cfg;
    EnergyModel em(cfg);
    sim::StatSet s = baseStats();
    EnergyBreakdown g = em.compute(s, "gtsc", 4);
    EnergyBreakdown t = em.compute(s, "tc", 4);
    EnergyBreakdown n = em.compute(s, "noncoh", 4);
    // Figure 17's ordering: same counts, metadata differs.
    EXPECT_GT(g.l1, t.l1);
    EXPECT_GT(t.l1, n.l1);
    EXPECT_DOUBLE_EQ(g.l2, t.l2);
}

TEST(EnergyModel, NoL1MeansNoL1Energy)
{
    sim::Config cfg;
    EnergyModel em(cfg);
    sim::StatSet s = baseStats();
    s.counter("l1.tag_accesses") = 0;
    s.counter("l1.data_reads") = 0;
    s.counter("l1.data_writes") = 0;
    EnergyBreakdown e = em.compute(s, "nol1", 4);
    EXPECT_EQ(e.l1, 0.0);
}

TEST(EnergyModel, TrafficScalesNocEnergy)
{
    sim::Config cfg;
    EnergyModel em(cfg);
    sim::StatSet lo = baseStats();
    sim::StatSet hi = baseStats();
    hi.counter("noc.req.bytes") = 4096 * 100;
    EXPECT_GT(em.compute(hi, "gtsc", 4).noc,
              em.compute(lo, "gtsc", 4).noc);
}

TEST(EnergyModel, IdleCoresBurnLessThanActive)
{
    sim::Config cfg;
    EnergyModel em(cfg);
    sim::StatSet busy = baseStats();
    sim::StatSet idle = baseStats();
    idle.counter("sm.active_cycles") = 100;
    // Same cycles, fewer active: the SC-saves-energy effect.
    EXPECT_GT(em.compute(busy, "gtsc", 4).core,
              em.compute(idle, "gtsc", 4).core);
}

TEST(EnergyModel, ConstantsConfigurable)
{
    sim::Config cfg;
    cfg.setDouble("energy.noc_byte_pj", 0.0);
    cfg.setDouble("energy.noc_static_pj_cycle", 0.0);
    EnergyModel em(cfg);
    EXPECT_EQ(em.compute(baseStats(), "gtsc", 4).noc, 0.0);
}
