/**
 * @file
 * Determinism regression for the parallel sweep runner: the same
 * RunSpec matrix must produce bit-identical RunResults whether it is
 * executed serially via runOne() or fanned out over 1, 2, or 8
 * workers. This is the contract every figure driver relies on when
 * it is run with --jobs.
 */

#include "harness/sweep.hh"

#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

using namespace gtsc;
using harness::RunResult;
using harness::RunSpec;
using harness::SweepOptions;
using harness::SweepRunner;

namespace
{

sim::Config
tiny()
{
    sim::Config cfg;
    cfg.setInt("gpu.num_sms", 2);
    cfg.setInt("gpu.warps_per_sm", 2);
    cfg.setInt("gpu.num_partitions", 2);
    cfg.setDouble("wl.scale", 0.25);
    return cfg;
}

std::vector<RunSpec>
matrix()
{
    std::vector<RunSpec> specs;
    for (const char *wl : {"bh", "vpr", "cc"})
        for (const char *proto : {"gtsc", "tc"})
            specs.push_back(RunSpec{tiny(), proto, "rc", wl, ""});
    // A couple of per-cell config variants, as lease sweeps produce.
    sim::Config lease = tiny();
    lease.setInt("tc.lease", 400);
    specs.push_back(RunSpec{lease, "tc", "sc", "bh", "bh lease=400"});
    specs.push_back(RunSpec{tiny(), "gtsc", "sc", "vpr", ""});
    return specs;
}

void
expectIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.protocol, b.protocol);
    EXPECT_EQ(a.consistency, b.consistency);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.memStallCycles, b.memStallCycles);
    EXPECT_EQ(a.nocBytes, b.nocBytes);
    EXPECT_EQ(a.nocPackets, b.nocPackets);
    EXPECT_EQ(a.l1Hits, b.l1Hits);
    EXPECT_EQ(a.l1MissCold, b.l1MissCold);
    EXPECT_EQ(a.l1MissExpired, b.l1MissExpired);
    EXPECT_EQ(a.checkerViolations, b.checkerViolations);
    EXPECT_EQ(a.loadsChecked, b.loadsChecked);
    EXPECT_EQ(a.verified, b.verified);
    // The full stat dump, not just the derived metrics: any shared
    // mutable state between workers would show up here first.
    EXPECT_EQ(a.stats.toString(), b.stats.toString());
}

} // namespace

TEST(Sweep, ParallelMatchesSerialBitForBit)
{
    std::vector<RunSpec> specs = matrix();

    std::vector<RunResult> serial;
    serial.reserve(specs.size());
    for (const RunSpec &s : specs)
        serial.push_back(harness::runOne(s.config, s.protocol,
                                         s.consistency, s.workload));

    for (unsigned jobs : {1u, 2u, 8u}) {
        SweepOptions opts;
        opts.jobs = jobs;
        SweepRunner runner(opts);
        EXPECT_EQ(runner.jobs(), jobs);
        std::vector<RunResult> parallel = runner.run(specs);
        ASSERT_EQ(parallel.size(), serial.size()) << "jobs=" << jobs;
        for (std::size_t i = 0; i < serial.size(); ++i) {
            SCOPED_TRACE("jobs=" + std::to_string(jobs) + " spec#" +
                         std::to_string(i) + " " +
                         specs[i].displayLabel());
            expectIdentical(serial[i], parallel[i]);
        }
    }
}

TEST(Sweep, RepeatedParallelRunsAreStable)
{
    // Re-running the same matrix on the same runner must also be
    // reproducible (no cross-run state inside the pool).
    std::vector<RunSpec> specs = matrix();
    SweepOptions opts;
    opts.jobs = 4;
    SweepRunner runner(opts);
    std::vector<RunResult> first = runner.run(specs);
    std::vector<RunResult> second = runner.run(specs);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        SCOPED_TRACE("spec#" + std::to_string(i));
        expectIdentical(first[i], second[i]);
    }
}

TEST(Sweep, ResultsComeBackInSubmissionOrder)
{
    std::vector<RunSpec> specs = matrix();
    SweepOptions opts;
    opts.jobs = 8;
    std::vector<RunResult> res = SweepRunner(opts).run(specs);
    ASSERT_EQ(res.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(res[i].protocol, specs[i].protocol);
        EXPECT_EQ(res[i].consistency, specs[i].consistency);
    }
}

TEST(Sweep, EmptyMatrixIsANoOp)
{
    EXPECT_TRUE(SweepRunner().run({}).empty());
}

TEST(Sweep, FailingRunRethrowsOnCaller)
{
    std::vector<RunSpec> specs = matrix();
    specs[2].protocol = "mesi"; // unknown: runOne throws
    SweepOptions opts;
    opts.jobs = 4;
    SweepRunner runner(opts);
    EXPECT_THROW(runner.run(specs), std::runtime_error);
}
