#include "harness/report.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace gtsc;

namespace
{

harness::RunResult
sampleResult()
{
    harness::RunResult r;
    r.workload = "BH";
    r.protocol = "gtsc";
    r.consistency = "rc";
    r.cycles = 1234;
    r.instructions = 99;
    r.l1Hits = 10;
    r.l1MissCold = 5;
    r.nocBytes = 2048;
    r.energy.core = 1e-6;
    r.energy.l1 = 2e-6;
    r.checkerViolations = 0;
    r.verified = true;
    return r;
}

} // namespace

TEST(Report, HeaderAndRowColumnCountsMatch)
{
    std::string header = harness::csvHeader();
    std::string row = harness::csvRow(sampleResult());
    auto count = [](const std::string &s) {
        return std::count(s.begin(), s.end(), ',');
    };
    EXPECT_EQ(count(header), count(row));
    EXPECT_GT(count(header), 20);
}

TEST(Report, RowContainsKeyFields)
{
    std::string row = harness::csvRow(sampleResult());
    EXPECT_EQ(row.rfind("BH,gtsc,rc,1234,99,", 0), 0u);
    EXPECT_NE(row.find(",true"), std::string::npos);
}

TEST(Report, WriteCsvRoundTrip)
{
    std::string path = "/tmp/gtsc_report_test.csv";
    harness::writeCsv(path, {sampleResult(), sampleResult()});
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    int lines = 0;
    while (std::getline(in, line))
        ++lines;
    EXPECT_EQ(lines, 3); // header + 2 rows
    std::remove(path.c_str());
}

TEST(Report, WriteCsvFailsOnBadPath)
{
    EXPECT_THROW(harness::writeCsv("/nonexistent-dir/x.csv",
                                   {sampleResult()}),
                 std::runtime_error);
}

TEST(Report, SummaryLineMentionsEssentials)
{
    std::string s = harness::summaryLine(sampleResult());
    EXPECT_NE(s.find("BH/gtsc/rc"), std::string::npos);
    EXPECT_NE(s.find("1234 cycles"), std::string::npos);
    EXPECT_EQ(s.find("VIOLATIONS"), std::string::npos);

    harness::RunResult bad = sampleResult();
    bad.checkerViolations = 3;
    EXPECT_NE(harness::summaryLine(bad).find("VIOLATIONS"),
              std::string::npos);
}

TEST(Report, JsonIsWellFormedAndComplete)
{
    std::string json = harness::toJson(sampleResult());
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"workload\":\"BH\""), std::string::npos);
    EXPECT_NE(json.find("\"cycles\":1234"), std::string::npos);
    EXPECT_NE(json.find("\"verified\":true"), std::string::npos);
}

TEST(Report, WriteJsonArray)
{
    std::string path = "/tmp/gtsc_report_test.json";
    harness::writeJson(path, {sampleResult(), sampleResult()});
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    std::string text = ss.str();
    EXPECT_EQ(text.front(), '[');
    EXPECT_EQ(std::count(text.begin(), text.end(), '{'), 2);
    std::remove(path.c_str());
}
