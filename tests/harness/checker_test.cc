#include "harness/checker.hh"

#include <gtest/gtest.h>

using namespace gtsc;
using harness::CoherenceChecker;

TEST(Checker, TsLoadMatchesLatestStoreAtOrBeforeTs)
{
    CoherenceChecker c;
    c.onStoreTs(0x100, 0, 5, 111);
    c.onStoreTs(0x100, 0, 9, 222);
    c.onLoadTs(0x100, 0, 5, 111);
    c.onLoadTs(0x100, 0, 8, 111);
    c.onLoadTs(0x100, 0, 9, 222);
    c.onLoadTs(0x100, 0, 100, 222);
    EXPECT_EQ(c.violations(), 0u);
    c.onLoadTs(0x100, 0, 8, 222); // too new for ts 8
    EXPECT_EQ(c.violations(), 1u);
    c.onLoadTs(0x100, 0, 9, 111); // too old for ts 9
    EXPECT_EQ(c.violations(), 2u);
    EXPECT_FALSE(c.reports().empty());
}

TEST(Checker, TsLoadBeforeAnyStoreSeesBaseValue)
{
    CoherenceChecker c;
    mem::MainMemory memory;
    memory.writeWord(0x200, 42);
    c.snapshotBase(memory);
    c.onLoadTs(0x200, 0, 3, 42);
    EXPECT_EQ(c.violations(), 0u);
    c.onStoreTs(0x200, 0, 10, 50);
    c.onLoadTs(0x200, 0, 9, 42); // logically before the store
    EXPECT_EQ(c.violations(), 0u);
    c.onLoadTs(0x200, 0, 9, 50);
    EXPECT_EQ(c.violations(), 1u);
}

TEST(Checker, TsStoreMonotonicityEnforced)
{
    CoherenceChecker c;
    c.onStoreTs(0x300, 0, 5, 1);
    c.onStoreTs(0x300, 0, 5, 2); // same wts: violation
    EXPECT_EQ(c.violations(), 1u);
    c.onStoreTs(0x300, 0, 4, 3); // regressed: violation
    EXPECT_EQ(c.violations(), 2u);
    c.onStoreTs(0x300, 1, 2, 4); // new epoch may rewind wts
    EXPECT_EQ(c.violations(), 2u);
}

TEST(Checker, EpochCarryOver)
{
    CoherenceChecker c;
    c.onStoreTs(0x400, 0, 50, 7);
    c.onEpochReset(1);
    // Epoch 1 load before any epoch-1 store: sees epoch-0 latest.
    c.onLoadTs(0x400, 1, 3, 7);
    EXPECT_EQ(c.violations(), 0u);
    c.onStoreTs(0x400, 1, 11, 8);
    c.onLoadTs(0x400, 1, 11, 8);
    c.onLoadTs(0x400, 1, 10, 7);
    EXPECT_EQ(c.violations(), 0u);
}

TEST(Checker, PhysIntervalSemantics)
{
    CoherenceChecker c;
    c.onStorePhys(0x500, 100, 1);
    c.onStorePhys(0x500, 200, 2);
    // Granted at 150, completed 160: version-1 window [100,200).
    c.onLoadPhys(0x500, 150, 160, 1);
    EXPECT_EQ(c.violations(), 0u);
    // Granted at 150, completed 250: either value acceptable.
    c.onLoadPhys(0x500, 150, 250, 1);
    c.onLoadPhys(0x500, 150, 250, 2);
    EXPECT_EQ(c.violations(), 0u);
    // Value 2 cannot be seen in a window that closed before 200.
    c.onLoadPhys(0x500, 120, 150, 2);
    EXPECT_EQ(c.violations(), 1u);
    // Value 1 cannot be seen after being overwritten pre-window.
    c.onLoadPhys(0x500, 210, 220, 1);
    EXPECT_EQ(c.violations(), 2u);
}

TEST(Checker, PhysInitialValueWindow)
{
    CoherenceChecker c;
    mem::MainMemory memory;
    memory.writeWord(0x600, 9);
    c.snapshotBase(memory);
    c.onLoadPhys(0x600, 10, 20, 9); // never stored: initial ok
    EXPECT_EQ(c.violations(), 0u);
    c.onStorePhys(0x600, 100, 1);
    c.onLoadPhys(0x600, 50, 80, 9); // before the store
    EXPECT_EQ(c.violations(), 0u);
    c.onLoadPhys(0x600, 120, 130, 9); // stale past the store
    EXPECT_EQ(c.violations(), 1u);
}

TEST(Checker, SnapshotClearsHistories)
{
    CoherenceChecker c;
    c.onStoreTs(0x700, 0, 5, 1);
    mem::MainMemory memory;
    memory.writeWord(0x700, 33);
    c.snapshotBase(memory);
    c.onLoadTs(0x700, 0, 100, 33); // history gone; base value rules
    EXPECT_EQ(c.violations(), 0u);
}

TEST(Checker, CountsLoadsAndStores)
{
    CoherenceChecker c;
    c.onStoreTs(0x800, 0, 1, 1);
    c.onStorePhys(0x900, 1, 1);
    c.onLoadTs(0x800, 0, 1, 1);
    c.onLoadPhys(0x900, 1, 2, 1);
    EXPECT_EQ(c.storesRecorded(), 2u);
    EXPECT_EQ(c.loadsChecked(), 2u);
}
