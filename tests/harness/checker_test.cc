#include "harness/checker.hh"

#include <gtest/gtest.h>

#include "obs/transcript.hh"

using namespace gtsc;
using harness::CoherenceChecker;

TEST(Checker, TsLoadMatchesLatestStoreAtOrBeforeTs)
{
    CoherenceChecker c;
    c.onStoreTs(0x100, 0, 5, 111, 0, 0);
    c.onStoreTs(0x100, 0, 9, 222, 0, 0);
    c.onLoadTs(0x100, 0, 5, 111, 0, 0);
    c.onLoadTs(0x100, 0, 8, 111, 0, 0);
    c.onLoadTs(0x100, 0, 9, 222, 0, 0);
    c.onLoadTs(0x100, 0, 100, 222, 0, 0);
    EXPECT_EQ(c.violations(), 0u);
    c.onLoadTs(0x100, 0, 8, 222, 0, 0); // too new for ts 8
    EXPECT_EQ(c.violations(), 1u);
    c.onLoadTs(0x100, 0, 9, 111, 0, 0); // too old for ts 9
    EXPECT_EQ(c.violations(), 2u);
    EXPECT_FALSE(c.reports().empty());
}

TEST(Checker, TsLoadBeforeAnyStoreSeesBaseValue)
{
    CoherenceChecker c;
    mem::MainMemory memory;
    memory.writeWord(0x200, 42);
    c.snapshotBase(memory);
    c.onLoadTs(0x200, 0, 3, 42, 0, 0);
    EXPECT_EQ(c.violations(), 0u);
    c.onStoreTs(0x200, 0, 10, 50, 0, 0);
    c.onLoadTs(0x200, 0, 9, 42, 0, 0); // logically before the store
    EXPECT_EQ(c.violations(), 0u);
    c.onLoadTs(0x200, 0, 9, 50, 0, 0);
    EXPECT_EQ(c.violations(), 1u);
}

TEST(Checker, TsStoreMonotonicityEnforced)
{
    CoherenceChecker c;
    c.onStoreTs(0x300, 0, 5, 1, 0, 0);
    c.onStoreTs(0x300, 0, 5, 2, 0, 0); // same wts: violation
    EXPECT_EQ(c.violations(), 1u);
    c.onStoreTs(0x300, 0, 4, 3, 0, 0); // regressed: violation
    EXPECT_EQ(c.violations(), 2u);
    c.onStoreTs(0x300, 1, 2, 4, 0, 0); // new epoch may rewind wts
    EXPECT_EQ(c.violations(), 2u);
}

TEST(Checker, EpochCarryOver)
{
    CoherenceChecker c;
    c.onStoreTs(0x400, 0, 50, 7, 0, 0);
    c.onEpochReset(1);
    // Epoch 1 load before any epoch-1 store: sees epoch-0 latest.
    c.onLoadTs(0x400, 1, 3, 7, 0, 0);
    EXPECT_EQ(c.violations(), 0u);
    c.onStoreTs(0x400, 1, 11, 8, 0, 0);
    c.onLoadTs(0x400, 1, 11, 8, 0, 0);
    c.onLoadTs(0x400, 1, 10, 7, 0, 0);
    EXPECT_EQ(c.violations(), 0u);
}

TEST(Checker, PhysIntervalSemantics)
{
    CoherenceChecker c;
    c.onStorePhys(0x500, 100, 1, 0, 0);
    c.onStorePhys(0x500, 200, 2, 0, 0);
    // Granted at 150, completed 160: version-1 window [100,200).
    c.onLoadPhys(0x500, 150, 160, 1, 0, 0);
    EXPECT_EQ(c.violations(), 0u);
    // Granted at 150, completed 250: either value acceptable.
    c.onLoadPhys(0x500, 150, 250, 1, 0, 0);
    c.onLoadPhys(0x500, 150, 250, 2, 0, 0);
    EXPECT_EQ(c.violations(), 0u);
    // Value 2 cannot be seen in a window that closed before 200.
    c.onLoadPhys(0x500, 120, 150, 2, 0, 0);
    EXPECT_EQ(c.violations(), 1u);
    // Value 1 cannot be seen after being overwritten pre-window.
    c.onLoadPhys(0x500, 210, 220, 1, 0, 0);
    EXPECT_EQ(c.violations(), 2u);
}

TEST(Checker, PhysInitialValueWindow)
{
    CoherenceChecker c;
    mem::MainMemory memory;
    memory.writeWord(0x600, 9);
    c.snapshotBase(memory);
    c.onLoadPhys(0x600, 10, 20, 9, 0, 0); // never stored: initial ok
    EXPECT_EQ(c.violations(), 0u);
    c.onStorePhys(0x600, 100, 1, 0, 0);
    c.onLoadPhys(0x600, 50, 80, 9, 0, 0); // before the store
    EXPECT_EQ(c.violations(), 0u);
    c.onLoadPhys(0x600, 120, 130, 9, 0, 0); // stale past the store
    EXPECT_EQ(c.violations(), 1u);
}

TEST(Checker, SnapshotClearsHistories)
{
    CoherenceChecker c;
    c.onStoreTs(0x700, 0, 5, 1, 0, 0);
    mem::MainMemory memory;
    memory.writeWord(0x700, 33);
    c.snapshotBase(memory);
    c.onLoadTs(0x700, 0, 100, 33, 0, 0); // history gone; base rules
    EXPECT_EQ(c.violations(), 0u);
}

TEST(Checker, CountsLoadsAndStores)
{
    CoherenceChecker c;
    c.onStoreTs(0x800, 0, 1, 1, 0, 0);
    c.onStorePhys(0x900, 1, 1, 0, 0);
    c.onLoadTs(0x800, 0, 1, 1, 0, 0);
    c.onLoadPhys(0x900, 1, 2, 1, 0, 0);
    EXPECT_EQ(c.storesRecorded(), 2u);
    EXPECT_EQ(c.loadsChecked(), 2u);
}

TEST(Checker, ReportsNameTheOffendingWarp)
{
    CoherenceChecker c;
    c.onStoreTs(0xa00, 0, 5, 1, 2, 7);
    c.onLoadTs(0xa00, 0, 5, 99, 3, 11); // wrong value from sm3/w11
    ASSERT_EQ(c.reports().size(), 1u);
    EXPECT_NE(c.reports()[0].find("sm3/w11"), std::string::npos);
    EXPECT_NE(c.reports()[0].find("sm2/w7"), std::string::npos)
        << "report should name the expected writer";

    c.onLoadPhys(0xb00, 10, 20, 5, 1, 4); // never stored, wrong value
    ASSERT_EQ(c.reports().size(), 2u);
    EXPECT_NE(c.reports()[1].find("sm1/w4"), std::string::npos);
}

TEST(Checker, UnknownOriginRendersQuestionMarks)
{
    CoherenceChecker c;
    c.onStorePhys(0xc00, 100, 1, mem::kNoSm, mem::kNoWarp);
    c.onStorePhys(0xc00, 50, 2, mem::kNoSm, mem::kNoWarp); // regressed
    ASSERT_EQ(c.reports().size(), 1u);
    EXPECT_NE(c.reports()[0].find("sm?/w?"), std::string::npos);
}

TEST(Checker, ViolationReportQuotesTranscript)
{
    obs::Transcript tr(16, "");
    tr.log(obs::TranscriptEntry{10, 0xa80, "BusWr", 0, 8, 3, false,
                                5, 0});
    tr.log(obs::TranscriptEntry{12, 0xa80, "BusWrAck", 8, 0, 3, true,
                                5, 0});

    CoherenceChecker c;
    c.setTranscript(&tr);
    // 0xa88 is a word inside line 0xa80.
    c.onStoreTs(0xa88, 0, 5, 1, 0, 3);
    c.onStoreTs(0xa88, 0, 5, 2, 1, 0); // same wts: violation
    ASSERT_EQ(c.reports().size(), 1u);
    EXPECT_NE(c.reports()[0].find("transcript:"), std::string::npos);
    EXPECT_NE(c.reports()[0].find("BusWr"), std::string::npos);
}
