#include "harness/runner.hh"

#include <gtest/gtest.h>

#include <stdexcept>

using namespace gtsc;
using harness::RunResult;
using harness::runOne;

namespace
{

sim::Config
tiny()
{
    sim::Config cfg;
    cfg.setInt("gpu.num_sms", 2);
    cfg.setInt("gpu.warps_per_sm", 2);
    cfg.setInt("gpu.num_partitions", 2);
    cfg.setDouble("wl.scale", 0.25);
    return cfg;
}

} // namespace

TEST(Runner, PopulatesDerivedMetrics)
{
    RunResult r = runOne(tiny(), "gtsc", "rc", "bh");
    EXPECT_EQ(r.workload, "BH");
    EXPECT_EQ(r.protocol, "gtsc");
    EXPECT_EQ(r.consistency, "rc");
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.instructions, 0u);
    EXPECT_GT(r.nocBytes, 0u);
    EXPECT_GT(r.nocPackets, 0u);
    EXPECT_GT(r.avgNocLatency, 0.0);
    EXPECT_GT(r.energy.total(), 0.0);
    EXPECT_GT(r.loadsChecked, 0u);
    EXPECT_EQ(r.stats.get("gpu.cycles"), r.cycles);
}

TEST(Runner, CheckerCanBeDisabled)
{
    sim::Config cfg = tiny();
    cfg.setBool("check.enabled", false);
    RunResult r = runOne(cfg, "gtsc", "rc", "bh");
    EXPECT_EQ(r.loadsChecked, 0u);
    EXPECT_EQ(r.checkerViolations, 0u);
    EXPECT_GT(r.cycles, 0u);
}

TEST(Runner, CheckerDoesNotPerturbTiming)
{
    sim::Config on = tiny();
    sim::Config off = tiny();
    off.setBool("check.enabled", false);
    RunResult a = runOne(on, "gtsc", "rc", "vpr");
    RunResult b = runOne(off, "gtsc", "rc", "vpr");
    EXPECT_EQ(a.cycles, b.cycles)
        << "the checker must be observation-only";
    EXPECT_EQ(a.nocBytes, b.nocBytes);
}

TEST(Runner, UnknownNamesAreFatal)
{
    EXPECT_THROW(runOne(tiny(), "mesi", "rc", "bh"),
                 std::runtime_error);
    EXPECT_THROW(runOne(tiny(), "gtsc", "weak", "bh"),
                 std::runtime_error);
    EXPECT_THROW(runOne(tiny(), "gtsc", "rc", "linpack"),
                 std::runtime_error);
}

TEST(Runner, ConsistencyOverridesConfig)
{
    sim::Config cfg = tiny();
    cfg.set("gpu.consistency", "rc"); // ignored: argument wins
    RunResult r = runOne(cfg, "gtsc", "sc", "bh");
    EXPECT_EQ(r.consistency, "sc");
}

TEST(Runner, ConfigsProvideExpectedShapes)
{
    sim::Config paper = harness::paperConfig();
    EXPECT_EQ(paper.getInt("gpu.num_sms", 0), 16);
    EXPECT_EQ(paper.getInt("gpu.warps_per_sm", 0), 48);
    EXPECT_EQ(paper.getInt("gpu.num_partitions", 0), 8);
    sim::Config bench = harness::benchConfig();
    EXPECT_GT(bench.getInt("gpu.num_sms", 0), 0);
}


