/**
 * TC corner cases, including unit regressions for bugs found by the
 * integration matrix (a stalled store's line must pin its L2 way).
 */

#include <gtest/gtest.h>

#include "protocols/tc_l2.hh"

using namespace gtsc;
using mem::MsgType;
using mem::Packet;
using protocols::TcL2;

namespace
{

class TcCornerFixture : public ::testing::Test
{
  protected:
    void
    init(bool strong, std::int64_t lease = 50)
    {
        cfg.setInt("l2.partition_bytes", 1024); // 8 lines, 4 sets
        cfg.setInt("l2.assoc", 2);
        cfg.setInt("l2.access_latency", 2);
        cfg.setInt("tc.lease", lease);
        dram = std::make_unique<mem::DramChannel>(cfg, stats, events,
                                                  memory, "dram");
        l2 = std::make_unique<TcL2>(0, cfg, stats, events, *dram,
                                    memory, strong, nullptr);
        l2->setSend([this](Packet &&p) { sent.push_back(p); });
    }

    Packet
    busRd(Addr line, SmId src = 0)
    {
        Packet p;
        p.type = MsgType::BusRd;
        p.lineAddr = line;
        p.src = src;
        p.reqId = nextId++;
        return p;
    }

    Packet
    busWr(Addr line, std::uint32_t value)
    {
        Packet p;
        p.type = MsgType::BusWr;
        p.lineAddr = line;
        p.wordMask = 1;
        p.data.setWord(0, value);
        p.reqId = nextId++;
        return p;
    }

    void
    advance(unsigned cycles)
    {
        for (unsigned i = 0; i < cycles; ++i) {
            ++now;
            events.runUntil(now);
            l2->tick(now);
            dram->tick(now);
        }
    }

    unsigned
    count(MsgType t) const
    {
        unsigned n = 0;
        for (const auto &p : sent)
            n += (p.type == t);
        return n;
    }

    sim::Config cfg;
    sim::StatSet stats;
    sim::EventQueue events;
    mem::MainMemory memory;
    std::unique_ptr<mem::DramChannel> dram;
    std::unique_ptr<TcL2> l2;
    std::vector<Packet> sent;
    std::uint64_t nextId = 1;
    Cycle now = 0;
};

// Regression (found by the benchmark matrix): a line with ops
// stalled behind a write must not be evicted by a concurrent fill,
// even once its lease has expired.
TEST_F(TcCornerFixture, StalledLineIsPinnedAgainstEviction)
{
    init(true, 400);
    // Load line 0x000 (set 0) and refresh its lease.
    l2->receiveRequest(busRd(0x000), now);
    advance(200);
    l2->receiveRequest(busRd(0x000), now);
    advance(5);
    // Stall a store behind the fresh lease.
    l2->receiveRequest(busWr(0x000, 9), now);
    advance(5);
    EXPECT_EQ(count(MsgType::BusWrAck), 0u);

    // Two more lines map to set 0; their fills must pick the OTHER
    // way / wait, never evicting the stalled line.
    l2->receiveRequest(busRd(0x200), now);
    advance(200);
    l2->receiveRequest(busRd(0x400), now);
    advance(300);
    // The system makes progress without tripping the "stalled op on
    // non-resident line" invariant, and the write eventually lands.
    advance(600);
    EXPECT_EQ(count(MsgType::BusWrAck), 1u);
    EXPECT_TRUE(l2->quiescent());
}

TEST_F(TcCornerFixture, WeakGwctChainsAcrossRepeatedWrites)
{
    init(false, 100);
    l2->receiveRequest(busRd(0x000), now);
    advance(200);
    l2->receiveRequest(busRd(0x000), now); // lease ~ now+100
    advance(5);
    sent.clear();
    l2->receiveRequest(busWr(0x000, 1), now);
    advance(5);
    l2->receiveRequest(busWr(0x000, 2), now);
    advance(5);
    ASSERT_EQ(count(MsgType::BusWrAck), 2u);
    // Both writes report the same visibility point (the lease end);
    // neither stalls.
    Cycle g0 = sent[0].gwct;
    Cycle g1 = sent[1].gwct;
    EXPECT_EQ(g0, g1);
    EXPECT_GT(g0, now);
}

TEST_F(TcCornerFixture, StrongWritesToSameLineSerializeInOrder)
{
    init(true, 60);
    l2->receiveRequest(busRd(0x000), now);
    advance(200);
    l2->receiveRequest(busRd(0x000), now);
    advance(5);
    sent.clear();
    l2->receiveRequest(busWr(0x000, 1), now);
    l2->receiveRequest(busWr(0x000, 2), now);
    l2->receiveRequest(busRd(0x000), now);
    advance(400); // leases expire; everything drains
    ASSERT_EQ(count(MsgType::BusWrAck), 2u);
    ASSERT_EQ(count(MsgType::BusFill), 1u);
    // The final read (queued behind both writes) sees the last one.
    EXPECT_EQ(sent.back().type, MsgType::BusFill);
    EXPECT_EQ(sent.back().data.word(0), 2u);
    EXPECT_TRUE(l2->quiescent());
}

TEST_F(TcCornerFixture, ModeFlagSelectsSemantics)
{
    // Same request sequence: strong stalls, weak does not.
    init(false, 200);
    l2->receiveRequest(busRd(0x000), now);
    advance(200);
    l2->receiveRequest(busRd(0x000), now);
    advance(5);
    sent.clear();
    l2->receiveRequest(busWr(0x000, 1), now);
    advance(10);
    EXPECT_EQ(count(MsgType::BusWrAck), 1u) << "weak: immediate";
    EXPECT_EQ(stats.get("l2.write_stall_cycles"), 0u);
}

TEST_F(TcCornerFixture, WriteMissAllocatesAndMergesDramData)
{
    init(false);
    memory.writeWord(0x1004, 77); // neighbouring word pre-set
    l2->receiveRequest(busWr(0x1000, 5), now);
    advance(300);
    ASSERT_EQ(count(MsgType::BusWrAck), 1u);
    sent.clear();
    l2->receiveRequest(busRd(0x1000), now);
    advance(20);
    ASSERT_EQ(count(MsgType::BusFill), 1u);
    EXPECT_EQ(sent.back().data.word(0), 5u);
    EXPECT_EQ(sent.back().data.word(1), 77u)
        << "write-allocate merged over the DRAM line";
}

} // namespace
