/**
 * FSM-level tests of the Temporal Coherence baseline: physical-time
 * leases and self-invalidation at L1; TC-Strong write stalls,
 * TC-Weak GWCT, and inclusive delayed eviction at L2.
 */

#include <gtest/gtest.h>

#include "protocols/tc_l1.hh"
#include "protocols/tc_l2.hh"

using namespace gtsc;
using mem::Access;
using mem::AccessResult;
using mem::MsgType;
using mem::Packet;
using protocols::TcL1;
using protocols::TcL2;

namespace
{

class TcL1Fixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        cfg.setInt("l1.size_bytes", 2 * 1024);
        cfg.setInt("l1.assoc", 2);
        l1 = std::make_unique<TcL1>(0, cfg, stats, events, nullptr);
        l1->setSend([this](Packet &&p) { sent.push_back(p); });
        l1->setLoadDone([this](const Access &a, const AccessResult &r) {
            loadsDone.emplace_back(a, r);
        });
        l1->setStoreDone([this](const Access &a, Cycle gwct) {
            storesDone.emplace_back(a, gwct);
        });
    }

    Access
    load(Addr line, WarpId warp = 0)
    {
        Access a;
        a.lineAddr = line;
        a.wordMask = 1;
        a.warp = warp;
        a.id = nextId++;
        return a;
    }

    Access
    store(Addr line, std::uint32_t value)
    {
        Access a = load(line);
        a.isStore = true;
        a.storeData.setWord(0, value);
        return a;
    }

    Packet
    fill(Addr line, Cycle lease_end, Cycle grant)
    {
        Packet p;
        p.type = MsgType::BusFill;
        p.lineAddr = line;
        p.leaseEnd = lease_end;
        p.gwct = grant;
        return p;
    }

    void
    advance(unsigned cycles = 12)
    {
        for (unsigned i = 0; i < cycles; ++i) {
            ++now;
            events.runUntil(now);
            l1->tick(now);
        }
    }

    sim::Config cfg;
    sim::StatSet stats;
    sim::EventQueue events;
    std::unique_ptr<TcL1> l1;
    std::vector<Packet> sent;
    std::vector<std::pair<Access, AccessResult>> loadsDone;
    std::vector<std::pair<Access, Cycle>> storesDone;
    std::uint64_t nextId = 1;
    Cycle now = 0;
};

TEST_F(TcL1Fixture, HitOnlyWithinLease)
{
    l1->access(load(0x1000), now);
    l1->receiveResponse(fill(0x1000, now + 50, now), now);
    advance(5);
    sent.clear();
    EXPECT_TRUE(l1->access(load(0x1000), now));
    EXPECT_TRUE(sent.empty()) << "within lease: hit";
    EXPECT_EQ(stats.get("l1.hits"), 1u);

    advance(60); // lease expires -> self-invalidated
    l1->access(load(0x1000), now);
    ASSERT_EQ(sent.size(), 1u) << "expired: coherence miss";
    EXPECT_EQ(sent[0].type, MsgType::BusRd);
    EXPECT_EQ(stats.get("l1.miss_expired"), 1u);
}

TEST_F(TcL1Fixture, StoreInvalidatesLocalCopy)
{
    l1->access(load(0x1000), now);
    l1->receiveResponse(fill(0x1000, now + 500, now), now);
    advance(2);
    sent.clear();
    l1->access(store(0x1000, 9), now);
    ASSERT_EQ(sent.size(), 1u);
    EXPECT_EQ(sent[0].type, MsgType::BusWr);

    // Even though the lease is unexpired, the local copy is gone.
    l1->access(load(0x1000), now);
    EXPECT_EQ(sent.size(), 2u);
    EXPECT_EQ(sent[1].type, MsgType::BusRd);
    EXPECT_EQ(stats.get("l1.miss_cold"), 2u);
}

TEST_F(TcL1Fixture, AckDeliversGwct)
{
    l1->access(store(0x1000, 9), now);
    Packet ack;
    ack.type = MsgType::BusWrAck;
    ack.lineAddr = 0x1000;
    ack.reqId = sent[0].reqId;
    ack.gwct = 777;
    l1->receiveResponse(std::move(ack), now);
    ASSERT_EQ(storesDone.size(), 1u);
    EXPECT_EQ(storesDone[0].second, 777u);
}

class TcL2Fixture : public ::testing::Test
{
  protected:
    void
    init(bool strong)
    {
        cfg.setInt("l2.partition_bytes", 1024); // 8 lines
        cfg.setInt("l2.assoc", 2);
        cfg.setInt("l2.access_latency", 2);
        if (!cfg.has("tc.lease"))
            cfg.setInt("tc.lease", 50);
        dram = std::make_unique<mem::DramChannel>(cfg, stats, events,
                                                  memory, "dram");
        l2 = std::make_unique<TcL2>(0, cfg, stats, events, *dram,
                                    memory, strong, nullptr);
        l2->setSend([this](Packet &&p) { sent.push_back(p); });
    }

    Packet
    busRd(Addr line)
    {
        Packet p;
        p.type = MsgType::BusRd;
        p.lineAddr = line;
        p.reqId = nextId++;
        return p;
    }

    Packet
    busWr(Addr line, std::uint32_t value)
    {
        Packet p;
        p.type = MsgType::BusWr;
        p.lineAddr = line;
        p.wordMask = 1;
        p.data.setWord(0, value);
        p.reqId = nextId++;
        return p;
    }

    void
    advance(unsigned cycles)
    {
        for (unsigned i = 0; i < cycles; ++i) {
            ++now;
            events.runUntil(now);
            l2->tick(now);
            dram->tick(now);
        }
    }

    unsigned
    count(MsgType t) const
    {
        unsigned n = 0;
        for (const auto &p : sent)
            n += (p.type == t);
        return n;
    }

    sim::Config cfg;
    sim::StatSet stats;
    sim::EventQueue events;
    mem::MainMemory memory;
    std::unique_ptr<mem::DramChannel> dram;
    std::unique_ptr<TcL2> l2;
    std::vector<Packet> sent;
    std::uint64_t nextId = 1;
    Cycle now = 0;
};

TEST_F(TcL2Fixture, ReadGrantsLeaseRelativeToNow)
{
    init(false);
    l2->receiveRequest(busRd(0x1000), now);
    advance(200);
    ASSERT_EQ(count(MsgType::BusFill), 1u);
    const Packet &f = sent.back();
    EXPECT_GT(f.leaseEnd, f.gwct);
    EXPECT_EQ(f.leaseEnd - f.gwct, 50u) << "lease period";
}

TEST_F(TcL2Fixture, StrongStoreStallsUntilLeaseExpiry)
{
    init(true);
    l2->receiveRequest(busRd(0x1000), now);
    advance(200); // line resident, lease granted at ~now
    l2->receiveRequest(busRd(0x1000), now); // refresh the lease
    advance(5);
    sent.clear();
    l2->receiveRequest(busWr(0x1000, 9), now);
    advance(10);
    EXPECT_EQ(count(MsgType::BusWrAck), 0u) << "write stalled";
    EXPECT_GT(stats.get("l2.write_stall_cycles"), 0u);
    advance(60); // lease expires
    EXPECT_EQ(count(MsgType::BusWrAck), 1u);
}

TEST_F(TcL2Fixture, StrongReadsQueueBehindStalledStore)
{
    init(true);
    l2->receiveRequest(busRd(0x1000), now);
    advance(200);
    l2->receiveRequest(busRd(0x1000), now);
    advance(5);
    sent.clear();
    l2->receiveRequest(busWr(0x1000, 9), now);
    advance(2);
    l2->receiveRequest(busRd(0x1000), now);
    advance(10);
    EXPECT_EQ(count(MsgType::BusFill), 0u)
        << "read delayed behind the stalled write";
    advance(80);
    ASSERT_EQ(count(MsgType::BusFill), 1u);
    EXPECT_EQ(sent.back().data.word(0), 9u)
        << "read sees the store it queued behind";
}

TEST_F(TcL2Fixture, WeakStorePerformsImmediatelyWithGwct)
{
    init(false);
    l2->receiveRequest(busRd(0x1000), now);
    advance(200);
    l2->receiveRequest(busRd(0x1000), now); // lease to ~now+50
    advance(5);
    Cycle lease_end = 0;
    for (const auto &p : sent) {
        if (p.type == MsgType::BusFill)
            lease_end = p.leaseEnd;
    }
    sent.clear();
    l2->receiveRequest(busWr(0x1000, 9), now);
    advance(10);
    ASSERT_EQ(count(MsgType::BusWrAck), 1u) << "no write stall";
    EXPECT_EQ(sent.back().gwct, lease_end)
        << "GWCT = outstanding lease expiry";
    EXPECT_EQ(stats.get("l2.write_stall_cycles"), 0u);
}

TEST_F(TcL2Fixture, InclusiveDelayedEviction)
{
    cfg.setInt("tc.lease", 500); // leases outlive the DRAM fill
    init(false);
    // Fill set 0 (lines 0x000 and 0x200) with fresh leases.
    l2->receiveRequest(busRd(0x000), now);
    advance(200);
    l2->receiveRequest(busRd(0x200), now);
    advance(200);
    l2->receiveRequest(busRd(0x000), now); // refresh leases
    l2->receiveRequest(busRd(0x200), now);
    advance(5);
    sent.clear();
    // A third line maps to the same set; both victims stay leased
    // well past the DRAM fill (~110 cycles).
    l2->receiveRequest(busRd(0x400), now);
    advance(200);
    EXPECT_EQ(count(MsgType::BusFill), 0u)
        << "fill stalls: no expired victim (delayed eviction)";
    EXPECT_GT(stats.get("l2.evict_stall_cycles"), 0u);
    advance(600); // leases expire; insert proceeds
    EXPECT_EQ(count(MsgType::BusFill), 1u);
}

TEST_F(TcL2Fixture, WeakStoreToExpiredLineGwctIsNow)
{
    init(false);
    l2->receiveRequest(busRd(0x1000), now);
    advance(300); // lease long expired
    sent.clear();
    l2->receiveRequest(busWr(0x1000, 9), now);
    advance(10);
    ASSERT_EQ(count(MsgType::BusWrAck), 1u);
    EXPECT_LE(sent.back().gwct, now) << "no future visibility point";
}

} // namespace
