/**
 * FSM-level tests of the two baselines: NoL1 (BL, private caches
 * disabled) and NonCohL1 (conventional non-coherent write-through
 * L1), plus the SimpleL2 they share.
 */

#include <gtest/gtest.h>

#include "protocols/no_l1.hh"
#include "protocols/noncoh_l1.hh"
#include "protocols/simple_l2.hh"

using namespace gtsc;
using mem::Access;
using mem::AccessResult;
using mem::MsgType;
using mem::Packet;

namespace
{

Access
makeLoad(Addr line, std::uint64_t id)
{
    Access a;
    a.lineAddr = line;
    a.wordMask = 1;
    a.id = id;
    return a;
}

Access
makeStore(Addr line, std::uint64_t id, std::uint32_t value)
{
    Access a = makeLoad(line, id);
    a.isStore = true;
    a.storeData.setWord(0, value);
    return a;
}

TEST(NoL1, EveryAccessGoesToTheNoc)
{
    sim::Config cfg;
    sim::StatSet stats;
    sim::EventQueue events;
    protocols::NoL1 l1(0, cfg, stats, events, nullptr);
    std::vector<Packet> sent;
    l1.setSend([&](Packet &&p) { sent.push_back(p); });
    l1.setLoadDone([](const Access &, const AccessResult &) {});
    l1.setStoreDone([](const Access &, Cycle) {});

    // Same line three times: no tags, no merging — three requests.
    l1.access(makeLoad(0x1000, 1), 0);
    l1.access(makeLoad(0x1000, 2), 0);
    l1.access(makeStore(0x1000, 3, 9), 0);
    ASSERT_EQ(sent.size(), 3u);
    EXPECT_EQ(sent[0].type, MsgType::BusRd);
    EXPECT_EQ(sent[1].type, MsgType::BusRd);
    EXPECT_EQ(sent[2].type, MsgType::BusWr);
    EXPECT_EQ(stats.get("l1.tag_accesses"), 0u) << "no L1 tags";
}

TEST(NoL1, MatchesResponsesByRequestId)
{
    sim::Config cfg;
    sim::StatSet stats;
    sim::EventQueue events;
    protocols::NoL1 l1(0, cfg, stats, events, nullptr);
    l1.setSend([](Packet &&) {});
    std::vector<std::uint64_t> done;
    l1.setLoadDone([&](const Access &a, const AccessResult &r) {
        done.push_back(a.id);
        EXPECT_EQ(r.data.word(0), 100u + a.id);
    });
    l1.setStoreDone([](const Access &, Cycle) {});

    l1.access(makeLoad(0x1000, 1), 0);
    l1.access(makeLoad(0x2000, 2), 0);
    // Complete out of order.
    Packet f2;
    f2.type = MsgType::BusFill;
    f2.lineAddr = 0x2000;
    f2.reqId = 2;
    f2.data.setWord(0, 102);
    l1.receiveResponse(std::move(f2), 1);
    Packet f1;
    f1.type = MsgType::BusFill;
    f1.lineAddr = 0x1000;
    f1.reqId = 1;
    f1.data.setWord(0, 101);
    l1.receiveResponse(std::move(f1), 2);
    events.runUntil(100);
    EXPECT_EQ(done, (std::vector<std::uint64_t>{2, 1}));
    EXPECT_TRUE(l1.quiescent());
}

TEST(NoL1, BoundedOutstanding)
{
    sim::Config cfg;
    cfg.setInt("nol1.max_pending", 2);
    sim::StatSet stats;
    sim::EventQueue events;
    protocols::NoL1 l1(0, cfg, stats, events, nullptr);
    l1.setSend([](Packet &&) {});
    EXPECT_TRUE(l1.access(makeLoad(0x1000, 1), 0));
    EXPECT_TRUE(l1.access(makeLoad(0x2000, 2), 0));
    EXPECT_FALSE(l1.access(makeLoad(0x3000, 3), 0));
    EXPECT_EQ(stats.get("l1.rejects_mshr_full"), 1u);
}

TEST(NonCohL1, HitsNeverExpireAndStoresUpdateLocally)
{
    sim::Config cfg;
    sim::StatSet stats;
    sim::EventQueue events;
    protocols::NonCohL1 l1(0, cfg, stats, events, nullptr);
    std::vector<Packet> sent;
    l1.setSend([&](Packet &&p) { sent.push_back(p); });
    std::vector<std::uint32_t> loaded;
    l1.setLoadDone([&](const Access &, const AccessResult &r) {
        loaded.push_back(r.data.word(0));
    });
    l1.setStoreDone([](const Access &, Cycle) {});

    l1.access(makeLoad(0x1000, 1), 0);
    Packet fill;
    fill.type = MsgType::BusFill;
    fill.lineAddr = 0x1000;
    fill.data.setWord(0, 7);
    l1.receiveResponse(std::move(fill), 1);
    events.runUntil(50);

    // Hit long after any physical lease would have expired.
    sent.clear();
    l1.access(makeLoad(0x1000, 2), 100000);
    events.runUntil(100100);
    EXPECT_TRUE(sent.empty());
    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_EQ(loaded[1], 7u);

    // Store writes through but keeps the local copy updated.
    l1.access(makeStore(0x1000, 3, 55), 100001);
    ASSERT_EQ(sent.size(), 1u);
    EXPECT_EQ(sent[0].type, MsgType::BusWr);
    l1.access(makeLoad(0x1000, 4), 100002);
    events.runUntil(100200);
    ASSERT_EQ(loaded.size(), 3u);
    EXPECT_EQ(loaded[2], 55u) << "own store visible locally";
}

TEST(SimpleL2, ReadAfterWriteReturnsNewValue)
{
    sim::Config cfg;
    cfg.setInt("l2.partition_bytes", 1024);
    cfg.setInt("l2.assoc", 2);
    cfg.setInt("l2.access_latency", 1);
    sim::StatSet stats;
    sim::EventQueue events;
    mem::MainMemory memory;
    mem::DramChannel dram(cfg, stats, events, memory, "dram");
    protocols::SimpleL2 l2(0, cfg, stats, events, dram, memory,
                           nullptr);
    std::vector<Packet> sent;
    l2.setSend([&](Packet &&p) { sent.push_back(p); });

    Packet wr;
    wr.type = MsgType::BusWr;
    wr.lineAddr = 0x1000;
    wr.wordMask = 1;
    wr.data.setWord(0, 99);
    l2.receiveRequest(std::move(wr), 0);
    Packet rd;
    rd.type = MsgType::BusRd;
    rd.lineAddr = 0x1000;
    l2.receiveRequest(std::move(rd), 0);

    Cycle now = 0;
    for (int i = 0; i < 400; ++i) {
        ++now;
        events.runUntil(now);
        l2.tick(now);
        dram.tick(now);
    }
    ASSERT_EQ(sent.size(), 2u);
    EXPECT_EQ(sent[0].type, MsgType::BusWrAck);
    EXPECT_EQ(sent[1].type, MsgType::BusFill);
    EXPECT_EQ(sent[1].data.word(0), 99u);
    EXPECT_TRUE(l2.quiescent());
}

TEST(SimpleL2, FlushWritesDirtyLinesBack)
{
    sim::Config cfg;
    cfg.setInt("l2.partition_bytes", 1024);
    cfg.setInt("l2.assoc", 2);
    sim::StatSet stats;
    sim::EventQueue events;
    mem::MainMemory memory;
    mem::DramChannel dram(cfg, stats, events, memory, "dram");
    protocols::SimpleL2 l2(0, cfg, stats, events, dram, memory,
                           nullptr);
    l2.setSend([](Packet &&) {});

    Packet wr;
    wr.type = MsgType::BusWr;
    wr.lineAddr = 0x1000;
    wr.wordMask = 1;
    wr.data.setWord(0, 42);
    l2.receiveRequest(std::move(wr), 0);
    Cycle now = 0;
    for (int i = 0; i < 400; ++i) {
        ++now;
        events.runUntil(now);
        l2.tick(now);
        dram.tick(now);
    }
    EXPECT_EQ(memory.readWord(0x1000), 0u) << "still only in L2";
    l2.flushAll(now);
    EXPECT_EQ(memory.readWord(0x1000), 42u);
}

} // namespace
