#include "protocols/builders.hh"

#include <gtest/gtest.h>

#include <stdexcept>

using namespace gtsc;

TEST(Builders, RegistryKnowsAllProtocols)
{
    EXPECT_EQ(protocols::makeProtocol("gtsc")->name(), "gtsc");
    EXPECT_EQ(protocols::makeProtocol("tc")->name(), "tc");
    EXPECT_EQ(protocols::makeProtocol("nol1")->name(), "nol1");
    EXPECT_EQ(protocols::makeProtocol("bl")->name(), "nol1");
    EXPECT_EQ(protocols::makeProtocol("noncoh")->name(), "noncoh");
    EXPECT_THROW(protocols::makeProtocol("mesi"), std::runtime_error);
}

TEST(Builders, NoL1ReportsNoPrivateCache)
{
    EXPECT_FALSE(protocols::makeProtocol("nol1")->usesL1());
    EXPECT_TRUE(protocols::makeProtocol("gtsc")->usesL1());
    EXPECT_TRUE(protocols::makeProtocol("tc")->usesL1());
}
