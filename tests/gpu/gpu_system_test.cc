/**
 * GpuSystem-level behaviors: kernel sequencing and boundary flushes,
 * the watchdog, the cycle bound, and end-of-run write-back.
 */

#include "gpu/gpu_system.hh"

#include <gtest/gtest.h>

#include <stdexcept>

#include "protocols/builders.hh"
#include "workloads/common.hh"

using namespace gtsc;
using gpu::GpuSystem;
using gpu::WarpInstr;

namespace
{

sim::Config
tiny()
{
    sim::Config cfg;
    cfg.setInt("gpu.num_sms", 2);
    cfg.setInt("gpu.warps_per_sm", 2);
    cfg.setInt("gpu.num_partitions", 2);
    return cfg;
}

/** Workload whose kernels each bump one counter word. */
class TwoKernels : public gpu::Workload
{
  public:
    std::string name() const override { return "TWOK"; }
    bool requiresCoherence() const override { return true; }
    unsigned numKernels() const override { return 2; }

    void
    initMemory(mem::MainMemory &memory, unsigned kernel) override
    {
        // Host writes a fresh input for each kernel.
        memory.writeWord(0x1000, 100 + kernel);
    }

    std::unique_ptr<gpu::WarpProgram>
    makeProgram(unsigned kernel, SmId sm, WarpId warp,
                const gpu::GpuParams &) override
    {
        std::vector<WarpInstr> t;
        if (sm == 0 && warp == 0) {
            t.push_back(WarpInstr::loadScalar(0x1000));
            t.push_back(
                WarpInstr::storeScalar(0x2000 + kernel * 128, 7));
            t.push_back(WarpInstr::fence());
        }
        t.push_back(WarpInstr::exit());
        return std::make_unique<gpu::TraceProgram>(std::move(t));
    }

    bool
    verify(const mem::MainMemory &memory) const override
    {
        return memory.readWord(0x2000) == 7 &&
               memory.readWord(0x2080) == 7;
    }
};

/** A warp that never exits (watchdog bait). */
class Forever : public gpu::Workload
{
  public:
    std::string name() const override { return "FOREVER"; }
    bool requiresCoherence() const override { return false; }

    std::unique_ptr<gpu::WarpProgram>
    makeProgram(unsigned, SmId sm, WarpId warp,
                const gpu::GpuParams &) override
    {
        if (sm == 0 && warp == 0)
            return std::make_unique<Stuck>();
        return std::make_unique<gpu::TraceProgram>(
            std::vector<WarpInstr>{WarpInstr::exit()});
    }

  private:
    class Stuck : public gpu::WarpProgram
    {
      public:
        WarpInstr
        next() override
        {
            // An endless stream of compute with zero progress in
            // retired-instruction terms is still progress; use a
            // spin on a flag nobody raises with huge retry budget.
            return WarpInstr::spinUntil(0x9000, 1, 0xffffffff);
        }
    };
};

} // namespace

TEST(GpuSystem, RunsKernelsInSequenceAndWritesBack)
{
    sim::Config cfg = tiny();
    auto builder = protocols::makeProtocol("gtsc");
    TwoKernels wl;
    GpuSystem sys(cfg, *builder, wl);
    Cycle cycles = sys.run();
    EXPECT_GT(cycles, 0u);
    EXPECT_EQ(sys.stats().get("gpu.kernels_run"), 2u);
    EXPECT_TRUE(wl.verify(sys.memory()));
}

TEST(GpuSystem, KernelStartHookSeesHostWrites)
{
    sim::Config cfg = tiny();
    auto builder = protocols::makeProtocol("gtsc");
    TwoKernels wl;
    GpuSystem sys(cfg, *builder, wl);
    std::vector<std::uint32_t> seen;
    sys.setKernelStartHook(
        [&](const mem::MainMemory &memory, unsigned kernel) {
            (void)kernel;
            seen.push_back(memory.readWord(0x1000));
        });
    sys.run();
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0], 100u);
    EXPECT_EQ(seen[1], 101u);
}

TEST(GpuSystem, MaxCyclesBoundIsFatal)
{
    sim::Config cfg = tiny();
    cfg.setInt("gpu.max_cycles", 200); // far too small
    auto builder = protocols::makeProtocol("gtsc");
    workloads::WlParams unused;
    (void)unused;
    TwoKernels wl;
    GpuSystem sys(cfg, *builder, wl);
    EXPECT_THROW(sys.run(), std::runtime_error);
}

TEST(GpuSystem, SpinningForeverHitsTheCycleBound)
{
    // A warp stuck on a never-raised flag keeps making protocol
    // progress (renewals), so it runs until the cycle bound.
    sim::Config cfg = tiny();
    cfg.setInt("gpu.max_cycles", 30000);
    auto builder = protocols::makeProtocol("gtsc");
    Forever wl;
    GpuSystem sys(cfg, *builder, wl);
    EXPECT_THROW(sys.run(), std::runtime_error);
}

TEST(GpuSystem, StatsExposeEffectiveShape)
{
    sim::Config cfg = tiny();
    auto builder = protocols::makeProtocol("tc");
    TwoKernels wl;
    GpuSystem sys(cfg, *builder, wl);
    sys.run();
    EXPECT_EQ(sys.params().numSms, 2u);
    EXPECT_EQ(sys.params().numPartitions, 2u);
    // Cycle accounting covers both kernels.
    EXPECT_EQ(sys.stats().get("gpu.cycles"), sys.cycle());
}
