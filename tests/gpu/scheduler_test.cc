/**
 * Warp-scheduler policy tests: GTO keeps issuing from the same warp,
 * round-robin rotates, oldest-first always prefers warp 0.
 */

#include <gtest/gtest.h>

#include <deque>

#include "gpu/sm.hh"

using namespace gtsc;
using gpu::GpuParams;
using gpu::Sm;
using gpu::StoreValueSource;
using gpu::WarpInstr;
using mem::Access;

namespace
{

/** L1 that accepts everything and records the issuing warp order. */
class OrderL1 : public mem::L1Controller
{
  public:
    bool
    access(const Access &acc, Cycle) override
    {
        order.push_back(acc.warp);
        completions.push_back(acc);
        return true;
    }
    void receiveResponse(mem::Packet &&, Cycle) override {}
    void
    tick(Cycle) override
    {
        // Complete loads next tick so warps become ready again.
        while (!completions.empty()) {
            Access a = completions.front();
            completions.pop_front();
            if (a.isStore)
                storeDone_(a, 0);
            else
                loadDone_(a, mem::AccessResult{});
        }
    }
    void flush(Cycle) override {}
    bool quiescent() const override { return completions.empty(); }

    std::vector<WarpId> order;
    std::deque<Access> completions;
};

std::vector<WarpId>
runWith(const char *policy, unsigned instrs_per_warp = 4)
{
    sim::Config cfg;
    cfg.setInt("gpu.num_sms", 1);
    cfg.setInt("gpu.warps_per_sm", 3);
    cfg.set("gpu.scheduler", policy);
    GpuParams params = GpuParams::fromConfig(cfg);
    sim::StatSet stats;
    OrderL1 l1;
    StoreValueSource values;
    Sm sm(0, params, cfg, stats, l1, values);

    std::vector<std::unique_ptr<gpu::WarpProgram>> programs;
    for (unsigned w = 0; w < 3; ++w) {
        std::vector<WarpInstr> t;
        for (unsigned i = 0; i < instrs_per_warp; ++i) {
            t.push_back(WarpInstr::loadScalar(0x1000 + w * 0x1000 +
                                              i * 128));
        }
        t.push_back(WarpInstr::exit());
        programs.push_back(
            std::make_unique<gpu::TraceProgram>(std::move(t)));
    }
    sm.launchKernel(std::move(programs));
    Cycle now = 0;
    while (!sm.allWarpsDone() && now < 10000) {
        ++now;
        l1.tick(now);
        sm.tick(now);
    }
    return l1.order;
}

} // namespace

TEST(Scheduler, GtoSticksWithTheSameWarp)
{
    auto order = runWith("gto");
    ASSERT_GE(order.size(), 4u);
    // With instant completions, GTO re-issues warp 0 repeatedly
    // until it exits.
    EXPECT_EQ(order[0], 0);
    EXPECT_EQ(order[1], 0);
}

TEST(Scheduler, RoundRobinRotates)
{
    auto order = runWith("rr");
    ASSERT_GE(order.size(), 3u);
    // First three issues come from three different warps.
    EXPECT_NE(order[0], order[1]);
    EXPECT_NE(order[1], order[2]);
    EXPECT_NE(order[0], order[2]);
}

TEST(Scheduler, OldestPrefersWarpZero)
{
    auto order = runWith("oldest");
    ASSERT_GE(order.size(), 2u);
    EXPECT_EQ(order[0], 0);
    EXPECT_EQ(order[1], 0);
}

TEST(Scheduler, AllPoliciesFinishAllWork)
{
    for (const char *policy : {"gto", "rr", "oldest"}) {
        auto order = runWith(policy);
        EXPECT_EQ(order.size(), 12u) << policy;
    }
}

TEST(Scheduler, UnknownPolicyIsFatal)
{
    sim::Config cfg;
    cfg.setInt("gpu.num_sms", 1);
    cfg.setInt("gpu.warps_per_sm", 1);
    cfg.set("gpu.scheduler", "lottery");
    GpuParams params = GpuParams::fromConfig(cfg);
    sim::StatSet stats;
    OrderL1 l1;
    StoreValueSource values;
    EXPECT_THROW(Sm(0, params, cfg, stats, l1, values),
                 std::runtime_error);
}
