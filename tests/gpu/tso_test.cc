/**
 * TSO extension tests: per-warp in-order store draining through the
 * one-deep store buffer, load bypassing of non-aliased stores, and
 * conservative alias stalling.
 */

#include <gtest/gtest.h>

#include <deque>

#include "gpu/sm.hh"

using namespace gtsc;
using gpu::GpuParams;
using gpu::Sm;
using gpu::StoreValueSource;
using gpu::WarpInstr;
using mem::Access;
using mem::AccessResult;

namespace
{

class MockL1 : public mem::L1Controller
{
  public:
    bool
    access(const Access &acc, Cycle) override
    {
        if (acc.isStore)
            pendingStores.push_back(acc);
        else
            pendingLoads.push_back(acc);
        return true;
    }
    void receiveResponse(mem::Packet &&, Cycle) override {}
    void tick(Cycle) override {}
    void flush(Cycle) override {}
    bool
    quiescent() const override
    {
        return pendingLoads.empty() && pendingStores.empty();
    }

    void
    completeLoad()
    {
        Access a = pendingLoads.front();
        pendingLoads.pop_front();
        loadDone_(a, AccessResult{});
    }

    void
    completeStore()
    {
        Access a = pendingStores.front();
        pendingStores.pop_front();
        storeDone_(a, 0);
    }

    std::deque<Access> pendingLoads;
    std::deque<Access> pendingStores;
};

class TsoFixture : public ::testing::Test
{
  protected:
    void
    make(std::vector<WarpInstr> instrs)
    {
        cfg.setInt("gpu.num_sms", 1);
        cfg.setInt("gpu.warps_per_sm", 1);
        cfg.set("gpu.consistency", "tso");
        params = GpuParams::fromConfig(cfg);
        sm = std::make_unique<Sm>(0, params, cfg, stats, l1, values);
        std::vector<std::unique_ptr<gpu::WarpProgram>> programs;
        programs.push_back(std::make_unique<gpu::TraceProgram>(
            std::move(instrs)));
        sm->launchKernel(std::move(programs));
    }

    void
    tick(unsigned n = 1)
    {
        for (unsigned i = 0; i < n; ++i)
            sm->tick(++now);
    }

    sim::Config cfg;
    sim::StatSet stats;
    MockL1 l1;
    StoreValueSource values;
    GpuParams params;
    std::unique_ptr<Sm> sm;
    Cycle now = 0;
};

TEST_F(TsoFixture, StoresDrainInOrderOneAtATime)
{
    make({WarpInstr::storeScalar(0x100, 1),
          WarpInstr::storeScalar(0x180, 2),
          WarpInstr::storeScalar(0x200, 3), WarpInstr::exit()});
    tick(6);
    // The warp retired all three stores without blocking...
    EXPECT_TRUE(sm->allWarpsDone());
    // ...but only the first is at the cache (1-deep store buffer).
    ASSERT_EQ(l1.pendingStores.size(), 1u);
    EXPECT_EQ(l1.pendingStores.front().lineAddr, 0x100u);

    l1.completeStore();
    tick(2);
    ASSERT_EQ(l1.pendingStores.size(), 1u);
    EXPECT_EQ(l1.pendingStores.front().lineAddr, 0x180u);
    l1.completeStore();
    tick(2);
    ASSERT_EQ(l1.pendingStores.size(), 1u);
    EXPECT_EQ(l1.pendingStores.front().lineAddr, 0x200u);
    l1.completeStore();
    EXPECT_TRUE(sm->quiescent());
}

TEST_F(TsoFixture, LoadBypassesNonAliasedStore)
{
    make({WarpInstr::storeScalar(0x100, 1),
          WarpInstr::loadScalar(0x5000), WarpInstr::exit()});
    tick(4);
    // The load issued even though the store ack is pending.
    EXPECT_EQ(l1.pendingLoads.size(), 1u);
    EXPECT_EQ(l1.pendingStores.size(), 1u);
    l1.completeLoad();
    l1.completeStore();
    tick(4);
    EXPECT_TRUE(sm->allWarpsDone());
    EXPECT_TRUE(sm->quiescent());
}

TEST_F(TsoFixture, AliasedLoadWaitsForDrain)
{
    make({WarpInstr::storeScalar(0x100, 1),
          WarpInstr::storeScalar(0x180, 2),
          WarpInstr::loadScalar(0x184), WarpInstr::exit()});
    tick(6);
    // Store to 0x100 submitted; store to 0x180 buffered; the load
    // aliases line 0x180 and must not issue yet.
    EXPECT_EQ(l1.pendingLoads.size(), 0u);
    l1.completeStore(); // 0x100
    tick(3);
    EXPECT_EQ(l1.pendingLoads.size(), 0u) << "0x180 still unacked";
    l1.completeStore(); // 0x180
    tick(3);
    ASSERT_EQ(l1.pendingLoads.size(), 1u)
        << "drained: aliased load proceeds";
    l1.completeLoad();
    tick(3);
    EXPECT_TRUE(sm->allWarpsDone());
}

TEST_F(TsoFixture, FenceWaitsForStoreBuffer)
{
    make({WarpInstr::storeScalar(0x100, 1),
          WarpInstr::storeScalar(0x180, 2), WarpInstr::fence(),
          WarpInstr::exit()});
    tick(6);
    EXPECT_FALSE(sm->allWarpsDone()) << "fence waits for the buffer";
    l1.completeStore();
    tick(3);
    l1.completeStore();
    tick(3);
    EXPECT_TRUE(sm->allWarpsDone());
}

} // namespace
