#include "gpu/coalescer.hh"

#include <gtest/gtest.h>

using namespace gtsc;
using gpu::Coalescer;
using gpu::StoreValueSource;
using gpu::WarpInstr;

namespace
{

struct CoalescerFixture : public ::testing::Test
{
    StoreValueSource values;
    Coalescer coalescer{values};
    std::vector<mem::Access> buf;

    std::vector<mem::Access> &
    coalesce(const WarpInstr &instr, unsigned warp_size, SmId sm,
             WarpId warp)
    {
        coalescer.coalesce(instr, warp_size, sm, warp, buf);
        return buf;
    }
};

} // namespace

TEST_F(CoalescerFixture, ContiguousLoadCoalescesToOneLine)
{
    auto instr = WarpInstr::loadStrided(0x1000, 32, 4);
    auto &accesses = coalesce(instr, 32, 0, 0);
    ASSERT_EQ(accesses.size(), 1u);
    EXPECT_EQ(accesses[0].lineAddr, 0x1000u);
    EXPECT_EQ(accesses[0].wordMask, 0xffffffffu);
    EXPECT_FALSE(accesses[0].isStore);
}

TEST_F(CoalescerFixture, StridedLoadSplitsAcrossLines)
{
    // Stride 8B: 32 lanes span 256B = 2 lines, 16 words each.
    auto instr = WarpInstr::loadStrided(0x1000, 32, 8);
    auto &accesses = coalesce(instr, 32, 0, 0);
    ASSERT_EQ(accesses.size(), 2u);
    EXPECT_EQ(accesses[0].lineAddr, 0x1000u);
    EXPECT_EQ(accesses[1].lineAddr, 0x1080u);
    EXPECT_EQ(accesses[0].wordMask, 0x55555555u);
}

TEST_F(CoalescerFixture, InactiveLanesIgnored)
{
    auto instr = WarpInstr::loadStrided(0x1000, 32, 4, 0x1);
    auto &accesses = coalesce(instr, 32, 0, 0);
    ASSERT_EQ(accesses.size(), 1u);
    EXPECT_EQ(accesses[0].wordMask, 0x1u);
}

TEST_F(CoalescerFixture, ScatteredAccessesOnePerLine)
{
    std::vector<Addr> lanes(4);
    for (unsigned l = 0; l < 4; ++l)
        lanes[l] = 0x10000 + l * 0x1000; // all different lines
    auto instr = WarpInstr::loadGather(std::move(lanes), 0xf);
    auto &accesses = coalesce(instr, 32, 0, 0);
    EXPECT_EQ(accesses.size(), 4u);
}

TEST_F(CoalescerFixture, StoreValuesUniquePerWord)
{
    auto instr = WarpInstr::storeStrided(0x2000, 32, 4);
    auto &accesses = coalesce(instr, 32, 1, 2);
    ASSERT_EQ(accesses.size(), 1u);
    EXPECT_TRUE(accesses[0].isStore);
    std::set<std::uint32_t> seen;
    for (unsigned w = 0; w < mem::kWordsPerLine; ++w)
        seen.insert(accesses[0].storeData.word(w));
    EXPECT_EQ(seen.size(), 32u); // all distinct
}

TEST_F(CoalescerFixture, ExplicitStoreValuePassedThrough)
{
    auto instr = WarpInstr::storeScalar(0x3000, 77);
    auto &accesses = coalesce(instr, 32, 0, 0);
    ASSERT_EQ(accesses.size(), 1u);
    EXPECT_EQ(accesses[0].wordMask, 0x1u);
    EXPECT_EQ(accesses[0].storeData.word(0), 77u);
}

TEST_F(CoalescerFixture, SmWarpStamped)
{
    auto instr = WarpInstr::loadStrided(0x1000, 32);
    auto &accesses = coalesce(instr, 32, 5, 9);
    ASSERT_EQ(accesses.size(), 1u);
    EXPECT_EQ(accesses[0].sm, 5);
    EXPECT_EQ(accesses[0].warp, 9);
}
