#include "gpu/coalescer.hh"

#include <random>

#include <gtest/gtest.h>

using namespace gtsc;
using gpu::CoalescePlan;
using gpu::Coalescer;
using gpu::StoreValueSource;
using gpu::WarpInstr;

namespace
{

struct CoalescerFixture : public ::testing::Test
{
    StoreValueSource values;
    Coalescer coalescer{values};
    std::vector<mem::Access> buf;

    std::vector<mem::Access> &
    coalesce(const WarpInstr &instr, unsigned warp_size, SmId sm,
             WarpId warp)
    {
        coalescer.coalesce(instr, warp_size, sm, warp, buf);
        return buf;
    }
};

} // namespace

TEST_F(CoalescerFixture, ContiguousLoadCoalescesToOneLine)
{
    auto instr = WarpInstr::loadStrided(0x1000, 32, 4);
    auto &accesses = coalesce(instr, 32, 0, 0);
    ASSERT_EQ(accesses.size(), 1u);
    EXPECT_EQ(accesses[0].lineAddr, 0x1000u);
    EXPECT_EQ(accesses[0].wordMask, 0xffffffffu);
    EXPECT_FALSE(accesses[0].isStore);
}

TEST_F(CoalescerFixture, StridedLoadSplitsAcrossLines)
{
    // Stride 8B: 32 lanes span 256B = 2 lines, 16 words each.
    auto instr = WarpInstr::loadStrided(0x1000, 32, 8);
    auto &accesses = coalesce(instr, 32, 0, 0);
    ASSERT_EQ(accesses.size(), 2u);
    EXPECT_EQ(accesses[0].lineAddr, 0x1000u);
    EXPECT_EQ(accesses[1].lineAddr, 0x1080u);
    EXPECT_EQ(accesses[0].wordMask, 0x55555555u);
}

TEST_F(CoalescerFixture, InactiveLanesIgnored)
{
    auto instr = WarpInstr::loadStrided(0x1000, 32, 4, 0x1);
    auto &accesses = coalesce(instr, 32, 0, 0);
    ASSERT_EQ(accesses.size(), 1u);
    EXPECT_EQ(accesses[0].wordMask, 0x1u);
}

TEST_F(CoalescerFixture, ScatteredAccessesOnePerLine)
{
    std::vector<Addr> lanes(4);
    for (unsigned l = 0; l < 4; ++l)
        lanes[l] = 0x10000 + l * 0x1000; // all different lines
    auto instr = WarpInstr::loadGather(std::move(lanes), 0xf);
    auto &accesses = coalesce(instr, 32, 0, 0);
    EXPECT_EQ(accesses.size(), 4u);
}

TEST_F(CoalescerFixture, StoreValuesUniquePerWord)
{
    auto instr = WarpInstr::storeStrided(0x2000, 32, 4);
    auto &accesses = coalesce(instr, 32, 1, 2);
    ASSERT_EQ(accesses.size(), 1u);
    EXPECT_TRUE(accesses[0].isStore);
    std::set<std::uint32_t> seen;
    for (unsigned w = 0; w < mem::kWordsPerLine; ++w)
        seen.insert(accesses[0].storeData.word(w));
    EXPECT_EQ(seen.size(), 32u); // all distinct
}

TEST_F(CoalescerFixture, ExplicitStoreValuePassedThrough)
{
    auto instr = WarpInstr::storeScalar(0x3000, 77);
    auto &accesses = coalesce(instr, 32, 0, 0);
    ASSERT_EQ(accesses.size(), 1u);
    EXPECT_EQ(accesses[0].wordMask, 0x1u);
    EXPECT_EQ(accesses[0].storeData.word(0), 77u);
}

TEST_F(CoalescerFixture, SmWarpStamped)
{
    auto instr = WarpInstr::loadStrided(0x1000, 32);
    auto &accesses = coalesce(instr, 32, 5, 9);
    ASSERT_EQ(accesses.size(), 1u);
    EXPECT_EQ(accesses[0].sm, 5);
    EXPECT_EQ(accesses[0].warp, 9);
}

TEST_F(CoalescerFixture, BroadcastLoadHitsOneWord)
{
    // Stride 0: all 32 lanes read the same (unaligned-in-line) word.
    auto instr = WarpInstr::loadStrided(0x1234, 32, 0);
    EXPECT_EQ(Coalescer::plan(instr, 32).kind,
              CoalescePlan::Kind::Broadcast);
    auto &accesses = coalesce(instr, 32, 0, 0);
    ASSERT_EQ(accesses.size(), 1u);
    EXPECT_EQ(accesses[0].lineAddr, 0x1200u);
    EXPECT_EQ(accesses[0].wordMask, 1u << ((0x1234u % 128u) / 4u));
}

TEST_F(CoalescerFixture, BroadcastStoreKeepsLastLaneValue)
{
    // All active lanes write the same word; the per-lane merge keeps
    // the last lane's drawn value, and the fast path must draw the
    // same count so later instructions see an identical source state.
    StoreValueSource vals_fast(100, 1);
    StoreValueSource vals_slow(100, 1);
    Coalescer fast(vals_fast);
    Coalescer slow(vals_slow);
    auto instr = WarpInstr::storeStrided(0x2000, 32, 0, 0x0000ffffu);

    std::vector<mem::Access> out_fast;
    fast.coalesce(instr, Coalescer::plan(instr, 32), 32, 0, 0, out_fast);
    std::vector<mem::Access> out_slow;
    slow.coalesce(instr, CoalescePlan{}, 32, 0, 0, out_slow);

    ASSERT_EQ(out_fast.size(), 1u);
    EXPECT_EQ(out_fast[0].storeData.word(0), 115u); // lane 15's draw
    ASSERT_EQ(out_slow.size(), 1u);
    EXPECT_EQ(out_slow[0].storeData.word(0), 115u);
    // Both sources advanced by popcount(activeMask) = 16 draws.
    EXPECT_EQ(vals_fast.next(), vals_slow.next());
}

TEST_F(CoalescerFixture, NegativeStrideTakesSlowPathDescending)
{
    // A "negative" stride is a huge unsigned stride that wraps:
    // lane l at base - 4*l. Must classify Slow and still coalesce
    // into the two descending lines the lanes actually touch.
    auto instr =
        WarpInstr::loadStrided(0x1080, 32, static_cast<std::uint64_t>(-4));
    EXPECT_EQ(Coalescer::plan(instr, 32).kind, CoalescePlan::Kind::Slow);
    auto &accesses = coalesce(instr, 32, 0, 0);
    ASSERT_EQ(accesses.size(), 2u);
    EXPECT_EQ(accesses[0].lineAddr, 0x1080u); // lane 0 first
    EXPECT_EQ(accesses[0].wordMask, 0x1u);
    EXPECT_EQ(accesses[1].lineAddr, 0x1000u); // lanes 1..31, words 1..31
    EXPECT_EQ(accesses[1].wordMask, 0xfffffffeu);
}

TEST_F(CoalescerFixture, UnalignedStridedStraddlesTwoLines)
{
    // Base at word 4 of its line: lanes 0..27 fill words 4..31,
    // lanes 28..31 wrap into words 0..3 of the next line.
    auto instr = WarpInstr::loadStrided(0x1010, 32, 4);
    auto plan = Coalescer::plan(instr, 32);
    EXPECT_EQ(plan.kind, CoalescePlan::Kind::Strided);
    EXPECT_EQ(plan.segs, 2u);
    auto &accesses = coalesce(instr, 32, 0, 0);
    ASSERT_EQ(accesses.size(), 2u);
    EXPECT_EQ(accesses[0].lineAddr, 0x1000u);
    EXPECT_EQ(accesses[0].wordMask, 0xfffffff0u);
    EXPECT_EQ(accesses[1].lineAddr, 0x1080u);
    EXPECT_EQ(accesses[1].wordMask, 0x0000000fu);
}

TEST_F(CoalescerFixture, FullScatterOneAccessPerLane)
{
    // 32 lanes, 32 distinct lines — worst case fan-out.
    std::vector<Addr> lanes(32);
    for (unsigned l = 0; l < 32; ++l)
        lanes[l] = 0x40000 + static_cast<Addr>(l) * 0x1000;
    auto instr = WarpInstr::loadGather(std::move(lanes), 0xffffffffu);
    EXPECT_EQ(Coalescer::plan(instr, 32).kind, CoalescePlan::Kind::Slow);
    auto &accesses = coalesce(instr, 32, 0, 0);
    ASSERT_EQ(accesses.size(), 32u);
    for (unsigned l = 0; l < 32; ++l) {
        EXPECT_EQ(accesses[l].lineAddr,
                  0x40000u + static_cast<Addr>(l) * 0x1000);
        EXPECT_EQ(accesses[l].wordMask, 0x1u);
    }
}

namespace
{

/** Fast path (real plan) vs forced-slow on the same instruction:
 *  identical access lists and identical store-value draw state. */
void
expectFastSlowEquivalent(const WarpInstr &instr, unsigned warp_size)
{
    StoreValueSource vals_fast(7, 3);
    StoreValueSource vals_slow(7, 3);
    Coalescer fast(vals_fast);
    Coalescer slow(vals_slow);

    std::vector<mem::Access> out_fast;
    fast.coalesce(instr, Coalescer::plan(instr, warp_size), warp_size, 2,
                  5, out_fast);
    std::vector<mem::Access> out_slow;
    slow.coalesce(instr, CoalescePlan{}, warp_size, 2, 5, out_slow);

    ASSERT_EQ(out_fast.size(), out_slow.size());
    for (std::size_t i = 0; i < out_fast.size(); ++i) {
        const auto &a = out_fast[i];
        const auto &b = out_slow[i];
        EXPECT_EQ(a.lineAddr, b.lineAddr) << "access " << i;
        EXPECT_EQ(a.wordMask, b.wordMask) << "access " << i;
        EXPECT_EQ(a.isStore, b.isStore) << "access " << i;
        EXPECT_EQ(a.sm, b.sm);
        EXPECT_EQ(a.warp, b.warp);
        if (a.isStore) {
            for (unsigned w = 0; w < mem::kWordsPerLine; ++w)
                EXPECT_EQ(a.storeData.word(w), b.storeData.word(w))
                    << "access " << i << " word " << w;
        }
    }
    EXPECT_EQ(vals_fast.next(), vals_slow.next());
}

} // namespace

TEST_F(CoalescerFixture, RandomizedFastSlowEquivalence)
{
    // Randomized sweep over the planner's whole input space: base
    // alignment, stride (including the fast-path 0 and 4), active
    // mask shape, warp size, load vs store.
    std::mt19937 rng(0xc0a1e5ce);
    std::uniform_int_distribution<unsigned> word_off(0, 63);
    std::uniform_int_distribution<unsigned> stride_pick(0, 5);
    std::uniform_int_distribution<std::uint32_t> mask_bits;
    std::uniform_int_distribution<unsigned> mask_kind(0, 2);
    std::uniform_int_distribution<unsigned> ws_pick(0, 2);
    std::uniform_int_distribution<unsigned> coin(0, 1);

    static const std::uint64_t kStrides[] = {0, 4, 8, 12, 64,
                                             static_cast<std::uint64_t>(-4)};
    static const unsigned kWarpSizes[] = {32, 16, 8};

    for (int iter = 0; iter < 500; ++iter) {
        unsigned ws = kWarpSizes[ws_pick(rng)];
        Addr base = 0x8000 + static_cast<Addr>(word_off(rng)) * 4;
        std::uint64_t stride = kStrides[stride_pick(rng)];
        std::uint32_t mask;
        switch (mask_kind(rng)) {
        case 0:
            mask = 0xffffffffu; // full (fast-path eligible)
            break;
        case 1:
            mask = mask_bits(rng) | 1u; // random, lane 0 active
            break;
        default:
            mask = mask_bits(rng) & mask_bits(rng); // sparse
            break;
        }
        if ((mask & WarpInstr::laneMask(ws)) == 0)
            mask = 1u;
        WarpInstr instr =
            coin(rng) ? WarpInstr::storeStrided(base, ws, stride, mask)
                      : WarpInstr::loadStrided(base, ws, stride, mask);
        expectFastSlowEquivalent(instr, ws);
    }
}
