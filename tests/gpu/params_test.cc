#include "gpu/params.hh"

#include <gtest/gtest.h>

#include <stdexcept>

using namespace gtsc;
using gpu::Consistency;
using gpu::GpuParams;

TEST(GpuParams, PaperDefaults)
{
    sim::Config cfg;
    GpuParams p = GpuParams::fromConfig(cfg);
    EXPECT_EQ(p.numSms, 16u);
    EXPECT_EQ(p.warpsPerSm, 48u);
    EXPECT_EQ(p.warpSize, 32u);
    EXPECT_EQ(p.numPartitions, 8u);
    EXPECT_EQ(p.consistency, Consistency::RC);
    EXPECT_EQ(p.totalWarps(), 16u * 48u);
}

TEST(GpuParams, ConsistencyParsing)
{
    EXPECT_EQ(gpu::consistencyFromString("sc"), Consistency::SC);
    EXPECT_EQ(gpu::consistencyFromString("SC"), Consistency::SC);
    EXPECT_EQ(gpu::consistencyFromString("rc"), Consistency::RC);
    EXPECT_EQ(gpu::consistencyFromString("tso"), Consistency::TSO);
    EXPECT_EQ(gpu::consistencyFromString("TSO"), Consistency::TSO);
    EXPECT_THROW(gpu::consistencyFromString("pso"), std::runtime_error);
    EXPECT_STREQ(gpu::consistencyName(Consistency::SC), "SC");
    EXPECT_STREQ(gpu::consistencyName(Consistency::TSO), "TSO");
    EXPECT_STREQ(gpu::consistencyName(Consistency::RC), "RC");
}

TEST(GpuParams, RejectsBadDimensions)
{
    sim::Config cfg;
    cfg.setInt("gpu.warp_size", 64);
    EXPECT_THROW(GpuParams::fromConfig(cfg), std::runtime_error);
    sim::Config cfg2;
    cfg2.setInt("gpu.num_sms", 0);
    EXPECT_THROW(GpuParams::fromConfig(cfg2), std::runtime_error);
}
