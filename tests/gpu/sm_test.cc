/**
 * SM timing-model tests against a scripted mock L1: SC blocks every
 * memory instruction until globally performed; RC lets stores
 * fire-and-forget and makes fences wait for acks and the GWCT;
 * spin-loads retry with backoff; stall cycles are classified.
 */

#include "gpu/sm.hh"

#include <gtest/gtest.h>

#include <deque>

using namespace gtsc;
using gpu::Consistency;
using gpu::GpuParams;
using gpu::Sm;
using gpu::StoreValueSource;
using gpu::WarpInstr;
using mem::Access;
using mem::AccessResult;

namespace
{

/** Mock L1: records accesses; completion is driven by the test. */
class MockL1 : public mem::L1Controller
{
  public:
    bool
    access(const Access &acc, Cycle now) override
    {
        (void)now;
        if (rejectAll)
            return false;
        if (acc.isStore)
            pendingStores.push_back(acc);
        else
            pendingLoads.push_back(acc);
        return true;
    }

    void receiveResponse(mem::Packet &&, Cycle) override {}
    void tick(Cycle) override {}
    void flush(Cycle) override {}
    bool
    quiescent() const override
    {
        return pendingLoads.empty() && pendingStores.empty();
    }

    void
    completeLoad(std::uint32_t word0 = 0)
    {
        Access a = pendingLoads.front();
        pendingLoads.pop_front();
        AccessResult r;
        r.data.setWord(mem::wordInLine(0), word0);
        // word index 0 covers loadScalar at line offset 0
        r.data.setWord(0, word0);
        loadDone_(a, r);
    }

    void
    completeStore(Cycle gwct = 0)
    {
        Access a = pendingStores.front();
        pendingStores.pop_front();
        storeDone_(a, gwct);
    }

    std::deque<Access> pendingLoads;
    std::deque<Access> pendingStores;
    bool rejectAll = false;
};

class SmFixture : public ::testing::Test
{
  protected:
    void
    make(Consistency cons, std::vector<WarpInstr> warp0_instrs,
         unsigned warps = 2)
    {
        cfg.setInt("gpu.num_sms", 1);
        cfg.setInt("gpu.warps_per_sm", static_cast<int>(warps));
        cfg.set("gpu.consistency",
                cons == Consistency::SC ? "sc" : "rc");
        params = GpuParams::fromConfig(cfg);
        sm = std::make_unique<Sm>(0, params, cfg, stats, l1, values);

        std::vector<std::unique_ptr<gpu::WarpProgram>> programs;
        programs.push_back(std::make_unique<gpu::TraceProgram>(
            std::move(warp0_instrs)));
        for (unsigned w = 1; w < warps; ++w) {
            programs.push_back(std::make_unique<gpu::TraceProgram>(
                std::vector<WarpInstr>{WarpInstr::exit()}));
        }
        sm->launchKernel(std::move(programs));
    }

    void
    tick(unsigned n = 1)
    {
        for (unsigned i = 0; i < n; ++i)
            sm->tick(++now);
    }

    /** Read a counter, batching in the SM's windowed block first
     *  (the harness flushes at sample/kernel boundaries; here the
     *  test is the harness). */
    std::uint64_t
    statsGet(const std::string &name)
    {
        sm->flushStatWindow();
        return stats.get(name);
    }

    sim::Config cfg;
    sim::StatSet stats;
    MockL1 l1;
    StoreValueSource values;
    GpuParams params;
    std::unique_ptr<Sm> sm;
    Cycle now = 0;
};

TEST_F(SmFixture, LoadBlocksWarpUntilData)
{
    make(Consistency::RC,
         {WarpInstr::loadScalar(0x100), WarpInstr::compute(1),
          WarpInstr::exit()});
    tick(3);
    ASSERT_EQ(l1.pendingLoads.size(), 1u);
    EXPECT_FALSE(sm->allWarpsDone());
    std::uint64_t retired_before = sm->instructionsRetired();
    tick(5);
    EXPECT_EQ(sm->instructionsRetired(), retired_before)
        << "warp blocked on the load";
    l1.completeLoad();
    tick(5);
    EXPECT_TRUE(sm->allWarpsDone());
}

TEST_F(SmFixture, RcStoreDoesNotBlockWarp)
{
    make(Consistency::RC,
         {WarpInstr::storeScalar(0x100, 1),
          WarpInstr::storeScalar(0x180, 2), WarpInstr::exit()});
    tick(5);
    EXPECT_EQ(l1.pendingStores.size(), 2u)
        << "both stores issued without waiting for acks";
    EXPECT_TRUE(sm->allWarpsDone());
    EXPECT_FALSE(sm->quiescent()) << "acks still outstanding";
    l1.completeStore();
    l1.completeStore();
    EXPECT_TRUE(sm->quiescent());
}

TEST_F(SmFixture, ScStoreBlocksUntilAck)
{
    make(Consistency::SC,
         {WarpInstr::storeScalar(0x100, 1),
          WarpInstr::storeScalar(0x180, 2), WarpInstr::exit()});
    tick(5);
    EXPECT_EQ(l1.pendingStores.size(), 1u)
        << "SC: one outstanding memory request per warp";
    l1.completeStore();
    tick(5);
    EXPECT_EQ(l1.pendingStores.size(), 1u);
    l1.completeStore();
    tick(5);
    EXPECT_TRUE(sm->allWarpsDone());
}

TEST_F(SmFixture, RcFenceWaitsForStoreAcks)
{
    make(Consistency::RC,
         {WarpInstr::storeScalar(0x100, 1), WarpInstr::fence(),
          WarpInstr::compute(1), WarpInstr::exit()});
    tick(5);
    std::uint64_t before = sm->instructionsRetired();
    tick(10);
    EXPECT_EQ(sm->instructionsRetired(), before)
        << "fence blocked on the outstanding store";
    l1.completeStore();
    tick(5);
    EXPECT_TRUE(sm->allWarpsDone());
    EXPECT_GT(statsGet("sm.fence_stall_warp_cycles"), 0u);
}

TEST_F(SmFixture, FenceWaitsForGwct)
{
    // TC-Weak: the ack's GWCT pushes the fence release into the
    // future even though the ack already arrived.
    make(Consistency::RC,
         {WarpInstr::storeScalar(0x100, 1), WarpInstr::fence(),
          WarpInstr::exit()});
    tick(3);
    l1.completeStore(/*gwct=*/60);
    tick(10); // now ~13 < 60
    EXPECT_FALSE(sm->allWarpsDone()) << "GWCT not reached";
    tick(60);
    EXPECT_TRUE(sm->allWarpsDone());
}

TEST_F(SmFixture, StructuralRejectRetries)
{
    make(Consistency::RC,
         {WarpInstr::loadScalar(0x100), WarpInstr::exit()});
    l1.rejectAll = true;
    tick(5);
    EXPECT_TRUE(l1.pendingLoads.empty());
    l1.rejectAll = false;
    tick(3);
    EXPECT_EQ(l1.pendingLoads.size(), 1u) << "access retried";
    l1.completeLoad();
    tick(3);
    EXPECT_TRUE(sm->allWarpsDone());
}

TEST_F(SmFixture, SpinLoadRetriesUntilValue)
{
    make(Consistency::RC,
         {WarpInstr::spinUntil(0x100, 5, 100), WarpInstr::exit()});
    tick(3);
    ASSERT_EQ(l1.pendingLoads.size(), 1u);
    l1.completeLoad(0); // not yet
    tick(30);           // backoff elapses, retry issued
    ASSERT_EQ(l1.pendingLoads.size(), 1u) << "spin retried";
    EXPECT_GT(statsGet("sm.spin_retries"), 0u);
    l1.completeLoad(5); // satisfied
    tick(5);
    EXPECT_TRUE(sm->allWarpsDone());
    EXPECT_EQ(statsGet("sm.spin_giveups"), 0u);
}

TEST_F(SmFixture, SpinLoadGivesUpAfterMaxIters)
{
    make(Consistency::RC,
         {WarpInstr::spinUntil(0x100, 5, 3), WarpInstr::exit()});
    for (int i = 0; i < 3; ++i) {
        tick(30);
        if (!l1.pendingLoads.empty())
            l1.completeLoad(0);
    }
    tick(30);
    EXPECT_TRUE(sm->allWarpsDone());
    EXPECT_EQ(statsGet("sm.spin_giveups"), 1u);
}

TEST_F(SmFixture, ObserveDeliversLoadedValue)
{
    // A program that stores what it loaded (litmus recording).
    class Recorder : public gpu::WarpProgram
    {
      public:
        WarpInstr
        next() override
        {
            switch (step_++) {
              case 0:
                return WarpInstr::loadScalar(0x100);
              case 1:
                return WarpInstr::storeScalar(0x200, observed_);
              default:
                return WarpInstr::exit();
            }
        }
        void observe(std::uint32_t v) override { observed_ = v; }

      private:
        unsigned step_ = 0;
        std::uint32_t observed_ = 0;
    };

    make(Consistency::RC, {WarpInstr::exit()});
    std::vector<std::unique_ptr<gpu::WarpProgram>> programs;
    programs.push_back(std::make_unique<Recorder>());
    programs.push_back(std::make_unique<gpu::TraceProgram>(
        std::vector<WarpInstr>{WarpInstr::exit()}));
    sm->launchKernel(std::move(programs));
    tick(3);
    l1.completeLoad(1234);
    tick(3);
    ASSERT_EQ(l1.pendingStores.size(), 1u);
    EXPECT_EQ(l1.pendingStores.front().storeData.word(0), 1234u);
}

TEST_F(SmFixture, StallClassification)
{
    make(Consistency::RC,
         {WarpInstr::loadScalar(0x100), WarpInstr::compute(20),
          WarpInstr::exit()});
    tick(1); // issue the load -> active
    EXPECT_EQ(statsGet("sm.active_cycles"), 1u);
    tick(10); // blocked on memory, nothing else to run
    EXPECT_GE(statsGet("sm.mem_stall_cycles"), 9u);
    l1.completeLoad();
    tick(2); // compute issues
    std::uint64_t mem_stalls = statsGet("sm.mem_stall_cycles");
    tick(10); // waiting on compute: compute stall, not memory
    EXPECT_EQ(statsGet("sm.mem_stall_cycles"), mem_stalls);
    EXPECT_GT(statsGet("sm.compute_stall_cycles"), 0u);
    tick(20);
    EXPECT_TRUE(sm->allWarpsDone());
    EXPECT_GT(statsGet("sm.idle_cycles"), 0u);
}

TEST_F(SmFixture, MultiLineLoadWaitsForAllParts)
{
    // Stride 8 over 32 lanes spans two lines -> two accesses.
    make(Consistency::RC,
         {WarpInstr::loadStrided(0x1000, 32, 8), WarpInstr::exit()});
    tick(3);
    ASSERT_EQ(l1.pendingLoads.size(), 2u);
    l1.completeLoad();
    tick(3);
    EXPECT_FALSE(sm->allWarpsDone()) << "one part still outstanding";
    l1.completeLoad();
    tick(3);
    EXPECT_TRUE(sm->allWarpsDone());
}

} // namespace

TEST_F(SmFixture, HorizonReadyWarpIsNextCycle)
{
    make(Consistency::RC, {WarpInstr::compute(5), WarpInstr::exit()}, 1);
    EXPECT_EQ(sm->nextWorkCycle(now), now + 1);
}

TEST_F(SmFixture, HorizonWaitComputeWakesAtReadyAtExactly)
{
    make(Consistency::RC, {WarpInstr::compute(10), WarpInstr::exit()},
         1);
    tick(); // issue at cycle 1: readyAt = 11, warp -> WaitCompute
    Cycle h = sm->nextWorkCycle(now);
    EXPECT_EQ(h, 11u);
    // Ticking strictly before the horizon neither issues nor
    // retires anything.
    std::uint64_t instrs = statsGet("sm.instructions");
    while (now + 1 < h) {
        tick();
        EXPECT_EQ(statsGet("sm.instructions"), instrs);
        EXPECT_EQ(sm->nextWorkCycle(now), h);
    }
    tick(2); // wake at 11, exit at 12
    EXPECT_TRUE(sm->allWarpsDone());
}

TEST_F(SmFixture, HorizonMemBlockedWarpIsEventDriven)
{
    make(Consistency::RC, {WarpInstr::loadScalar(0x100),
                           WarpInstr::exit()},
         1);
    tick(); // load accepted by the L1; warp blocks on the response
    ASSERT_EQ(l1.pendingLoads.size(), 1u);
    // Only the L1 completion callback can wake it.
    EXPECT_EQ(sm->nextWorkCycle(now), kCycleNever);
    l1.completeLoad();
    EXPECT_EQ(sm->nextWorkCycle(now), now + 1);
}

TEST_F(SmFixture, HorizonStructuralRejectRetriesNextCycle)
{
    make(Consistency::RC, {WarpInstr::loadScalar(0x100),
                           WarpInstr::exit()},
         1);
    l1.rejectAll = true;
    tick(); // submit rejected; access stays in toSubmit
    EXPECT_EQ(sm->nextWorkCycle(now), now + 1);
}

TEST_F(SmFixture, FastForwardStatsMatchesPerCycleClassification)
{
    make(Consistency::RC, {WarpInstr::compute(50), WarpInstr::exit()},
         1);
    tick(); // warp -> WaitCompute until cycle 51
    std::uint64_t before = statsGet("sm.compute_stall_cycles");
    std::uint64_t idle_before = statsGet("sm.idle_cycles");
    sm->fastForwardStats(7);
    EXPECT_EQ(statsGet("sm.compute_stall_cycles"), before + 7);
    EXPECT_EQ(statsGet("sm.idle_cycles"), idle_before);
}
