#include "mem/dram.hh"

#include <gtest/gtest.h>

using namespace gtsc;

namespace
{

struct DramFixture : public ::testing::Test
{
    sim::Config cfg;
    sim::StatSet stats;
    sim::EventQueue events;
    mem::MainMemory memory;

    std::unique_ptr<mem::DramChannel>
    make()
    {
        return std::make_unique<mem::DramChannel>(cfg, stats, events,
                                                  memory, "dram");
    }

    /** Run the channel until idle; returns the finishing cycle. */
    Cycle
    drain(mem::DramChannel &ch, Cycle start = 0, Cycle limit = 100000)
    {
        Cycle c = start;
        while (!ch.idle() && c < limit) {
            ++c;
            events.runUntil(c);
            ch.tick(c);
        }
        // Let the last completion fire.
        events.runUntil(c + 1000);
        return c;
    }
};

} // namespace

TEST_F(DramFixture, ReadReturnsBackingData)
{
    memory.writeWord(0x80, 1234);
    auto ch = make();
    mem::LineData got;
    bool done = false;
    ch->pushRead(0x80, [&](const mem::LineData &d) {
        got = d;
        done = true;
    });
    drain(*ch);
    ASSERT_TRUE(done);
    EXPECT_EQ(got.word(0), 1234u);
}

TEST_F(DramFixture, ReadLatencyAtLeastRowMiss)
{
    auto ch = make();
    Cycle done_at = 0;
    ch->pushRead(0x0, [&](const mem::LineData &) {
        done_at = events.now();
    });
    ch->tick(1);
    events.runUntil(5000);
    // First access is a row miss: t_row_miss(100) + burst(8).
    EXPECT_GE(done_at, 100u);
}

TEST_F(DramFixture, RowHitFasterThanRowMiss)
{
    auto ch = make();
    Cycle t1 = 0;
    Cycle t2 = 0;
    ch->pushRead(0x0, [&](const mem::LineData &) { t1 = events.now(); });
    // Same row (within row_bytes = 2048).
    ch->pushRead(0x80, [&](const mem::LineData &) { t2 = events.now(); });
    drain(*ch, 0);
    ASSERT_GT(t1, 0u);
    ASSERT_GT(t2, 0u);
    // The row hit was issued one burst later yet completes earlier:
    // its access latency is t_row_hit instead of t_row_miss.
    EXPECT_LT(t2, t1);
    EXPECT_EQ(stats.get("dram.row_misses"), 1u);
    EXPECT_EQ(stats.get("dram.row_hits"), 1u);
}

TEST_F(DramFixture, WriteThenReadSameLineOrdered)
{
    auto ch = make();
    mem::LineData d;
    d.setWord(3, 77);
    ch->pushWrite(0x100, d, 1u << 3);
    std::uint32_t got = 0;
    ch->pushRead(0x100, [&](const mem::LineData &line) {
        got = line.word(3);
    });
    drain(*ch);
    EXPECT_EQ(got, 77u);
    EXPECT_EQ(stats.get("dram.writes"), 1u);
    EXPECT_EQ(stats.get("dram.reads"), 1u);
}

TEST_F(DramFixture, MaskedWritePreservesOtherWords)
{
    memory.writeWord(0x200, 5);
    memory.writeWord(0x204, 6);
    auto ch = make();
    mem::LineData d;
    d.setWord(1, 99);
    ch->pushWrite(0x200, d, 1u << 1);
    drain(*ch);
    EXPECT_EQ(memory.readWord(0x200), 5u);
    EXPECT_EQ(memory.readWord(0x204), 99u);
}

TEST_F(DramFixture, BandwidthSerializesBursts)
{
    auto ch = make();
    int done = 0;
    for (int i = 0; i < 10; ++i) {
        ch->pushRead(static_cast<Addr>(i) * 0x1000,
                     [&](const mem::LineData &) { ++done; });
    }
    Cycle end = drain(*ch);
    EXPECT_EQ(done, 10);
    // 10 bursts of 8 cycles each must occupy at least 80 bus cycles.
    EXPECT_GE(end, 80u);
}

TEST_F(DramFixture, FrFcfsPrefersRowHits)
{
    cfg.set("dram.scheduler", "frfcfs");
    auto ch = make();
    std::vector<int> order;
    // Row A (0x0000-0x07ff), row B (0x0800+). Open row A first,
    // then queue B, A, B, A: FR-FCFS should batch the row hits.
    ch->pushRead(0x000, [&](const mem::LineData &) { order.push_back(0); });
    ch->pushRead(0x800, [&](const mem::LineData &) { order.push_back(1); });
    ch->pushRead(0x080, [&](const mem::LineData &) { order.push_back(2); });
    drain(*ch);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_GT(stats.get("dram.frfcfs_reorders"), 0u);
    // The second row-A access (id 2) was promoted past the row-B
    // request and, being a row hit, even completes first.
    EXPECT_EQ(order[0], 2);
    EXPECT_EQ(order[2], 1);
}

TEST_F(DramFixture, FrFcfsNeverReordersSameLine)
{
    cfg.set("dram.scheduler", "frfcfs");
    auto ch = make();
    // Open row A, then queue: write(line L in row B), read(L).
    // Even though something else could be a row hit, the read of L
    // must stay behind the write of L.
    ch->pushRead(0x000, [](const mem::LineData &) {});
    mem::LineData d;
    d.setWord(0, 123);
    ch->pushWrite(0x800, d, 0x1);
    std::uint32_t got = 0;
    ch->pushRead(0x800, [&](const mem::LineData &line) {
        got = line.word(0);
    });
    drain(*ch);
    EXPECT_EQ(got, 123u) << "read must observe the earlier write";
}

TEST_F(DramFixture, UnknownSchedulerIsFatal)
{
    cfg.set("dram.scheduler", "random");
    EXPECT_THROW(make(), std::runtime_error);
}

TEST_F(DramFixture, HorizonNeverWhenIdle)
{
    auto ch = make();
    EXPECT_EQ(ch->nextWorkCycle(11), kCycleNever);
}

TEST_F(DramFixture, HorizonCoversQueuedWorkViaEventQueue)
{
    auto ch = make();
    bool done = false;
    ch->pushRead(0x80, [&](const mem::LineData &) { done = true; });
    // A queued request pins the horizon to the next cycle until the
    // channel picks it up...
    EXPECT_EQ(ch->nextWorkCycle(0), 1u);
    Cycle c = 0;
    while (ch->queueDepth() > 0 && c < 1000)
        ch->tick(++c);
    ASSERT_EQ(ch->queueDepth(), 0u);
    // ...after which the in-service completion is owned by the
    // shared event queue, never lost between the two.
    ASSERT_FALSE(done);
    EXPECT_NE(events.nextEventCycle(), kCycleNever);
    events.runUntil(events.nextEventCycle());
    EXPECT_TRUE(done);
}
