#include "mem/packet.hh"

#include <gtest/gtest.h>

#include "core/gtsc_messages.hh"
#include "mem/line_data.hh"
#include "protocols/message_sizes.hh"

using namespace gtsc;

TEST(LineData, MergeMasked)
{
    mem::LineData a;
    mem::LineData b;
    for (unsigned i = 0; i < mem::kWordsPerLine; ++i)
        b.setWord(i, i + 100);
    a.mergeMasked(b, 0x5); // words 0 and 2
    EXPECT_EQ(a.word(0), 100u);
    EXPECT_EQ(a.word(1), 0u);
    EXPECT_EQ(a.word(2), 102u);
}

TEST(LineData, AddressHelpers)
{
    EXPECT_EQ(mem::lineAlign(0x1234), 0x1200u);
    EXPECT_EQ(mem::wordInLine(0x1234), (0x34u / 4));
    EXPECT_EQ(mem::partitionOf(0x000, 4), 0);
    EXPECT_EQ(mem::partitionOf(0x080, 4), 1);
    EXPECT_EQ(mem::partitionOf(0x100, 4), 2);
    EXPECT_EQ(mem::partitionOf(0x200, 4), 0);
}

TEST(Packet, MaskedDataBytesRoundsToSectors)
{
    EXPECT_EQ(mem::maskedDataBytes(0), 0u);
    EXPECT_EQ(mem::maskedDataBytes(0x1), 32u);       // one word
    EXPECT_EQ(mem::maskedDataBytes(0xff), 32u);      // full 1st sector
    EXPECT_EQ(mem::maskedDataBytes(0x100), 32u);     // word 8 -> 2nd
    EXPECT_EQ(mem::maskedDataBytes(0x101), 64u);     // sectors 0+1
    EXPECT_EQ(mem::maskedDataBytes(0xffffffff), 128u);
}

// Table I: field content of each G-TSC message determines its size.
TEST(Packet, GtscMessageSizesFollowTable1)
{
    const unsigned ts = 2; // 16-bit timestamps
    using mem::MsgType;
    // BusRd: header + wts + warp_ts.
    EXPECT_EQ(core::gtscMessageBytes(MsgType::BusRd, ts, 0), 8u + 4u);
    // BusWr: header + warp_ts + data sectors.
    EXPECT_EQ(core::gtscMessageBytes(MsgType::BusWr, ts, 0x1),
              8u + 2u + 32u);
    // BusFill: header + wts + rts + full line.
    EXPECT_EQ(core::gtscMessageBytes(MsgType::BusFill, ts, 0),
              8u + 4u + 128u);
    // BusRnw: header + rts only — no data (the key traffic saving).
    EXPECT_EQ(core::gtscMessageBytes(MsgType::BusRnw, ts, 0), 8u + 2u);
    // BusWrAck: header + wts + rts.
    EXPECT_EQ(core::gtscMessageBytes(MsgType::BusWrAck, ts, 0), 8u + 4u);
}

TEST(Packet, TcSizesUseFullFillsAndWideTimestamps)
{
    using mem::MsgType;
    EXPECT_EQ(protocols::tcMessageBytes(MsgType::BusRd, 0), 8u);
    EXPECT_EQ(protocols::tcMessageBytes(MsgType::BusFill, 0),
              8u + 4u + 128u);
    EXPECT_EQ(protocols::tcMessageBytes(MsgType::BusWr, 0x3),
              8u + 32u);
    EXPECT_EQ(protocols::tcMessageBytes(MsgType::BusWrAck, 0), 12u);
    // TC renewal == full fill; G-TSC renewal is 10 bytes.
    EXPECT_GT(protocols::tcMessageBytes(MsgType::BusFill, 0),
              core::gtscMessageBytes(MsgType::BusRnw, 2, 0));
}

TEST(Packet, BaselineSizes)
{
    using mem::MsgType;
    EXPECT_EQ(protocols::baselineMessageBytes(MsgType::BusRd, 0), 8u);
    EXPECT_EQ(protocols::baselineMessageBytes(MsgType::BusFill, 0),
              136u);
    EXPECT_EQ(protocols::baselineMessageBytes(MsgType::BusWrAck, 0), 8u);
}

TEST(Packet, ToStringNamesType)
{
    mem::Packet p;
    p.type = mem::MsgType::BusRnw;
    p.sizeBytes = 10;
    EXPECT_NE(p.toString().find("BusRnw"), std::string::npos);
}
