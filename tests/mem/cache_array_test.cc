#include "mem/cache_array.hh"

#include <gtest/gtest.h>

#include <stdexcept>

using namespace gtsc;
using mem::CacheArray;
using mem::CacheBlock;

namespace
{

Addr
line(std::uint64_t i)
{
    return i * mem::kLineBytes;
}

} // namespace

TEST(CacheArray, GeometryFromSizeAndAssoc)
{
    CacheArray c(16 * 1024, 4);
    EXPECT_EQ(c.assoc(), 4u);
    EXPECT_EQ(c.numSets(), 16u * 1024 / (4 * mem::kLineBytes));
    EXPECT_EQ(c.sizeBytes(), 16u * 1024);
}

TEST(CacheArray, RejectsBadGeometry)
{
    EXPECT_THROW(CacheArray(1000, 4), std::runtime_error);
    EXPECT_THROW(CacheArray(16 * 1024, 0), std::runtime_error);
    // 3 sets: not a power of two.
    EXPECT_THROW(CacheArray(3 * 2 * mem::kLineBytes, 2),
                 std::runtime_error);
}

TEST(CacheArray, InsertThenLookup)
{
    CacheArray c(4 * 1024, 4);
    EXPECT_EQ(c.lookup(line(5)), nullptr);
    CacheBlock *v = c.victim(line(5));
    ASSERT_NE(v, nullptr);
    EXPECT_FALSE(v->valid);
    c.insert(*v, line(5));
    CacheBlock *b = c.lookup(line(5));
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->lineAddr, line(5));
    EXPECT_TRUE(b->valid);
    EXPECT_FALSE(b->dirty);
}

TEST(CacheArray, LruVictimSelection)
{
    CacheArray c(2 * mem::kLineBytes, 2); // 1 set, 2 ways
    CacheBlock *v0 = c.victim(line(0));
    c.insert(*v0, line(0));
    CacheBlock *v1 = c.victim(line(1));
    c.insert(*v1, line(1));
    // Touch line 0 so line 1 is LRU.
    c.touch(*c.lookup(line(0)));
    CacheBlock *v2 = c.victim(line(2));
    ASSERT_NE(v2, nullptr);
    EXPECT_EQ(v2->lineAddr, line(1));
}

TEST(CacheArray, VictimRespectsPredicate)
{
    CacheArray c(2 * mem::kLineBytes, 2);
    c.insert(*c.victim(line(0)), line(0));
    c.insert(*c.victim(line(1)), line(1));
    // Nothing evictable -> nullptr (TC delayed eviction).
    auto none = [](const CacheBlock &) { return false; };
    EXPECT_EQ(c.victim(line(2), none), nullptr);
    // Only line 0 evictable.
    auto only0 = [](const CacheBlock &b) { return b.lineAddr == 0; };
    CacheBlock *v = c.victim(line(2), only0);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->lineAddr, line(0));
}

TEST(CacheArray, SetIndexingSeparatesSets)
{
    CacheArray c(4 * mem::kLineBytes, 1); // 4 sets, direct mapped
    for (std::uint64_t i = 0; i < 4; ++i)
        c.insert(*c.victim(line(i)), line(i));
    for (std::uint64_t i = 0; i < 4; ++i)
        EXPECT_NE(c.lookup(line(i)), nullptr);
    // line(4) conflicts with line(0) only.
    CacheBlock *v = c.victim(line(4));
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->lineAddr, line(0));
}

TEST(CacheArray, InvalidateAllAndForEach)
{
    CacheArray c(4 * 1024, 4);
    c.insert(*c.victim(line(1)), line(1));
    c.insert(*c.victim(line(2)), line(2));
    int count = 0;
    c.forEachValid([&](CacheBlock &) { ++count; });
    EXPECT_EQ(count, 2);
    c.invalidateAll();
    count = 0;
    c.forEachValid([&](CacheBlock &) { ++count; });
    EXPECT_EQ(count, 0);
    EXPECT_EQ(c.lookup(line(1)), nullptr);
}

TEST(CacheArray, InsertResetsMetadata)
{
    CacheArray c(4 * 1024, 4);
    CacheBlock *v = c.victim(line(3));
    c.insert(*v, line(3));
    v->meta.wts = 99;
    v->dirty = true;
    // Re-insert another line into the same block.
    v->valid = false;
    c.insert(*v, line(3));
    EXPECT_EQ(v->meta.wts, 0u);
    EXPECT_FALSE(v->dirty);
}
