#include "mem/mshr.hh"

#include <gtest/gtest.h>

using namespace gtsc;
using mem::Mshr;
using mem::MshrEntry;

TEST(Mshr, AllocFindFree)
{
    Mshr m(4);
    EXPECT_EQ(m.find(0x80), nullptr);
    MshrEntry *e = m.alloc(0x80);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->lineAddr, 0x80u);
    EXPECT_EQ(m.find(0x80), e);
    EXPECT_EQ(m.size(), 1u);
    m.free(0x80);
    EXPECT_EQ(m.find(0x80), nullptr);
    EXPECT_EQ(m.size(), 0u);
}

TEST(Mshr, CapacityEnforced)
{
    Mshr m(2);
    EXPECT_NE(m.alloc(0x000), nullptr);
    EXPECT_NE(m.alloc(0x080), nullptr);
    EXPECT_TRUE(m.full());
    EXPECT_EQ(m.alloc(0x100), nullptr);
    m.free(0x000);
    EXPECT_FALSE(m.full());
    EXPECT_NE(m.alloc(0x100), nullptr);
}

TEST(Mshr, WaitersMergeInOrder)
{
    Mshr m(4);
    MshrEntry *e = m.alloc(0x80);
    for (std::uint64_t i = 0; i < 3; ++i) {
        mem::Access a;
        a.id = i;
        e->waiters.push_back(a);
    }
    ASSERT_EQ(e->waiters.size(), 3u);
    EXPECT_EQ(e->waiters[0].id, 0u);
    EXPECT_EQ(e->waiters[2].id, 2u);
}

TEST(Mshr, ClearEmptiesTable)
{
    Mshr m(4);
    m.alloc(0x80);
    m.alloc(0x100);
    m.clear();
    EXPECT_EQ(m.size(), 0u);
}
