/**
 * Trace determinism across the hybrid main loop.
 *
 * Observability output must be a pure function of the simulated
 * execution: a run with gpu.fast_forward on must produce the same
 * trace JSON, timeline CSV and protocol transcript, byte for byte,
 * as a run with it off. Events are only recorded at state-transition
 * points — cycles both loop modes actually tick — and the main loop
 * clamps jumps at timeline sample boundaries, so any divergence here
 * is a bug in one of those two contracts.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "harness/runner.hh"
#include "obs/session.hh"

using namespace gtsc;

namespace
{

sim::Config
obsConfig(bool fast_forward)
{
    sim::Config cfg;
    cfg.setInt("gpu.num_sms", 4);
    cfg.setInt("gpu.warps_per_sm", 4);
    cfg.setInt("gpu.num_partitions", 2);
    cfg.setDouble("wl.scale", 0.5);
    cfg.setBool("obs.trace", true);
    cfg.setInt("obs.sample_interval", 200);
    cfg.setBool("gpu.fast_forward", fast_forward);
    return cfg;
}

struct ObsDump
{
    std::string trace;
    std::string timeline;
    std::string transcript;
};

ObsDump
dump(const harness::RunResult &r)
{
    ObsDump d;
    EXPECT_NE(r.obs, nullptr);
    if (!r.obs)
        return d;
    std::ostringstream t;
    r.obs->tracer()->writeChromeTrace(t);
    d.trace = t.str();
    std::ostringstream tl;
    r.obs->timeline()->writeCsv(tl);
    d.timeline = tl.str();
    std::ostringstream tr;
    r.obs->transcript()->writeText(tr);
    d.transcript = tr.str();
    return d;
}

} // namespace

class TraceDeterminism
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(TraceDeterminism, IdenticalWithAndWithoutFastForward)
{
    const char *protocol = GetParam();
    harness::RunResult slow =
        harness::runOne(obsConfig(false), protocol, "rc", "mp");
    harness::RunResult fast =
        harness::runOne(obsConfig(true), protocol, "rc", "mp");

    ASSERT_EQ(slow.cycles, fast.cycles);
    ObsDump a = dump(slow);
    ObsDump b = dump(fast);
    EXPECT_EQ(a.trace, b.trace);
    EXPECT_EQ(a.timeline, b.timeline);
    EXPECT_EQ(a.transcript, b.transcript);
    // Something must actually have been traced for this to mean
    // anything.
    EXPECT_GT(slow.obs->tracer()->totalRecorded(), 0u);
    EXPECT_GT(slow.obs->transcript()->totalLogged(), 0u);
    EXPECT_GT(slow.obs->timeline()->numSamples(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Protocols, TraceDeterminism,
                         ::testing::Values("gtsc", "tc", "noncoh"),
                         [](const auto &info) {
                             return std::string(info.param);
                         });

TEST(TraceDeterminism, TracingDoesNotPerturbTheRun)
{
    // Stat dumps must be bit-identical with tracing on and off: the
    // tracer observes, never steers.
    sim::Config off;
    off.setInt("gpu.num_sms", 4);
    off.setInt("gpu.warps_per_sm", 4);
    off.setInt("gpu.num_partitions", 2);
    off.setDouble("wl.scale", 0.5);
    harness::RunResult plain = harness::runOne(off, "gtsc", "rc", "mp");

    harness::RunResult traced =
        harness::runOne(obsConfig(false), "gtsc", "rc", "mp");
    EXPECT_EQ(plain.cycles, traced.cycles);
    EXPECT_EQ(plain.stats.toString(), traced.stats.toString());
}
