#include "obs/timeline.hh"

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

using namespace gtsc;
using obs::StatTimeline;
using sim::StatSet;

TEST(Timeline, SamplesPerIntervalDeltas)
{
    StatSet s;
    s.counter("l1.hits") = 0;
    StatTimeline t(s, 100, {});
    EXPECT_EQ(t.nextSampleAt(), 100u);

    s.counter("l1.hits") = 5;
    t.sample(99); // before the boundary: no-op
    EXPECT_EQ(t.numSamples(), 0u);
    t.sample(100);
    EXPECT_EQ(t.numSamples(), 1u);
    EXPECT_EQ(t.nextSampleAt(), 200u);

    s.counter("l1.hits") = 12;
    t.sample(200);
    t.finish(250); // partial final interval
    EXPECT_EQ(t.numSamples(), 3u);

    std::ostringstream oss;
    t.writeCsv(oss);
    EXPECT_EQ(oss.str(), "cycle,l1.hits\n"
                         "100,5\n"
                         "200,7\n"
                         "250,0\n");
}

TEST(Timeline, SampleIsIdempotentPerCycle)
{
    StatSet s;
    s.counter("x") = 1;
    StatTimeline t(s, 10, {});
    t.sample(10);
    t.sample(10);
    t.finish(10);
    EXPECT_EQ(t.numSamples(), 1u);
}

TEST(Timeline, LateSampleCoversSkippedBoundaries)
{
    // A fast-forward overshoot (when no clamp applied, e.g. the run
    // ended) still yields one sample and re-arms past `now`.
    StatSet s;
    StatTimeline t(s, 100, {});
    t.sample(350);
    EXPECT_EQ(t.numSamples(), 1u);
    EXPECT_EQ(t.nextSampleAt(), 400u);
}

TEST(Timeline, PrefixFilterSelectsCounters)
{
    StatSet s;
    s.counter("l1.hits") = 3;
    s.counter("l2.accesses") = 9;
    s.counter("dram.reads") = 1;
    StatTimeline t(s, 50, {"l1.", "dram."});
    t.sample(50);
    std::ostringstream oss;
    t.writeCsv(oss);
    std::string csv = oss.str();
    EXPECT_NE(csv.find("l1.hits"), std::string::npos);
    EXPECT_NE(csv.find("dram.reads"), std::string::npos);
    EXPECT_EQ(csv.find("l2.accesses"), std::string::npos);
}

TEST(Timeline, JsonExportMatchesSampleCount)
{
    StatSet s;
    s.counter("x") = 2;
    StatTimeline t(s, 10, {});
    t.sample(10);
    s.counter("x") = 5;
    t.sample(20);
    std::ostringstream oss;
    t.writeJson(oss);
    std::string json = oss.str();
    EXPECT_NE(json.find("\"interval\":10"), std::string::npos);
    EXPECT_NE(json.find("{\"cycle\":10,\"x\":2}"), std::string::npos);
    EXPECT_NE(json.find("{\"cycle\":20,\"x\":3}"), std::string::npos);
}
