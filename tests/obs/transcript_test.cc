#include "obs/transcript.hh"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

using namespace gtsc;
using obs::Transcript;
using obs::TranscriptEntry;

namespace
{

TranscriptEntry
msg(Cycle cycle, Addr line, const char *name, std::uint16_t src,
    std::uint16_t dst, bool response = false)
{
    TranscriptEntry e;
    e.cycle = cycle;
    e.line = line;
    e.msg = name;
    e.src = src;
    e.dst = dst;
    e.response = response;
    return e;
}

} // namespace

TEST(Transcript, UnfilteredWantsEverything)
{
    Transcript t(8, "");
    EXPECT_TRUE(t.wants(0));
    EXPECT_TRUE(t.wants(0xdeadbeef));
}

TEST(Transcript, RangeFilter)
{
    Transcript t(8, "1000-1f80");
    EXPECT_FALSE(t.wants(0xf80));
    EXPECT_TRUE(t.wants(0x1000));
    EXPECT_TRUE(t.wants(0x1f80));
    EXPECT_FALSE(t.wants(0x2000));

    Transcript one(8, "4000");
    EXPECT_TRUE(one.wants(0x4000));
    EXPECT_FALSE(one.wants(0x4080));

    EXPECT_THROW(Transcript(8, "zzz"), std::runtime_error);
    EXPECT_THROW(Transcript(8, "2000-1000"), std::runtime_error);
}

TEST(Transcript, DepthBoundsPerLineHistory)
{
    Transcript t(3, "");
    for (Cycle c = 1; c <= 10; ++c)
        t.log(msg(c, 0x1000, "BusRd", 0, 1));
    EXPECT_EQ(t.totalLogged(), 10u);
    std::string text = t.describeLine(0x1000, 10);
    // Only the newest 3 retained; the elision is called out.
    EXPECT_NE(text.find("7 earlier message(s) elided"),
              std::string::npos);
    EXPECT_NE(text.find("[8]"), std::string::npos);
    EXPECT_NE(text.find("[10]"), std::string::npos);
    EXPECT_EQ(text.find("[7]"), std::string::npos);
}

TEST(Transcript, DescribeLineFormatsDirectionAndTimestamps)
{
    Transcript t(8, "");
    TranscriptEntry req = msg(5, 0x2000, "BusRd", 3, 1);
    req.warp = 7;
    req.ts0 = 10;
    req.ts1 = 900;
    t.log(req);
    t.log(msg(9, 0x2000, "BusFill", 1, 3, true));

    std::string text = t.describeLine(0x2000, 8);
    EXPECT_NE(text.find("[5] BusRd req  sm3->part1 warp7 ts=10/900"),
              std::string::npos);
    EXPECT_NE(text.find("[9] BusFill resp part1->sm3"),
              std::string::npos);
    EXPECT_TRUE(t.describeLine(0x9999, 8).empty());
}

TEST(Transcript, WriteTextListsLinesInAddressOrder)
{
    Transcript t(8, "");
    t.log(msg(2, 0x2000, "BusWr", 1, 0));
    t.log(msg(1, 0x1000, "BusRd", 0, 0));
    std::ostringstream oss;
    t.writeText(oss);
    std::string text = oss.str();
    auto first = text.find("line 0x1000");
    auto second = text.find("line 0x2000");
    ASSERT_NE(first, std::string::npos);
    ASSERT_NE(second, std::string::npos);
    EXPECT_LT(first, second);
}
