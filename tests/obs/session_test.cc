#include "obs/session.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "sim/config.hh"
#include "sim/stats.hh"

using namespace gtsc;
namespace fs = std::filesystem;

TEST(ObsSession, NullWhenEveryKnobOff)
{
    sim::Config cfg;
    EXPECT_EQ(obs::Session::fromConfig(cfg), nullptr);
}

TEST(ObsSession, TraceEnablesTranscriptAndTimelineByDefault)
{
    sim::Config cfg;
    cfg.setBool("obs.trace", true);
    auto s = obs::Session::fromConfig(cfg);
    ASSERT_NE(s, nullptr);
    EXPECT_NE(s->tracer(), nullptr);
    EXPECT_NE(s->transcript(), nullptr);
    EXPECT_EQ(s->sampleInterval(), 1000u);
    EXPECT_EQ(s->timeline(), nullptr); // not bound yet
    sim::StatSet stats;
    s->bindStats(stats);
    EXPECT_NE(s->timeline(), nullptr);
    s->bindStats(stats); // idempotent
}

TEST(ObsSession, ComponentsIndividuallySelectable)
{
    sim::Config cfg;
    cfg.setInt("obs.sample_interval", 500);
    auto s = obs::Session::fromConfig(cfg);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->tracer(), nullptr);
    EXPECT_EQ(s->transcript(), nullptr);
    EXPECT_EQ(s->sampleInterval(), 500u);

    sim::Config cfg2;
    cfg2.setBool("obs.trace", true);
    cfg2.setBool("obs.transcript", false);
    cfg2.setInt("obs.sample_interval", 0);
    auto s2 = obs::Session::fromConfig(cfg2);
    ASSERT_NE(s2, nullptr);
    EXPECT_NE(s2->tracer(), nullptr);
    EXPECT_EQ(s2->transcript(), nullptr);
    sim::StatSet stats;
    s2->bindStats(stats);
    EXPECT_EQ(s2->timeline(), nullptr);
}

TEST(TraceRoundTrip, SessionWritesLoadableFiles)
{
    sim::Config cfg;
    cfg.setBool("obs.trace", true);
    auto s = obs::Session::fromConfig(cfg);
    ASSERT_NE(s, nullptr);
    sim::StatSet stats;
    stats.counter("l1.hits") = 4;
    s->bindStats(stats);
    s->tracer()->record(s->tracer()->track("sm0"),
                        obs::Event{1, 0x40, 0, 0,
                                   obs::EventKind::WarpIssue, 0, 0});
    obs::TranscriptEntry e;
    e.cycle = 2;
    e.line = 0x40;
    e.msg = "BusRd";
    s->transcript()->log(e);
    s->timeline()->finish(123);

    fs::path dir = fs::temp_directory_path() / "gtsc_obs_session_test";
    fs::remove_all(dir);
    std::vector<std::string> files =
        s->writeFiles(dir.string(), "unit_gtsc_rc_00000000");
    ASSERT_EQ(files.size(), 3u);
    for (const std::string &f : files) {
        std::ifstream in(f);
        ASSERT_TRUE(in.good()) << f;
        std::ostringstream buf;
        buf << in.rdbuf();
        EXPECT_FALSE(buf.str().empty()) << f;
    }
    EXPECT_NE(files[0].find(".trace.json"), std::string::npos);
    EXPECT_NE(files[1].find(".timeline.csv"), std::string::npos);
    EXPECT_NE(files[2].find(".transcript.txt"), std::string::npos);
    fs::remove_all(dir);
}

TEST(ObsSession, FileStemSanitizesAndHashesConfig)
{
    std::string a = obs::fileStem("trace:/tmp/x.trace", "gtsc", "rc",
                                  "gpu.num_sms=4\n");
    std::string b = obs::fileStem("trace:/tmp/x.trace", "gtsc", "rc",
                                  "gpu.num_sms=8\n");
    EXPECT_EQ(a.find('/'), std::string::npos);
    EXPECT_EQ(a.find(':'), std::string::npos);
    EXPECT_NE(a, b); // differing configs get distinct stems
    EXPECT_EQ(a.substr(0, a.rfind('_')), b.substr(0, b.rfind('_')));
}
