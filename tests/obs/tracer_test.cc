#include "obs/tracer.hh"

#include <gtest/gtest.h>

#include <sstream>

using namespace gtsc;
using obs::Event;
using obs::EventKind;
using obs::Tracer;

namespace
{

Event
at(Cycle cycle, EventKind kind, Addr addr = 0)
{
    return Event{cycle, addr, 0, 0, kind, 0, 0};
}

/** Balanced-delimiter sanity check outside of string literals. */
void
expectBalanced(const std::string &json)
{
    int brace = 0;
    int bracket = 0;
    bool inString = false;
    for (std::size_t i = 0; i < json.size(); ++i) {
        char c = json[i];
        if (inString) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                inString = false;
            continue;
        }
        switch (c) {
        case '"':
            inString = true;
            break;
        case '{':
            ++brace;
            break;
        case '}':
            --brace;
            break;
        case '[':
            ++bracket;
            break;
        case ']':
            --bracket;
            break;
        default:
            break;
        }
        EXPECT_GE(brace, 0);
        EXPECT_GE(bracket, 0);
    }
    EXPECT_FALSE(inString);
    EXPECT_EQ(brace, 0);
    EXPECT_EQ(bracket, 0);
}

} // namespace

TEST(Tracer, TrackRegistrationDedupesByName)
{
    Tracer t;
    auto a = t.track("sm0");
    auto b = t.track("l1.sm0");
    EXPECT_NE(a, b);
    EXPECT_EQ(t.track("sm0"), a);
    EXPECT_EQ(t.numTracks(), 2u);
}

TEST(Tracer, RingWrapRetainsNewestEvents)
{
    Tracer t(4);
    auto tr = t.track("x");
    for (Cycle c = 1; c <= 10; ++c)
        t.record(tr, at(c, EventKind::L1Hit));
    EXPECT_EQ(t.totalRecorded(), 10u);
    EXPECT_EQ(t.totalRetained(), 4u);
    // Oldest-first visit order: cycles 7, 8, 9, 10.
    const Tracer::Track &track = t.tracks()[tr];
    Cycle expect = 7;
    std::size_t n = track.ring.size();
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(track.ring[(track.next + i) % n].cycle, expect++);
}

TEST(Tracer, EveryEventKindHasANameAndArgTable)
{
    for (unsigned i = 0; i < obs::kNumEventKinds; ++i) {
        auto k = static_cast<EventKind>(i);
        EXPECT_STRNE(obs::eventKindName(k), "unknown");
        // eventArgNames asserts internally on bad kinds.
        (void)obs::eventArgNames(k);
    }
}

TEST(TraceRoundTrip, ChromeJsonWellFormed)
{
    Tracer t;
    auto sm = t.track("sm0");
    auto l1 = t.track("l1.sm0");
    t.record(sm, Event{5, 0x1000, 0, 0, EventKind::WarpIssue, 2, 1});
    t.record(l1, Event{6, 0x1000, 3, 900, EventKind::L1Hit, 2, 0});
    t.record(sm, Event{7, 0x1000, 0, 0, EventKind::WarpStall, 2, 0});
    std::ostringstream oss;
    t.writeChromeTrace(oss);
    std::string json = oss.str();

    expectBalanced(json);
    EXPECT_EQ(json.front(), '{');
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"warp_issue\""), std::string::npos);
    EXPECT_NE(json.find("\"l1_hit\""), std::string::npos);
    EXPECT_NE(json.find("\"warp_stall\""), std::string::npos);
    // Track-name metadata rows label each track.
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("\"sm0\""), std::string::npos);
    EXPECT_NE(json.find("\"l1.sm0\""), std::string::npos);
}

TEST(TraceRoundTrip, TimestampsAndArgsPreserved)
{
    Tracer t;
    auto l1 = t.track("l1.sm3");
    t.record(l1, Event{12345, 0xabc0, 17, 2099, EventKind::L1Hit, 7, 0});
    std::ostringstream oss;
    t.writeChromeTrace(oss);
    std::string json = oss.str();

    EXPECT_NE(json.find("\"ts\":12345"), std::string::npos);
    EXPECT_NE(json.find("\"addr\":\"0xabc0\""), std::string::npos);
    EXPECT_NE(json.find("\"warp\":7"), std::string::npos);
    EXPECT_NE(json.find("\"wts\":17"), std::string::npos);
    EXPECT_NE(json.find("\"rts\":2099"), std::string::npos);
}

TEST(TraceRoundTrip, DroppedEventCountExported)
{
    Tracer t(2);
    auto tr = t.track("x");
    for (Cycle c = 1; c <= 5; ++c)
        t.record(tr, at(c, EventKind::NocInject));
    std::ostringstream oss;
    t.writeChromeTrace(oss);
    std::string json = oss.str();
    expectBalanced(json);
    EXPECT_NE(json.find("\"dropped_events\""), std::string::npos);
    EXPECT_NE(json.find("\"count\":3"), std::string::npos);
}

TEST(TraceRoundTrip, DeterministicForIdenticalRecordings)
{
    auto build = [] {
        Tracer t;
        auto a = t.track("sm0");
        auto b = t.track("dram0");
        for (Cycle c = 0; c < 100; ++c) {
            t.record(a, at(c, EventKind::WarpIssue, c * 8));
            if (c % 3 == 0)
                t.record(b, at(c, EventKind::DramActivate, c * 64));
        }
        std::ostringstream oss;
        t.writeChromeTrace(oss);
        return oss.str();
    };
    EXPECT_EQ(build(), build());
}
