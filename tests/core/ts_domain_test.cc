#include "core/ts_domain.hh"

#include <gtest/gtest.h>

#include <stdexcept>

using namespace gtsc;
using core::TsDomain;

TEST(TsDomain, DefaultsTo16Bits)
{
    sim::Config cfg;
    sim::StatSet stats;
    TsDomain d(cfg, stats);
    EXPECT_EQ(d.tsMax(), 65535u);
    EXPECT_EQ(d.tsBytes(), 2u);
    EXPECT_EQ(d.lease(), 10u);
    EXPECT_EQ(d.epoch(), 0u);
}

TEST(TsDomain, ResetAdvancesEpochAndNotifiesListeners)
{
    sim::Config cfg;
    sim::StatSet stats;
    TsDomain d(cfg, stats);
    int calls = 0;
    d.addResetListener([&] { ++calls; });
    d.addResetListener([&] { ++calls; });
    d.triggerReset(100);
    EXPECT_EQ(d.epoch(), 1u);
    EXPECT_EQ(calls, 2);
    d.triggerReset(250);
    EXPECT_EQ(d.epoch(), 2u);
    EXPECT_EQ(calls, 4);
    EXPECT_EQ(stats.get("gtsc.ts_resets"), 2u);
}

TEST(TsDomain, EpochAtIsCycleIndexed)
{
    sim::Config cfg;
    sim::StatSet stats;
    TsDomain d(cfg, stats);
    EXPECT_EQ(d.epochAt(0), 0u);
    d.triggerReset(100);
    d.triggerReset(250);
    // A reader that has not reached the reset cycle yet must still
    // see the old epoch (the sharded loop's L1s query mid-window).
    EXPECT_EQ(d.epochAt(99), 0u);
    EXPECT_EQ(d.epochAt(100), 1u);
    EXPECT_EQ(d.epochAt(249), 1u);
    EXPECT_EQ(d.epochAt(250), 2u);
    EXPECT_EQ(d.epochAt(9999), 2u);
    EXPECT_EQ(d.epoch(), 2u);
}

TEST(TsDomain, ConfigurableWidthAndLease)
{
    sim::Config cfg;
    cfg.setInt("gtsc.ts_bits", 8);
    cfg.setInt("gtsc.lease", 12);
    sim::StatSet stats;
    TsDomain d(cfg, stats);
    EXPECT_EQ(d.tsMax(), 255u);
    EXPECT_EQ(d.tsBytes(), 1u);
    EXPECT_EQ(d.lease(), 12u);
}

TEST(TsDomain, RejectsBadConfig)
{
    sim::StatSet stats;
    {
        sim::Config cfg;
        cfg.setInt("gtsc.ts_bits", 2);
        EXPECT_THROW(TsDomain(cfg, stats), std::runtime_error);
    }
    {
        sim::Config cfg;
        cfg.setInt("gtsc.lease", 0);
        EXPECT_THROW(TsDomain(cfg, stats), std::runtime_error);
    }
    {
        // Lease too large for the timestamp width.
        sim::Config cfg;
        cfg.setInt("gtsc.ts_bits", 8);
        cfg.setInt("gtsc.lease", 200);
        EXPECT_THROW(TsDomain(cfg, stats), std::runtime_error);
    }
}
