/**
 * Write-buffer visibility mode (the Section V-A design the paper
 * rejects, kept for the ablation): loads never park behind pending
 * stores — other warps read the old copy, the writer's own loads
 * forward from the buffered store — and capacity limits apply.
 */

#include <gtest/gtest.h>

#include "core/gtsc_builder.hh"
#include "core/gtsc_l1.hh"

using namespace gtsc;
using core::GtscL1;
using core::TsDomain;
using mem::Access;
using mem::AccessResult;
using mem::MsgType;
using mem::Packet;

namespace
{

class WbFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        cfg.setInt("gpu.warps_per_sm", 4);
        cfg.setInt("gpu.num_partitions", 2);
        cfg.setInt("l1.size_bytes", 2 * 1024);
        cfg.set("gtsc.update_visibility", "writebuffer");
        cfg.setInt("gtsc.write_buffer_entries", 2);
        domain = std::make_unique<TsDomain>(cfg, stats);
        l1 = std::make_unique<GtscL1>(0, cfg, stats, events, *domain,
                                      nullptr);
        l1->setSend([this](Packet &&p) { sent.push_back(p); });
        l1->setLoadDone([this](const Access &a, const AccessResult &r) {
            loadsDone.emplace_back(a, r);
        });
        l1->setStoreDone([this](const Access &, Cycle) {});
    }

    Access
    load(Addr line, WarpId warp)
    {
        Access a;
        a.lineAddr = line;
        a.wordMask = 1;
        a.warp = warp;
        a.id = nextId++;
        return a;
    }

    Access
    store(Addr line, WarpId warp, std::uint32_t value)
    {
        Access a = load(line, warp);
        a.isStore = true;
        a.storeData.setWord(0, value);
        return a;
    }

    void
    warmLine(Addr line, std::uint32_t word0)
    {
        l1->access(load(line, 0), now);
        Packet fill;
        fill.type = MsgType::BusFill;
        fill.lineAddr = line;
        fill.wts = 1;
        fill.rts = 60000;
        fill.data.setWord(0, word0);
        l1->receiveResponse(std::move(fill), now);
        advance();
        loadsDone.clear();
        sent.clear();
    }

    void
    advance(unsigned cycles = 12)
    {
        for (unsigned i = 0; i < cycles; ++i) {
            ++now;
            events.runUntil(now);
            l1->tick(now);
        }
    }

    sim::Config cfg;
    sim::StatSet stats;
    sim::EventQueue events;
    std::unique_ptr<TsDomain> domain;
    std::unique_ptr<GtscL1> l1;
    std::vector<Packet> sent;
    std::vector<std::pair<Access, AccessResult>> loadsDone;
    std::uint64_t nextId = 1;
    Cycle now = 0;
};

TEST_F(WbFixture, OtherWarpsReadOldCopyWithoutWaiting)
{
    warmLine(0x1000, 42);
    l1->access(store(0x1000, 1, 99), now);
    l1->access(load(0x1000, 2), now);
    advance();
    ASSERT_EQ(loadsDone.size(), 1u) << "no parking";
    EXPECT_EQ(loadsDone[0].second.data.word(0), 42u)
        << "old copy served while the store is pending";
}

TEST_F(WbFixture, WriterForwardsFromBufferedStore)
{
    warmLine(0x1000, 42);
    l1->access(store(0x1000, 1, 99), now);
    l1->access(load(0x1000, 1), now);
    advance();
    ASSERT_EQ(loadsDone.size(), 1u) << "writer does not wait either";
    EXPECT_EQ(loadsDone[0].second.data.word(0), 99u)
        << "store-to-load forwarding";
    EXPECT_EQ(stats.get("l1.wb_forwards"), 1u);
}

TEST_F(WbFixture, CapacityLimitRejects)
{
    warmLine(0x1000, 1);
    warmLine(0x2000, 2);
    warmLine(0x3000, 3);
    EXPECT_TRUE(l1->access(store(0x1000, 0, 10), now));
    EXPECT_TRUE(l1->access(store(0x2000, 1, 20), now));
    // Two entries in flight: the third store is rejected until an
    // ack frees a slot (the warp retries).
    EXPECT_FALSE(l1->access(store(0x3000, 2, 30), now));
    EXPECT_EQ(stats.get("l1.wb_full_rejects"), 1u);

    Packet ack;
    ack.type = MsgType::BusWrAck;
    ack.lineAddr = 0x1000;
    ack.reqId = sent[0].reqId;
    ack.wts = 2;
    ack.rts = 12;
    ack.prevWts = 1;
    l1->receiveResponse(std::move(ack), now);
    advance();
    EXPECT_TRUE(l1->access(store(0x3000, 2, 30), now));
}

TEST_F(WbFixture, AckMergesBufferedData)
{
    warmLine(0x1000, 42);
    l1->access(store(0x1000, 1, 99), now);
    Packet ack;
    ack.type = MsgType::BusWrAck;
    ack.lineAddr = 0x1000;
    ack.reqId = sent[0].reqId;
    ack.wts = 5;
    ack.rts = 15;
    ack.prevWts = 1;
    l1->receiveResponse(std::move(ack), now);
    advance();
    loadsDone.clear();
    l1->access(load(0x1000, 2), now);
    advance();
    ASSERT_EQ(loadsDone.size(), 1u);
    EXPECT_EQ(loadsDone[0].second.data.word(0), 99u)
        << "post-ack reads see the merged store";
}

} // namespace
