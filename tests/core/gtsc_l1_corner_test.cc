/**
 * Corner cases of the G-TSC private-cache controller: fill bypass
 * when every way is pinned by pending stores, renewal responses that
 * race with evictions, forward-all response bookkeeping, and the
 * per-line ordering of mixed load/store waiter lists.
 */

#include <gtest/gtest.h>

#include "core/gtsc_builder.hh"
#include "core/gtsc_l1.hh"

using namespace gtsc;
using core::GtscL1;
using core::TsDomain;
using mem::Access;
using mem::AccessResult;
using mem::MsgType;
using mem::Packet;

namespace
{

class CornerFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // One set, two ways: every line conflicts.
        cfg.setInt("gpu.warps_per_sm", 4);
        cfg.setInt("gpu.num_partitions", 1);
        cfg.setInt("l1.size_bytes", 2 * mem::kLineBytes);
        cfg.setInt("l1.assoc", 2);
        cfg.setInt("l1.mshr_entries", 8);
        makeL1();
    }

    void
    makeL1()
    {
        domain = std::make_unique<TsDomain>(cfg, stats);
        l1 = std::make_unique<GtscL1>(0, cfg, stats, events, *domain,
                                      nullptr);
        l1->setSend([this](Packet &&p) { sent.push_back(p); });
        l1->setLoadDone([this](const Access &a, const AccessResult &r) {
            loadsDone.emplace_back(a, r);
        });
        l1->setStoreDone([this](const Access &a, Cycle) {
            storesDone.push_back(a);
        });
    }

    Access
    load(Addr line, WarpId warp)
    {
        Access a;
        a.lineAddr = line;
        a.wordMask = 1;
        a.warp = warp;
        a.id = nextId++;
        return a;
    }

    Access
    store(Addr line, WarpId warp, std::uint32_t value)
    {
        Access a = load(line, warp);
        a.isStore = true;
        a.storeData.setWord(0, value);
        return a;
    }

    Packet
    fill(Addr line, Ts wts, Ts rts, std::uint32_t word0 = 0)
    {
        Packet p;
        p.type = MsgType::BusFill;
        p.lineAddr = line;
        p.wts = wts;
        p.rts = rts;
        p.data.setWord(0, word0);
        return p;
    }

    void
    ackStore(Addr line, std::uint64_t req, Ts wts, Ts rts, Ts prev)
    {
        Packet ack;
        ack.type = MsgType::BusWrAck;
        ack.lineAddr = line;
        ack.reqId = req;
        ack.wts = wts;
        ack.rts = rts;
        ack.prevWts = prev;
        l1->receiveResponse(std::move(ack), now);
    }

    void
    advance(unsigned cycles = 12)
    {
        for (unsigned i = 0; i < cycles; ++i) {
            ++now;
            events.runUntil(now);
            l1->tick(now);
        }
    }

    void
    warm(Addr line, Ts wts = 1, Ts rts = 60000)
    {
        l1->access(load(line, 0), now);
        l1->receiveResponse(fill(line, wts, rts), now);
        advance();
        loadsDone.clear();
        sent.clear();
    }

    sim::Config cfg;
    sim::StatSet stats;
    sim::EventQueue events;
    std::unique_ptr<TsDomain> domain;
    std::unique_ptr<GtscL1> l1;
    std::vector<Packet> sent;
    std::vector<std::pair<Access, AccessResult>> loadsDone;
    std::vector<Access> storesDone;
    std::uint64_t nextId = 1;
    Cycle now = 0;
};

TEST_F(CornerFixture, FillBypassWhenAllWaysPinnedByStores)
{
    // Both ways of the single set hold lines with stores in flight.
    warm(0x000);
    warm(0x080);
    l1->access(store(0x000, 0, 1), now);
    l1->access(store(0x080, 1, 2), now);
    ASSERT_EQ(sent.size(), 2u);

    // A third line misses; its fill cannot evict either pinned way,
    // so the load completes straight from the packet (bypass).
    l1->access(load(0x100, 2), now);
    l1->receiveResponse(fill(0x100, 3, 30, 77), now);
    advance();
    ASSERT_EQ(loadsDone.size(), 1u);
    EXPECT_EQ(loadsDone[0].second.data.word(0), 77u);
    EXPECT_FALSE(loadsDone[0].second.l1Hit);
    EXPECT_EQ(stats.get("l1.fill_bypass"), 1u);

    // The line was not cached: a re-read cold-misses again.
    sent.clear();
    l1->access(load(0x100, 2), now);
    ASSERT_EQ(sent.size(), 1u);
    EXPECT_EQ(sent[0].wts, 0u);
}

TEST_F(CornerFixture, RenewalAfterEvictionRefetches)
{
    cfg.setInt("gtsc.spin_ts_boost", 30001);
    makeL1();
    warm(0x000);
    // Boost warp 1 beyond the lease so its load needs a renewal.
    l1->noteSpinRetry(1, 0x000);
    l1->noteSpinRetry(1, 0x000);
    l1->noteSpinRetry(1, 0x000);
    Ts boosted = l1->warpTs(1);
    ASSERT_GT(boosted, 60000u);
    // Shrink the lease to force an expired miss.
    // (The block's rts is 60000; boosted > rts.)
    l1->access(load(0x000, 1), now);
    ASSERT_EQ(sent.size(), 1u);
    EXPECT_EQ(sent[0].wts, 1u) << "renewal carries local wts";
    sent.clear();

    // While the renewal is in flight, two fills land on the set and
    // evict line 0x000 (LRU): the renewal response then finds no
    // block and the waiter must re-request with wts=0.
    l1->access(load(0x080, 0), now);
    l1->receiveResponse(fill(0x080, 2, 70000), now);
    l1->access(load(0x100, 0), now);
    l1->receiveResponse(fill(0x100, 2, 70000), now);
    advance();
    sent.clear();
    loadsDone.clear();

    Packet rnw;
    rnw.type = MsgType::BusRnw;
    rnw.lineAddr = 0x000;
    rnw.rts = boosted + 10;
    l1->receiveResponse(std::move(rnw), now);
    advance();
    ASSERT_EQ(sent.size(), 1u) << "waiter re-requested";
    EXPECT_EQ(sent[0].type, MsgType::BusRd);
    EXPECT_EQ(sent[0].wts, 0u) << "cold re-request after eviction";
    EXPECT_TRUE(loadsDone.empty());

    l1->receiveResponse(fill(0x000, 2, boosted + 10, 5), now);
    advance();
    ASSERT_EQ(loadsDone.size(), 1u);
    EXPECT_EQ(loadsDone[0].second.data.word(0), 5u);
}

TEST_F(CornerFixture, MixedWaitersReplayInOrder)
{
    // load(w1), store(w2), load(w3) all queued on a missing line:
    // the fill completes the first load from the old version, then
    // the store locks the line, and the last load waits for the ack.
    l1->access(load(0x000, 1), now);
    l1->access(store(0x000, 2, 99), now);
    l1->access(load(0x000, 3), now);
    ASSERT_EQ(sent.size(), 1u) << "one BusRd; others merged";

    l1->receiveResponse(fill(0x000, 1, 50, 11), now);
    advance();
    // First load done with the pre-store version.
    ASSERT_GE(loadsDone.size(), 1u);
    EXPECT_EQ(loadsDone[0].second.data.word(0), 11u);
    // The store went out.
    ASSERT_EQ(sent.size(), 2u);
    EXPECT_EQ(sent[1].type, MsgType::BusWr);
    // The trailing load is parked behind the store.
    EXPECT_EQ(loadsDone.size(), 1u);

    ackStore(0x000, sent[1].reqId, 51, 61, 1);
    advance();
    ASSERT_EQ(loadsDone.size(), 2u);
    EXPECT_EQ(loadsDone[1].second.data.word(0), 99u)
        << "post-store load sees the store";
    EXPECT_GE(loadsDone[1].second.loadTs, 51u);
}

TEST_F(CornerFixture, ForwardAllOutstandingBookkeeping)
{
    cfg.setBool("gtsc.combine_mshr", false);
    makeL1();
    l1->access(load(0x000, 0), now);
    l1->access(load(0x000, 1), now);
    l1->access(load(0x000, 2), now);
    ASSERT_EQ(sent.size(), 3u) << "forward-all: one request each";

    // First fill satisfies everyone whose warp_ts fits; the entry
    // must survive the remaining in-flight responses without
    // spawning new requests.
    l1->receiveResponse(fill(0x000, 1, 50, 7), now);
    advance();
    EXPECT_EQ(loadsDone.size(), 3u);
    sent.clear();
    l1->receiveResponse(fill(0x000, 1, 50, 7), now);
    l1->receiveResponse(fill(0x000, 1, 50, 7), now);
    advance();
    EXPECT_TRUE(sent.empty()) << "extra fills spawn no new requests";
    EXPECT_TRUE(l1->quiescent());
}

TEST_F(CornerFixture, SpinBoostClampsAtTsMax)
{
    warm(0x000);
    for (int i = 0; i < 100000; ++i)
        l1->noteSpinRetry(0, 0x000);
    EXPECT_LE(l1->warpTs(0), domain->tsMax());
}

} // namespace
