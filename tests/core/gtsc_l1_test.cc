/**
 * FSM-level tests of the G-TSC private-cache controller (Figures
 * 1a, 2, 3, 7, 8 and the Section V mechanisms), driving access()/
 * receiveResponse() directly and capturing outgoing packets.
 */

#include "core/gtsc_l1.hh"

#include <gtest/gtest.h>

#include "core/gtsc_builder.hh"

using namespace gtsc;
using core::GtscL1;
using core::TsDomain;
using mem::Access;
using mem::AccessResult;
using mem::MsgType;
using mem::Packet;

namespace
{

class GtscL1Fixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        cfg.setInt("gpu.warps_per_sm", 4);
        cfg.setInt("gpu.num_partitions", 2);
        cfg.setInt("l1.size_bytes", 2 * 1024);
        cfg.setInt("l1.assoc", 2);
        cfg.setInt("l1.mshr_entries", 4);
        cfg.setInt("gtsc.lease", 10);
        makeL1();
    }

    void
    makeL1()
    {
        domain = std::make_unique<TsDomain>(cfg, stats);
        l1 = std::make_unique<GtscL1>(0, cfg, stats, events, *domain,
                                      nullptr);
        l1->setSend([this](Packet &&p) { sent.push_back(p); });
        l1->setLoadDone([this](const Access &a, const AccessResult &r) {
            loadsDone.emplace_back(a, r);
        });
        l1->setStoreDone([this](const Access &a, Cycle) {
            storesDone.push_back(a);
        });
    }

    Access
    load(Addr line, WarpId warp, std::uint32_t mask = 0x1)
    {
        Access a;
        a.lineAddr = line;
        a.wordMask = mask;
        a.warp = warp;
        a.id = nextId++;
        return a;
    }

    Access
    store(Addr line, WarpId warp, std::uint32_t value,
          std::uint32_t mask = 0x1)
    {
        Access a = load(line, warp, mask);
        a.isStore = true;
        for (unsigned w = 0; w < mem::kWordsPerLine; ++w) {
            if (mask & (1u << w))
                a.storeData.setWord(w, value);
        }
        return a;
    }

    Packet
    fill(Addr line, Ts wts, Ts rts, std::uint32_t word0 = 0)
    {
        Packet p;
        p.type = MsgType::BusFill;
        p.lineAddr = line;
        p.wts = wts;
        p.rts = rts;
        p.data.setWord(0, word0);
        return p;
    }

    /** Advance the clock, running events and L1 replays. */
    void
    advance(unsigned cycles = 12)
    {
        for (unsigned i = 0; i < cycles; ++i) {
            ++now;
            events.runUntil(now);
            l1->tick(now);
        }
    }

    sim::Config cfg;
    sim::StatSet stats;
    sim::EventQueue events;
    std::unique_ptr<TsDomain> domain;
    std::unique_ptr<GtscL1> l1;
    std::vector<Packet> sent;
    std::vector<std::pair<Access, AccessResult>> loadsDone;
    std::vector<Access> storesDone;
    std::uint64_t nextId = 1;
    Cycle now = 0;
};

TEST_F(GtscL1Fixture, ColdMissSendsBusRdWithZeroWts)
{
    EXPECT_TRUE(l1->access(load(0x1000, 0), now));
    ASSERT_EQ(sent.size(), 1u);
    EXPECT_EQ(sent[0].type, MsgType::BusRd);
    EXPECT_EQ(sent[0].lineAddr, 0x1000u);
    EXPECT_EQ(sent[0].wts, 0u);
    EXPECT_EQ(sent[0].warpTs, 1u); // warps start at ts 1
    EXPECT_EQ(stats.get("l1.miss_cold"), 1u);
    EXPECT_EQ(stats.get("l1.renewals_sent"), 0u);
}

TEST_F(GtscL1Fixture, RequestsCombineInMshr)
{
    l1->access(load(0x1000, 0), now);
    l1->access(load(0x1000, 1), now);
    l1->access(load(0x1000, 2), now);
    EXPECT_EQ(sent.size(), 1u) << "one BusRd for three warps";
    EXPECT_EQ(stats.get("l1.merged"), 2u);

    l1->receiveResponse(fill(0x1000, 2, 12, 77), now);
    advance();
    EXPECT_EQ(loadsDone.size(), 3u);
    for (const auto &[a, r] : loadsDone) {
        EXPECT_EQ(r.data.word(0), 77u);
        EXPECT_GE(r.loadTs, 2u);
        EXPECT_LE(r.loadTs, 12u);
    }
}

TEST_F(GtscL1Fixture, HitAdvancesWarpTsToWts)
{
    l1->access(load(0x1000, 0), now);
    l1->receiveResponse(fill(0x1000, 5, 15), now);
    advance();
    loadsDone.clear();

    EXPECT_TRUE(l1->access(load(0x1000, 1), now));
    EXPECT_EQ(sent.size(), 1u) << "hit: no new request";
    EXPECT_EQ(l1->warpTs(1), 5u) << "warp ts = max(1, wts=5)";
    advance();
    ASSERT_EQ(loadsDone.size(), 1u);
    EXPECT_TRUE(loadsDone[0].second.l1Hit);
    EXPECT_EQ(loadsDone[0].second.loadTs, 5u);
    EXPECT_EQ(stats.get("l1.hits"), 1u);
}

TEST_F(GtscL1Fixture, ExpiredLeaseSendsRenewalWithLocalWts)
{
    l1->access(load(0x1000, 0), now);
    l1->receiveResponse(fill(0x1000, 5, 15), now);
    advance();
    sent.clear();

    // Spin boosts advance the warp's clock past the lease.
    l1->noteSpinRetry(0, 0x1000);
    l1->noteSpinRetry(0, 0x1000);
    ASSERT_GT(l1->warpTs(0), 15u);
    l1->access(load(0x1000, 0), now);
    ASSERT_EQ(sent.size(), 1u);
    EXPECT_EQ(sent[0].type, MsgType::BusRd);
    EXPECT_EQ(sent[0].wts, 5u) << "renewal carries the local wts";
    EXPECT_EQ(stats.get("l1.miss_expired"), 1u);
    EXPECT_EQ(stats.get("l1.renewals_sent"), 1u);
}

TEST_F(GtscL1Fixture, RenewalResponseExtendsLeaseAndCompletes)
{
    l1->access(load(0x1000, 0), now);
    l1->receiveResponse(fill(0x1000, 5, 15, 42), now);
    advance();
    l1->noteSpinRetry(0, 0x1000);
    l1->noteSpinRetry(0, 0x1000);
    Ts boosted = l1->warpTs(0);
    l1->access(load(0x1000, 0), now);
    loadsDone.clear();

    Packet rnw;
    rnw.type = MsgType::BusRnw;
    rnw.lineAddr = 0x1000;
    rnw.rts = boosted + 10;
    l1->receiveResponse(std::move(rnw), now);
    advance();
    ASSERT_EQ(loadsDone.size(), 1u);
    EXPECT_EQ(loadsDone[0].second.data.word(0), 42u)
        << "renewal reuses the cached data";
    EXPECT_EQ(loadsDone[0].second.loadTs, boosted);
}

TEST_F(GtscL1Fixture, StoreIsWriteThroughAndLocksLine)
{
    l1->access(load(0x1000, 0), now);
    l1->receiveResponse(fill(0x1000, 5, 15), now);
    advance();
    sent.clear();

    // Store from warp 1.
    l1->access(store(0x1000, 1, 99), now);
    ASSERT_EQ(sent.size(), 1u);
    EXPECT_EQ(sent[0].type, MsgType::BusWr);
    EXPECT_EQ(sent[0].data.word(0), 99u);
    std::uint64_t req = sent[0].reqId;

    // Update visibility (option 1): loads to the line are blocked.
    loadsDone.clear();
    l1->access(load(0x1000, 2), now);
    advance();
    EXPECT_TRUE(loadsDone.empty()) << "load must wait for the ack";
    EXPECT_EQ(stats.get("l1.lock_parks"), 1u);

    // Ack completes the store, updates the lease, releases waiters.
    Packet ack;
    ack.type = MsgType::BusWrAck;
    ack.lineAddr = 0x1000;
    ack.reqId = req;
    ack.wts = 16;
    ack.rts = 26;
    ack.prevWts = 5;
    l1->receiveResponse(std::move(ack), now);
    advance();
    EXPECT_EQ(storesDone.size(), 1u);
    EXPECT_EQ(l1->warpTs(1), 16u) << "writer warp ts matches wts";
    ASSERT_EQ(loadsDone.size(), 1u);
    EXPECT_EQ(loadsDone[0].second.data.word(0), 99u);
    EXPECT_GE(loadsDone[0].second.loadTs, 16u);
}

TEST_F(GtscL1Fixture, StaleBaseVersionInvalidatesOnAck)
{
    l1->access(load(0x1000, 0), now);
    l1->receiveResponse(fill(0x1000, 5, 15), now);
    advance();
    sent.clear();

    l1->access(store(0x1000, 1, 99), now);
    std::uint64_t req = sent[0].reqId;

    // Another SM's store interleaved at L2: prevWts != our base (5).
    Packet ack;
    ack.type = MsgType::BusWrAck;
    ack.lineAddr = 0x1000;
    ack.reqId = req;
    ack.wts = 30;
    ack.rts = 40;
    ack.prevWts = 20;
    l1->receiveResponse(std::move(ack), now);
    advance();
    EXPECT_EQ(stats.get("l1.store_base_stale"), 1u);

    // Next load must miss (the local copy self-invalidated).
    sent.clear();
    l1->access(load(0x1000, 2), now);
    ASSERT_EQ(sent.size(), 1u);
    EXPECT_EQ(sent[0].type, MsgType::BusRd);
    EXPECT_EQ(sent[0].wts, 0u);
}

TEST_F(GtscL1Fixture, StoreMissDoesNotAllocate)
{
    l1->access(store(0x2000, 0, 7), now);
    ASSERT_EQ(sent.size(), 1u);
    EXPECT_EQ(sent[0].type, MsgType::BusWr);

    Packet ack;
    ack.type = MsgType::BusWrAck;
    ack.lineAddr = 0x2000;
    ack.reqId = sent[0].reqId;
    ack.wts = 11;
    ack.rts = 21;
    l1->receiveResponse(std::move(ack), now);
    advance();
    EXPECT_EQ(storesDone.size(), 1u);

    // Line is still not resident: a load cold-misses.
    sent.clear();
    l1->access(load(0x2000, 0), now);
    ASSERT_EQ(sent.size(), 1u);
    EXPECT_EQ(sent[0].wts, 0u);
    EXPECT_EQ(stats.get("l1.miss_cold"), 1u);
}

TEST_F(GtscL1Fixture, DualCopyOptionServesOldDataToOtherWarps)
{
    cfg.set("gtsc.update_visibility", "dualcopy");
    makeL1();

    l1->access(load(0x1000, 0), now);
    l1->receiveResponse(fill(0x1000, 5, 15, 42), now);
    advance();
    sent.clear();
    loadsDone.clear();

    l1->access(store(0x1000, 1, 99), now);
    // Another warp reads the *old* copy (write atomicity relaxed in
    // logical order: the read is logically before the store).
    l1->access(load(0x1000, 2), now);
    advance();
    ASSERT_EQ(loadsDone.size(), 1u);
    EXPECT_EQ(loadsDone[0].second.data.word(0), 42u);
    // The writer itself must wait.
    loadsDone.clear();
    l1->access(load(0x1000, 1), now);
    advance();
    EXPECT_TRUE(loadsDone.empty());

    Packet ack;
    ack.type = MsgType::BusWrAck;
    ack.lineAddr = 0x1000;
    ack.reqId = sent[0].reqId;
    ack.wts = 16;
    ack.rts = 26;
    ack.prevWts = 5;
    l1->receiveResponse(std::move(ack), now);
    advance();
    ASSERT_EQ(loadsDone.size(), 1u);
    EXPECT_EQ(loadsDone[0].second.data.word(0), 99u)
        << "after the ack the writer sees its own store";
}

TEST_F(GtscL1Fixture, ForwardAllSendsOneRequestPerWarp)
{
    cfg.setBool("gtsc.combine_mshr", false);
    makeL1();
    l1->access(load(0x1000, 0), now);
    l1->access(load(0x1000, 1), now);
    l1->access(load(0x1000, 2), now);
    EXPECT_EQ(sent.size(), 3u) << "forward-all: no combining";
}

TEST_F(GtscL1Fixture, MshrFullRejects)
{
    for (Addr line = 0; line < 4; ++line)
        EXPECT_TRUE(l1->access(load(0x10000 + line * 128, 0), now));
    EXPECT_FALSE(l1->access(load(0x20000, 1), now));
    EXPECT_EQ(stats.get("l1.rejects_mshr_full"), 1u);
}

TEST_F(GtscL1Fixture, TsResetResponseFlushesAndRewinds)
{
    l1->access(load(0x1000, 0), now);
    l1->receiveResponse(fill(0x1000, 5, 15), now);
    advance();
    ASSERT_EQ(l1->warpTs(0), 5u);

    // The domain resets (as if another bank overflowed); a response
    // carrying the new epoch makes this L1 adopt it.
    domain->triggerReset(now);
    Packet f = fill(0x2000, 1, 10);
    f.epoch = 1;
    f.tsReset = true;
    l1->access(load(0x2000, 0), now); // re-request in flight
    l1->receiveResponse(std::move(f), now);
    advance();
    EXPECT_EQ(l1->warpTs(0), 1u) << "warp timestamps rewound";
    // The pre-reset line was flushed.
    sent.clear();
    l1->access(load(0x1000, 1), now);
    ASSERT_EQ(sent.size(), 1u);
    EXPECT_EQ(sent[0].wts, 0u) << "cold after flush";
}

TEST_F(GtscL1Fixture, KernelFlushResetsWarpTimestamps)
{
    l1->access(load(0x1000, 0), now);
    l1->receiveResponse(fill(0x1000, 7, 17), now);
    advance();
    EXPECT_EQ(l1->warpTs(0), 7u);
    EXPECT_TRUE(l1->quiescent());
    l1->flush(now);
    EXPECT_EQ(l1->warpTs(0), 1u);
    sent.clear();
    l1->access(load(0x1000, 0), now);
    EXPECT_EQ(stats.get("l1.miss_cold"), 2u);
}

TEST_F(GtscL1Fixture, SecondStoreToLineWaitsForFirst)
{
    l1->access(load(0x1000, 0), now);
    l1->receiveResponse(fill(0x1000, 5, 15), now);
    advance();
    sent.clear();

    l1->access(store(0x1000, 0, 1), now);
    l1->access(store(0x1000, 1, 2), now);
    EXPECT_EQ(sent.size(), 1u) << "second store parks behind first";

    Packet ack;
    ack.type = MsgType::BusWrAck;
    ack.lineAddr = 0x1000;
    ack.reqId = sent[0].reqId;
    ack.wts = 16;
    ack.rts = 26;
    ack.prevWts = 5;
    l1->receiveResponse(std::move(ack), now);
    advance();
    ASSERT_EQ(sent.size(), 2u) << "second store released";
    EXPECT_EQ(sent[1].type, MsgType::BusWr);
    EXPECT_EQ(sent[1].data.word(0), 2u);
}

} // namespace
