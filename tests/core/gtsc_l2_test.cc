/**
 * FSM-level tests of the G-TSC shared-cache controller (Figures 1b,
 * 4, 5, 6; non-inclusion Sec V-C; overflow Sec V-D).
 */

#include "core/gtsc_l2.hh"

#include <gtest/gtest.h>

using namespace gtsc;
using core::GtscL2;
using core::TsDomain;
using mem::MsgType;
using mem::Packet;

namespace
{

class GtscL2Fixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        cfg.setInt("l2.partition_bytes", 1024); // 8 lines
        cfg.setInt("l2.assoc", 2);
        cfg.setInt("l2.access_latency", 2);
        cfg.setInt("gtsc.lease", 10);
        makeL2();
    }

    void
    makeL2()
    {
        domain = std::make_unique<TsDomain>(cfg, stats);
        dram = std::make_unique<mem::DramChannel>(cfg, stats, events,
                                                  memory, "dram");
        l2 = std::make_unique<GtscL2>(0, cfg, stats, events, *dram,
                                      memory, *domain, nullptr);
        l2->setSend([this](Packet &&p) { sent.push_back(p); });
    }

    Packet
    busRd(Addr line, Ts wts, Ts warp_ts, SmId src = 0)
    {
        Packet p;
        p.type = MsgType::BusRd;
        p.lineAddr = line;
        p.wts = wts;
        p.warpTs = warp_ts;
        p.src = src;
        p.reqId = nextId++;
        return p;
    }

    Packet
    busWr(Addr line, Ts warp_ts, std::uint32_t value, SmId src = 0)
    {
        Packet p;
        p.type = MsgType::BusWr;
        p.lineAddr = line;
        p.warpTs = warp_ts;
        p.wordMask = 0x1;
        p.data.setWord(0, value);
        p.src = src;
        p.reqId = nextId++;
        return p;
    }

    /** Run until responses drain (or the cycle budget runs out). */
    void
    advance(unsigned cycles = 400)
    {
        for (unsigned i = 0; i < cycles; ++i) {
            ++now;
            events.runUntil(now);
            l2->tick(now);
            dram->tick(now);
        }
    }

    const Packet *
    lastOfType(MsgType t) const
    {
        for (auto it = sent.rbegin(); it != sent.rend(); ++it) {
            if (it->type == t)
                return &*it;
        }
        return nullptr;
    }

    sim::Config cfg;
    sim::StatSet stats;
    sim::EventQueue events;
    mem::MainMemory memory;
    std::unique_ptr<TsDomain> domain;
    std::unique_ptr<mem::DramChannel> dram;
    std::unique_ptr<GtscL2> l2;
    std::vector<Packet> sent;
    std::uint64_t nextId = 1;
    Cycle now = 0;
};

TEST_F(GtscL2Fixture, MissFetchesFromDramAndFills)
{
    memory.writeWord(0x1000, 123);
    l2->receiveRequest(busRd(0x1000, 0, 1), now);
    advance();
    ASSERT_EQ(sent.size(), 1u);
    EXPECT_EQ(sent[0].type, MsgType::BusFill);
    EXPECT_EQ(sent[0].data.word(0), 123u);
    EXPECT_EQ(sent[0].wts, 1u) << "wts = mem_ts";
    EXPECT_EQ(sent[0].rts, 11u) << "rts = mem_ts + lease";
    EXPECT_EQ(stats.get("l2.misses"), 1u);
    EXPECT_TRUE(l2->quiescent());
}

TEST_F(GtscL2Fixture, MatchingWtsYieldsDataLessRenewal)
{
    l2->receiveRequest(busRd(0x1000, 0, 1), now);
    advance();
    sent.clear();
    // Requester still has version wts=1; warp clock moved to 20.
    l2->receiveRequest(busRd(0x1000, 1, 20), now);
    advance();
    ASSERT_EQ(sent.size(), 1u);
    EXPECT_EQ(sent[0].type, MsgType::BusRnw);
    EXPECT_EQ(sent[0].rts, 30u) << "rts = warp_ts + lease";
    EXPECT_EQ(stats.get("l2.renewals"), 1u);
}

TEST_F(GtscL2Fixture, MismatchedWtsYieldsFill)
{
    l2->receiveRequest(busRd(0x1000, 0, 1), now);
    advance();
    l2->receiveRequest(busWr(0x1000, 1, 99), now);
    advance();
    sent.clear();
    // Requester has the old version (wts=1): data changed -> fill.
    l2->receiveRequest(busRd(0x1000, 1, 2), now);
    advance();
    ASSERT_EQ(sent.size(), 1u);
    EXPECT_EQ(sent[0].type, MsgType::BusFill);
    EXPECT_EQ(sent[0].data.word(0), 99u);
}

TEST_F(GtscL2Fixture, StoreSchedulesAfterOutstandingLeases)
{
    // Fig 9 step 8: write to a block leased to [1,11] gets wts 12.
    l2->receiveRequest(busRd(0x1000, 0, 1), now);
    advance();
    sent.clear();
    l2->receiveRequest(busWr(0x1000, 1, 55), now);
    advance();
    ASSERT_EQ(sent.size(), 1u);
    EXPECT_EQ(sent[0].type, MsgType::BusWrAck);
    EXPECT_EQ(sent[0].wts, 12u) << "wts = rts + 1, no stall";
    EXPECT_EQ(sent[0].rts, 22u);
    EXPECT_EQ(sent[0].prevWts, 1u);
}

TEST_F(GtscL2Fixture, StoreWithLargeWarpTsUsesIt)
{
    l2->receiveRequest(busRd(0x1000, 0, 1), now);
    advance();
    sent.clear();
    l2->receiveRequest(busWr(0x1000, 50, 55), now);
    advance();
    ASSERT_EQ(sent[0].wts, 50u) << "wts = max(rts+1, warp_ts)";
}

TEST_F(GtscL2Fixture, StoreMissFetchesThenPerforms)
{
    memory.writeWord(0x1004, 7);
    l2->receiveRequest(busWr(0x1000, 1, 55), now);
    advance();
    ASSERT_EQ(sent.size(), 1u);
    EXPECT_EQ(sent[0].type, MsgType::BusWrAck);
    sent.clear();
    // Line now holds merged data: DRAM word 1 preserved.
    l2->receiveRequest(busRd(0x1000, 0, 1), now);
    advance();
    ASSERT_EQ(sent.size(), 1u);
    EXPECT_EQ(sent[0].data.word(0), 55u);
    EXPECT_EQ(sent[0].data.word(1), 7u);
}

TEST_F(GtscL2Fixture, EvictionFoldsRtsIntoMemTs)
{
    // 8 lines, 2-way, 4 sets: lines 0x000,0x200,0x400 share set 0.
    l2->receiveRequest(busRd(0x000, 0, 30), now); // rts 40
    advance();
    l2->receiveRequest(busRd(0x200, 0, 1), now);
    advance();
    l2->receiveRequest(busRd(0x400, 0, 1), now); // evicts 0x000
    advance();
    EXPECT_EQ(stats.get("l2.evictions"), 1u);
    EXPECT_GE(l2->memTs(), 40u) << "mem_ts >= evicted rts";

    // Refetch of the evicted line starts at mem_ts.
    sent.clear();
    l2->receiveRequest(busRd(0x000, 0, 1), now);
    advance();
    const Packet *f = lastOfType(MsgType::BusFill);
    ASSERT_NE(f, nullptr);
    EXPECT_GE(f->wts, 40u);
}

TEST_F(GtscL2Fixture, DirtyEvictionWritesBack)
{
    l2->receiveRequest(busWr(0x000, 1, 99), now);
    advance();
    l2->receiveRequest(busRd(0x200, 0, 1), now);
    advance();
    l2->receiveRequest(busRd(0x400, 0, 1), now);
    advance();
    EXPECT_EQ(stats.get("l2.writebacks"), 1u);
    advance(200); // drain the DRAM write
    EXPECT_EQ(memory.readWord(0x000), 99u);
}

TEST_F(GtscL2Fixture, RequestsToMissingLineMergeInL2Mshr)
{
    l2->receiveRequest(busRd(0x1000, 0, 1, 0), now);
    l2->receiveRequest(busRd(0x1000, 0, 1, 1), now);
    l2->receiveRequest(busWr(0x1000, 1, 5, 2), now);
    advance();
    EXPECT_EQ(stats.get("l2.misses"), 1u) << "one DRAM fetch";
    EXPECT_EQ(stats.get("dram.reads"), 1u);
    unsigned fills = 0;
    unsigned acks = 0;
    for (const auto &p : sent) {
        fills += (p.type == MsgType::BusFill);
        acks += (p.type == MsgType::BusWrAck);
    }
    EXPECT_EQ(fills, 2u);
    EXPECT_EQ(acks, 1u);
}

TEST_F(GtscL2Fixture, OverflowTriggersDomainReset)
{
    l2->receiveRequest(busRd(0x1000, 0, 1), now);
    advance();
    sent.clear();
    // A renewal that would push rts past tsMax forces a reset.
    Ts huge = domain->tsMax() - 2;
    l2->receiveRequest(busRd(0x1000, 1, huge), now);
    advance();
    EXPECT_EQ(domain->epoch(), 1u);
    EXPECT_EQ(stats.get("gtsc.ts_resets"), 1u);
    ASSERT_EQ(sent.size(), 1u);
    EXPECT_TRUE(sent[0].tsReset);
    EXPECT_LE(sent[0].rts, domain->tsMax());
    EXPECT_EQ(l2->memTs(), 1u) << "mem_ts rewound";
}

TEST_F(GtscL2Fixture, StaleEpochRequestIsNormalized)
{
    l2->receiveRequest(busRd(0x1000, 0, 1), now);
    advance();
    domain->triggerReset(now);
    sent.clear();
    // A pre-reset request with a huge warp ts must not re-overflow.
    Packet p = busRd(0x1000, 0, domain->tsMax() - 1);
    p.epoch = 0;
    l2->receiveRequest(std::move(p), now);
    advance();
    ASSERT_EQ(sent.size(), 1u);
    EXPECT_TRUE(sent[0].tsReset);
    EXPECT_EQ(sent[0].rts, 1u + domain->lease());
    EXPECT_EQ(domain->epoch(), 1u) << "no second reset";
}

TEST_F(GtscL2Fixture, AdaptiveLeaseGrowsWithRenewals)
{
    cfg.setBool("gtsc.adaptive_lease", true);
    cfg.setInt("gtsc.max_lease", 80);
    makeL2();

    l2->receiveRequest(busRd(0x1000, 0, 1), now);
    advance();
    sent.clear();

    // Consecutive renewals: each grant stretches the lease.
    Ts prev_span = 0;
    Ts warp_ts = 20;
    for (int i = 0; i < 3; ++i) {
        l2->receiveRequest(busRd(0x1000, 1, warp_ts), now);
        advance();
        ASSERT_EQ(sent.back().type, MsgType::BusRnw);
        Ts span = sent.back().rts - warp_ts;
        EXPECT_GT(span, prev_span) << "lease grew on renewal " << i;
        prev_span = span;
        warp_ts = sent.back().rts + 1;
    }
    EXPECT_GT(stats.get("gtsc.adaptive_extensions"), 0u);

    // The growth is capped at gtsc.max_lease.
    for (int i = 0; i < 6; ++i) {
        l2->receiveRequest(busRd(0x1000, 1, warp_ts), now);
        advance();
        warp_ts = sent.back().rts + 1;
    }
    EXPECT_LE(sent.back().rts - (warp_ts - 1),
              80u + 1u); // span <= max lease

    // A store resets the prediction.
    l2->receiveRequest(busWr(0x1000, warp_ts, 9), now);
    advance();
    Ts store_rts = sent.back().rts;
    Ts store_wts = sent.back().wts;
    EXPECT_EQ(store_rts - store_wts, 10u)
        << "store lease back to the base value";
}

TEST_F(GtscL2Fixture, FlushWritesBackAndPreservesMemTs)
{
    l2->receiveRequest(busWr(0x1000, 30, 42), now);
    advance();
    Ts rts_before = 0;
    for (const auto &p : sent) {
        if (p.type == MsgType::BusWrAck)
            rts_before = p.rts;
    }
    ASSERT_GT(rts_before, 0u);
    l2->flushAll(now);
    EXPECT_EQ(memory.readWord(0x1000), 42u);
    EXPECT_GE(l2->memTs(), rts_before);
}

} // namespace
