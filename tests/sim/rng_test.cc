#include "sim/rng.hh"

#include <gtest/gtest.h>

using gtsc::sim::Rng;

TEST(Rng, DeterministicForSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        auto v = r.below(17);
        EXPECT_LT(v, 17u);
    }
}

TEST(Rng, BelowCoversRange)
{
    Rng r(11);
    bool seen[8] = {};
    for (int i = 0; i < 500; ++i)
        seen[r.below(8)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(3);
    double sum = 0;
    for (int i = 0; i < 2000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 2000.0, 0.5, 0.05);
}
