#include "sim/config.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>

using gtsc::sim::Config;

TEST(Config, DefaultsReturnedWhenUnset)
{
    Config cfg;
    EXPECT_EQ(cfg.getInt("a.b", 42), 42);
    EXPECT_EQ(cfg.getUint("a.c", 7u), 7u);
    EXPECT_DOUBLE_EQ(cfg.getDouble("a.d", 1.5), 1.5);
    EXPECT_TRUE(cfg.getBool("a.e", true));
    EXPECT_EQ(cfg.getString("a.f", "x"), "x");
}

TEST(Config, SetOverridesDefault)
{
    Config cfg;
    cfg.setInt("k", 9);
    EXPECT_EQ(cfg.getInt("k", 1), 9);
    cfg.set("s", "hello");
    EXPECT_EQ(cfg.getString("s", ""), "hello");
    cfg.setBool("b", false);
    EXPECT_FALSE(cfg.getBool("b", true));
    cfg.setDouble("d", 2.25);
    EXPECT_DOUBLE_EQ(cfg.getDouble("d", 0), 2.25);
}

TEST(Config, BoolParsesCommonSpellings)
{
    Config cfg;
    cfg.set("t1", "true");
    cfg.set("t2", "1");
    cfg.set("t3", "on");
    cfg.set("f1", "false");
    cfg.set("f2", "0");
    cfg.set("f3", "off");
    EXPECT_TRUE(cfg.getBool("t1", false));
    EXPECT_TRUE(cfg.getBool("t2", false));
    EXPECT_TRUE(cfg.getBool("t3", false));
    EXPECT_FALSE(cfg.getBool("f1", true));
    EXPECT_FALSE(cfg.getBool("f2", true));
    EXPECT_FALSE(cfg.getBool("f3", true));
}

TEST(Config, MalformedValuesAreFatal)
{
    Config cfg;
    cfg.set("n", "not-a-number");
    EXPECT_THROW(cfg.getInt("n", 0), std::runtime_error);
    EXPECT_THROW(cfg.getDouble("n", 0), std::runtime_error);
    EXPECT_THROW(cfg.getBool("n", false), std::runtime_error);
}

TEST(Config, ParseOverride)
{
    Config cfg;
    EXPECT_TRUE(cfg.parseOverride("gpu.num_sms=4"));
    EXPECT_EQ(cfg.getInt("gpu.num_sms", 0), 4);
    EXPECT_FALSE(cfg.parseOverride("no-equals"));
    EXPECT_FALSE(cfg.parseOverride("=value"));
    EXPECT_THROW(cfg.parseOverrides({"bad"}), std::runtime_error);
}

TEST(Config, HexIntegersAccepted)
{
    Config cfg;
    cfg.set("addr", "0x100");
    EXPECT_EQ(cfg.getUint("addr", 0), 0x100u);
}

TEST(Config, EffectiveIncludesConsultedDefaults)
{
    Config cfg;
    cfg.setInt("x", 1);
    (void)cfg.getInt("y", 5);
    auto eff = cfg.effective();
    EXPECT_EQ(eff.at("x"), "1");
    EXPECT_EQ(eff.at("y"), "5");
    EXPECT_NE(cfg.toString().find("x=1"), std::string::npos);
}

TEST(Config, LoadFileParsesKeyValueLines)
{
    std::string path = "/tmp/gtsc_config_test.conf";
    {
        std::ofstream out(path);
        out << "# a comment\n"
            << "gpu.num_sms = 4\n"
            << "\n"
            << "gtsc.lease=12   # trailing comment\n";
    }
    Config cfg;
    cfg.loadFile(path);
    EXPECT_EQ(cfg.getInt("gpu.num_sms", 0), 4);
    EXPECT_EQ(cfg.getInt("gtsc.lease", 0), 12);
    std::remove(path.c_str());
}

TEST(Config, LoadFileErrors)
{
    Config cfg;
    EXPECT_THROW(cfg.loadFile("/nonexistent.conf"),
                 std::runtime_error);
    std::string path = "/tmp/gtsc_config_bad.conf";
    {
        std::ofstream out(path);
        out << "not-a-pair\n";
    }
    EXPECT_THROW(cfg.loadFile(path), std::runtime_error);
    std::remove(path.c_str());
}

TEST(Config, CanonicalValueNormalizesSpellings)
{
    // Booleans: every spelling getBool() accepts collapses to 1/0.
    EXPECT_EQ(Config::canonicalValue("true"), "1");
    EXPECT_EQ(Config::canonicalValue("yes"), "1");
    EXPECT_EQ(Config::canonicalValue("on"), "1");
    EXPECT_EQ(Config::canonicalValue("false"), "0");
    EXPECT_EQ(Config::canonicalValue("no"), "0");
    EXPECT_EQ(Config::canonicalValue("off"), "0");
    // Integers: same base-0 parse the getters use, so hex/octal
    // spellings of one knob value canonicalize identically.
    EXPECT_EQ(Config::canonicalValue("16"), "16");
    EXPECT_EQ(Config::canonicalValue("0x10"), "16");
    EXPECT_EQ(Config::canonicalValue("020"), "16");
    EXPECT_EQ(Config::canonicalValue("-5"), "-5");
    // Non-integer values must pass through verbatim — changing what
    // a getter would see is worse than missing a dedup.
    EXPECT_EQ(Config::canonicalValue("1.5"), "1.5");
    EXPECT_EQ(Config::canonicalValue("2x"), "2x");
    EXPECT_EQ(Config::canonicalValue(""), "");
    EXPECT_EQ(Config::canonicalValue("rr"), "rr");
    EXPECT_EQ(Config::canonicalValue("999999999999999999999999"),
              "999999999999999999999999");
}

TEST(Config, CanonicalStringInvariantUnderOrderAndSpelling)
{
    Config a;
    a.set("gpu.num_sms", "0x10");
    a.set("check.enabled", "true");
    a.set("wl.name", "bh");

    Config b; // reversed insertion order, different spellings
    b.set("wl.name", "bh");
    b.set("check.enabled", "1");
    b.setInt("gpu.num_sms", 16);

    EXPECT_EQ(a.canonicalString(), b.canonicalString());
    EXPECT_EQ(a.canonicalString(),
              "check.enabled=1\ngpu.num_sms=16\nwl.name=bh\n");

    // Different knob *values* must stay distinguishable.
    Config c = a;
    c.setInt("gpu.num_sms", 8);
    EXPECT_NE(a.canonicalString(), c.canonicalString());
}
