#include "sim/time_wheel.hh"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

using gtsc::sim::TimeWheel;
using gtsc::Cycle;
using gtsc::kCycleNever;

namespace
{

std::vector<std::uint32_t> pop(TimeWheel &w, Cycle now)
{
    std::vector<std::uint32_t> due;
    w.popDue(now, due);
    return due;
}

} // namespace

TEST(TimeWheel, StartsParked)
{
    TimeWheel w(4);
    EXPECT_FALSE(w.anyArmed());
    EXPECT_EQ(w.nextWake(), kCycleNever);
    EXPECT_TRUE(pop(w, 100).empty());
}

TEST(TimeWheel, PopsDueAscendingAndDisarms)
{
    TimeWheel w(8);
    w.arm(5, 10);
    w.arm(2, 10);
    w.arm(7, 11);
    EXPECT_EQ(w.nextWake(), 10u);
    EXPECT_TRUE(pop(w, 9).empty());
    EXPECT_EQ(pop(w, 10), (std::vector<std::uint32_t>{2, 5}));
    EXPECT_FALSE(w.armed(2));
    EXPECT_TRUE(w.armed(7));
    EXPECT_EQ(w.nextWake(), 11u);
    EXPECT_EQ(pop(w, 11), (std::vector<std::uint32_t>{7}));
    EXPECT_FALSE(w.anyArmed());
}

TEST(TimeWheel, MinMergeKeepsEarliestArm)
{
    TimeWheel w(2);
    w.arm(0, 20);
    w.arm(0, 5); // earlier wins
    w.arm(0, 30); // later is a no-op
    EXPECT_EQ(w.armedAt(0), 5u);
    EXPECT_EQ(pop(w, 5), (std::vector<std::uint32_t>{0}));
    // The stale entries for 20 and 30 must not resurrect the id.
    EXPECT_TRUE(pop(w, 40).empty());
}

TEST(TimeWheel, WakeAtCurrentCycleDefersToNextPop)
{
    TimeWheel w(2);
    // Drain through cycle 7, then wake "at" 7 — the component's
    // phase already passed, so it becomes due at the next cycle.
    EXPECT_TRUE(pop(w, 7).empty());
    w.arm(1, 7);
    EXPECT_EQ(w.armedAt(1), 8u);
    EXPECT_EQ(w.nextWake(), 8u);
    EXPECT_EQ(pop(w, 8), (std::vector<std::uint32_t>{1}));
}

TEST(TimeWheel, ReArmWhileParkedAfterPop)
{
    TimeWheel w(3, 16);
    w.arm(2, 4);
    EXPECT_EQ(pop(w, 4), (std::vector<std::uint32_t>{2}));
    w.arm(2, 9);
    EXPECT_EQ(w.nextWake(), 9u);
    EXPECT_TRUE(pop(w, 8).empty());
    EXPECT_EQ(pop(w, 9), (std::vector<std::uint32_t>{2}));
}

TEST(TimeWheel, BucketWrapAround)
{
    TimeWheel w(4, 8); // ring of 8 buckets
    // Repeated arm/pop cycles that lap the ring several times, with
    // two ids sharing a bucket index across generations.
    for (Cycle c = 1; c <= 40; ++c) {
        w.arm(c % 4u, c + 3);      // near arm
        w.arm(3, c + 11);          // next generation of same buckets
        auto due = pop(w, c);
        for (std::uint32_t id : due)
            EXPECT_EQ(w.armedAt(id), kCycleNever);
    }
    // Drain everything left.
    auto rest = pop(w, 100);
    EXPECT_FALSE(w.anyArmed());
    EXPECT_FALSE(rest.empty());
}

TEST(TimeWheel, SameBucketDifferentGenerations)
{
    TimeWheel w(4, 8);
    EXPECT_TRUE(pop(w, 0).empty()); // frontier at 1
    w.arm(0, 3);
    w.arm(1, 3 + 8); // overflow: lands in heap, same ring index
    EXPECT_EQ(pop(w, 3), (std::vector<std::uint32_t>{0}));
    EXPECT_TRUE(pop(w, 10).empty());
    EXPECT_EQ(pop(w, 11), (std::vector<std::uint32_t>{1}));
}

TEST(TimeWheel, OverflowHeapFarArms)
{
    TimeWheel w(5, 8);
    w.arm(0, 1000);
    w.arm(1, 500);
    w.arm(2, 2);
    EXPECT_EQ(w.nextWake(), 2u);
    EXPECT_EQ(pop(w, 2), (std::vector<std::uint32_t>{2}));
    EXPECT_EQ(w.nextWake(), 500u);
    // Jump straight past both far arms: one popDue finds both.
    EXPECT_EQ(pop(w, 1000), (std::vector<std::uint32_t>{0, 1}));
    EXPECT_FALSE(w.anyArmed());
}

TEST(TimeWheel, HeapEntryGoesStaleWhenReArmedEarlier)
{
    TimeWheel w(2, 8);
    w.arm(0, 900); // heap
    w.arm(0, 3);   // ring, earlier — heap entry now stale
    EXPECT_EQ(pop(w, 3), (std::vector<std::uint32_t>{0}));
    EXPECT_TRUE(pop(w, 900).empty());
    // Parked again: a fresh arm after staleness still works.
    w.arm(0, 950);
    EXPECT_EQ(pop(w, 950), (std::vector<std::uint32_t>{0}));
}

TEST(TimeWheel, LongJumpSweepsEachBucketOnce)
{
    TimeWheel w(6, 8);
    for (std::uint32_t id = 0; id < 6; ++id)
        w.arm(id, 2 + id);
    // Jump far beyond the ring span in one pop.
    EXPECT_EQ(pop(w, 1 << 20),
              (std::vector<std::uint32_t>{0, 1, 2, 3, 4, 5}));
    EXPECT_FALSE(w.anyArmed());
    // Frontier moved: new arms clamp to the post-jump cycle.
    w.arm(0, 5);
    EXPECT_EQ(w.armedAt(0), (1u << 20) + 1);
}

TEST(TimeWheel, ResetParksEverything)
{
    TimeWheel w(3);
    w.arm(0, 5);
    w.arm(1, 600);
    w.reset(3);
    EXPECT_FALSE(w.anyArmed());
    EXPECT_TRUE(pop(w, 1000).empty());
    w.arm(2, 1001);
    EXPECT_EQ(pop(w, 1001), (std::vector<std::uint32_t>{2}));
}
