#include "sim/thread_pool.hh"

#include <atomic>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

using gtsc::sim::ThreadPool;

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.workers(), 4u);
    std::atomic<std::uint64_t> sum{0};
    constexpr std::uint64_t kTasks = 500;
    for (std::uint64_t i = 1; i <= kTasks; ++i)
        pool.submit([&sum, i] { sum.fetch_add(i); });
    pool.wait();
    EXPECT_EQ(sum.load(), kTasks * (kTasks + 1) / 2);
}

TEST(ThreadPool, SingleWorkerStillDrains)
{
    ThreadPool pool(1);
    std::atomic<unsigned> ran{0};
    for (unsigned i = 0; i < 64; ++i)
        pool.submit([&ran] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 64u);
}

TEST(ThreadPool, NestedSubmitFromTask)
{
    // A running task may enqueue follow-up work; wait() must not
    // return until the whole transitive closure has drained.
    ThreadPool pool(3);
    std::atomic<unsigned> ran{0};
    for (unsigned i = 0; i < 8; ++i) {
        pool.submit([&pool, &ran] {
            ran.fetch_add(1);
            pool.submit([&ran] { ran.fetch_add(1); });
        });
    }
    pool.wait();
    EXPECT_EQ(ran.load(), 16u);
}

TEST(ThreadPool, WaitIsReusable)
{
    ThreadPool pool(2);
    std::atomic<unsigned> ran{0};
    pool.submit([&ran] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 1u);
    pool.submit([&ran] { ran.fetch_add(1); });
    pool.submit([&ran] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 3u);
}

TEST(ThreadPool, DestructorDrainsQueuedWork)
{
    std::atomic<unsigned> ran{0};
    {
        ThreadPool pool(2);
        for (unsigned i = 0; i < 32; ++i)
            pool.submit([&ran] { ran.fetch_add(1); });
        // No wait(): teardown must still run queued tasks.
    }
    EXPECT_EQ(ran.load(), 32u);
}

TEST(ThreadPool, HardwareWorkersIsPositive)
{
    EXPECT_GE(ThreadPool::hardwareWorkers(), 1u);
}
