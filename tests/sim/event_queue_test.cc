#include "sim/event_queue.hh"

#include <gtest/gtest.h>

#include <array>
#include <utility>
#include <vector>

using gtsc::sim::EventQueue;

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(10, [&] { order.push_back(2); });
    q.schedule(5, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(3); });
    q.runUntil(15);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    q.runUntil(25);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, SameCycleFiresInScheduleOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(7, [&order, i] { order.push_back(i); });
    q.runUntil(7);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CallbackMayScheduleSameCycle)
{
    EventQueue q;
    int hits = 0;
    q.schedule(3, [&] {
        ++hits;
        q.schedule(3, [&] { ++hits; });
    });
    q.runUntil(3);
    EXPECT_EQ(hits, 2);
}

TEST(EventQueue, NowReflectsRunUntil)
{
    EventQueue q;
    gtsc::Cycle seen = 0;
    q.schedule(4, [&] { seen = q.now(); });
    q.runUntil(9);
    EXPECT_EQ(seen, 9u);
}

TEST(EventQueue, NextEventCycle)
{
    EventQueue q;
    EXPECT_EQ(q.nextEventCycle(), gtsc::kCycleNever);
    q.schedule(42, [] {});
    EXPECT_EQ(q.nextEventCycle(), 42u);
}

TEST(SmallCallback, SmallClosureTakesInlinePath)
{
    int hits = 0;
    gtsc::sim::SmallCallback cb([&hits] { ++hits; });
    EXPECT_TRUE(cb.inlined());
    cb();
    EXPECT_EQ(hits, 1);
}

TEST(SmallCallback, LargeClosureFallsBackToHeap)
{
    struct Big
    {
        char payload[200];
    };
    Big big{};
    big.payload[0] = 7;
    int out = 0;
    gtsc::sim::SmallCallback cb([big, &out] { out = big.payload[0]; });
    EXPECT_FALSE(cb.inlined());
    cb();
    EXPECT_EQ(out, 7);
}

TEST(SmallCallback, MovePreservesClosureState)
{
    int hits = 0;
    gtsc::sim::SmallCallback a([&hits] { ++hits; });
    gtsc::sim::SmallCallback b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a));
    EXPECT_TRUE(static_cast<bool>(b));
    b();
    gtsc::sim::SmallCallback c;
    c = std::move(b);
    c();
    EXPECT_EQ(hits, 2);
}

TEST(EventQueue, LargeCapturesStillFireInOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 4; ++i) {
        // > kInlineBytes of captured state exercises the heap path
        // through the same heap as the small events.
        std::array<int, 40> blob{};
        blob[0] = i;
        q.schedule(6, [&order, blob] { order.push_back(blob[0]); });
        q.schedule(6, [&order, i] { order.push_back(100 + i); });
    }
    q.runUntil(6);
    EXPECT_EQ(order,
              (std::vector<int>{0, 100, 1, 101, 2, 102, 3, 103}));
}
