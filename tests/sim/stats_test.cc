#include "sim/stats.hh"

#include <gtest/gtest.h>

using gtsc::sim::Distribution;
using gtsc::sim::StatSet;

TEST(StatSet, CountersStartAtZeroAndIncrement)
{
    StatSet s;
    EXPECT_EQ(s.get("a"), 0u);
    s.counter("a") += 3;
    s.counter("a")++;
    EXPECT_EQ(s.get("a"), 4u);
}

TEST(StatSet, SumPrefix)
{
    StatSet s;
    s.counter("l1.hits") = 5;
    s.counter("l1.miss_cold") = 2;
    s.counter("l1.miss_expired") = 3;
    s.counter("l2.hits") = 100;
    EXPECT_EQ(s.sumPrefix("l1.miss"), 5u);
    EXPECT_EQ(s.sumPrefix("l1."), 10u);
    EXPECT_EQ(s.sumPrefix("nothing"), 0u);
}

TEST(StatSet, SumPrefixEdgeCases)
{
    StatSet s;
    s.counter("a") = 1;
    s.counter("a.b") = 2;
    s.counter("a.b.c") = 4;
    s.counter("ab") = 8;
    s.counter("b") = 16;

    // The empty prefix matches every counter.
    EXPECT_EQ(s.sumPrefix(""), 31u);
    // A prefix that is itself a counter name includes that counter
    // and everything under it, but not siblings like "ab".
    EXPECT_EQ(s.sumPrefix("a.b"), 6u);
    EXPECT_EQ(s.sumPrefix("a"), 15u);
    // An exact leaf name sums just that counter.
    EXPECT_EQ(s.sumPrefix("a.b.c"), 4u);
    // A superstring of an existing name matches nothing.
    EXPECT_EQ(s.sumPrefix("a.b.c.d"), 0u);
    EXPECT_EQ(s.sumPrefix("b.x"), 0u);
    // A prefix sorting after every key matches nothing.
    EXPECT_EQ(s.sumPrefix("zzz"), 0u);
    // 0xff bytes in the prefix have no in-band successor: the scan
    // must still stop at the first non-matching key.
    s.counter("q\xff.x") = 32;
    s.counter("r") = 64;
    EXPECT_EQ(s.sumPrefix("q\xff"), 32u);
    EXPECT_EQ(s.sumPrefix("\xff"), 0u);
}

TEST(StatSet, MergeAddsCounters)
{
    StatSet a;
    StatSet b;
    a.counter("x") = 1;
    b.counter("x") = 2;
    b.counter("y") = 7;
    a.merge(b);
    EXPECT_EQ(a.get("x"), 3u);
    EXPECT_EQ(a.get("y"), 7u);
}

TEST(Distribution, TracksMeanMinMax)
{
    Distribution d;
    d.sample(2.0);
    d.sample(4.0);
    d.sample(9.0);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 9.0);
}

TEST(Distribution, MergeCombines)
{
    Distribution a;
    Distribution b;
    a.sample(1.0);
    b.sample(3.0);
    b.sample(5.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 5.0);

    Distribution empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 3u);
}

TEST(Distribution, StddevOfKnownSamples)
{
    Distribution d;
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
    d.sample(5.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0); // one sample: no spread
    d.sample(5.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);

    Distribution e;
    // {2, 4, 4, 4, 5, 5, 7, 9}: the textbook population-sd-2 set.
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        e.sample(v);
    EXPECT_NEAR(e.stddev(), 2.0, 1e-9);
}

TEST(Distribution, PercentilesExactWhileSmall)
{
    Distribution d;
    EXPECT_DOUBLE_EQ(d.p50(), 0.0);
    for (int i = 1; i <= 100; ++i)
        d.sample(static_cast<double>(i));
    // All 100 samples fit in the reservoir: exact order statistics.
    EXPECT_NEAR(d.p50(), 50.0, 1.0);
    EXPECT_NEAR(d.p99(), 99.0, 1.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(d.percentile(1.0), 100.0);
}

TEST(Distribution, ReservoirBoundedAndEstimatesHold)
{
    Distribution d;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        d.sample(static_cast<double>(i % 1000));
    EXPECT_LE(d.reservoirSize(), Distribution::kReservoirCapacity);
    EXPECT_GT(d.reservoirSize(), Distribution::kReservoirCapacity / 4);
    // Uniform over [0,1000): estimates stay within a few percent.
    EXPECT_NEAR(d.p50(), 500.0, 50.0);
    EXPECT_NEAR(d.p99(), 990.0, 30.0);
    EXPECT_NEAR(d.stddev(), 288.7, 5.0);
}

TEST(Distribution, DeterministicAcrossRuns)
{
    // The reservoir is systematic, not randomized: two identical
    // sample streams must yield identical percentile estimates
    // (bit-reproducibility underpins the fast-forward equivalence).
    Distribution a;
    Distribution b;
    for (int i = 0; i < 54321; ++i) {
        double v = static_cast<double>((i * 7919) % 4096);
        a.sample(v);
        b.sample(v);
    }
    EXPECT_EQ(a.reservoirSize(), b.reservoirSize());
    EXPECT_DOUBLE_EQ(a.p50(), b.p50());
    EXPECT_DOUBLE_EQ(a.p99(), b.p99());
    EXPECT_DOUBLE_EQ(a.stddev(), b.stddev());
}

TEST(Distribution, MergeCombinesSpreadAndPercentiles)
{
    Distribution a;
    Distribution b;
    for (int i = 0; i < 500; ++i) {
        a.sample(static_cast<double>(i));        // [0, 500)
        b.sample(static_cast<double>(i + 500));  // [500, 1000)
    }
    Distribution whole;
    for (int i = 0; i < 1000; ++i)
        whole.sample(static_cast<double>(i));

    a.merge(b);
    EXPECT_EQ(a.count(), 1000u);
    EXPECT_NEAR(a.stddev(), whole.stddev(), 1e-9);
    EXPECT_LE(a.reservoirSize(), Distribution::kReservoirCapacity);
    EXPECT_NEAR(a.p50(), whole.p50(), 25.0);
    EXPECT_NEAR(a.p99(), whole.p99(), 25.0);
}

TEST(StatSet, CounterReferencesStableAcrossInserts)
{
    // Components cache &counter(name) at construction and bump the
    // pointer on hot paths; later registrations must not move it.
    StatSet s;
    std::uint64_t *a = &s.counter("a");
    std::uint64_t *lat = reinterpret_cast<std::uint64_t *>(
        &s.distribution("lat"));
    for (int i = 0; i < 1000; ++i)
        s.counter("filler." + std::to_string(i)) = 1;
    for (int i = 0; i < 100; ++i)
        s.distribution("dist." + std::to_string(i)).sample(1.0);
    EXPECT_EQ(a, &s.counter("a"));
    EXPECT_EQ(lat, reinterpret_cast<std::uint64_t *>(
                       &s.distribution("lat")));
    ++(*a);
    EXPECT_EQ(s.get("a"), 1u);
}

TEST(StatSet, ToStringContainsEntries)
{
    StatSet s;
    s.counter("alpha") = 12;
    s.distribution("lat").sample(4.0);
    std::string text = s.toString();
    EXPECT_NE(text.find("alpha 12"), std::string::npos);
    EXPECT_NE(text.find("lat.mean"), std::string::npos);
}
