#include "sim/stats.hh"

#include <gtest/gtest.h>

using gtsc::sim::Distribution;
using gtsc::sim::StatSet;

TEST(StatSet, CountersStartAtZeroAndIncrement)
{
    StatSet s;
    EXPECT_EQ(s.get("a"), 0u);
    s.counter("a") += 3;
    s.counter("a")++;
    EXPECT_EQ(s.get("a"), 4u);
}

TEST(StatSet, SumPrefix)
{
    StatSet s;
    s.counter("l1.hits") = 5;
    s.counter("l1.miss_cold") = 2;
    s.counter("l1.miss_expired") = 3;
    s.counter("l2.hits") = 100;
    EXPECT_EQ(s.sumPrefix("l1.miss"), 5u);
    EXPECT_EQ(s.sumPrefix("l1."), 10u);
    EXPECT_EQ(s.sumPrefix("nothing"), 0u);
}

TEST(StatSet, MergeAddsCounters)
{
    StatSet a;
    StatSet b;
    a.counter("x") = 1;
    b.counter("x") = 2;
    b.counter("y") = 7;
    a.merge(b);
    EXPECT_EQ(a.get("x"), 3u);
    EXPECT_EQ(a.get("y"), 7u);
}

TEST(Distribution, TracksMeanMinMax)
{
    Distribution d;
    d.sample(2.0);
    d.sample(4.0);
    d.sample(9.0);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 9.0);
}

TEST(Distribution, MergeCombines)
{
    Distribution a;
    Distribution b;
    a.sample(1.0);
    b.sample(3.0);
    b.sample(5.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 5.0);

    Distribution empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 3u);
}

TEST(StatSet, CounterReferencesStableAcrossInserts)
{
    // Components cache &counter(name) at construction and bump the
    // pointer on hot paths; later registrations must not move it.
    StatSet s;
    std::uint64_t *a = &s.counter("a");
    std::uint64_t *lat = reinterpret_cast<std::uint64_t *>(
        &s.distribution("lat"));
    for (int i = 0; i < 1000; ++i)
        s.counter("filler." + std::to_string(i)) = 1;
    for (int i = 0; i < 100; ++i)
        s.distribution("dist." + std::to_string(i)).sample(1.0);
    EXPECT_EQ(a, &s.counter("a"));
    EXPECT_EQ(lat, reinterpret_cast<std::uint64_t *>(
                       &s.distribution("lat")));
    ++(*a);
    EXPECT_EQ(s.get("a"), 1u);
}

TEST(StatSet, ToStringContainsEntries)
{
    StatSet s;
    s.counter("alpha") = 12;
    s.distribution("lat").sample(4.0);
    std::string text = s.toString();
    EXPECT_NE(text.find("alpha 12"), std::string::npos);
    EXPECT_NE(text.find("lat.mean"), std::string::npos);
}
