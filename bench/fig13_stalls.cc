/**
 * @file
 * Figure 13: pipeline stalls due to memory delay, normalized to the
 * no-L1-cache baseline (lower = better). The paper reports TC
 * incurring ~45% more stalls than G-TSC on the coherence set.
 */

#include "bench_common.hh"

using namespace gtsc;
using namespace gtsc::bench;

int
main(int argc, char **argv)
{
    sim::Config cfg = benchCfg(argc, argv);
    auto columns = figureColumns();

    harness::Table table(
        {"bench", "TC-SC", "TC-RC", "G-TSC-SC", "G-TSC-RC"});

    Sweep sweep(cfg);
    for (const auto &wl : workloads::allBenchmarks()) {
        sweep.plan({"nol1", "rc", "BL"}, wl);
        for (const auto &pc : columns)
            sweep.plan(pc, wl);
    }

    std::map<std::string, std::map<std::string, double>> norm;
    for (const auto &wl : workloads::allBenchmarks()) {
        const harness::RunResult &bl =
            sweep.get({"nol1", "rc", "BL"}, wl);
        double base = static_cast<double>(bl.memStallCycles);
        if (base == 0)
            base = 1;
        table.row(displayName(wl));
        for (const auto &pc : columns) {
            const harness::RunResult &r = sweep.get(pc, wl);
            double v = static_cast<double>(r.memStallCycles) / base;
            norm[pc.label][wl] = v;
            table.cell(v);
        }
    }
    std::fprintf(stderr, "%40s\r", "");

    std::printf("Figure 13: memory pipeline stalls normalized to BL "
                "(no L1); lower is better\n\n");
    std::printf("%s\n", table.toString().c_str());

    auto geo = [&](const std::string &label,
                   const std::vector<std::string> &set) {
        std::vector<double> xs;
        for (const auto &wl : set)
            xs.push_back(norm[label][wl]);
        return harness::geomean(xs);
    };
    double set1 =
        geo("TC-RC", workloads::coherentSet()) /
        geo("G-TSC-RC", workloads::coherentSet());
    double set2 = geo("TC-RC", workloads::privateSet()) /
                  geo("G-TSC-RC", workloads::privateSet());
    std::printf("TC-RC stalls / G-TSC-RC stalls (coherence set) = "
                "%.3f (paper: ~1.45)\n",
                set1);
    std::printf("TC-RC stalls / G-TSC-RC stalls (no-coherence set) = "
                "%.3f (paper: >1.4)\n",
                set2);
    return 0;
}
