/**
 * @file
 * Shared machinery for the figure/table harnesses: the run matrix,
 * normalization helpers and the paper's reported numbers (used to
 * print paper-vs-measured columns; see EXPERIMENTS.md).
 */

#ifndef GTSC_BENCH_BENCH_COMMON_HH_
#define GTSC_BENCH_BENCH_COMMON_HH_

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "harness/table.hh"
#include "workloads/registry.hh"

namespace gtsc::bench
{

/** A (protocol, consistency) column of a figure. */
struct ProtoCfg
{
    std::string protocol;
    std::string consistency;
    std::string label;
};

/** The four coherence-protocol columns of Figures 12/13/15/16/17. */
inline std::vector<ProtoCfg>
figureColumns()
{
    return {{"tc", "sc", "TC-SC"},
            {"tc", "rc", "TC-RC"},
            {"gtsc", "sc", "G-TSC-SC"},
            {"gtsc", "rc", "G-TSC-RC"}};
}

/** Default bench configuration; CLI key=value overrides applied. */
inline sim::Config
benchCfg(int argc, char **argv)
{
    sim::Config cfg = harness::benchConfig();
    cfg.setInt("gpu.num_sms", 8);
    cfg.setInt("gpu.warps_per_sm", 12);
    cfg.setInt("gpu.num_partitions", 4);
    cfg.setBool("check.enabled", false);
    for (int i = 1; i < argc; ++i) {
        if (!cfg.parseOverride(argv[i])) {
            std::fprintf(stderr, "bad override '%s'\n", argv[i]);
            std::exit(2);
        }
    }
    return cfg;
}

/** Run one cell of the matrix, with a progress line on stderr. */
inline harness::RunResult
runCell(const sim::Config &cfg, const ProtoCfg &pc,
        const std::string &workload)
{
    std::fprintf(stderr, "  running %-5s %-9s ...\r", workload.c_str(),
                 pc.label.c_str());
    std::fflush(stderr);
    harness::RunResult r =
        harness::runOne(cfg, pc.protocol, pc.consistency, workload);
    return r;
}

/** Paper Table II: absolute execution cycles (millions), as reported
 * on the authors' G-TSC simulator. */
struct Table2Row
{
    const char *bench;
    double blPaper;
    double tcPaper;
};

inline const std::vector<Table2Row> &
paperTable2()
{
    static const std::vector<Table2Row> kRows = {
        {"bh", 0.55, 0.84},  {"cc", 1.47, 1.77},  {"dlp", 1.63, 1.63},
        {"vpr", 0.85, 0.90}, {"stn", 2.00, 1.74}, {"bfs", 0.79, 2.32},
        {"ccp", 13.50, 13.50}, {"ge", 2.22, 2.49}, {"hs", 0.22, 0.23},
        {"km", 28.74, 30.78}, {"bp", 0.84, 0.69}, {"sgm", 6.08, 6.14},
    };
    return kRows;
}

/** Upper-case display name of a registry workload id. */
inline std::string
displayName(const std::string &id)
{
    std::string out = id;
    for (auto &c : out)
        c = static_cast<char>(std::toupper(c));
    return out;
}

} // namespace gtsc::bench

#endif // GTSC_BENCH_BENCH_COMMON_HH_
