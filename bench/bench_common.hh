/**
 * @file
 * Shared machinery for the figure/table harnesses: the run matrix,
 * the parallel sweep cache every driver runs its cells through,
 * normalization helpers and the paper's reported numbers (used to
 * print paper-vs-measured columns; see EXPERIMENTS.md).
 */

#ifndef GTSC_BENCH_BENCH_COMMON_HH_
#define GTSC_BENCH_BENCH_COMMON_HH_

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "harness/table.hh"
#include "serve/result_store.hh"
#include "workloads/registry.hh"

namespace gtsc::bench
{

/** A (protocol, consistency) column of a figure. */
struct ProtoCfg
{
    std::string protocol;
    std::string consistency;
    std::string label;
};

/** The four coherence-protocol columns of Figures 12/13/15/16/17. */
inline std::vector<ProtoCfg>
figureColumns()
{
    return {{"tc", "sc", "TC-SC"},
            {"tc", "rc", "TC-RC"},
            {"gtsc", "sc", "G-TSC-SC"},
            {"gtsc", "rc", "G-TSC-RC"}};
}

/**
 * Worker-count knob shared by every driver. Set by --jobs N /
 * --jobs=N on the command line (benchCfg); 0 defers to the GTSC_JOBS
 * environment variable and then the hardware thread count.
 */
inline unsigned &
jobsFlag()
{
    static unsigned jobs = 0;
    return jobs;
}

/**
 * Default bench configuration; CLI key=value overrides applied,
 * --jobs N / --jobs=N consumed into jobsFlag(), and
 * --trace-dir DIR / --trace-dir=DIR mapped to obs.trace_dir (with
 * obs.trace defaulted on so the flag alone produces per-run traces).
 */
inline sim::Config
benchCfg(int argc, char **argv)
{
    sim::Config cfg = harness::benchConfig();
    cfg.setInt("gpu.num_sms", 8);
    cfg.setInt("gpu.warps_per_sm", 12);
    cfg.setInt("gpu.num_partitions", 4);
    cfg.setBool("check.enabled", false);
    std::string trace_dir;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--jobs" && i + 1 < argc) {
            jobsFlag() = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
            continue;
        }
        if (arg.rfind("--jobs=", 0) == 0) {
            jobsFlag() = static_cast<unsigned>(
                std::strtoul(arg.c_str() + 7, nullptr, 10));
            continue;
        }
        if (arg == "--trace-dir" && i + 1 < argc) {
            trace_dir = argv[++i];
            continue;
        }
        if (arg.rfind("--trace-dir=", 0) == 0) {
            trace_dir = arg.substr(12);
            continue;
        }
        if (!cfg.parseOverride(arg)) {
            std::fprintf(stderr, "bad override '%s'\n", argv[i]);
            std::exit(2);
        }
    }
    if (!trace_dir.empty()) {
        cfg.set("obs.trace_dir", trace_dir);
        if (!cfg.has("obs.trace"))
            cfg.setBool("obs.trace", true);
    }
    return cfg;
}

/**
 * Plan/execute cache over SweepRunner.
 *
 * Drivers declare every cell they will need with plan() (mirroring
 * their result loops), then read results back with get(): the first
 * get() executes all planned cells in parallel. Cells are keyed by
 * (explicit config, protocol, consistency, workload), so repeated
 * plans of the same cell dedupe into one simulation and a get() of
 * a never-planned cell still works (it runs serially and is
 * cached). Per-run results are unchanged by parallelism — each cell
 * is an isolated, deterministic simulation.
 */
class Sweep
{
  public:
    explicit Sweep(const sim::Config &base) : base_(base) {}

    void
    plan(const ProtoCfg &pc, const std::string &workload)
    {
        plan(base_, pc, workload);
    }

    void
    plan(const sim::Config &cfg, const ProtoCfg &pc,
         const std::string &workload)
    {
        std::string k = key(cfg, pc, workload);
        if (results_.count(k) || planned_.count(k))
            return;
        planned_.insert(k);
        harness::RunSpec spec;
        spec.config = cfg;
        spec.protocol = pc.protocol;
        spec.consistency = pc.consistency;
        spec.workload = workload;
        spec.label = workload + "/" + pc.label;
        pending_.push_back(std::move(spec));
        pendingKeys_.push_back(std::move(k));
    }

    const harness::RunResult &
    get(const ProtoCfg &pc, const std::string &workload)
    {
        return get(base_, pc, workload);
    }

    const harness::RunResult &
    get(const sim::Config &cfg, const ProtoCfg &pc,
        const std::string &workload)
    {
        execute();
        std::string k = key(cfg, pc, workload);
        auto it = results_.find(k);
        if (it != results_.end())
            return it->second;
        // Unplanned cell: run it serially (old runCell behaviour).
        std::fprintf(stderr, "  running %-5s %-9s ...\r",
                     workload.c_str(), pc.label.c_str());
        std::fflush(stderr);
        harness::RunResult r = harness::runOne(
            cfg, pc.protocol, pc.consistency, workload);
        return results_.emplace(k, std::move(r)).first->second;
    }

    /** Run everything planned so far (get() calls this lazily). */
    void
    execute()
    {
        if (pending_.empty())
            return;
        harness::SweepOptions opts;
        opts.jobs = jobsFlag();
        opts.progress = true;
        // sweep.store=1 routes every cell through the persistent
        // content-addressed result store: warm reruns of a figure
        // skip simulation entirely (see docs/SERVING.md).
        if (!store_)
            store_ = serve::storeFromConfig(base_);
        opts.cache = store_.get();
        harness::SweepRunner runner(opts);
        std::vector<harness::RunResult> out = runner.run(pending_);
        for (std::size_t i = 0; i < out.size(); ++i)
            results_.emplace(pendingKeys_[i], std::move(out[i]));
        pending_.clear();
        pendingKeys_.clear();
        planned_.clear();
    }

  private:
    static std::string
    key(const sim::Config &cfg, const ProtoCfg &pc,
        const std::string &workload)
    {
        return pc.protocol + '\n' + pc.consistency + '\n' + workload +
               '\n' + cfg.explicitString();
    }

    sim::Config base_;
    std::shared_ptr<serve::ResultStore> store_;
    std::vector<harness::RunSpec> pending_;
    std::vector<std::string> pendingKeys_;
    std::set<std::string> planned_;
    std::map<std::string, harness::RunResult> results_;
};

/** Paper Table II: absolute execution cycles (millions), as reported
 * on the authors' G-TSC simulator. */
struct Table2Row
{
    const char *bench;
    double blPaper;
    double tcPaper;
};

inline const std::vector<Table2Row> &
paperTable2()
{
    static const std::vector<Table2Row> kRows = {
        {"bh", 0.55, 0.84},  {"cc", 1.47, 1.77},  {"dlp", 1.63, 1.63},
        {"vpr", 0.85, 0.90}, {"stn", 2.00, 1.74}, {"bfs", 0.79, 2.32},
        {"ccp", 13.50, 13.50}, {"ge", 2.22, 2.49}, {"hs", 0.22, 0.23},
        {"km", 28.74, 30.78}, {"bp", 0.84, 0.69}, {"sgm", 6.08, 6.14},
    };
    return kRows;
}

/** Upper-case display name of a registry workload id. */
inline std::string
displayName(const std::string &id)
{
    std::string out = id;
    for (auto &c : out)
        c = static_cast<char>(std::toupper(c));
    return out;
}

} // namespace gtsc::bench

#endif // GTSC_BENCH_BENCH_COMMON_HH_
