/**
 * @file
 * Extension experiment: warp-scheduler sensitivity. GTO (greedy-
 * then-oldest, the GPGPU-Sim default the paper's machine uses) vs
 * loose round-robin vs strict oldest-first, under G-TSC-RC. GTO
 * preserves intra-warp locality (better L1 hit rates); RR spreads
 * misses in time. Checks that the protocol conclusions do not hinge
 * on the scheduling policy.
 */

#include "bench_common.hh"

using namespace gtsc;
using namespace gtsc::bench;

int
main(int argc, char **argv)
{
    sim::Config cfg = benchCfg(argc, argv);

    harness::Table table({"bench", "gto(cyc)", "rr(cyc)",
                          "oldest(cyc)", "gto hit%", "rr hit%"});

    auto schedCfg = [&cfg](const char *sched) {
        sim::Config c = cfg;
        c.set("gpu.scheduler", sched);
        return c;
    };

    Sweep sweep(cfg);
    for (const auto &wl : workloads::allBenchmarks()) {
        for (const char *sched : {"gto", "rr", "oldest"})
            sweep.plan(schedCfg(sched), {"gtsc", "rc", sched}, wl);
    }

    std::map<std::string, std::vector<double>> cycles;
    for (const auto &wl : workloads::allBenchmarks()) {
        table.row(displayName(wl));
        std::map<std::string, harness::RunResult> res;
        for (const char *sched : {"gto", "rr", "oldest"}) {
            res[sched] =
                sweep.get(schedCfg(sched), {"gtsc", "rc", sched}, wl);
            cycles[sched].push_back(
                static_cast<double>(res[sched].cycles));
        }
        table.cellInt(res["gto"].cycles);
        table.cellInt(res["rr"].cycles);
        table.cellInt(res["oldest"].cycles);
        auto hitrate = [](const harness::RunResult &r) {
            double probes = static_cast<double>(
                r.l1Hits + r.l1MissCold + r.l1MissExpired);
            return probes > 0 ? 100.0 * r.l1Hits / probes : 0.0;
        };
        table.cell(hitrate(res["gto"]), 1);
        table.cell(hitrate(res["rr"]), 1);
    }
    std::fprintf(stderr, "%40s\r", "");

    std::printf("Extension: warp-scheduler sensitivity, G-TSC-RC\n\n");
    std::printf("%s\n", table.toString().c_str());
    std::printf("geomean cycles rr/gto = %.3f, oldest/gto = %.3f\n",
                harness::geomean(cycles["rr"]) /
                    harness::geomean(cycles["gto"]),
                harness::geomean(cycles["oldest"]) /
                    harness::geomean(cycles["gto"]));
    return 0;
}
