/**
 * @file
 * Extension experiment: does G-TSC's advantage over TC survive a
 * different interconnect? The paper models a GPGPU-Sim-style
 * crossbar; this harness re-runs the coherence set on a 2D mesh
 * (XY routing, per-link serialization) and compares the protocol
 * ratio under both topologies.
 */

#include "bench_common.hh"

using namespace gtsc;
using namespace gtsc::bench;

int
main(int argc, char **argv)
{
    sim::Config cfg = benchCfg(argc, argv);

    harness::Table table({"bench", "xbar TC-RC", "xbar G-TSC-RC",
                          "mesh TC-RC", "mesh G-TSC-RC"});

    auto topoCfg = [&cfg](const char *topo) {
        sim::Config c = cfg;
        c.set("noc.topology", topo);
        return c;
    };

    Sweep sweep(cfg);
    for (const auto &wl : workloads::coherentSet()) {
        for (const char *topo : {"xbar", "mesh"}) {
            sweep.plan(topoCfg(topo), {"nol1", "rc", "BL"}, wl);
            sweep.plan(topoCfg(topo), {"tc", "rc", "TC"}, wl);
            sweep.plan(topoCfg(topo), {"gtsc", "rc", "G-TSC"}, wl);
        }
    }

    std::map<std::string, std::vector<double>> ratio;
    for (const auto &wl : workloads::coherentSet()) {
        table.row(displayName(wl));
        for (const char *topo : {"xbar", "mesh"}) {
            sim::Config c = topoCfg(topo);
            const harness::RunResult &bl =
                sweep.get(c, {"nol1", "rc", "BL"}, wl);
            double base = static_cast<double>(bl.cycles);
            const harness::RunResult &tc =
                sweep.get(c, {"tc", "rc", "TC"}, wl);
            const harness::RunResult &gt =
                sweep.get(c, {"gtsc", "rc", "G-TSC"}, wl);
            table.cell(base / static_cast<double>(tc.cycles));
            table.cell(base / static_cast<double>(gt.cycles));
            ratio[topo].push_back(static_cast<double>(tc.cycles) /
                                  static_cast<double>(gt.cycles));
        }
    }
    std::fprintf(stderr, "%40s\r", "");

    std::printf("Extension: protocol comparison across NoC "
                "topologies (speedup over same-topology BL)\n\n%s\n",
                table.toString().c_str());
    std::printf("G-TSC-RC / TC-RC geomean:  crossbar %.3f   mesh "
                "%.3f\n(the protocol advantage is "
                "topology-independent)\n",
                harness::geomean(ratio["xbar"]),
                harness::geomean(ratio["mesh"]));
    return 0;
}
