/**
 * @file
 * google-benchmark micro-costs of the protocol datapath primitives:
 * L1 access (hit and miss paths), L2 timestamp assignment, cache
 * array lookup, MSHR merge, crossbar injection, checker lookups.
 * Guards against the simulator itself becoming the bottleneck of
 * the figure harnesses.
 */

#include <queue>

#include <benchmark/benchmark.h>

#include "core/gtsc_builder.hh"
#include "gpu/coalescer.hh"
#include "gpu/kernel.hh"
#include "harness/checker.hh"
#include "mem/cache_array.hh"
#include "mem/mshr.hh"
#include "noc/arrival_ring.hh"
#include "noc/crossbar.hh"
#include "obs/tracer.hh"
#include "sim/bitmask.hh"
#include "sim/rng.hh"
#include "sim/slot_pool.hh"
#include "sim/time_wheel.hh"

using namespace gtsc;

namespace
{

void
BM_CacheArrayLookup(benchmark::State &state)
{
    mem::CacheArray array(16 * 1024, 4);
    for (std::uint64_t i = 0; i < 32; ++i) {
        Addr line = i * mem::kLineBytes;
        array.insert(*array.victim(line), line);
    }
    sim::Rng rng(1);
    for (auto _ : state) {
        Addr line = rng.below(64) * mem::kLineBytes;
        benchmark::DoNotOptimize(array.lookup(line));
    }
}
BENCHMARK(BM_CacheArrayLookup);

void
BM_PacketArenaAllocFree(benchmark::State &state)
{
    // Steady-state cost of parking a packet in the slot arena and
    // returning it: after the first acquire the freelist recycles
    // one slot forever, so the loop must never touch the allocator.
    sim::SlotPool<mem::Packet> pool;
    for (auto _ : state) {
        std::uint32_t slot = pool.acquire();
        mem::Packet &p = pool[slot];
        p.type = mem::MsgType::BusRd;
        p.sizeBytes = 12;
        benchmark::DoNotOptimize(p);
        pool.release(slot);
    }
}
BENCHMARK(BM_PacketArenaAllocFree);

/**
 * The pre-refactor array-of-structs block: metadata and the 128-byte
 * payload interleaved, so a set probe strides over payload it never
 * reads. BM_CacheArrayProbeAoS walks this layout with the same probe
 * loop CacheArray uses; the delta against BM_CacheArrayProbeSoA is
 * the payoff of the metadata/payload split.
 */
struct AosBlock
{
    bool valid = false;
    bool dirty = false;
    Addr lineAddr = 0;
    std::uint64_t lastUse = 0;
    mem::BlockMeta meta;
    mem::LineData data;
};

constexpr std::size_t kProbeCacheBytes = 4 * 1024 * 1024;
constexpr std::size_t kProbeAssoc = 8;
constexpr std::size_t kProbeSets =
    kProbeCacheBytes / mem::kLineBytes / kProbeAssoc;

void
BM_CacheArrayProbeSoA(benchmark::State &state)
{
    // Hit probes with line locality (an L1 access stream re-touches
    // the same line several times before moving on — the dominant
    // real pattern). The SoA probe walks dense ~48-byte records and
    // takes the MRU fast path on the re-touches.
    mem::CacheArray array(kProbeCacheBytes, kProbeAssoc);
    for (std::uint64_t i = 0; i < kProbeSets * kProbeAssoc; ++i) {
        Addr line = i * mem::kLineBytes;
        array.insert(*array.victim(line), line);
    }
    sim::Rng rng(4);
    Addr line = 0;
    std::uint64_t n = 0;
    for (auto _ : state) {
        if ((n++ & 3) == 0)
            line = rng.below(kProbeSets * kProbeAssoc) *
                   mem::kLineBytes;
        mem::CacheBlock *blk = array.lookup(line);
        array.touch(*blk);
        benchmark::DoNotOptimize(blk);
    }
}
BENCHMARK(BM_CacheArrayProbeSoA);

void
BM_CacheArrayProbeAoS(benchmark::State &state)
{
    // The same access stream over the old interleaved layout: every
    // probe scans the set's fat blocks, dragging payload-sized
    // records through the host cache.
    std::vector<AosBlock> blocks(kProbeSets * kProbeAssoc);
    for (std::uint64_t i = 0; i < blocks.size(); ++i) {
        // Line i*kLineBytes maps to set (i % kProbeSets); place it
        // in that set's next way so every probed line is present.
        std::size_t set = i & (kProbeSets - 1);
        std::size_t way = i / kProbeSets;
        AosBlock &blk = blocks[set * kProbeAssoc + way];
        blk.valid = true;
        blk.lineAddr = i * mem::kLineBytes;
    }
    sim::Rng rng(4);
    std::uint64_t stamp = 0;
    Addr line = 0;
    std::uint64_t n = 0;
    for (auto _ : state) {
        if ((n++ & 3) == 0)
            line = rng.below(kProbeSets * kProbeAssoc) *
                   mem::kLineBytes;
        std::size_t set =
            (line / mem::kLineBytes) & (kProbeSets - 1);
        AosBlock *hit = nullptr;
        AosBlock *base = &blocks[set * kProbeAssoc];
        for (std::size_t w = 0; w < kProbeAssoc; ++w) {
            if (base[w].valid && base[w].lineAddr == line) {
                hit = &base[w];
                break;
            }
        }
        hit->lastUse = ++stamp;
        benchmark::DoNotOptimize(hit);
    }
}
BENCHMARK(BM_CacheArrayProbeAoS);

constexpr std::size_t kWinCounters = 11; ///< Sm::StatWindow size

void
BM_StatCachedPtrIncrement(benchmark::State &state)
{
    // Pre-window hot path: every event bumps a cached pointer into a
    // StatSet map node — one scattered cache line per counter.
    sim::StatSet stats;
    std::uint64_t *targets[kWinCounters];
    for (std::size_t i = 0; i < kWinCounters; ++i)
        targets[i] = &stats.counter("win.c" + std::to_string(i));
    std::size_t n = 0;
    for (auto _ : state) {
        ++*targets[n % kWinCounters];
        ++n;
    }
    benchmark::DoNotOptimize(stats);
}
BENCHMARK(BM_StatCachedPtrIncrement);

void
BM_StatWindowFlush(benchmark::State &state)
{
    // Windowed pattern: events accumulate into one dense POD block,
    // batched into the map nodes every 1024 events (the flush cost
    // is amortized into the per-event figure).
    sim::StatSet stats;
    std::uint64_t *targets[kWinCounters];
    for (std::size_t i = 0; i < kWinCounters; ++i)
        targets[i] = &stats.counter("win.c" + std::to_string(i));
    struct Window
    {
        std::uint64_t c[kWinCounters] = {};
    } win;
    std::size_t n = 0;
    unsigned pending = 0;
    for (auto _ : state) {
        ++win.c[n % kWinCounters];
        ++n;
        if (++pending == 1024) {
            for (std::size_t i = 0; i < kWinCounters; ++i)
                *targets[i] += win.c[i];
            win = Window{};
            pending = 0;
        }
    }
    benchmark::DoNotOptimize(stats);
}
BENCHMARK(BM_StatWindowFlush);

void
BM_MshrAllocFree(benchmark::State &state)
{
    mem::Mshr mshr(32);
    for (auto _ : state) {
        mem::MshrEntry *e = mshr.alloc(0x1000);
        benchmark::DoNotOptimize(e);
        mshr.free(0x1000);
    }
}
BENCHMARK(BM_MshrAllocFree);

void
BM_GtscL1HitPath(benchmark::State &state)
{
    sim::Config cfg;
    cfg.setInt("gpu.warps_per_sm", 8);
    sim::StatSet stats;
    sim::EventQueue events;
    core::TsDomain domain(cfg, stats);
    core::GtscL1 l1(0, cfg, stats, events, domain, nullptr);
    l1.setSend([](mem::Packet &&) {});
    l1.setLoadDone([](const mem::Access &, const mem::AccessResult &) {});
    l1.setStoreDone([](const mem::Access &, Cycle) {});

    // Warm one line via a fill.
    mem::Access acc;
    acc.lineAddr = 0x1000;
    acc.wordMask = 1;
    acc.warp = 0;
    acc.id = 1;
    l1.access(acc, 0);
    mem::Packet fill;
    fill.type = mem::MsgType::BusFill;
    fill.lineAddr = 0x1000;
    fill.wts = 1;
    fill.rts = 60000;
    l1.receiveResponse(std::move(fill), 1);
    l1.tick(2);
    events.runUntil(100);

    std::uint64_t id = 100;
    Cycle now = 100;
    for (auto _ : state) {
        acc.id = ++id;
        l1.access(acc, ++now);
        events.runUntil(now + 8);
    }
}
BENCHMARK(BM_GtscL1HitPath);

void
BM_GtscL1HitPathTraced(benchmark::State &state)
{
    // Same datapath as BM_GtscL1HitPath with an obs::Tracer attached:
    // the delta between the two is the cost of event recording, and
    // BM_GtscL1HitPath itself must not move when tracing is compiled
    // in but detached (the trace_ == nullptr guard).
    sim::Config cfg;
    cfg.setInt("gpu.warps_per_sm", 8);
    sim::StatSet stats;
    sim::EventQueue events;
    core::TsDomain domain(cfg, stats);
    core::GtscL1 l1(0, cfg, stats, events, domain, nullptr);
    l1.setSend([](mem::Packet &&) {});
    l1.setLoadDone([](const mem::Access &, const mem::AccessResult &) {});
    l1.setStoreDone([](const mem::Access &, Cycle) {});
    obs::Tracer tracer;
    l1.attachTracer(tracer);

    mem::Access acc;
    acc.lineAddr = 0x1000;
    acc.wordMask = 1;
    acc.warp = 0;
    acc.id = 1;
    l1.access(acc, 0);
    mem::Packet fill;
    fill.type = mem::MsgType::BusFill;
    fill.lineAddr = 0x1000;
    fill.wts = 1;
    fill.rts = 60000;
    l1.receiveResponse(std::move(fill), 1);
    l1.tick(2);
    events.runUntil(100);

    std::uint64_t id = 100;
    Cycle now = 100;
    for (auto _ : state) {
        acc.id = ++id;
        l1.access(acc, ++now);
        events.runUntil(now + 8);
    }
}
BENCHMARK(BM_GtscL1HitPathTraced);

void
BM_TracerRecord(benchmark::State &state)
{
    // Raw cost of one ring-buffer event append.
    obs::Tracer tracer;
    std::uint32_t track = tracer.track("bench");
    Cycle now = 0;
    for (auto _ : state) {
        ++now;
        tracer.record(track, obs::Event{now, 0x1000, 1, 2,
                                        obs::EventKind::L1Hit, 0, 0});
    }
    benchmark::DoNotOptimize(tracer);
}
BENCHMARK(BM_TracerRecord);

void
BM_CrossbarInjectDeliver(benchmark::State &state)
{
    sim::Config cfg;
    sim::StatSet stats;
    noc::Crossbar xbar(8, 8, cfg, stats, "noc.micro");
    xbar.setDeliver([](unsigned, mem::Packet &&) {});
    Cycle now = 0;
    sim::Rng rng(2);
    for (auto _ : state) {
        mem::Packet p;
        p.type = mem::MsgType::BusRd;
        p.sizeBytes = 12;
        xbar.inject(static_cast<unsigned>(rng.below(8)),
                    static_cast<unsigned>(rng.below(8)), std::move(p),
                    now);
        ++now;
        xbar.tick(now + 20);
    }
}
BENCHMARK(BM_CrossbarInjectDeliver);

void
BM_EventQueueSmallCallback(benchmark::State &state)
{
    // Exercises the SmallCallback inline path: a capture this size
    // must never heap-allocate per scheduled event.
    sim::EventQueue events;
    std::uint64_t sink = 0;
    Cycle t = 0;
    for (auto _ : state) {
        ++t;
        events.schedule(t, [&sink, t] { sink += t; });
        events.runUntil(t);
        benchmark::DoNotOptimize(sink);
    }
}
BENCHMARK(BM_EventQueueSmallCallback);

void
BM_EventQueueLargeCallback(benchmark::State &state)
{
    // Captures past the inline buffer fall back to the heap; this is
    // the cost floor the small-callback path is measured against.
    sim::EventQueue events;
    struct Payload
    {
        std::uint64_t words[20];
    };
    Payload payload{};
    payload.words[0] = 1;
    std::uint64_t sink = 0;
    Cycle t = 0;
    for (auto _ : state) {
        ++t;
        events.schedule(t, [&sink, payload] { sink += payload.words[0]; });
        events.runUntil(t);
        benchmark::DoNotOptimize(sink);
    }
}
BENCHMARK(BM_EventQueueLargeCallback);

void
BM_CheckerTsLoad(benchmark::State &state)
{
    harness::CoherenceChecker checker;
    for (Ts w = 1; w <= 64; ++w)
        checker.onStoreTs(0x2000, 0, w * 10, static_cast<unsigned>(w),
                          0, 0);
    sim::Rng rng(3);
    for (auto _ : state) {
        Ts ts = rng.below(640) + 10;
        std::uint32_t expect =
            static_cast<std::uint32_t>(std::min<Ts>(ts / 10, 64));
        checker.onLoadTs(0x2000, 0, ts, expect, 1, 0);
    }
    if (checker.violations() > 0)
        state.SkipWithError("checker reported violations");
}
BENCHMARK(BM_CheckerTsLoad);

void
BM_TimeWheelParkWake(benchmark::State &state)
{
    // Steady-state cost of the active-set scheduler's park/wake
    // round trip (DESIGN.md §10): one member re-arms a few cycles
    // out, pops due, repeat — the per-tick overhead every scheduled
    // component pays. Stays on the preallocated bucket ring; the
    // loop must never touch the allocator.
    sim::TimeWheel wheel(16);
    std::vector<std::uint32_t> due;
    due.reserve(16);
    Cycle now = 0;
    sim::Rng rng(5);
    for (auto _ : state) {
        wheel.arm(static_cast<std::uint32_t>(rng.below(16)),
                  now + 1 + rng.below(8));
        ++now;
        wheel.popDue(now, due);
        benchmark::DoNotOptimize(due.data());
    }
}
BENCHMARK(BM_TimeWheelParkWake);

constexpr unsigned kPickWarps = 48; ///< gpu.warps_per_sm default

void
BM_ReadyMaskPick(benchmark::State &state)
{
    // The SM issue picker after the bitmask refactor: round-robin
    // selection is one findNextWrapOr over the ready|retry words —
    // no per-warp state reads at all. Occupancy mirrors a busy
    // workload (1/4 of warps ready).
    sim::BitMask ready;
    sim::BitMask retry;
    ready.resize(kPickWarps);
    retry.resize(kPickWarps);
    for (unsigned w = 0; w < kPickWarps; w += 4)
        ready.set(w);
    retry.set(kPickWarps - 3);
    unsigned last = 0;
    for (auto _ : state) {
        unsigned start = (last + 1 == kPickWarps) ? 0 : last + 1;
        unsigned pick = sim::findNextWrapOr(ready, retry, start);
        benchmark::DoNotOptimize(pick);
        last = (pick == sim::BitMask::kNpos) ? 0 : pick;
    }
}
BENCHMARK(BM_ReadyMaskPick);

void
BM_ReadyVectorPick(benchmark::State &state)
{
    // The pre-refactor shape: a wrapped linear walk over the per-warp
    // state byte array testing each candidate. The delta against
    // BM_ReadyMaskPick is the payoff of the packed ready masks.
    std::vector<std::uint8_t> stateOf(kPickWarps, 0);
    std::vector<std::uint8_t> memRetry(kPickWarps, 0);
    for (unsigned w = 0; w < kPickWarps; w += 4)
        stateOf[w] = 1; // "Ready"
    memRetry[kPickWarps - 3] = 1;
    unsigned last = 0;
    for (auto _ : state) {
        unsigned pick = kPickWarps;
        for (unsigned i = 1; i <= kPickWarps; ++i) {
            unsigned w = (last + i) % kPickWarps;
            if (stateOf[w] == 1 || memRetry[w]) {
                pick = w;
                break;
            }
        }
        benchmark::DoNotOptimize(pick);
        last = (pick == kPickWarps) ? 0 : pick;
    }
}
BENCHMARK(BM_ReadyVectorPick);

void
BM_CoalescerFastPath(benchmark::State &state)
{
    // Plan decoded once at fetch (outside the loop, as the SM does),
    // then each issue takes the O(1) strided path: two beginLine
    // calls and two mask stores, no per-lane loop.
    gpu::StoreValueSource values;
    gpu::Coalescer coalescer(values);
    auto instr = gpu::WarpInstr::loadStrided(0x1010, 32, 4);
    gpu::CoalescePlan plan = gpu::Coalescer::plan(instr, 32);
    std::vector<mem::Access> out;
    for (auto _ : state) {
        coalescer.coalesce(instr, plan, 32, 0, 0, out);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_CoalescerFastPath);

void
BM_CoalescerSlowPath(benchmark::State &state)
{
    // The same instruction through the per-lane merge loop (a forced
    // Slow plan — what every issue paid before pre-decoded cursors).
    gpu::StoreValueSource values;
    gpu::Coalescer coalescer(values);
    auto instr = gpu::WarpInstr::loadStrided(0x1010, 32, 4);
    gpu::CoalescePlan slow; // kind == Slow
    std::vector<mem::Access> out;
    for (auto _ : state) {
        coalescer.coalesce(instr, slow, 32, 0, 0, out);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_CoalescerSlowPath);

void
BM_NocRingPopDue(benchmark::State &state)
{
    // Steady-state crossbar routing round trip after the ring
    // refactor: one bucket append at inject, one drainDue pop when
    // the cycle comes due — flat vectors, no heap sift.
    struct Entry
    {
        std::uint32_t slot;
        std::uint32_t dst;
    };
    noc::ArrivalRing<Entry> ring;
    ring.init(noc::kArrivalRingSpan, 8);
    sim::Rng rng(6);
    Cycle now = 0;
    std::uint64_t delivered = 0;
    for (auto _ : state) {
        ring.push(now, now + 1 + rng.below(16),
                  Entry{static_cast<std::uint32_t>(now & 0xff),
                        static_cast<std::uint32_t>(rng.below(8))});
        ++now;
        ring.drainDue(now, [&](Cycle, const Entry &e) {
            delivered += e.dst;
        });
        benchmark::DoNotOptimize(delivered);
    }
}
BENCHMARK(BM_NocRingPopDue);

void
BM_NocPqPopDue(benchmark::State &state)
{
    // The pre-refactor shape: a binary heap ordered by (arrive, seq)
    // pays a log-factor sift on every push and pop. The delta against
    // BM_NocRingPopDue is the payoff of due-cycle bucketing.
    struct Entry
    {
        Cycle arrive;
        std::uint64_t seq;
        std::uint32_t slot;
        std::uint32_t dst;
    };
    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            return a.arrive != b.arrive ? a.arrive > b.arrive
                                        : a.seq > b.seq;
        }
    };
    std::priority_queue<Entry, std::vector<Entry>, Later> pq;
    sim::Rng rng(6);
    Cycle now = 0;
    std::uint64_t seq = 0;
    std::uint64_t delivered = 0;
    for (auto _ : state) {
        pq.push(Entry{now + 1 + rng.below(16), seq++,
                      static_cast<std::uint32_t>(now & 0xff),
                      static_cast<std::uint32_t>(rng.below(8))});
        ++now;
        while (!pq.empty() && pq.top().arrive <= now) {
            delivered += pq.top().dst;
            pq.pop();
        }
        benchmark::DoNotOptimize(delivered);
    }
}
BENCHMARK(BM_NocPqPopDue);

} // namespace

BENCHMARK_MAIN();
