/**
 * @file
 * TC lease-sensitivity ablation (the paper's motivation point II-D3:
 * "the performance can be sensitive to the lease period; a suitable
 * lease period is not always easy to select"). Sweeps the TC lease
 * and prints TC-RC / TC-SC speedups over BL per benchmark — the
 * counterpart of Figure 14, which shows G-TSC is *insensitive*.
 */

#include "bench_common.hh"

using namespace gtsc;
using namespace gtsc::bench;

int
main(int argc, char **argv)
{
    sim::Config cfg = benchCfg(argc, argv);
    const std::vector<std::uint64_t> leases = {25, 50, 100, 200, 400,
                                               800};

    auto leaseCfg = [&cfg](std::uint64_t lease) {
        sim::Config c = cfg;
        c.setInt("tc.lease", static_cast<std::int64_t>(lease));
        return c;
    };

    Sweep sweep(cfg);
    for (const char *cons : {"rc", "sc"}) {
        for (const auto &wl : workloads::coherentSet()) {
            sweep.plan({"nol1", "rc", "BL"}, wl);
            for (auto lease : leases)
                sweep.plan(leaseCfg(lease), {"tc", cons, "TC"}, wl);
        }
    }

    for (const char *cons : {"rc", "sc"}) {
        std::vector<std::string> headers = {"bench"};
        for (auto l : leases)
            headers.push_back("L=" + std::to_string(l));
        harness::Table table(headers);

        std::map<std::uint64_t, std::vector<double>> per_lease;
        for (const auto &wl : workloads::coherentSet()) {
            const harness::RunResult &bl =
                sweep.get({"nol1", "rc", "BL"}, wl);
            double base = static_cast<double>(bl.cycles);
            table.row(displayName(wl));
            for (auto lease : leases) {
                const harness::RunResult &r =
                    sweep.get(leaseCfg(lease), {"tc", cons, "TC"}, wl);
                double s = base / static_cast<double>(r.cycles);
                table.cell(s);
                per_lease[lease].push_back(s);
            }
        }
        std::fprintf(stderr, "%40s\r", "");
        std::printf("TC-%s speedup over BL vs lease period "
                    "(coherence set)\n\n%s\n",
                    cons[0] == 'r' ? "RC" : "SC",
                    table.toString().c_str());
        std::printf("geomean per lease:");
        for (auto lease : leases)
            std::printf("  L=%llu: %.3f",
                        static_cast<unsigned long long>(lease),
                        harness::geomean(per_lease[lease]));
        std::printf("\n\n");
    }
    return 0;
}
