/**
 * @file
 * Section V-B ablation: merge replicated warp requests in the MSHR
 * (chosen design; renewals cover uncovered warp timestamps) vs
 * forwarding every request to L2. The paper reports forwarding
 * increases memory requests by 12-35%.
 */

#include "bench_common.hh"

using namespace gtsc;
using namespace gtsc::bench;

int
main(int argc, char **argv)
{
    sim::Config cfg = benchCfg(argc, argv);

    harness::Table table({"bench", "combine(req)", "fwdall(req)",
                          "req increase", "combine(cyc)", "fwdall(cyc)"});

    auto combineCfg = [&cfg](bool combine) {
        sim::Config c = cfg;
        c.setBool("gtsc.combine_mshr", combine);
        return c;
    };

    Sweep sweep(cfg);
    for (const auto &wl : workloads::coherentSet()) {
        sweep.plan(combineCfg(true), {"gtsc", "rc", "combine"}, wl);
        sweep.plan(combineCfg(false), {"gtsc", "rc", "fwdall"}, wl);
    }

    std::vector<double> increases;
    for (const auto &wl : workloads::coherentSet()) {
        const harness::RunResult &r1 =
            sweep.get(combineCfg(true), {"gtsc", "rc", "combine"}, wl);
        const harness::RunResult &r2 =
            sweep.get(combineCfg(false), {"gtsc", "rc", "fwdall"}, wl);

        std::uint64_t req1 = r1.stats.get("noc.req.packets");
        std::uint64_t req2 = r2.stats.get("noc.req.packets");
        table.row(displayName(wl));
        table.cellInt(req1);
        table.cellInt(req2);
        double inc = static_cast<double>(req2) /
                     static_cast<double>(req1);
        table.cell(inc);
        table.cellInt(r1.cycles);
        table.cellInt(r2.cycles);
        increases.push_back(inc);
    }
    std::fprintf(stderr, "%40s\r", "");

    std::printf("Ablation (Sec V-B): MSHR request combining vs "
                "forward-all, G-TSC-RC\n\n");
    std::printf("%s\n", table.toString().c_str());
    std::printf("geomean request increase = %.3f (paper: 1.12-1.35)\n",
                harness::geomean(increases));
    return 0;
}
