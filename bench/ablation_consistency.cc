/**
 * @file
 * Extension experiment: the consistency-model spectrum on G-TSC.
 * The paper evaluates SC and RC and mentions TSO as the model in
 * between (Section II-B; Tardis 2.0 implements TSO on Tardis). This
 * harness adds the TSO point: in-order one-deep store buffering.
 * Expected shape: SC <= TSO <= RC, with all three close together on
 * G-TSC (the paper's "SC may not be a bad choice" argument).
 */

#include "bench_common.hh"

using namespace gtsc;
using namespace gtsc::bench;

int
main(int argc, char **argv)
{
    sim::Config cfg = benchCfg(argc, argv);

    harness::Table table({"bench", "G-TSC-SC", "G-TSC-TSO", "G-TSC-RC",
                          "RC/SC", "RC/TSO"});

    Sweep sweep(cfg);
    for (const auto &wl : workloads::allBenchmarks()) {
        sweep.plan({"nol1", "rc", "BL"}, wl);
        for (const char *cons : {"sc", "tso", "rc"})
            sweep.plan({"gtsc", cons, cons}, wl);
    }

    std::map<std::string, std::vector<double>> per_model;
    for (const auto &wl : workloads::allBenchmarks()) {
        const harness::RunResult &bl =
            sweep.get({"nol1", "rc", "BL"}, wl);
        double base = static_cast<double>(bl.cycles);
        table.row(displayName(wl));
        std::map<std::string, double> s;
        for (const char *cons : {"sc", "tso", "rc"}) {
            const harness::RunResult &r =
                sweep.get({"gtsc", cons, cons}, wl);
            s[cons] = base / static_cast<double>(r.cycles);
            per_model[cons].push_back(s[cons]);
            table.cell(s[cons]);
        }
        table.cell(s["rc"] / s["sc"]);
        table.cell(s["rc"] / s["tso"]);
    }
    std::fprintf(stderr, "%40s\r", "");

    std::printf("Extension: consistency spectrum on G-TSC "
                "(speedup over BL)\n\n%s\n",
                table.toString().c_str());
    double g_sc = harness::geomean(per_model["sc"]);
    double g_tso = harness::geomean(per_model["tso"]);
    double g_rc = harness::geomean(per_model["rc"]);
    std::printf("geomeans: SC %.3f  TSO %.3f  RC %.3f "
                "(expect SC <= TSO <= RC, all close)\n",
                g_sc, g_tso, g_rc);
    return 0;
}
