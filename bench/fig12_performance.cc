/**
 * @file
 * Figure 12: performance of the GPU coherence protocols with both
 * memory models, normalized to the coherent baseline with the L1
 * disabled (higher = better). The right cluster additionally shows
 * the non-coherent baseline *with* L1 for the workloads that can use
 * it. Prints per-benchmark speedups plus the paper's headline
 * geomeans (G-TSC-RC vs TC-RC etc.).
 */

#include "bench_common.hh"

using namespace gtsc;
using namespace gtsc::bench;

int
main(int argc, char **argv)
{
    sim::Config cfg = benchCfg(argc, argv);
    auto columns = figureColumns();

    harness::Table table({"bench", "W/L1", "TC-SC", "TC-RC", "G-TSC-SC",
                          "G-TSC-RC"});

    auto coherent = [](const std::string &wl) {
        for (const auto &name : workloads::coherentSet())
            if (name == wl)
                return true;
        return false;
    };

    Sweep sweep(cfg);
    for (const auto &wl : workloads::allBenchmarks()) {
        sweep.plan({"nol1", "rc", "BL"}, wl);
        if (!coherent(wl))
            sweep.plan({"noncoh", "rc", "W/L1"}, wl);
        for (const auto &pc : columns)
            sweep.plan(pc, wl);
    }

    std::map<std::string, std::map<std::string, double>> speedup;
    for (const auto &wl : workloads::allBenchmarks()) {
        const harness::RunResult &bl =
            sweep.get({"nol1", "rc", "BL"}, wl);
        double base = static_cast<double>(bl.cycles);

        table.row(displayName(wl));
        if (!coherent(wl)) {
            const harness::RunResult &w =
                sweep.get({"noncoh", "rc", "W/L1"}, wl);
            table.cell(base / static_cast<double>(w.cycles));
        } else {
            table.cell("-");
        }
        for (const auto &pc : columns) {
            const harness::RunResult &r = sweep.get(pc, wl);
            double s = base / static_cast<double>(r.cycles);
            speedup[pc.label][wl] = s;
            table.cell(s);
        }
    }
    std::fprintf(stderr, "%40s\r", "");

    std::printf("Figure 12: performance normalized to BL "
                "(L1 disabled); higher is better\n\n");
    std::printf("%s\n", table.toString().c_str());

    auto geo = [&](const std::string &label, bool coherent_only) {
        std::vector<double> xs;
        for (const auto &wl : coherent_only
                                  ? workloads::coherentSet()
                                  : workloads::allBenchmarks())
            xs.push_back(speedup[label][wl]);
        return harness::geomean(xs);
    };

    double gtsc_rc = geo("G-TSC-RC", true);
    double gtsc_sc = geo("G-TSC-SC", true);
    double tc_rc = geo("TC-RC", true);
    double tc_sc = geo("TC-SC", true);
    std::printf("Headline comparisons (coherence-required set, "
                "geomean):\n");
    std::printf("  G-TSC-RC / TC-RC    = %.3f   (paper: ~1.38)\n",
                gtsc_rc / tc_rc);
    std::printf("  G-TSC-SC / TC-RC    = %.3f   (paper: ~1.26)\n",
                gtsc_sc / tc_rc);
    std::printf("  G-TSC-RC / TC-SC    = %.3f   (paper: ~1.84)\n",
                gtsc_rc / tc_sc);
    std::printf("  G-TSC-RC / G-TSC-SC = %.3f   (paper: ~1.12)\n",
                gtsc_rc / gtsc_sc);
    std::printf("  all-bench G-TSC RC/SC = %.3f (paper: ~1.09)\n",
                geo("G-TSC-RC", false) / geo("G-TSC-SC", false));
    return 0;
}
