/**
 * @file
 * Table II: absolute execution cycles of the coherent baseline (BL)
 * and of TC on our simulator, printed next to the paper's reported
 * numbers. We cannot run the original TC simulator, so the "paper"
 * columns are the values reported in the paper (in millions, on the
 * authors' machine-scale configuration); our columns are measured on
 * the bench configuration — compare *ratios*, not absolutes.
 */

#include "bench_common.hh"

using namespace gtsc;
using namespace gtsc::bench;

int
main(int argc, char **argv)
{
    sim::Config cfg = benchCfg(argc, argv);

    harness::Table table({"bench", "BL(ours)", "TC(ours)",
                          "TC/BL(ours)", "BL(paper M)", "TC(paper M)",
                          "TC/BL(paper)"});

    Sweep sweep(cfg);
    for (const auto &row : paperTable2()) {
        sweep.plan({"nol1", "rc", "BL"}, row.bench);
        sweep.plan({"tc", "rc", "TC-RC"}, row.bench);
    }

    for (const auto &row : paperTable2()) {
        const harness::RunResult &bl =
            sweep.get({"nol1", "rc", "BL"}, row.bench);
        const harness::RunResult &tc =
            sweep.get({"tc", "rc", "TC-RC"}, row.bench);
        table.row(displayName(row.bench));
        table.cellInt(bl.cycles);
        table.cellInt(tc.cycles);
        table.cell(static_cast<double>(tc.cycles) /
                   static_cast<double>(bl.cycles));
        table.cell(row.blPaper, 2);
        table.cell(row.tcPaper, 2);
        table.cell(row.tcPaper / row.blPaper);
    }
    std::fprintf(stderr, "%40s\r", "");

    std::printf("Table II: absolute execution cycles, BL and TC "
                "(ours vs paper-reported)\n\n");
    std::printf("%s\n", table.toString().c_str());
    return 0;
}
