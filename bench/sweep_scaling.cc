/**
 * @file
 * Wall-clock scaling of the parallel sweep runner: the same fixed
 * 16-cell matrix (4 workloads x the 4 figure columns) is executed at
 * jobs = 1, 2, 4 and the hardware thread count, and the speedup over
 * the serial run is reported. Per-run results are identical at every
 * worker count (tests/harness/sweep_test.cc pins that); this harness
 * only measures elapsed time. A second section measures the hybrid
 * main loop (gpu.fast_forward) on memory-bound workloads: simulated
 * cycles per wall-clock second with the knob off and on, the skipped
 * cycle count, and the speedup. A third section measures intra-run
 * parallelism (gpu.shards): one 16-SM coherent workload run at
 * 1/2/4/8 shards, reporting wall-clock and speedup over the serial
 * loop (per-run results are bit-identical at every shard count;
 * tests/integration/shard_equivalence_test.cc pins that). Emits a
 * human table and a JSON blob, and writes the blob to
 * BENCH_sweep_scaling.json (override with --out PATH) — the schema
 * is documented in EXPERIMENTS.md.
 *
 * A fourth section measures raw single-thread throughput: every cell
 * of the fig12 matrix (4 workloads x 4 protocol columns) is run
 * serially with default knobs and the per-cell and geomean simulated
 * Mcycles per wall-clock second are reported. This is the number the
 * data-oriented hot-path work optimizes; --baseline-mcyc G embeds a
 * previously recorded geomean so the JSON carries the speedup.
 *
 * A fifth section measures the persistent result store: the fig12
 * matrix is run twice through a fresh ResultStore — cold (every cell
 * simulates and populates the store) and warm (every cell is served
 * from disk, zero runOne calls) — recording both wall times, the
 * hit/miss counts, and whether the warm results are bit-identical
 * (report CSV rows + full stat dumps) to the cold ones.
 * tools/check_store_perf.py gates this section in CI.
 *
 * A sixth section measures the verification lab's explorer: the
 * default small-state model (2 SMs x 2 lines, SC) is exhaustively
 * enumerated and the unique-state count, transition count and
 * states/second throughput are recorded. tools/check_verify.py gates
 * correctness in CI; this section tracks the checking *rate* the
 * capture/restore/canonicalize machinery sustains.
 *
 * Section selection for CI: --only sweep|ff|shards|single|store|
 * verify runs a single section (the others are emitted as empty
 * arrays), and --max-shards N truncates the shard list so a 2-core
 * perf-smoke runner is not asked to oversubscribe.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hh"
#include "harness/report.hh"
#include "serve/result_store.hh"
#include "sim/thread_pool.hh"
#include "verify/explorer.hh"

using namespace gtsc;

namespace
{

double
runMatrixSeconds(const std::vector<harness::RunSpec> &specs,
                 unsigned jobs)
{
    harness::SweepOptions opts;
    opts.jobs = jobs;
    opts.progress = true;
    harness::SweepRunner runner(opts);
    auto t0 = std::chrono::steady_clock::now();
    std::vector<harness::RunResult> res = runner.run(specs);
    auto t1 = std::chrono::steady_clock::now();
    // Keep the results alive past the timer so the compiler cannot
    // elide any part of the sweep.
    std::uint64_t guard = 0;
    for (const harness::RunResult &r : res)
        guard += r.cycles;
    if (guard == 0)
        std::fprintf(stderr, "warning: matrix produced zero cycles\n");
    return std::chrono::duration<double>(t1 - t0).count();
}

struct FfRow
{
    std::string workload;
    double offSecs = 0.0;
    double onSecs = 0.0;
    std::uint64_t cycles = 0;
    std::uint64_t skipped = 0;
};

FfRow
runFastForwardPair(const sim::Config &base, const std::string &wl)
{
    FfRow row;
    row.workload = wl;
    for (bool ff : {false, true}) {
        sim::Config cfg = base;
        cfg.setBool("gpu.fast_forward", ff);
        auto t0 = std::chrono::steady_clock::now();
        harness::RunResult r = harness::runOne(cfg, "gtsc", "rc", wl);
        auto t1 = std::chrono::steady_clock::now();
        double secs = std::chrono::duration<double>(t1 - t0).count();
        if (ff) {
            row.onSecs = secs;
            row.skipped = r.fastForwarded;
            if (r.cycles != row.cycles)
                std::fprintf(stderr,
                             "warning: %s cycle count diverged with "
                             "fast-forward (%llu vs %llu)\n",
                             wl.c_str(),
                             static_cast<unsigned long long>(r.cycles),
                             static_cast<unsigned long long>(
                                 row.cycles));
        } else {
            row.offSecs = secs;
            row.cycles = r.cycles;
        }
    }
    return row;
}

struct ShardRow
{
    unsigned shards = 1;
    double secs = 0.0;
    std::uint64_t cycles = 0;
};

struct SingleRow
{
    std::string label;
    double secs = 0.0;
    std::uint64_t cycles = 0;
    /** Per-component-type active-cycle fractions (RunResult). */
    double actSm = 0.0, actL1 = 0.0, actL2 = 0.0, actNoc = 0.0,
           actDram = 0.0;
    /** Issue-path fast-lane diagnostics (RunResult counters). */
    std::uint64_t issueSlotsUsed = 0;
    std::uint64_t smTicks = 0;
    std::uint64_t nocTicks = 0;
    std::uint64_t nocPackets = 0;

    double
    mcycPerSec() const
    {
        return secs > 0.0
                   ? static_cast<double>(cycles) / 1e6 / secs
                   : 0.0;
    }

    /** Issue slots filled per executed SM-tick (issue width 1). */
    double
    issueUtil() const
    {
        return smTicks ? static_cast<double>(issueSlotsUsed) /
                             static_cast<double>(smTicks)
                       : 0.0;
    }

    /** Packets popped off the arrival rings per executed NoC tick. */
    double
    nocPopsPerTick() const
    {
        return nocTicks ? static_cast<double>(nocPackets) /
                              static_cast<double>(nocTicks)
                        : 0.0;
    }
};

struct StoreSection
{
    bool ran = false;
    double coldSecs = 0.0;
    double warmSecs = 0.0;
    std::uint64_t coldPuts = 0;
    std::uint64_t warmHits = 0;
    std::uint64_t warmMisses = 0;
    std::uint64_t warmRunOneCalls = 0;
    bool identical = false;
};

struct VerifySection
{
    bool ran = false;
    verify::ExploreStats stats;
    std::size_t violations = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    // Consume the flags benchCfg does not know about before handing
    // the rest of the command line to it (it exits on unknown args).
    std::string outPath = "BENCH_sweep_scaling.json";
    std::string only; // empty = all sections
    unsigned maxShards = 8;
    double baselineMcyc = 0.0;
    std::vector<char *> passArgv = {argv[0]};
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--out" && i + 1 < argc) {
            outPath = argv[++i];
        } else if (arg.rfind("--out=", 0) == 0) {
            outPath = arg.substr(6);
        } else if (arg == "--only" && i + 1 < argc) {
            only = argv[++i];
        } else if (arg.rfind("--only=", 0) == 0) {
            only = arg.substr(7);
        } else if (arg == "--max-shards" && i + 1 < argc) {
            maxShards = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg.rfind("--max-shards=", 0) == 0) {
            maxShards = static_cast<unsigned>(
                std::strtoul(arg.c_str() + 13, nullptr, 10));
        } else if (arg == "--baseline-mcyc" && i + 1 < argc) {
            baselineMcyc = std::strtod(argv[++i], nullptr);
        } else if (arg.rfind("--baseline-mcyc=", 0) == 0) {
            baselineMcyc = std::strtod(arg.c_str() + 16, nullptr);
        } else {
            passArgv.push_back(argv[i]);
        }
    }
    int passArgc = static_cast<int>(passArgv.size());
    sim::Config cfg = bench::benchCfg(passArgc, passArgv.data());
    argc = passArgc;
    argv = passArgv.data();
    const bool doSweep = only.empty() || only == "sweep";
    const bool doFf = only.empty() || only == "ff";
    const bool doShards = only.empty() || only == "shards";
    const bool doSingle = only.empty() || only == "single";
    const bool doStore = only.empty() || only == "store";
    const bool doVerify = only.empty() || only == "verify";

    const std::vector<std::string> workloads = {"bh", "cc", "vpr",
                                                "bfs"};
    std::vector<harness::RunSpec> specs;
    for (const std::string &wl : workloads) {
        for (const bench::ProtoCfg &pc : bench::figureColumns()) {
            harness::RunSpec spec;
            spec.config = cfg;
            spec.protocol = pc.protocol;
            spec.consistency = pc.consistency;
            spec.workload = wl;
            spec.label = wl + "/" + pc.label;
            specs.push_back(std::move(spec));
        }
    }

    std::set<unsigned> jobSet = {1, 2, 4,
                                 sim::ThreadPool::hardwareWorkers()};

    double serial = 0.0;
    std::vector<std::pair<unsigned, double>> rows;
    if (doSweep) {
        std::printf("Sweep scaling: %zu-cell matrix, hardware "
                    "threads = %u\n\n",
                    specs.size(), sim::ThreadPool::hardwareWorkers());
        std::printf("%-6s %12s %10s\n", "jobs", "seconds", "speedup");
        for (unsigned jobs : jobSet) {
            double secs = runMatrixSeconds(specs, jobs);
            if (jobs == 1)
                serial = secs;
            rows.emplace_back(jobs, secs);
            std::printf("%-6u %12.3f %10.2fx\n", jobs, secs,
                        serial > 0.0 ? serial / secs : 0.0);
            std::fflush(stdout);
        }
    }

    // Hybrid-loop section: memory-bound workloads at a scale where
    // long DRAM-bound quiet stretches dominate. Single-threaded on
    // purpose — this measures the main loop, not the sweep pool.
    // Low occupancy (1 warp/SM) is the regime the hybrid loop
    // targets: too few warps to hide DRAM latency, so most cycles
    // are fully stalled and skippable. High-occupancy configs hide
    // latency by design and leave little to skip (the gain there is
    // bounded by the idle fraction, not by this loop).
    sim::Config ffCfg = cfg;
    ffCfg.setInt("gpu.warps_per_sm", 1);
    bool userScale = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]).rfind("wl.scale=", 0) == 0)
            userScale = true;
    }
    if (!userScale)
        ffCfg.setDouble("wl.scale", 256.0);
    const std::vector<std::string> ffWorkloads = {"ccp", "bfs", "ge"};

    std::vector<FfRow> ffRows;
    if (doFf) {
        std::printf("\nFast-forward (gpu.fast_forward), gtsc/rc, "
                    "wl.scale=%g:\n\n",
                    ffCfg.getDouble("wl.scale", 1.0));
        std::printf("%-6s %12s %12s %14s %14s %10s %12s\n", "wl",
                    "off secs", "on secs", "off Mcyc/s", "on Mcyc/s",
                    "speedup", "skipped%");
        for (const std::string &wl : ffWorkloads) {
            FfRow row = runFastForwardPair(ffCfg, wl);
            double mc = static_cast<double>(row.cycles) / 1e6;
            std::printf(
                "%-6s %12.3f %12.3f %14.2f %14.2f %9.2fx %11.1f%%\n",
                row.workload.c_str(), row.offSecs, row.onSecs,
                row.offSecs > 0.0 ? mc / row.offSecs : 0.0,
                row.onSecs > 0.0 ? mc / row.onSecs : 0.0,
                row.onSecs > 0.0 ? row.offSecs / row.onSecs : 0.0,
                row.cycles > 0
                    ? 100.0 * static_cast<double>(row.skipped) /
                          static_cast<double>(row.cycles)
                    : 0.0);
            std::fflush(stdout);
            ffRows.push_back(std::move(row));
        }
    }

    // Intra-run shard-scaling section: one large coherent run, the
    // whole machine to itself, at increasing gpu.shards. High
    // occupancy on purpose — the sharded loop parallelizes SM/L1
    // work, so the regime that showcases it is the opposite of the
    // fast-forward section's: every cycle busy, 16 SMs of tick work
    // per cycle. Results are bit-identical at every shard count, so
    // only the elapsed time is interesting.
    sim::Config shCfg = cfg;
    shCfg.setInt("gpu.num_sms", 16);
    const std::string shWorkload = "cc";
    std::vector<ShardRow> shRows;
    if (doShards) {
        bool userShardScale = false;
        for (int i = 1; i < argc; ++i) {
            if (std::string(argv[i]).rfind("wl.scale=", 0) == 0)
                userShardScale = true;
        }
        if (!userShardScale)
            shCfg.setDouble("wl.scale", 8.0);
        std::printf("\nShard scaling (gpu.shards), gtsc/rc/%s, "
                    "16 SMs, wl.scale=%g:\n\n",
                    shWorkload.c_str(),
                    shCfg.getDouble("wl.scale", 1.0));
        std::printf("%-7s %12s %10s\n", "shards", "seconds",
                    "speedup");
        double shSerial = 0.0;
        for (unsigned shards : {1u, 2u, 4u, 8u}) {
            if (shards > maxShards)
                break;
            sim::Config c = shCfg;
            c.setInt("gpu.shards", static_cast<int>(shards));
            auto t0 = std::chrono::steady_clock::now();
            harness::RunResult r =
                harness::runOne(c, "gtsc", "rc", shWorkload);
            auto t1 = std::chrono::steady_clock::now();
            ShardRow row;
            row.shards = shards;
            row.secs = std::chrono::duration<double>(t1 - t0).count();
            row.cycles = r.cycles;
            if (shards == 1)
                shSerial = row.secs;
            else if (!shRows.empty() && r.cycles != shRows[0].cycles)
                std::fprintf(stderr,
                             "warning: cycle count diverged at %u "
                             "shards (%llu vs %llu)\n",
                             shards,
                             static_cast<unsigned long long>(r.cycles),
                             static_cast<unsigned long long>(
                                 shRows[0].cycles));
            std::printf("%-7u %12.3f %10.2fx\n", shards, row.secs,
                        shSerial > 0.0 ? shSerial / row.secs : 0.0);
            std::fflush(stdout);
            shRows.push_back(row);
        }
    }

    // Single-thread throughput section: the same fig12 matrix the
    // sweep section uses, but each cell run serially and timed
    // individually, reporting simulated Mcycles per wall-clock
    // second. Default knobs (fast_forward on, 1 shard) — this is the
    // configuration every figure regeneration actually runs in, so
    // it is the number the hot-path work has to move.
    std::vector<SingleRow> singleRows;
    double singleGeomean = 0.0;
    if (doSingle) {
        std::printf("\nSingle-thread throughput, fig12 matrix "
                    "(%zu cells):\n\n",
                    specs.size());
        std::printf("%-16s %12s %14s %12s %12s %10s %9s\n", "cell",
                    "seconds", "cycles", "Mcyc/s", "act sm/l1",
                    "issue", "noc pops");
        double logSum = 0.0;
        for (const harness::RunSpec &spec : specs) {
            // Best-of-3: cells are tens of milliseconds, so take the
            // minimum wall time to shed scheduler/page-cache noise.
            SingleRow row;
            row.label = spec.label;
            for (int rep = 0; rep < 3; ++rep) {
                auto t0 = std::chrono::steady_clock::now();
                harness::RunResult r = harness::runOne(
                    spec.config, spec.protocol, spec.consistency,
                    spec.workload);
                auto t1 = std::chrono::steady_clock::now();
                double secs =
                    std::chrono::duration<double>(t1 - t0).count();
                if (rep == 0 || secs < row.secs)
                    row.secs = secs;
                row.cycles = r.cycles;
                row.actSm = r.activitySm;
                row.actL1 = r.activityL1;
                row.actL2 = r.activityL2;
                row.actNoc = r.activityNoc;
                row.actDram = r.activityDram;
                row.issueSlotsUsed = r.issueSlotsUsed;
                row.smTicks = r.smTicksExecuted;
                row.nocTicks = r.nocTicksExecuted;
                row.nocPackets = r.nocPackets;
            }
            std::printf(
                "%-16s %12.3f %14llu %12.2f  %.2f/%.2f %10.3f %9.3f\n",
                row.label.c_str(), row.secs,
                static_cast<unsigned long long>(row.cycles),
                row.mcycPerSec(), row.actSm, row.actL1,
                row.issueUtil(), row.nocPopsPerTick());
            std::fflush(stdout);
            logSum += std::log(row.mcycPerSec());
            singleRows.push_back(std::move(row));
        }
        singleGeomean = std::exp(
            logSum / static_cast<double>(singleRows.size()));
        std::printf("%-16s %12s %14s %12.2f\n", "geomean", "", "",
                    singleGeomean);
        if (baselineMcyc > 0.0)
            std::printf("speedup vs baseline %.2f Mcyc/s: %.2fx\n",
                        baselineMcyc, singleGeomean / baselineMcyc);
    }

    // Result-store section: the same fig12 matrix through a fresh
    // on-disk ResultStore, cold then warm. The warm pass must hit on
    // every cell (zero simulations) and reproduce the cold results
    // bit-for-bit — that is the property that makes figure
    // regeneration free on a warm store.
    StoreSection st;
    if (doStore) {
        namespace fs = std::filesystem;
        std::string tmpl =
            (fs::temp_directory_path() / "gtsc-store-bench-XXXXXX")
                .string();
        std::vector<char> dirBuf(tmpl.begin(), tmpl.end());
        dirBuf.push_back('\0');
        if (::mkdtemp(dirBuf.data()) == nullptr) {
            std::fprintf(stderr,
                         "warning: mkdtemp failed, skipping store "
                         "section\n");
        } else {
            const std::string dir = dirBuf.data();
            serve::ResultStore::Options ro;
            ro.root = dir;
            harness::SweepOptions so;
            so.jobs = 1;
            so.progress = true;
            std::vector<harness::RunResult> coldRes, warmRes;
            std::printf("\nResult store (fig12 matrix, %zu cells):"
                        "\n\n",
                        specs.size());
            {
                serve::ResultStore store(ro);
                so.cache = &store;
                harness::SweepRunner runner(so);
                auto t0 = std::chrono::steady_clock::now();
                coldRes = runner.run(specs);
                auto t1 = std::chrono::steady_clock::now();
                st.coldSecs =
                    std::chrono::duration<double>(t1 - t0).count();
                st.coldPuts = store.stats().puts;
            }
            {
                serve::ResultStore store(ro);
                so.cache = &store;
                harness::SweepRunner runner(so);
                std::uint64_t before = harness::runOneCallCount();
                auto t0 = std::chrono::steady_clock::now();
                warmRes = runner.run(specs);
                auto t1 = std::chrono::steady_clock::now();
                st.warmSecs =
                    std::chrono::duration<double>(t1 - t0).count();
                st.warmRunOneCalls =
                    harness::runOneCallCount() - before;
                st.warmHits = store.stats().hits;
                st.warmMisses = store.stats().misses;
            }
            st.identical = coldRes.size() == warmRes.size();
            for (std::size_t i = 0;
                 st.identical && i < coldRes.size(); ++i) {
                st.identical =
                    harness::csvRow(coldRes[i]) ==
                        harness::csvRow(warmRes[i]) &&
                    coldRes[i].stats.toString() ==
                        warmRes[i].stats.toString();
            }
            st.ran = true;
            fs::remove_all(dir);
            std::printf("%-18s %12s %10s %8s %8s\n", "pass",
                        "seconds", "run_ones", "hits", "misses");
            std::printf("%-18s %12.3f %10llu %8u %8llu\n", "cold",
                        st.coldSecs,
                        static_cast<unsigned long long>(st.coldPuts),
                        0u,
                        static_cast<unsigned long long>(
                            st.coldPuts));
            std::printf("%-18s %12.3f %10llu %8llu %8llu\n", "warm",
                        st.warmSecs,
                        static_cast<unsigned long long>(
                            st.warmRunOneCalls),
                        static_cast<unsigned long long>(st.warmHits),
                        static_cast<unsigned long long>(
                            st.warmMisses));
            std::printf("warm speedup: %.1fx, bit-identical: %s\n",
                        st.warmSecs > 0.0
                            ? st.coldSecs / st.warmSecs
                            : 0.0,
                        st.identical ? "yes" : "NO");
            std::fflush(stdout);
        }
    }

    // Verify section: exhaust the torture lab's default small-state
    // model (2 SMs x 2 lines x 2 ops, SC) and record the checking
    // throughput the capture/restore/canonicalize machinery sustains.
    // Correctness (complete enumeration, zero violations) is gated by
    // tools/check_verify.py in CI; the number tracked here is the
    // rate.
    VerifySection vf;
    if (doVerify) {
        std::printf("\nVerify explorer (2 SMs x 2 lines x 2 ops, "
                    "SC):\n\n");
        std::fflush(stdout);
        verify::ExploreResult vres = verify::explore(cfg);
        vf.stats = vres.stats;
        vf.violations = vres.witnesses.size();
        vf.ran = true;
        std::printf("%-12s %12s %10s %12s %10s\n", "states",
                    "transitions", "seconds", "states/s",
                    "complete");
        std::printf("%-12llu %12llu %10.2f %12.0f %10s\n",
                    static_cast<unsigned long long>(
                        vf.stats.statesVisited),
                    static_cast<unsigned long long>(
                        vf.stats.transitions),
                    vf.stats.seconds, vf.stats.statesPerSec,
                    vf.stats.complete ? "yes" : "NO");
        if (vf.violations != 0)
            std::printf("VIOLATIONS: %zu (run gtsc_verify --explore "
                        "for witnesses)\n",
                        vf.violations);
        std::fflush(stdout);
    }

    std::ostringstream json;
    json << "{\"bench\": \"sweep_scaling\", \"cells\": "
         << specs.size() << ", \"hw_threads\": "
         << sim::ThreadPool::hardwareWorkers() << ", \"runs\": [";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "%s{\"jobs\": %u, \"seconds\": %.4f, "
                      "\"speedup\": %.3f}",
                      i ? ", " : "", rows[i].first, rows[i].second,
                      serial > 0.0 ? serial / rows[i].second : 0.0);
        json << buf;
    }
    json << "], \"fast_forward\": [";
    for (std::size_t i = 0; i < ffRows.size(); ++i) {
        const FfRow &r = ffRows[i];
        char buf[256];
        std::snprintf(
            buf, sizeof(buf),
            "%s{\"workload\": \"%s\", \"off_seconds\": %.4f, "
            "\"on_seconds\": %.4f, \"cycles\": %llu, "
            "\"skipped\": %llu, \"speedup\": %.3f}",
            i ? ", " : "", r.workload.c_str(), r.offSecs, r.onSecs,
            static_cast<unsigned long long>(r.cycles),
            static_cast<unsigned long long>(r.skipped),
            r.onSecs > 0.0 ? r.offSecs / r.onSecs : 0.0);
        json << buf;
    }
    json << "], \"shard_scaling\": {\"workload\": \"" << shWorkload
         << "\", \"protocol\": \"gtsc\", \"consistency\": \"rc\", "
         << "\"num_sms\": 16, \"runs\": [";
    double shSerialSecs = shRows.empty() ? 0.0 : shRows[0].secs;
    for (std::size_t i = 0; i < shRows.size(); ++i) {
        const ShardRow &r = shRows[i];
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "%s{\"shards\": %u, \"seconds\": %.4f, "
                      "\"cycles\": %llu, \"speedup\": %.3f}",
                      i ? ", " : "", r.shards, r.secs,
                      static_cast<unsigned long long>(r.cycles),
                      r.secs > 0.0 ? shSerialSecs / r.secs : 0.0);
        json << buf;
    }
    json << "]}, \"single_thread\": {\"cells\": [";
    for (std::size_t i = 0; i < singleRows.size(); ++i) {
        const SingleRow &r = singleRows[i];
        char buf[512];
        std::snprintf(buf, sizeof(buf),
                      "%s{\"cell\": \"%s\", \"seconds\": %.4f, "
                      "\"cycles\": %llu, \"mcyc_per_sec\": %.3f, "
                      "\"activity\": {\"sm\": %.4f, \"l1\": %.4f, "
                      "\"l2\": %.4f, \"noc\": %.4f, \"dram\": %.4f}, "
                      "\"issue_utilization\": %.4f, "
                      "\"noc_pops_per_tick\": %.4f}",
                      i ? ", " : "", r.label.c_str(), r.secs,
                      static_cast<unsigned long long>(r.cycles),
                      r.mcycPerSec(), r.actSm, r.actL1, r.actL2,
                      r.actNoc, r.actDram, r.issueUtil(),
                      r.nocPopsPerTick());
        json << buf;
    }
    {
        char buf[192];
        std::snprintf(
            buf, sizeof(buf),
            "], \"geomean_mcyc_per_sec\": %.3f, "
            "\"baseline_geomean_mcyc_per_sec\": %.3f, "
            "\"speedup_vs_baseline\": %.3f}",
            singleGeomean, baselineMcyc,
            baselineMcyc > 0.0 ? singleGeomean / baselineMcyc : 0.0);
        json << buf;
    }
    {
        char buf[384];
        if (st.ran) {
            std::snprintf(
                buf, sizeof(buf),
                ", \"result_store\": {\"cells\": %zu, "
                "\"cold_seconds\": %.4f, \"warm_seconds\": %.4f, "
                "\"speedup\": %.3f, \"cold_puts\": %llu, "
                "\"warm_hits\": %llu, \"warm_misses\": %llu, "
                "\"warm_run_one_calls\": %llu, "
                "\"identical\": %s}",
                specs.size(), st.coldSecs, st.warmSecs,
                st.warmSecs > 0.0 ? st.coldSecs / st.warmSecs : 0.0,
                static_cast<unsigned long long>(st.coldPuts),
                static_cast<unsigned long long>(st.warmHits),
                static_cast<unsigned long long>(st.warmMisses),
                static_cast<unsigned long long>(st.warmRunOneCalls),
                st.identical ? "true" : "false");
        } else {
            std::snprintf(buf, sizeof(buf),
                          ", \"result_store\": {\"cells\": 0}");
        }
        json << buf;
    }
    {
        char buf[384];
        if (vf.ran) {
            std::snprintf(
                buf, sizeof(buf),
                ", \"verify\": {\"states\": %llu, "
                "\"transitions\": %llu, \"deduped\": %llu, "
                "\"terminals\": %llu, \"max_depth\": %llu, "
                "\"seconds\": %.4f, \"states_per_sec\": %.1f, "
                "\"complete\": %s, \"violations\": %zu}}",
                static_cast<unsigned long long>(
                    vf.stats.statesVisited),
                static_cast<unsigned long long>(
                    vf.stats.transitions),
                static_cast<unsigned long long>(vf.stats.deduped),
                static_cast<unsigned long long>(vf.stats.terminals),
                static_cast<unsigned long long>(vf.stats.maxDepth),
                vf.stats.seconds, vf.stats.statesPerSec,
                vf.stats.complete ? "true" : "false",
                vf.violations);
        } else {
            std::snprintf(buf, sizeof(buf),
                          ", \"verify\": {\"states\": 0}}");
        }
        json << buf;
    }

    std::printf("\n%s\n", json.str().c_str());
    std::ofstream out(outPath);
    if (out) {
        out << json.str() << "\n";
        std::fprintf(stderr, "wrote %s\n", outPath.c_str());
    } else {
        std::fprintf(stderr, "warning: cannot write %s\n",
                     outPath.c_str());
    }
    return 0;
}
