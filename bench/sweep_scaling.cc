/**
 * @file
 * Wall-clock scaling of the parallel sweep runner: the same fixed
 * 16-cell matrix (4 workloads x the 4 figure columns) is executed at
 * jobs = 1, 2, 4 and the hardware thread count, and the speedup over
 * the serial run is reported. Per-run results are identical at every
 * worker count (tests/harness/sweep_test.cc pins that); this harness
 * only measures elapsed time. Emits a human table and a JSON blob.
 */

#include <chrono>
#include <cstdio>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hh"
#include "sim/thread_pool.hh"

using namespace gtsc;

namespace
{

double
runMatrixSeconds(const std::vector<harness::RunSpec> &specs,
                 unsigned jobs)
{
    harness::SweepOptions opts;
    opts.jobs = jobs;
    opts.progress = true;
    harness::SweepRunner runner(opts);
    auto t0 = std::chrono::steady_clock::now();
    std::vector<harness::RunResult> res = runner.run(specs);
    auto t1 = std::chrono::steady_clock::now();
    // Keep the results alive past the timer so the compiler cannot
    // elide any part of the sweep.
    std::uint64_t guard = 0;
    for (const harness::RunResult &r : res)
        guard += r.cycles;
    if (guard == 0)
        std::fprintf(stderr, "warning: matrix produced zero cycles\n");
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace

int
main(int argc, char **argv)
{
    sim::Config cfg = bench::benchCfg(argc, argv);

    const std::vector<std::string> workloads = {"bh", "cc", "vpr",
                                                "bfs"};
    std::vector<harness::RunSpec> specs;
    for (const std::string &wl : workloads) {
        for (const bench::ProtoCfg &pc : bench::figureColumns()) {
            harness::RunSpec spec;
            spec.config = cfg;
            spec.protocol = pc.protocol;
            spec.consistency = pc.consistency;
            spec.workload = wl;
            spec.label = wl + "/" + pc.label;
            specs.push_back(std::move(spec));
        }
    }

    std::set<unsigned> jobSet = {1, 2, 4,
                                 sim::ThreadPool::hardwareWorkers()};

    std::printf("Sweep scaling: %zu-cell matrix, hardware threads = "
                "%u\n\n",
                specs.size(), sim::ThreadPool::hardwareWorkers());
    std::printf("%-6s %12s %10s\n", "jobs", "seconds", "speedup");

    double serial = 0.0;
    std::vector<std::pair<unsigned, double>> rows;
    for (unsigned jobs : jobSet) {
        double secs = runMatrixSeconds(specs, jobs);
        if (jobs == 1)
            serial = secs;
        rows.emplace_back(jobs, secs);
        std::printf("%-6u %12.3f %10.2fx\n", jobs, secs,
                    serial > 0.0 ? serial / secs : 0.0);
        std::fflush(stdout);
    }

    std::printf("\n{\"bench\": \"sweep_scaling\", \"cells\": %zu, "
                "\"hw_threads\": %u, \"runs\": [",
                specs.size(), sim::ThreadPool::hardwareWorkers());
    for (std::size_t i = 0; i < rows.size(); ++i) {
        std::printf("%s{\"jobs\": %u, \"seconds\": %.4f, "
                    "\"speedup\": %.3f}",
                    i ? ", " : "", rows[i].first, rows[i].second,
                    serial > 0.0 ? serial / rows[i].second : 0.0);
    }
    std::printf("]}\n");
    return 0;
}
