/**
 * @file
 * Wall-clock scaling of the parallel sweep runner: the same fixed
 * 16-cell matrix (4 workloads x the 4 figure columns) is executed at
 * jobs = 1, 2, 4 and the hardware thread count, and the speedup over
 * the serial run is reported. Per-run results are identical at every
 * worker count (tests/harness/sweep_test.cc pins that); this harness
 * only measures elapsed time. A second section measures the hybrid
 * main loop (gpu.fast_forward) on memory-bound workloads: simulated
 * cycles per wall-clock second with the knob off and on, the skipped
 * cycle count, and the speedup. Emits a human table and a JSON blob.
 */

#include <chrono>
#include <cstdio>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hh"
#include "sim/thread_pool.hh"

using namespace gtsc;

namespace
{

double
runMatrixSeconds(const std::vector<harness::RunSpec> &specs,
                 unsigned jobs)
{
    harness::SweepOptions opts;
    opts.jobs = jobs;
    opts.progress = true;
    harness::SweepRunner runner(opts);
    auto t0 = std::chrono::steady_clock::now();
    std::vector<harness::RunResult> res = runner.run(specs);
    auto t1 = std::chrono::steady_clock::now();
    // Keep the results alive past the timer so the compiler cannot
    // elide any part of the sweep.
    std::uint64_t guard = 0;
    for (const harness::RunResult &r : res)
        guard += r.cycles;
    if (guard == 0)
        std::fprintf(stderr, "warning: matrix produced zero cycles\n");
    return std::chrono::duration<double>(t1 - t0).count();
}

struct FfRow
{
    std::string workload;
    double offSecs = 0.0;
    double onSecs = 0.0;
    std::uint64_t cycles = 0;
    std::uint64_t skipped = 0;
};

FfRow
runFastForwardPair(const sim::Config &base, const std::string &wl)
{
    FfRow row;
    row.workload = wl;
    for (bool ff : {false, true}) {
        sim::Config cfg = base;
        cfg.setBool("gpu.fast_forward", ff);
        auto t0 = std::chrono::steady_clock::now();
        harness::RunResult r = harness::runOne(cfg, "gtsc", "rc", wl);
        auto t1 = std::chrono::steady_clock::now();
        double secs = std::chrono::duration<double>(t1 - t0).count();
        if (ff) {
            row.onSecs = secs;
            row.skipped = r.fastForwarded;
            if (r.cycles != row.cycles)
                std::fprintf(stderr,
                             "warning: %s cycle count diverged with "
                             "fast-forward (%llu vs %llu)\n",
                             wl.c_str(),
                             static_cast<unsigned long long>(r.cycles),
                             static_cast<unsigned long long>(
                                 row.cycles));
        } else {
            row.offSecs = secs;
            row.cycles = r.cycles;
        }
    }
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    sim::Config cfg = bench::benchCfg(argc, argv);

    const std::vector<std::string> workloads = {"bh", "cc", "vpr",
                                                "bfs"};
    std::vector<harness::RunSpec> specs;
    for (const std::string &wl : workloads) {
        for (const bench::ProtoCfg &pc : bench::figureColumns()) {
            harness::RunSpec spec;
            spec.config = cfg;
            spec.protocol = pc.protocol;
            spec.consistency = pc.consistency;
            spec.workload = wl;
            spec.label = wl + "/" + pc.label;
            specs.push_back(std::move(spec));
        }
    }

    std::set<unsigned> jobSet = {1, 2, 4,
                                 sim::ThreadPool::hardwareWorkers()};

    std::printf("Sweep scaling: %zu-cell matrix, hardware threads = "
                "%u\n\n",
                specs.size(), sim::ThreadPool::hardwareWorkers());
    std::printf("%-6s %12s %10s\n", "jobs", "seconds", "speedup");

    double serial = 0.0;
    std::vector<std::pair<unsigned, double>> rows;
    for (unsigned jobs : jobSet) {
        double secs = runMatrixSeconds(specs, jobs);
        if (jobs == 1)
            serial = secs;
        rows.emplace_back(jobs, secs);
        std::printf("%-6u %12.3f %10.2fx\n", jobs, secs,
                    serial > 0.0 ? serial / secs : 0.0);
        std::fflush(stdout);
    }

    // Hybrid-loop section: memory-bound workloads at a scale where
    // long DRAM-bound quiet stretches dominate. Single-threaded on
    // purpose — this measures the main loop, not the sweep pool.
    // Low occupancy (1 warp/SM) is the regime the hybrid loop
    // targets: too few warps to hide DRAM latency, so most cycles
    // are fully stalled and skippable. High-occupancy configs hide
    // latency by design and leave little to skip (the gain there is
    // bounded by the idle fraction, not by this loop).
    sim::Config ffCfg = cfg;
    ffCfg.setInt("gpu.warps_per_sm", 1);
    bool userScale = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]).rfind("wl.scale=", 0) == 0)
            userScale = true;
    }
    if (!userScale)
        ffCfg.setDouble("wl.scale", 256.0);
    const std::vector<std::string> ffWorkloads = {"ccp", "bfs", "ge"};

    std::printf("\nFast-forward (gpu.fast_forward), gtsc/rc, "
                "wl.scale=%g:\n\n",
                ffCfg.getDouble("wl.scale", 1.0));
    std::printf("%-6s %12s %12s %14s %14s %10s %12s\n", "wl",
                "off secs", "on secs", "off Mcyc/s", "on Mcyc/s",
                "speedup", "skipped%");
    std::vector<FfRow> ffRows;
    for (const std::string &wl : ffWorkloads) {
        FfRow row = runFastForwardPair(ffCfg, wl);
        double mc = static_cast<double>(row.cycles) / 1e6;
        std::printf("%-6s %12.3f %12.3f %14.2f %14.2f %9.2fx %11.1f%%\n",
                    row.workload.c_str(), row.offSecs, row.onSecs,
                    row.offSecs > 0.0 ? mc / row.offSecs : 0.0,
                    row.onSecs > 0.0 ? mc / row.onSecs : 0.0,
                    row.onSecs > 0.0 ? row.offSecs / row.onSecs : 0.0,
                    row.cycles > 0
                        ? 100.0 * static_cast<double>(row.skipped) /
                              static_cast<double>(row.cycles)
                        : 0.0);
        std::fflush(stdout);
        ffRows.push_back(std::move(row));
    }

    std::printf("\n{\"bench\": \"sweep_scaling\", \"cells\": %zu, "
                "\"hw_threads\": %u, \"runs\": [",
                specs.size(), sim::ThreadPool::hardwareWorkers());
    for (std::size_t i = 0; i < rows.size(); ++i) {
        std::printf("%s{\"jobs\": %u, \"seconds\": %.4f, "
                    "\"speedup\": %.3f}",
                    i ? ", " : "", rows[i].first, rows[i].second,
                    serial > 0.0 ? serial / rows[i].second : 0.0);
    }
    std::printf("], \"fast_forward\": [");
    for (std::size_t i = 0; i < ffRows.size(); ++i) {
        const FfRow &r = ffRows[i];
        std::printf(
            "%s{\"workload\": \"%s\", \"off_seconds\": %.4f, "
            "\"on_seconds\": %.4f, \"cycles\": %llu, "
            "\"skipped\": %llu, \"speedup\": %.3f}",
            i ? ", " : "", r.workload.c_str(), r.offSecs, r.onSecs,
            static_cast<unsigned long long>(r.cycles),
            static_cast<unsigned long long>(r.skipped),
            r.onSecs > 0.0 ? r.offSecs / r.onSecs : 0.0);
    }
    std::printf("]}\n");
    return 0;
}
