/**
 * @file
 * Section VI-E ablation: L1 misses caused by lease expiration, TC vs
 * G-TSC. The paper reports ~48% fewer expiration misses for G-TSC
 * because logical time rolls slower than physical time for
 * load-heavy kernels.
 */

#include "bench_common.hh"

using namespace gtsc;
using namespace gtsc::bench;

int
main(int argc, char **argv)
{
    sim::Config cfg = benchCfg(argc, argv);

    harness::Table table({"bench", "TC expiry", "G-TSC expiry",
                          "G-TSC/TC", "TC hit%", "G-TSC hit%"});

    Sweep sweep(cfg);
    for (const auto &wl : workloads::allBenchmarks()) {
        sweep.plan({"tc", "rc", "TC"}, wl);
        sweep.plan({"gtsc", "rc", "G-TSC"}, wl);
    }

    std::vector<double> ratios;
    for (const auto &wl : workloads::allBenchmarks()) {
        const harness::RunResult &tc =
            sweep.get({"tc", "rc", "TC"}, wl);
        const harness::RunResult &gt =
            sweep.get({"gtsc", "rc", "G-TSC"}, wl);
        table.row(displayName(wl));
        table.cellInt(tc.l1MissExpired);
        table.cellInt(gt.l1MissExpired);
        double ratio =
            tc.l1MissExpired
                ? static_cast<double>(gt.l1MissExpired) /
                      static_cast<double>(tc.l1MissExpired)
                : 1.0;
        table.cell(ratio);
        auto hitrate = [](const harness::RunResult &r) {
            double total = static_cast<double>(
                r.l1Hits + r.l1MissCold + r.l1MissExpired);
            return total > 0 ? 100.0 * r.l1Hits / total : 0.0;
        };
        table.cell(hitrate(tc), 1);
        table.cell(hitrate(gt), 1);
        if (tc.l1MissExpired > 0)
            ratios.push_back(ratio);
    }
    std::fprintf(stderr, "%40s\r", "");

    std::printf("Ablation (Sec VI-E): L1 lease-expiration misses, "
                "TC-RC vs G-TSC-RC\n\n");
    std::printf("%s\n", table.toString().c_str());
    std::printf("geomean G-TSC/TC expiry-miss ratio = %.3f "
                "(paper: ~0.52)\n",
                harness::geomean(ratios));
    return 0;
}
