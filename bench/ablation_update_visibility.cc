/**
 * @file
 * Section V-A ablation: update-visibility option 1 (block accesses
 * to the line until the store is acknowledged) vs option 2 (keep the
 * old copy readable by other warps, merge on ack). The paper found
 * option 1's overhead negligible, so it avoids option 2's extra
 * hardware; this harness measures the performance delta.
 */

#include "bench_common.hh"

using namespace gtsc;
using namespace gtsc::bench;

int
main(int argc, char **argv)
{
    sim::Config cfg = benchCfg(argc, argv);

    harness::Table table({"bench", "block(cyc)", "dualcopy(cyc)",
                          "writebuf(cyc)", "block/dualcopy",
                          "block/writebuf"});

    std::vector<double> r12;
    std::vector<double> r13;
    for (const auto &wl : workloads::coherentSet()) {
        sim::Config c1 = cfg;
        c1.set("gtsc.update_visibility", "block");
        harness::RunResult r1 =
            runCell(c1, {"gtsc", "rc", "opt1"}, wl);
        sim::Config c2 = cfg;
        c2.set("gtsc.update_visibility", "dualcopy");
        harness::RunResult r2 =
            runCell(c2, {"gtsc", "rc", "opt2"}, wl);
        sim::Config c3 = cfg;
        c3.set("gtsc.update_visibility", "writebuffer");
        harness::RunResult r3 =
            runCell(c3, {"gtsc", "rc", "wbuf"}, wl);
        table.row(displayName(wl));
        table.cellInt(r1.cycles);
        table.cellInt(r2.cycles);
        table.cellInt(r3.cycles);
        table.cell(static_cast<double>(r1.cycles) /
                   static_cast<double>(r2.cycles));
        table.cell(static_cast<double>(r1.cycles) /
                   static_cast<double>(r3.cycles));
        r12.push_back(static_cast<double>(r1.cycles) /
                      static_cast<double>(r2.cycles));
        r13.push_back(static_cast<double>(r1.cycles) /
                      static_cast<double>(r3.cycles));
    }
    std::fprintf(stderr, "%40s\r", "");

    std::printf("Ablation (Sec V-A): update visibility — option 1 "
                "(block) vs option 2 (dual copy) vs the rejected "
                "write-buffer design, G-TSC-RC\n\n");
    std::printf("%s\n", table.toString().c_str());
    std::printf("geomean block/dualcopy = %.3f, block/writebuffer = "
                "%.3f\n(paper: ~1.0 — blocking's overhead is "
                "negligible, so the cheaper option 1 wins;\nthe "
                "write buffer's area cost buys nothing)\n",
                harness::geomean(r12), harness::geomean(r13));
    return 0;
}
