/**
 * @file
 * Section V-A ablation: update-visibility option 1 (block accesses
 * to the line until the store is acknowledged) vs option 2 (keep the
 * old copy readable by other warps, merge on ack). The paper found
 * option 1's overhead negligible, so it avoids option 2's extra
 * hardware; this harness measures the performance delta.
 */

#include "bench_common.hh"

using namespace gtsc;
using namespace gtsc::bench;

int
main(int argc, char **argv)
{
    sim::Config cfg = benchCfg(argc, argv);

    harness::Table table({"bench", "block(cyc)", "dualcopy(cyc)",
                          "writebuf(cyc)", "block/dualcopy",
                          "block/writebuf"});

    auto visCfg = [&cfg](const char *mode) {
        sim::Config c = cfg;
        c.set("gtsc.update_visibility", mode);
        return c;
    };

    Sweep sweep(cfg);
    for (const auto &wl : workloads::coherentSet()) {
        sweep.plan(visCfg("block"), {"gtsc", "rc", "opt1"}, wl);
        sweep.plan(visCfg("dualcopy"), {"gtsc", "rc", "opt2"}, wl);
        sweep.plan(visCfg("writebuffer"), {"gtsc", "rc", "wbuf"}, wl);
    }

    std::vector<double> r12;
    std::vector<double> r13;
    for (const auto &wl : workloads::coherentSet()) {
        const harness::RunResult &r1 =
            sweep.get(visCfg("block"), {"gtsc", "rc", "opt1"}, wl);
        const harness::RunResult &r2 =
            sweep.get(visCfg("dualcopy"), {"gtsc", "rc", "opt2"}, wl);
        const harness::RunResult &r3 =
            sweep.get(visCfg("writebuffer"), {"gtsc", "rc", "wbuf"},
                      wl);
        table.row(displayName(wl));
        table.cellInt(r1.cycles);
        table.cellInt(r2.cycles);
        table.cellInt(r3.cycles);
        table.cell(static_cast<double>(r1.cycles) /
                   static_cast<double>(r2.cycles));
        table.cell(static_cast<double>(r1.cycles) /
                   static_cast<double>(r3.cycles));
        r12.push_back(static_cast<double>(r1.cycles) /
                      static_cast<double>(r2.cycles));
        r13.push_back(static_cast<double>(r1.cycles) /
                      static_cast<double>(r3.cycles));
    }
    std::fprintf(stderr, "%40s\r", "");

    std::printf("Ablation (Sec V-A): update visibility — option 1 "
                "(block) vs option 2 (dual copy) vs the rejected "
                "write-buffer design, G-TSC-RC\n\n");
    std::printf("%s\n", table.toString().c_str());
    std::printf("geomean block/dualcopy = %.3f, block/writebuffer = "
                "%.3f\n(paper: ~1.0 — blocking's overhead is "
                "negligible, so the cheaper option 1 wins;\nthe "
                "write buffer's area cost buys nothing)\n",
                harness::geomean(r12), harness::geomean(r13));
    return 0;
}
