/**
 * @file
 * Figure 16: total GPU energy per protocol/model normalized to the
 * no-L1 baseline (lower = better). The paper reports ~11% less
 * energy for G-TSC than TC with RC on the coherence set, and notes
 * SC sometimes saving energy despite lower performance (idle cores).
 */

#include "bench_common.hh"

using namespace gtsc;
using namespace gtsc::bench;

int
main(int argc, char **argv)
{
    sim::Config cfg = benchCfg(argc, argv);
    auto columns = figureColumns();

    harness::Table table(
        {"bench", "TC-SC", "TC-RC", "G-TSC-SC", "G-TSC-RC"});

    Sweep sweep(cfg);
    for (const auto &wl : workloads::allBenchmarks()) {
        sweep.plan({"nol1", "rc", "BL"}, wl);
        for (const auto &pc : columns)
            sweep.plan(pc, wl);
    }

    std::map<std::string, std::map<std::string, double>> norm;
    for (const auto &wl : workloads::allBenchmarks()) {
        const harness::RunResult &bl =
            sweep.get({"nol1", "rc", "BL"}, wl);
        double base = bl.energy.total();
        table.row(displayName(wl));
        for (const auto &pc : columns) {
            const harness::RunResult &r = sweep.get(pc, wl);
            double v = r.energy.total() / base;
            norm[pc.label][wl] = v;
            table.cell(v);
        }
    }
    std::fprintf(stderr, "%40s\r", "");

    std::printf("Figure 16: total energy normalized to BL (no L1); "
                "lower is better\n\n");
    std::printf("%s\n", table.toString().c_str());

    auto geo = [&](const std::string &label) {
        std::vector<double> xs;
        for (const auto &wl : workloads::coherentSet())
            xs.push_back(norm[label][wl]);
        return harness::geomean(xs);
    };
    std::printf("G-TSC-RC energy / TC-RC energy (coherence set) = "
                "%.3f (paper: ~0.89-0.91)\n",
                geo("G-TSC-RC") / geo("TC-RC"));
    return 0;
}
