/**
 * @file
 * Figure 14: G-TSC-RC performance across logical lease values
 * {8, 12, 16, 20}, normalized to BL. The paper's finding is
 * insensitivity: leases are logical time, so the curves are flat.
 */

#include "bench_common.hh"

using namespace gtsc;
using namespace gtsc::bench;

int
main(int argc, char **argv)
{
    sim::Config cfg = benchCfg(argc, argv);
    const std::vector<std::uint64_t> leases = {8, 12, 16, 20};

    harness::Table table({"bench", "lease=8", "lease=12", "lease=16",
                          "lease=20", "max/min"});

    auto leaseCfg = [&cfg](std::uint64_t lease) {
        sim::Config c = cfg;
        c.setInt("gtsc.lease", static_cast<std::int64_t>(lease));
        return c;
    };

    Sweep sweep(cfg);
    for (const auto &wl : workloads::allBenchmarks()) {
        sweep.plan({"nol1", "rc", "BL"}, wl);
        for (auto lease : leases)
            sweep.plan(leaseCfg(lease), {"gtsc", "rc", "G-TSC-RC"}, wl);
    }
    for (const auto &wl : workloads::coherentSet()) {
        for (std::uint64_t lease : {20ull, 4000ull, 12000ull})
            sweep.plan(leaseCfg(lease), {"gtsc", "rc", "G-TSC-RC"}, wl);
    }

    std::vector<double> spreads;
    for (const auto &wl : workloads::allBenchmarks()) {
        const harness::RunResult &bl =
            sweep.get({"nol1", "rc", "BL"}, wl);
        double base = static_cast<double>(bl.cycles);
        table.row(displayName(wl));
        double lo = 1e300;
        double hi = 0;
        for (auto lease : leases) {
            const harness::RunResult &r = sweep.get(
                leaseCfg(lease), {"gtsc", "rc", "G-TSC-RC"}, wl);
            double s = base / static_cast<double>(r.cycles);
            table.cell(s);
            lo = std::min(lo, s);
            hi = std::max(hi, s);
        }
        table.cell(hi / lo);
        spreads.push_back(hi / lo);
    }
    std::fprintf(stderr, "%40s\r", "");

    std::printf("Figure 14: G-TSC-RC speedup over BL across lease "
                "values (flat = insensitive)\n\n");
    std::printf("%s\n", table.toString().c_str());
    std::printf("geomean max/min spread = %.3f (paper: ~1.0, "
                "insensitive in 8-20)\n\n",
                harness::geomean(spreads));
    std::printf(
        "In pure logical time, every timestamp-advancing mechanism\n"
        "scales with the lease, so orderings -- and hence cycles --\n"
        "are exactly lease-invariant in 8-20. Sensitivity only\n"
        "appears when large leases make the 16-bit timestamps wrap\n"
        "(Section VI-E: 'large leases cause the timestamp to roll\n"
        "faster'):\n\n");

    harness::Table roll({"bench", "lease", "cycles", "ts_resets"});
    for (const auto &wl : workloads::coherentSet()) {
        for (std::uint64_t lease : {20ull, 4000ull, 12000ull}) {
            const harness::RunResult &r = sweep.get(
                leaseCfg(lease), {"gtsc", "rc", "G-TSC-RC"}, wl);
            roll.row(displayName(wl));
            roll.cellInt(lease);
            roll.cellInt(r.cycles);
            roll.cellInt(r.tsResets);
        }
    }
    std::fprintf(stderr, "%40s\r", "");
    std::printf("%s\n", roll.toString().c_str());
    return 0;
}
