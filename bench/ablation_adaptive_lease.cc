/**
 * @file
 * Extension experiment: adaptive lease prediction (inspired by
 * Tardis 2.0's "optimized lease policies", which the paper cites as
 * related work). Blocks that keep renewing without intervening
 * stores earn exponentially longer leases. Expected trade-off:
 * fewer renewal requests (less NoC traffic) at the cost of faster
 * timestamp rollover (more resets with narrow timestamps).
 */

#include "bench_common.hh"

using namespace gtsc;
using namespace gtsc::bench;

int
main(int argc, char **argv)
{
    sim::Config cfg = benchCfg(argc, argv);

    harness::Table table({"bench", "fixed(cyc)", "adapt(cyc)",
                          "fixed renewals", "adapt renewals",
                          "fixed resets", "adapt resets"});

    auto adaptCfg = [&cfg](bool adaptive) {
        sim::Config c = cfg;
        c.setBool("gtsc.adaptive_lease", adaptive);
        return c;
    };

    Sweep sweep(cfg);
    for (const auto &wl : workloads::allBenchmarks()) {
        sweep.plan(adaptCfg(false), {"gtsc", "rc", "fixed"}, wl);
        sweep.plan(adaptCfg(true), {"gtsc", "rc", "adaptive"}, wl);
    }

    std::vector<double> renewal_ratio;
    std::vector<double> cycle_ratio;
    for (const auto &wl : workloads::allBenchmarks()) {
        const harness::RunResult &fixed =
            sweep.get(adaptCfg(false), {"gtsc", "rc", "fixed"}, wl);
        const harness::RunResult &adapt =
            sweep.get(adaptCfg(true), {"gtsc", "rc", "adaptive"}, wl);
        table.row(displayName(wl));
        table.cellInt(fixed.cycles);
        table.cellInt(adapt.cycles);
        table.cellInt(fixed.renewalsSent);
        table.cellInt(adapt.renewalsSent);
        table.cellInt(fixed.tsResets);
        table.cellInt(adapt.tsResets);
        if (fixed.renewalsSent > 0) {
            renewal_ratio.push_back(
                (static_cast<double>(adapt.renewalsSent) + 1.0) /
                (static_cast<double>(fixed.renewalsSent) + 1.0));
        }
        cycle_ratio.push_back(static_cast<double>(adapt.cycles) /
                              static_cast<double>(fixed.cycles));
    }
    std::fprintf(stderr, "%40s\r", "");

    std::printf("Extension: adaptive lease prediction "
                "(Tardis-2.0-style) on G-TSC-RC\n\n%s\n",
                table.toString().c_str());
    std::printf("geomean renewals adaptive/fixed = %.3f, cycles "
                "adaptive/fixed = %.3f\n",
                harness::geomean(renewal_ratio),
                harness::geomean(cycle_ratio));
    return 0;
}
