/**
 * @file
 * Figure 17: L1 cache energy (joules) per protocol/model — absolute,
 * not normalized, as in the paper. TC's per-access metadata is a
 * single 32-bit timestamp vs G-TSC's two narrow timestamps plus the
 * warp table, so TC consumes slightly less L1 energy.
 */

#include "bench_common.hh"

using namespace gtsc;
using namespace gtsc::bench;

int
main(int argc, char **argv)
{
    sim::Config cfg = benchCfg(argc, argv);
    auto columns = figureColumns();

    harness::Table table(
        {"bench", "TC-SC", "TC-RC", "G-TSC-SC", "G-TSC-RC"});

    Sweep sweep(cfg);
    for (const auto &wl : workloads::allBenchmarks()) {
        for (const auto &pc : columns)
            sweep.plan(pc, wl);
    }

    double tc_sum = 0;
    double gtsc_sum = 0;
    for (const auto &wl : workloads::allBenchmarks()) {
        table.row(displayName(wl));
        for (const auto &pc : columns) {
            const harness::RunResult &r = sweep.get(pc, wl);
            table.cell(r.energy.l1 * 1e6, 2); // microjoules
            if (pc.label == "TC-RC")
                tc_sum += r.energy.l1;
            if (pc.label == "G-TSC-RC")
                gtsc_sum += r.energy.l1;
        }
    }
    std::fprintf(stderr, "%40s\r", "");

    std::printf("Figure 17: L1 cache energy (microjoules)\n\n");
    std::printf("%s\n", table.toString().c_str());
    std::printf("total TC-RC %.2f uJ vs G-TSC-RC %.2f uJ "
                "(paper: TC slightly lower)\n",
                tc_sum * 1e6, gtsc_sum * 1e6);
    return 0;
}
