/**
 * @file
 * Figure 15: interconnect traffic (bytes) of each protocol/model,
 * normalized to the no-L1 baseline (lower = better). The paper
 * reports ~20% less traffic for G-TSC vs TC with RC on the
 * coherence set (data-less renewals + slower logical clock).
 */

#include "bench_common.hh"

using namespace gtsc;
using namespace gtsc::bench;

int
main(int argc, char **argv)
{
    sim::Config cfg = benchCfg(argc, argv);
    auto columns = figureColumns();

    harness::Table table(
        {"bench", "TC-SC", "TC-RC", "G-TSC-SC", "G-TSC-RC"});

    Sweep sweep(cfg);
    for (const auto &wl : workloads::allBenchmarks()) {
        sweep.plan({"nol1", "rc", "BL"}, wl);
        for (const auto &pc : columns)
            sweep.plan(pc, wl);
    }

    std::map<std::string, std::map<std::string, double>> norm;
    for (const auto &wl : workloads::allBenchmarks()) {
        const harness::RunResult &bl =
            sweep.get({"nol1", "rc", "BL"}, wl);
        double base = static_cast<double>(bl.nocBytes);
        table.row(displayName(wl));
        for (const auto &pc : columns) {
            const harness::RunResult &r = sweep.get(pc, wl);
            double v = static_cast<double>(r.nocBytes) / base;
            norm[pc.label][wl] = v;
            table.cell(v);
        }
    }
    std::fprintf(stderr, "%40s\r", "");

    std::printf("Figure 15: NoC traffic normalized to BL (no L1); "
                "lower is better\n\n");
    std::printf("%s\n", table.toString().c_str());

    auto geo = [&](const std::string &label,
                   const std::vector<std::string> &set) {
        std::vector<double> xs;
        for (const auto &wl : set)
            xs.push_back(norm[label][wl]);
        return harness::geomean(xs);
    };
    std::printf("G-TSC-RC traffic / TC-RC traffic (coherence set) = "
                "%.3f (paper: ~0.80)\n",
                geo("G-TSC-RC", workloads::coherentSet()) /
                    geo("TC-RC", workloads::coherentSet()));
    std::printf("G-TSC-SC traffic / TC-SC traffic (coherence set) = "
                "%.3f (paper: ~0.84)\n\n",
                geo("G-TSC-SC", workloads::coherentSet()) /
                    geo("TC-SC", workloads::coherentSet()));

    // Where the savings come from: bytes by message type. G-TSC
    // answers unchanged-data renewals with 10-byte BusRnw messages;
    // TC must re-send 140-byte fills.
    std::printf("Traffic composition (KB, coherence set totals):\n\n");
    harness::Table mix({"protocol", "BusRd", "BusWr", "BusFill",
                        "BusRnw", "BusWrAck", "total"});
    for (const auto &pc :
         std::vector<ProtoCfg>{{"tc", "rc", "TC-RC"},
                               {"gtsc", "rc", "G-TSC-RC"}}) {
        std::map<std::string, double> kb;
        double total = 0;
        for (const auto &wl : workloads::coherentSet()) {
            // Cells already simulated for the main table: the sweep
            // cache hands the same results back without re-running.
            const harness::RunResult &r = sweep.get(pc, wl);
            for (const char *t : {"BusRd", "BusWr", "BusFill",
                                  "BusRnw", "BusWrAck"}) {
                double b = static_cast<double>(
                    r.stats.get(std::string("noc.req.bytes.") + t) +
                    r.stats.get(std::string("noc.resp.bytes.") + t));
                kb[t] += b / 1024.0;
                total += b / 1024.0;
            }
        }
        mix.row(pc.label);
        for (const char *t : {"BusRd", "BusWr", "BusFill", "BusRnw",
                              "BusWrAck"})
            mix.cell(kb[t], 1);
        mix.cell(total, 1);
    }
    std::fprintf(stderr, "%40s\r", "");
    std::printf("%s\n", mix.toString().c_str());
    return 0;
}
