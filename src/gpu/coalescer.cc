#include "gpu/coalescer.hh"

#include "sim/log.hh"

namespace gtsc::gpu
{

std::vector<mem::Access>
Coalescer::coalesce(const WarpInstr &instr, unsigned warp_size, SmId sm,
                    WarpId warp)
{
    bool is_store = (instr.op == WarpInstr::Op::Store);
    GTSC_ASSERT(is_store || instr.op == WarpInstr::Op::Load ||
                    instr.op == WarpInstr::Op::SpinLoad,
                "coalesce of non-memory instruction");

    std::vector<mem::Access> out;
    for (unsigned lane = 0; lane < warp_size; ++lane) {
        if (!(instr.activeMask & (1u << lane)))
            continue;
        Addr line = mem::lineAlign(instr.addr[lane]);
        unsigned word = mem::wordInLine(instr.addr[lane]);

        mem::Access *acc = nullptr;
        for (auto &a : out) {
            if (a.lineAddr == line) {
                acc = &a;
                break;
            }
        }
        if (!acc) {
            out.emplace_back();
            acc = &out.back();
            acc->isStore = is_store;
            acc->lineAddr = line;
            acc->sm = sm;
            acc->warp = warp;
        }
        acc->wordMask |= (1u << word);
        if (is_store) {
            acc->storeData.setWord(word, instr.hasValue
                                             ? instr.value
                                             : values_.next());
        }
    }
    return out;
}

} // namespace gtsc::gpu
