#include "gpu/coalescer.hh"

#include "sim/log.hh"

namespace gtsc::gpu
{

void
Coalescer::coalesce(const WarpInstr &instr, unsigned warp_size, SmId sm,
                    WarpId warp, std::vector<mem::Access> &out)
{
    bool is_store = (instr.op == WarpInstr::Op::Store);
    GTSC_ASSERT(is_store || instr.op == WarpInstr::Op::Load ||
                    instr.op == WarpInstr::Op::SpinLoad,
                "coalesce of non-memory instruction");

    out.clear();
    for (unsigned lane = 0; lane < warp_size; ++lane) {
        if (!(instr.activeMask & (1u << lane)))
            continue;
        Addr a = instr.laneAddr(lane);
        Addr line = mem::lineAlign(a);
        unsigned word = mem::wordInLine(a);

        mem::Access *acc = nullptr;
        for (auto &a : out) {
            if (a.lineAddr == line) {
                acc = &a;
                break;
            }
        }
        if (!acc) {
            out.emplace_back();
            acc = &out.back();
            acc->isStore = is_store;
            acc->lineAddr = line;
            acc->sm = sm;
            acc->warp = warp;
        }
        acc->wordMask |= (1u << word);
        if (is_store) {
            acc->storeData.setWord(word, instr.hasValue
                                             ? instr.value
                                             : values_.next());
        }
    }
}

} // namespace gtsc::gpu
