#include "gpu/coalescer.hh"

#include <bit>

#include "sim/log.hh"

namespace gtsc::gpu
{

namespace
{

/** Contiguous word mask: `count` bits starting at `first`. */
std::uint32_t
contigMask(unsigned first, unsigned count)
{
    std::uint32_t bits =
        (count >= 32) ? 0xffffffffu : ((std::uint32_t{1} << count) - 1u);
    return bits << first;
}

} // namespace

CoalescePlan
Coalescer::plan(const WarpInstr &instr, unsigned warp_size)
{
    CoalescePlan p;
    if (!instr.gather.empty() || warp_size == 0 || warp_size > 32)
        return p;

    if (instr.stride == 0 && instr.activeMask != 0) {
        p.kind = CoalescePlan::Kind::Broadcast;
        p.segs = 1;
        p.firstWord = static_cast<std::uint8_t>(mem::wordInLine(instr.base));
        p.line[0] = mem::lineAlign(instr.base);
        p.mask[0] = std::uint32_t{1} << p.firstWord;
        return p;
    }

    // The fully-coalesced family: one word per lane, consecutive
    // words, every lane active. Lane l's word index is
    // floor(base/4) + l regardless of base alignment, so the access
    // set is one or two lines with contiguous masks. Guard against
    // address wraparound near 2^64, where the line[1] = line[0]+128
    // assumption breaks.
    if (instr.stride == 4 &&
        instr.activeMask == WarpInstr::laneMask(warp_size) &&
        instr.base + std::uint64_t{4} * warp_size > instr.base) {
        unsigned w0 = mem::wordInLine(instr.base);
        unsigned cnt0 = warp_size < 32u - w0 ? warp_size : 32u - w0;
        p.kind = CoalescePlan::Kind::Strided;
        p.firstWord = static_cast<std::uint8_t>(w0);
        p.lanesInSeg0 = static_cast<std::uint8_t>(cnt0);
        p.line[0] = mem::lineAlign(instr.base);
        p.mask[0] = contigMask(w0, cnt0);
        if (cnt0 < warp_size) {
            p.segs = 2;
            p.line[1] = p.line[0] + mem::kLineBytes;
            p.mask[1] = contigMask(0, warp_size - cnt0);
        } else {
            p.segs = 1;
        }
        return p;
    }

    return p;
}

mem::Access &
Coalescer::slot(std::vector<mem::Access> &out, unsigned idx)
{
    if (idx < out.size())
        return out[idx];
    out.emplace_back();
    return out.back();
}

void
Coalescer::coalesce(const WarpInstr &instr, const CoalescePlan &plan,
                    unsigned warp_size, SmId sm, WarpId warp,
                    std::vector<mem::Access> &out)
{
    bool is_store = (instr.op == WarpInstr::Op::Store);
    GTSC_ASSERT(is_store || instr.op == WarpInstr::Op::Load ||
                    instr.op == WarpInstr::Op::SpinLoad,
                "coalesce of non-memory instruction");

    switch (plan.kind) {
    case CoalescePlan::Kind::Broadcast: {
        mem::Access &acc = slot(out, 0);
        acc.beginLine(is_store, plan.line[0], sm, warp);
        acc.wordMask = plan.mask[0];
        if (is_store) {
            // The slow path writes the same word once per active
            // lane; the last draw wins, but the draws themselves are
            // observable through later stores' values, so consume
            // exactly popcount(activeMask) of them.
            std::uint32_t v = instr.value;
            if (!instr.hasValue) {
                unsigned n = static_cast<unsigned>(
                    std::popcount(instr.activeMask));
                for (unsigned i = 0; i < n; ++i)
                    v = values_.next();
            }
            acc.storeData.setWord(plan.firstWord, v);
        }
        out.resize(1);
        return;
    }
    case CoalescePlan::Kind::Strided: {
        for (unsigned s = 0; s < plan.segs; ++s) {
            mem::Access &acc = slot(out, s);
            acc.beginLine(is_store, plan.line[s], sm, warp);
            acc.wordMask = plan.mask[s];
        }
        if (is_store) {
            unsigned cnt0 = plan.lanesInSeg0;
            for (unsigned l = 0; l < cnt0; ++l)
                out[0].storeData.setWord(
                    plan.firstWord + l,
                    instr.hasValue ? instr.value : values_.next());
            for (unsigned l = cnt0; l < warp_size; ++l)
                out[1].storeData.setWord(
                    l - cnt0,
                    instr.hasValue ? instr.value : values_.next());
        }
        out.resize(plan.segs);
        return;
    }
    case CoalescePlan::Kind::Slow:
        break;
    }

    coalesceSlow(instr, warp_size, sm, warp, out);
}

void
Coalescer::coalesceSlow(const WarpInstr &instr, unsigned warp_size,
                        SmId sm, WarpId warp,
                        std::vector<mem::Access> &out)
{
    bool is_store = (instr.op == WarpInstr::Op::Store);
    unsigned used = 0;
    for (unsigned lane = 0; lane < warp_size; ++lane) {
        if (!(instr.activeMask & (1u << lane)))
            continue;
        Addr a = instr.laneAddr(lane);
        Addr line = mem::lineAlign(a);
        unsigned word = mem::wordInLine(a);

        mem::Access *acc = nullptr;
        for (unsigned i = 0; i < used; ++i) {
            if (out[i].lineAddr == line) {
                acc = &out[i];
                break;
            }
        }
        if (!acc) {
            acc = &slot(out, used++);
            acc->beginLine(is_store, line, sm, warp);
        }
        acc->wordMask |= (1u << word);
        if (is_store) {
            acc->storeData.setWord(word, instr.hasValue
                                             ? instr.value
                                             : values_.next());
        }
    }
    out.resize(used);
}

} // namespace gtsc::gpu
