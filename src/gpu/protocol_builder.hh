/**
 * @file
 * Factory interface that plugs a coherence protocol into the GPU.
 *
 * A builder creates one L1Controller per SM and one L2Controller per
 * partition; prepare() runs first so the builder can allocate state
 * shared across controllers (e.g. G-TSC's timestamp domain used by
 * the overflow/reset protocol).
 */

#ifndef GTSC_GPU_PROTOCOL_BUILDER_HH_
#define GTSC_GPU_PROTOCOL_BUILDER_HH_

#include <memory>
#include <string>

#include "gpu/params.hh"
#include "mem/coherence_probe.hh"
#include "mem/controllers.hh"
#include "mem/dram.hh"
#include "mem/main_memory.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace gtsc::gpu
{

class ProtocolBuilder
{
  public:
    virtual ~ProtocolBuilder() = default;

    /** Short protocol name ("gtsc", "tc", "nol1", "noncoh"). */
    virtual std::string name() const = 0;

    /** Allocate cross-controller shared state. Called once. */
    virtual void
    prepare(const sim::Config &cfg, sim::StatSet &stats,
            const GpuParams &params)
    {
        (void)cfg;
        (void)stats;
        (void)params;
    }

    virtual std::unique_ptr<mem::L1Controller>
    makeL1(SmId sm, const sim::Config &cfg, sim::StatSet &stats,
           sim::EventQueue &events, mem::CoherenceProbe *probe) = 0;

    virtual std::unique_ptr<mem::L2Controller>
    makeL2(PartitionId part, const sim::Config &cfg, sim::StatSet &stats,
           sim::EventQueue &events, mem::DramChannel &dram,
           mem::MainMemory &memory, mem::CoherenceProbe *probe) = 0;

    /** False for the L1-bypass baseline (energy model skips L1). */
    virtual bool usesL1() const { return true; }
};

} // namespace gtsc::gpu

#endif // GTSC_GPU_PROTOCOL_BUILDER_HH_
