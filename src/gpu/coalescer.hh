/**
 * @file
 * The per-SM coalescing unit.
 *
 * Merges the per-lane addresses of one warp memory instruction into
 * the minimum number of line-granular accesses (Section II-A). Store
 * values are drawn from a shared monotonically increasing source so
 * every written word carries a unique value the coherence checker
 * can match against; explicit values (synchronization flags) pass
 * through unchanged.
 */

#ifndef GTSC_GPU_COALESCER_HH_
#define GTSC_GPU_COALESCER_HH_

#include <cstdint>
#include <vector>

#include "gpu/kernel.hh"
#include "mem/access.hh"

namespace gtsc::gpu
{

/**
 * Unique-value generator for store payloads.
 *
 * Each SM owns one, seeded with a disjoint arithmetic progression
 * (first = sm + 1, stride = numSms): values stay globally unique —
 * the coherence checker matches loads to stores by value — without
 * any cross-SM shared state, so SMs sharded across threads draw
 * values independently and the sequence each SM sees is identical
 * at any shard count. The default (1, 1) keeps the old single-SM
 * behaviour for unit tests.
 */
class StoreValueSource
{
  public:
    StoreValueSource() = default;
    StoreValueSource(std::uint32_t first, std::uint32_t stride)
        : next_(first), stride_(stride)
    {}

    std::uint32_t
    next()
    {
        std::uint32_t v = next_;
        next_ += stride_;
        return v;
    }

  private:
    std::uint32_t next_ = 1;
    std::uint32_t stride_ = 1;
};

class Coalescer
{
  public:
    explicit Coalescer(StoreValueSource &values) : values_(values) {}

    /**
     * Split a Load/Store instruction into line accesses, replacing
     * the contents of `out` (cleared first; capacity is reused so a
     * recycled buffer never reallocates in steady state). Lane i
     * participates when activeMask bit i is set; warp_size bounds
     * the lanes examined. Access ids are left 0 (the SM assigns
     * them).
     */
    void coalesce(const WarpInstr &instr, unsigned warp_size, SmId sm,
                  WarpId warp, std::vector<mem::Access> &out);

  private:
    StoreValueSource &values_;
};

} // namespace gtsc::gpu

#endif // GTSC_GPU_COALESCER_HH_
