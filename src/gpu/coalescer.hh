/**
 * @file
 * The per-SM coalescing unit.
 *
 * Merges the per-lane addresses of one warp memory instruction into
 * the minimum number of line-granular accesses (Section II-A). Store
 * values are drawn from a shared monotonically increasing source so
 * every written word carries a unique value the coherence checker
 * can match against; explicit values (synchronization flags) pass
 * through unchanged.
 */

#ifndef GTSC_GPU_COALESCER_HH_
#define GTSC_GPU_COALESCER_HH_

#include <cstdint>
#include <vector>

#include "gpu/kernel.hh"
#include "mem/access.hh"

namespace gtsc::gpu
{

/**
 * Unique-value generator for store payloads.
 *
 * Each SM owns one, seeded with a disjoint arithmetic progression
 * (first = sm + 1, stride = numSms): values stay globally unique —
 * the coherence checker matches loads to stores by value — without
 * any cross-SM shared state, so SMs sharded across threads draw
 * values independently and the sequence each SM sees is identical
 * at any shard count. The default (1, 1) keeps the old single-SM
 * behaviour for unit tests.
 */
class StoreValueSource
{
  public:
    StoreValueSource() = default;
    StoreValueSource(std::uint32_t first, std::uint32_t stride)
        : next_(first), stride_(stride)
    {}

    std::uint32_t
    next()
    {
        std::uint32_t v = next_;
        next_ += stride_;
        return v;
    }

  private:
    std::uint32_t next_ = 1;
    std::uint32_t stride_ = 1;
};

/**
 * Pre-decoded coalescing plan for one memory WarpInstr: the target
 * line set and per-line word masks, computed once when the SM
 * fetches the instruction into a warp's cursor instead of re-derived
 * per issue. Two fast families cover nearly every instruction the
 * workload generators emit:
 *
 *  - Strided: stride == 4 with a full contiguous active mask. Lane
 *    word indices are wordInLine(base) + lane, so the access set is
 *    one or two lines with contiguous word masks — O(1) to compute,
 *    no per-lane loop at all for loads.
 *  - Broadcast: stride == 0. Every active lane hits one word of one
 *    line.
 *
 * Everything else (gathers, partial masks, odd strides) keeps
 * kind == Slow and takes the per-lane merge loop; the two paths are
 * equivalent by construction and pinned by randomized tests
 * (tests/gpu/coalescer_test.cc).
 */
struct CoalescePlan
{
    enum class Kind : std::uint8_t
    {
        Slow,      ///< per-lane merge loop
        Strided,   ///< 1-2 contiguous segments (stride == 4, full mask)
        Broadcast, ///< single word (stride == 0)
    };

    Kind kind = Kind::Slow;
    std::uint8_t segs = 0;
    /** Strided: word index of lane 0 within line[0]. */
    std::uint8_t firstWord = 0;
    /** Strided: lanes mapping into line[0] (the rest hit line[1]). */
    std::uint8_t lanesInSeg0 = 0;
    Addr line[2] = {0, 0};
    std::uint32_t mask[2] = {0, 0};
};

class Coalescer
{
  public:
    explicit Coalescer(StoreValueSource &values) : values_(values) {}

    /**
     * Decode `instr`'s access pattern into a plan (see CoalescePlan).
     * Pure: any plan produced here makes coalesce() emit exactly what
     * the slow path would, including store-value draw order.
     */
    static CoalescePlan plan(const WarpInstr &instr, unsigned warp_size);

    /**
     * Split a Load/Store instruction into line accesses, replacing
     * the contents of `out` (live elements are recycled in place via
     * Access::beginLine and the vector resized, so a steady-state
     * buffer never reallocates or re-zeroes load payloads). Lane i
     * participates when activeMask bit i is set; warp_size bounds
     * the lanes examined. Access ids are left 0 (the SM assigns
     * them). `plan` must have been built from the same instr and
     * warp_size.
     */
    void coalesce(const WarpInstr &instr, const CoalescePlan &plan,
                  unsigned warp_size, SmId sm, WarpId warp,
                  std::vector<mem::Access> &out);

    /** Convenience overload: decode and split in one call (tests,
     *  cold paths). */
    void
    coalesce(const WarpInstr &instr, unsigned warp_size, SmId sm,
             WarpId warp, std::vector<mem::Access> &out)
    {
        coalesce(instr, plan(instr, warp_size), warp_size, sm, warp,
                 out);
    }

  private:
    mem::Access &slot(std::vector<mem::Access> &out, unsigned idx);

    void coalesceSlow(const WarpInstr &instr, unsigned warp_size,
                      SmId sm, WarpId warp,
                      std::vector<mem::Access> &out);

    StoreValueSource &values_;
};

} // namespace gtsc::gpu

#endif // GTSC_GPU_COALESCER_HH_
