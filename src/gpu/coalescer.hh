/**
 * @file
 * The per-SM coalescing unit.
 *
 * Merges the per-lane addresses of one warp memory instruction into
 * the minimum number of line-granular accesses (Section II-A). Store
 * values are drawn from a shared monotonically increasing source so
 * every written word carries a unique value the coherence checker
 * can match against; explicit values (synchronization flags) pass
 * through unchanged.
 */

#ifndef GTSC_GPU_COALESCER_HH_
#define GTSC_GPU_COALESCER_HH_

#include <cstdint>
#include <vector>

#include "gpu/kernel.hh"
#include "mem/access.hh"

namespace gtsc::gpu
{

/** Unique-value generator for store payloads. */
class StoreValueSource
{
  public:
    std::uint32_t next() { return ++last_; }

  private:
    std::uint32_t last_ = 0;
};

class Coalescer
{
  public:
    explicit Coalescer(StoreValueSource &values) : values_(values) {}

    /**
     * Split a Load/Store instruction into line accesses.
     * Lane i participates when activeMask bit i is set; warp_size
     * bounds the lanes examined. Access ids are left 0 (the SM
     * assigns them).
     */
    std::vector<mem::Access>
    coalesce(const WarpInstr &instr, unsigned warp_size, SmId sm,
             WarpId warp);

  private:
    StoreValueSource &values_;
};

} // namespace gtsc::gpu

#endif // GTSC_GPU_COALESCER_HH_
