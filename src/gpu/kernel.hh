/**
 * @file
 * The kernel IR: what warps execute.
 *
 * A WarpProgram is a lazily generated stream of warp-wide
 * instructions (SIMT: all active lanes execute the same op). This is
 * the substitution for running real CUDA kernels: workload generators
 * emit instruction streams with the same memory-access *structure*
 * as the paper's benchmarks (footprints, sharing, fences, compute
 * density) without the arithmetic.
 */

#ifndef GTSC_GPU_KERNEL_HH_
#define GTSC_GPU_KERNEL_HH_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "gpu/params.hh"
#include "mem/main_memory.hh"
#include "sim/types.hh"

namespace gtsc::gpu
{

/** One SIMT instruction as seen by the timing model. */
struct WarpInstr
{
    enum class Op : std::uint8_t
    {
        Compute,  ///< occupy the warp for computeCycles
        Load,     ///< per-lane global loads (coalesced by the LDST unit)
        Store,    ///< per-lane global stores
        Fence,    ///< memory fence (RC ordering point)
        SpinLoad, ///< lane-0 load retried until word >= spinExpect
        Exit,     ///< warp is done
    };

    Op op = Op::Exit;
    /** Store: use this value for all lanes instead of auto values. */
    bool hasValue = false;
    std::uint32_t computeCycles = 0;
    /** Bit i set = lane i participates (Load/Store). */
    std::uint32_t activeMask = 0xffffffffu;
    std::uint32_t value = 0;
    /** SpinLoad: proceed once the loaded word >= spinExpect. */
    std::uint32_t spinExpect = 0;
    /** SpinLoad: give up (and proceed) after this many attempts. */
    std::uint32_t spinMaxIters = 64;
    /**
     * Lane addressing. Active lane l accesses base + l*stride unless
     * `gather` is non-empty (then gather[l]). Nearly every
     * instruction is strided or scalar, so encoding the pattern
     * instead of 32 explicit lane addresses keeps the instruction a
     * few words: trace vectors, the per-issue instruction copy and
     * the trace-build loops all shrink ~4x.
     */
    Addr base = 0;
    std::uint64_t stride = 0;
    /** Per-lane byte addresses for scattered (indexed) accesses. */
    std::vector<Addr> gather;

    /** Byte address of lane l (caller checks activeMask). */
    Addr
    laneAddr(unsigned l) const
    {
        return gather.empty() ? base + l * stride : gather[l];
    }

    // --- convenience constructors ---
    static WarpInstr
    compute(std::uint32_t cycles)
    {
        WarpInstr i;
        i.op = Op::Compute;
        i.computeCycles = cycles;
        return i;
    }

    static WarpInstr
    fence()
    {
        WarpInstr i;
        i.op = Op::Fence;
        return i;
    }

    static WarpInstr
    exit()
    {
        return WarpInstr{};
    }

    /** Load with each active lane at base + lane*stride bytes. */
    static WarpInstr
    loadStrided(Addr base, unsigned warp_size, std::uint64_t stride = 4,
                std::uint32_t mask = 0xffffffffu)
    {
        WarpInstr i;
        i.op = Op::Load;
        i.activeMask = mask & laneMask(warp_size);
        i.base = base;
        i.stride = stride;
        return i;
    }

    static WarpInstr
    storeStrided(Addr base, unsigned warp_size, std::uint64_t stride = 4,
                 std::uint32_t mask = 0xffffffffu)
    {
        WarpInstr i;
        i.op = Op::Store;
        i.activeMask = mask & laneMask(warp_size);
        i.base = base;
        i.stride = stride;
        return i;
    }

    /** Load with explicit (scattered) per-lane addresses. */
    static WarpInstr
    loadGather(std::vector<Addr> addrs, std::uint32_t mask)
    {
        WarpInstr i;
        i.op = Op::Load;
        i.activeMask = mask;
        i.gather = std::move(addrs);
        return i;
    }

    /** Single-lane load (lane 0). */
    static WarpInstr
    loadScalar(Addr a)
    {
        WarpInstr i;
        i.op = Op::Load;
        i.activeMask = 1;
        i.base = a;
        return i;
    }

    /** Single-lane store (lane 0) with an explicit value. */
    static WarpInstr
    storeScalar(Addr a, std::uint32_t value)
    {
        WarpInstr i;
        i.op = Op::Store;
        i.activeMask = 1;
        i.base = a;
        i.hasValue = true;
        i.value = value;
        return i;
    }

    /** Spin until the word at `a` is >= expect. */
    static WarpInstr
    spinUntil(Addr a, std::uint32_t expect, std::uint32_t max_iters = 256)
    {
        WarpInstr i;
        i.op = Op::SpinLoad;
        i.activeMask = 1;
        i.base = a;
        i.spinExpect = expect;
        i.spinMaxIters = max_iters;
        return i;
    }

    static std::uint32_t
    laneMask(unsigned warp_size)
    {
        return warp_size >= 32 ? 0xffffffffu : ((1u << warp_size) - 1);
    }
};

/** A lazily produced instruction stream for one warp. */
class WarpProgram
{
  public:
    virtual ~WarpProgram() = default;

    /** Produce the next instruction; Op::Exit ends the warp. */
    virtual WarpInstr next() = 0;

    /**
     * The lane-0 word observed by the last completed Load/SpinLoad.
     * Lets programs branch on loaded values (litmus tests record
     * their outcomes through this hook). Called before the next
     * next().
     */
    virtual void observe(std::uint32_t value) { (void)value; }
};

/** A WarpProgram backed by a pre-built instruction vector. */
class TraceProgram : public WarpProgram
{
  public:
    explicit TraceProgram(std::vector<WarpInstr> instrs)
        : instrs_(std::move(instrs))
    {}

    WarpInstr
    next() override
    {
        if (pos_ >= instrs_.size())
            return WarpInstr::exit();
        return instrs_[pos_++];
    }

  private:
    std::vector<WarpInstr> instrs_;
    std::size_t pos_ = 0;
};

/**
 * A workload: a sequence of kernels, each providing one WarpProgram
 * per (sm, warp). Memory can be (re)initialized before each kernel;
 * verify() checks functional results after the run.
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    virtual std::string name() const = 0;

    /** Set 1 workloads need coherence for correctness. */
    virtual bool requiresCoherence() const = 0;

    virtual unsigned numKernels() const { return 1; }

    /** Initialize global memory before kernel `kernel` launches. */
    virtual void
    initMemory(mem::MainMemory &memory, unsigned kernel)
    {
        (void)memory;
        (void)kernel;
    }

    /** Build the instruction stream for one warp of one kernel. */
    virtual std::unique_ptr<WarpProgram>
    makeProgram(unsigned kernel, SmId sm, WarpId warp,
                const GpuParams &params) = 0;

    /** Functional check after the whole run; true = pass. */
    virtual bool
    verify(const mem::MainMemory &memory) const
    {
        (void)memory;
        return true;
    }
};

} // namespace gtsc::gpu

#endif // GTSC_GPU_KERNEL_HH_
