#include "gpu/gpu_system.hh"

#include <algorithm>

#include "core/gtsc_l1.hh"
#include "core/gtsc_l2.hh"
#include "noc/crossbar.hh"
#include "protocols/no_l1.hh"
#include "protocols/noncoh_l1.hh"
#include "protocols/simple_l2.hh"
#include "protocols/tc_l1.hh"
#include "protocols/tc_l2.hh"
#include "sim/log.hh"

namespace gtsc::gpu
{

/**
 * Static devirtualized loop bodies, instantiated per concrete
 * controller type. Each run is homogeneous (one L1 type, one L2
 * type), so one dynamic_cast sweep at construction replaces a
 * virtual dispatch per component per simulated cycle with direct,
 * inlinable calls.
 */
struct GpuSystem::Devirt
{
    template <typename T, typename B>
    static bool
    homogeneous(const std::vector<std::unique_ptr<B>> &v)
    {
        for (const auto &p : v) {
            if (dynamic_cast<const T *>(p.get()) == nullptr)
                return false;
        }
        return true;
    }

    template <typename T>
    static void
    tickL1(GpuSystem &g, Cycle c)
    {
        for (auto &p : g.l1s_)
            static_cast<T &>(*p).tick(c);
    }

    static void
    tickL1Generic(GpuSystem &g, Cycle c)
    {
        for (auto &p : g.l1s_)
            p->tick(c);
    }

    template <typename T>
    static void
    tickL2(GpuSystem &g, Cycle c)
    {
        for (auto &p : g.l2s_)
            static_cast<T &>(*p).tick(c);
    }

    static void
    tickL2Generic(GpuSystem &g, Cycle c)
    {
        for (auto &p : g.l2s_)
            p->tick(c);
    }

    /** Min horizon over the L1s, bailing once it reaches `floor`. */
    template <typename T>
    static Cycle
    horizonL1(const GpuSystem &g, Cycle now, Cycle floor)
    {
        Cycle next = kCycleNever;
        for (const auto &p : g.l1s_) {
            next = std::min(
                next, static_cast<const T &>(*p).nextWorkCycle(now));
            if (next <= floor)
                break;
        }
        return next;
    }

    static Cycle
    horizonL1Generic(const GpuSystem &g, Cycle now, Cycle floor)
    {
        Cycle next = kCycleNever;
        for (const auto &p : g.l1s_) {
            next = std::min(next, p->nextWorkCycle(now));
            if (next <= floor)
                break;
        }
        return next;
    }

    template <typename T>
    static Cycle
    horizonL2(const GpuSystem &g, Cycle now, Cycle floor)
    {
        Cycle next = kCycleNever;
        for (const auto &p : g.l2s_) {
            next = std::min(
                next, static_cast<const T &>(*p).nextWorkCycle(now));
            if (next <= floor)
                break;
        }
        return next;
    }

    static Cycle
    horizonL2Generic(const GpuSystem &g, Cycle now, Cycle floor)
    {
        Cycle next = kCycleNever;
        for (const auto &p : g.l2s_) {
            next = std::min(next, p->nextWorkCycle(now));
            if (next <= floor)
                break;
        }
        return next;
    }

    // Single-component variants: the active-set loops tick only the
    // ids their wheel popped, so the fan-out loop lives in the caller
    // and the per-id body devirtualizes here.
    template <typename T>
    static void
    tickOneL1(GpuSystem &g, unsigned i, Cycle c)
    {
        static_cast<T &>(*g.l1s_[i]).tick(c);
    }

    static void
    tickOneL1Generic(GpuSystem &g, unsigned i, Cycle c)
    {
        g.l1s_[i]->tick(c);
    }

    template <typename T>
    static void
    tickOneL2(GpuSystem &g, unsigned i, Cycle c)
    {
        static_cast<T &>(*g.l2s_[i]).tick(c);
    }

    static void
    tickOneL2Generic(GpuSystem &g, unsigned i, Cycle c)
    {
        g.l2s_[i]->tick(c);
    }

    template <typename T>
    static Cycle
    horizonOneL1(const GpuSystem &g, unsigned i, Cycle now)
    {
        return static_cast<const T &>(*g.l1s_[i]).nextWorkCycle(now);
    }

    static Cycle
    horizonOneL1Generic(const GpuSystem &g, unsigned i, Cycle now)
    {
        return g.l1s_[i]->nextWorkCycle(now);
    }

    template <typename T>
    static Cycle
    horizonOneL2(const GpuSystem &g, unsigned i, Cycle now)
    {
        return static_cast<const T &>(*g.l2s_[i]).nextWorkCycle(now);
    }

    static Cycle
    horizonOneL2Generic(const GpuSystem &g, unsigned i, Cycle now)
    {
        return g.l2s_[i]->nextWorkCycle(now);
    }

    template <typename T>
    static bool
    bindL1(GpuSystem &g)
    {
        if (!homogeneous<T>(g.l1s_))
            return false;
        g.tickL1s_ = &Devirt::tickL1<T>;
        g.l1Horizon_ = &Devirt::horizonL1<T>;
        g.tickOneL1_ = &Devirt::tickOneL1<T>;
        g.oneL1Horizon_ = &Devirt::horizonOneL1<T>;
        return true;
    }

    template <typename T>
    static bool
    bindL2(GpuSystem &g)
    {
        if (!homogeneous<T>(g.l2s_))
            return false;
        g.tickL2s_ = &Devirt::tickL2<T>;
        g.l2Horizon_ = &Devirt::horizonL2<T>;
        g.tickOneL2_ = &Devirt::tickOneL2<T>;
        g.oneL2Horizon_ = &Devirt::horizonOneL2<T>;
        return true;
    }
};

void
GpuSystem::bindTypedLoops()
{
    tickL1s_ = &Devirt::tickL1Generic;
    l1Horizon_ = &Devirt::horizonL1Generic;
    tickL2s_ = &Devirt::tickL2Generic;
    l2Horizon_ = &Devirt::horizonL2Generic;
    tickOneL1_ = &Devirt::tickOneL1Generic;
    oneL1Horizon_ = &Devirt::horizonOneL1Generic;
    tickOneL2_ = &Devirt::tickOneL2Generic;
    oneL2Horizon_ = &Devirt::horizonOneL2Generic;
    Devirt::bindL1<core::GtscL1>(*this) ||
        Devirt::bindL1<protocols::TcL1>(*this) ||
        Devirt::bindL1<protocols::NonCohL1>(*this) ||
        Devirt::bindL1<protocols::NoL1>(*this);
    Devirt::bindL2<core::GtscL2>(*this) ||
        Devirt::bindL2<protocols::TcL2>(*this) ||
        Devirt::bindL2<protocols::SimpleL2>(*this);
    reqXbar_ = dynamic_cast<noc::Crossbar *>(reqNet_.get());
    respXbar_ = dynamic_cast<noc::Crossbar *>(respNet_.get());
}

GpuSystem::GpuSystem(const sim::Config &cfg, ProtocolBuilder &builder,
                     Workload &workload, mem::CoherenceProbe *probe)
    : cfg_(cfg), params_(GpuParams::fromConfig(cfg)), builder_(builder),
      workload_(workload)
{
    maxCycles_ = cfg_.getUint("gpu.max_cycles", 500000000ULL);
    watchdogWindow_ = cfg_.getUint("gpu.watchdog_cycles", 400000ULL);
    fastForward_ = cfg_.getBool("gpu.fast_forward", true);
    activeSet_ = cfg_.getBool("gpu.active_set", true);
    flushL2BetweenKernels_ =
        cfg_.getBool("gpu.flush_l2_between_kernels", true);

    numShards_ = GpuParams::resolveShards(cfg_, params_.numSms);
    parallel_ = numShards_ > 1;

    builder_.prepare(cfg_, stats_, params_);

    reqNet_ = noc::makeNetwork(params_.numSms, params_.numPartitions,
                               true, cfg_, stats_, "noc.req");
    respNet_ = noc::makeNetwork(params_.numPartitions, params_.numSms,
                                false, cfg_, stats_, "noc.resp");

    if (parallel_) {
        // Conservative-PDES lookahead: the shortest path through
        // either network bounds how many cycles the shards can run
        // between barriers without ever missing a delivery.
        window_ = std::min(reqNet_->minTraversalLatency(),
                           respNet_->minTraversalLatency());
        GTSC_ASSERT(window_ >= 1, "NoC lookahead must be positive");
        for (unsigned k = 0; k < numShards_; ++k)
            shards_.push_back(std::make_unique<Shard>());
        pool_ = std::make_unique<sim::ThreadPool>(numShards_ - 1);
    }
    shardOf_.resize(params_.numSms);
    stagedReq_.resize(params_.numSms);
    stagedCursor_.assign(params_.numSms, 0);
    pendingResp_.resize(params_.numSms);
    storeValues_.reserve(params_.numSms);
    for (unsigned s = 0; s < params_.numSms; ++s) {
        storeValues_.emplace_back(s + 1, params_.numSms);
        shardOf_[s] = s % numShards_;
        if (parallel_)
            shards_[shardOf_[s]]->sms.push_back(s);
    }

    for (unsigned p = 0; p < params_.numPartitions; ++p) {
        drams_.push_back(std::make_unique<mem::DramChannel>(
            cfg_, stats_, events_, memory_, "dram"));
        l2s_.push_back(builder_.makeL2(static_cast<PartitionId>(p), cfg_,
                                       stats_, events_, *drams_.back(),
                                       memory_, probe));
        l2s_.back()->setSend([this, p](mem::Packet &&pkt) {
            respNet_->inject(p, pkt.src, std::move(pkt), cycle_);
        });
    }

    for (unsigned s = 0; s < params_.numSms; ++s) {
        sim::StatSet &lstats =
            parallel_ ? shards_[shardOf_[s]]->stats : stats_;
        sim::EventQueue &levents =
            parallel_ ? shards_[shardOf_[s]]->events : events_;
        l1s_.push_back(builder_.makeL1(static_cast<SmId>(s), cfg_, lstats,
                                       levents, probe));
        // Requests are staged per source SM and injected in canonical
        // (cycle, src, FIFO) order — in the serial loop at the end of
        // the same cycle, in the sharded loop at the window barrier —
        // so the NoC's global arbitration sequence is identical at
        // any shard count. A packet injected at cycle c cannot be
        // ejected before c + minTraversalLatency(), so deferring the
        // injection within the cycle/window is unobservable.
        l1s_.back()->setSend([this, s](mem::Packet &&pkt) {
            if (parallel_) {
                stagedReq_[s].push_back(
                    StagedPkt{shards_[shardOf_[s]]->now, std::move(pkt)});
            } else {
                stagedReq_[s].push_back(
                    StagedPkt{cycle_, std::move(pkt)});
                ++stagedCount_;
            }
        });
        sms_.push_back(std::make_unique<Sm>(static_cast<SmId>(s), params_,
                                            cfg_, lstats, *l1s_.back(),
                                            storeValues_[s]));
    }

    reqNet_->setDeliver([this](unsigned dst, mem::Packet &&pkt) {
        l2s_[dst]->receiveRequest(std::move(pkt), cycle_);
    });
    respNet_->setDeliver([this](unsigned dst, mem::Packet &&pkt) {
        if (parallel_) {
            // Coordinator-side ejection: park the response with its
            // delivery cycle; the owning shard replays it when its
            // sweep reaches that cycle, preserving per-L1 order.
            pendingResp_[dst].push_back(
                StagedPkt{cycle_, std::move(pkt)});
            // Wake the owning L1 at the delivery cycle so the shard's
            // active-set sweep replays the packet exactly then (phase
            // A runs strictly before phase B, so this cross-wheel arm
            // never races the shard's own pops).
            if (activeSet_)
                shards_[shardOf_[dst]]->l1Wheel.arm(dst, cycle_);
        } else {
            l1s_[dst]->receiveResponse(std::move(pkt), cycle_);
        }
    });

    if (activeSet_) {
        l2Wheel_.reset(params_.numPartitions);
        dramWheel_.reset(params_.numPartitions);
        due_.reserve(std::max<std::size_t>(params_.numSms,
                                           params_.numPartitions));
        if (parallel_) {
            for (auto &sh : shards_) {
                sh->smWheel.reset(params_.numSms);
                sh->l1Wheel.reset(params_.numSms);
                sh->dueSm.reserve(params_.numSms);
                sh->dueL1.reserve(params_.numSms);
            }
        } else {
            smWheel_.reset(params_.numSms);
            l1Wheel_.reset(params_.numSms);
        }
        for (unsigned p = 0; p < params_.numPartitions; ++p) {
            l2s_[p]->setWakeHook(
                [this, p](Cycle at) { l2Wheel_.arm(p, at); });
            drams_[p]->setWakeHook(
                [this, p](Cycle at) { dramWheel_.arm(p, at); });
        }
        for (unsigned s = 0; s < params_.numSms; ++s) {
            if (parallel_) {
                Shard *sh = shards_[shardOf_[s]].get();
                l1s_[s]->setWakeHook(
                    [sh, s](Cycle at) { sh->l1Wheel.arm(s, at); });
                sms_[s]->setWakeHook(
                    [sh, s] { sh->smWheel.arm(s, sh->now); });
            } else {
                l1s_[s]->setWakeHook(
                    [this, s](Cycle at) { l1Wheel_.arm(s, at); });
                sms_[s]->setWakeHook(
                    [this, s] { smWheel_.arm(s, cycle_); });
            }
        }
        reqNet_->setWakeHook([this](Cycle at) {
            reqWake_ = std::min(reqWake_, at);
        });
        respNet_->setWakeHook([this](Cycle at) {
            respWake_ = std::min(respWake_, at);
        });
    }
    // Deferred-idle accounting clock: in the always-tick loops the
    // guard in the SM's completion callbacks is provably dead (now_
    // never lags), so installing it unconditionally keeps one code
    // path.
    for (unsigned s = 0; s < params_.numSms; ++s) {
        sms_[s]->setSchedNow(parallel_ ? &shards_[shardOf_[s]]->now
                                       : &cycle_);
    }

    // The networks registered their packet counters above; cache the
    // references so progressToken() avoids two string-hashed lookups
    // per simulated cycle.
    nocReqPackets_ = &stats_.counter("noc.req.packets");
    nocRespPackets_ = &stats_.counter("noc.resp.packets");

    bindTypedLoops();

    // Register every shard-side counter key in the global set (at
    // value 0) before anything reads it: stat dumps and timeline
    // columns must have the same key set at any shard count.
    drainShardStats();
}

void
GpuSystem::attachObs(obs::Session &session)
{
    session.bindStats(stats_);
    timeline_ = session.timeline();
    if (obs::Tracer *t = session.tracer()) {
        for (auto &sm : sms_)
            sm->attachTracer(*t);
        for (auto &l1 : l1s_)
            l1->attachTracer(*t);
        for (auto &l2 : l2s_)
            l2->attachTracer(*t);
        for (unsigned p = 0; p < drams_.size(); ++p)
            drams_[p]->attachTracer(*t, p);
        reqNet_->attachTracer(*t);
        respNet_->attachTracer(*t);
    }
    if (obs::Transcript *tr = session.transcript()) {
        reqNet_->attachTranscript(*tr, false);
        respNet_->attachTranscript(*tr, true);
    }
}

bool
GpuSystem::quiescent() const
{
    if (!events_.empty())
        return false;
    if (!reqNet_->quiescent() || !respNet_->quiescent())
        return false;
    for (const auto &sm : sms_) {
        if (!sm->quiescent())
            return false;
    }
    for (const auto &l1 : l1s_) {
        if (!l1->quiescent())
            return false;
    }
    for (const auto &l2 : l2s_) {
        if (!l2->quiescent())
            return false;
    }
    for (const auto &dram : drams_) {
        if (!dram->idle())
            return false;
    }
    for (const auto &sh : shards_) {
        if (!sh->events.empty())
            return false;
    }
    for (const auto &q : pendingResp_) {
        if (!q.empty())
            return false;
    }
    for (const auto &v : stagedReq_) {
        if (!v.empty())
            return false;
    }
    return true;
}

std::uint64_t
GpuSystem::progressToken() const
{
    std::uint64_t token = 0;
    for (const auto &sm : sms_)
        token += sm->instructionsRetired();
    token += *nocReqPackets_ + *nocRespPackets_;
    return token;
}

Cycle
GpuSystem::workHorizon() const
{
    // Bail out as soon as the horizon collapses to the next cycle:
    // on busy cycles (the common case for compute-bound workloads)
    // the first active SM ends the scan, keeping the hybrid loop's
    // overhead near zero when it cannot skip anyway.
    const Cycle floor = cycle_ + 1;
    Cycle next = kCycleNever;
    for (const auto &sm : sms_) {
        next = std::min(next, sm->nextWorkCycle(cycle_));
        if (next <= floor)
            return next;
    }
    next = std::min(next, l2Horizon_(*this, cycle_, floor));
    if (next <= floor)
        return next;
    next = std::min(next, l1Horizon_(*this, cycle_, floor));
    if (next <= floor)
        return next;
    next = std::min(next, events_.nextEventCycle());
    if (next <= floor)
        return next;
    for (const auto &sh : shards_) {
        next = std::min(next, sh->events.nextEventCycle());
        if (next <= floor)
            return next;
    }
    next = std::min(next, respNet_->nextWorkCycle(cycle_));
    if (next <= floor)
        return next;
    next = std::min(next, reqNet_->nextWorkCycle(cycle_));
    if (next <= floor)
        return next;
    for (const auto &dram : drams_) {
        next = std::min(next, dram->nextWorkCycle(cycle_));
        if (next <= floor)
            return next;
    }
    return next;
}

Cycle
GpuSystem::activeWorkHorizon() const
{
    // Unlike workHorizon(), no per-component nextWorkCycle() probing:
    // every parked component already deposited its wake cycle in a
    // wheel (or the scalar net wakes) when it parked, so the horizon
    // is a handful of mins plus one slot scan per wheel. Exactness of
    // TimeWheel::nextWake() is what licenses the jump: no armed cycle
    // can lie inside the skipped span.
    Cycle next = events_.nextEventCycle();
    next = std::min(next, respWake_);
    next = std::min(next, reqWake_);
    next = std::min(next, l2Wheel_.nextWake());
    next = std::min(next, dramWheel_.nextWake());
    if (parallel_) {
        for (const auto &sh : shards_) {
            next = std::min(next, sh->events.nextEventCycle());
            next = std::min(next, sh->smWheel.nextWake());
            next = std::min(next, sh->l1Wheel.nextWake());
        }
    } else {
        next = std::min(next, smWheel_.nextWake());
        next = std::min(next, l1Wheel_.nextWake());
    }
    return std::max(next, cycle_ + 1);
}

void
GpuSystem::armActiveSet(Cycle at)
{
    // Loop entry: park nothing, assume everything has work at `at`.
    // Idle components cost one no-op tick and park themselves via
    // their re-arm horizon, so this mirrors the always-tick loops'
    // first cycle exactly. Min-merge also retires any stale arms a
    // previous kernel left behind.
    if (parallel_) {
        for (auto &sh : shards_) {
            for (unsigned s : sh->sms) {
                sh->smWheel.arm(s, at);
                sh->l1Wheel.arm(s, at);
            }
        }
    } else {
        for (unsigned s = 0; s < params_.numSms; ++s) {
            smWheel_.arm(s, at);
            l1Wheel_.arm(s, at);
        }
    }
    for (unsigned p = 0; p < params_.numPartitions; ++p) {
        l2Wheel_.arm(p, at);
        dramWheel_.arm(p, at);
    }
    respWake_ = std::min(respWake_, at);
    reqWake_ = std::min(reqWake_, at);
}

void
GpuSystem::accountSmsThrough(Cycle upto)
{
    for (auto &sm : sms_)
        sm->accountThrough(upto);
}

std::uint64_t
GpuSystem::issueSlotsUsed() const
{
    std::uint64_t used = 0;
    for (const auto &sm : sms_)
        used += sm->issueSlotsUsed();
    return used;
}

GpuSystem::ActivityFractions
GpuSystem::activity() const
{
    ActivityFractions f;
    if (cycle_ == 0)
        return f;
    const double cyc = static_cast<double>(cycle_);
    f.sm = static_cast<double>(smTickCount_) / (cyc * params_.numSms);
    f.l1 = static_cast<double>(l1TickCount_) / (cyc * params_.numSms);
    f.l2 = static_cast<double>(l2TickCount_) /
           (cyc * params_.numPartitions);
    f.noc = static_cast<double>(nocTickCount_) / (cyc * 2.0);
    f.dram = static_cast<double>(dramTickCount_) /
             (cyc * params_.numPartitions);
    return f;
}

Cycle
GpuSystem::coordHorizon(Cycle now) const
{
    const Cycle floor = now + 1;
    Cycle next = events_.nextEventCycle();
    if (next <= floor)
        return next;
    next = std::min(next, respNet_->nextWorkCycle(now));
    if (next <= floor)
        return next;
    next = std::min(next, reqNet_->nextWorkCycle(now));
    if (next <= floor)
        return next;
    next = std::min(next, l2Horizon_(*this, now, floor));
    if (next <= floor)
        return next;
    for (const auto &dram : drams_) {
        next = std::min(next, dram->nextWorkCycle(now));
        if (next <= floor)
            return next;
    }
    return next;
}

Cycle
GpuSystem::shardHorizon(const Shard &sh, Cycle now) const
{
    const Cycle floor = now + 1;
    Cycle next = sh.events.nextEventCycle();
    if (next <= floor)
        return next;
    for (unsigned s : sh.sms) {
        next = std::min(next, sms_[s]->nextWorkCycle(now));
        if (next <= floor)
            return next;
        next = std::min(next, l1s_[s]->nextWorkCycle(now));
        if (next <= floor)
            return next;
        const auto &q = pendingResp_[s];
        if (!q.empty())
            next = std::min(next, std::max(q.front().cycle, floor));
        if (next <= floor)
            return next;
    }
    return next;
}

bool
GpuSystem::coordQuiet() const
{
    if (!events_.empty())
        return false;
    if (!reqNet_->quiescent() || !respNet_->quiescent())
        return false;
    for (const auto &l2 : l2s_) {
        if (!l2->quiescent())
            return false;
    }
    for (const auto &dram : drams_) {
        if (!dram->idle())
            return false;
    }
    return true;
}

bool
GpuSystem::shardQuiet(const Shard &sh) const
{
    if (!sh.events.empty())
        return false;
    for (unsigned s : sh.sms) {
        if (!sms_[s]->allWarpsDone() || !sms_[s]->quiescent())
            return false;
        if (!l1s_[s]->quiescent())
            return false;
        if (!pendingResp_[s].empty() || !stagedReq_[s].empty())
            return false;
    }
    return true;
}

void
GpuSystem::flushStagedRequests()
{
    const unsigned n = params_.numSms;
    if (!parallel_) {
        // Serial loop: every staged packet carries the current
        // cycle, so the canonical (cycle, src, FIFO) order is simply
        // source order — skip the cursor merge.
        for (unsigned s = 0; s < n; ++s) {
            auto &v = stagedReq_[s];
            for (auto &staged : v) {
                mem::Packet pkt = std::move(staged.pkt);
                reqNet_->inject(s, pkt.part, std::move(pkt),
                                staged.cycle);
            }
            v.clear();
        }
        stagedCount_ = 0;
        return;
    }
    bool any = false;
    for (unsigned s = 0; s < n; ++s) {
        stagedCursor_[s] = 0;
        if (!stagedReq_[s].empty())
            any = true;
    }
    stagedCount_ = 0;
    if (!any)
        return;
    // (cycle, src, FIFO) merge. Per-SM buffers are already
    // cycle-sorted, so a cursor per SM and one pass per distinct
    // cycle suffice; the serial loop flushes every cycle (all stamps
    // equal, one pass), the sharded loop once per window.
    for (;;) {
        Cycle c = kCycleNever;
        for (unsigned s = 0; s < n; ++s) {
            const auto &v = stagedReq_[s];
            if (stagedCursor_[s] < v.size())
                c = std::min(c, v[stagedCursor_[s]].cycle);
        }
        if (c == kCycleNever)
            break;
        for (unsigned s = 0; s < n; ++s) {
            auto &v = stagedReq_[s];
            std::size_t &cur = stagedCursor_[s];
            while (cur < v.size() && v[cur].cycle == c) {
                mem::Packet pkt = std::move(v[cur].pkt);
                ++cur;
                reqNet_->inject(s, pkt.part, std::move(pkt), c);
            }
        }
    }
    for (unsigned s = 0; s < n; ++s)
        stagedReq_[s].clear();
}

void
GpuSystem::flushStatWindows()
{
    for (auto &sm : sms_)
        sm->flushStatWindow();
    reqNet_->flushStatWindow();
    respNet_->flushStatWindow();
}

void
GpuSystem::drainShardStats()
{
    for (auto &sh : shards_) {
        sh->stats.drainCountersInto(stats_);
        fastForwarded_ += sh->fastForwarded;
        sh->fastForwarded = 0;
        smTickCount_ += sh->smTicks;
        sh->smTicks = 0;
        l1TickCount_ += sh->l1Ticks;
        sh->l1Ticks = 0;
    }
}

void
GpuSystem::runShardSpan(Shard &sh, Cycle from, Cycle to)
{
    // quietFrom == from - 1 means "quiet since before the window";
    // only consumed when the whole machine turns out to be done, in
    // which case the pre-window state was provably quiet too.
    sh.quietFrom = shardQuiet(sh) ? from - 1 : kCycleNever;
    for (Cycle c = from; c <= to;) {
        sh.now = c;
        sh.events.runUntil(c);
        for (unsigned s : sh.sms) {
            auto &q = pendingResp_[s];
            while (!q.empty() && q.front().cycle <= c) {
                mem::Packet pkt = std::move(q.front().pkt);
                q.pop_front();
                l1s_[s]->receiveResponse(std::move(pkt), c);
            }
        }
        for (unsigned s : sh.sms)
            l1s_[s]->tick(c);
        for (unsigned s : sh.sms)
            sms_[s]->tick(c);
        sh.l1Ticks += sh.sms.size();
        sh.smTicks += sh.sms.size();

        if (!shardQuiet(sh))
            sh.quietFrom = kCycleNever;
        else if (sh.quietFrom == kCycleNever)
            sh.quietFrom = c;

        if (!fastForward_ || c == to) {
            ++c;
            continue;
        }
        // Intra-window fast-forward, same contract as the serial
        // loop's jump but clamped to the window: skipped cycles are
        // provably no-ops for this shard (no events, no parked
        // deliveries, no SM/L1 work before the horizon).
        Cycle next = std::min(shardHorizon(sh, c), to + 1);
        if (next > c + 1) {
            Cycle span = next - c - 1;
            for (unsigned s : sh.sms) {
                sms_[s]->fastForwardStats(span);
                sms_[s]->syncTo(next - 1);
            }
            sh.fastForwarded += span;
            c = next;
        } else {
            ++c;
        }
    }
    // Shard-side flush: the barrier right after this span drains the
    // shard StatSet into the global one, so the windowed blocks must
    // land in it first (and from this shard's own thread).
    for (unsigned s : sh.sms)
        sms_[s]->flushStatWindow();
}

void
GpuSystem::runSerialLoop(unsigned kernel)
{
    std::uint64_t last_progress = progressToken();
    Cycle last_progress_cycle = cycle_;
    ffProbeBackoff_ = 1;
    ffNextProbeAt_ = 0;
    // Probe skip-rate tracking: when a whole window of recent probes
    // produced zero jumps (dense no-progress traffic — BFS frontier
    // expansion, GE back-substitution), raise the backoff cap so the
    // loop effectively stops re-probing the horizon until either a
    // probe succeeds or the workload's character changes. Skipped
    // probes only tick cycles normally; no observable state differs.
    constexpr unsigned kProbeWindow = 32;
    Cycle probeCap = 64;
    unsigned probeAttempts = 0;
    unsigned probeJumps = 0;

    auto all_done = [this]() {
        for (const auto &sm : sms_) {
            if (!sm->allWarpsDone())
                return false;
        }
        return true;
    };

    bool done = all_done() && quiescent();
    while (!done) {
        ++cycle_;
        if (cycle_ > maxCycles_)
            GTSC_FATAL("simulation exceeded gpu.max_cycles=", maxCycles_,
                       " for workload ", workload_.name());

        events_.runUntil(cycle_);
        tickL2s_(*this, cycle_);
        if (respXbar_)
            respXbar_->tick(cycle_);
        else
            respNet_->tick(cycle_);
        if (reqXbar_)
            reqXbar_->tick(cycle_);
        else
            reqNet_->tick(cycle_);
        tickL1s_(*this, cycle_);
        for (auto &sm : sms_)
            sm->tick(cycle_);
        if (stagedCount_ != 0)
            flushStagedRequests();
        for (auto &dram : drams_)
            dram->tick(cycle_);

        smTickCount_ += params_.numSms;
        l1TickCount_ += params_.numSms;
        l2TickCount_ += params_.numPartitions;
        nocTickCount_ += 2;
        dramTickCount_ += params_.numPartitions;

        if (timeline_) {
            // A due sample reads counters by name: batch the
            // windowed blocks in first so the CSV matches a
            // live-counting run byte for byte.
            if (cycle_ >= timeline_->nextSampleAt())
                flushStatWindows();
            timeline_->sample(cycle_);
        }

        std::uint64_t token = progressToken();
        bool progressed = token != last_progress;
        if (progressed) {
            last_progress = token;
            last_progress_cycle = cycle_;
            ffProbeBackoff_ = 1;
            ffNextProbeAt_ = 0;
        } else if (cycle_ - last_progress_cycle > watchdogWindow_) {
            GTSC_PANIC("no forward progress for ", watchdogWindow_,
                       " cycles at cycle ", cycle_, " in workload ",
                       workload_.name(), " kernel ", kernel);
        }

        done = all_done() && quiescent();
        // Only attempt a jump on cycles that made no observable
        // progress: a cycle that retired instructions or moved
        // packets is almost always followed by another busy cycle,
        // so scanning every component for its horizon would be pure
        // overhead there. Idle stretches announce themselves with a
        // stale progress token on their first cycle.
        if (done || progressed || !fastForward_)
            continue;
        // Probe backoff: a probe that just answered "work next
        // cycle" (dense replay or NoC traffic — BFS is the worst
        // case) predicts the next one will too; skipping the scan
        // for a doubling span just ticks those cycles normally.
        if (cycle_ < ffNextProbeAt_)
            continue;

        // Hybrid fast-forward: when no component has work next
        // cycle, jump straight to the earliest horizon instead of
        // ticking through dead cycles. Never skip past the watchdog
        // deadline or the max-cycles bound, so a hung simulation
        // fails at exactly the cycle the pure cycle-driven loop
        // would (a kCycleNever horizon on a non-quiescent machine is
        // such a hang: it lands on the watchdog deadline and
        // panics there).
        Cycle next = workHorizon();
        Cycle deadline = last_progress_cycle + watchdogWindow_ + 1;
        next = std::min(next, deadline);
        next = std::min(next, maxCycles_ + 1);
        // Never skip a timeline sample cycle: samples must land on
        // the same cycles with fast-forward on or off.
        if (timeline_)
            next = std::min(next, timeline_->nextSampleAt());
        ++probeAttempts;
        if (next > cycle_ + 1) {
            Cycle span = next - cycle_ - 1;
            for (auto &sm : sms_) {
                sm->fastForwardStats(span);
                // Keep the SMs' callback timestamp lagging the loop
                // by one cycle, as in the pure cycle-driven loop.
                sm->syncTo(next - 1);
            }
            fastForwarded_ += span;
            cycle_ = next - 1;
            ffProbeBackoff_ = 1;
            ++probeJumps;
            probeCap = 64;
        } else {
            ffNextProbeAt_ = cycle_ + 1 + ffProbeBackoff_;
            ffProbeBackoff_ =
                std::min<Cycle>(ffProbeBackoff_ * 2, probeCap);
        }
        if (probeAttempts >= kProbeWindow) {
            // Zero jumps over a whole probe window: this busy span
            // cannot be skipped; stop paying for the scans.
            probeCap = probeJumps == 0 ? 4096 : 64;
            probeAttempts = 0;
            probeJumps = 0;
        }
    }
}

void
GpuSystem::runParallelLoop(unsigned kernel)
{
    std::uint64_t last_progress = progressToken();
    Cycle last_progress_cycle = cycle_;

    auto all_done = [this]() {
        for (const auto &sm : sms_) {
            if (!sm->allWarpsDone())
                return false;
        }
        return true;
    };

    bool done = all_done() && quiescent();
    while (!done) {
        if (cycle_ >= maxCycles_)
            GTSC_FATAL("simulation exceeded gpu.max_cycles=", maxCycles_,
                       " for workload ", workload_.name());

        Cycle deadline = last_progress_cycle + watchdogWindow_ + 1;

        // Whole-machine fast-forward at the barrier: when nothing
        // anywhere has work before the global horizon, jump to it in
        // one step instead of paying a barrier per window of a long
        // idle stretch (DRAM latency, spin backoff). Staged and
        // parked packets are empty here, so workHorizon() covers
        // every work source.
        if (fastForward_) {
            Cycle next = workHorizon();
            next = std::min(next, deadline);
            next = std::min(next, maxCycles_ + 1);
            if (timeline_)
                next = std::min(next, timeline_->nextSampleAt());
            if (next > cycle_ + 1) {
                Cycle span = next - cycle_ - 1;
                for (auto &sm : sms_) {
                    sm->fastForwardStats(span);
                    sm->syncTo(next - 1);
                }
                fastForwarded_ += span;
                cycle_ = next - 1;
            }
        }

        const Cycle winStart = cycle_ + 1;
        Cycle winEnd = std::min(cycle_ + window_, maxCycles_);
        winEnd = std::min(winEnd, deadline);
        if (timeline_)
            winEnd = std::min(winEnd, timeline_->nextSampleAt());
        GTSC_ASSERT(winEnd >= winStart, "empty shard window");

        // Phase A — coordinator sweep: shared components (events,
        // L2s, both NoCs, DRAM) tick through the window serially.
        // Response ejections are parked per destination SM for the
        // shards to replay; the request network only holds packets
        // injected at earlier barriers, whose ejections all land in
        // this window or later (lookahead), so nothing is missed.
        coordQuietFrom_ = coordQuiet() ? winStart - 1 : kCycleNever;
        for (Cycle c = winStart; c <= winEnd;) {
            cycle_ = c;
            events_.runUntil(c);
            tickL2s_(*this, c);
            if (respXbar_)
                respXbar_->tick(c);
            else
                respNet_->tick(c);
            if (reqXbar_)
                reqXbar_->tick(c);
            else
                reqNet_->tick(c);
            for (auto &dram : drams_)
                dram->tick(c);
            l2TickCount_ += params_.numPartitions;
            nocTickCount_ += 2;
            dramTickCount_ += params_.numPartitions;

            if (!coordQuiet())
                coordQuietFrom_ = kCycleNever;
            else if (coordQuietFrom_ == kCycleNever)
                coordQuietFrom_ = c;

            if (!fastForward_ || c == winEnd) {
                ++c;
                continue;
            }
            Cycle next = std::min(coordHorizon(c), winEnd + 1);
            c = next > c + 1 ? next : c + 1;
        }
        cycle_ = winEnd;

        // Phase B — shard sweeps run concurrently: each shard ticks
        // its SMs + L1s through the same window against its own
        // event queue and StatSet, replaying parked responses at
        // their delivery cycles and staging outbound requests.
        for (unsigned k = 1; k < numShards_; ++k) {
            Shard *sh = shards_[k].get();
            pool_->submit([this, sh, winStart, winEnd] {
                runShardSpan(*sh, winStart, winEnd);
            });
        }
        runShardSpan(*shards_[0], winStart, winEnd);
        pool_->wait();

        // Barrier: merge per-shard counters, then inject this
        // window's staged requests in canonical order.
        drainShardStats();
        flushStagedRequests();

        done = all_done() && quiescent();
        if (done) {
            // The machine went idle somewhere inside the window; the
            // serial loop would have stopped right there. Every side
            // tracked the first cycle of its trailing quiet span, so
            // the completion cycle is their max, and the only state
            // the overshoot touched is one idle tick per SM per
            // cycle (an all-done, drained SM counts idle and nothing
            // else). Undo those and rewind.
            Cycle quiet = coordQuietFrom_;
            for (const auto &sh : shards_)
                quiet = std::max(quiet, sh->quietFrom);
            GTSC_ASSERT(quiet != kCycleNever && quiet >= winStart - 1 &&
                            quiet <= winEnd,
                        "inconsistent quiet span at completion");
            if (quiet < winEnd) {
                stats_.counter("sm.idle_cycles") -=
                    static_cast<std::uint64_t>(params_.numSms) *
                    (winEnd - quiet);
                cycle_ = quiet;
            }
        }

        if (timeline_) {
            if (cycle_ >= timeline_->nextSampleAt())
                flushStatWindows();
            timeline_->sample(cycle_);
        }

        std::uint64_t token = progressToken();
        if (token != last_progress) {
            last_progress = token;
            last_progress_cycle = cycle_;
        } else if (cycle_ - last_progress_cycle > watchdogWindow_) {
            GTSC_PANIC("no forward progress for ", watchdogWindow_,
                       " cycles at cycle ", cycle_, " in workload ",
                       workload_.name(), " kernel ", kernel);
        }
    }
}

void
GpuSystem::runActiveSerialLoop(unsigned kernel)
{
    std::uint64_t last_progress = progressToken();
    Cycle last_progress_cycle = cycle_;
    ffProbeBackoff_ = 1;
    ffNextProbeAt_ = 0;

    auto all_done = [this]() {
        for (const auto &sm : sms_) {
            if (!sm->allWarpsDone())
                return false;
        }
        return true;
    };

    armActiveSet(cycle_ + 1);

    bool done = all_done() && quiescent();
    while (!done) {
        ++cycle_;
        if (cycle_ > maxCycles_)
            GTSC_FATAL("simulation exceeded gpu.max_cycles=", maxCycles_,
                       " for workload ", workload_.name());

        // Same phase order as runSerialLoop, but each family only
        // ticks the ids its wheel popped. Wakes that land on the
        // current cycle after a family's pop are clamped to the next
        // cycle by the wheel — exactly when the always-tick loop
        // would first observe the new state.
        std::size_t nDue = 0;
        events_.runUntil(cycle_);
        l2Wheel_.popDue(cycle_, due_);
        for (unsigned p : due_) {
            tickOneL2_(*this, p, cycle_);
            l2Wheel_.arm(p, oneL2Horizon_(*this, p, cycle_));
        }
        l2TickCount_ += due_.size();
        nDue += due_.size();
        if (respWake_ <= cycle_) {
            respWake_ = kCycleNever;
            if (respXbar_)
                respXbar_->tick(cycle_);
            else
                respNet_->tick(cycle_);
            respWake_ = std::min(respWake_,
                                 respNet_->nextWorkCycle(cycle_));
            ++nocTickCount_;
            ++nDue;
        }
        if (reqWake_ <= cycle_) {
            reqWake_ = kCycleNever;
            if (reqXbar_)
                reqXbar_->tick(cycle_);
            else
                reqNet_->tick(cycle_);
            reqWake_ = std::min(reqWake_,
                                reqNet_->nextWorkCycle(cycle_));
            ++nocTickCount_;
            ++nDue;
        }
        l1Wheel_.popDue(cycle_, due_);
        for (unsigned s : due_) {
            tickOneL1_(*this, s, cycle_);
            l1Wheel_.arm(s, oneL1Horizon_(*this, s, cycle_));
        }
        l1TickCount_ += due_.size();
        nDue += due_.size();
        smWheel_.popDue(cycle_, due_);
        for (unsigned s : due_) {
            // Parked SMs defer their per-cycle idle accounting;
            // materialize it up to the lagging-callback timestamp
            // before the real tick.
            sms_[s]->accountThrough(cycle_ - 1);
            sms_[s]->tick(cycle_);
            smWheel_.arm(s, sms_[s]->nextWorkCycle(cycle_));
        }
        smTickCount_ += due_.size();
        nDue += due_.size();
        if (stagedCount_ != 0)
            flushStagedRequests();
        dramWheel_.popDue(cycle_, due_);
        for (unsigned p : due_) {
            drams_[p]->tick(cycle_);
            dramWheel_.arm(p, drams_[p]->nextWorkCycle(cycle_));
        }
        dramTickCount_ += due_.size();
        nDue += due_.size();

        if (timeline_) {
            if (cycle_ >= timeline_->nextSampleAt()) {
                accountSmsThrough(cycle_);
                flushStatWindows();
            }
            timeline_->sample(cycle_);
        }

        std::uint64_t token = progressToken();
        bool progressed = token != last_progress;
        if (progressed) {
            last_progress = token;
            last_progress_cycle = cycle_;
            ffProbeBackoff_ = 1;
            ffNextProbeAt_ = 0;
        } else if (cycle_ - last_progress_cycle > watchdogWindow_) {
            GTSC_PANIC("no forward progress for ", watchdogWindow_,
                       " cycles at cycle ", cycle_, " in workload ",
                       workload_.name(), " kernel ", kernel);
        }

        done = all_done() && quiescent();
        if (done || progressed || !fastForward_)
            continue;
        // A cycle that ticked anything is almost always followed by
        // another one with due work, and the fast-forward jump is the
        // degenerate "nothing due" case here — so only probe the
        // horizon on completely dead cycles (this is what removes the
        // always-tick loop's BFS/GE probing regression structurally).
        if (nDue != 0 || cycle_ < ffNextProbeAt_)
            continue;

        Cycle next = activeWorkHorizon();
        Cycle deadline = last_progress_cycle + watchdogWindow_ + 1;
        next = std::min(next, deadline);
        next = std::min(next, maxCycles_ + 1);
        if (timeline_)
            next = std::min(next, timeline_->nextSampleAt());
        if (next > cycle_ + 1) {
            // No per-SM stat work here: parked SMs account the
            // skipped span lazily (accountThrough) when they next
            // tick, sample, or the kernel ends.
            fastForwarded_ += next - cycle_ - 1;
            cycle_ = next - 1;
            ffProbeBackoff_ = 1;
        } else {
            ffNextProbeAt_ = cycle_ + 1 + ffProbeBackoff_;
            ffProbeBackoff_ = std::min<Cycle>(ffProbeBackoff_ * 2, 64);
        }
    }
    accountSmsThrough(cycle_);
}

void
GpuSystem::runActiveShardSpan(Shard &sh, Cycle from, Cycle to)
{
    sh.quietFrom = shardQuiet(sh) ? from - 1 : kCycleNever;
    for (Cycle c = from; c <= to;) {
        sh.now = c;
        sh.events.runUntil(c);
        sh.l1Wheel.popDue(c, sh.dueL1);
        // Replay parked responses for the due L1s first (the deliver
        // hook armed each destination at its delivery cycle), then
        // tick them — same order as the always-tick span.
        for (unsigned s : sh.dueL1) {
            auto &q = pendingResp_[s];
            while (!q.empty() && q.front().cycle <= c) {
                mem::Packet pkt = std::move(q.front().pkt);
                q.pop_front();
                l1s_[s]->receiveResponse(std::move(pkt), c);
            }
        }
        for (unsigned s : sh.dueL1) {
            tickOneL1_(*this, s, c);
            Cycle next = oneL1Horizon_(*this, s, c);
            const auto &q = pendingResp_[s];
            if (!q.empty())
                next = std::min(next, std::max(q.front().cycle, c + 1));
            sh.l1Wheel.arm(s, next);
        }
        sh.l1Ticks += sh.dueL1.size();
        sh.smWheel.popDue(c, sh.dueSm);
        for (unsigned s : sh.dueSm) {
            sms_[s]->accountThrough(c - 1);
            sms_[s]->tick(c);
            sh.smWheel.arm(s, sms_[s]->nextWorkCycle(c));
        }
        sh.smTicks += sh.dueSm.size();

        if (!shardQuiet(sh))
            sh.quietFrom = kCycleNever;
        else if (sh.quietFrom == kCycleNever)
            sh.quietFrom = c;

        if (!fastForward_ || c == to ||
            !sh.dueSm.empty() || !sh.dueL1.empty()) {
            ++c;
            continue;
        }
        Cycle next = sh.events.nextEventCycle();
        next = std::min(next, sh.smWheel.nextWake());
        next = std::min(next, sh.l1Wheel.nextWake());
        next = std::max(next, c + 1);
        next = std::min(next, to + 1);
        if (next > c + 1) {
            sh.fastForwarded += next - c - 1;
            c = next;
        } else {
            ++c;
        }
    }
    // The barrier is about to read this shard's stats, and the done
    // rollback assumes every SM counted its idle cycles through the
    // window end — materialize the deferred accounting (O(1) per
    // parked SM) before flushing the windowed blocks.
    for (unsigned s : sh.sms) {
        sms_[s]->accountThrough(to);
        sms_[s]->flushStatWindow();
    }
}

void
GpuSystem::runActiveParallelLoop(unsigned kernel)
{
    std::uint64_t last_progress = progressToken();
    Cycle last_progress_cycle = cycle_;

    auto all_done = [this]() {
        for (const auto &sm : sms_) {
            if (!sm->allWarpsDone())
                return false;
        }
        return true;
    };

    armActiveSet(cycle_ + 1);

    bool done = all_done() && quiescent();
    while (!done) {
        if (cycle_ >= maxCycles_)
            GTSC_FATAL("simulation exceeded gpu.max_cycles=", maxCycles_,
                       " for workload ", workload_.name());

        Cycle deadline = last_progress_cycle + watchdogWindow_ + 1;

        // Whole-machine jump at the barrier: every wheel, scalar net
        // wake and event queue is visible here (staged and parked
        // packets are drained), so the active horizon covers every
        // work source.
        if (fastForward_) {
            Cycle next = activeWorkHorizon();
            next = std::min(next, deadline);
            next = std::min(next, maxCycles_ + 1);
            if (timeline_)
                next = std::min(next, timeline_->nextSampleAt());
            if (next > cycle_ + 1) {
                fastForwarded_ += next - cycle_ - 1;
                cycle_ = next - 1;
            }
        }

        const Cycle winStart = cycle_ + 1;
        Cycle winEnd = std::min(cycle_ + window_, maxCycles_);
        winEnd = std::min(winEnd, deadline);
        if (timeline_)
            winEnd = std::min(winEnd, timeline_->nextSampleAt());
        GTSC_ASSERT(winEnd >= winStart, "empty shard window");

        coordQuietFrom_ = coordQuiet() ? winStart - 1 : kCycleNever;
        for (Cycle c = winStart; c <= winEnd;) {
            cycle_ = c;
            std::size_t nDue = 0;
            events_.runUntil(c);
            l2Wheel_.popDue(c, due_);
            for (unsigned p : due_) {
                tickOneL2_(*this, p, c);
                l2Wheel_.arm(p, oneL2Horizon_(*this, p, c));
            }
            l2TickCount_ += due_.size();
            nDue += due_.size();
            if (respWake_ <= c) {
                respWake_ = kCycleNever;
                if (respXbar_)
                    respXbar_->tick(c);
                else
                    respNet_->tick(c);
                respWake_ =
                    std::min(respWake_, respNet_->nextWorkCycle(c));
                ++nocTickCount_;
                ++nDue;
            }
            if (reqWake_ <= c) {
                reqWake_ = kCycleNever;
                if (reqXbar_)
                    reqXbar_->tick(c);
                else
                    reqNet_->tick(c);
                reqWake_ =
                    std::min(reqWake_, reqNet_->nextWorkCycle(c));
                ++nocTickCount_;
                ++nDue;
            }
            dramWheel_.popDue(c, due_);
            for (unsigned p : due_) {
                drams_[p]->tick(c);
                dramWheel_.arm(p, drams_[p]->nextWorkCycle(c));
            }
            dramTickCount_ += due_.size();
            nDue += due_.size();

            if (!coordQuiet())
                coordQuietFrom_ = kCycleNever;
            else if (coordQuietFrom_ == kCycleNever)
                coordQuietFrom_ = c;

            if (!fastForward_ || c == winEnd || nDue != 0) {
                ++c;
                continue;
            }
            Cycle next = events_.nextEventCycle();
            next = std::min(next, respWake_);
            next = std::min(next, reqWake_);
            next = std::min(next, l2Wheel_.nextWake());
            next = std::min(next, dramWheel_.nextWake());
            next = std::max(next, c + 1);
            next = std::min(next, winEnd + 1);
            c = next;
        }
        cycle_ = winEnd;

        for (unsigned k = 1; k < numShards_; ++k) {
            Shard *sh = shards_[k].get();
            pool_->submit([this, sh, winStart, winEnd] {
                runActiveShardSpan(*sh, winStart, winEnd);
            });
        }
        runActiveShardSpan(*shards_[0], winStart, winEnd);
        pool_->wait();

        drainShardStats();
        flushStagedRequests();

        done = all_done() && quiescent();
        if (done) {
            Cycle quiet = coordQuietFrom_;
            for (const auto &sh : shards_)
                quiet = std::max(quiet, sh->quietFrom);
            GTSC_ASSERT(quiet != kCycleNever && quiet >= winStart - 1 &&
                            quiet <= winEnd,
                        "inconsistent quiet span at completion");
            if (quiet < winEnd) {
                stats_.counter("sm.idle_cycles") -=
                    static_cast<std::uint64_t>(params_.numSms) *
                    (winEnd - quiet);
                cycle_ = quiet;
            }
        }

        if (timeline_) {
            if (cycle_ >= timeline_->nextSampleAt())
                flushStatWindows();
            timeline_->sample(cycle_);
        }

        std::uint64_t token = progressToken();
        if (token != last_progress) {
            last_progress = token;
            last_progress_cycle = cycle_;
        } else if (cycle_ - last_progress_cycle > watchdogWindow_) {
            GTSC_PANIC("no forward progress for ", watchdogWindow_,
                       " cycles at cycle ", cycle_, " in workload ",
                       workload_.name(), " kernel ", kernel);
        }
    }
}

void
GpuSystem::runKernel(unsigned kernel)
{
    workload_.initMemory(memory_, kernel);
    if (kernelStartHook_)
        kernelStartHook_(memory_, kernel);
    for (unsigned s = 0; s < params_.numSms; ++s) {
        // One scratch vector for every launch: launchKernel only
        // moves the programs out, so the buffer is reused across SMs
        // and kernels (no steady-state allocation).
        programScratch_.clear();
        programScratch_.reserve(params_.warpsPerSm);
        for (unsigned w = 0; w < params_.warpsPerSm; ++w) {
            programScratch_.push_back(workload_.makeProgram(
                kernel, static_cast<SmId>(s), static_cast<WarpId>(w),
                params_));
        }
        sms_[s]->launchKernel(std::move(programScratch_));
    }

    if (parallel_) {
        if (activeSet_)
            runActiveParallelLoop(kernel);
        else
            runParallelLoop(kernel);
    } else {
        if (activeSet_)
            runActiveSerialLoop(kernel);
        else
            runSerialLoop(kernel);
    }

    // Kernel boundary: GPUs flush private caches (Section V-D).
    for (auto &l1 : l1s_)
        l1->flush(cycle_);
    if (flushL2BetweenKernels_ &&
        kernel + 1 < workload_.numKernels()) {
        for (auto &l2 : l2s_)
            l2->flushAll(cycle_);
    }
    // Anything still sitting in a windowed counter block or a
    // shard-side StatSet must reach the global set before the
    // harness reads per-kernel stats.
    flushStatWindows();
    if (parallel_)
        drainShardStats();
    stats_.counter("gpu.kernels_run")++;
}

Cycle
GpuSystem::run()
{
    for (unsigned k = 0; k < workload_.numKernels(); ++k)
        runKernel(k);
    // Device-to-host copy at the end of the grid: drain the
    // write-back L2 so MainMemory holds the final state for
    // Workload::verify().
    for (auto &l2 : l2s_)
        l2->flushAll(cycle_);
    flushStatWindows();
    stats_.counter("gpu.cycles") = cycle_;
    if (timeline_)
        timeline_->finish(cycle_);
    return cycle_;
}

} // namespace gtsc::gpu
