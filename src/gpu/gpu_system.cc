#include "gpu/gpu_system.hh"

#include <algorithm>

#include "sim/log.hh"

namespace gtsc::gpu
{

GpuSystem::GpuSystem(const sim::Config &cfg, ProtocolBuilder &builder,
                     Workload &workload, mem::CoherenceProbe *probe)
    : cfg_(cfg), params_(GpuParams::fromConfig(cfg)), builder_(builder),
      workload_(workload)
{
    maxCycles_ = cfg_.getUint("gpu.max_cycles", 500000000ULL);
    watchdogWindow_ = cfg_.getUint("gpu.watchdog_cycles", 400000ULL);
    fastForward_ = cfg_.getBool("gpu.fast_forward", true);

    builder_.prepare(cfg_, stats_, params_);

    reqNet_ = noc::makeNetwork(params_.numSms, params_.numPartitions,
                               true, cfg_, stats_, "noc.req");
    respNet_ = noc::makeNetwork(params_.numPartitions, params_.numSms,
                                false, cfg_, stats_, "noc.resp");

    for (unsigned p = 0; p < params_.numPartitions; ++p) {
        drams_.push_back(std::make_unique<mem::DramChannel>(
            cfg_, stats_, events_, memory_, "dram"));
        l2s_.push_back(builder_.makeL2(static_cast<PartitionId>(p), cfg_,
                                       stats_, events_, *drams_.back(),
                                       memory_, probe));
        l2s_.back()->setSend([this, p](mem::Packet &&pkt) {
            respNet_->inject(p, pkt.src, std::move(pkt), cycle_);
        });
    }

    for (unsigned s = 0; s < params_.numSms; ++s) {
        l1s_.push_back(builder_.makeL1(static_cast<SmId>(s), cfg_, stats_,
                                       events_, probe));
        l1s_.back()->setSend([this, s](mem::Packet &&pkt) {
            reqNet_->inject(s, pkt.part, std::move(pkt), cycle_);
        });
        sms_.push_back(std::make_unique<Sm>(static_cast<SmId>(s), params_,
                                            cfg_, stats_, *l1s_.back(),
                                            storeValues_));
    }

    reqNet_->setDeliver([this](unsigned dst, mem::Packet &&pkt) {
        l2s_[dst]->receiveRequest(std::move(pkt), cycle_);
    });
    respNet_->setDeliver([this](unsigned dst, mem::Packet &&pkt) {
        l1s_[dst]->receiveResponse(std::move(pkt), cycle_);
    });

    // The networks registered their packet counters above; cache the
    // references so progressToken() avoids two string-hashed lookups
    // per simulated cycle.
    nocReqPackets_ = &stats_.counter("noc.req.packets");
    nocRespPackets_ = &stats_.counter("noc.resp.packets");
}

void
GpuSystem::attachObs(obs::Session &session)
{
    session.bindStats(stats_);
    timeline_ = session.timeline();
    if (obs::Tracer *t = session.tracer()) {
        for (auto &sm : sms_)
            sm->attachTracer(*t);
        for (auto &l1 : l1s_)
            l1->attachTracer(*t);
        for (auto &l2 : l2s_)
            l2->attachTracer(*t);
        for (unsigned p = 0; p < drams_.size(); ++p)
            drams_[p]->attachTracer(*t, p);
        reqNet_->attachTracer(*t);
        respNet_->attachTracer(*t);
    }
    if (obs::Transcript *tr = session.transcript()) {
        reqNet_->attachTranscript(*tr, false);
        respNet_->attachTranscript(*tr, true);
    }
}

bool
GpuSystem::quiescent() const
{
    if (!events_.empty())
        return false;
    if (!reqNet_->quiescent() || !respNet_->quiescent())
        return false;
    for (const auto &sm : sms_) {
        if (!sm->quiescent())
            return false;
    }
    for (const auto &l1 : l1s_) {
        if (!l1->quiescent())
            return false;
    }
    for (const auto &l2 : l2s_) {
        if (!l2->quiescent())
            return false;
    }
    for (const auto &dram : drams_) {
        if (!dram->idle())
            return false;
    }
    return true;
}

std::uint64_t
GpuSystem::progressToken() const
{
    std::uint64_t token = 0;
    for (const auto &sm : sms_)
        token += sm->instructionsRetired();
    token += *nocReqPackets_ + *nocRespPackets_;
    return token;
}

Cycle
GpuSystem::workHorizon() const
{
    // Bail out as soon as the horizon collapses to the next cycle:
    // on busy cycles (the common case for compute-bound workloads)
    // the first active SM ends the scan, keeping the hybrid loop's
    // overhead near zero when it cannot skip anyway.
    const Cycle floor = cycle_ + 1;
    Cycle next = kCycleNever;
    for (const auto &sm : sms_) {
        next = std::min(next, sm->nextWorkCycle(cycle_));
        if (next <= floor)
            return next;
    }
    for (const auto &l2 : l2s_) {
        next = std::min(next, l2->nextWorkCycle(cycle_));
        if (next <= floor)
            return next;
    }
    for (const auto &l1 : l1s_) {
        next = std::min(next, l1->nextWorkCycle(cycle_));
        if (next <= floor)
            return next;
    }
    next = std::min(next, events_.nextEventCycle());
    if (next <= floor)
        return next;
    next = std::min(next, respNet_->nextWorkCycle(cycle_));
    if (next <= floor)
        return next;
    next = std::min(next, reqNet_->nextWorkCycle(cycle_));
    if (next <= floor)
        return next;
    for (const auto &dram : drams_) {
        next = std::min(next, dram->nextWorkCycle(cycle_));
        if (next <= floor)
            return next;
    }
    return next;
}

void
GpuSystem::runKernel(unsigned kernel)
{
    workload_.initMemory(memory_, kernel);
    if (kernelStartHook_)
        kernelStartHook_(memory_, kernel);
    for (unsigned s = 0; s < params_.numSms; ++s) {
        std::vector<std::unique_ptr<WarpProgram>> programs;
        programs.reserve(params_.warpsPerSm);
        for (unsigned w = 0; w < params_.warpsPerSm; ++w) {
            programs.push_back(workload_.makeProgram(
                kernel, static_cast<SmId>(s), static_cast<WarpId>(w),
                params_));
        }
        sms_[s]->launchKernel(std::move(programs));
    }

    std::uint64_t last_progress = progressToken();
    Cycle last_progress_cycle = cycle_;

    auto all_done = [this]() {
        for (const auto &sm : sms_) {
            if (!sm->allWarpsDone())
                return false;
        }
        return true;
    };

    bool done = all_done() && quiescent();
    while (!done) {
        ++cycle_;
        if (cycle_ > maxCycles_)
            GTSC_FATAL("simulation exceeded gpu.max_cycles=", maxCycles_,
                       " for workload ", workload_.name());

        events_.runUntil(cycle_);
        for (auto &l2 : l2s_)
            l2->tick(cycle_);
        respNet_->tick(cycle_);
        reqNet_->tick(cycle_);
        for (auto &l1 : l1s_)
            l1->tick(cycle_);
        for (auto &sm : sms_)
            sm->tick(cycle_);
        for (auto &dram : drams_)
            dram->tick(cycle_);

        if (timeline_)
            timeline_->sample(cycle_);

        std::uint64_t token = progressToken();
        bool progressed = token != last_progress;
        if (progressed) {
            last_progress = token;
            last_progress_cycle = cycle_;
        } else if (cycle_ - last_progress_cycle > watchdogWindow_) {
            GTSC_PANIC("no forward progress for ", watchdogWindow_,
                       " cycles at cycle ", cycle_, " in workload ",
                       workload_.name(), " kernel ", kernel);
        }

        done = all_done() && quiescent();
        // Only attempt a jump on cycles that made no observable
        // progress: a cycle that retired instructions or moved
        // packets is almost always followed by another busy cycle,
        // so scanning every component for its horizon would be pure
        // overhead there. Idle stretches announce themselves with a
        // stale progress token on their first cycle.
        if (done || progressed || !fastForward_)
            continue;

        // Hybrid fast-forward: when no component has work next
        // cycle, jump straight to the earliest horizon instead of
        // ticking through dead cycles. Never skip past the watchdog
        // deadline or the max-cycles bound, so a hung simulation
        // fails at exactly the cycle the pure cycle-driven loop
        // would (a kCycleNever horizon on a non-quiescent machine is
        // such a hang: it lands on the watchdog deadline and
        // panics there).
        Cycle next = workHorizon();
        Cycle deadline = last_progress_cycle + watchdogWindow_ + 1;
        next = std::min(next, deadline);
        next = std::min(next, maxCycles_ + 1);
        // Never skip a timeline sample cycle: samples must land on
        // the same cycles with fast-forward on or off.
        if (timeline_)
            next = std::min(next, timeline_->nextSampleAt());
        if (next > cycle_ + 1) {
            Cycle span = next - cycle_ - 1;
            for (auto &sm : sms_) {
                sm->fastForwardStats(span);
                // Keep the SMs' callback timestamp lagging the loop
                // by one cycle, as in the pure cycle-driven loop.
                sm->syncTo(next - 1);
            }
            fastForwarded_ += span;
            cycle_ = next - 1;
        }
    }

    // Kernel boundary: GPUs flush private caches (Section V-D).
    for (auto &l1 : l1s_)
        l1->flush(cycle_);
    if (cfg_.getBool("gpu.flush_l2_between_kernels", true) &&
        kernel + 1 < workload_.numKernels()) {
        for (auto &l2 : l2s_)
            l2->flushAll(cycle_);
    }
    stats_.counter("gpu.kernels_run")++;
}

Cycle
GpuSystem::run()
{
    for (unsigned k = 0; k < workload_.numKernels(); ++k)
        runKernel(k);
    // Device-to-host copy at the end of the grid: drain the
    // write-back L2 so MainMemory holds the final state for
    // Workload::verify().
    for (auto &l2 : l2s_)
        l2->flushAll(cycle_);
    stats_.counter("gpu.cycles") = cycle_;
    if (timeline_)
        timeline_->finish(cycle_);
    return cycle_;
}

} // namespace gtsc::gpu
