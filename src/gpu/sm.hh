/**
 * @file
 * Streaming Multiprocessor timing model.
 *
 * Holds warp contexts, issues one instruction per cycle from a
 * greedy-then-oldest scheduler, coalesces memory instructions and
 * drives the private-cache controller. Implements the consistency
 * model: under SC every memory instruction blocks its warp until
 * globally performed (one outstanding request per warp, Section VI);
 * under RC stores are fire-and-forget and fences stall the warp
 * until all of its stores are acknowledged (and, for TC-Weak, until
 * the warp's Global Write Completion Time has passed).
 */

#ifndef GTSC_GPU_SM_HH_
#define GTSC_GPU_SM_HH_

#include <cstdint>
#include <memory>
#include <vector>

#include "gpu/coalescer.hh"
#include "gpu/kernel.hh"
#include "gpu/params.hh"
#include "mem/controllers.hh"
#include "obs/events.hh"
#include "sim/bitmask.hh"
#include "sim/config.hh"
#include "sim/ring_buffer.hh"
#include "sim/small_function.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace gtsc::gpu
{

class Sm
{
  public:
    Sm(SmId id, const GpuParams &params, const sim::Config &cfg,
       sim::StatSet &stats, mem::L1Controller &l1,
       StoreValueSource &values);

    /**
     * Install one program per warp and mark all warps runnable.
     * Takes the vector by rvalue reference and only moves the
     * programs out, so the caller keeps the buffer and can relaunch
     * kernel after kernel without reallocating it (zero-alloc steady
     * state).
     */
    void
    launchKernel(std::vector<std::unique_ptr<WarpProgram>> &&programs);

    /**
     * Advance one cycle: wake warps, issue, account stalls. O(1) on
     * stall/idle cycles: when the cached horizon proves no warp can
     * issue, wake or retry at `now` (and no L1 callback has touched
     * warp state since it was computed), the tick reduces to the
     * exact per-cycle accounting the full pass would have done — one
     * stall-bucket increment and the per-warp fence-stall counter.
     */
    void
    tick(Cycle now)
    {
        now_ = now;
        if (idleTickValid_ && now < cachedNextWork_) {
            win_.fenceStallCycles += cachedWaitFence_;
            ++(*cachedStallBucket_);
            return;
        }
        tickFull(now);
    }

    /**
     * Earliest future cycle at which tick() could issue, wake a warp
     * or retry a structural reject (horizon contract,
     * mem/controllers.hh). Warps blocked purely on memory responses
     * report kCycleNever — their wake-up is driven by the L1.
     */
    Cycle nextWorkCycle(Cycle now) const;

    /**
     * Account `span` skipped cycles in bulk, exactly as `span`
     * no-progress tick()s would have: one stall/idle cycle per
     * skipped cycle in the Figure 13 breakdown, plus the per-warp
     * fence-stall counter for every fence-blocked warp. Only valid
     * while nextWorkCycle() exceeds the skipped range (no warp wakes
     * or issues inside it).
     */
    void fastForwardStats(Cycle span);

    /**
     * Advance the cached callback timestamp after a fast-forward
     * jump. L1 completion callbacks (which fire from the event queue
     * and network delivery, *before* this SM's tick on a given
     * cycle) read now_, so it must lag the loop cycle by exactly one
     * — as it does when every cycle is ticked. A spin-load backoff
     * computed from a now_ that lags by the whole skipped span would
     * retry earlier than the pure cycle-driven loop.
     */
    void syncTo(Cycle now) { now_ = now; }

    /**
     * Deferred catch-up for the active-set scheduler: account every
     * skipped parked cycle in (now_, upto] as fastForwardStats()
     * would and advance now_ to upto. Valid exactly when the SM was
     * parked through that range — the scheduler never jumps past an
     * armed cycle, so a parked SM's horizon always exceeds it. Called
     * before a due tick, before anything samples this SM's counters
     * (timeline, span end, loop exit), and from the L1 completion
     * callbacks so they observe a now_ lagging the loop by one cycle.
     */
    void
    accountThrough(Cycle upto)
    {
        if (now_ >= upto)
            return;
        fastForwardStats(upto - now_);
        now_ = upto;
    }

    /**
     * Point this SM at its scheduler's current-cycle counter
     * (GpuSystem::cycle_ serially, the owning Shard's `now` when
     * sharded). The completion callbacks catch up skipped parked
     * cycles against it before processing; with the always-tick
     * loops now_ never lags, so the catch-up is a dead branch.
     */
    void setSchedNow(const Cycle *sched) { schedNow_ = sched; }

    /**
     * Re-arm hook (wake contract, mem/controllers.hh): fired after
     * every L1 completion callback, the only external path that
     * hands a parked SM work before its horizon.
     */
    void setWakeHook(sim::SmallFunction<void()> fn)
    {
        wake_ = std::move(fn);
    }

    /**
     * Opt into warp issue/stall/resume event tracing. Events are
     * only recorded at state transitions (which happen on identical
     * cycles with fast-forward on or off), never per idle cycle.
     */
    void attachTracer(obs::Tracer &tracer);

    /** All warps have exited (stores may still be outstanding).
     *  O(1): maintained as a live-warp count at the two transition
     *  points (kernel launch, Exit retire). */
    bool allWarpsDone() const { return liveWarps_ == 0; }

    /**
     * Add the windowed counter block into the StatSet and zero it.
     * Hot-path increments hit the local POD block (one cache line)
     * instead of scattered map nodes; anything that reads the SM's
     * counters by name — timeline samples, the shard-stat drain, the
     * end-of-kernel harvest — must be preceded by a flush. GpuSystem
     * owns those call sites.
     */
    void flushStatWindow();

    /** No accesses awaiting submission and no outstanding stores. */
    bool quiescent() const;

    std::uint64_t instructionsRetired() const { return retiredTotal_; }

    /** Issue slots consumed across all full ticks (diagnostic for
     *  the issue-utilization ratio in bench/sweep_scaling; never a
     *  StatSet counter, so golden stat dumps are unaffected). */
    std::uint64_t issueSlotsUsed() const { return issueSlotsUsed_; }

    SmId id() const { return id_; }

  private:
    enum class WarpState : std::uint8_t
    {
        Idle,        ///< no program installed
        Ready,       ///< can issue
        WaitCompute, ///< busy until readyAt (also spin backoff)
        WaitMem,     ///< blocked on current memory instruction
        WaitFence,   ///< blocked on fence condition
        Done,        ///< program exhausted
    };

    /**
     * Cold/bulky per-warp context. The fields the per-cycle
     * scheduler scans (state, readyAt, the mem-retry flag) live in
     * parallel arrays instead — warpState_/warpReadyAt_/memRetry_ —
     * so wake, issue-candidate and stall-classification passes walk
     * a few contiguous cachelines rather than striding through
     * ~400-byte WarpCtx records (WarpInstr alone is 32 lane
     * addresses).
     */
    struct WarpCtx
    {
        std::unique_ptr<WarpProgram> program;
        WarpInstr cur;
        /** Pre-decoded cursor for `cur` when it is a memory
         *  instruction: the coalescing plan (target line set, word
         *  masks) computed once at fetch, so issue slots and spin
         *  retries never re-derive lane addresses. */
        CoalescePlan plan;
        bool hasCur = false;
        /** Accesses accepted-pending submission (structural retries).
         *  Drained by cursor (submitHead) instead of front-erase so
         *  the ~176-byte Access elements never shift; the buffer is
         *  cleared and its capacity reused once fully drained. */
        std::vector<mem::Access> toSubmit;
        /** First not-yet-submitted index into toSubmit. */
        std::size_t submitHead = 0;
        /** Accesses of the current instruction awaiting completion. */
        unsigned inFlight = 0;
        /** Store acks not yet received (fences, SC blocking). */
        unsigned outstandingStores = 0;
        Cycle gwct = 0;
        std::uint32_t spinIters = 0;
        std::uint32_t spinObserved = 0;
        /** TSO: stores waiting to drain in order (store buffer). */
        sim::RingBuffer<mem::Access> storeFifo;
        /** TSO: store-buffer entries submitted, awaiting their ack. */
        unsigned storesSubmitted = 0;
        /** TSO: current load aliases a buffered store; must drain. */
        bool loadWaitsStores = false;

        bool
        submitsPending() const
        {
            return submitHead < toSubmit.size();
        }
    };

    /** Full tick pass (wake, issue, classify); see tick(). */
    void tickFull(Cycle now);

    /** Horizon scan over all warps (the uncached nextWorkCycle). */
    Cycle computeNextWork(Cycle now) const;

    /**
     * Drop the cached horizon/stall classification. Called wherever
     * warp state changes outside the full tick pass itself: kernel
     * launch and the L1 completion callbacks.
     */
    void
    invalidateTickCache()
    {
        horizonValid_ = false;
        idleTickValid_ = false;
    }

    /** Mask holding warps in state `s` (nullptr for Idle/Done —
     *  those are the complement of the four tracked masks). */
    sim::BitMask *
    maskFor(WarpState s)
    {
        switch (s) {
          case WarpState::Ready:
            return &readyMask_;
          case WarpState::WaitCompute:
            return &waitComputeMask_;
          case WarpState::WaitMem:
            return &waitMemMask_;
          case WarpState::WaitFence:
            return &waitFenceMask_;
          default:
            return nullptr;
        }
    }

    /** The single warp-state transition point: updates the byte
     *  array and the packed masks together. */
    void
    setWarpState(unsigned w, WarpState s)
    {
        WarpState old = warpState_[w];
        if (old == s)
            return;
        if (sim::BitMask *m = maskFor(old))
            m->clear(w);
        if (sim::BitMask *m = maskFor(s))
            m->set(w);
        warpState_[w] = s;
    }

    /** The single memRetry_ transition point (byte + mask bit). */
    void
    setMemRetry(unsigned w, bool v)
    {
        memRetry_[w] = v ? 1 : 0;
        if (v)
            retryMask_.set(w);
        else
            retryMask_.clear(w);
    }

    /** Try to make progress for warp w; true if an issue slot used. */
    bool issueWarp(unsigned w, Cycle now);

    /** TSO: push the next buffered store into the cache, in order. */
    void drainStoreFifo(unsigned w, Cycle now);

    /** Start executing instruction `instr` on warp w. */
    bool beginInstr(unsigned w, Cycle now);

    /** Submit queued accesses to L1; true if all were accepted.
     *  Maintains memRetry_[w] (callers guarantee the warp is not
     *  alias-blocked when they call this). */
    bool drainSubmits(unsigned w, Cycle now);

    void retire(unsigned w);
    bool fenceSatisfied(const WarpCtx &warp, Cycle now) const;
    void finishMemInstr(unsigned w, Cycle now);

    /** Record a warp trace event (caller checks trace_ != nullptr). */
    void traceWarp(obs::EventKind kind, Cycle now, unsigned w,
                   std::uint16_t detail, Addr addr);

    void onLoadDone(const mem::Access &acc, const mem::AccessResult &res,
                    Cycle now);
    void onStoreDone(const mem::Access &acc, Cycle gwct, Cycle now);

    SmId id_;
    GpuParams params_;
    sim::StatSet &stats_;
    mem::L1Controller &l1_;
    Coalescer coalescer_;

    /** Warp scheduling policy (gpu.scheduler). */
    enum class Scheduler : std::uint8_t
    {
        Gto,    ///< greedy-then-oldest (default, GPGPU-Sim's GTO)
        Rr,     ///< loose round-robin from the last issued warp
        Oldest, ///< always lowest warp id first
    };

    std::vector<WarpCtx> warps_;
    // --- hot per-warp scheduler state (SoA; see WarpCtx comment) ---
    /** Scheduling state, one byte per warp. */
    std::vector<WarpState> warpState_;
    /** Wake cycle for WaitCompute warps (parallel to warpState_). */
    std::vector<Cycle> warpReadyAt_;
    /**
     * 1 iff the warp has submits pending and is not alias-blocked
     * (submitsPending() && !loadWaitsStores) — the WaitMem warps an
     * issue slot must retry. Maintained by drainSubmits and the two
     * loadWaitsStores transition points.
     */
    std::vector<std::uint8_t> memRetry_;

    // --- packed scheduling masks (one uint64 word per 64 warps) ---
    // Derived views of warpState_/memRetry_/storeFifo occupancy kept
    // exactly in sync at every transition (setWarpState /
    // setMemRetry / the storeFifo push-drain points): the wake pass
    // walks only waitComputeMask_|waitFenceMask_, the issue pickers
    // are ctz scans over readyMask_|retryMask_, and the no-issue
    // classification is four popcount/any queries. The byte arrays
    // stay authoritative for everything cold (mask↔vector
    // equivalence invariant, DESIGN.md §11).
    sim::BitMask readyMask_;
    sim::BitMask waitComputeMask_;
    sim::BitMask waitMemMask_;
    sim::BitMask waitFenceMask_;
    /** Mirror of memRetry_ (set bits ⊆ waitMemMask_). */
    sim::BitMask retryMask_;
    /** Warps whose storeFifo is non-empty (empty outside TSO,
     *  letting the per-cycle drain pass be skipped entirely). */
    sim::BitMask storeFifoMask_;
    /** Coalescer output scratch; swapped into warp.toSubmit so both
     *  buffers recycle their capacity (zero-alloc steady state). */
    std::vector<mem::Access> coalesceBuf_;
    Scheduler scheduler_;
    unsigned lastIssued_ = 0;
    std::uint64_t nextAccessId_ = 1;
    std::uint64_t retiredTotal_ = 0;
    /** Issue slots consumed (diagnostic; see issueSlotsUsed()). */
    std::uint64_t issueSlotsUsed_ = 0;
    Cycle now_ = 0; ///< updated at tick entry; callbacks use it
    /** Scheduler's current cycle (setSchedNow); callbacks catch
     *  now_ up to lag it by one before running. */
    const Cycle *schedNow_ = nullptr;
    /** Active-set re-arm hook; empty under the always-tick loops. */
    sim::SmallFunction<void()> wake_;

    /** Warps not yet Done/Idle (O(1) allWarpsDone). */
    unsigned liveWarps_ = 0;

    // --- cached tick/horizon state (data-oriented hot path) ---
    // Valid while no warp state has changed since it was computed:
    // the full tick pass refreshes it after a no-issue cycle, and
    // every external mutation point calls invalidateTickCache().
    /** Cached nextWorkCycle() result (absolute cycle). */
    mutable Cycle cachedNextWork_ = 0;
    mutable bool horizonValid_ = false;
    /** The no-issue classification caches below are usable. */
    bool idleTickValid_ = false;
    /** Stall bucket the classification chose (idle/compute/mem);
     *  points into win_. */
    std::uint64_t *cachedStallBucket_ = nullptr;
    /** Warps in WaitFence (per-cycle fence-stall accounting). */
    unsigned cachedWaitFence_ = 0;

    unsigned issueWidth_;
    Cycle spinBackoff_;

    /**
     * Windowed counter block: every hot-path stat increment lands
     * here (one POD cache line) and flushStatWindow() batches it
     * into the StatSet's map nodes. Field order mirrors the cached
     * pointers below.
     */
    struct StatWindow
    {
        std::uint64_t activeCycles = 0;
        std::uint64_t memStallCycles = 0;
        std::uint64_t computeStallCycles = 0;
        std::uint64_t idleCycles = 0;
        std::uint64_t instrs = 0;
        std::uint64_t loads = 0;
        std::uint64_t stores = 0;
        std::uint64_t fences = 0;
        std::uint64_t spinRetries = 0;
        std::uint64_t spinGiveups = 0;
        std::uint64_t fenceStallCycles = 0;
    };
    StatWindow win_;

    // flush targets in the StatSet (stable map-node addresses)
    std::uint64_t *activeCycles_;
    std::uint64_t *memStallCycles_;
    std::uint64_t *computeStallCycles_;
    std::uint64_t *idleCycles_;
    std::uint64_t *instrs_;
    std::uint64_t *loads_;
    std::uint64_t *stores_;
    std::uint64_t *fences_;
    std::uint64_t *spinRetries_;
    std::uint64_t *spinGiveups_;
    std::uint64_t *fenceStallCycles_;

    obs::Tracer *trace_ = nullptr;
    std::uint32_t track_ = 0; ///< obs::Tracer::TrackId
};

} // namespace gtsc::gpu

#endif // GTSC_GPU_SM_HH_
