/**
 * @file
 * Streaming Multiprocessor timing model.
 *
 * Holds warp contexts, issues one instruction per cycle from a
 * greedy-then-oldest scheduler, coalesces memory instructions and
 * drives the private-cache controller. Implements the consistency
 * model: under SC every memory instruction blocks its warp until
 * globally performed (one outstanding request per warp, Section VI);
 * under RC stores are fire-and-forget and fences stall the warp
 * until all of its stores are acknowledged (and, for TC-Weak, until
 * the warp's Global Write Completion Time has passed).
 */

#ifndef GTSC_GPU_SM_HH_
#define GTSC_GPU_SM_HH_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "gpu/coalescer.hh"
#include "gpu/kernel.hh"
#include "gpu/params.hh"
#include "mem/controllers.hh"
#include "obs/events.hh"
#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace gtsc::gpu
{

class Sm
{
  public:
    Sm(SmId id, const GpuParams &params, const sim::Config &cfg,
       sim::StatSet &stats, mem::L1Controller &l1,
       StoreValueSource &values);

    /** Install one program per warp and mark all warps runnable. */
    void launchKernel(std::vector<std::unique_ptr<WarpProgram>> programs);

    /** Advance one cycle: wake warps, issue, account stalls. */
    void tick(Cycle now);

    /**
     * Earliest future cycle at which tick() could issue, wake a warp
     * or retry a structural reject (horizon contract,
     * mem/controllers.hh). Warps blocked purely on memory responses
     * report kCycleNever — their wake-up is driven by the L1.
     */
    Cycle nextWorkCycle(Cycle now) const;

    /**
     * Account `span` skipped cycles in bulk, exactly as `span`
     * no-progress tick()s would have: one stall/idle cycle per
     * skipped cycle in the Figure 13 breakdown, plus the per-warp
     * fence-stall counter for every fence-blocked warp. Only valid
     * while nextWorkCycle() exceeds the skipped range (no warp wakes
     * or issues inside it).
     */
    void fastForwardStats(Cycle span);

    /**
     * Advance the cached callback timestamp after a fast-forward
     * jump. L1 completion callbacks (which fire from the event queue
     * and network delivery, *before* this SM's tick on a given
     * cycle) read now_, so it must lag the loop cycle by exactly one
     * — as it does when every cycle is ticked. A spin-load backoff
     * computed from a now_ that lags by the whole skipped span would
     * retry earlier than the pure cycle-driven loop.
     */
    void syncTo(Cycle now) { now_ = now; }

    /**
     * Opt into warp issue/stall/resume event tracing. Events are
     * only recorded at state transitions (which happen on identical
     * cycles with fast-forward on or off), never per idle cycle.
     */
    void attachTracer(obs::Tracer &tracer);

    /** All warps have exited (stores may still be outstanding). */
    bool allWarpsDone() const;

    /** No accesses awaiting submission and no outstanding stores. */
    bool quiescent() const;

    std::uint64_t instructionsRetired() const { return retiredTotal_; }

    SmId id() const { return id_; }

  private:
    enum class WarpState : std::uint8_t
    {
        Idle,        ///< no program installed
        Ready,       ///< can issue
        WaitCompute, ///< busy until readyAt (also spin backoff)
        WaitMem,     ///< blocked on current memory instruction
        WaitFence,   ///< blocked on fence condition
        Done,        ///< program exhausted
    };

    struct WarpCtx
    {
        std::unique_ptr<WarpProgram> program;
        WarpState state = WarpState::Idle;
        Cycle readyAt = 0;
        WarpInstr cur;
        bool hasCur = false;
        /** Accesses accepted-pending submission (structural retries). */
        std::vector<mem::Access> toSubmit;
        /** Accesses of the current instruction awaiting completion. */
        unsigned inFlight = 0;
        /** Store acks not yet received (fences, SC blocking). */
        unsigned outstandingStores = 0;
        Cycle gwct = 0;
        std::uint32_t spinIters = 0;
        std::uint32_t spinObserved = 0;
        /** TSO: stores waiting to drain in order (store buffer). */
        std::deque<mem::Access> storeFifo;
        /** TSO: store-buffer entries submitted, awaiting their ack. */
        unsigned storesSubmitted = 0;
        /** TSO: current load aliases a buffered store; must drain. */
        bool loadWaitsStores = false;
    };

    /** Try to make progress for warp w; true if an issue slot used. */
    bool issueWarp(unsigned w, Cycle now);

    /** TSO: push the next buffered store into the cache, in order. */
    void drainStoreFifo(WarpCtx &warp, Cycle now);

    /** Start executing instruction `instr` on warp w. */
    bool beginInstr(unsigned w, Cycle now);

    /** Submit queued accesses to L1; true if all were accepted. */
    bool drainSubmits(WarpCtx &warp, Cycle now);

    void retire(unsigned w);
    bool fenceSatisfied(const WarpCtx &warp, Cycle now) const;
    void finishMemInstr(unsigned w, Cycle now);

    /** Record a warp trace event (caller checks trace_ != nullptr). */
    void traceWarp(obs::EventKind kind, Cycle now, unsigned w,
                   std::uint16_t detail, Addr addr);

    void onLoadDone(const mem::Access &acc, const mem::AccessResult &res,
                    Cycle now);
    void onStoreDone(const mem::Access &acc, Cycle gwct, Cycle now);

    SmId id_;
    GpuParams params_;
    sim::StatSet &stats_;
    mem::L1Controller &l1_;
    Coalescer coalescer_;

    /** Warp scheduling policy (gpu.scheduler). */
    enum class Scheduler : std::uint8_t
    {
        Gto,    ///< greedy-then-oldest (default, GPGPU-Sim's GTO)
        Rr,     ///< loose round-robin from the last issued warp
        Oldest, ///< always lowest warp id first
    };

    std::vector<WarpCtx> warps_;
    Scheduler scheduler_;
    unsigned lastIssued_ = 0;
    std::uint64_t nextAccessId_ = 1;
    std::uint64_t retiredTotal_ = 0;
    Cycle now_ = 0; ///< updated at tick entry; callbacks use it

    unsigned issueWidth_;
    Cycle spinBackoff_;

    // cached stat counters
    std::uint64_t *activeCycles_;
    std::uint64_t *memStallCycles_;
    std::uint64_t *computeStallCycles_;
    std::uint64_t *idleCycles_;
    std::uint64_t *instrs_;
    std::uint64_t *loads_;
    std::uint64_t *stores_;
    std::uint64_t *fences_;
    std::uint64_t *spinRetries_;
    std::uint64_t *spinGiveups_;
    std::uint64_t *fenceStallCycles_;

    obs::Tracer *trace_ = nullptr;
    std::uint32_t track_ = 0; ///< obs::Tracer::TrackId
};

} // namespace gtsc::gpu

#endif // GTSC_GPU_SM_HH_
