/**
 * @file
 * Whole-GPU assembly: SMs + private caches, request/response
 * crossbars, L2 partitions with their DRAM channels, one functional
 * main memory, and the cycle loop that runs a Workload's kernels
 * back to back (flushing L1s at kernel boundaries, as GPUs do).
 *
 * Two main-loop implementations share the same per-cycle semantics:
 * the serial loop (gpu.shards=1, default) and a barrier-synchronized
 * sharded loop (gpu.shards>1) that ticks groups of SMs + their L1s
 * on a thread pool over windows of W cycles, where W is the minimum
 * NoC traversal latency (conservative-PDES lookahead: traffic
 * injected inside a window cannot be delivered inside it). Stat
 * dumps, traces, timelines and transcripts are bit-identical at any
 * shard count; see DESIGN.md "Parallel execution model".
 */

#ifndef GTSC_GPU_GPU_SYSTEM_HH_
#define GTSC_GPU_GPU_SYSTEM_HH_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "gpu/kernel.hh"
#include "gpu/params.hh"
#include "gpu/protocol_builder.hh"
#include "gpu/sm.hh"
#include "mem/coherence_probe.hh"
#include "mem/dram.hh"
#include "mem/main_memory.hh"
#include "noc/network.hh"
#include "obs/session.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/thread_pool.hh"
#include "sim/time_wheel.hh"

namespace gtsc::noc
{
class Crossbar;
}

namespace gtsc::gpu
{

class GpuSystem
{
  public:
    GpuSystem(const sim::Config &cfg, ProtocolBuilder &builder,
              Workload &workload, mem::CoherenceProbe *probe = nullptr);

    /**
     * Run every kernel of the workload to completion.
     * @return total simulated cycles.
     */
    Cycle run();

    sim::StatSet &stats() { return stats_; }
    const sim::StatSet &stats() const { return stats_; }
    mem::MainMemory &memory() { return memory_; }
    const GpuParams &params() const { return params_; }
    Cycle cycle() const { return cycle_; }

    /** Effective shard count (gpu.shards / GTSC_SHARDS, clamped). */
    unsigned shards() const { return numShards_; }

    /**
     * Simulated cycles the hybrid main loop skipped instead of
     * ticking (0 with gpu.fast_forward=false). Deliberately not a
     * StatSet entry: stat dumps must be bit-identical with the knob
     * on and off. With gpu.shards>1 the per-shard jumps are summed,
     * so the value legitimately differs across shard counts even
     * though every stat does not.
     */
    std::uint64_t fastForwardedCycles() const { return fastForwarded_; }

    /**
     * Fraction of component-cycles actually ticked, per component
     * type: ticked / (total cycles * number of components). Under
     * active-set scheduling these drop below 1.0 as components park;
     * with gpu.active_set=0 they measure how much of the run the
     * always-tick loops executed rather than fast-forwarded. Like
     * fastForwardedCycles(), diagnostics only — deliberately not
     * StatSet entries, so stat dumps stay bit-identical across
     * scheduler modes.
     */
    struct ActivityFractions
    {
        double sm = 0.0;
        double l1 = 0.0;
        double l2 = 0.0;
        double noc = 0.0;
        double dram = 0.0;
    };
    ActivityFractions activity() const;

    /**
     * Issue-path utilization counters, diagnostics like activity():
     * issue slots actually used across all SMs, the SM-ticks that
     * offered them, and the NoC ticks executed (both networks).
     * issueSlotsUsed / (smTicksExecuted * issue width) is the issue
     * utilization the single-thread bench records; packets /
     * nocTicksExecuted is its pops-per-tick figure. Never StatSet
     * entries — stat dumps stay identical across scheduler modes.
     */
    std::uint64_t issueSlotsUsed() const;
    std::uint64_t smTicksExecuted() const { return smTickCount_; }
    std::uint64_t nocTicksExecuted() const { return nocTickCount_; }

    /**
     * Wire an observability session into every component: tracer
     * tracks for SMs, L1s, L2s, NoCs and DRAM channels, the protocol
     * transcript at the two network delivery points, and the stat
     * timeline (whose sample cycles neither the fast-forward jump
     * nor a shard window ever skips, so timelines are identical with
     * the knobs on or off).
     */
    void attachObs(obs::Session &session);

    /**
     * Called after each kernel's initMemory(), before its first
     * cycle (the coherence checker snapshots base values here).
     */
    void
    setKernelStartHook(
        std::function<void(const mem::MainMemory &, unsigned)> hook)
    {
        kernelStartHook_ = std::move(hook);
    }

  private:
    /** A packet staged with the cycle it was sent/delivered at. */
    struct StagedPkt
    {
        Cycle cycle;
        mem::Packet pkt;
    };

    /**
     * One shard: a group of SMs + their private L1s, ticked by one
     * thread inside a window. Each shard owns the event queue its
     * L1s schedule completions on and the StatSet their counters
     * live in; both are merged deterministically at the barrier.
     */
    struct Shard
    {
        std::vector<unsigned> sms; ///< SM indices, ascending
        sim::EventQueue events;
        sim::StatSet stats;
        /** Cycle the shard is currently executing (send staging). */
        Cycle now = 0;
        /**
         * First cycle of the shard's current trailing quiet span
         * (side-local done + drained); kCycleNever while busy. The
         * barrier uses the max across sides to roll the completion
         * cycle back to exactly where the serial loop would stop.
         */
        Cycle quietFrom = 0;
        std::uint64_t fastForwarded = 0;
        // --- active-set scheduling state (gpu.active_set) ---
        /** Park/wake wheels over the shard's SMs and L1s, indexed by
         * global SM id (sparse outside sms is fine: never armed). */
        sim::TimeWheel smWheel, l1Wheel;
        std::vector<std::uint32_t> dueSm, dueL1; ///< popDue scratch
        std::uint64_t smTicks = 0, l1Ticks = 0;  ///< activity counters
    };

    /**
     * Devirtualized fan-outs over the homogeneous controller arrays
     * (data-oriented hot path). A run instantiates exactly one
     * concrete L1 type and one concrete L2 type; bindTypedLoops()
     * detects them once at construction and binds loops that call
     * tick()/nextWorkCycle() on the concrete class directly (the
     * classes are final, so the calls devirtualize and inline).
     * Unknown types fall back to virtual-dispatch loops.
     */
    struct Devirt;
    using TickLoopFn = void (*)(GpuSystem &, Cycle);
    using HorizonLoopFn = Cycle (*)(const GpuSystem &, Cycle, Cycle);
    /** Single-component variants for the active-set loops, which tick
     * only the ids a wheel popped instead of sweeping the array. */
    using TickOneFn = void (*)(GpuSystem &, unsigned, Cycle);
    using HorizonOneFn = Cycle (*)(const GpuSystem &, unsigned, Cycle);
    void bindTypedLoops();

    bool quiescent() const;
    void runKernel(unsigned kernel);
    void runSerialLoop(unsigned kernel);
    void runParallelLoop(unsigned kernel);
    void runShardSpan(Shard &sh, Cycle from, Cycle to);
    // Active-set twins (gpu.active_set=1, the default): identical
    // per-cycle phase order, but each component family is driven off
    // a TimeWheel and only due ids are ticked. See DESIGN.md §10.
    void runActiveSerialLoop(unsigned kernel);
    void runActiveParallelLoop(unsigned kernel);
    void runActiveShardSpan(Shard &sh, Cycle from, Cycle to);
    /** Arm every component at `at` (loop entry: nothing is parked
     * yet; idle components park themselves on their first tick). */
    void armActiveSet(Cycle at);
    /** Earliest armed/queued work across all wheels, scalar net
     * wakes and event queues; > cycle_. Exact (wheels track the min
     * over their slots), so jumping to it never skips armed work. */
    Cycle activeWorkHorizon() const;
    /** Catch every SM's deferred idle accounting up to `upto`
     * (parked SMs lag; see Sm::accountThrough). */
    void accountSmsThrough(Cycle upto);
    std::uint64_t progressToken() const;

    /** Drain per-SM staged request packets into the request network
     * in canonical (cycle, src, FIFO/reqId) order. */
    void flushStagedRequests();

    /** Merge per-shard counters into the global StatSet (barrier). */
    void drainShardStats();

    /**
     * Batch every component's windowed counter block into its
     * StatSet. Must run before anything reads stats by name: a due
     * timeline sample, the per-kernel harvest, end of run. (In the
     * sharded loop, SM windows are instead flushed shard-side at the
     * end of each span, before the barrier's drainShardStats.)
     */
    void flushStatWindows();

    /** Shard-local done + drained (its SMs, L1s, events, deliveries). */
    bool shardQuiet(const Shard &sh) const;

    /** Coordinator-side drained (events, NoCs, L2s, DRAMs). */
    bool coordQuiet() const;

    /** Earliest future cycle with shard-local work; > now. */
    Cycle shardHorizon(const Shard &sh, Cycle now) const;

    /** Earliest future cycle with coordinator-side work; > now. */
    Cycle coordHorizon(Cycle now) const;

    /**
     * Minimum of every component's nextWorkCycle() and the event
     * queue(s): the earliest future cycle at which ticking can do
     * anything observable. kCycleNever when the machine is fully
     * quiescent.
     */
    Cycle workHorizon() const;

    sim::Config cfg_;
    GpuParams params_;
    ProtocolBuilder &builder_;
    Workload &workload_;

    sim::StatSet stats_;
    sim::EventQueue events_;
    mem::MainMemory memory_;
    /** Per-SM store-value generators (disjoint strided sequences). */
    std::vector<StoreValueSource> storeValues_;

    std::vector<std::unique_ptr<mem::DramChannel>> drams_;
    std::vector<std::unique_ptr<mem::L2Controller>> l2s_;
    std::vector<std::unique_ptr<mem::L1Controller>> l1s_;
    std::vector<std::unique_ptr<Sm>> sms_;
    /** Launch scratch, reused across SMs and kernels (runKernel). */
    std::vector<std::unique_ptr<WarpProgram>> programScratch_;
    std::unique_ptr<noc::Network> reqNet_;
    std::unique_ptr<noc::Network> respNet_;

    // Typed loops bound by bindTypedLoops(); see Devirt.
    TickLoopFn tickL1s_ = nullptr;
    TickLoopFn tickL2s_ = nullptr;
    HorizonLoopFn l1Horizon_ = nullptr;
    HorizonLoopFn l2Horizon_ = nullptr;
    TickOneFn tickOneL1_ = nullptr;
    TickOneFn tickOneL2_ = nullptr;
    HorizonOneFn oneL1Horizon_ = nullptr;
    HorizonOneFn oneL2Horizon_ = nullptr;
    /** Non-null when the nets are Crossbars (the default topology);
     * lets the cycle loop call their O(1) tick/horizon directly. */
    noc::Crossbar *reqXbar_ = nullptr;
    noc::Crossbar *respXbar_ = nullptr;

    // --- sharded execution state ---
    unsigned numShards_ = 1;
    bool parallel_ = false;
    /** Window size = min NoC traversal latency (PDES lookahead). */
    Cycle window_ = 1;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::vector<unsigned> shardOf_; ///< SM index -> shard index
    /**
     * Per-SM request packets sent by L1s, staged until the end of
     * the cycle (serial) or the window barrier (sharded), then
     * injected in canonical order so the NoC's global tie-break
     * sequence is identical at any shard count.
     */
    std::vector<std::vector<StagedPkt>> stagedReq_;
    std::vector<std::size_t> stagedCursor_;
    std::size_t stagedCount_ = 0; ///< serial-loop fast skip
    /**
     * Per-SM response packets ejected by the coordinator during a
     * window, stamped with their delivery cycle and replayed by the
     * owning shard when it reaches that cycle.
     */
    std::vector<std::deque<StagedPkt>> pendingResp_;
    std::unique_ptr<sim::ThreadPool> pool_;
    Cycle coordQuietFrom_ = 0;

    Cycle cycle_ = 0;
    obs::StatTimeline *timeline_ = nullptr;
    Cycle maxCycles_;
    Cycle watchdogWindow_;
    bool fastForward_;
    /** Cached knob: the config lookup allocates (long key). */
    bool flushL2BetweenKernels_;
    std::uint64_t fastForwarded_ = 0;
    /**
     * Horizon-probe backoff: when a probe on a no-progress cycle
     * comes back "work next cycle" (dense replay/NoC traffic, e.g.
     * BFS), skip probing for a doubling number of no-progress cycles
     * (capped) before trying again. A skipped probe just means those
     * cycles are ticked normally, which is always correct; only the
     * fastForwardedCycles() diagnostic can differ.
     */
    Cycle ffProbeBackoff_ = 1;
    Cycle ffNextProbeAt_ = 0;

    // --- active-set scheduling state (gpu.active_set) ---
    bool activeSet_;
    /** Serial-loop wheels (SM/L1 wheels live shard-side when
     * gpu.shards>1; L2/DRAM wheels are always coordinator-side). */
    sim::TimeWheel smWheel_, l1Wheel_;
    sim::TimeWheel l2Wheel_, dramWheel_;
    std::vector<std::uint32_t> due_; ///< popDue scratch
    /** Scalar wake cycles for the two networks (single component
     * each): min-merged by the wake hook, kCycleNever when parked. */
    Cycle reqWake_ = kCycleNever;
    Cycle respWake_ = kCycleNever;
    /** Activity counters (see activity()); shard SM/L1 ticks are
     * drained into these at the barrier alongside the stats. */
    std::uint64_t smTickCount_ = 0;
    std::uint64_t l1TickCount_ = 0;
    std::uint64_t l2TickCount_ = 0;
    std::uint64_t nocTickCount_ = 0;
    std::uint64_t dramTickCount_ = 0;
    /** noc.{req,resp}.packets, cached off the progress-token path. */
    const std::uint64_t *nocReqPackets_;
    const std::uint64_t *nocRespPackets_;
    std::function<void(const mem::MainMemory &, unsigned)>
        kernelStartHook_;
};

} // namespace gtsc::gpu

#endif // GTSC_GPU_GPU_SYSTEM_HH_
