/**
 * @file
 * Whole-GPU assembly: SMs + private caches, request/response
 * crossbars, L2 partitions with their DRAM channels, one functional
 * main memory, and the cycle loop that runs a Workload's kernels
 * back to back (flushing L1s at kernel boundaries, as GPUs do).
 */

#ifndef GTSC_GPU_GPU_SYSTEM_HH_
#define GTSC_GPU_GPU_SYSTEM_HH_

#include <memory>
#include <string>
#include <vector>

#include "gpu/kernel.hh"
#include "gpu/params.hh"
#include "gpu/protocol_builder.hh"
#include "gpu/sm.hh"
#include "mem/coherence_probe.hh"
#include "mem/dram.hh"
#include "mem/main_memory.hh"
#include "noc/network.hh"
#include "obs/session.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace gtsc::gpu
{

class GpuSystem
{
  public:
    GpuSystem(const sim::Config &cfg, ProtocolBuilder &builder,
              Workload &workload, mem::CoherenceProbe *probe = nullptr);

    /**
     * Run every kernel of the workload to completion.
     * @return total simulated cycles.
     */
    Cycle run();

    sim::StatSet &stats() { return stats_; }
    const sim::StatSet &stats() const { return stats_; }
    mem::MainMemory &memory() { return memory_; }
    const GpuParams &params() const { return params_; }
    Cycle cycle() const { return cycle_; }

    /**
     * Simulated cycles the hybrid main loop skipped instead of
     * ticking (0 with gpu.fast_forward=false). Deliberately not a
     * StatSet entry: stat dumps must be bit-identical with the knob
     * on and off.
     */
    std::uint64_t fastForwardedCycles() const { return fastForwarded_; }

    /**
     * Wire an observability session into every component: tracer
     * tracks for SMs, L1s, L2s, NoCs and DRAM channels, the protocol
     * transcript at the two network delivery points, and the stat
     * timeline (whose sample cycles the fast-forward jump never
     * skips, so timelines are identical with the knob on or off).
     */
    void attachObs(obs::Session &session);

    /**
     * Called after each kernel's initMemory(), before its first
     * cycle (the coherence checker snapshots base values here).
     */
    void
    setKernelStartHook(
        std::function<void(const mem::MainMemory &, unsigned)> hook)
    {
        kernelStartHook_ = std::move(hook);
    }

  private:
    bool quiescent() const;
    void runKernel(unsigned kernel);
    std::uint64_t progressToken() const;

    /**
     * Minimum of every component's nextWorkCycle() and the event
     * queue: the earliest future cycle at which ticking can do
     * anything observable. kCycleNever when the machine is fully
     * quiescent.
     */
    Cycle workHorizon() const;

    sim::Config cfg_;
    GpuParams params_;
    ProtocolBuilder &builder_;
    Workload &workload_;

    sim::StatSet stats_;
    sim::EventQueue events_;
    mem::MainMemory memory_;
    StoreValueSource storeValues_;

    std::vector<std::unique_ptr<mem::DramChannel>> drams_;
    std::vector<std::unique_ptr<mem::L2Controller>> l2s_;
    std::vector<std::unique_ptr<mem::L1Controller>> l1s_;
    std::vector<std::unique_ptr<Sm>> sms_;
    std::unique_ptr<noc::Network> reqNet_;
    std::unique_ptr<noc::Network> respNet_;

    Cycle cycle_ = 0;
    obs::StatTimeline *timeline_ = nullptr;
    Cycle maxCycles_;
    Cycle watchdogWindow_;
    bool fastForward_;
    std::uint64_t fastForwarded_ = 0;
    /** noc.{req,resp}.packets, cached off the progress-token path. */
    const std::uint64_t *nocReqPackets_;
    const std::uint64_t *nocRespPackets_;
    std::function<void(const mem::MainMemory &, unsigned)>
        kernelStartHook_;
};

} // namespace gtsc::gpu

#endif // GTSC_GPU_GPU_SYSTEM_HH_
