/**
 * @file
 * Top-level GPU configuration parameters.
 *
 * Defaults mirror the paper's evaluated machine (Section VI-A):
 * 16 SMs, 48 warps/SM of 32 threads, 16KB L1 per SM, 8 x 128KB L2
 * partitions. The test/bench harness scales these down to keep runs
 * laptop-fast; every knob is a config key.
 */

#ifndef GTSC_GPU_PARAMS_HH_
#define GTSC_GPU_PARAMS_HH_

#include <algorithm>
#include <cstdlib>
#include <string>

#include "sim/config.hh"
#include "sim/log.hh"
#include "sim/types.hh"

namespace gtsc::gpu
{

/**
 * Memory consistency model implemented on top of the protocol.
 *
 * SC and RC are the paper's two models; TSO is the in-between model
 * the paper mentions (Section II-B) and Tardis 2.0 implements:
 * stores drain in order through a one-deep store buffer without
 * blocking the warp, loads bypass non-aliasing pending stores, and
 * an aliasing load waits for the buffer to drain (no store-to-load
 * forwarding hardware is modeled).
 */
enum class Consistency
{
    SC,  ///< sequential consistency: blocking stores, 1 op/warp
    TSO, ///< total store order: in-order non-blocking stores
    RC,  ///< release consistency: non-blocking stores + fences
};

inline const char *
consistencyName(Consistency c)
{
    switch (c) {
      case Consistency::SC:
        return "SC";
      case Consistency::TSO:
        return "TSO";
      case Consistency::RC:
        return "RC";
    }
    return "?";
}

inline Consistency
consistencyFromString(const std::string &s)
{
    if (s == "sc" || s == "SC")
        return Consistency::SC;
    if (s == "tso" || s == "TSO")
        return Consistency::TSO;
    if (s == "rc" || s == "RC")
        return Consistency::RC;
    GTSC_FATAL("unknown consistency model '", s,
               "' (want sc|tso|rc)");
}

/** Maximum SIMT width supported by the model. */
inline constexpr unsigned kMaxWarpSize = 32;

struct GpuParams
{
    unsigned numSms = 16;
    unsigned warpsPerSm = 48;
    unsigned warpSize = 32;
    unsigned numPartitions = 8;
    Consistency consistency = Consistency::RC;

    static GpuParams
    fromConfig(const sim::Config &cfg)
    {
        GpuParams p;
        p.numSms = static_cast<unsigned>(cfg.getUint("gpu.num_sms", 16));
        p.warpsPerSm =
            static_cast<unsigned>(cfg.getUint("gpu.warps_per_sm", 48));
        p.warpSize =
            static_cast<unsigned>(cfg.getUint("gpu.warp_size", 32));
        p.numPartitions =
            static_cast<unsigned>(cfg.getUint("gpu.num_partitions", 8));
        p.consistency = consistencyFromString(
            cfg.getString("gpu.consistency", "rc"));
        if (p.warpSize == 0 || p.warpSize > kMaxWarpSize)
            GTSC_FATAL("gpu.warp_size must be in [1,", kMaxWarpSize, "]");
        if (p.numSms == 0 || p.warpsPerSm == 0 || p.numPartitions == 0)
            GTSC_FATAL("gpu dimensions must be > 0");
        return p;
    }

    unsigned totalWarps() const { return numSms * warpsPerSm; }

    /**
     * Worker shards for the intra-run parallel main loop: explicit
     * `gpu.shards` wins, then the GTSC_SHARDS environment variable,
     * then 1 (serial). Clamped to [1, num_sms] — a shard without an
     * SM would only add barrier overhead. Results are bit-identical
     * at any shard count, so this is purely a wall-clock knob.
     */
    static unsigned
    resolveShards(const sim::Config &cfg, unsigned num_sms)
    {
        unsigned shards = 0;
        if (cfg.has("gpu.shards")) {
            shards = static_cast<unsigned>(cfg.getUint("gpu.shards", 1));
        } else if (const char *env = std::getenv("GTSC_SHARDS")) {
            shards = static_cast<unsigned>(
                std::strtoul(env, nullptr, 10));
        }
        if (shards == 0)
            shards = 1;
        return std::min(shards, num_sms);
    }
};

} // namespace gtsc::gpu

#endif // GTSC_GPU_PARAMS_HH_
