#include "gpu/sm.hh"

#include <algorithm>
#include <string>

#include "obs/tracer.hh"
#include "sim/log.hh"

namespace gtsc::gpu
{

Sm::Sm(SmId id, const GpuParams &params, const sim::Config &cfg,
       sim::StatSet &stats, mem::L1Controller &l1,
       StoreValueSource &values)
    : id_(id), params_(params), stats_(stats), l1_(l1),
      coalescer_(values)
{
    warps_.resize(params_.warpsPerSm);
    issueWidth_ =
        static_cast<unsigned>(cfg.getUint("gpu.issue_width", 1));
    spinBackoff_ = cfg.getUint("gpu.spin_backoff_cycles", 16);
    std::string sched = cfg.getString("gpu.scheduler", "gto");
    if (sched == "gto")
        scheduler_ = Scheduler::Gto;
    else if (sched == "rr")
        scheduler_ = Scheduler::Rr;
    else if (sched == "oldest")
        scheduler_ = Scheduler::Oldest;
    else
        GTSC_FATAL("gpu.scheduler must be gto|rr|oldest, got '", sched,
                   "'");

    activeCycles_ = &stats_.counter("sm.active_cycles");
    memStallCycles_ = &stats_.counter("sm.mem_stall_cycles");
    computeStallCycles_ = &stats_.counter("sm.compute_stall_cycles");
    idleCycles_ = &stats_.counter("sm.idle_cycles");
    instrs_ = &stats_.counter("sm.instructions");
    loads_ = &stats_.counter("sm.loads");
    stores_ = &stats_.counter("sm.stores");
    fences_ = &stats_.counter("sm.fences");
    spinRetries_ = &stats_.counter("sm.spin_retries");
    spinGiveups_ = &stats_.counter("sm.spin_giveups");
    fenceStallCycles_ = &stats_.counter("sm.fence_stall_warp_cycles");

    l1_.setLoadDone(
        [this](const mem::Access &a, const mem::AccessResult &r) {
            onLoadDone(a, r, now_);
        });
    l1_.setStoreDone([this](const mem::Access &a, Cycle gwct) {
        onStoreDone(a, gwct, now_);
    });
}

void
Sm::attachTracer(obs::Tracer &tracer)
{
    trace_ = &tracer;
    track_ = tracer.track("sm" + std::to_string(id_));
}

void
Sm::traceWarp(obs::EventKind kind, Cycle now, unsigned w,
              std::uint16_t detail, Addr addr)
{
    trace_->record(track_,
                   obs::Event{now, addr, 0, 0, kind,
                              static_cast<std::uint16_t>(w), detail});
}

void
Sm::launchKernel(std::vector<std::unique_ptr<WarpProgram>> programs)
{
    GTSC_ASSERT(programs.size() == warps_.size(),
                "program count != warp count");
    for (unsigned w = 0; w < warps_.size(); ++w) {
        WarpCtx &warp = warps_[w];
        GTSC_ASSERT(warp.toSubmit.empty() && warp.inFlight == 0,
                    "kernel launch with in-flight memory accesses");
        GTSC_ASSERT(warp.outstandingStores == 0,
                    "kernel launch with outstanding stores");
        warp.program = std::move(programs[w]);
        warp.state = warp.program ? WarpState::Ready : WarpState::Idle;
        warp.hasCur = false;
        warp.readyAt = 0;
        warp.gwct = 0;
        warp.spinIters = 0;
    }
    lastIssued_ = 0;
}

bool
Sm::allWarpsDone() const
{
    for (const auto &warp : warps_) {
        if (warp.state != WarpState::Done && warp.state != WarpState::Idle)
            return false;
    }
    return true;
}

bool
Sm::quiescent() const
{
    for (const auto &warp : warps_) {
        if (!warp.toSubmit.empty() || warp.inFlight != 0 ||
            warp.outstandingStores != 0 || !warp.storeFifo.empty()) {
            return false;
        }
    }
    return true;
}

bool
Sm::fenceSatisfied(const WarpCtx &warp, Cycle now) const
{
    return warp.outstandingStores == 0 && now >= warp.gwct;
}

void
Sm::retire(unsigned w)
{
    WarpCtx &warp = warps_[w];
    warp.hasCur = false;
    warp.spinIters = 0;
    if (warp.state != WarpState::Done)
        warp.state = WarpState::Ready;
    ++retiredTotal_;
    ++(*instrs_);
}

void
Sm::tick(Cycle now)
{
    now_ = now;

    // Wake timed and fence-blocked warps; retry store-buffer drains
    // that were structurally rejected.
    for (unsigned w = 0; w < warps_.size(); ++w) {
        WarpCtx &warp = warps_[w];
        if (!warp.storeFifo.empty())
            drainStoreFifo(warp, now);
        if (warp.state == WarpState::WaitCompute &&
            now >= warp.readyAt) {
            warp.state = WarpState::Ready;
            if (trace_)
                traceWarp(obs::EventKind::WarpResume, now, w, 0, 0);
        }
        if (warp.state == WarpState::WaitFence) {
            ++(*fenceStallCycles_);
            if (fenceSatisfied(warp, now)) {
                warp.state = WarpState::Ready;
                // The fence instruction retires when it unblocks.
                ++retiredTotal_;
                ++(*instrs_);
                if (trace_)
                    traceWarp(obs::EventKind::WarpResume, now, w, 0, 0);
            }
        }
    }

    // Issue according to the configured scheduling policy.
    unsigned issued = 0;
    unsigned n = static_cast<unsigned>(warps_.size());
    for (unsigned slot = 0; slot < issueWidth_; ++slot) {
        bool progress = false;
        switch (scheduler_) {
          case Scheduler::Gto:
            // Greedy: stick with the last issued warp, then oldest.
            if (issueWarp(lastIssued_, now)) {
                progress = true;
                break;
            }
            [[fallthrough]];
          case Scheduler::Oldest:
            for (unsigned w = 0; w < n; ++w) {
                if (scheduler_ == Scheduler::Gto && w == lastIssued_)
                    continue;
                if (issueWarp(w, now)) {
                    lastIssued_ = w;
                    progress = true;
                    break;
                }
            }
            break;
          case Scheduler::Rr:
            // Loose round-robin: start after the last issued warp.
            for (unsigned k = 1; k <= n; ++k) {
                unsigned w = (lastIssued_ + k) % n;
                if (issueWarp(w, now)) {
                    lastIssued_ = w;
                    progress = true;
                    break;
                }
            }
            break;
        }
        if (!progress)
            break;
        ++issued;
    }

    // Cycle accounting for the stall breakdown (Figure 13).
    if (issued > 0) {
        ++(*activeCycles_);
        return;
    }
    bool any_live = false;
    bool any_compute = false;
    bool any_mem = false;
    for (const auto &warp : warps_) {
        switch (warp.state) {
          case WarpState::WaitCompute:
            any_live = true;
            any_compute = true;
            break;
          case WarpState::WaitMem:
          case WarpState::WaitFence:
            any_live = true;
            any_mem = true;
            break;
          case WarpState::Ready:
            any_live = true;
            break;
          default:
            break;
        }
    }
    if (!any_live)
        ++(*idleCycles_);
    else if (any_compute)
        ++(*computeStallCycles_);
    else if (any_mem)
        ++(*memStallCycles_);
    else
        ++(*idleCycles_);
}

Cycle
Sm::nextWorkCycle(Cycle now) const
{
    Cycle next = kCycleNever;
    for (const auto &warp : warps_) {
        // Store-buffer drains retry l1_.access() every tick while
        // nothing is outstanding — that attempt can reject and count
        // stats, so it pins the horizon to the next cycle.
        if (!warp.storeFifo.empty() && warp.storesSubmitted == 0)
            return now + 1;
        switch (warp.state) {
          case WarpState::Ready:
            return now + 1;
          case WarpState::WaitCompute:
            next = std::min(next, std::max(warp.readyAt, now + 1));
            break;
          case WarpState::WaitMem:
            // Structural retries re-submit every issue slot; a warp
            // waiting only on completions wakes via the L1 callback.
            if (!warp.toSubmit.empty() && !warp.loadWaitsStores)
                return now + 1;
            break;
          case WarpState::WaitFence:
            // With no stores outstanding the fence clears once the
            // GWCT passes; otherwise the store ack drives the wake.
            if (warp.outstandingStores == 0)
                next = std::min(next, std::max(warp.gwct, now + 1));
            break;
          default:
            break;
        }
    }
    return next;
}

void
Sm::fastForwardStats(Cycle span)
{
    // Mirrors the issued == 0 classification at the end of tick();
    // warp states cannot change inside a skipped range, so each
    // skipped cycle lands in the same bucket.
    bool any_live = false;
    bool any_compute = false;
    bool any_mem = false;
    for (const auto &warp : warps_) {
        switch (warp.state) {
          case WarpState::WaitCompute:
            any_live = true;
            any_compute = true;
            break;
          case WarpState::WaitFence:
            (*fenceStallCycles_) += span;
            [[fallthrough]];
          case WarpState::WaitMem:
            any_live = true;
            any_mem = true;
            break;
          case WarpState::Ready:
            any_live = true;
            break;
          default:
            break;
        }
    }
    if (!any_live)
        (*idleCycles_) += span;
    else if (any_compute)
        (*computeStallCycles_) += span;
    else if (any_mem)
        (*memStallCycles_) += span;
    else
        (*idleCycles_) += span;
}

bool
Sm::issueWarp(unsigned w, Cycle now)
{
    WarpCtx &warp = warps_[w];

    // Structural retries count as the warp's issue slot.
    if (!warp.toSubmit.empty()) {
        if (warp.state != WarpState::WaitMem)
            return false; // submits drain via WaitMem path only
        if (warp.loadWaitsStores)
            return false; // TSO alias: wait for the store buffer
        bool drained = drainSubmits(warp, now);
        if (drained && warp.inFlight == 0)
            finishMemInstr(w, now);
        return true;
    }

    if (warp.state != WarpState::Ready)
        return false;

    if (!warp.hasCur) {
        warp.cur = warp.program->next();
        warp.hasCur = true;
    }
    return beginInstr(w, now);
}

bool
Sm::beginInstr(unsigned w, Cycle now)
{
    WarpCtx &warp = warps_[w];
    const WarpInstr &instr = warp.cur;

    if (trace_) {
        bool is_mem = instr.op == WarpInstr::Op::Load ||
                      instr.op == WarpInstr::Op::SpinLoad ||
                      instr.op == WarpInstr::Op::Store;
        traceWarp(obs::EventKind::WarpIssue, now, w,
                  static_cast<std::uint16_t>(instr.op),
                  is_mem ? instr.addr[0] : 0);
    }

    switch (instr.op) {
      case WarpInstr::Op::Exit:
        warp.state = WarpState::Done;
        warp.hasCur = false;
        return true;

      case WarpInstr::Op::Compute: {
        std::uint32_t cycles = instr.computeCycles;
        warp.readyAt = now + cycles;
        retire(w);
        if (cycles > 0)
            warp.state = WarpState::WaitCompute;
        return true;
      }

      case WarpInstr::Op::Fence:
        ++(*fences_);
        if (fenceSatisfied(warp, now)) {
            retire(w);
        } else {
            warp.state = WarpState::WaitFence;
            warp.hasCur = false; // retires on wake
            if (trace_) {
                traceWarp(obs::EventKind::WarpStall, now, w,
                          static_cast<std::uint16_t>(
                              obs::StallReason::Fence),
                          0);
            }
        }
        return true;

      case WarpInstr::Op::Load:
      case WarpInstr::Op::SpinLoad:
      case WarpInstr::Op::Store: {
        bool is_store = instr.op == WarpInstr::Op::Store;
        auto accesses = coalescer_.coalesce(instr, params_.warpSize, id_,
                                            static_cast<WarpId>(w));
        GTSC_ASSERT(!accesses.empty(), "memory instr with no active lanes");
        if (is_store)
            (*stores_) += 1;
        else
            (*loads_) += 1;

        for (auto &acc : accesses) {
            acc.id = nextAccessId_++;
            if (is_store) {
                ++warp.outstandingStores;
                if (params_.consistency == Consistency::SC)
                    ++warp.inFlight;
            } else {
                ++warp.inFlight;
            }
        }

        if (is_store && params_.consistency == Consistency::TSO) {
            // TSO: the store retires into the per-warp store buffer
            // and drains in order, one outstanding at a time.
            for (auto &acc : accesses)
                warp.storeFifo.push_back(std::move(acc));
            retire(w);
            drainStoreFifo(warp, now);
            return true;
        }
        if (!is_store && params_.consistency == Consistency::TSO &&
            !warp.storeFifo.empty()) {
            // No store-to-load forwarding hardware: a load aliasing
            // a buffered store waits for the buffer to drain.
            bool alias = false;
            for (const auto &acc : accesses) {
                for (const auto &st : warp.storeFifo)
                    alias |= (st.lineAddr == acc.lineAddr);
            }
            if (alias) {
                warp.toSubmit = std::move(accesses);
                warp.state = WarpState::WaitMem;
                warp.loadWaitsStores = true;
                if (trace_) {
                    traceWarp(obs::EventKind::WarpStall, now, w,
                              static_cast<std::uint16_t>(
                                  obs::StallReason::Mem),
                              instr.addr[0]);
                }
                return true;
            }
        }

        warp.toSubmit = std::move(accesses);
        warp.state = WarpState::WaitMem;
        bool drained = drainSubmits(warp, now);
        if (drained && warp.inFlight == 0)
            finishMemInstr(w, now);
        if (trace_ && warp.state == WarpState::WaitMem) {
            traceWarp(obs::EventKind::WarpStall, now, w,
                      static_cast<std::uint16_t>(obs::StallReason::Mem),
                      instr.addr[0]);
        }
        return true;
      }
    }
    GTSC_PANIC("unhandled opcode");
}

void
Sm::drainStoreFifo(WarpCtx &warp, Cycle now)
{
    // One-deep store buffer: submit the next store only when the
    // previous one has been acknowledged.
    while (warp.storesSubmitted == 0 && !warp.storeFifo.empty()) {
        if (!l1_.access(warp.storeFifo.front(), now))
            break;
        warp.storeFifo.pop_front();
        ++warp.storesSubmitted;
    }
}

bool
Sm::drainSubmits(WarpCtx &warp, Cycle now)
{
    while (!warp.toSubmit.empty()) {
        if (!l1_.access(warp.toSubmit.front(), now))
            return false;
        warp.toSubmit.erase(warp.toSubmit.begin());
    }
    return true;
}

void
Sm::finishMemInstr(unsigned w, Cycle now)
{
    WarpCtx &warp = warps_[w];
    GTSC_ASSERT(warp.inFlight == 0 && warp.toSubmit.empty(),
                "finishMemInstr with work outstanding");
    if (!warp.hasCur) {
        return;
    }
    if (warp.cur.op == WarpInstr::Op::SpinLoad) {
        bool satisfied = warp.spinObserved >= warp.cur.spinExpect;
        if (!satisfied && warp.spinIters + 1 < warp.cur.spinMaxIters) {
            // Retry after a short backoff; tell the protocol so
            // G-TSC can advance the warp's logical clock.
            ++warp.spinIters;
            ++(*spinRetries_);
            l1_.noteSpinRetry(static_cast<WarpId>(w),
                              mem::lineAlign(warp.cur.addr[0]));
            warp.readyAt = now + spinBackoff_;
            warp.state = WarpState::WaitCompute;
            if (trace_) {
                traceWarp(obs::EventKind::WarpStall, now, w,
                          static_cast<std::uint16_t>(
                              obs::StallReason::Compute),
                          warp.cur.addr[0]);
            }
            return;
        }
        if (!satisfied)
            ++(*spinGiveups_);
    }
    if (warp.cur.op == WarpInstr::Op::Load ||
        warp.cur.op == WarpInstr::Op::SpinLoad) {
        warp.program->observe(warp.spinObserved);
    }
    retire(w);
}

void
Sm::onLoadDone(const mem::Access &acc, const mem::AccessResult &res,
               Cycle now)
{
    WarpCtx &warp = warps_[acc.warp];
    GTSC_ASSERT(warp.inFlight > 0, "load completion with none in flight");
    --warp.inFlight;
    if (warp.hasCur &&
        (warp.cur.op == WarpInstr::Op::SpinLoad ||
         warp.cur.op == WarpInstr::Op::Load)) {
        Addr lane0 = warp.cur.addr[0];
        if (mem::lineAlign(lane0) == acc.lineAddr)
            warp.spinObserved = res.data.word(mem::wordInLine(lane0));
    }
    if (warp.inFlight == 0 && warp.toSubmit.empty()) {
        finishMemInstr(acc.warp, now);
        if (trace_ && warp.state == WarpState::Ready) {
            traceWarp(obs::EventKind::WarpResume, now, acc.warp, 0,
                      acc.lineAddr);
        }
    }
}

void
Sm::onStoreDone(const mem::Access &acc, Cycle gwct, Cycle now)
{
    WarpCtx &warp = warps_[acc.warp];
    GTSC_ASSERT(warp.outstandingStores > 0,
                "store ack with none outstanding");
    --warp.outstandingStores;
    if (gwct > warp.gwct)
        warp.gwct = gwct;
    if (params_.consistency == Consistency::TSO) {
        GTSC_ASSERT(warp.storesSubmitted > 0,
                    "TSO ack without submitted store");
        --warp.storesSubmitted;
        drainStoreFifo(warp, now);
        if (warp.loadWaitsStores && warp.storeFifo.empty() &&
            warp.storesSubmitted == 0) {
            // Aliased load may proceed; its submits resume on the
            // warp's next issue slot.
            warp.loadWaitsStores = false;
        }
    }
    if (params_.consistency == Consistency::SC) {
        GTSC_ASSERT(warp.inFlight > 0, "SC store ack with none in flight");
        --warp.inFlight;
        if (warp.inFlight == 0 && warp.toSubmit.empty()) {
            finishMemInstr(acc.warp, now);
            if (trace_ && warp.state == WarpState::Ready) {
                traceWarp(obs::EventKind::WarpResume, now, acc.warp, 0,
                          acc.lineAddr);
            }
        }
    }
}

} // namespace gtsc::gpu
