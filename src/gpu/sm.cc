#include "gpu/sm.hh"

#include <algorithm>
#include <string>

#include "obs/tracer.hh"
#include "sim/log.hh"

namespace gtsc::gpu
{

Sm::Sm(SmId id, const GpuParams &params, const sim::Config &cfg,
       sim::StatSet &stats, mem::L1Controller &l1,
       StoreValueSource &values)
    : id_(id), params_(params), stats_(stats), l1_(l1),
      coalescer_(values)
{
    warps_.resize(params_.warpsPerSm);
    warpState_.assign(params_.warpsPerSm, WarpState::Idle);
    warpReadyAt_.assign(params_.warpsPerSm, 0);
    memRetry_.assign(params_.warpsPerSm, 0);
    issueWidth_ =
        static_cast<unsigned>(cfg.getUint("gpu.issue_width", 1));
    spinBackoff_ = cfg.getUint("gpu.spin_backoff_cycles", 16);
    std::string sched = cfg.getString("gpu.scheduler", "gto");
    if (sched == "gto")
        scheduler_ = Scheduler::Gto;
    else if (sched == "rr")
        scheduler_ = Scheduler::Rr;
    else if (sched == "oldest")
        scheduler_ = Scheduler::Oldest;
    else
        GTSC_FATAL("gpu.scheduler must be gto|rr|oldest, got '", sched,
                   "'");

    activeCycles_ = &stats_.counter("sm.active_cycles");
    memStallCycles_ = &stats_.counter("sm.mem_stall_cycles");
    computeStallCycles_ = &stats_.counter("sm.compute_stall_cycles");
    idleCycles_ = &stats_.counter("sm.idle_cycles");
    instrs_ = &stats_.counter("sm.instructions");
    loads_ = &stats_.counter("sm.loads");
    stores_ = &stats_.counter("sm.stores");
    fences_ = &stats_.counter("sm.fences");
    spinRetries_ = &stats_.counter("sm.spin_retries");
    spinGiveups_ = &stats_.counter("sm.spin_giveups");
    fenceStallCycles_ = &stats_.counter("sm.fence_stall_warp_cycles");

    // Callbacks must observe a now_ lagging the loop cycle by one.
    // Under active-set scheduling a parked SM's now_ can lag further;
    // catch up the skipped (provably idle) cycles first, using the
    // pre-callback stall classification, then re-arm so the tick
    // phase of the current cycle processes the new warp state.
    l1_.setLoadDone(
        [this](const mem::Access &a, const mem::AccessResult &r) {
            if (schedNow_ && now_ + 1 < *schedNow_)
                accountThrough(*schedNow_ - 1);
            onLoadDone(a, r, now_);
            if (wake_)
                wake_();
        });
    l1_.setStoreDone([this](const mem::Access &a, Cycle gwct) {
        if (schedNow_ && now_ + 1 < *schedNow_)
            accountThrough(*schedNow_ - 1);
        onStoreDone(a, gwct, now_);
        if (wake_)
            wake_();
    });
}

void
Sm::flushStatWindow()
{
    *activeCycles_ += win_.activeCycles;
    *memStallCycles_ += win_.memStallCycles;
    *computeStallCycles_ += win_.computeStallCycles;
    *idleCycles_ += win_.idleCycles;
    *instrs_ += win_.instrs;
    *loads_ += win_.loads;
    *stores_ += win_.stores;
    *fences_ += win_.fences;
    *spinRetries_ += win_.spinRetries;
    *spinGiveups_ += win_.spinGiveups;
    *fenceStallCycles_ += win_.fenceStallCycles;
    win_ = StatWindow{};
}

void
Sm::attachTracer(obs::Tracer &tracer)
{
    trace_ = &tracer;
    track_ = tracer.track("sm" + std::to_string(id_));
}

void
Sm::traceWarp(obs::EventKind kind, Cycle now, unsigned w,
              std::uint16_t detail, Addr addr)
{
    trace_->record(track_,
                   obs::Event{now, addr, 0, 0, kind,
                              static_cast<std::uint16_t>(w), detail});
}

void
Sm::launchKernel(std::vector<std::unique_ptr<WarpProgram>> &&programs)
{
    GTSC_ASSERT(programs.size() == warps_.size(),
                "program count != warp count");
    liveWarps_ = 0;
    for (unsigned w = 0; w < warps_.size(); ++w) {
        WarpCtx &warp = warps_[w];
        GTSC_ASSERT(!warp.submitsPending() && warp.inFlight == 0,
                    "kernel launch with in-flight memory accesses");
        GTSC_ASSERT(warp.outstandingStores == 0 &&
                        warp.storeFifo.empty(),
                    "kernel launch with outstanding stores");
        warp.program = std::move(programs[w]);
        warpState_[w] =
            warp.program ? WarpState::Ready : WarpState::Idle;
        if (warp.program)
            ++liveWarps_;
        warp.hasCur = false;
        warpReadyAt_[w] = 0;
        memRetry_[w] = 0;
        warp.gwct = 0;
        warp.spinIters = 0;
    }
    lastIssued_ = 0;
    invalidateTickCache();
}

bool
Sm::quiescent() const
{
    for (const auto &warp : warps_) {
        if (warp.submitsPending() || warp.inFlight != 0 ||
            warp.outstandingStores != 0 || !warp.storeFifo.empty()) {
            return false;
        }
    }
    return true;
}

bool
Sm::fenceSatisfied(const WarpCtx &warp, Cycle now) const
{
    return warp.outstandingStores == 0 && now >= warp.gwct;
}

void
Sm::retire(unsigned w)
{
    WarpCtx &warp = warps_[w];
    warp.hasCur = false;
    warp.spinIters = 0;
    if (warpState_[w] != WarpState::Done)
        warpState_[w] = WarpState::Ready;
    ++retiredTotal_;
    ++win_.instrs;
}

void
Sm::tickFull(Cycle now)
{
    // Wake timed and fence-blocked warps; retry store-buffer drains
    // that were structurally rejected. The scans read only the
    // compact SoA arrays; the fat WarpCtx is touched for the rare
    // states that need it (fences, non-empty store buffers).
    unsigned n_warps = static_cast<unsigned>(warps_.size());
    if (storeFifoWarps_ != 0) {
        for (unsigned w = 0; w < n_warps; ++w) {
            if (!warps_[w].storeFifo.empty())
                drainStoreFifo(w, now);
        }
    }
    for (unsigned w = 0; w < n_warps; ++w) {
        switch (warpState_[w]) {
          case WarpState::WaitCompute:
            if (now >= warpReadyAt_[w]) {
                warpState_[w] = WarpState::Ready;
                if (trace_)
                    traceWarp(obs::EventKind::WarpResume, now, w, 0, 0);
            }
            break;
          case WarpState::WaitFence:
            ++win_.fenceStallCycles;
            if (fenceSatisfied(warps_[w], now)) {
                warpState_[w] = WarpState::Ready;
                // The fence instruction retires when it unblocks.
                ++retiredTotal_;
                ++win_.instrs;
                if (trace_)
                    traceWarp(obs::EventKind::WarpResume, now, w, 0, 0);
            }
            break;
          default:
            break;
        }
    }

    // Issue according to the configured scheduling policy.
    unsigned issued = 0;
    unsigned n = static_cast<unsigned>(warps_.size());
    for (unsigned slot = 0; slot < issueWidth_; ++slot) {
        bool progress = false;
        switch (scheduler_) {
          case Scheduler::Gto:
            // Greedy: stick with the last issued warp, then oldest.
            if (issueWarp(lastIssued_, now)) {
                progress = true;
                break;
            }
            [[fallthrough]];
          case Scheduler::Oldest:
            for (unsigned w = 0; w < n; ++w) {
                if (scheduler_ == Scheduler::Gto && w == lastIssued_)
                    continue;
                if (issueWarp(w, now)) {
                    lastIssued_ = w;
                    progress = true;
                    break;
                }
            }
            break;
          case Scheduler::Rr:
            // Loose round-robin: start after the last issued warp.
            for (unsigned k = 1; k <= n; ++k) {
                unsigned w = (lastIssued_ + k) % n;
                if (issueWarp(w, now)) {
                    lastIssued_ = w;
                    progress = true;
                    break;
                }
            }
            break;
        }
        if (!progress)
            break;
        ++issued;
    }

    // Cycle accounting for the stall breakdown (Figure 13).
    if (issued > 0) {
        ++win_.activeCycles;
        // Issue changed warp state; the cached classification and
        // horizon no longer describe it.
        invalidateTickCache();
        return;
    }
    bool any_live = false;
    bool any_compute = false;
    bool any_mem = false;
    unsigned wait_fence = 0;
    for (WarpState st : warpState_) {
        switch (st) {
          case WarpState::WaitCompute:
            any_live = true;
            any_compute = true;
            break;
          case WarpState::WaitFence:
            ++wait_fence;
            [[fallthrough]];
          case WarpState::WaitMem:
            any_live = true;
            any_mem = true;
            break;
          case WarpState::Ready:
            any_live = true;
            break;
          default:
            break;
        }
    }
    std::uint64_t *bucket;
    if (!any_live)
        bucket = &win_.idleCycles;
    else if (any_compute)
        bucket = &win_.computeStallCycles;
    else if (any_mem)
        bucket = &win_.memStallCycles;
    else
        bucket = &win_.idleCycles;
    ++(*bucket);

    // Cache the end-of-tick classification and horizon so the rest
    // of the stall/idle stretch costs O(1) per cycle: until an L1
    // callback mutates a warp (invalidateTickCache) or the horizon
    // arrives, a repeat of this pass could neither issue, wake a
    // warp, nor submit a buffered store — only the accounting above
    // would run, and the fast path in tick() replays exactly that.
    cachedStallBucket_ = bucket;
    cachedWaitFence_ = wait_fence;
    horizonValid_ = false;
    cachedNextWork_ = nextWorkCycle(now);
    idleTickValid_ = true;
}

Cycle
Sm::nextWorkCycle(Cycle now) const
{
    // The horizon only moves when warp state does; cache it. The
    // max-clamp keeps a cached "work next cycle" answer correct when
    // re-asked at a later cycle (the pinning condition still holds,
    // so the answer is again "next cycle").
    if (!horizonValid_) {
        cachedNextWork_ = computeNextWork(now);
        horizonValid_ = true;
    }
    return std::max(cachedNextWork_, now + 1);
}

Cycle
Sm::computeNextWork(Cycle now) const
{
    Cycle next = kCycleNever;
    unsigned n = static_cast<unsigned>(warps_.size());
    if (storeFifoWarps_ != 0) {
        // Store-buffer drains retry l1_.access() every tick while
        // nothing is outstanding — that attempt can reject and count
        // stats, so it pins the horizon to the next cycle.
        for (unsigned w = 0; w < n; ++w) {
            const WarpCtx &warp = warps_[w];
            if (!warp.storeFifo.empty() && warp.storesSubmitted == 0)
                return now + 1;
        }
    }
    for (unsigned w = 0; w < n; ++w) {
        switch (warpState_[w]) {
          case WarpState::Ready:
            return now + 1;
          case WarpState::WaitCompute:
            next = std::min(next, std::max(warpReadyAt_[w], now + 1));
            break;
          case WarpState::WaitMem:
            // Structural retries re-submit every issue slot; a warp
            // waiting only on completions wakes via the L1 callback.
            if (memRetry_[w])
                return now + 1;
            break;
          case WarpState::WaitFence:
            // With no stores outstanding the fence clears once the
            // GWCT passes; otherwise the store ack drives the wake.
            if (warps_[w].outstandingStores == 0) {
                next = std::min(next,
                                std::max(warps_[w].gwct, now + 1));
            }
            break;
          default:
            break;
        }
    }
    return next;
}

void
Sm::fastForwardStats(Cycle span)
{
    // Fast path: the cached no-issue classification (same validity
    // as tick()'s O(1) path — warp state untouched since it was
    // computed) already names the bucket and the fence count, so a
    // bulk span is two additions. This is what keeps the active-set
    // scheduler's deferred catch-up O(1) per parked SM.
    if (idleTickValid_) {
        win_.fenceStallCycles +=
            static_cast<std::uint64_t>(cachedWaitFence_) * span;
        *cachedStallBucket_ += span;
        return;
    }
    // Mirrors the issued == 0 classification at the end of tick();
    // warp states cannot change inside a skipped range, so each
    // skipped cycle lands in the same bucket.
    bool any_live = false;
    bool any_compute = false;
    bool any_mem = false;
    unsigned wait_fence = 0;
    for (WarpState st : warpState_) {
        switch (st) {
          case WarpState::WaitCompute:
            any_live = true;
            any_compute = true;
            break;
          case WarpState::WaitFence:
            ++wait_fence;
            [[fallthrough]];
          case WarpState::WaitMem:
            any_live = true;
            any_mem = true;
            break;
          case WarpState::Ready:
            any_live = true;
            break;
          default:
            break;
        }
    }
    win_.fenceStallCycles +=
        static_cast<std::uint64_t>(wait_fence) * span;
    std::uint64_t *bucket;
    if (!any_live)
        bucket = &win_.idleCycles;
    else if (any_compute)
        bucket = &win_.computeStallCycles;
    else if (any_mem)
        bucket = &win_.memStallCycles;
    else
        bucket = &win_.idleCycles;
    *bucket += span;
    // Re-establish the classification cache so the rest of the
    // parked stretch takes the fast path. Only safe when the cached
    // horizon is also valid (tick()'s fast path reads it).
    cachedStallBucket_ = bucket;
    cachedWaitFence_ = wait_fence;
    if (horizonValid_)
        idleTickValid_ = true;
}

bool
Sm::issueWarp(unsigned w, Cycle now)
{
    // Structural retries count as the warp's issue slot. memRetry_
    // is exactly "submits pending and not alias-blocked" (a warp
    // with pending submits is always in WaitMem), so the common
    // can't-issue case is decided from the SoA arrays alone.
    if (memRetry_[w]) {
        bool drained = drainSubmits(w, now);
        if (drained && warps_[w].inFlight == 0)
            finishMemInstr(w, now);
        return true;
    }

    if (warpState_[w] != WarpState::Ready)
        return false;

    WarpCtx &warp = warps_[w];
    if (!warp.hasCur) {
        warp.cur = warp.program->next();
        warp.hasCur = true;
    }
    return beginInstr(w, now);
}

bool
Sm::beginInstr(unsigned w, Cycle now)
{
    WarpCtx &warp = warps_[w];
    const WarpInstr &instr = warp.cur;

    if (trace_) {
        bool is_mem = instr.op == WarpInstr::Op::Load ||
                      instr.op == WarpInstr::Op::SpinLoad ||
                      instr.op == WarpInstr::Op::Store;
        traceWarp(obs::EventKind::WarpIssue, now, w,
                  static_cast<std::uint16_t>(instr.op),
                  is_mem ? instr.laneAddr(0) : 0);
    }

    switch (instr.op) {
      case WarpInstr::Op::Exit:
        warpState_[w] = WarpState::Done;
        warp.hasCur = false;
        GTSC_ASSERT(liveWarps_ > 0, "Exit with no live warps");
        --liveWarps_;
        return true;

      case WarpInstr::Op::Compute: {
        std::uint32_t cycles = instr.computeCycles;
        warpReadyAt_[w] = now + cycles;
        retire(w);
        if (cycles > 0)
            warpState_[w] = WarpState::WaitCompute;
        return true;
      }

      case WarpInstr::Op::Fence:
        ++win_.fences;
        if (fenceSatisfied(warp, now)) {
            retire(w);
        } else {
            warpState_[w] = WarpState::WaitFence;
            warp.hasCur = false; // retires on wake
            if (trace_) {
                traceWarp(obs::EventKind::WarpStall, now, w,
                          static_cast<std::uint16_t>(
                              obs::StallReason::Fence),
                          0);
            }
        }
        return true;

      case WarpInstr::Op::Load:
      case WarpInstr::Op::SpinLoad:
      case WarpInstr::Op::Store: {
        bool is_store = instr.op == WarpInstr::Op::Store;
        std::vector<mem::Access> &accesses = coalesceBuf_;
        coalescer_.coalesce(instr, params_.warpSize, id_,
                            static_cast<WarpId>(w), accesses);
        GTSC_ASSERT(!accesses.empty(), "memory instr with no active lanes");
        if (is_store)
            ++win_.stores;
        else
            ++win_.loads;

        for (auto &acc : accesses) {
            acc.id = nextAccessId_++;
            if (is_store) {
                ++warp.outstandingStores;
                if (params_.consistency == Consistency::SC)
                    ++warp.inFlight;
            } else {
                ++warp.inFlight;
            }
        }

        if (is_store && params_.consistency == Consistency::TSO) {
            // TSO: the store retires into the per-warp store buffer
            // and drains in order, one outstanding at a time.
            if (warp.storeFifo.empty())
                ++storeFifoWarps_;
            for (auto &acc : accesses)
                warp.storeFifo.push_back(std::move(acc));
            retire(w);
            drainStoreFifo(w, now);
            return true;
        }
        if (!is_store && params_.consistency == Consistency::TSO &&
            !warp.storeFifo.empty()) {
            // No store-to-load forwarding hardware: a load aliasing
            // a buffered store waits for the buffer to drain.
            bool alias = false;
            for (const auto &acc : accesses) {
                for (std::size_t i = 0; i < warp.storeFifo.size(); ++i)
                    alias |= (warp.storeFifo[i].lineAddr == acc.lineAddr);
            }
            if (alias) {
                warp.toSubmit.swap(accesses);
                warp.submitHead = 0;
                warpState_[w] = WarpState::WaitMem;
                warp.loadWaitsStores = true;
                memRetry_[w] = 0; // alias-blocked: no retry until drain
                if (trace_) {
                    traceWarp(obs::EventKind::WarpStall, now, w,
                              static_cast<std::uint16_t>(
                                  obs::StallReason::Mem),
                              instr.laneAddr(0));
                }
                return true;
            }
        }

        warp.toSubmit.swap(accesses);
        warp.submitHead = 0;
        warpState_[w] = WarpState::WaitMem;
        bool drained = drainSubmits(w, now);
        if (drained && warp.inFlight == 0)
            finishMemInstr(w, now);
        if (trace_ && warpState_[w] == WarpState::WaitMem) {
            traceWarp(obs::EventKind::WarpStall, now, w,
                      static_cast<std::uint16_t>(obs::StallReason::Mem),
                      instr.laneAddr(0));
        }
        return true;
      }
    }
    GTSC_PANIC("unhandled opcode");
}

void
Sm::drainStoreFifo(unsigned w, Cycle now)
{
    WarpCtx &warp = warps_[w];
    if (warp.storeFifo.empty())
        return;
    // One-deep store buffer: submit the next store only when the
    // previous one has been acknowledged.
    while (warp.storesSubmitted == 0 && !warp.storeFifo.empty()) {
        if (!l1_.access(warp.storeFifo.front(), now))
            break;
        warp.storeFifo.pop_front();
        ++warp.storesSubmitted;
    }
    if (warp.storeFifo.empty()) {
        GTSC_ASSERT(storeFifoWarps_ > 0, "storeFifoWarps underflow");
        --storeFifoWarps_;
    }
}

bool
Sm::drainSubmits(unsigned w, Cycle now)
{
    WarpCtx &warp = warps_[w];
    while (warp.submitHead < warp.toSubmit.size()) {
        if (!l1_.access(warp.toSubmit[warp.submitHead], now)) {
            memRetry_[w] = 1;
            return false;
        }
        ++warp.submitHead;
    }
    warp.toSubmit.clear();
    warp.submitHead = 0;
    memRetry_[w] = 0;
    return true;
}

void
Sm::finishMemInstr(unsigned w, Cycle now)
{
    WarpCtx &warp = warps_[w];
    GTSC_ASSERT(warp.inFlight == 0 && !warp.submitsPending(),
                "finishMemInstr with work outstanding");
    if (!warp.hasCur) {
        return;
    }
    if (warp.cur.op == WarpInstr::Op::SpinLoad) {
        bool satisfied = warp.spinObserved >= warp.cur.spinExpect;
        if (!satisfied && warp.spinIters + 1 < warp.cur.spinMaxIters) {
            // Retry after a short backoff; tell the protocol so
            // G-TSC can advance the warp's logical clock.
            ++warp.spinIters;
            ++win_.spinRetries;
            l1_.noteSpinRetry(static_cast<WarpId>(w),
                              mem::lineAlign(warp.cur.laneAddr(0)));
            warpReadyAt_[w] = now + spinBackoff_;
            warpState_[w] = WarpState::WaitCompute;
            if (trace_) {
                traceWarp(obs::EventKind::WarpStall, now, w,
                          static_cast<std::uint16_t>(
                              obs::StallReason::Compute),
                          warp.cur.laneAddr(0));
            }
            return;
        }
        if (!satisfied)
            ++win_.spinGiveups;
    }
    if (warp.cur.op == WarpInstr::Op::Load ||
        warp.cur.op == WarpInstr::Op::SpinLoad) {
        warp.program->observe(warp.spinObserved);
    }
    retire(w);
}

void
Sm::onLoadDone(const mem::Access &acc, const mem::AccessResult &res,
               Cycle now)
{
    invalidateTickCache();
    WarpCtx &warp = warps_[acc.warp];
    GTSC_ASSERT(warp.inFlight > 0, "load completion with none in flight");
    --warp.inFlight;
    if (warp.hasCur &&
        (warp.cur.op == WarpInstr::Op::SpinLoad ||
         warp.cur.op == WarpInstr::Op::Load)) {
        Addr lane0 = warp.cur.laneAddr(0);
        if (mem::lineAlign(lane0) == acc.lineAddr)
            warp.spinObserved = res.data.word(mem::wordInLine(lane0));
    }
    if (warp.inFlight == 0 && !warp.submitsPending()) {
        finishMemInstr(acc.warp, now);
        if (trace_ && warpState_[acc.warp] == WarpState::Ready) {
            traceWarp(obs::EventKind::WarpResume, now, acc.warp, 0,
                      acc.lineAddr);
        }
    }
}

void
Sm::onStoreDone(const mem::Access &acc, Cycle gwct, Cycle now)
{
    invalidateTickCache();
    WarpCtx &warp = warps_[acc.warp];
    GTSC_ASSERT(warp.outstandingStores > 0,
                "store ack with none outstanding");
    --warp.outstandingStores;
    if (gwct > warp.gwct)
        warp.gwct = gwct;
    if (params_.consistency == Consistency::TSO) {
        GTSC_ASSERT(warp.storesSubmitted > 0,
                    "TSO ack without submitted store");
        --warp.storesSubmitted;
        drainStoreFifo(acc.warp, now);
        if (warp.loadWaitsStores && warp.storeFifo.empty() &&
            warp.storesSubmitted == 0) {
            // Aliased load may proceed; its submits resume on the
            // warp's next issue slot.
            warp.loadWaitsStores = false;
            memRetry_[acc.warp] = warp.submitsPending() ? 1 : 0;
        }
    }
    if (params_.consistency == Consistency::SC) {
        GTSC_ASSERT(warp.inFlight > 0, "SC store ack with none in flight");
        --warp.inFlight;
        if (warp.inFlight == 0 && !warp.submitsPending()) {
            finishMemInstr(acc.warp, now);
            if (trace_ && warpState_[acc.warp] == WarpState::Ready) {
                traceWarp(obs::EventKind::WarpResume, now, acc.warp, 0,
                          acc.lineAddr);
            }
        }
    }
}

} // namespace gtsc::gpu
