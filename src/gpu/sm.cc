#include "gpu/sm.hh"

#include <algorithm>
#include <string>

#include "obs/tracer.hh"
#include "sim/log.hh"

namespace gtsc::gpu
{

Sm::Sm(SmId id, const GpuParams &params, const sim::Config &cfg,
       sim::StatSet &stats, mem::L1Controller &l1,
       StoreValueSource &values)
    : id_(id), params_(params), stats_(stats), l1_(l1),
      coalescer_(values)
{
    warps_.resize(params_.warpsPerSm);
    warpState_.assign(params_.warpsPerSm, WarpState::Idle);
    warpReadyAt_.assign(params_.warpsPerSm, 0);
    memRetry_.assign(params_.warpsPerSm, 0);
    readyMask_.resize(params_.warpsPerSm);
    waitComputeMask_.resize(params_.warpsPerSm);
    waitMemMask_.resize(params_.warpsPerSm);
    waitFenceMask_.resize(params_.warpsPerSm);
    retryMask_.resize(params_.warpsPerSm);
    storeFifoMask_.resize(params_.warpsPerSm);
    issueWidth_ =
        static_cast<unsigned>(cfg.getUint("gpu.issue_width", 1));
    spinBackoff_ = cfg.getUint("gpu.spin_backoff_cycles", 16);
    std::string sched = cfg.getString("gpu.scheduler", "gto");
    if (sched == "gto")
        scheduler_ = Scheduler::Gto;
    else if (sched == "rr")
        scheduler_ = Scheduler::Rr;
    else if (sched == "oldest")
        scheduler_ = Scheduler::Oldest;
    else
        GTSC_FATAL("gpu.scheduler must be gto|rr|oldest, got '", sched,
                   "'");

    activeCycles_ = &stats_.counter("sm.active_cycles");
    memStallCycles_ = &stats_.counter("sm.mem_stall_cycles");
    computeStallCycles_ = &stats_.counter("sm.compute_stall_cycles");
    idleCycles_ = &stats_.counter("sm.idle_cycles");
    instrs_ = &stats_.counter("sm.instructions");
    loads_ = &stats_.counter("sm.loads");
    stores_ = &stats_.counter("sm.stores");
    fences_ = &stats_.counter("sm.fences");
    spinRetries_ = &stats_.counter("sm.spin_retries");
    spinGiveups_ = &stats_.counter("sm.spin_giveups");
    fenceStallCycles_ = &stats_.counter("sm.fence_stall_warp_cycles");

    // Callbacks must observe a now_ lagging the loop cycle by one.
    // Under active-set scheduling a parked SM's now_ can lag further;
    // catch up the skipped (provably idle) cycles first, using the
    // pre-callback stall classification, then re-arm so the tick
    // phase of the current cycle processes the new warp state.
    l1_.setLoadDone(
        [this](const mem::Access &a, const mem::AccessResult &r) {
            if (schedNow_ && now_ + 1 < *schedNow_)
                accountThrough(*schedNow_ - 1);
            onLoadDone(a, r, now_);
            if (wake_)
                wake_();
        });
    l1_.setStoreDone([this](const mem::Access &a, Cycle gwct) {
        if (schedNow_ && now_ + 1 < *schedNow_)
            accountThrough(*schedNow_ - 1);
        onStoreDone(a, gwct, now_);
        if (wake_)
            wake_();
    });
}

void
Sm::flushStatWindow()
{
    *activeCycles_ += win_.activeCycles;
    *memStallCycles_ += win_.memStallCycles;
    *computeStallCycles_ += win_.computeStallCycles;
    *idleCycles_ += win_.idleCycles;
    *instrs_ += win_.instrs;
    *loads_ += win_.loads;
    *stores_ += win_.stores;
    *fences_ += win_.fences;
    *spinRetries_ += win_.spinRetries;
    *spinGiveups_ += win_.spinGiveups;
    *fenceStallCycles_ += win_.fenceStallCycles;
    win_ = StatWindow{};
}

void
Sm::attachTracer(obs::Tracer &tracer)
{
    trace_ = &tracer;
    track_ = tracer.track("sm" + std::to_string(id_));
}

void
Sm::traceWarp(obs::EventKind kind, Cycle now, unsigned w,
              std::uint16_t detail, Addr addr)
{
    trace_->record(track_,
                   obs::Event{now, addr, 0, 0, kind,
                              static_cast<std::uint16_t>(w), detail});
}

void
Sm::launchKernel(std::vector<std::unique_ptr<WarpProgram>> &&programs)
{
    GTSC_ASSERT(programs.size() == warps_.size(),
                "program count != warp count");
    liveWarps_ = 0;
    readyMask_.clearAll();
    waitComputeMask_.clearAll();
    waitMemMask_.clearAll();
    waitFenceMask_.clearAll();
    retryMask_.clearAll();
    GTSC_ASSERT(!storeFifoMask_.any(),
                "kernel launch with buffered stores");
    for (unsigned w = 0; w < warps_.size(); ++w) {
        WarpCtx &warp = warps_[w];
        GTSC_ASSERT(!warp.submitsPending() && warp.inFlight == 0,
                    "kernel launch with in-flight memory accesses");
        GTSC_ASSERT(warp.outstandingStores == 0 &&
                        warp.storeFifo.empty(),
                    "kernel launch with outstanding stores");
        warp.program = std::move(programs[w]);
        warpState_[w] =
            warp.program ? WarpState::Ready : WarpState::Idle;
        if (warp.program) {
            ++liveWarps_;
            readyMask_.set(w);
        }
        warp.hasCur = false;
        warpReadyAt_[w] = 0;
        memRetry_[w] = 0;
        warp.gwct = 0;
        warp.spinIters = 0;
    }
    lastIssued_ = 0;
    invalidateTickCache();
}

bool
Sm::quiescent() const
{
    for (const auto &warp : warps_) {
        if (warp.submitsPending() || warp.inFlight != 0 ||
            warp.outstandingStores != 0 || !warp.storeFifo.empty()) {
            return false;
        }
    }
    return true;
}

bool
Sm::fenceSatisfied(const WarpCtx &warp, Cycle now) const
{
    return warp.outstandingStores == 0 && now >= warp.gwct;
}

void
Sm::retire(unsigned w)
{
    WarpCtx &warp = warps_[w];
    warp.hasCur = false;
    warp.spinIters = 0;
    if (warpState_[w] != WarpState::Done)
        setWarpState(w, WarpState::Ready);
    ++retiredTotal_;
    ++win_.instrs;
}

void
Sm::tickFull(Cycle now)
{
    // Wake timed and fence-blocked warps; retry store-buffer drains
    // that were structurally rejected. Both passes walk only the set
    // bits of the packed masks; the fat WarpCtx is touched for the
    // rare states that need it (fences, non-empty store buffers).
    if (storeFifoMask_.any()) {
        storeFifoMask_.forEachSet(
            [&](unsigned w) { drainStoreFifo(w, now); });
    }
    if (waitComputeMask_.any() || waitFenceMask_.any()) {
        // One merged ascending pass over both wait states: the
        // WarpResume events of compute- and fence-wakes on the same
        // cycle must interleave in warp order (the tracer keeps
        // insertion order within a cycle).
        win_.fenceStallCycles += waitFenceMask_.count();
        sim::forEachSetOr(
            waitComputeMask_, waitFenceMask_, [&](unsigned w) {
                if (warpState_[w] == WarpState::WaitCompute) {
                    if (now >= warpReadyAt_[w]) {
                        setWarpState(w, WarpState::Ready);
                        if (trace_)
                            traceWarp(obs::EventKind::WarpResume, now,
                                      w, 0, 0);
                    }
                } else if (fenceSatisfied(warps_[w], now)) {
                    setWarpState(w, WarpState::Ready);
                    // The fence instruction retires when it unblocks.
                    ++retiredTotal_;
                    ++win_.instrs;
                    if (trace_)
                        traceWarp(obs::EventKind::WarpResume, now, w,
                                  0, 0);
                }
            });
    }

    // Issue according to the configured scheduling policy. A warp
    // consumes a slot iff it has a structural retry pending or is
    // Ready (issueWarp on such a warp always returns true), so the
    // pickers are ctz scans over readyMask_|retryMask_.
    unsigned issued = 0;
    unsigned n = static_cast<unsigned>(warps_.size());
    for (unsigned slot = 0; slot < issueWidth_; ++slot) {
        unsigned pick = sim::BitMask::kNpos;
        switch (scheduler_) {
          case Scheduler::Gto:
            // Greedy: stick with the last issued warp, then oldest.
            if (readyMask_.test(lastIssued_) ||
                retryMask_.test(lastIssued_)) {
                pick = lastIssued_;
                break;
            }
            [[fallthrough]];
          case Scheduler::Oldest:
            pick = sim::findFirstOr(readyMask_, retryMask_);
            if (pick != sim::BitMask::kNpos)
                lastIssued_ = pick;
            break;
          case Scheduler::Rr: {
            // Loose round-robin: start after the last issued warp.
            unsigned start =
                (lastIssued_ + 1 == n) ? 0 : lastIssued_ + 1;
            pick = sim::findNextWrapOr(readyMask_, retryMask_, start);
            if (pick != sim::BitMask::kNpos)
                lastIssued_ = pick;
            break;
          }
        }
        if (pick == sim::BitMask::kNpos)
            break;
        bool progress = issueWarp(pick, now);
        GTSC_ASSERT(progress, "picked warp did not use its slot");
        ++issued;
    }

    // Cycle accounting for the stall breakdown (Figure 13).
    if (issued > 0) {
        ++win_.activeCycles;
        issueSlotsUsed_ += issued;
        // Issue changed warp state; the cached classification and
        // horizon no longer describe it.
        invalidateTickCache();
        return;
    }
    bool any_compute = waitComputeMask_.any();
    unsigned wait_fence = waitFenceMask_.count();
    bool any_mem = wait_fence != 0 || waitMemMask_.any();
    bool any_live = any_compute || any_mem || readyMask_.any();
    std::uint64_t *bucket;
    if (!any_live)
        bucket = &win_.idleCycles;
    else if (any_compute)
        bucket = &win_.computeStallCycles;
    else if (any_mem)
        bucket = &win_.memStallCycles;
    else
        bucket = &win_.idleCycles;
    ++(*bucket);

    // Cache the end-of-tick classification and horizon so the rest
    // of the stall/idle stretch costs O(1) per cycle: until an L1
    // callback mutates a warp (invalidateTickCache) or the horizon
    // arrives, a repeat of this pass could neither issue, wake a
    // warp, nor submit a buffered store — only the accounting above
    // would run, and the fast path in tick() replays exactly that.
    cachedStallBucket_ = bucket;
    cachedWaitFence_ = wait_fence;
    horizonValid_ = false;
    cachedNextWork_ = nextWorkCycle(now);
    idleTickValid_ = true;
}

Cycle
Sm::nextWorkCycle(Cycle now) const
{
    // The horizon only moves when warp state does; cache it. The
    // max-clamp keeps a cached "work next cycle" answer correct when
    // re-asked at a later cycle (the pinning condition still holds,
    // so the answer is again "next cycle").
    if (!horizonValid_) {
        cachedNextWork_ = computeNextWork(now);
        horizonValid_ = true;
    }
    return std::max(cachedNextWork_, now + 1);
}

Cycle
Sm::computeNextWork(Cycle now) const
{
    Cycle next = kCycleNever;
    // Store-buffer drains retry l1_.access() every tick while
    // nothing is outstanding — that attempt can reject and count
    // stats, so it pins the horizon to the next cycle.
    for (unsigned k = 0; k < storeFifoMask_.numWords(); ++k) {
        std::uint64_t m = storeFifoMask_.word(k);
        while (m) {
            unsigned w = k * 64u +
                         static_cast<unsigned>(std::countr_zero(m));
            m &= m - 1;
            if (warps_[w].storesSubmitted == 0)
                return now + 1;
        }
    }
    // Ready warps issue next cycle; structural retries re-submit
    // every issue slot (a warp waiting only on completions wakes via
    // the L1 callback instead).
    if (readyMask_.any() || retryMask_.any())
        return now + 1;
    waitComputeMask_.forEachSet([&](unsigned w) {
        next = std::min(next, std::max(warpReadyAt_[w], now + 1));
    });
    // With no stores outstanding a fence clears once the GWCT
    // passes; otherwise the store ack drives the wake.
    waitFenceMask_.forEachSet([&](unsigned w) {
        if (warps_[w].outstandingStores == 0)
            next = std::min(next, std::max(warps_[w].gwct, now + 1));
    });
    return next;
}

void
Sm::fastForwardStats(Cycle span)
{
    // Fast path: the cached no-issue classification (same validity
    // as tick()'s O(1) path — warp state untouched since it was
    // computed) already names the bucket and the fence count, so a
    // bulk span is two additions. This is what keeps the active-set
    // scheduler's deferred catch-up O(1) per parked SM.
    if (idleTickValid_) {
        win_.fenceStallCycles +=
            static_cast<std::uint64_t>(cachedWaitFence_) * span;
        *cachedStallBucket_ += span;
        return;
    }
    // Mirrors the issued == 0 classification at the end of tick();
    // warp states cannot change inside a skipped range, so each
    // skipped cycle lands in the same bucket.
    bool any_compute = waitComputeMask_.any();
    unsigned wait_fence = waitFenceMask_.count();
    bool any_mem = wait_fence != 0 || waitMemMask_.any();
    bool any_live = any_compute || any_mem || readyMask_.any();
    win_.fenceStallCycles +=
        static_cast<std::uint64_t>(wait_fence) * span;
    std::uint64_t *bucket;
    if (!any_live)
        bucket = &win_.idleCycles;
    else if (any_compute)
        bucket = &win_.computeStallCycles;
    else if (any_mem)
        bucket = &win_.memStallCycles;
    else
        bucket = &win_.idleCycles;
    *bucket += span;
    // Re-establish the classification cache so the rest of the
    // parked stretch takes the fast path. Only safe when the cached
    // horizon is also valid (tick()'s fast path reads it).
    cachedStallBucket_ = bucket;
    cachedWaitFence_ = wait_fence;
    if (horizonValid_)
        idleTickValid_ = true;
}

bool
Sm::issueWarp(unsigned w, Cycle now)
{
    // Structural retries count as the warp's issue slot. memRetry_
    // is exactly "submits pending and not alias-blocked" (a warp
    // with pending submits is always in WaitMem), so the common
    // can't-issue case is decided from the SoA arrays alone.
    if (memRetry_[w]) {
        bool drained = drainSubmits(w, now);
        if (drained && warps_[w].inFlight == 0)
            finishMemInstr(w, now);
        return true;
    }

    if (warpState_[w] != WarpState::Ready)
        return false;

    WarpCtx &warp = warps_[w];
    if (!warp.hasCur) {
        warp.cur = warp.program->next();
        warp.hasCur = true;
        // Decode the memory cursor once per fetch: the coalescing
        // plan survives spin-load retries of the same instruction.
        if (warp.cur.op == WarpInstr::Op::Load ||
            warp.cur.op == WarpInstr::Op::SpinLoad ||
            warp.cur.op == WarpInstr::Op::Store) {
            warp.plan = Coalescer::plan(warp.cur, params_.warpSize);
        }
    }
    return beginInstr(w, now);
}

bool
Sm::beginInstr(unsigned w, Cycle now)
{
    WarpCtx &warp = warps_[w];
    const WarpInstr &instr = warp.cur;

    if (trace_) {
        bool is_mem = instr.op == WarpInstr::Op::Load ||
                      instr.op == WarpInstr::Op::SpinLoad ||
                      instr.op == WarpInstr::Op::Store;
        traceWarp(obs::EventKind::WarpIssue, now, w,
                  static_cast<std::uint16_t>(instr.op),
                  is_mem ? instr.laneAddr(0) : 0);
    }

    switch (instr.op) {
      case WarpInstr::Op::Exit:
        setWarpState(w, WarpState::Done);
        warp.hasCur = false;
        GTSC_ASSERT(liveWarps_ > 0, "Exit with no live warps");
        --liveWarps_;
        return true;

      case WarpInstr::Op::Compute: {
        std::uint32_t cycles = instr.computeCycles;
        warpReadyAt_[w] = now + cycles;
        retire(w);
        if (cycles > 0)
            setWarpState(w, WarpState::WaitCompute);
        return true;
      }

      case WarpInstr::Op::Fence:
        ++win_.fences;
        if (fenceSatisfied(warp, now)) {
            retire(w);
        } else {
            setWarpState(w, WarpState::WaitFence);
            warp.hasCur = false; // retires on wake
            if (trace_) {
                traceWarp(obs::EventKind::WarpStall, now, w,
                          static_cast<std::uint16_t>(
                              obs::StallReason::Fence),
                          0);
            }
        }
        return true;

      case WarpInstr::Op::Load:
      case WarpInstr::Op::SpinLoad:
      case WarpInstr::Op::Store: {
        bool is_store = instr.op == WarpInstr::Op::Store;
        std::vector<mem::Access> &accesses = coalesceBuf_;
        coalescer_.coalesce(instr, warp.plan, params_.warpSize, id_,
                            static_cast<WarpId>(w), accesses);
        GTSC_ASSERT(!accesses.empty(), "memory instr with no active lanes");
        if (is_store)
            ++win_.stores;
        else
            ++win_.loads;

        for (auto &acc : accesses) {
            acc.id = nextAccessId_++;
            if (is_store) {
                ++warp.outstandingStores;
                if (params_.consistency == Consistency::SC)
                    ++warp.inFlight;
            } else {
                ++warp.inFlight;
            }
        }

        if (is_store && params_.consistency == Consistency::TSO) {
            // TSO: the store retires into the per-warp store buffer
            // and drains in order, one outstanding at a time.
            if (warp.storeFifo.empty())
                storeFifoMask_.set(w);
            for (auto &acc : accesses)
                warp.storeFifo.push_back(std::move(acc));
            retire(w);
            drainStoreFifo(w, now);
            return true;
        }
        if (!is_store && params_.consistency == Consistency::TSO &&
            !warp.storeFifo.empty()) {
            // No store-to-load forwarding hardware: a load aliasing
            // a buffered store waits for the buffer to drain.
            bool alias = false;
            for (const auto &acc : accesses) {
                for (std::size_t i = 0; i < warp.storeFifo.size(); ++i)
                    alias |= (warp.storeFifo[i].lineAddr == acc.lineAddr);
            }
            if (alias) {
                warp.toSubmit.swap(accesses);
                warp.submitHead = 0;
                setWarpState(w, WarpState::WaitMem);
                warp.loadWaitsStores = true;
                setMemRetry(w, false); // alias-blocked: no retry until drain
                if (trace_) {
                    traceWarp(obs::EventKind::WarpStall, now, w,
                              static_cast<std::uint16_t>(
                                  obs::StallReason::Mem),
                              instr.laneAddr(0));
                }
                return true;
            }
        }

        warp.toSubmit.swap(accesses);
        warp.submitHead = 0;
        setWarpState(w, WarpState::WaitMem);
        bool drained = drainSubmits(w, now);
        if (drained && warp.inFlight == 0)
            finishMemInstr(w, now);
        if (trace_ && warpState_[w] == WarpState::WaitMem) {
            traceWarp(obs::EventKind::WarpStall, now, w,
                      static_cast<std::uint16_t>(obs::StallReason::Mem),
                      instr.laneAddr(0));
        }
        return true;
      }
    }
    GTSC_PANIC("unhandled opcode");
}

void
Sm::drainStoreFifo(unsigned w, Cycle now)
{
    WarpCtx &warp = warps_[w];
    if (warp.storeFifo.empty())
        return;
    // One-deep store buffer: submit the next store only when the
    // previous one has been acknowledged.
    while (warp.storesSubmitted == 0 && !warp.storeFifo.empty()) {
        if (!l1_.access(warp.storeFifo.front(), now))
            break;
        warp.storeFifo.pop_front();
        ++warp.storesSubmitted;
    }
    if (warp.storeFifo.empty())
        storeFifoMask_.clear(w);
}

bool
Sm::drainSubmits(unsigned w, Cycle now)
{
    WarpCtx &warp = warps_[w];
    while (warp.submitHead < warp.toSubmit.size()) {
        if (!l1_.access(warp.toSubmit[warp.submitHead], now)) {
            setMemRetry(w, true);
            return false;
        }
        ++warp.submitHead;
    }
    // Leave the drained elements in place (submitHead == size means
    // fully drained): the next coalesce into this buffer recycles
    // them via Access::beginLine instead of re-constructing, so load
    // payload bytes are never re-zeroed on the hot path.
    setMemRetry(w, false);
    return true;
}

void
Sm::finishMemInstr(unsigned w, Cycle now)
{
    WarpCtx &warp = warps_[w];
    GTSC_ASSERT(warp.inFlight == 0 && !warp.submitsPending(),
                "finishMemInstr with work outstanding");
    if (!warp.hasCur) {
        return;
    }
    if (warp.cur.op == WarpInstr::Op::SpinLoad) {
        bool satisfied = warp.spinObserved >= warp.cur.spinExpect;
        if (!satisfied && warp.spinIters + 1 < warp.cur.spinMaxIters) {
            // Retry after a short backoff; tell the protocol so
            // G-TSC can advance the warp's logical clock.
            ++warp.spinIters;
            ++win_.spinRetries;
            l1_.noteSpinRetry(static_cast<WarpId>(w),
                              mem::lineAlign(warp.cur.laneAddr(0)));
            warpReadyAt_[w] = now + spinBackoff_;
            setWarpState(w, WarpState::WaitCompute);
            if (trace_) {
                traceWarp(obs::EventKind::WarpStall, now, w,
                          static_cast<std::uint16_t>(
                              obs::StallReason::Compute),
                          warp.cur.laneAddr(0));
            }
            return;
        }
        if (!satisfied)
            ++win_.spinGiveups;
    }
    if (warp.cur.op == WarpInstr::Op::Load ||
        warp.cur.op == WarpInstr::Op::SpinLoad) {
        warp.program->observe(warp.spinObserved);
    }
    retire(w);
}

void
Sm::onLoadDone(const mem::Access &acc, const mem::AccessResult &res,
               Cycle now)
{
    invalidateTickCache();
    WarpCtx &warp = warps_[acc.warp];
    GTSC_ASSERT(warp.inFlight > 0, "load completion with none in flight");
    --warp.inFlight;
    if (warp.hasCur &&
        (warp.cur.op == WarpInstr::Op::SpinLoad ||
         warp.cur.op == WarpInstr::Op::Load)) {
        Addr lane0 = warp.cur.laneAddr(0);
        if (mem::lineAlign(lane0) == acc.lineAddr)
            warp.spinObserved = res.data.word(mem::wordInLine(lane0));
    }
    if (warp.inFlight == 0 && !warp.submitsPending()) {
        finishMemInstr(acc.warp, now);
        if (trace_ && warpState_[acc.warp] == WarpState::Ready) {
            traceWarp(obs::EventKind::WarpResume, now, acc.warp, 0,
                      acc.lineAddr);
        }
    }
}

void
Sm::onStoreDone(const mem::Access &acc, Cycle gwct, Cycle now)
{
    invalidateTickCache();
    WarpCtx &warp = warps_[acc.warp];
    GTSC_ASSERT(warp.outstandingStores > 0,
                "store ack with none outstanding");
    --warp.outstandingStores;
    if (gwct > warp.gwct)
        warp.gwct = gwct;
    if (params_.consistency == Consistency::TSO) {
        GTSC_ASSERT(warp.storesSubmitted > 0,
                    "TSO ack without submitted store");
        --warp.storesSubmitted;
        drainStoreFifo(acc.warp, now);
        if (warp.loadWaitsStores && warp.storeFifo.empty() &&
            warp.storesSubmitted == 0) {
            // Aliased load may proceed; its submits resume on the
            // warp's next issue slot.
            warp.loadWaitsStores = false;
            setMemRetry(acc.warp, warp.submitsPending());
        }
    }
    if (params_.consistency == Consistency::SC) {
        GTSC_ASSERT(warp.inFlight > 0, "SC store ack with none in flight");
        --warp.inFlight;
        if (warp.inFlight == 0 && !warp.submitsPending()) {
            finishMemInstr(acc.warp, now);
            if (trace_ && warpState_[acc.warp] == WarpState::Ready) {
                traceWarp(obs::EventKind::WarpResume, now, acc.warp, 0,
                          acc.lineAddr);
            }
        }
    }
}

} // namespace gtsc::gpu
