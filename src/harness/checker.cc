#include "harness/checker.hh"

#include <algorithm>
#include <sstream>

#include "mem/line_data.hh"
#include "obs/transcript.hh"

namespace gtsc::harness
{

namespace
{

constexpr std::size_t kMaxReports = 16;
/** Transcript entries quoted per violation report. */
constexpr std::size_t kTranscriptTail = 8;

/** "sm3/w7", with '?' for the unknown-originator sentinels. */
std::string
originToString(SmId sm, WarpId warp)
{
    std::ostringstream oss;
    oss << "sm";
    if (sm == mem::kNoSm)
        oss << '?';
    else
        oss << sm;
    oss << "/w";
    if (warp == mem::kNoWarp)
        oss << '?';
    else
        oss << warp;
    return oss.str();
}

} // namespace

void
CoherenceChecker::report(const std::string &what, Addr word_addr)
{
    ++violations_;
    if (reports_.size() >= kMaxReports)
        return;
    std::string entry = what;
    if (transcript_) {
        Addr line = word_addr & ~static_cast<Addr>(mem::kLineBytes - 1);
        std::string tail = transcript_->describeLine(line, kTranscriptTail);
        if (!tail.empty())
            entry += "\n  transcript:\n" + tail;
    }
    reports_.push_back(std::move(entry));
}

void
CoherenceChecker::snapshotBase(const mem::MainMemory &memory)
{
    tsHist_.clear();
    physHist_.clear();
    base_ = memory;
}

std::uint32_t
CoherenceChecker::baseValue(Addr word_addr) const
{
    return base_.readWord(word_addr);
}

void
CoherenceChecker::onStoreTs(Addr word_addr, std::uint32_t epoch, Ts wts,
                            std::uint32_t value, SmId sm, WarpId warp)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++storesRecorded_;
    auto &hist = tsHist_[word_addr];
    if (!hist.empty()) {
        const TsVersion &last = hist.back();
        bool ordered = (epoch > last.epoch) ||
                       (epoch == last.epoch && wts > last.wts);
        if (!ordered) {
            std::ostringstream oss;
            oss << "store ts not increasing @0x" << std::hex << word_addr
                << std::dec << " epoch " << last.epoch << "->" << epoch
                << " wts " << last.wts << "->" << wts << " by "
                << originToString(sm, warp) << " after "
                << originToString(last.sm, last.warp);
            report(oss.str(), word_addr);
        }
    }
    hist.push_back(TsVersion{epoch, wts, value, sm, warp});
}

void
CoherenceChecker::onLoadTs(Addr word_addr, std::uint32_t epoch, Ts ts,
                           std::uint32_t value, SmId sm, WarpId warp)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++loadsChecked_;
    auto it = tsHist_.find(word_addr);
    std::uint32_t expected;
    const TsVersion *writer = nullptr;
    bool found = false;
    if (it != tsHist_.end()) {
        const auto &hist = it->second;
        // Last version with (epoch, wts) <= (load epoch, load ts).
        auto pos = std::partition_point(
            hist.begin(), hist.end(), [&](const TsVersion &v) {
                return v.epoch < epoch ||
                       (v.epoch == epoch && v.wts <= ts);
            });
        if (pos != hist.begin()) {
            writer = &*std::prev(pos);
            expected = writer->value;
            found = true;
        }
    }
    if (!found)
        expected = baseValue(word_addr);

    if (value != expected) {
        std::ostringstream oss;
        oss << "ts load mismatch @0x" << std::hex << word_addr << std::dec
            << " epoch " << epoch << " ts " << ts << " got " << value
            << " want " << expected << " by " << originToString(sm, warp);
        if (writer) {
            oss << " (expected writer "
                << originToString(writer->sm, writer->warp) << " wts "
                << writer->wts << ")";
        }
        report(oss.str(), word_addr);
    }
}

void
CoherenceChecker::onStorePhys(Addr word_addr, Cycle when,
                              std::uint32_t value, SmId sm, WarpId warp)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++storesRecorded_;
    auto &hist = physHist_[word_addr];
    if (!hist.empty() && hist.back().start > when) {
        std::ostringstream oss;
        oss << "phys store time regressed @0x" << std::hex << word_addr
            << std::dec << " " << hist.back().start << "->" << when
            << " by " << originToString(sm, warp);
        report(oss.str(), word_addr);
    }
    hist.push_back(PhysVersion{when, value, sm, warp});
}

void
CoherenceChecker::onLoadPhys(Addr word_addr, Cycle grant, Cycle when,
                             std::uint32_t value, SmId sm, WarpId warp)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++loadsChecked_;
    Cycle hi = std::max(grant, when);
    auto it = physHist_.find(word_addr);
    if (it == physHist_.end() || it->second.empty() ||
        it->second.front().start > hi) {
        // Only the initial value can have been observed.
        std::uint32_t expected = baseValue(word_addr);
        if (value != expected) {
            std::ostringstream oss;
            oss << "phys load mismatch @0x" << std::hex << word_addr
                << std::dec << " grant " << grant << " got " << value
                << " want initial " << expected << " by "
                << originToString(sm, warp);
            report(oss.str(), word_addr);
        }
        return;
    }

    const auto &hist = it->second;
    Cycle lo = std::min(grant, when);
    // Version i live over [start_i, start_{i+1}]; the end is
    // inclusive because a load and the overwriting store can be
    // serviced on the same cycle in either order. Initial value live
    // over [0, start_0].
    if (hist.front().start >= lo && value == baseValue(word_addr))
        return;
    for (std::size_t i = 0; i < hist.size(); ++i) {
        Cycle start = hist[i].start;
        Cycle end =
            (i + 1 < hist.size()) ? hist[i + 1].start : ~Cycle{0};
        if (start > hi)
            break;
        if (end < lo)
            continue;
        if (hist[i].value == value)
            return; // live in [lo, hi] with matching value
    }
    std::ostringstream oss;
    oss << "phys load mismatch @0x" << std::hex << word_addr << std::dec
        << " window [" << lo << "," << hi << "] got " << value << " by "
        << originToString(sm, warp);
    report(oss.str(), word_addr);
}

void
CoherenceChecker::onEpochReset(std::uint32_t new_epoch)
{
    (void)new_epoch; // epochs are carried on each record already
}

} // namespace gtsc::harness
