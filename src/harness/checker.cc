#include "harness/checker.hh"

#include <algorithm>
#include <sstream>

namespace gtsc::harness
{

namespace
{
constexpr std::size_t kMaxReports = 16;
} // namespace

void
CoherenceChecker::report(const std::string &what)
{
    ++violations_;
    if (reports_.size() < kMaxReports)
        reports_.push_back(what);
}

void
CoherenceChecker::snapshotBase(const mem::MainMemory &memory)
{
    tsHist_.clear();
    physHist_.clear();
    base_ = memory;
}

std::uint32_t
CoherenceChecker::baseValue(Addr word_addr) const
{
    return base_.readWord(word_addr);
}

void
CoherenceChecker::onStoreTs(Addr word_addr, std::uint32_t epoch, Ts wts,
                            std::uint32_t value)
{
    ++storesRecorded_;
    auto &hist = tsHist_[word_addr];
    if (!hist.empty()) {
        const TsVersion &last = hist.back();
        bool ordered = (epoch > last.epoch) ||
                       (epoch == last.epoch && wts > last.wts);
        if (!ordered) {
            std::ostringstream oss;
            oss << "store ts not increasing @0x" << std::hex << word_addr
                << std::dec << " epoch " << last.epoch << "->" << epoch
                << " wts " << last.wts << "->" << wts;
            report(oss.str());
        }
    }
    hist.push_back(TsVersion{epoch, wts, value});
}

void
CoherenceChecker::onLoadTs(Addr word_addr, std::uint32_t epoch, Ts ts,
                           std::uint32_t value)
{
    ++loadsChecked_;
    auto it = tsHist_.find(word_addr);
    std::uint32_t expected;
    bool found = false;
    if (it != tsHist_.end()) {
        const auto &hist = it->second;
        // Last version with (epoch, wts) <= (load epoch, load ts).
        auto pos = std::partition_point(
            hist.begin(), hist.end(), [&](const TsVersion &v) {
                return v.epoch < epoch ||
                       (v.epoch == epoch && v.wts <= ts);
            });
        if (pos != hist.begin()) {
            expected = std::prev(pos)->value;
            found = true;
        }
    }
    if (!found)
        expected = baseValue(word_addr);

    if (value != expected) {
        std::ostringstream oss;
        oss << "ts load mismatch @0x" << std::hex << word_addr << std::dec
            << " epoch " << epoch << " ts " << ts << " got " << value
            << " want " << expected;
        report(oss.str());
    }
}

void
CoherenceChecker::onStorePhys(Addr word_addr, Cycle when,
                              std::uint32_t value)
{
    ++storesRecorded_;
    auto &hist = physHist_[word_addr];
    if (!hist.empty() && hist.back().start > when) {
        std::ostringstream oss;
        oss << "phys store time regressed @0x" << std::hex << word_addr
            << std::dec << " " << hist.back().start << "->" << when;
        report(oss.str());
    }
    hist.push_back(PhysVersion{when, value});
}

void
CoherenceChecker::onLoadPhys(Addr word_addr, Cycle grant, Cycle when,
                             std::uint32_t value)
{
    ++loadsChecked_;
    Cycle hi = std::max(grant, when);
    auto it = physHist_.find(word_addr);
    if (it == physHist_.end() || it->second.empty() ||
        it->second.front().start > hi) {
        // Only the initial value can have been observed.
        std::uint32_t expected = baseValue(word_addr);
        if (value != expected) {
            std::ostringstream oss;
            oss << "phys load mismatch @0x" << std::hex << word_addr
                << std::dec << " grant " << grant << " got " << value
                << " want initial " << expected;
            report(oss.str());
        }
        return;
    }

    const auto &hist = it->second;
    Cycle lo = std::min(grant, when);
    // Version i live over [start_i, start_{i+1}]; the end is
    // inclusive because a load and the overwriting store can be
    // serviced on the same cycle in either order. Initial value live
    // over [0, start_0].
    if (hist.front().start >= lo && value == baseValue(word_addr))
        return;
    for (std::size_t i = 0; i < hist.size(); ++i) {
        Cycle start = hist[i].start;
        Cycle end =
            (i + 1 < hist.size()) ? hist[i + 1].start : ~Cycle{0};
        if (start > hi)
            break;
        if (end < lo)
            continue;
        if (hist[i].value == value)
            return; // live in [lo, hi] with matching value
    }
    std::ostringstream oss;
    oss << "phys load mismatch @0x" << std::hex << word_addr << std::dec
        << " window [" << lo << "," << hi << "] got " << value;
    report(oss.str());
}

void
CoherenceChecker::onEpochReset(std::uint32_t new_epoch)
{
    (void)new_epoch; // epochs are carried on each record already
}

} // namespace gtsc::harness
