/**
 * @file
 * Parallel experiment-matrix runner.
 *
 * Every (workload, protocol, consistency, config) cell of a figure
 * or ablation matrix is an independent, bit-reproducible simulation:
 * runOne() builds its own GpuSystem, StatSet, RNGs and checker, and
 * nothing in the simulator mutates shared state. SweepRunner exploits
 * that: it fans RunSpecs out over a work-stealing thread pool and
 * hands the RunResults back in submission order, so a sweep at
 * jobs=N is bit-identical to the serial loop it replaces — only
 * wall-clock changes (see tests/harness/sweep_test.cc).
 */

#ifndef GTSC_HARNESS_SWEEP_HH_
#define GTSC_HARNESS_SWEEP_HH_

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "sim/config.hh"

namespace gtsc::harness
{

/** One cell of an experiment matrix. */
struct RunSpec
{
    sim::Config config;      ///< full per-run configuration
    std::string protocol;    ///< gtsc|tc|nol1|noncoh
    std::string consistency; ///< sc|tso|rc
    std::string workload;    ///< registry name
    std::string label;       ///< progress display ("" = derived)

    std::string displayLabel() const;
};

/**
 * Pluggable result cache consulted by SweepRunner before it
 * simulates a cell. The persistent, content-addressed on-disk store
 * (serve::ResultStore) implements this; the interface lives here so
 * the harness stays free of serving-layer dependencies. Both methods
 * must be thread-safe — workers insert concurrently.
 */
class SweepCache
{
  public:
    virtual ~SweepCache() = default;

    /** Fill *out and return true on a hit (the cell is not run). */
    virtual bool lookup(const RunSpec &spec, RunResult *out) = 0;

    /** Record a freshly simulated result. */
    virtual void insert(const RunSpec &spec,
                        const RunResult &result) = 0;
};

struct SweepOptions
{
    /**
     * Worker threads. 0 resolves through the GTSC_JOBS environment
     * variable, falling back to the hardware thread count. 1 runs
     * the sweep inline on the calling thread.
     */
    unsigned jobs = 0;

    /** Emit "[k/n]" progress lines to `progressStream`. */
    bool progress = false;
    std::FILE *progressStream = stderr;

    /**
     * Optional result cache: cells that hit skip runOne() entirely
     * and are returned bit-identical to a fresh simulation; misses
     * run and are inserted. Not owned; must outlive run().
     */
    SweepCache *cache = nullptr;

    /**
     * Optional streaming callback, invoked once per cell as it
     * completes (cache hits fire before any simulation starts) with
     * the spec index, the result, and whether it came from the
     * cache. Called from worker threads when jobs > 1 — the callee
     * serializes; results are still returned in submission order.
     */
    std::function<void(std::size_t, const RunResult &, bool)> onResult;
};

class SweepRunner
{
  public:
    explicit SweepRunner(SweepOptions opts = {});

    /**
     * Execute every spec (each via runOne on an isolated config and
     * stat set) and return results in submission order, regardless
     * of completion order. A failing run (fatal/panic) rethrows on
     * the caller's thread after the pool drains, lowest index first.
     */
    std::vector<RunResult> run(const std::vector<RunSpec> &specs);

    /** The worker count run() will use (options resolved). */
    unsigned jobs() const { return jobs_; }

    /** GTSC_JOBS environment override, else hardware threads. */
    static unsigned defaultJobs();

  private:
    SweepOptions opts_;
    unsigned jobs_;
};

} // namespace gtsc::harness

#endif // GTSC_HARNESS_SWEEP_HH_
