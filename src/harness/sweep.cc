#include "harness/sweep.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>

#include "gpu/params.hh"
#include "sim/thread_pool.hh"

namespace gtsc::harness
{

std::string
RunSpec::displayLabel() const
{
    if (!label.empty())
        return label;
    return workload + "/" + protocol + "-" + consistency;
}

SweepRunner::SweepRunner(SweepOptions opts) : opts_(opts)
{
    jobs_ = opts_.jobs ? opts_.jobs : defaultJobs();
}

unsigned
SweepRunner::defaultJobs()
{
    if (const char *env = std::getenv("GTSC_JOBS")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v >= 1)
            return static_cast<unsigned>(v);
    }
    return sim::ThreadPool::hardwareWorkers();
}

std::vector<RunResult>
SweepRunner::run(const std::vector<RunSpec> &specs)
{
    std::vector<RunResult> results(specs.size());
    if (specs.empty())
        return results;

    const std::size_t n = specs.size();
    std::atomic<std::size_t> done{0};
    std::mutex progressMutex;

    auto report = [&](const RunSpec &spec) {
        if (!opts_.progress)
            return;
        std::size_t k = done.fetch_add(1) + 1;
        std::lock_guard<std::mutex> lk(progressMutex);
        std::fprintf(opts_.progressStream, "  sweep [%zu/%zu] %-28s\r",
                     k, n, spec.displayLabel().c_str());
        std::fflush(opts_.progressStream);
    };

    // Cache pass: cells already present in the attached SweepCache
    // (the persistent result store) are filled in up front and never
    // reach runOne(); only the misses are fanned out below.
    std::vector<std::size_t> misses;
    misses.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        if (opts_.cache &&
            opts_.cache->lookup(specs[i], &results[i])) {
            if (opts_.onResult)
                opts_.onResult(i, results[i], true);
            report(specs[i]);
        } else {
            misses.push_back(i);
        }
    }
    if (misses.empty())
        return results;

    auto runSpec = [&](std::size_t i) {
        const RunSpec &spec = specs[i];
        results[i] = runOne(spec.config, spec.protocol,
                            spec.consistency, spec.workload);
        if (opts_.cache)
            opts_.cache->insert(spec, results[i]);
        if (opts_.onResult)
            opts_.onResult(i, results[i], false);
    };

    unsigned jobs = static_cast<unsigned>(
        std::min<std::size_t>(jobs_, misses.size()));
    // Intra-run shards multiply each cell's thread use: when the job
    // count was auto-detected (no --jobs, no GTSC_JOBS), divide the
    // outer fan-out by the largest shard count in the plan so outer
    // jobs x inner shards never oversubscribes the machine. An
    // explicit job count is the caller's to compose.
    if (opts_.jobs == 0 && std::getenv("GTSC_JOBS") == nullptr) {
        unsigned max_shards = 1;
        for (const auto &spec : specs) {
            unsigned sms = static_cast<unsigned>(
                spec.config.getUint("gpu.num_sms", 16));
            max_shards = std::max(
                max_shards,
                gpu::GpuParams::resolveShards(spec.config, sms));
        }
        if (max_shards > 1)
            jobs = std::max(1u, jobs / max_shards);
    }
    if (jobs <= 1) {
        for (std::size_t i : misses) {
            runSpec(i);
            report(specs[i]);
        }
        return results;
    }

    // One exception slot per run: workers never throw across the
    // pool; the earliest failing cell rethrows below, matching what
    // the serial loop would have surfaced first.
    std::vector<std::exception_ptr> errors(n);
    {
        sim::ThreadPool pool(jobs);
        for (std::size_t i : misses) {
            pool.submit([&, i] {
                try {
                    runSpec(i);
                } catch (...) {
                    errors[i] = std::current_exception();
                }
                report(specs[i]);
            });
        }
        pool.wait();
    }
    for (std::size_t i = 0; i < n; ++i) {
        if (errors[i])
            std::rethrow_exception(errors[i]);
    }
    return results;
}

} // namespace gtsc::harness
