#include "harness/sweep.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>

#include "gpu/params.hh"
#include "sim/thread_pool.hh"

namespace gtsc::harness
{

std::string
RunSpec::displayLabel() const
{
    if (!label.empty())
        return label;
    return workload + "/" + protocol + "-" + consistency;
}

SweepRunner::SweepRunner(SweepOptions opts) : opts_(opts)
{
    jobs_ = opts_.jobs ? opts_.jobs : defaultJobs();
}

unsigned
SweepRunner::defaultJobs()
{
    if (const char *env = std::getenv("GTSC_JOBS")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v >= 1)
            return static_cast<unsigned>(v);
    }
    return sim::ThreadPool::hardwareWorkers();
}

std::vector<RunResult>
SweepRunner::run(const std::vector<RunSpec> &specs)
{
    std::vector<RunResult> results(specs.size());
    if (specs.empty())
        return results;

    const std::size_t n = specs.size();
    std::atomic<std::size_t> done{0};
    std::mutex progressMutex;

    auto report = [&](const RunSpec &spec) {
        if (!opts_.progress)
            return;
        std::size_t k = done.fetch_add(1) + 1;
        std::lock_guard<std::mutex> lk(progressMutex);
        std::fprintf(opts_.progressStream, "  sweep [%zu/%zu] %-28s\r",
                     k, n, spec.displayLabel().c_str());
        std::fflush(opts_.progressStream);
    };

    auto runSpec = [](const RunSpec &spec) {
        return runOne(spec.config, spec.protocol, spec.consistency,
                      spec.workload);
    };

    unsigned jobs =
        static_cast<unsigned>(std::min<std::size_t>(jobs_, n));
    // Intra-run shards multiply each cell's thread use: when the job
    // count was auto-detected (no --jobs, no GTSC_JOBS), divide the
    // outer fan-out by the largest shard count in the plan so outer
    // jobs x inner shards never oversubscribes the machine. An
    // explicit job count is the caller's to compose.
    if (opts_.jobs == 0 && std::getenv("GTSC_JOBS") == nullptr) {
        unsigned max_shards = 1;
        for (const auto &spec : specs) {
            unsigned sms = static_cast<unsigned>(
                spec.config.getUint("gpu.num_sms", 16));
            max_shards = std::max(
                max_shards,
                gpu::GpuParams::resolveShards(spec.config, sms));
        }
        if (max_shards > 1)
            jobs = std::max(1u, jobs / max_shards);
    }
    if (jobs <= 1) {
        for (std::size_t i = 0; i < n; ++i) {
            results[i] = runSpec(specs[i]);
            report(specs[i]);
        }
        return results;
    }

    // One exception slot per run: workers never throw across the
    // pool; the earliest failing cell rethrows below, matching what
    // the serial loop would have surfaced first.
    std::vector<std::exception_ptr> errors(n);
    {
        sim::ThreadPool pool(jobs);
        for (std::size_t i = 0; i < n; ++i) {
            pool.submit([&, i] {
                try {
                    results[i] = runSpec(specs[i]);
                } catch (...) {
                    errors[i] = std::current_exception();
                }
                report(specs[i]);
            });
        }
        pool.wait();
    }
    for (std::size_t i = 0; i < n; ++i) {
        if (errors[i])
            std::rethrow_exception(errors[i]);
    }
    return results;
}

} // namespace gtsc::harness
