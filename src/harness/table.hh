/**
 * @file
 * Plain-text table formatting for the figure/table harnesses: fixed
 * column widths, a header row, and numeric cells, matching the rows/
 * series the paper's figures report.
 */

#ifndef GTSC_HARNESS_TABLE_HH_
#define GTSC_HARNESS_TABLE_HH_

#include <string>
#include <vector>

namespace gtsc::harness
{

class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Start a row with a label cell. */
    void row(const std::string &label);

    /** Append cells to the current row. */
    void cell(const std::string &text);
    void cell(double value, int precision = 3);
    void cellInt(std::uint64_t value);

    /** Render with aligned columns. */
    std::string toString() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace gtsc::harness

#endif // GTSC_HARNESS_TABLE_HH_
