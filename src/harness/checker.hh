/**
 * @file
 * Runtime coherence checker.
 *
 * Records every globally performed store and validates every load
 * the moment it completes:
 *
 *  - G-TSC (logical time): per word, store write-timestamps must be
 *    strictly increasing within an epoch; a load at effective
 *    timestamp t must return the value of the store with the largest
 *    wts <= t in its epoch (or the carried-over latest value of an
 *    earlier epoch / the kernel's initial value).
 *
 *  - Physical-time protocols (TC, baselines): a load that returns
 *    data the L2 granted at cycle g and completes at cycle c must
 *    return a value whose version interval [performed, next-store)
 *    intersects [g, c] — i.e. the data was current at some point the
 *    protocol allows (TC permits lease-window staleness; reads from
 *    the future are violations).
 */

#ifndef GTSC_HARNESS_CHECKER_HH_
#define GTSC_HARNESS_CHECKER_HH_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/coherence_probe.hh"
#include "mem/main_memory.hh"
#include "sim/types.hh"

namespace gtsc::obs
{
class Transcript;
}

namespace gtsc::harness
{

class CoherenceChecker : public mem::CoherenceProbe
{
  public:
    void onStoreTs(Addr word_addr, std::uint32_t epoch, Ts wts,
                   std::uint32_t value, SmId sm, WarpId warp) override;
    void onLoadTs(Addr word_addr, std::uint32_t epoch, Ts ts,
                  std::uint32_t value, SmId sm, WarpId warp) override;
    void onStorePhys(Addr word_addr, Cycle when, std::uint32_t value,
                     SmId sm, WarpId warp) override;
    void onLoadPhys(Addr word_addr, Cycle grant, Cycle when,
                    std::uint32_t value, SmId sm, WarpId warp) override;
    void onEpochReset(std::uint32_t new_epoch) override;

    /**
     * Attach a protocol transcript (obs.transcript): violation
     * reports then end with the line's recent coherence-message
     * history, pointing straight at the first divergence.
     */
    void setTranscript(const obs::Transcript *transcript)
    {
        transcript_ = transcript;
    }

    /**
     * Kernel boundary: forget run history and re-snapshot base
     * values (host-side initMemory may have rewritten anything).
     */
    void snapshotBase(const mem::MainMemory &memory);

    std::uint64_t violations() const { return violations_; }
    std::uint64_t loadsChecked() const { return loadsChecked_; }
    std::uint64_t storesRecorded() const { return storesRecorded_; }

    /** First few violation descriptions (diagnostics). */
    const std::vector<std::string> &reports() const { return reports_; }

  private:
    struct TsVersion
    {
        std::uint32_t epoch;
        Ts wts;
        std::uint32_t value;
        SmId sm;
        WarpId warp;
    };

    struct PhysVersion
    {
        Cycle start;
        std::uint32_t value;
        SmId sm;
        WarpId warp;
    };

    std::uint32_t baseValue(Addr word_addr) const;
    void report(const std::string &what, Addr word_addr);

    /**
     * With gpu.shards > 1 the load probes fire concurrently from
     * shard threads (stores stay on the coordinator). One lock per
     * probe call keeps the histories consistent; verdicts are
     * order-independent because every check compares against
     * versions that are strictly in the probe's past — stores are
     * recorded a full NoC traversal before any load that could
     * observe them can complete.
     */
    std::mutex mutex_;

    std::unordered_map<Addr, std::vector<TsVersion>> tsHist_;
    std::unordered_map<Addr, std::vector<PhysVersion>> physHist_;
    mem::MainMemory base_;
    const obs::Transcript *transcript_ = nullptr;
    std::uint64_t violations_ = 0;
    std::uint64_t loadsChecked_ = 0;
    std::uint64_t storesRecorded_ = 0;
    std::vector<std::string> reports_;
};

} // namespace gtsc::harness

#endif // GTSC_HARNESS_CHECKER_HH_
