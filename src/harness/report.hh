/**
 * @file
 * Machine-readable result export: CSV rows for RunResults (one line
 * per run, stable column order) so sweeps can feed plotting scripts.
 */

#ifndef GTSC_HARNESS_REPORT_HH_
#define GTSC_HARNESS_REPORT_HH_

#include <string>
#include <vector>

#include "harness/runner.hh"

namespace gtsc::harness
{

/** Column names, comma-separated (no trailing newline). */
std::string csvHeader();

/** One result as a CSV row (no trailing newline). */
std::string csvRow(const RunResult &r);

/** Write header + rows to a file; fatal on I/O errors. */
void writeCsv(const std::string &path,
              const std::vector<RunResult> &results);

/** One result as a flat JSON object (derived metrics only). */
std::string toJson(const RunResult &r);

/** Write a JSON array of results; fatal on I/O errors. */
void writeJson(const std::string &path,
               const std::vector<RunResult> &results);

/** Human-readable one-line summary of a run. */
std::string summaryLine(const RunResult &r);

} // namespace gtsc::harness

#endif // GTSC_HARNESS_REPORT_HH_
