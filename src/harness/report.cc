#include "harness/report.hh"

#include <fstream>
#include <sstream>

#include "sim/log.hh"

namespace gtsc::harness
{

std::string
csvHeader()
{
    return "workload,protocol,consistency,cycles,instructions,"
           "active_cycles,mem_stall_cycles,l1_hits,l1_miss_cold,"
           "l1_miss_expired,renewals_sent,l2_accesses,dram_accesses,"
           "noc_bytes,noc_packets,avg_noc_latency,noc_latency_stddev,"
           "noc_latency_p50,noc_latency_p99,ts_resets,"
           "spin_retries,energy_core_j,energy_l1_j,energy_l2_j,"
           "energy_noc_j,energy_dram_j,energy_total_j,"
           "checker_violations,loads_checked,verified,shards";
}

std::string
csvRow(const RunResult &r)
{
    std::ostringstream oss;
    oss << r.workload << ',' << r.protocol << ',' << r.consistency
        << ',' << r.cycles << ',' << r.instructions << ','
        << r.activeCycles << ',' << r.memStallCycles << ',' << r.l1Hits
        << ',' << r.l1MissCold << ',' << r.l1MissExpired << ','
        << r.renewalsSent << ',' << r.l2Accesses << ','
        << r.dramAccesses << ',' << r.nocBytes << ',' << r.nocPackets
        << ',' << r.avgNocLatency << ',' << r.nocLatencyStddev << ','
        << r.nocLatencyP50 << ',' << r.nocLatencyP99 << ','
        << r.tsResets << ','
        << r.spinRetries << ',' << r.energy.core << ',' << r.energy.l1
        << ',' << r.energy.l2 << ',' << r.energy.noc << ','
        << r.energy.dram << ',' << r.energy.total() << ','
        << r.checkerViolations << ',' << r.loadsChecked << ','
        << (r.verified ? "true" : "false") << ',' << r.shards;
    return oss.str();
}

void
writeCsv(const std::string &path, const std::vector<RunResult> &results)
{
    std::ofstream out(path);
    if (!out)
        GTSC_FATAL("cannot open '", path, "' for writing");
    out << csvHeader() << "\n";
    for (const auto &r : results)
        out << csvRow(r) << "\n";
    if (!out)
        GTSC_FATAL("write to '", path, "' failed");
}

std::string
toJson(const RunResult &r)
{
    std::ostringstream oss;
    oss << "{\"workload\":\"" << r.workload << "\",\"protocol\":\""
        << r.protocol << "\",\"consistency\":\"" << r.consistency
        << "\",\"cycles\":" << r.cycles
        << ",\"instructions\":" << r.instructions
        << ",\"active_cycles\":" << r.activeCycles
        << ",\"mem_stall_cycles\":" << r.memStallCycles
        << ",\"l1_hits\":" << r.l1Hits
        << ",\"l1_miss_cold\":" << r.l1MissCold
        << ",\"l1_miss_expired\":" << r.l1MissExpired
        << ",\"renewals_sent\":" << r.renewalsSent
        << ",\"l2_accesses\":" << r.l2Accesses
        << ",\"dram_accesses\":" << r.dramAccesses
        << ",\"noc_bytes\":" << r.nocBytes
        << ",\"noc_packets\":" << r.nocPackets
        << ",\"avg_noc_latency\":" << r.avgNocLatency
        << ",\"noc_latency_stddev\":" << r.nocLatencyStddev
        << ",\"noc_latency_p50\":" << r.nocLatencyP50
        << ",\"noc_latency_p99\":" << r.nocLatencyP99
        << ",\"ts_resets\":" << r.tsResets
        << ",\"spin_retries\":" << r.spinRetries
        << ",\"energy_total_j\":" << r.energy.total()
        << ",\"checker_violations\":" << r.checkerViolations
        << ",\"loads_checked\":" << r.loadsChecked
        << ",\"verified\":" << (r.verified ? "true" : "false")
        << ",\"shards\":" << r.shards << "}";
    return oss.str();
}

void
writeJson(const std::string &path,
          const std::vector<RunResult> &results)
{
    std::ofstream out(path);
    if (!out)
        GTSC_FATAL("cannot open '", path, "' for writing");
    out << "[\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        out << "  " << toJson(results[i])
            << (i + 1 < results.size() ? ",\n" : "\n");
    }
    out << "]\n";
    if (!out)
        GTSC_FATAL("write to '", path, "' failed");
}

std::string
summaryLine(const RunResult &r)
{
    std::ostringstream oss;
    double probes = static_cast<double>(r.l1Hits + r.l1MissCold +
                                        r.l1MissExpired);
    oss << r.workload << "/" << r.protocol << "/" << r.consistency
        << ": " << r.cycles << " cycles, " << r.instructions
        << " instrs";
    if (probes > 0) {
        oss << ", L1 hit "
            << static_cast<int>(100.0 * r.l1Hits / probes + 0.5) << "%";
    }
    oss << ", " << r.nocBytes / 1024 << " KB NoC, "
        << r.energy.total() * 1e6 << " uJ";
    if (r.nocLatencyP99 > 0) {
        oss << ", NoC lat p50/p99 " << r.nocLatencyP50 << "/"
            << r.nocLatencyP99 << " (sd " << r.nocLatencyStddev << ")";
    }
    if (r.checkerViolations > 0)
        oss << ", " << r.checkerViolations << " VIOLATIONS";
    return oss.str();
}

} // namespace gtsc::harness
