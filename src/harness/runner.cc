#include "harness/runner.hh"

#include <atomic>
#include <cmath>

#include "gpu/gpu_system.hh"
#include "harness/checker.hh"
#include "protocols/builders.hh"
#include "sim/log.hh"
#include "workloads/registry.hh"

namespace gtsc::harness
{

namespace
{
std::atomic<std::uint64_t> gRunOneCalls{0};
} // namespace

std::uint64_t
runOneCallCount()
{
    return gRunOneCalls.load(std::memory_order_relaxed);
}

RunResult
runOne(const sim::Config &base, const std::string &protocol,
       const std::string &consistency, const std::string &workload)
{
    gRunOneCalls.fetch_add(1, std::memory_order_relaxed);
    sim::Config cfg = base;
    cfg.set("gpu.consistency", consistency);

    auto builder = protocols::makeProtocol(protocol);
    auto wl = workloads::makeWorkload(workload, cfg);

    bool check = cfg.getBool("check.enabled", true);
    CoherenceChecker checker;

    gpu::GpuSystem system(cfg, *builder, *wl,
                          check ? &checker : nullptr);
    std::shared_ptr<obs::Session> obs = obs::Session::fromConfig(cfg);
    if (obs) {
        system.attachObs(*obs);
        if (check)
            checker.setTranscript(obs->transcript());
    }
    if (check) {
        system.setKernelStartHook(
            [&checker](const mem::MainMemory &memory, unsigned kernel) {
                (void)kernel;
                checker.snapshotBase(memory);
            });
    }

    RunResult r;
    r.workload = wl->name();
    r.protocol = protocol;
    r.consistency = consistency;
    r.cycles = system.run();

    const sim::StatSet &s = system.stats();
    r.instructions = s.get("sm.instructions");
    r.memStallCycles = s.get("sm.mem_stall_cycles");
    r.activeCycles = s.get("sm.active_cycles");
    r.nocBytes = s.get("noc.req.bytes") + s.get("noc.resp.bytes");
    r.nocPackets = s.get("noc.req.packets") + s.get("noc.resp.packets");
    {
        sim::Distribution d = s.getDistribution("noc.req.latency");
        d.merge(s.getDistribution("noc.resp.latency"));
        r.avgNocLatency = d.mean();
        r.nocLatencyStddev = d.stddev();
        r.nocLatencyP50 = d.p50();
        r.nocLatencyP99 = d.p99();
    }
    r.l1Hits = s.get("l1.hits");
    r.l1MissCold = s.get("l1.miss_cold");
    r.l1MissExpired = s.get("l1.miss_expired");
    r.renewalsSent = s.get("l1.renewals_sent");
    r.l2Accesses = s.get("l2.accesses");
    r.dramAccesses = s.get("dram.reads") + s.get("dram.writes");
    r.tsResets = s.get("gtsc.ts_resets");
    r.spinRetries = s.get("sm.spin_retries");
    r.spinGiveups = s.get("sm.spin_giveups");

    energy::EnergyModel em(cfg);
    r.energy = em.compute(s, protocol, system.params().numSms);

    if (check) {
        r.checkerViolations = checker.violations();
        r.loadsChecked = checker.loadsChecked();
        if (r.checkerViolations > 0) {
            for (const auto &rep : checker.reports())
                GTSC_INFORM("coherence violation [", workload, "/",
                            protocol, "/", consistency, "]: ", rep);
        }
    }
    r.verified = wl->verify(system.memory());
    r.fastForwarded = system.fastForwardedCycles();
    r.shards = system.shards();
    const gpu::GpuSystem::ActivityFractions act = system.activity();
    r.activitySm = act.sm;
    r.activityL1 = act.l1;
    r.activityL2 = act.l2;
    r.activityNoc = act.noc;
    r.activityDram = act.dram;
    r.issueSlotsUsed = system.issueSlotsUsed();
    r.smTicksExecuted = system.smTicksExecuted();
    r.nocTicksExecuted = system.nocTicksExecuted();
    r.stats = system.stats();
    r.obs = obs;
    std::string trace_dir = cfg.getString("obs.trace_dir", "");
    if (obs && !trace_dir.empty()) {
        r.obsFiles = obs->writeFiles(
            trace_dir, obs::fileStem(r.workload, protocol, consistency,
                                     cfg.explicitString()));
    }
    return r;
}

sim::Config
benchConfig()
{
    sim::Config cfg;
    cfg.setInt("gpu.num_sms", 8);
    cfg.setInt("gpu.warps_per_sm", 8);
    cfg.setInt("gpu.num_partitions", 4);
    cfg.setInt("l1.size_bytes", 16 * 1024);
    cfg.setInt("l2.partition_bytes", 128 * 1024);
    cfg.setDouble("wl.scale", 1.0);
    return cfg;
}

sim::Config
paperConfig()
{
    sim::Config cfg;
    cfg.setInt("gpu.num_sms", 16);
    cfg.setInt("gpu.warps_per_sm", 48);
    cfg.setInt("gpu.num_partitions", 8);
    cfg.setInt("l1.size_bytes", 16 * 1024);
    cfg.setInt("l2.partition_bytes", 128 * 1024);
    return cfg;
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs)
        acc += std::log(x);
    return std::exp(acc / static_cast<double>(xs.size()));
}

} // namespace gtsc::harness
