/**
 * @file
 * One-call experiment runner: builds a GPU for a (protocol,
 * consistency, workload) triple, runs it under the coherence
 * checker, and returns the derived metrics every figure needs.
 */

#ifndef GTSC_HARNESS_RUNNER_HH_
#define GTSC_HARNESS_RUNNER_HH_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "energy/energy_model.hh"
#include "obs/session.hh"
#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace gtsc::harness
{

struct RunResult
{
    std::string workload;
    std::string protocol;
    std::string consistency;

    Cycle cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t memStallCycles = 0;
    std::uint64_t activeCycles = 0;

    std::uint64_t nocBytes = 0;
    std::uint64_t nocPackets = 0;
    double avgNocLatency = 0.0;
    double nocLatencyStddev = 0.0;
    double nocLatencyP50 = 0.0;
    double nocLatencyP99 = 0.0;

    std::uint64_t l1Hits = 0;
    std::uint64_t l1MissCold = 0;
    std::uint64_t l1MissExpired = 0;
    std::uint64_t renewalsSent = 0;
    std::uint64_t l2Accesses = 0;
    std::uint64_t dramAccesses = 0;
    std::uint64_t tsResets = 0;
    std::uint64_t spinRetries = 0;
    std::uint64_t spinGiveups = 0;

    energy::EnergyBreakdown energy;

    std::uint64_t checkerViolations = 0;
    std::uint64_t loadsChecked = 0;
    bool verified = false;

    /**
     * Cycles the hybrid main loop skipped instead of ticking (0 when
     * gpu.fast_forward=false). Reported separately from `stats` so
     * stat dumps stay bit-identical with the knob on and off.
     */
    std::uint64_t fastForwarded = 0;

    /**
     * Worker shards the main loop ran with (gpu.shards /
     * GTSC_SHARDS, clamped; 1 = serial loop). Like fastForwarded, a
     * wall-clock knob that never changes `stats`.
     */
    unsigned shards = 1;

    /**
     * Per-component-type active-cycle fractions: ticked
     * component-cycles / (simulated cycles * components of that
     * type). Below 1.0 wherever the active-set scheduler
     * (gpu.active_set) parked components; with the always-tick loops
     * they measure the executed (non-fast-forwarded) share of the
     * run. Diagnostics like fastForwarded — never part of `stats`.
     */
    double activitySm = 0.0;
    double activityL1 = 0.0;
    double activityL2 = 0.0;
    double activityNoc = 0.0;
    double activityDram = 0.0;

    /**
     * Issue-path utilization counters (diagnostics like the activity
     * fractions — never part of `stats`): issue slots the SMs
     * actually filled, the executed SM-ticks that offered them, and
     * the executed NoC ticks across both networks. The single-thread
     * bench derives issue utilization (issueSlotsUsed /
     * smTicksExecuted, per-slot) and NoC pops-per-tick (nocPackets /
     * nocTicksExecuted) from these.
     */
    std::uint64_t issueSlotsUsed = 0;
    std::uint64_t smTicksExecuted = 0;
    std::uint64_t nocTicksExecuted = 0;

    /** Full raw statistics of the run. */
    sim::StatSet stats;

    /**
     * Observability state (obs.trace / obs.sample_interval /
     * obs.transcript); null when every obs knob is off. Shared so
     * RunResult stays copyable for the sweep result cache.
     */
    std::shared_ptr<obs::Session> obs;
    /** Files writeFiles() produced under obs.trace_dir, if any. */
    std::vector<std::string> obsFiles;
};

/**
 * Run one simulation.
 *
 * @param base configuration; "gpu.consistency" is overridden by
 *        `consistency`. Set "check.enabled=false" to skip the
 *        runtime coherence checker (benches do, for speed).
 * @param protocol one of gtsc|tc|nol1|noncoh.
 * @param consistency "sc" or "rc".
 * @param workload registry name.
 */
RunResult runOne(const sim::Config &base, const std::string &protocol,
                 const std::string &consistency,
                 const std::string &workload);

/**
 * Process-wide count of runOne() invocations. The result-store
 * tests and the warm-cache CI job read this around a sweep to prove
 * a warm run performed zero simulations.
 */
std::uint64_t runOneCallCount();

/**
 * Laptop-scale default configuration used by tests and benches:
 * a shrunken version of the paper machine (same structure, fewer
 * warps) so a full experiment matrix runs in seconds.
 */
sim::Config benchConfig();

/** The paper's machine (16 SMs x 48 warps, 8 x 128KB L2). */
sim::Config paperConfig();

/** Geometric mean helper for figure summaries. */
double geomean(const std::vector<double> &xs);

} // namespace gtsc::harness

#endif // GTSC_HARNESS_RUNNER_HH_
