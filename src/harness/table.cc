#include "harness/table.hh"

#include <iomanip>
#include <sstream>

namespace gtsc::harness
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{}

void
Table::row(const std::string &label)
{
    rows_.push_back({label});
}

void
Table::cell(const std::string &text)
{
    rows_.back().push_back(text);
}

void
Table::cell(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    rows_.back().push_back(oss.str());
}

void
Table::cellInt(std::uint64_t value)
{
    rows_.back().push_back(std::to_string(value));
}

std::string
Table::toString() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream oss;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            std::string text = c < cells.size() ? cells[c] : "";
            oss << std::left << std::setw(static_cast<int>(widths[c]) + 2)
                << text;
        }
        oss << "\n";
    };
    emit(headers_);
    std::vector<std::string> rule;
    for (auto w : widths)
        rule.push_back(std::string(w, '-'));
    emit(rule);
    for (const auto &row : rows_)
        emit(row);
    return oss.str();
}

} // namespace gtsc::harness
