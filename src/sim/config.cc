#include "sim/config.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "sim/log.hh"

namespace gtsc::sim
{

void
Config::set(const std::string &key, const std::string &value)
{
    values_[key] = value;
}

void
Config::setInt(const std::string &key, std::int64_t value)
{
    values_[key] = std::to_string(value);
}

void
Config::setDouble(const std::string &key, double value)
{
    std::ostringstream oss;
    oss << value;
    values_[key] = oss.str();
}

void
Config::setBool(const std::string &key, bool value)
{
    values_[key] = value ? "true" : "false";
}

bool
Config::has(const std::string &key) const
{
    return values_.count(key) > 0;
}

std::int64_t
Config::getInt(const std::string &key, std::int64_t default_value) const
{
    auto it = values_.find(key);
    if (it == values_.end()) {
        consulted_[key] = std::to_string(default_value);
        return default_value;
    }
    char *end = nullptr;
    long long v = std::strtoll(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0')
        GTSC_FATAL("config key '", key, "' is not an integer: '",
                   it->second, "'");
    return v;
}

std::uint64_t
Config::getUint(const std::string &key, std::uint64_t default_value) const
{
    auto it = values_.find(key);
    if (it == values_.end()) {
        consulted_[key] = std::to_string(default_value);
        return default_value;
    }
    char *end = nullptr;
    unsigned long long v = std::strtoull(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0')
        GTSC_FATAL("config key '", key, "' is not an unsigned integer: '",
                   it->second, "'");
    return v;
}

double
Config::getDouble(const std::string &key, double default_value) const
{
    auto it = values_.find(key);
    if (it == values_.end()) {
        std::ostringstream oss;
        oss << default_value;
        consulted_[key] = oss.str();
        return default_value;
    }
    char *end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        GTSC_FATAL("config key '", key, "' is not a number: '",
                   it->second, "'");
    return v;
}

bool
Config::getBool(const std::string &key, bool default_value) const
{
    auto it = values_.find(key);
    if (it == values_.end()) {
        consulted_[key] = default_value ? "true" : "false";
        return default_value;
    }
    const std::string &s = it->second;
    if (s == "true" || s == "1" || s == "yes" || s == "on")
        return true;
    if (s == "false" || s == "0" || s == "no" || s == "off")
        return false;
    GTSC_FATAL("config key '", key, "' is not a boolean: '", s, "'");
}

std::string
Config::getString(const std::string &key,
                  const std::string &default_value) const
{
    auto it = values_.find(key);
    if (it == values_.end()) {
        consulted_[key] = default_value;
        return default_value;
    }
    return it->second;
}

bool
Config::parseOverride(const std::string &text)
{
    auto eq = text.find('=');
    if (eq == std::string::npos || eq == 0)
        return false;
    set(text.substr(0, eq), text.substr(eq + 1));
    return true;
}

void
Config::parseOverrides(const std::vector<std::string> &items)
{
    for (const auto &item : items) {
        if (!parseOverride(item))
            GTSC_FATAL("malformed config override '", item,
                       "', expected key=value");
    }
}

void
Config::loadFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        GTSC_FATAL("cannot open config file '", path, "'");
    std::string line;
    unsigned line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        // Strip whitespace (also around '=').
        std::string stripped;
        for (char c : line) {
            if (!std::isspace(static_cast<unsigned char>(c)))
                stripped.push_back(c);
        }
        if (stripped.empty())
            continue;
        if (!parseOverride(stripped))
            GTSC_FATAL("config file ", path, " line ", line_no,
                       ": expected key=value, got '", line, "'");
    }
}

std::map<std::string, std::string>
Config::effective() const
{
    std::map<std::string, std::string> out = consulted_;
    for (const auto &kv : values_)
        out[kv.first] = kv.second;
    return out;
}

std::string
Config::toString() const
{
    std::ostringstream oss;
    for (const auto &kv : effective())
        oss << kv.first << "=" << kv.second << "\n";
    return oss.str();
}

std::string
Config::explicitString() const
{
    std::ostringstream oss;
    for (const auto &kv : values_)
        oss << kv.first << "=" << kv.second << "\n";
    return oss.str();
}

std::string
Config::canonicalValue(const std::string &value)
{
    // Boolean spellings getBool() accepts collapse to "1"/"0" (both
    // of which getBool() also accepts, so the meaning is preserved).
    if (value == "true" || value == "yes" || value == "on")
        return "1";
    if (value == "false" || value == "no" || value == "off")
        return "0";
    // Integer spellings collapse to canonical decimal using the same
    // parse getInt()/getUint() apply (strtoll, base 0): "0x10", "020"
    // and "16" all mean the same knob value to the simulator. A
    // partial parse ("1.5", "2x") or out-of-range value is kept
    // verbatim — normalization must never change what a getter sees.
    if (!value.empty()) {
        errno = 0;
        char *end = nullptr;
        long long v = std::strtoll(value.c_str(), &end, 0);
        if (end != value.c_str() && *end == '\0' && errno != ERANGE)
            return std::to_string(v);
    }
    return value;
}

std::string
Config::canonicalString() const
{
    std::ostringstream oss;
    for (const auto &kv : values_)
        oss << kv.first << "=" << canonicalValue(kv.second) << "\n";
    return oss.str();
}

} // namespace gtsc::sim
