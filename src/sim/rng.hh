/**
 * @file
 * Deterministic, seedable pseudo-random number generator
 * (xoshiro256**). All workload generators draw from this so that a
 * run is exactly reproducible from its seed, independent of the
 * platform's std::mt19937 quirks.
 */

#ifndef GTSC_SIM_RNG_HH_
#define GTSC_SIM_RNG_HH_

#include <cstdint>

namespace gtsc::sim
{

/** xoshiro256** with splitmix64 seeding. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // splitmix64 to fill the state from a single word.
        std::uint64_t x = seed;
        for (auto &w : s_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            w = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free approximation is
        // fine for simulation workloads.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli draw. */
    bool chance(double p) { return uniform() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s_[4];
};

} // namespace gtsc::sim

#endif // GTSC_SIM_RNG_HH_
