/**
 * @file
 * Move-only callable with an inline fast path for small closures.
 *
 * Generalization of PR 1's SmallCallback (event-queue callbacks) to
 * arbitrary signatures, so the per-packet hot paths — NoC delivery,
 * L1 send/loadDone/storeDone — avoid std::function's heap spill and
 * type-erasure overhead. Closures up to kInlineBytes are stored
 * in-place; larger ones fall back to a single heap allocation,
 * matching std::function's behaviour.
 */

#ifndef GTSC_SIM_SMALL_FUNCTION_HH_
#define GTSC_SIM_SMALL_FUNCTION_HH_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace gtsc::sim
{

template <typename Signature> class SmallFunction;

template <typename R, typename... Args>
class SmallFunction<R(Args...)>
{
  public:
    static constexpr std::size_t kInlineBytes = 64;

    SmallFunction() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, SmallFunction>>>
    SmallFunction(F &&fn) // NOLINT: implicit like std::function
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= kInlineBytes &&
                      alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(fn));
            ops_ = &InlineOps<Fn>::ops;
        } else {
            ::new (static_cast<void *>(buf_))
                Fn *(new Fn(std::forward<F>(fn)));
            ops_ = &HeapOps<Fn>::ops;
        }
    }

    SmallFunction(SmallFunction &&o) noexcept : ops_(o.ops_)
    {
        if (ops_)
            ops_->relocate(buf_, o.buf_);
        o.ops_ = nullptr;
    }

    SmallFunction &
    operator=(SmallFunction &&o) noexcept
    {
        if (this != &o) {
            reset();
            ops_ = o.ops_;
            if (ops_)
                ops_->relocate(buf_, o.buf_);
            o.ops_ = nullptr;
        }
        return *this;
    }

    SmallFunction(const SmallFunction &) = delete;
    SmallFunction &operator=(const SmallFunction &) = delete;

    ~SmallFunction() { reset(); }

    R
    operator()(Args... args)
    {
        return ops_->call(buf_, std::forward<Args>(args)...);
    }

    explicit operator bool() const { return ops_ != nullptr; }

    /** True when the closure took the inline (allocation-free) path. */
    bool inlined() const { return ops_ && ops_->inlined; }

  private:
    struct Ops
    {
        R (*call)(void *self, Args &&...args);
        /** Move-construct into dst from src, destroying src. */
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *self);
        bool inlined;
    };

    template <typename Fn>
    struct InlineOps
    {
        static R
        call(void *p, Args &&...args)
        {
            return (*static_cast<Fn *>(p))(std::forward<Args>(args)...);
        }
        static void
        relocate(void *dst, void *src)
        {
            Fn *from = static_cast<Fn *>(src);
            ::new (dst) Fn(std::move(*from));
            from->~Fn();
        }
        static void destroy(void *p) { static_cast<Fn *>(p)->~Fn(); }
        static constexpr Ops ops{&call, &relocate, &destroy, true};
    };

    template <typename Fn>
    struct HeapOps
    {
        static R
        call(void *p, Args &&...args)
        {
            return (**static_cast<Fn **>(p))(
                std::forward<Args>(args)...);
        }
        static void
        relocate(void *dst, void *src)
        {
            *static_cast<Fn **>(dst) = *static_cast<Fn **>(src);
        }
        static void destroy(void *p) { delete *static_cast<Fn **>(p); }
        static constexpr Ops ops{&call, &relocate, &destroy, false};
    };

    void
    reset()
    {
        if (ops_) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
    const Ops *ops_ = nullptr;
};

} // namespace gtsc::sim

#endif // GTSC_SIM_SMALL_FUNCTION_HH_
