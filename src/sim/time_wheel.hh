/**
 * @file
 * TimeWheel — the parking structure behind active-set scheduling.
 *
 * Each member id (a dense component index) is either *armed* at some
 * cycle or *parked* (kCycleNever). arm() merges with min semantics:
 * re-arming an already-armed id at a later cycle is a no-op, so wake
 * sources can fire eagerly without coordinating. popDue(now) returns
 * every id due at or before `now` — ascending, so callers tick due
 * components in the same order the always-tick loop would — and
 * disarms them; a component re-arms itself after its tick from its
 * nextWorkCycle() horizon.
 *
 * Near arms (within `span` cycles of the drain frontier) link into a
 * power-of-two bucket ring indexed by cycle; far arms go to an
 * unsorted overflow list guarded by a cached minimum. Every id holds
 * at most one position (intrusive prev/next arrays, O(1) unlink on an
 * earlier re-arm), and every container is preallocated at reset, so
 * steady-state operation never touches the heap — a zero-alloc
 * invariant the hot loop's other structures already keep. nextWake()
 * is an exact O(n) scan of the slot array — it is only consulted when
 * the main loop considers a jump, never on busy cycles.
 */

#ifndef GTSC_SIM_TIME_WHEEL_HH_
#define GTSC_SIM_TIME_WHEEL_HH_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace gtsc::sim
{

class TimeWheel
{
  public:
    /**
     * @param n    number of member ids (0..n-1), all initially parked.
     * @param span bucket-ring width in cycles; rounded up to a power
     *             of two. Arms further than this from the drain
     *             frontier land in the overflow list.
     */
    explicit TimeWheel(std::size_t n = 0, std::size_t span = 256)
    {
        std::size_t w = 1;
        while (w < span)
            w <<= 1;
        head_.assign(w, kNil);
        mask_ = w - 1;
        reset(n);
    }

    /** Re-park every id and rewind the drain frontier to cycle 0. */
    void reset(std::size_t n)
    {
        slots_.assign(n, kCycleNever);
        loc_.assign(n, kLocNone);
        next_.assign(n, kNil);
        prev_.assign(n, kNil);
        ovPos_.assign(n, 0);
        std::fill(head_.begin(), head_.end(), kNil);
        overflow_.clear();
        overflow_.reserve(n);
        overflowMin_ = kCycleNever;
        base_ = 0;
        armedCount_ = 0;
    }

    std::size_t size() const { return slots_.size(); }
    bool anyArmed() const { return armedCount_ != 0; }
    bool armed(std::uint32_t id) const
    {
        return slots_[id] != kCycleNever;
    }
    Cycle armedAt(std::uint32_t id) const { return slots_[id]; }

    /**
     * Request a wake at `when` (min-merged with any earlier arm).
     * Arms at or before the drain frontier become due at the next
     * popDue() call — waking a component "now" after its phase has
     * passed this cycle naturally defers to the next cycle, exactly
     * when the always-tick loop would next tick it.
     */
    void arm(std::uint32_t id, Cycle when)
    {
        if (when < base_)
            when = base_;
        const Cycle cur = slots_[id];
        if (when >= cur)
            return;
        if (cur == kCycleNever)
            ++armedCount_;
        else
            unlink(id);
        slots_[id] = when;
        if (when - base_ < head_.size()) {
            const std::size_t b = static_cast<std::size_t>(when) & mask_;
            loc_[id] = static_cast<std::uint32_t>(b);
            prev_[id] = kNil;
            next_[id] = head_[b];
            if (head_[b] != kNil)
                prev_[head_[b]] = id;
            head_[b] = id;
        } else {
            loc_[id] = kLocOverflow;
            ovPos_[id] = static_cast<std::uint32_t>(overflow_.size());
            overflow_.push_back(id);
            overflowMin_ = std::min(overflowMin_, when);
        }
    }

    /**
     * Collect every id due at or before `now` into `out` (ascending
     * id), disarm them, and advance the drain frontier to now+1.
     * Cost is O(buckets visited + linked entries); a jump of any
     * length visits each ring bucket at most once, and the overflow
     * list is only walked when its cached minimum is due.
     */
    void popDue(Cycle now, std::vector<std::uint32_t> &out)
    {
        out.clear();
        if (now < base_)
            return;
        if (armedCount_ == 0) {
            base_ = now + 1;
            return;
        }
        if (now - base_ >= head_.size() - 1) {
            // Long jump: every bucket holds at least one drained
            // cycle, so sweep each once keeping only future entries.
            for (std::size_t b = 0; b < head_.size(); ++b)
                drainBucket(b, now, out);
        } else {
            for (Cycle c = base_; c <= now; ++c)
                drainBucket(static_cast<std::size_t>(c) & mask_, now,
                            out);
        }
        base_ = now + 1;
        if (overflowMin_ <= now) {
            // The cached min is conservative (an unlink may leave it
            // stale-low), so this walk can come up empty; either way
            // it re-establishes the exact minimum.
            overflowMin_ = kCycleNever;
            std::size_t i = 0;
            while (i < overflow_.size()) {
                const std::uint32_t id = overflow_[i];
                if (slots_[id] <= now) {
                    removeOverflowAt(i);
                    loc_[id] = kLocNone;
                    slots_[id] = kCycleNever;
                    --armedCount_;
                    out.push_back(id);
                } else {
                    overflowMin_ = std::min(overflowMin_, slots_[id]);
                    ++i;
                }
            }
        }
        std::sort(out.begin(), out.end());
    }

    /**
     * Exact earliest armed cycle (kCycleNever when all parked).
     * Linear in the member count — called only when the main loop
     * weighs a fast-forward jump, not on busy cycles.
     */
    Cycle nextWake() const
    {
        Cycle m = kCycleNever;
        for (const Cycle c : slots_)
            m = std::min(m, c);
        return m;
    }

  private:
    static constexpr std::uint32_t kNil = 0xffffffffu;
    static constexpr std::uint32_t kLocNone = 0xffffffffu;
    static constexpr std::uint32_t kLocOverflow = 0xfffffffeu;

    /** Detach an armed id from whichever container holds it. */
    void unlink(std::uint32_t id)
    {
        const std::uint32_t loc = loc_[id];
        if (loc == kLocNone)
            return;
        if (loc == kLocOverflow) {
            removeOverflowAt(ovPos_[id]);
        } else {
            if (prev_[id] != kNil)
                next_[prev_[id]] = next_[id];
            else
                head_[loc] = next_[id];
            if (next_[id] != kNil)
                prev_[next_[id]] = prev_[id];
        }
        loc_[id] = kLocNone;
    }

    void removeOverflowAt(std::size_t i)
    {
        const std::uint32_t last = overflow_.back();
        overflow_[i] = last;
        ovPos_[last] = static_cast<std::uint32_t>(i);
        overflow_.pop_back();
    }

    /** Pop the ids due by `now` out of one bucket's list; ids of a
     * later wrap generation (when > now) stay linked. */
    void drainBucket(std::size_t b, Cycle now,
                     std::vector<std::uint32_t> &out)
    {
        std::uint32_t id = head_[b];
        while (id != kNil) {
            const std::uint32_t nxt = next_[id];
            if (slots_[id] <= now) {
                if (prev_[id] != kNil)
                    next_[prev_[id]] = next_[id];
                else
                    head_[b] = next_[id];
                if (nxt != kNil)
                    prev_[nxt] = prev_[id];
                loc_[id] = kLocNone;
                slots_[id] = kCycleNever;
                --armedCount_;
                out.push_back(id);
            }
            id = nxt;
        }
    }

    std::vector<Cycle> slots_; ///< armed cycle per id
    /** Bucket index, kLocOverflow, or kLocNone per id. */
    std::vector<std::uint32_t> loc_;
    std::vector<std::uint32_t> next_, prev_; ///< intrusive bucket links
    std::vector<std::uint32_t> head_;        ///< bucket ring heads
    std::vector<std::uint32_t> overflow_;    ///< far-armed ids
    std::vector<std::uint32_t> ovPos_;       ///< id -> overflow_ index
    Cycle overflowMin_ = kCycleNever;
    std::size_t mask_ = 0;
    Cycle base_ = 0; ///< next undrained cycle
    std::size_t armedCount_ = 0;
};

} // namespace gtsc::sim

#endif // GTSC_SIM_TIME_WHEEL_HH_
