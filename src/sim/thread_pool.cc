#include "sim/thread_pool.hh"

namespace gtsc::sim
{

ThreadPool::ThreadPool(unsigned workers)
{
    if (workers == 0)
        workers = 1;
    queues_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        queues_.push_back(std::make_unique<WorkerQueue>());
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(sleepMutex_);
        stop_.store(true);
    }
    workCv_.notify_all();
    for (auto &t : threads_)
        t.join();
}

void
ThreadPool::submit(Task task)
{
    unsigned q = nextQueue_.fetch_add(1, std::memory_order_relaxed) %
                 static_cast<unsigned>(queues_.size());
    {
        std::lock_guard<std::mutex> lk(queues_[q]->mutex);
        queues_[q]->tasks.push_back(std::move(task));
    }
    pending_.fetch_add(1);
    // Publish under the sleep mutex so a worker between its empty
    // poll and its sleep cannot miss the wakeup.
    {
        std::lock_guard<std::mutex> lk(sleepMutex_);
        queued_.fetch_add(1);
    }
    workCv_.notify_one();
}

bool
ThreadPool::tryPop(unsigned self, Task &out)
{
    const unsigned n = static_cast<unsigned>(queues_.size());
    // Own deque first (front: oldest submitted), then steal from the
    // back of the others, starting at the next neighbour.
    for (unsigned k = 0; k < n; ++k) {
        unsigned victim = (self + k) % n;
        WorkerQueue &q = *queues_[victim];
        std::lock_guard<std::mutex> lk(q.mutex);
        if (q.tasks.empty())
            continue;
        if (victim == self) {
            out = std::move(q.tasks.front());
            q.tasks.pop_front();
        } else {
            out = std::move(q.tasks.back());
            q.tasks.pop_back();
        }
        queued_.fetch_sub(1);
        return true;
    }
    return false;
}

void
ThreadPool::workerLoop(unsigned self)
{
    for (;;) {
        Task task;
        if (tryPop(self, task)) {
            task();
            if (pending_.fetch_sub(1) == 1) {
                std::lock_guard<std::mutex> lk(sleepMutex_);
                doneCv_.notify_all();
            }
            continue;
        }
        std::unique_lock<std::mutex> lk(sleepMutex_);
        workCv_.wait(lk, [this] {
            return stop_.load() || queued_.load() > 0;
        });
        if (stop_.load() && queued_.load() == 0)
            return;
    }
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lk(sleepMutex_);
    doneCv_.wait(lk, [this] { return pending_.load() == 0; });
}

unsigned
ThreadPool::hardwareWorkers()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

} // namespace gtsc::sim
