/**
 * @file
 * A deterministic discrete-event queue.
 *
 * Most of the simulator is cycle-driven (components are ticked every
 * cycle), but latency-shaped completions (DRAM service, timed
 * callbacks in tests) use this queue. Events scheduled for the same
 * cycle fire in insertion order, which keeps runs bit-reproducible.
 */

#ifndef GTSC_SIM_EVENT_QUEUE_HH_
#define GTSC_SIM_EVENT_QUEUE_HH_

#include <cstddef>
#include <cstdint>
#include <new>
#include <queue>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace gtsc::sim
{

/**
 * Move-only callable with an inline fast path for small closures.
 *
 * Protocol completions capture `this` plus a handful of words;
 * std::function's tiny internal buffer spills most of them to the
 * heap, and the allocator showed up in the event-scheduling
 * microbench (bench/micro_protocol_ops.cc). Closures up to
 * kInlineBytes are stored in-place; larger ones (e.g. DRAM fills
 * that capture a whole line) fall back to a single heap allocation,
 * matching std::function's behaviour.
 */
class SmallCallback
{
  public:
    static constexpr std::size_t kInlineBytes = 64;

    SmallCallback() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, SmallCallback>>>
    SmallCallback(F &&fn) // NOLINT: implicit like std::function
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= kInlineBytes &&
                      alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(fn));
            ops_ = &InlineOps<Fn>::ops;
        } else {
            ::new (static_cast<void *>(buf_))
                Fn *(new Fn(std::forward<F>(fn)));
            ops_ = &HeapOps<Fn>::ops;
        }
    }

    SmallCallback(SmallCallback &&o) noexcept : ops_(o.ops_)
    {
        if (ops_)
            ops_->relocate(buf_, o.buf_);
        o.ops_ = nullptr;
    }

    SmallCallback &
    operator=(SmallCallback &&o) noexcept
    {
        if (this != &o) {
            reset();
            ops_ = o.ops_;
            if (ops_)
                ops_->relocate(buf_, o.buf_);
            o.ops_ = nullptr;
        }
        return *this;
    }

    SmallCallback(const SmallCallback &) = delete;
    SmallCallback &operator=(const SmallCallback &) = delete;

    ~SmallCallback() { reset(); }

    void operator()() { ops_->call(buf_); }

    explicit operator bool() const { return ops_ != nullptr; }

    /** True when the closure took the inline (allocation-free) path. */
    bool inlined() const { return ops_ && ops_->inlined; }

  private:
    struct Ops
    {
        void (*call)(void *self);
        /** Move-construct into dst from src, destroying src. */
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *self);
        bool inlined;
    };

    template <typename Fn>
    struct InlineOps
    {
        static void call(void *p) { (*static_cast<Fn *>(p))(); }
        static void
        relocate(void *dst, void *src)
        {
            Fn *from = static_cast<Fn *>(src);
            ::new (dst) Fn(std::move(*from));
            from->~Fn();
        }
        static void destroy(void *p) { static_cast<Fn *>(p)->~Fn(); }
        static constexpr Ops ops{&call, &relocate, &destroy, true};
    };

    template <typename Fn>
    struct HeapOps
    {
        static void call(void *p) { (**static_cast<Fn **>(p))(); }
        static void
        relocate(void *dst, void *src)
        {
            *static_cast<Fn **>(dst) = *static_cast<Fn **>(src);
        }
        static void destroy(void *p) { delete *static_cast<Fn **>(p); }
        static constexpr Ops ops{&call, &relocate, &destroy, false};
    };

    void
    reset()
    {
        if (ops_) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
    const Ops *ops_ = nullptr;
};

/** Min-heap of (cycle, sequence, callback). */
class EventQueue
{
  public:
    using Callback = SmallCallback;

    /** Schedule cb to run at the given absolute cycle. */
    void
    schedule(Cycle when, Callback cb)
    {
        heap_.push(Event{when, nextSeq_++, std::move(cb)});
    }

    /** True when no events remain. */
    bool empty() const { return heap_.empty(); }

    /** Cycle of the earliest pending event; kCycleNever when empty. */
    Cycle
    nextEventCycle() const
    {
        return heap_.empty() ? kCycleNever : heap_.top().when;
    }

    /**
     * The cycle most recently passed to runUntil(). Callbacks that
     * need "now" (e.g. to schedule follow-up work) read this.
     */
    Cycle now() const { return now_; }

    /**
     * Run every event scheduled at or before `now`, in time order
     * (ties broken by scheduling order). Events may schedule further
     * events, including for the current cycle.
     */
    void
    runUntil(Cycle now)
    {
        now_ = now;
        while (!heap_.empty() && heap_.top().when <= now) {
            // Move out before pop so the callback can re-schedule.
            Callback cb = std::move(
                const_cast<Event &>(heap_.top()).cb);
            heap_.pop();
            cb();
        }
    }

    std::size_t size() const { return heap_.size(); }

  private:
    struct Event
    {
        Cycle when;
        std::uint64_t seq;
        Callback cb;

        bool
        operator>(const Event &o) const
        {
            if (when != o.when)
                return when > o.when;
            return seq > o.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
    std::uint64_t nextSeq_ = 0;
    Cycle now_ = 0;
};

} // namespace gtsc::sim

#endif // GTSC_SIM_EVENT_QUEUE_HH_
