/**
 * @file
 * A deterministic discrete-event queue.
 *
 * Most of the simulator is cycle-driven (components are ticked every
 * cycle), but latency-shaped completions (DRAM service, timed
 * callbacks in tests) use this queue. Events scheduled for the same
 * cycle fire in insertion order, which keeps runs bit-reproducible.
 */

#ifndef GTSC_SIM_EVENT_QUEUE_HH_
#define GTSC_SIM_EVENT_QUEUE_HH_

#include <cstddef>
#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

#include "sim/small_function.hh"
#include "sim/types.hh"

namespace gtsc::sim
{

/**
 * Move-only callable with an inline fast path for small closures.
 *
 * Protocol completions capture `this` plus a handful of words;
 * std::function's tiny internal buffer spills most of them to the
 * heap, and the allocator showed up in the event-scheduling
 * microbench (bench/micro_protocol_ops.cc). Now an alias for the
 * generalized SmallFunction (sim/small_function.hh), which the NoC
 * and cache-controller callbacks use with their own signatures.
 */
using SmallCallback = SmallFunction<void()>;

/** Min-heap of (cycle, sequence, callback). */
class EventQueue
{
  public:
    using Callback = SmallCallback;

    /** Schedule cb to run at the given absolute cycle. */
    void
    schedule(Cycle when, Callback cb)
    {
        heap_.push(Event{when, nextSeq_++, std::move(cb)});
    }

    /** True when no events remain. */
    bool empty() const { return heap_.empty(); }

    /** Cycle of the earliest pending event; kCycleNever when empty. */
    Cycle
    nextEventCycle() const
    {
        return heap_.empty() ? kCycleNever : heap_.top().when;
    }

    /**
     * The cycle most recently passed to runUntil(). Callbacks that
     * need "now" (e.g. to schedule follow-up work) read this.
     */
    Cycle now() const { return now_; }

    /**
     * Run every event scheduled at or before `now`, in time order
     * (ties broken by scheduling order). Events may schedule further
     * events, including for the current cycle.
     */
    void
    runUntil(Cycle now)
    {
        now_ = now;
        while (!heap_.empty() && heap_.top().when <= now) {
            // Move out before pop so the callback can re-schedule.
            Callback cb = std::move(
                const_cast<Event &>(heap_.top()).cb);
            heap_.pop();
            cb();
        }
    }

    std::size_t size() const { return heap_.size(); }

  private:
    struct Event
    {
        Cycle when;
        std::uint64_t seq;
        Callback cb;

        bool
        operator>(const Event &o) const
        {
            if (when != o.when)
                return when > o.when;
            return seq > o.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
    std::uint64_t nextSeq_ = 0;
    Cycle now_ = 0;
};

} // namespace gtsc::sim

#endif // GTSC_SIM_EVENT_QUEUE_HH_
