#include "sim/stats.hh"

#include <sstream>

namespace gtsc::sim
{

std::uint64_t &
StatSet::counter(const std::string &name)
{
    return counters_[name];
}

Distribution &
StatSet::distribution(const std::string &name)
{
    return dists_[name];
}

std::uint64_t
StatSet::get(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

const Distribution &
StatSet::getDistribution(const std::string &name) const
{
    static const Distribution kEmpty;
    auto it = dists_.find(name);
    return it == dists_.end() ? kEmpty : it->second;
}

std::uint64_t
StatSet::sumPrefix(const std::string &prefix) const
{
    std::uint64_t total = 0;
    for (auto it = counters_.lower_bound(prefix);
         it != counters_.end() && it->first.rfind(prefix, 0) == 0; ++it) {
        total += it->second;
    }
    return total;
}

void
StatSet::merge(const StatSet &other)
{
    for (const auto &kv : other.counters_)
        counters_[kv.first] += kv.second;
    for (const auto &kv : other.dists_)
        dists_[kv.first].merge(kv.second);
}

std::string
StatSet::toString() const
{
    std::ostringstream oss;
    for (const auto &kv : counters_)
        oss << kv.first << " " << kv.second << "\n";
    for (const auto &kv : dists_) {
        oss << kv.first << ".mean " << kv.second.mean() << "\n";
        oss << kv.first << ".max " << kv.second.max() << "\n";
        oss << kv.first << ".count " << kv.second.count() << "\n";
    }
    return oss.str();
}

void
StatSet::clear()
{
    counters_.clear();
    dists_.clear();
}

} // namespace gtsc::sim
