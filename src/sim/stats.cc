#include "sim/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "sim/log.hh"

namespace gtsc::sim
{

void
Distribution::reservoirPush(double v)
{
    // One-time full reservation: the reservoir never reallocates
    // afterwards (compaction halves in place), keeping sample() off
    // the allocator in steady state.
    if (reservoir_.capacity() < kReservoirCapacity)
        reservoir_.reserve(kReservoirCapacity);
    if (reservoir_.size() >= kReservoirCapacity) {
        // Compact: keep every other retained sample (the ones whose
        // original index is an even multiple of the old stride) and
        // double the stride.
        std::size_t keep = 0;
        for (std::size_t i = 0; i < reservoir_.size(); i += 2)
            reservoir_[keep++] = reservoir_[i];
        reservoir_.resize(keep);
        strideMask_ = strideMask_ * 2 + 1;
        // The current sample survives only if it is still on-stride.
        if (((count_ - 1) & strideMask_) != 0)
            return;
    }
    reservoir_.push_back(v);
}

double
Distribution::stddev() const
{
    if (count_ < 2)
        return 0.0;
    double n = static_cast<double>(count_);
    double var = sumSq_ / n - (sum_ / n) * (sum_ / n);
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

double
Distribution::percentile(double p) const
{
    if (reservoir_.empty())
        return 0.0;
    std::vector<double> sorted(reservoir_);
    std::sort(sorted.begin(), sorted.end());
    if (p <= 0.0)
        return sorted.front();
    if (p >= 1.0)
        return sorted.back();
    auto idx = static_cast<std::size_t>(
        p * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[idx];
}

void
Distribution::merge(const Distribution &o)
{
    if (o.count_ == 0)
        return;
    if (count_ == 0 || o.min_ < min_)
        min_ = o.min_;
    if (o.max_ > max_)
        max_ = o.max_;
    count_ += o.count_;
    sum_ += o.sum_;
    sumSq_ += o.sumSq_;
    // Concatenate the reservoirs, then re-thin deterministically
    // until the merged set fits. The result is still a systematic
    // subsample of the union, which is all percentiles need.
    reservoir_.insert(reservoir_.end(), o.reservoir_.begin(),
                      o.reservoir_.end());
    strideMask_ = std::max(strideMask_, o.strideMask_);
    while (reservoir_.size() > kReservoirCapacity) {
        std::size_t keep = 0;
        for (std::size_t i = 0; i < reservoir_.size(); i += 2)
            reservoir_[keep++] = reservoir_[i];
        reservoir_.resize(keep);
        strideMask_ = strideMask_ * 2 + 1;
    }
}

Distribution
Distribution::restore(std::uint64_t count, double sum, double sum_sq,
                      double max, double min,
                      std::uint64_t stride_mask,
                      std::vector<double> reservoir)
{
    Distribution d;
    d.count_ = count;
    d.sum_ = sum;
    d.sumSq_ = sum_sq;
    d.max_ = max;
    d.min_ = min;
    d.strideMask_ = stride_mask;
    d.reservoir_ = std::move(reservoir);
    return d;
}

std::uint64_t &
StatSet::counter(const std::string &name)
{
    return counters_[name];
}

Distribution &
StatSet::distribution(const std::string &name)
{
    return dists_[name];
}

std::uint64_t
StatSet::get(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

const Distribution &
StatSet::getDistribution(const std::string &name) const
{
    static const Distribution kEmpty;
    auto it = dists_.find(name);
    return it == dists_.end() ? kEmpty : it->second;
}

std::uint64_t
StatSet::sumPrefix(const std::string &prefix) const
{
    // The matching keys form a contiguous range in the sorted map:
    // [lower_bound(prefix), lower_bound(successor)) where the
    // successor is the prefix with its last non-0xff byte
    // incremented (trailing 0xff bytes dropped — such a prefix has
    // no upper bound and the range runs to end()). Bounding the
    // range up front replaces the per-element starts-with compare
    // with two O(log n) lookups.
    auto first = counters_.lower_bound(prefix);
    auto last = counters_.end();
    std::string succ = prefix;
    while (!succ.empty() &&
           static_cast<unsigned char>(succ.back()) == 0xff)
        succ.pop_back();
    if (!succ.empty()) {
        succ.back() =
            static_cast<char>(static_cast<unsigned char>(succ.back()) +
                              1);
        last = counters_.lower_bound(succ);
    }
    std::uint64_t total = 0;
    for (auto it = first; it != last; ++it)
        total += it->second;
    return total;
}

void
StatSet::merge(const StatSet &other)
{
    for (const auto &kv : other.counters_)
        counters_[kv.first] += kv.second;
    for (const auto &kv : other.dists_)
        dists_[kv.first].merge(kv.second);
}

void
StatSet::drainCountersInto(StatSet &dst)
{
    GTSC_ASSERT(dists_.empty(),
                "drainCountersInto on a StatSet with distributions");
    for (auto &kv : counters_) {
        dst.counters_[kv.first] += kv.second;
        kv.second = 0;
    }
}

std::string
StatSet::toString() const
{
    std::ostringstream oss;
    for (const auto &kv : counters_)
        oss << kv.first << " " << kv.second << "\n";
    for (const auto &kv : dists_) {
        oss << kv.first << ".mean " << kv.second.mean() << "\n";
        oss << kv.first << ".max " << kv.second.max() << "\n";
        oss << kv.first << ".count " << kv.second.count() << "\n";
    }
    return oss.str();
}

void
StatSet::clear()
{
    counters_.clear();
    dists_.clear();
}

} // namespace gtsc::sim
