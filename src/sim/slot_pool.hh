/**
 * @file
 * Slot pool + pooled keyed table: the zero-alloc steady-state
 * building blocks of the hot path.
 *
 * SlotPool hands out stable indices into a deque-backed arena with a
 * freelist. It exists to shrink SmallFunction event captures: instead
 * of capturing a fat Access/Packet/AccessResult by value (which
 * overflows the 64-byte inline buffer and heap-allocates a closure
 * per event), hot components park the payload in a pool slot and
 * capture only [this, slot] — 16 bytes, always inlined.
 *
 * The deque backing is load-bearing: callbacks that reference a slot
 * may reenter the owning component and acquire more slots (e.g. a
 * load completion that immediately issues the next access), growing
 * the pool mid-call. A vector would invalidate the outstanding
 * reference on reallocation; deque growth never moves existing
 * elements. Callers must release a slot only AFTER they are done
 * with its contents, which also guarantees the slot cannot be
 * recycled out from under a running callback.
 *
 * PooledKeyMap layers packed linear-scan keys over a SlotPool for
 * the L2 miss tables: entries carry waiter vectors whose capacity
 * must survive erase/re-insert cycles, so erase only returns the
 * slot to the freelist — the value object (and its heap buffers)
 * persists for the next emplace to reuse. emplace() therefore hands
 * back a *stale* value; callers reset the fields they use.
 */

#ifndef GTSC_SIM_SLOT_POOL_HH_
#define GTSC_SIM_SLOT_POOL_HH_

#include <cstdint>
#include <cstddef>
#include <deque>
#include <vector>

namespace gtsc::sim
{

template <typename T>
class SlotPool
{
  public:
    /** Acquire a slot index; the slot's previous contents persist. */
    std::uint32_t
    acquire()
    {
        if (free_.empty()) {
            slots_.emplace_back();
            return static_cast<std::uint32_t>(slots_.size() - 1);
        }
        std::uint32_t idx = free_.back();
        free_.pop_back();
        return idx;
    }

    T &operator[](std::uint32_t idx) { return slots_[idx]; }
    const T &operator[](std::uint32_t idx) const { return slots_[idx]; }

    /** Return a slot to the freelist. Only call once the slot's
     *  contents are no longer referenced. */
    void release(std::uint32_t idx) { free_.push_back(idx); }

    std::size_t allocated() const { return slots_.size(); }
    std::size_t live() const { return slots_.size() - free_.size(); }

  private:
    std::deque<T> slots_;
    std::vector<std::uint32_t> free_;
};

/** Packed-key table over pooled values; see file comment. */
template <typename K, typename V>
class PooledKeyMap
{
  public:
    bool empty() const { return keys_.empty(); }
    std::size_t size() const { return keys_.size(); }

    V *
    find(const K &key)
    {
        for (std::size_t i = 0; i < keys_.size(); ++i) {
            if (keys_[i] == key)
                return &pool_[slotOf_[i]];
        }
        return nullptr;
    }

    /**
     * Insert a key (must not be present) and return its pooled
     * value. The value's state is whatever the last user of the
     * recycled slot left behind — reset before use.
     */
    V &
    emplace(const K &key)
    {
        std::uint32_t slot = pool_.acquire();
        keys_.push_back(key);
        slotOf_.push_back(slot);
        return pool_[slot];
    }

    /** Swap-pop the key; its slot returns to the pool with its
     *  value (and any held capacity) intact. */
    void
    erase(const K &key)
    {
        for (std::size_t i = 0; i < keys_.size(); ++i) {
            if (keys_[i] == key) {
                pool_.release(slotOf_[i]);
                keys_[i] = keys_.back();
                keys_.pop_back();
                slotOf_[i] = slotOf_.back();
                slotOf_.pop_back();
                return;
            }
        }
    }

    void
    clear()
    {
        for (std::uint32_t slot : slotOf_)
            pool_.release(slot);
        keys_.clear();
        slotOf_.clear();
    }

  private:
    std::vector<K> keys_;
    std::vector<std::uint32_t> slotOf_;
    SlotPool<V> pool_;
};

} // namespace gtsc::sim

#endif // GTSC_SIM_SLOT_POOL_HH_
