#include "sim/log.hh"

#include <stdexcept>

namespace gtsc::sim
{

namespace
{
int gLogLevel = 0;
} // namespace

int
logLevel()
{
    return gLogLevel;
}

void
setLogLevel(int level)
{
    gLogLevel = level;
}

namespace detail
{

void
failImpl(const char *kind, const char *file, int line,
         const std::string &msg)
{
    std::ostringstream oss;
    oss << kind << ": " << msg << " [" << file << ":" << line << "]";
    // Throwing (rather than abort()) lets unit tests assert that
    // invalid inputs are rejected.
    throw std::runtime_error(oss.str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
debugImpl(const std::string &msg)
{
    std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

} // namespace detail

} // namespace gtsc::sim
