/**
 * @file
 * Small open-addressing-free flat map: parallel key/value vectors
 * with linear-scan lookup.
 *
 * The simulator's per-SM bookkeeping tables (pending stores,
 * store-by-line indices) hold at most a few dozen entries — bounded
 * by warps x outstanding accesses — so a packed linear scan beats
 * std::unordered_map's hash + bucket chase and, critically, never
 * allocates in steady state: erase is swap-with-last, so the vectors
 * only grow to the high-water mark once.
 *
 * Values must tolerate swap-pop erasure (flat PODs do). Iteration
 * order is unspecified; callers that need deterministic order must
 * not iterate (all current users either look up by key or fold
 * order-independently).
 */

#ifndef GTSC_SIM_FLAT_MAP_HH_
#define GTSC_SIM_FLAT_MAP_HH_

#include <cstddef>
#include <utility>
#include <vector>

namespace gtsc::sim
{

template <typename K, typename V>
class SmallFlatMap
{
  public:
    bool empty() const { return keys_.empty(); }
    std::size_t size() const { return keys_.size(); }

    V *
    find(const K &key)
    {
        for (std::size_t i = 0; i < keys_.size(); ++i) {
            if (keys_[i] == key)
                return &vals_[i];
        }
        return nullptr;
    }

    const V *
    find(const K &key) const
    {
        for (std::size_t i = 0; i < keys_.size(); ++i) {
            if (keys_[i] == key)
                return &vals_[i];
        }
        return nullptr;
    }

    bool contains(const K &key) const { return find(key) != nullptr; }

    /** Find-or-insert (value-initialized on insert). */
    V &
    operator[](const K &key)
    {
        if (V *v = find(key))
            return *v;
        keys_.push_back(key);
        vals_.emplace_back();
        return vals_.back();
    }

    /** Swap-pop erase; returns true if the key was present. */
    bool
    erase(const K &key)
    {
        for (std::size_t i = 0; i < keys_.size(); ++i) {
            if (keys_[i] == key) {
                keys_[i] = keys_.back();
                keys_.pop_back();
                if (i != vals_.size() - 1)
                    vals_[i] = std::move(vals_.back());
                vals_.pop_back();
                return true;
            }
        }
        return false;
    }

    void
    clear()
    {
        keys_.clear();
        vals_.clear();
    }

    /** Order-independent visitation: f(key, value). */
    template <typename F>
    void
    forEach(F &&f) const
    {
        for (std::size_t i = 0; i < keys_.size(); ++i)
            f(keys_[i], vals_[i]);
    }

  private:
    std::vector<K> keys_;
    std::vector<V> vals_;
};

} // namespace gtsc::sim

#endif // GTSC_SIM_FLAT_MAP_HH_
