/**
 * @file
 * BitMask — packed uint64_t membership masks for the hot-path fast
 * lanes (one word per 64 members).
 *
 * The SM's warp scheduler keeps one BitMask per warp state and the
 * crossbar one for its pending ejection ports, so the per-cycle
 * passes that used to walk byte-per-element state arrays become word
 * loads: wake passes iterate only set bits, pickers are rotate+ctz,
 * and classification counts are popcounts. The masks are *derived*
 * state — the byte arrays stay authoritative for cold queries — and
 * every transition point updates both (the mask↔vector equivalence
 * invariant, DESIGN.md §11).
 *
 * Sized once at construction (resize allocates); every operation
 * after that is heap-free, preserving the zero-alloc steady state.
 * All scans are word-granular, so the common configurations (≤ 64
 * warps per SM, ≤ 64 NoC ports) run entirely on one register.
 */

#ifndef GTSC_SIM_BITMASK_HH_
#define GTSC_SIM_BITMASK_HH_

#include <bit>
#include <cstdint>
#include <vector>

namespace gtsc::sim
{

class BitMask
{
  public:
    static constexpr unsigned kNpos = 0xffffffffu;

    BitMask() = default;

    /** Size to `n` members, all clear. Allocates; call at setup. */
    void
    resize(unsigned n)
    {
        n_ = n;
        words_.assign((n + 63u) / 64u, 0);
    }

    void
    clearAll()
    {
        for (std::uint64_t &w : words_)
            w = 0;
    }

    void set(unsigned i) { words_[i >> 6] |= bit(i); }
    void clear(unsigned i) { words_[i >> 6] &= ~bit(i); }
    bool test(unsigned i) const { return (words_[i >> 6] & bit(i)) != 0; }

    bool
    any() const
    {
        for (std::uint64_t w : words_)
            if (w)
                return true;
        return false;
    }

    unsigned
    count() const
    {
        unsigned c = 0;
        for (std::uint64_t w : words_)
            c += static_cast<unsigned>(std::popcount(w));
        return c;
    }

    unsigned size() const { return n_; }
    unsigned numWords() const { return static_cast<unsigned>(words_.size()); }
    std::uint64_t word(unsigned k) const { return words_[k]; }

    /** Lowest set member, kNpos when empty (the "oldest" picker). */
    unsigned
    findFirst() const
    {
        for (unsigned k = 0; k < words_.size(); ++k) {
            if (words_[k])
                return k * 64u +
                       static_cast<unsigned>(std::countr_zero(words_[k]));
        }
        return kNpos;
    }

    /**
     * First set member at or after `start`, wrapping past the end
     * (the round-robin picker: pass lastIssued+1). kNpos when empty.
     */
    unsigned
    findNextWrap(unsigned start) const
    {
        if (words_.empty())
            return kNpos;
        if (start >= n_)
            start = 0;
        unsigned k = start >> 6;
        std::uint64_t w = words_[k] & (~std::uint64_t{0} << (start & 63u));
        const unsigned nw = numWords();
        for (unsigned step = 0; step <= nw; ++step) {
            if (w)
                return k * 64u +
                       static_cast<unsigned>(std::countr_zero(w));
            k = (k + 1 == nw) ? 0 : k + 1;
            w = words_[k];
        }
        return kNpos;
    }

    /** Visit set members in ascending order. The callback may clear
     *  bits of members at or before the one being visited (each
     *  word is snapshotted before its inner scan). */
    template <typename F>
    void
    forEachSet(F &&f) const
    {
        for (unsigned k = 0; k < words_.size(); ++k) {
            std::uint64_t w = words_[k];
            while (w) {
                unsigned i = k * 64u +
                             static_cast<unsigned>(std::countr_zero(w));
                w &= w - 1;
                f(i);
            }
        }
    }

  private:
    static std::uint64_t bit(unsigned i) { return std::uint64_t{1} << (i & 63u); }

    std::vector<std::uint64_t> words_;
    unsigned n_ = 0;
};

/** Lowest member set in `a | b`, kNpos when both empty (the issue
 *  pickers scan ready|retry without materializing the union). */
inline unsigned
findFirstOr(const BitMask &a, const BitMask &b)
{
    const unsigned nw = a.numWords();
    for (unsigned k = 0; k < nw; ++k) {
        const std::uint64_t w = a.word(k) | b.word(k);
        if (w)
            return k * 64u + static_cast<unsigned>(std::countr_zero(w));
    }
    return BitMask::kNpos;
}

/** Visit members set in `a | b` in ascending order (the merged
 *  wake pass). Words are snapshotted before their inner scan, so
 *  the callback may clear bits of the visited member in either
 *  mask. */
template <typename F>
inline void
forEachSetOr(const BitMask &a, const BitMask &b, F &&f)
{
    const unsigned nw = a.numWords();
    for (unsigned k = 0; k < nw; ++k) {
        std::uint64_t w = a.word(k) | b.word(k);
        while (w) {
            unsigned i =
                k * 64u + static_cast<unsigned>(std::countr_zero(w));
            w &= w - 1;
            f(i);
        }
    }
}

/** findNextWrap over `a | b` (round-robin over the union). */
inline unsigned
findNextWrapOr(const BitMask &a, const BitMask &b, unsigned start)
{
    const unsigned nw = a.numWords();
    if (nw == 0)
        return BitMask::kNpos;
    if (start >= a.size())
        start = 0;
    unsigned k = start >> 6;
    std::uint64_t w =
        (a.word(k) | b.word(k)) & (~std::uint64_t{0} << (start & 63u));
    for (unsigned step = 0; step <= nw; ++step) {
        if (w)
            return k * 64u + static_cast<unsigned>(std::countr_zero(w));
        k = (k + 1 == nw) ? 0 : k + 1;
        w = a.word(k) | b.word(k);
    }
    return BitMask::kNpos;
}

} // namespace gtsc::sim

#endif // GTSC_SIM_BITMASK_HH_
