/**
 * @file
 * Fundamental scalar types shared by every gtsc module.
 */

#ifndef GTSC_SIM_TYPES_HH_
#define GTSC_SIM_TYPES_HH_

#include <cstdint>

namespace gtsc
{

/** Byte address in the simulated global memory space. */
using Addr = std::uint64_t;

/** Simulated clock cycle count. */
using Cycle = std::uint64_t;

/**
 * Logical timestamp (G-TSC). Stored wide; the protocol enforces the
 * configured bit width (Section V-D of the paper uses 16 bits) and
 * triggers the overflow/reset protocol when the width is exceeded.
 */
using Ts = std::uint64_t;

/** Identifier types. Values are dense small integers. */
using SmId = std::uint16_t;
using WarpId = std::uint16_t;
using PartitionId = std::uint16_t;

/** A cycle value that means "never" / "not scheduled". */
inline constexpr Cycle kCycleNever = ~Cycle{0};

} // namespace gtsc

#endif // GTSC_SIM_TYPES_HH_
