/**
 * @file
 * Statistics registry: named counters, scalars and histograms that
 * components register into a shared StatSet and the harness reads out
 * after a run. Loosely modeled on gem5's stats package, heavily
 * simplified.
 */

#ifndef GTSC_SIM_STATS_HH_
#define GTSC_SIM_STATS_HH_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/log.hh"

namespace gtsc::sim
{

/**
 * Streaming tracker for latency-style samples: mean/max/min/stddev
 * plus a fixed-size reservoir for percentile estimates.
 *
 * The reservoir is a deterministic systematic subsample: every
 * 2^k-th sample is kept, and when the fixed buffer fills, every
 * other retained sample is dropped and the stride doubles. No RNG,
 * so runs (and the fast-forward equivalence tests) stay
 * bit-reproducible.
 */
class Distribution
{
  public:
    /** Retained samples for percentile estimation. */
    static constexpr std::size_t kReservoirCapacity = 512;

    void
    sample(double v)
    {
        count_++;
        sum_ += v;
        sumSq_ += v * v;
        if (v > max_)
            max_ = v;
        if (count_ == 1 || v < min_)
            min_ = v;
        if (((count_ - 1) & strideMask_) == 0)
            reservoirPush(v);
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double max() const { return max_; }
    double min() const { return count_ ? min_ : 0.0; }

    /** Population standard deviation; 0 with fewer than 2 samples. */
    double stddev() const;

    /**
     * Percentile estimate from the reservoir, p in [0, 1]. Exact
     * while fewer than kReservoirCapacity samples arrived; a
     * systematic-subsample estimate afterwards. 0 when empty.
     */
    double percentile(double p) const;
    double p50() const { return percentile(0.50); }
    double p99() const { return percentile(0.99); }

    /** Samples currently retained for percentiles (tests). */
    std::size_t reservoirSize() const { return reservoir_.size(); }

    void merge(const Distribution &o);

    /**
     * Raw-state accessors plus an exact rebuild, for the persistent
     * result store: restore() with the values read back from a live
     * distribution yields a bit-identical one (same mean/stddev and
     * the same reservoir, hence the same percentile estimates).
     */
    double sumSquares() const { return sumSq_; }
    std::uint64_t strideMask() const { return strideMask_; }
    const std::vector<double> &reservoirSamples() const
    {
        return reservoir_;
    }
    static Distribution restore(std::uint64_t count, double sum,
                                double sum_sq, double max, double min,
                                std::uint64_t stride_mask,
                                std::vector<double> reservoir);

  private:
    void reservoirPush(double v);

    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double sumSq_ = 0.0;
    double max_ = 0.0;
    double min_ = 0.0;
    /** Sample index i is retained iff (i & strideMask_) == 0. */
    std::uint64_t strideMask_ = 0;
    std::vector<double> reservoir_;
};

/**
 * A flat set of named statistics.
 *
 * Counters are created on first use; names are dot-separated
 * ("l1.sm3.hits"). Components keep raw references/pointers to their
 * counters for cheap increments on hot paths.
 */
class StatSet
{
  public:
    /** Get (creating if needed) a counter by name. */
    std::uint64_t &counter(const std::string &name);

    /** Get (creating if needed) a distribution by name. */
    Distribution &distribution(const std::string &name);

    /** Read a counter; 0 when absent. */
    std::uint64_t get(const std::string &name) const;

    /** Read a distribution; empty when absent. */
    const Distribution &getDistribution(const std::string &name) const;

    /** Sum of all counters whose name starts with the prefix. */
    std::uint64_t sumPrefix(const std::string &prefix) const;

    /** All counters, sorted by name. */
    const std::map<std::string, std::uint64_t> &counters() const
    {
        return counters_;
    }

    const std::map<std::string, Distribution> &distributions() const
    {
        return dists_;
    }

    /** Merge another stat set into this one (counters add). */
    void merge(const StatSet &other);

    /**
     * Add every counter into `dst` and zero it here, keeping the
     * keys registered (so cached counter references stay valid and
     * the key set — hence toString()/timeline columns — is stable).
     * The sharded main loop drains per-shard StatSets into the
     * global set at every window barrier; per-shard sets must hold
     * counters only (distributions don't drain — shard-side
     * components register none, enforced here).
     */
    void drainCountersInto(StatSet &dst);

    /** Render "name value" lines, sorted. */
    std::string toString() const;

    void clear();

  private:
    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, Distribution> dists_;
};

} // namespace gtsc::sim

#endif // GTSC_SIM_STATS_HH_
