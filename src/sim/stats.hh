/**
 * @file
 * Statistics registry: named counters, scalars and histograms that
 * components register into a shared StatSet and the harness reads out
 * after a run. Loosely modeled on gem5's stats package, heavily
 * simplified.
 */

#ifndef GTSC_SIM_STATS_HH_
#define GTSC_SIM_STATS_HH_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/log.hh"

namespace gtsc::sim
{

/**
 * Streaming mean/max tracker for latency-style samples.
 */
class Distribution
{
  public:
    void
    sample(double v)
    {
        count_++;
        sum_ += v;
        if (v > max_)
            max_ = v;
        if (count_ == 1 || v < min_)
            min_ = v;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double max() const { return max_; }
    double min() const { return count_ ? min_ : 0.0; }

    void
    merge(const Distribution &o)
    {
        if (o.count_ == 0)
            return;
        if (count_ == 0 || o.min_ < min_)
            min_ = o.min_;
        if (o.max_ > max_)
            max_ = o.max_;
        count_ += o.count_;
        sum_ += o.sum_;
    }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double max_ = 0.0;
    double min_ = 0.0;
};

/**
 * A flat set of named statistics.
 *
 * Counters are created on first use; names are dot-separated
 * ("l1.sm3.hits"). Components keep raw references/pointers to their
 * counters for cheap increments on hot paths.
 */
class StatSet
{
  public:
    /** Get (creating if needed) a counter by name. */
    std::uint64_t &counter(const std::string &name);

    /** Get (creating if needed) a distribution by name. */
    Distribution &distribution(const std::string &name);

    /** Read a counter; 0 when absent. */
    std::uint64_t get(const std::string &name) const;

    /** Read a distribution; empty when absent. */
    const Distribution &getDistribution(const std::string &name) const;

    /** Sum of all counters whose name starts with the prefix. */
    std::uint64_t sumPrefix(const std::string &prefix) const;

    /** All counters, sorted by name. */
    const std::map<std::string, std::uint64_t> &counters() const
    {
        return counters_;
    }

    const std::map<std::string, Distribution> &distributions() const
    {
        return dists_;
    }

    /** Merge another stat set into this one (counters add). */
    void merge(const StatSet &other);

    /** Render "name value" lines, sorted. */
    std::string toString() const;

    void clear();

  private:
    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, Distribution> dists_;
};

} // namespace gtsc::sim

#endif // GTSC_SIM_STATS_HH_
