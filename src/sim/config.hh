/**
 * @file
 * A small hierarchical configuration dictionary.
 *
 * Components pull typed values out of a flat "section.key" namespace
 * with explicit defaults, so a fully default-constructed Config is a
 * runnable configuration. Values can be overridden programmatically
 * or parsed from "key=value" strings (used by example binaries).
 */

#ifndef GTSC_SIM_CONFIG_HH_
#define GTSC_SIM_CONFIG_HH_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gtsc::sim
{

/**
 * String-keyed configuration store with typed accessors.
 *
 * Every get() records the key and the value actually used, so a run
 * can dump its effective configuration for reproducibility.
 */
class Config
{
  public:
    Config() = default;

    /** Set (or override) a value. */
    void set(const std::string &key, const std::string &value);
    void setInt(const std::string &key, std::int64_t value);
    void setDouble(const std::string &key, double value);
    void setBool(const std::string &key, bool value);

    /** True when the key has been explicitly set. */
    bool has(const std::string &key) const;

    /**
     * Typed getters. If the key is absent the default is returned
     * and remembered as the effective value. A present-but-malformed
     * value raises a fatal error.
     */
    std::int64_t getInt(const std::string &key,
                        std::int64_t default_value) const;
    std::uint64_t getUint(const std::string &key,
                          std::uint64_t default_value) const;
    double getDouble(const std::string &key, double default_value) const;
    bool getBool(const std::string &key, bool default_value) const;
    std::string getString(const std::string &key,
                          const std::string &default_value) const;

    /**
     * Parse a single "key=value" override.
     * @return false when the string is not of that shape.
     */
    bool parseOverride(const std::string &text);

    /** Parse a list of overrides; fatal on malformed entries. */
    void parseOverrides(const std::vector<std::string> &items);

    /**
     * Load "key = value" lines from a file ('#' comments, blank
     * lines ignored); fatal on I/O or syntax errors. Later settings
     * override earlier ones.
     */
    void loadFile(const std::string &path);

    /** Effective configuration (explicit + consulted defaults). */
    std::map<std::string, std::string> effective() const;

    /** Render the effective configuration one "key=value" per line. */
    std::string toString() const;

    /**
     * Render only the explicitly-set values, one "key=value" per
     * line, sorted by key. Unlike toString() this is independent of
     * which getters have been consulted, so it is a stable
     * fingerprint for "same configuration" comparisons (the sweep
     * result cache keys on it).
     */
    std::string explicitString() const;

    /**
     * Like explicitString(), but with every value normalized so
     * semantically identical configs hash to the same fingerprint
     * regardless of how their values were spelled: boolean tokens
     * (true/yes/on and false/no/off) become "1"/"0", and anything
     * that fully parses as an integer the way getInt/getUint would
     * (strtoll base 0, so "0x10" and "010" included) is rendered in
     * canonical decimal. Values that are neither are kept verbatim.
     * The persistent result store keys on this.
     */
    std::string canonicalString() const;

    /** The value normalization canonicalString() applies per value. */
    static std::string canonicalValue(const std::string &value);

  private:
    std::map<std::string, std::string> values_;
    /** Defaults that were consulted; mutable bookkeeping only. */
    mutable std::map<std::string, std::string> consulted_;
};

} // namespace gtsc::sim

#endif // GTSC_SIM_CONFIG_HH_
