/**
 * @file
 * A small work-stealing thread pool for embarrassingly parallel
 * host-side work (the experiment sweep runner fans independent
 * simulations out over it).
 *
 * Each worker owns a deque: submitted tasks are distributed
 * round-robin, a worker services its own deque front-first and
 * steals from the back of a victim's deque when it runs dry. The
 * pool is deliberately simulation-agnostic; determinism is the
 * *submitter's* job (every task must be self-contained), the pool
 * only guarantees that every submitted task runs exactly once.
 */

#ifndef GTSC_SIM_THREAD_POOL_HH_
#define GTSC_SIM_THREAD_POOL_HH_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gtsc::sim
{

class ThreadPool
{
  public:
    using Task = std::function<void()>;

    /** Spawn `workers` threads (clamped to >= 1). */
    explicit ThreadPool(unsigned workers);

    /** Drains every submitted task, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue a task. Safe from any thread, including from inside a
     * running task.
     */
    void submit(Task task);

    /** Block until every task submitted so far has finished. */
    void wait();

    unsigned workers() const
    {
        return static_cast<unsigned>(threads_.size());
    }

    /** std::thread::hardware_concurrency() with a floor of 1. */
    static unsigned hardwareWorkers();

  private:
    struct WorkerQueue
    {
        std::mutex mutex;
        std::deque<Task> tasks;
    };

    void workerLoop(unsigned self);
    bool tryPop(unsigned self, Task &out);

    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> threads_;

    std::mutex sleepMutex_;
    std::condition_variable workCv_; ///< wakes idle workers
    std::condition_variable doneCv_; ///< wakes wait()

    std::atomic<std::size_t> queued_{0};  ///< tasks sitting in deques
    std::atomic<std::size_t> pending_{0}; ///< queued + running tasks
    std::atomic<bool> stop_{false};
    std::atomic<unsigned> nextQueue_{0};
};

} // namespace gtsc::sim

#endif // GTSC_SIM_THREAD_POOL_HH_
