/**
 * @file
 * Power-of-two ring buffer with deque-like front/back semantics.
 *
 * Drop-in replacement for the simulator's hot std::deque queues
 * (L2 service queues, replay queues, store FIFOs, DRAM request
 * queues). libstdc++'s deque allocates and frees a block node every
 * few pushes when elements are fat (Packet is ~216 bytes), which
 * shows up as steady-state heap churn; the ring only allocates on
 * capacity growth and then recycles its storage forever.
 *
 * Elements are stored in default-constructed slots and move-assigned
 * in, so popped slots retain whatever capacity their element type
 * carries until the slot is overwritten by a later push.
 */

#ifndef GTSC_SIM_RING_BUFFER_HH_
#define GTSC_SIM_RING_BUFFER_HH_

#include <cstddef>
#include <utility>
#include <vector>

namespace gtsc::sim
{

template <typename T>
class RingBuffer
{
  public:
    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }
    std::size_t capacity() const { return buf_.size(); }

    T &front() { return buf_[head_]; }
    const T &front() const { return buf_[head_]; }
    T &back() { return buf_[(head_ + size_ - 1) & mask_]; }
    const T &back() const { return buf_[(head_ + size_ - 1) & mask_]; }

    T &operator[](std::size_t i) { return buf_[(head_ + i) & mask_]; }
    const T &operator[](std::size_t i) const
    {
        return buf_[(head_ + i) & mask_];
    }

    void
    push_back(T v)
    {
        if (size_ == buf_.size())
            grow();
        buf_[(head_ + size_) & mask_] = std::move(v);
        ++size_;
    }

    /** Pop the head slot; its element is left in a moved-from /
     *  stale state and recycled by a later push. */
    void
    pop_front()
    {
        head_ = (head_ + 1) & mask_;
        --size_;
    }

    /** Remove element i, preserving the order of the rest (shifts
     *  the tail left; O(size - i) moves). */
    void
    erase(std::size_t i)
    {
        for (std::size_t k = i; k + 1 < size_; ++k)
            (*this)[k] = std::move((*this)[k + 1]);
        --size_;
    }

    /** Drop all elements; capacity (and slot-held storage) kept. */
    void
    clear()
    {
        head_ = 0;
        size_ = 0;
    }

  private:
    void
    grow()
    {
        std::size_t cap = buf_.empty() ? kInitialCapacity
                                       : buf_.size() * 2;
        std::vector<T> nb(cap);
        for (std::size_t i = 0; i < size_; ++i)
            nb[i] = std::move((*this)[i]);
        buf_ = std::move(nb);
        head_ = 0;
        mask_ = cap - 1;
    }

    static constexpr std::size_t kInitialCapacity = 16;

    std::vector<T> buf_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
    std::size_t mask_ = 0;
};

} // namespace gtsc::sim

#endif // GTSC_SIM_RING_BUFFER_HH_
