/**
 * @file
 * Minimal logging / fatal-error helpers in the spirit of gem5's
 * base/logging.hh: panic() for internal invariant violations and
 * fatal() for user configuration errors.
 */

#ifndef GTSC_SIM_LOG_HH_
#define GTSC_SIM_LOG_HH_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace gtsc::sim
{

/** Global verbosity level: 0 silent, 1 inform, 2 debug trace. */
int logLevel();

/** Set the global verbosity level. */
void setLogLevel(int level);

namespace detail
{

[[noreturn]] void
failImpl(const char *kind, const char *file, int line,
         const std::string &msg);

void informImpl(const std::string &msg);
void debugImpl(const std::string &msg);

/** Build a string from stream-style arguments. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

/** Abort: an internal simulator bug (invariant broken). */
#define GTSC_PANIC(...)                                                 \
    ::gtsc::sim::detail::failImpl(                                      \
        "panic", __FILE__, __LINE__,                                    \
        ::gtsc::sim::detail::concat(__VA_ARGS__))

/** Exit with error: the user supplied an invalid configuration. */
#define GTSC_FATAL(...)                                                 \
    ::gtsc::sim::detail::failImpl(                                      \
        "fatal", __FILE__, __LINE__,                                    \
        ::gtsc::sim::detail::concat(__VA_ARGS__))

/** Assert an internal invariant; always checked (not NDEBUG-gated). */
#define GTSC_ASSERT(cond, ...)                                          \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::gtsc::sim::detail::failImpl(                              \
                "assert(" #cond ")", __FILE__, __LINE__,                \
                ::gtsc::sim::detail::concat("" __VA_ARGS__));           \
        }                                                               \
    } while (0)

/** Informational message (shown at logLevel >= 1). */
#define GTSC_INFORM(...)                                                \
    do {                                                                \
        if (::gtsc::sim::logLevel() >= 1) {                             \
            ::gtsc::sim::detail::informImpl(                            \
                ::gtsc::sim::detail::concat(__VA_ARGS__));              \
        }                                                               \
    } while (0)

/** Debug trace message (shown at logLevel >= 2). */
#define GTSC_DEBUG(...)                                                 \
    do {                                                                \
        if (::gtsc::sim::logLevel() >= 2) {                             \
            ::gtsc::sim::detail::debugImpl(                             \
                ::gtsc::sim::detail::concat(__VA_ARGS__));              \
        }                                                               \
    } while (0)

} // namespace gtsc::sim

#endif // GTSC_SIM_LOG_HH_
