#include "verify/model.hh"

#include <algorithm>

#include "sim/log.hh"

namespace gtsc::verify
{

namespace
{

/**
 * The explored machine: small enough that the state space closes,
 * large enough that every protocol path (renewal, fill, write-ack,
 * eviction, reset) is reachable. Geometry guarantees the restore
 * hooks' no-capacity-eviction precondition: one set with 4 ways per
 * cache covers up to 4 explored lines.
 */
sim::Config
makeModelConfig(const sim::Config &user)
{
    sim::Config cfg = user;
    cfg.setInt("gpu.num_sms", user.getInt("verify.sms", 2));
    cfg.setInt("gpu.warps_per_sm", 1);
    cfg.setInt("gpu.warp_size", 1);
    cfg.setInt("gpu.num_partitions", 1);
    cfg.setInt("l1.size_bytes", 512);
    cfg.setInt("l1.assoc", 4);
    cfg.setInt("l1.mshr_entries", 8);
    cfg.setInt("l1.hit_latency", 1);
    cfg.setInt("l2.partition_bytes", 512);
    cfg.setInt("l2.assoc", 4);
    cfg.setInt("l2.mshr_entries", 8);
    cfg.setInt("l2.ports", 1);
    cfg.setInt("l2.access_latency", 2);
    return cfg;
}

} // namespace

ModelSim::ModelSim(const sim::Config &user_cfg)
    : cfg_(makeModelConfig(user_cfg)),
      domainPtr_(std::make_unique<core::TsDomain>(cfg_, stats_)),
      domain_(*domainPtr_)
{
    sms_ = static_cast<unsigned>(cfg_.getUint("verify.sms", 2));
    lines_ = static_cast<unsigned>(cfg_.getUint("verify.lines", 2));
    opsPerThread_ =
        static_cast<unsigned>(cfg_.getUint("verify.ops_per_thread", 2));
    std::string cons = cfg_.getString("verify.consistency", "sc");
    if (cons == "sc")
        maxOutstanding_ = 1;
    else if (cons == "rc")
        maxOutstanding_ = static_cast<unsigned>(
            cfg_.getUint("verify.max_outstanding", 2));
    else
        GTSC_FATAL("verify.consistency must be sc|rc, got '", cons, "'");
    boostBudget_ =
        static_cast<unsigned>(cfg_.getUint("verify.boosts", 0));
    evictions_ = cfg_.getBool("verify.evictions", true);
    settleCap_ =
        static_cast<unsigned>(cfg_.getUint("verify.settle_cap", 20000));
    if (sms_ == 0 || sms_ > 8 || lines_ == 0 || lines_ > 4)
        GTSC_FATAL("verify.sms must be in [1,8] and verify.lines in "
                   "[1,4], got ",
                   sms_, "/", lines_);

    // Oracle first so the version history collapses before any
    // post-reset probe calls (listeners fire in registration order;
    // the L2's own rewind registers in its constructor below).
    domain_.addResetListener(
        [this]() { oracle_.onEpochReset(domain_.epoch()); });

    dram_ = std::make_unique<mem::DramChannel>(cfg_, stats_, events_,
                                               memory_, "dram0");
    l2_ = std::make_unique<core::GtscL2>(0, cfg_, stats_, events_,
                                         *dram_, memory_, domain_,
                                         &oracle_);
    l2_->setSend([this](mem::Packet &&p) {
        pendingResps_.push_back(std::move(p));
    });
    for (unsigned sm = 0; sm < sms_; ++sm)
    {
        auto l1 = std::make_unique<core::GtscL1>(
            static_cast<SmId>(sm), cfg_, stats_, events_, domain_,
            &oracle_);
        l1->setSend([this](mem::Packet &&p) {
            pendingReqs_.push_back(std::move(p));
        });
        l1->setLoadDone(
            [this, sm](const mem::Access &, const mem::AccessResult &) {
                GTSC_ASSERT(threads_[sm].outstanding > 0,
                            "load completion without outstanding op");
                --threads_[sm].outstanding;
            });
        l1->setStoreDone([this, sm](const mem::Access &, Cycle) {
            GTSC_ASSERT(threads_[sm].outstanding > 0,
                        "store completion without outstanding op");
            --threads_[sm].outstanding;
        });
        l1s_.push_back(std::move(l1));
    }
    threads_.assign(sms_, ThreadState{});
    transcript_ = std::make_unique<obs::Transcript>(64, "");
}

void
ModelSim::clearTranscript()
{
    transcript_ = std::make_unique<obs::Transcript>(64, "");
}

bool
ModelSim::settled() const
{
    if (!events_.empty() || !dram_->idle())
        return false;
    if (l2_->nextWorkCycle(now_) != kCycleNever)
        return false;
    for (const auto &l1 : l1s_)
    {
        if (l1->nextWorkCycle(now_) != kCycleNever)
            return false;
    }
    return true;
}

bool
ModelSim::settle()
{
    for (unsigned i = 0; i < settleCap_; ++i)
    {
        if (settled())
            return true;
        ++now_;
        events_.runUntil(now_);
        dram_->tick(now_);
        l2_->tick(now_);
        for (auto &l1 : l1s_)
            l1->tick(now_);
    }
    return settled();
}

WorldState
ModelSim::capture()
{
    WorldState w;
    for (auto &l1 : l1s_)
        w.l1.push_back(l1->captureVerifyState());
    w.l2 = l2_->captureVerifyState();
    w.domain = domain_.captureVerifyState();
    w.reqs = pendingReqs_;
    w.resps = pendingResps_;
    w.threads = threads_;
    for (unsigned i = 0; i < lines_; ++i)
        w.memLines.push_back(memory_.readLine(lineAddr(i)));
    w.oracle = oracle_.capture();
    w.nextAccessId = nextAccessId_;
    return w;
}

void
ModelSim::restore(const WorldState &w)
{
    GTSC_ASSERT(settled(), "verify restore on an unsettled machine");
    GTSC_ASSERT(w.l1.size() == l1s_.size(),
                "world state shape mismatch");
    for (std::size_t sm = 0; sm < l1s_.size(); ++sm)
        l1s_[sm]->restoreVerifyState(w.l1[sm]);
    l2_->restoreVerifyState(w.l2);
    domain_.restoreVerifyState(w.domain);
    for (unsigned i = 0; i < lines_; ++i)
        memory_.writeLine(lineAddr(i), w.memLines[i]);
    oracle_.restore(w.oracle);
    pendingReqs_ = w.reqs;
    pendingResps_ = w.resps;
    threads_ = w.threads;
    nextAccessId_ = w.nextAccessId;
}

std::vector<Action>
ModelSim::enabledActions(const WorldState &w) const
{
    std::vector<Action> out;
    auto hasLine = [](const std::vector<core::VerifyLineState> &lines,
                      Addr addr) {
        for (const auto &l : lines)
            if (l.lineAddr == addr)
                return true;
        return false;
    };
    for (std::uint16_t sm = 0; sm < sms_; ++sm)
    {
        const ThreadState &t = w.threads[sm];
        if (t.issued < opsPerThread_ && t.outstanding < maxOutstanding_)
        {
            for (std::uint16_t line = 0; line < lines_; ++line)
            {
                out.push_back({Action::Kind::IssueLoad, sm, line});
                out.push_back({Action::Kind::IssueStore, sm, line});
            }
        }
        if (t.boosts < boostBudget_)
            out.push_back({Action::Kind::Boost, sm, 0});
    }
    for (std::uint16_t sm = 0; sm < sms_; ++sm)
    {
        for (const auto &p : w.reqs)
        {
            if (p.src == sm)
            {
                out.push_back({Action::Kind::DeliverReq, sm, 0});
                break;
            }
        }
        for (const auto &p : w.resps)
        {
            if (p.src == sm)
            {
                out.push_back({Action::Kind::DeliverResp, sm, 0});
                break;
            }
        }
    }
    if (evictions_)
    {
        for (std::uint16_t sm = 0; sm < sms_; ++sm)
        {
            for (std::uint16_t line = 0; line < lines_; ++line)
            {
                Addr addr = lineAddr(line);
                if (!hasLine(w.l1[sm].lines, addr))
                    continue;
                bool locked = false;
                for (const auto &[laddr, id] : w.l1[sm].storeByLine)
                    locked |= laddr == addr;
                if (!locked)
                    out.push_back({Action::Kind::EvictL1, sm, line});
            }
        }
        for (std::uint16_t line = 0; line < lines_; ++line)
        {
            if (hasLine(w.l2.lines, lineAddr(line)))
                out.push_back({Action::Kind::EvictL2, 0, line});
        }
    }
    return out;
}

void
ModelSim::applyAction(const Action &action)
{
    switch (action.kind)
    {
    case Action::Kind::IssueLoad:
    case Action::Kind::IssueStore:
    {
        ThreadState &t = threads_[action.sm];
        mem::Access acc;
        acc.isStore = action.kind == Action::Kind::IssueStore;
        acc.lineAddr = lineAddr(action.line);
        acc.wordMask = 1;
        if (acc.isStore)
        {
            // Path-independent payload: (sm, op index) — never a
            // global counter, which would split identical states in
            // the visited set.
            acc.storeData.setWord(
                0, (static_cast<std::uint32_t>(action.sm) + 1) * 16 +
                       t.issued);
        }
        acc.sm = static_cast<SmId>(action.sm);
        acc.warp = 0;
        acc.id = nextAccessId_++;
        bool ok = l1s_[action.sm]->access(acc, now_);
        GTSC_ASSERT(ok, "model L1 rejected an access (MSHR sized too "
                        "small for the explored config)");
        ++t.issued;
        ++t.outstanding;
        break;
    }
    case Action::Kind::DeliverReq:
    case Action::Kind::DeliverResp:
    {
        bool req = action.kind == Action::Kind::DeliverReq;
        auto &held = req ? pendingReqs_ : pendingResps_;
        auto it = std::find_if(held.begin(), held.end(),
                               [&](const mem::Packet &p) {
                                   return p.src == action.sm;
                               });
        GTSC_ASSERT(it != held.end(),
                    "deliver action with no held message");
        mem::Packet pkt = std::move(*it);
        held.erase(it);
        transcript_->log(obs::TranscriptEntry{
            now_, pkt.lineAddr, mem::msgTypeName(pkt.type),
            req ? pkt.src : pkt.part, req ? pkt.part : pkt.src,
            pkt.warp, !req, pkt.wts, pkt.rts});
        if (req)
            l2_->receiveRequest(std::move(pkt), now_);
        else
            l1s_[action.sm]->receiveResponse(std::move(pkt), now_);
        break;
    }
    case Action::Kind::EvictL1:
    {
        bool ok =
            l1s_[action.sm]->verifyEvictLine(lineAddr(action.line));
        GTSC_ASSERT(ok, "EvictL1 enabled but refused");
        break;
    }
    case Action::Kind::EvictL2:
    {
        bool ok = l2_->verifyEvictLine(lineAddr(action.line));
        GTSC_ASSERT(ok, "EvictL2 enabled but refused");
        break;
    }
    case Action::Kind::Boost:
        l1s_[action.sm]->noteSpinRetry(0, lineAddr(0));
        ++threads_[action.sm].boosts;
        break;
    }
}

ModelSim::StepOutcome
ModelSim::init()
{
    StepOutcome o;
    bool ok = settle();
    if (!ok)
    {
        o.violations.push_back(
            "Deadlock: initial state failed to settle");
        return o;
    }
    o.state = capture();
    auto sv = checkStateInvariants(o.state, invariantParams());
    o.violations.insert(o.violations.end(), sv.begin(), sv.end());
    return o;
}

ModelSim::StepOutcome
ModelSim::step(const WorldState &from, const Action &action)
{
    restore(from);
    applyAction(action);
    StepOutcome o;
    if (!settle())
    {
        o.state = from;
        o.violations.push_back(
            "Deadlock: no settled state within " +
            std::to_string(settleCap_) + " cycles after '" +
            action.describe() + "'");
        return o;
    }
    o.violations = oracle_.drainViolations();
    o.state = capture();
    auto sv = checkStateInvariants(o.state, invariantParams());
    o.violations.insert(o.violations.end(), sv.begin(), sv.end());
    auto tv = checkTransitionInvariants(from, o.state);
    o.violations.insert(o.violations.end(), tv.begin(), tv.end());
    return o;
}

std::vector<std::string>
ModelSim::checkTerminal(const WorldState &w) const
{
    std::vector<std::string> out;
    for (std::size_t sm = 0; sm < w.threads.size(); ++sm)
    {
        const ThreadState &t = w.threads[sm];
        if (t.outstanding > 0 || t.issued < opsPerThread_)
        {
            out.push_back(
                "StuckState: sm" + std::to_string(sm) + " finished " +
                std::to_string(t.issued - t.outstanding) + "/" +
                std::to_string(opsPerThread_) +
                " ops with no transition left");
        }
    }
    return out;
}

} // namespace gtsc::verify
