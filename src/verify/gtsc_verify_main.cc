/**
 * @file
 * gtsc_verify: driver for the protocol verification lab.
 *
 *   gtsc_verify --explore [key=value ...]
 *       Exhaustively enumerate the small-state model (verify.sms x
 *       verify.lines, see src/verify/model.hh) and check every
 *       invariant on every transition. Prints a minimized witness
 *       trace on violation. Exit 1 if any violation was found.
 *
 *   gtsc_verify --litmus [--count N] [--seed S] [key=value ...]
 *       Generate N seeded litmus tests (shapes round-robin) and run
 *       them across the protocol x consistency matrix with
 *       forbidden-outcome oracles; failures are shrunk to a minimal
 *       replayable spec. Exit 1 on any failure.
 *
 *   gtsc_verify --litmus-replay '<spec>' [protocol=P] [key=value ...]
 *       Re-run one spec string (from a failure report) — across its
 *       whole matrix, or one cell when protocol=/gpu.consistency= are
 *       given.
 *
 *   Common flags:
 *     --rollover        preset for timestamp-epoch rollover torture
 *                       (8-bit timestamps, one overflow-sized spin
 *                       boost; closes completely, see --help text in
 *                       the option handler)
 *     --mutation NAME   enable a test-only FSM mutation (verify.
 *                       mutation) — the explorer must catch it
 *     --out FILE.json   machine-readable results (tools/
 *                       check_verify.py gates on this)
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "sim/config.hh"
#include "verify/explorer.hh"
#include "verify/litmus_gen.hh"

using namespace gtsc;

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s)
    {
        if (c == '"' || c == '\\')
            out += '\\';
        if (c == '\n')
        {
            out += "\\n";
            continue;
        }
        out += c;
    }
    return out;
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: gtsc_verify --explore|--litmus|"
                 "--litmus-replay '<spec>' [--count N] [--seed S]\n"
                 "                   [--rollover] [--mutation NAME] "
                 "[--out FILE.json] [key=value ...]\n");
    return 2;
}

int
runExplore(const sim::Config &cfg, const std::string &outPath)
{
    auto result = verify::explore(cfg);
    const auto &s = result.stats;
    std::printf("explore: %llu states, %llu transitions "
                "(%llu deduped, %llu truncated, %llu terminals), "
                "max depth %llu, %.2fs (%.0f states/s), %s\n",
                static_cast<unsigned long long>(s.statesVisited),
                static_cast<unsigned long long>(s.transitions),
                static_cast<unsigned long long>(s.deduped),
                static_cast<unsigned long long>(s.truncated),
                static_cast<unsigned long long>(s.terminals),
                static_cast<unsigned long long>(s.maxDepth), s.seconds,
                s.statesPerSec,
                s.complete ? "complete" : "INCOMPLETE");
    for (const auto &w : result.witnesses)
        std::printf("%s", w.report.c_str());

    if (!outPath.empty())
    {
        std::ostringstream oss;
        oss << "{\n  \"mode\": \"explore\",\n"
            << "  \"complete\": " << (s.complete ? "true" : "false")
            << ",\n  \"states_visited\": " << s.statesVisited
            << ",\n  \"transitions\": " << s.transitions
            << ",\n  \"deduped\": " << s.deduped
            << ",\n  \"truncated\": " << s.truncated
            << ",\n  \"terminals\": " << s.terminals
            << ",\n  \"max_depth\": " << s.maxDepth
            << ",\n  \"seconds\": " << s.seconds
            << ",\n  \"states_per_sec\": " << s.statesPerSec
            << ",\n  \"violations\": " << result.witnesses.size()
            << ",\n  \"witnesses\": [";
        for (std::size_t i = 0; i < result.witnesses.size(); ++i)
        {
            const auto &w = result.witnesses[i];
            oss << (i ? "," : "") << "\n    {\"actions\": [";
            for (std::size_t a = 0; a < w.actions.size(); ++a)
                oss << (a ? ", " : "") << "\""
                    << jsonEscape(w.actions[a].describe()) << "\"";
            oss << "], \"violations\": [";
            for (std::size_t v = 0; v < w.violations.size(); ++v)
                oss << (v ? ", " : "") << "\""
                    << jsonEscape(w.violations[v]) << "\"";
            oss << "]}";
        }
        oss << (result.witnesses.empty() ? "" : "\n  ") << "]\n}\n";
        std::ofstream f(outPath);
        f << oss.str();
    }
    return result.ok() ? 0 : 1;
}

int
runLitmusBatchMode(const sim::Config &base, std::uint64_t seed,
                   unsigned count, const std::string &outPath)
{
    auto result = verify::runLitmusBatch(base, seed, count);
    std::printf("litmus: %u tests, %u runs, %zu failures "
                "(base seed %llu)\n",
                result.tests, result.runs, result.failures.size(),
                static_cast<unsigned long long>(seed));
    for (const auto &f : result.failures)
        std::printf("%s", f.report.c_str());

    if (!outPath.empty())
    {
        std::ostringstream oss;
        oss << "{\n  \"mode\": \"litmus\",\n"
            << "  \"seed\": " << seed
            << ",\n  \"tests\": " << result.tests
            << ",\n  \"runs\": " << result.runs
            << ",\n  \"violations\": " << result.failures.size()
            << ",\n  \"failures\": [";
        for (std::size_t i = 0; i < result.failures.size(); ++i)
        {
            const auto &f = result.failures[i];
            oss << (i ? "," : "") << "\n    {\"seed\": " << f.seed
                << ", \"cell\": \"" << f.protocol << "/"
                << f.consistency << "\", \"spec\": \""
                << jsonEscape(f.spec.format()) << "\"}";
        }
        oss << (result.failures.empty() ? "" : "\n  ") << "]\n}\n";
        std::ofstream f(outPath);
        f << oss.str();
    }
    return result.ok() ? 0 : 1;
}

int
runReplay(const sim::Config &base, const std::string &specText,
          const std::string &protocol)
{
    workloads::LitmusSpec spec;
    std::string err;
    if (!workloads::LitmusSpec::parse(specText, spec, &err))
    {
        std::fprintf(stderr, "bad litmus spec: %s\n", err.c_str());
        return 2;
    }
    std::vector<std::pair<std::string, std::string>> cells;
    if (!protocol.empty())
        cells.emplace_back(protocol,
                           base.getString("gpu.consistency", "sc"));
    else
        cells = verify::litmusMatrix(spec);

    int rc = 0;
    for (const auto &[p, c] : cells)
    {
        bool ok = verify::runLitmusCell(base, spec, p, c);
        std::printf("replay %s/%s: %s\n", p.c_str(), c.c_str(),
                    ok ? "pass" : "FORBIDDEN OUTCOME");
        if (!ok)
            rc = 1;
    }
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    bool explore = false;
    bool litmus = false;
    std::string replaySpec;
    std::string protocol;
    std::string outPath;
    unsigned count = 20;
    sim::Config cfg = harness::benchConfig();
    std::uint64_t seed = cfg.getUint("sim.seed", 1);

    for (int i = 1; i < argc; ++i)
    {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--explore")
            explore = true;
        else if (arg == "--litmus")
            litmus = true;
        else if (arg == "--litmus-replay")
        {
            const char *v = next();
            if (!v)
                return usage();
            replaySpec = v;
        }
        else if (arg == "--count")
        {
            const char *v = next();
            if (!v)
                return usage();
            count = static_cast<unsigned>(std::strtoul(v, nullptr, 0));
        }
        else if (arg == "--seed")
        {
            const char *v = next();
            if (!v)
                return usage();
            seed = std::strtoull(v, nullptr, 0);
        }
        else if (arg == "--out")
        {
            const char *v = next();
            if (!v)
                return usage();
            outPath = v;
        }
        else if (arg == "--rollover")
        {
            // 8-bit timestamps with a spin boost big enough that one
            // boosted store overflows: the whole epoch-reset protocol
            // (rewind, lazy adoption, normalization) is in scope, and
            // the space still closes (~540k states, ~15s).
            cfg.setInt("gtsc.ts_bits", 8);
            cfg.setInt("gtsc.lease", 10);
            cfg.setInt("verify.boosts", 1);
            cfg.setInt("gtsc.spin_ts_boost", 245);
            cfg.setInt("verify.lines", 1);
            cfg.setInt("verify.ops_per_thread", 2);
        }
        else if (arg == "--mutation")
        {
            const char *v = next();
            if (!v)
                return usage();
            cfg.set("verify.mutation", v);
        }
        else if (arg.rfind("protocol=", 0) == 0)
        {
            protocol = arg.substr(std::strlen("protocol="));
        }
        else if (arg.find('=') != std::string::npos)
        {
            cfg.parseOverride(arg);
        }
        else
        {
            return usage();
        }
    }

    if (explore)
        return runExplore(cfg, outPath);
    if (litmus)
        return runLitmusBatchMode(cfg, seed, count, outPath);
    if (!replaySpec.empty())
        return runReplay(cfg, replaySpec, protocol);
    return usage();
}
