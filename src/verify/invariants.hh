/**
 * @file
 * The invariant library shared by both verification engines.
 *
 * State invariants are checked on every settled snapshot the
 * explorer visits; transition invariants compare consecutive
 * snapshots. Each check maps to a lemma of the Tardis correctness
 * argument (Yu et al., "Tardis: Time Traveling Coherence Algorithm
 * for Distributed Shared Memory" and the accompanying proof) adapted
 * to G-TSC's GPU setting — docs/VERIFICATION.md spells out the
 * mapping and how to add new checks.
 *
 * Violation messages are prefixed with the invariant name
 * ("Name: detail"), which tools/check_verify.py and the tests key on.
 */

#ifndef GTSC_VERIFY_INVARIANTS_HH_
#define GTSC_VERIFY_INVARIANTS_HH_

#include <string>
#include <vector>

#include "sim/types.hh"
#include "verify/state.hh"

namespace gtsc::verify
{

struct InvariantParams
{
    Ts tsMax = 0;
    Ts lease = 0;
};

/**
 * Single-state invariants:
 *  - WtsRtsOrder: wts <= rts on every cached line (a version's lease
 *    cannot end before the version exists).
 *  - TsBound: every wts/rts/mem_ts/warp_ts fits the timestamp width
 *    (overflow must trigger a reset, never wrap).
 *  - L1LineEpoch: resident L1 lines carry exactly the L1's adopted
 *    epoch (lazy reset adoption flushes before mixing epochs).
 *  - L1L2Containment (lease containment): an up-to-date L1's copy is
 *    never newer than the L2's (l1.wts <= l2.wts); same version =>
 *    its lease is contained (l1.rts <= l2.rts); older version => its
 *    lease ends by the time the newer version was created
 *    (l1.rts <= l2.wts — equality only for the identical-data
 *    DRAM-refill case).
 *  - MemTsDominance: if the L2 evicted the line, every surviving L1
 *    lease was folded into mem_ts (l1.rts <= mem_ts).
 *  - SameVersionSameData: equal (line, wts) in the same epoch =>
 *    identical data everywhere (exclusive-ownership analogue for a
 *    timestamped write-through hierarchy); lines with an in-flight
 *    store are exempt (locally merged words precede the ack).
 *  - StoreLockConsistency: the in-flight-store index and table agree
 *    (at most one store owns a line, every lock has its store).
 *  - MshrLive: a non-lock MSHR entry still expects a response
 *    (outstanding >= 1) — an orphaned entry is a lost message and a
 *    future deadlock.
 */
std::vector<std::string> checkStateInvariants(const WorldState &w,
                                              const InvariantParams &p);

/**
 * Two-state invariants over one transition:
 *  - EpochMonotone: the domain epoch never rewinds.
 *  - MemTsMonotone / L2WtsMonotone / WarpTsMonotone: within an
 *    epoch, logical time only moves forward (physiological time,
 *    Tardis Lemma 1).
 */
std::vector<std::string>
checkTransitionInvariants(const WorldState &before,
                          const WorldState &after);

} // namespace gtsc::verify

#endif // GTSC_VERIFY_INVARIANTS_HH_
