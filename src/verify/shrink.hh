/**
 * @file
 * Generic delta-debugging minimization (Zeller's ddmin), shared by
 * the explorer's witness minimizer and the litmus shrinker.
 *
 * Given a failing sequence and a predicate that re-runs a candidate
 * subsequence, returns a 1-minimal subsequence: removing any single
 * remaining chunk at the finest granularity no longer fails. The
 * predicate must be deterministic (replay from a seed/snapshot).
 */

#ifndef GTSC_VERIFY_SHRINK_HH_
#define GTSC_VERIFY_SHRINK_HH_

#include <cstddef>
#include <vector>

namespace gtsc::verify
{

/**
 * @param input a sequence for which fails(input) is true
 * @param fails re-runs a candidate; true = still reproduces
 * @return a minimal subsequence (original order) that still fails
 */
template <typename T, typename FailsFn>
std::vector<T>
ddmin(std::vector<T> input, FailsFn &&fails)
{
    std::size_t granularity = 2;
    while (input.size() >= 2)
    {
        std::size_t chunk = (input.size() + granularity - 1) / granularity;
        bool reduced = false;
        // Try removing each chunk (complement test only: testing the
        // chunks themselves rarely helps for ordered event traces).
        for (std::size_t start = 0; start < input.size(); start += chunk)
        {
            std::vector<T> candidate;
            candidate.reserve(input.size());
            for (std::size_t i = 0; i < input.size(); ++i)
            {
                if (i < start || i >= start + chunk)
                    candidate.push_back(input[i]);
            }
            if (candidate.size() < input.size() && fails(candidate))
            {
                input = std::move(candidate);
                granularity = granularity > 2 ? granularity - 1 : 2;
                reduced = true;
                break;
            }
        }
        if (!reduced)
        {
            if (granularity >= input.size())
                break; // 1-minimal
            granularity = granularity * 2 < input.size()
                              ? granularity * 2
                              : input.size();
        }
    }
    return input;
}

} // namespace gtsc::verify

#endif // GTSC_VERIFY_SHRINK_HH_
