/**
 * @file
 * Value-serializability oracle for the verification lab.
 *
 * A snapshottable mem::CoherenceProbe that keeps, per word, the full
 * ordered version history {epoch, wts, value} of committed stores and
 * eagerly validates every G-TSC load against it: a load at logical
 * time ts must observe the value of the version with the largest
 * wts <= ts in its epoch (the Tardis serializability argument,
 * Lemma 2 of the proof paper — see docs/VERIFICATION.md). Store
 * commits are checked for per-word wts monotonicity (physiological
 * time only moves forward, Lemma 1).
 *
 * Unlike harness::CoherenceChecker this oracle's whole state is a
 * value type, so the model checker can capture/restore it alongside
 * the controller snapshots when exploring interleavings.
 */

#ifndef GTSC_VERIFY_ORACLE_HH_
#define GTSC_VERIFY_ORACLE_HH_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "mem/coherence_probe.hh"
#include "sim/types.hh"

namespace gtsc::verify
{

class VersionOracle final : public mem::CoherenceProbe
{
  public:
    struct Version
    {
        std::uint32_t epoch = 0;
        Ts wts = 0;
        std::uint32_t value = 0;

        bool
        operator==(const Version &o) const
        {
            return epoch == o.epoch && wts == o.wts && value == o.value;
        }
    };

    /** Whole-oracle snapshot (a value: copyable, comparable). */
    struct State
    {
        std::uint32_t epoch = 0;
        /** Per-word append-ordered version history. */
        std::map<Addr, std::vector<Version>> words;

        bool
        operator==(const State &o) const
        {
            return epoch == o.epoch && words == o.words;
        }
    };

    // --- CoherenceProbe ---
    void onStoreTs(Addr word_addr, std::uint32_t epoch, Ts wts,
                   std::uint32_t value, SmId sm, WarpId warp) override;
    void onLoadTs(Addr word_addr, std::uint32_t epoch, Ts ts,
                  std::uint32_t value, SmId sm, WarpId warp) override;

    /** Physical-time hooks unused: the lab checks G-TSC only. */
    void
    onStorePhys(Addr, Cycle, std::uint32_t, SmId, WarpId) override
    {}
    void
    onLoadPhys(Addr, Cycle, Cycle, std::uint32_t, SmId, WarpId) override
    {}

    /**
     * Timestamp reset: all old-epoch versions become unreachable
     * (every L1 flushes, L2 rewinds to wts=1 keeping its data), so
     * the history collapses to one version per word — the final
     * pre-reset value at {new_epoch, wts=0}.
     */
    void onEpochReset(std::uint32_t new_epoch) override;

    State capture() const { return state_; }
    void restore(const State &s) { state_ = s; }

    /** Violations recorded since the last drain (messages). */
    std::vector<std::string>
    drainViolations()
    {
        std::vector<std::string> out;
        out.swap(violations_);
        return out;
    }

    bool hasViolations() const { return !violations_.empty(); }

  private:
    State state_;
    std::vector<std::string> violations_;
};

} // namespace gtsc::verify

#endif // GTSC_VERIFY_ORACLE_HH_
