/**
 * @file
 * ModelSim: the exhaustive explorer's harness around the *real*
 * G-TSC controllers (GtscL1/GtscL2, not a re-model).
 *
 * A tiny machine (N SMs x 1 warp, one L2 partition, a handful of
 * cache lines) is driven at the granularity the model checker needs:
 * every coherence message a controller sends is captured by the
 * harness instead of entering a network, and delivery is an explicit
 * transition. Between transitions the machine is run to a *settled*
 * point — event queue empty, DRAM idle, every controller with no
 * tick() work — where the complete system state is capturable and
 * restorable via the core verify hooks (core/gtsc_state.hh).
 *
 * Messages are held FIFO per source SM (matching the real NoC's
 * per-pair ordering); interleavings *across* SMs are the explored
 * nondeterminism. Time only moves forward: restore() rewinds state,
 * never the clock, which is sound because a settled G-TSC state's
 * behaviour is cycle-independent (nothing consults absolute time).
 */

#ifndef GTSC_VERIFY_MODEL_HH_
#define GTSC_VERIFY_MODEL_HH_

#include <memory>
#include <string>
#include <vector>

#include "core/gtsc_l1.hh"
#include "core/gtsc_l2.hh"
#include "core/ts_domain.hh"
#include "mem/dram.hh"
#include "mem/main_memory.hh"
#include "obs/transcript.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "verify/invariants.hh"
#include "verify/oracle.hh"
#include "verify/state.hh"

namespace gtsc::verify
{

/** Base address of the explored lines (one L2 partition). */
inline constexpr Addr kVerifyBase = 0x10000000;

/**
 * Model configuration (verify.* keys):
 *  - verify.sms (2): SMs / concurrent threads
 *  - verify.lines (2): distinct cache lines explored
 *  - verify.ops_per_thread (2): load/store budget per thread (2
 *    closes completely under SC and RC; 3 is a much longer run)
 *  - verify.consistency ("sc"): sc = 1 outstanding op per thread,
 *    rc = verify.max_outstanding (2) ops in flight
 *  - verify.boosts (0): spin-retry timestamp-boost budget per thread
 *    (drives the lease-renewal and rollover paths)
 *  - verify.evictions (1): explore forced L1/L2 evictions
 *  - verify.settle_cap (20000): cycles before a non-settling state is
 *    reported as a deadlock
 * Protocol knobs (gtsc.ts_bits, gtsc.lease, gtsc.update_visibility,
 * verify.mutation, ...) pass through to the controllers unchanged.
 */
class ModelSim
{
  public:
    explicit ModelSim(const sim::Config &user_cfg);

    unsigned numSms() const { return sms_; }
    unsigned numLines() const { return lines_; }

    Addr
    lineAddr(unsigned idx) const
    {
        return kVerifyBase + Addr{idx} * mem::kLineBytes;
    }

    Ts tsMax() const { return domain_.tsMax(); }
    Cycle now() const { return now_; }

    InvariantParams
    invariantParams() const
    {
        return InvariantParams{domain_.tsMax(), domain_.lease()};
    }

    /** Result of settling after one transition. */
    struct StepOutcome
    {
        WorldState state;
        /** Oracle + state-invariant + transition + deadlock reports. */
        std::vector<std::string> violations;
    };

    /** Settle the freshly constructed machine and capture the root. */
    StepOutcome init();

    /**
     * Restore `from`, apply `action` (which must be enabled in
     * `from`), settle, capture and check. The heart of the DFS.
     */
    StepOutcome step(const WorldState &from, const Action &action);

    /** Transitions enabled in a settled state. Deterministic order. */
    std::vector<Action> enabledActions(const WorldState &w) const;

    /**
     * A settled state is terminal when no actions remain. It is a
     * *clean* terminal only if every thread finished every op;
     * otherwise an op got stuck (lost message / dropped completion)
     * and the explorer reports it.
     */
    std::vector<std::string> checkTerminal(const WorldState &w) const;

    /** Message-delivery transcript (PR-3 obs format), for witnesses. */
    const obs::Transcript &transcript() const { return *transcript_; }

    /** Start a fresh transcript (witness replay wants only its own
     *  message history). */
    void clearTranscript();

    WorldState capture();
    void restore(const WorldState &w);

  private:
    void applyAction(const Action &action);
    bool settle();
    bool settled() const;

    sim::Config cfg_;
    sim::StatSet stats_;
    sim::EventQueue events_;
    mem::MainMemory memory_;
    VersionOracle oracle_;
    std::unique_ptr<core::TsDomain> domainPtr_;
    core::TsDomain &domain_;
    std::unique_ptr<mem::DramChannel> dram_;
    std::unique_ptr<core::GtscL2> l2_;
    std::vector<std::unique_ptr<core::GtscL1>> l1s_;
    std::unique_ptr<obs::Transcript> transcript_;

    std::vector<mem::Packet> pendingReqs_;
    std::vector<mem::Packet> pendingResps_;
    std::vector<ThreadState> threads_;
    std::uint64_t nextAccessId_ = 1;
    Cycle now_ = 0;

    unsigned sms_;
    unsigned lines_;
    unsigned opsPerThread_;
    unsigned maxOutstanding_;
    unsigned boostBudget_;
    bool evictions_;
    unsigned settleCap_;
};

} // namespace gtsc::verify

#endif // GTSC_VERIFY_MODEL_HH_
