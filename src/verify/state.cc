#include "verify/state.hh"

#include <algorithm>
#include <map>
#include <sstream>

namespace gtsc::verify
{

std::string
Action::describe() const
{
    std::ostringstream oss;
    switch (kind)
    {
    case Kind::IssueLoad:
        oss << "sm" << sm << ": load line" << line;
        break;
    case Kind::IssueStore:
        oss << "sm" << sm << ": store line" << line;
        break;
    case Kind::DeliverReq:
        oss << "deliver request of sm" << sm;
        break;
    case Kind::DeliverResp:
        oss << "deliver response to sm" << sm;
        break;
    case Kind::EvictL1:
        oss << "sm" << sm << ": evict L1 line" << line;
        break;
    case Kind::EvictL2:
        oss << "evict L2 line" << line;
        break;
    case Kind::Boost:
        oss << "sm" << sm << ": spin ts boost";
        break;
    }
    return oss.str();
}

namespace
{

/** Byte-appending serializer. */
struct Sink
{
    std::string out;

    void
    u8(std::uint8_t v)
    {
        out.push_back(static_cast<char>(v));
    }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            u8(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            u8(static_cast<std::uint8_t>(v >> (8 * i)));
    }
};

/**
 * Order-preserving dense renumbering of request ids. Relative id
 * order is behaviour (ack matching, replay sequencing); absolute
 * values are history.
 */
struct IdMap
{
    std::map<std::uint64_t, std::uint64_t> map;

    void
    note(std::uint64_t id)
    {
        if (id)
            map.emplace(id, 0);
    }

    void
    seal()
    {
        std::uint64_t next = 1;
        for (auto &[id, dense] : map)
            dense = next++;
    }

    std::uint64_t
    operator[](std::uint64_t id) const
    {
        if (!id)
            return 0;
        auto it = map.find(id);
        return it == map.end() ? id : it->second;
    }
};

void
putLine(Sink &s, const core::VerifyLineState &l)
{
    s.u64(l.lineAddr);
    s.u8(l.dirty ? 1 : 0);
    s.u64(l.meta.wts);
    s.u64(l.meta.rts);
    s.u32(l.meta.epoch);
    s.u8(l.meta.renewStreak);
    for (unsigned w = 0; w < mem::kWordsPerLine; ++w)
        s.u32(l.data.word(w));
}

void
putAccess(Sink &s, const mem::Access &a, const IdMap &ids)
{
    s.u8(a.isStore ? 1 : 0);
    s.u64(a.lineAddr);
    s.u32(a.wordMask);
    for (unsigned w = 0; w < mem::kWordsPerLine; ++w)
    {
        if (a.wordMask & (1u << w))
            s.u32(a.storeData.word(w));
    }
    s.u32(a.sm);
    s.u32(a.warp);
    s.u64(ids[a.id]);
    s.u8(a.replayed ? 1 : 0);
}

void
putPacket(Sink &s, const mem::Packet &p, const IdMap &ids)
{
    s.u8(static_cast<std::uint8_t>(p.type));
    s.u64(p.lineAddr);
    s.u32(p.src);
    s.u32(p.part);
    s.u32(p.warp);
    s.u64(p.wts);
    s.u64(p.rts);
    s.u64(p.warpTs);
    s.u64(p.prevWts);
    s.u32(p.epoch);
    s.u8(p.tsReset ? 1 : 0);
    s.u32(p.wordMask);
    if (mem::carriesData(p.type))
    {
        for (unsigned w = 0; w < mem::kWordsPerLine; ++w)
            s.u32(p.data.word(w));
    }
    s.u64(ids[p.reqId]);
}

/** Stable sort of held messages by source SM (see file comment). */
std::vector<const mem::Packet *>
canonicalOrder(const std::vector<mem::Packet> &pkts)
{
    std::vector<const mem::Packet *> order;
    order.reserve(pkts.size());
    for (const auto &p : pkts)
        order.push_back(&p);
    std::stable_sort(order.begin(), order.end(),
                     [](const mem::Packet *a, const mem::Packet *b) {
                         return a->src < b->src;
                     });
    return order;
}

} // namespace

std::string
canonicalKey(const WorldState &w)
{
    IdMap ids;
    for (const auto &l1 : w.l1)
    {
        for (const auto &ps : l1.pendingStores)
        {
            ids.note(ps.id);
            ids.note(ps.access.id);
        }
        for (const auto &[line, id] : l1.storeByLine)
            ids.note(id);
        for (const auto &m : l1.mshr)
            for (const auto &a : m.waiters)
                ids.note(a.id);
        for (const auto &a : l1.replayQueue)
            ids.note(a.id);
    }
    for (const auto &p : w.reqs)
        ids.note(p.reqId);
    for (const auto &p : w.resps)
        ids.note(p.reqId);
    ids.seal();

    Sink s;
    s.u32(static_cast<std::uint32_t>(w.l1.size()));
    for (const auto &l1 : w.l1)
    {
        s.u32(static_cast<std::uint32_t>(l1.lines.size()));
        for (const auto &l : l1.lines)
            putLine(s, l);
        s.u32(static_cast<std::uint32_t>(l1.warpTs.size()));
        for (Ts t : l1.warpTs)
            s.u64(t);
        s.u32(l1.epoch);
        s.u32(static_cast<std::uint32_t>(l1.pendingStores.size()));
        for (const auto &ps : l1.pendingStores)
        {
            s.u64(ids[ps.id]);
            putAccess(s, ps.access, ids);
            s.u64(ps.baseWts);
            s.u8(ps.hadBlock ? 1 : 0);
        }
        s.u32(static_cast<std::uint32_t>(l1.storeByLine.size()));
        for (const auto &[line, id] : l1.storeByLine)
        {
            s.u64(line);
            s.u64(ids[id]);
        }
        s.u32(static_cast<std::uint32_t>(l1.mshr.size()));
        for (const auto &m : l1.mshr)
        {
            s.u64(m.lineAddr);
            s.u8(m.requestSent ? 1 : 0);
            s.u32(m.outstanding);
            s.u8(m.lockWait ? 1 : 0);
            s.u64(m.requestWts);
            s.u32(static_cast<std::uint32_t>(m.waiters.size()));
            for (const auto &a : m.waiters)
                putAccess(s, a, ids);
        }
        s.u32(static_cast<std::uint32_t>(l1.replayQueue.size()));
        for (const auto &a : l1.replayQueue)
            putAccess(s, a, ids);
    }

    s.u32(static_cast<std::uint32_t>(w.l2.lines.size()));
    for (const auto &l : w.l2.lines)
        putLine(s, l);
    s.u64(w.l2.memTs);
    s.u32(w.domain.epoch);

    s.u32(static_cast<std::uint32_t>(w.reqs.size()));
    for (const mem::Packet *p : canonicalOrder(w.reqs))
        putPacket(s, *p, ids);
    s.u32(static_cast<std::uint32_t>(w.resps.size()));
    for (const mem::Packet *p : canonicalOrder(w.resps))
        putPacket(s, *p, ids);

    s.u32(static_cast<std::uint32_t>(w.threads.size()));
    for (const auto &t : w.threads)
    {
        s.u32(t.issued);
        s.u32(t.outstanding);
        s.u32(t.boosts);
    }

    s.u32(static_cast<std::uint32_t>(w.memLines.size()));
    for (const auto &d : w.memLines)
        for (unsigned i = 0; i < mem::kWordsPerLine; ++i)
            s.u32(d.word(i));

    s.u32(w.oracle.epoch);
    s.u32(static_cast<std::uint32_t>(w.oracle.words.size()));
    for (const auto &[addr, hist] : w.oracle.words)
    {
        s.u64(addr);
        s.u32(static_cast<std::uint32_t>(hist.size()));
        for (const auto &v : hist)
        {
            s.u32(v.epoch);
            s.u64(v.wts);
            s.u32(v.value);
        }
    }
    return std::move(s.out);
}

Hash128
hashKey(const std::string &key)
{
    // Two independent mixes of the same byte stream: FNV-1a and a
    // rotate-multiply accumulator. 128 bits keeps the visited set
    // collision-free in practice without storing full keys.
    std::uint64_t fnv = 0xcbf29ce484222325ULL;
    std::uint64_t acc = 0x6a09e667f3bcc909ULL;
    for (unsigned char c : key)
    {
        fnv = (fnv ^ c) * 0x100000001b3ULL;
        acc ^= c;
        acc = ((acc << 31) | (acc >> 33)) * 0x9e3779b97f4a7c15ULL;
    }
    return Hash128{fnv, acc};
}

} // namespace gtsc::verify
