#include "verify/litmus_gen.hh"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

#include "harness/runner.hh"
#include "sim/log.hh"
#include "sim/rng.hh"
#include "verify/shrink.hh"

namespace gtsc::verify
{

using workloads::LitmusSpec;
using Op = LitmusSpec::Op;
using Term = LitmusSpec::Term;

namespace
{

Op
store(std::uint8_t loc, std::uint32_t val)
{
    Op op;
    op.kind = Op::Kind::Store;
    op.loc = loc;
    op.value = val;
    return op;
}

Op
load(std::uint8_t loc, std::uint8_t reg)
{
    Op op;
    op.kind = Op::Kind::Load;
    op.loc = loc;
    op.reg = reg;
    return op;
}

Op
fence()
{
    Op op;
    op.kind = Op::Kind::Fence;
    return op;
}

Op
delay(std::uint16_t cycles)
{
    Op op;
    op.kind = Op::Kind::Delay;
    op.cycles = cycles;
    return op;
}

/** `n` distinct locations. Small line/word ranges keep contention
 *  high; same-line different-word pairs exercise false sharing. */
std::vector<LitmusSpec::Loc>
pickLocs(sim::Rng &rng, unsigned n)
{
    std::set<std::pair<std::uint8_t, std::uint8_t>> used;
    std::vector<LitmusSpec::Loc> locs;
    while (locs.size() < n)
    {
        auto line = static_cast<std::uint8_t>(rng.below(2));
        auto word = static_cast<std::uint8_t>(rng.below(4));
        if (used.emplace(line, word).second)
            locs.push_back(LitmusSpec::Loc{line, word});
    }
    return locs;
}

/** Randomly jitter thread timing with Delay ops (never changes the
 *  outcome oracle, only which interleavings the run lands on). */
void
sprinkleDelays(sim::Rng &rng, std::vector<std::vector<Op>> &threads)
{
    for (auto &ops : threads)
    {
        std::vector<Op> out;
        for (const Op &op : ops)
        {
            if (rng.chance(0.3))
                out.push_back(delay(static_cast<std::uint16_t>(
                    1 + rng.below(30))));
            out.push_back(op);
        }
        ops = std::move(out);
    }
}

Term
term(std::uint8_t thread, std::uint8_t reg, std::uint32_t value)
{
    return Term{thread, reg, value};
}

LitmusSpec
makeRandmix(sim::Rng &rng)
{
    LitmusSpec spec;
    const unsigned threads = 2 + static_cast<unsigned>(rng.below(2));
    spec.locs = pickLocs(rng, 2);
    std::uint32_t nextVal = 1;
    bool anyLoad = false;
    for (unsigned t = 0; t < threads; ++t)
    {
        std::vector<Op> ops;
        std::uint8_t nextReg = 0;
        const unsigned n = 2 + static_cast<unsigned>(rng.below(2));
        for (unsigned i = 0; i < n; ++i)
        {
            auto loc = static_cast<std::uint8_t>(rng.below(2));
            if (rng.chance(0.5) && nextReg < workloads::kLitmusMaxRegs)
            {
                ops.push_back(load(loc, nextReg++));
                anyLoad = true;
            }
            else
            {
                ops.push_back(store(loc, nextVal++));
            }
            // Fully fenced: program order holds under RC too, so the
            // SC interleaving enumeration is the complete outcome set.
            ops.push_back(fence());
        }
        spec.threads.push_back(std::move(ops));
    }
    if (!anyLoad)
    {
        spec.threads[0].push_back(load(0, 0));
        spec.threads[0].push_back(fence());
    }
    spec.forbid = scForbiddenClauses(spec);
    return spec;
}

/** Last load into each (thread, reg), program order. */
std::vector<std::tuple<std::uint8_t, std::uint8_t, std::uint8_t>>
loadedRegs(const LitmusSpec &spec)
{
    std::map<std::pair<std::uint8_t, std::uint8_t>, std::uint8_t> last;
    for (std::size_t t = 0; t < spec.threads.size(); ++t)
    {
        for (const Op &op : spec.threads[t])
        {
            if (op.kind == Op::Kind::Load)
                last[{static_cast<std::uint8_t>(t), op.reg}] = op.loc;
        }
    }
    std::vector<std::tuple<std::uint8_t, std::uint8_t, std::uint8_t>>
        out;
    for (const auto &[key, loc] : last)
        out.emplace_back(key.first, key.second, loc);
    return out;
}

} // namespace

const std::vector<std::string> &
litmusShapes()
{
    static const std::vector<std::string> kShapes = {
        "mp", "sb", "lb", "corr", "coww", "iriw", "randmix"};
    return kShapes;
}

LitmusSpec
makeLitmusSpec(const std::string &shape, std::uint64_t seed)
{
    sim::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
    LitmusSpec spec;
    const auto a = static_cast<std::uint32_t>(1 + rng.below(9));
    const auto b = static_cast<std::uint32_t>(a + 1 + rng.below(9));

    if (shape == "mp")
    {
        // data = a, then flag = b; reader sees the flag => the data.
        spec.locs = pickLocs(rng, 2);
        spec.threads = {{store(0, a), fence(), store(1, b)},
                        {load(1, 0), fence(), load(0, 1)}};
        spec.forbid = {{term(1, 0, b), term(1, 1, 0)}};
    }
    else if (shape == "sb")
    {
        // Dekker: both stores buffered past the opposite load.
        spec.locs = pickLocs(rng, 2);
        spec.threads = {{store(0, a), fence(), load(1, 0)},
                        {store(1, b), fence(), load(0, 0)}};
        spec.forbid = {{term(0, 0, 0), term(1, 0, 0)}};
    }
    else if (shape == "lb")
    {
        // Values out of thin air: each load sees the other's store.
        spec.locs = pickLocs(rng, 2);
        spec.threads = {{load(0, 0), fence(), store(1, b)},
                        {load(1, 0), fence(), store(0, a)}};
        spec.forbid = {{term(0, 0, a), term(1, 0, b)}};
    }
    else if (shape == "corr")
    {
        // Read-read coherence: no fences — the protocol alone must
        // keep same-location reads from going back in time.
        spec.locs = pickLocs(rng, 1);
        spec.threads = {{store(0, a)}, {load(0, 0), load(0, 1)}};
        spec.forbid = {{term(1, 0, a), term(1, 1, 0)}};
    }
    else if (shape == "coww")
    {
        // Write serialization: nobody observes a, b as b-then-a.
        spec.locs = pickLocs(rng, 1);
        spec.threads = {{store(0, a), store(0, b)},
                        {load(0, 0), load(0, 1)}};
        spec.forbid = {{term(1, 0, b), term(1, 1, a)}};
    }
    else if (shape == "iriw")
    {
        // Independent reads of independent writes: the two readers
        // must agree on the write order. Needs store atomicity on
        // top of program order, so it runs under SC only.
        spec.scOnly = true;
        spec.locs = pickLocs(rng, 2);
        spec.threads = {{store(0, a)},
                        {store(1, b)},
                        {load(0, 0), load(1, 1)},
                        {load(1, 0), load(0, 1)}};
        spec.forbid = {{term(2, 0, a), term(2, 1, 0), term(3, 0, b),
                        term(3, 1, 0)}};
    }
    else if (shape == "randmix")
    {
        spec = makeRandmix(rng);
    }
    else
    {
        GTSC_FATAL("unknown litmus shape '", shape, "'");
    }

    sprinkleDelays(rng, spec.threads);
    spec.shape = shape;
    spec.seed = seed;
    return spec;
}

std::vector<std::vector<std::uint32_t>>
enumerateScOutcomes(const LitmusSpec &spec)
{
    const auto regs = loadedRegs(spec);
    const std::size_t nThreads = spec.threads.size();

    // Interleaving DFS with memoized (pcs, mem, regs) states: the
    // state space is tiny (pc product x few values) even when the
    // raw interleaving count is not.
    struct State
    {
        std::vector<std::size_t> pc;
        std::map<std::uint8_t, std::uint32_t> mem;
        std::map<std::pair<std::uint8_t, std::uint8_t>, std::uint32_t>
            reg;
    };
    auto encode = [](const State &s) {
        std::ostringstream oss;
        for (auto p : s.pc)
            oss << p << ",";
        oss << ";";
        for (const auto &[l, v] : s.mem)
            oss << int(l) << "=" << v << ",";
        oss << ";";
        for (const auto &[k, v] : s.reg)
            oss << int(k.first) << "." << int(k.second) << "=" << v
                << ",";
        return std::move(oss).str();
    };

    std::set<std::string> visited;
    std::set<std::vector<std::uint32_t>> outcomes;
    std::vector<State> work;
    work.push_back(State{std::vector<std::size_t>(nThreads, 0), {}, {}});
    visited.insert(encode(work.back()));

    while (!work.empty())
    {
        State s = std::move(work.back());
        work.pop_back();
        bool done = true;
        for (std::size_t t = 0; t < nThreads; ++t)
        {
            if (s.pc[t] >= spec.threads[t].size())
                continue;
            done = false;
            State n = s;
            const Op &op = spec.threads[t][n.pc[t]++];
            if (op.kind == Op::Kind::Store)
            {
                n.mem[op.loc] = op.value;
            }
            else if (op.kind == Op::Kind::Load)
            {
                auto it = n.mem.find(op.loc);
                n.reg[{static_cast<std::uint8_t>(t), op.reg}] =
                    it == n.mem.end() ? 0 : it->second;
            }
            if (visited.insert(encode(n)).second)
                work.push_back(std::move(n));
        }
        if (done)
        {
            std::vector<std::uint32_t> outcome;
            for (const auto &[t, r, loc] : regs)
            {
                (void)loc;
                auto it = s.reg.find({t, r});
                outcome.push_back(it == s.reg.end() ? 0 : it->second);
            }
            outcomes.insert(std::move(outcome));
        }
    }
    return {outcomes.begin(), outcomes.end()};
}

std::vector<std::vector<Term>>
scForbiddenClauses(const LitmusSpec &spec, std::size_t maxClauses)
{
    const auto regs = loadedRegs(spec);
    if (regs.empty())
        return {};

    // Value domain of each loaded register: initial 0 plus every
    // value some thread stores to that register's location.
    std::vector<std::vector<std::uint32_t>> domains;
    for (const auto &[t, r, loc] : regs)
    {
        (void)t;
        (void)r;
        std::set<std::uint32_t> dom = {0};
        for (const auto &ops : spec.threads)
            for (const Op &op : ops)
                if (op.kind == Op::Kind::Store && op.loc == loc)
                    dom.insert(op.value);
        domains.emplace_back(dom.begin(), dom.end());
    }

    std::set<std::vector<std::uint32_t>> reachable;
    for (auto &o : enumerateScOutcomes(spec))
        reachable.insert(std::move(o));

    std::vector<std::vector<Term>> clauses;
    std::vector<std::size_t> idx(regs.size(), 0);
    while (true)
    {
        std::vector<std::uint32_t> outcome;
        for (std::size_t i = 0; i < regs.size(); ++i)
            outcome.push_back(domains[i][idx[i]]);
        if (!reachable.count(outcome))
        {
            std::vector<Term> clause;
            for (std::size_t i = 0; i < regs.size(); ++i)
                clause.push_back(term(std::get<0>(regs[i]),
                                      std::get<1>(regs[i]),
                                      outcome[i]));
            clauses.push_back(std::move(clause));
            if (clauses.size() >= maxClauses)
                break;
        }
        std::size_t i = 0;
        for (; i < idx.size(); ++i)
        {
            if (++idx[i] < domains[i].size())
                break;
            idx[i] = 0;
        }
        if (i == idx.size())
            break;
    }
    return clauses;
}

std::vector<std::pair<std::string, std::string>>
litmusMatrix(const LitmusSpec &spec)
{
    static const char *kProtocols[] = {"gtsc", "tc", "nol1"};
    std::vector<std::pair<std::string, std::string>> cells;
    for (const char *p : kProtocols)
    {
        cells.emplace_back(p, "sc");
        if (!spec.scOnly)
            cells.emplace_back(p, "rc");
    }
    return cells;
}

bool
runLitmusCell(const sim::Config &base, const LitmusSpec &spec,
              const std::string &protocol,
              const std::string &consistency)
{
    sim::Config cfg = base;
    cfg.set("verify.litmus_spec", spec.format());
    cfg.setInt("gpu.num_sms",
               std::max<std::int64_t>(
                   static_cast<std::int64_t>(spec.threads.size()), 2));
    cfg.setInt("gpu.warps_per_sm", 1);
    auto r = harness::runOne(cfg, protocol, consistency, "litmusgen");
    return r.verified && r.checkerViolations == 0;
}

LitmusSpec
shrinkLitmus(const sim::Config &base, const LitmusSpec &spec,
             const std::string &protocol,
             const std::string &consistency)
{
    // Flattened (thread, op index) list; threads themselves survive
    // (an empty thread still runs and writes nothing).
    std::vector<std::pair<std::size_t, std::size_t>> all;
    for (std::size_t t = 0; t < spec.threads.size(); ++t)
        for (std::size_t i = 0; i < spec.threads[t].size(); ++i)
            all.emplace_back(t, i);

    auto build = [&](const std::vector<std::pair<std::size_t,
                                                 std::size_t>> &keep) {
        LitmusSpec out = spec;
        std::set<std::pair<std::size_t, std::size_t>> kept(
            keep.begin(), keep.end());
        for (std::size_t t = 0; t < out.threads.size(); ++t)
        {
            std::vector<Op> ops;
            for (std::size_t i = 0; i < spec.threads[t].size(); ++i)
                if (kept.count({t, i}))
                    ops.push_back(spec.threads[t][i]);
            out.threads[t] = std::move(ops);
        }
        // Clauses naming a register whose load was removed can never
        // fire (the slot keeps its sentinel): drop them.
        std::set<std::pair<std::uint8_t, std::uint8_t>> stillLoaded;
        for (const auto &[t, r, loc] : loadedRegs(out))
        {
            (void)loc;
            stillLoaded.emplace(t, r);
        }
        std::vector<std::vector<Term>> forbid;
        for (const auto &clause : out.forbid)
        {
            bool live = true;
            for (const Term &tm : clause)
                live &= stillLoaded.count({tm.thread, tm.reg}) > 0;
            if (live)
                forbid.push_back(clause);
        }
        out.forbid = std::move(forbid);
        return out;
    };

    auto minimal = ddmin(
        std::move(all),
        [&](const std::vector<std::pair<std::size_t, std::size_t>> &c) {
            return !runLitmusCell(base, build(c), protocol,
                                  consistency);
        });
    return build(minimal);
}

LitmusBatchResult
runLitmusBatch(const sim::Config &base, std::uint64_t seed,
               unsigned count)
{
    LitmusBatchResult result;
    const auto &shapes = litmusShapes();
    for (unsigned i = 0; i < count; ++i)
    {
        const std::string &shape = shapes[i % shapes.size()];
        const std::uint64_t testSeed = seed + i;
        LitmusSpec spec = makeLitmusSpec(shape, testSeed);
        ++result.tests;
        for (const auto &[protocol, consistency] : litmusMatrix(spec))
        {
            ++result.runs;
            if (runLitmusCell(base, spec, protocol, consistency))
                continue;
            LitmusFailure f;
            f.protocol = protocol;
            f.consistency = consistency;
            f.seed = testSeed;
            f.spec = shrinkLitmus(base, spec, protocol, consistency);
            std::ostringstream oss;
            oss << "=== litmus failure ===\n"
                << "shape=" << shape << " seed=" << testSeed
                << " cell=" << protocol << "/" << consistency << "\n"
                << "original: " << spec.format() << "\n"
                << "shrunk:   " << f.spec.format() << "\n"
                << "replay: gtsc_verify --litmus-replay '"
                << f.spec.format() << "' protocol=" << protocol
                << " gpu.consistency=" << consistency << "\n";
            f.report = std::move(oss).str();
            result.failures.push_back(std::move(f));
        }
    }
    return result;
}

} // namespace gtsc::verify
