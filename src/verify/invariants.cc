#include "verify/invariants.hh"

#include <map>
#include <set>
#include <sstream>
#include <utility>

namespace gtsc::verify
{

namespace
{

std::string
lineName(Addr a)
{
    std::ostringstream oss;
    oss << "0x" << std::hex << a;
    return oss.str();
}

void
violate(std::vector<std::string> &out, const char *name,
        const std::string &detail)
{
    out.push_back(std::string(name) + ": " + detail);
}

const core::VerifyLineState *
findLine(const std::vector<core::VerifyLineState> &lines, Addr addr)
{
    for (const auto &l : lines)
    {
        if (l.lineAddr == addr)
            return &l;
    }
    return nullptr;
}

} // namespace

std::vector<std::string>
checkStateInvariants(const WorldState &w, const InvariantParams &p)
{
    std::vector<std::string> out;

    // Lines any L1 currently owns via an in-flight store: exempt from
    // the shared-data check (locally merged words precede the ack).
    std::set<Addr> storeLocked;
    for (const auto &l1 : w.l1)
        for (const auto &[line, id] : l1.storeByLine)
            storeLocked.insert(line);

    auto checkLine = [&](const core::VerifyLineState &l,
                         const std::string &where) {
        if (l.meta.wts > l.meta.rts)
        {
            std::ostringstream oss;
            oss << where << " line " << lineName(l.lineAddr) << " wts "
                << l.meta.wts << " > rts " << l.meta.rts;
            violate(out, "WtsRtsOrder", oss.str());
        }
        if (l.meta.wts > p.tsMax || l.meta.rts > p.tsMax)
        {
            std::ostringstream oss;
            oss << where << " line " << lineName(l.lineAddr) << " wts "
                << l.meta.wts << " rts " << l.meta.rts
                << " exceeds ts_max " << p.tsMax;
            violate(out, "TsBound", oss.str());
        }
    };

    for (std::size_t sm = 0; sm < w.l1.size(); ++sm)
    {
        const auto &l1 = w.l1[sm];
        std::string where = "L1[sm" + std::to_string(sm) + "]";
        for (const auto &l : l1.lines)
        {
            checkLine(l, where);
            if (l.meta.epoch != l1.epoch)
            {
                std::ostringstream oss;
                oss << where << " line " << lineName(l.lineAddr)
                    << " epoch " << l.meta.epoch
                    << " != adopted epoch " << l1.epoch;
                violate(out, "L1LineEpoch", oss.str());
            }
        }
        for (Ts t : l1.warpTs)
        {
            if (t > p.tsMax)
            {
                std::ostringstream oss;
                oss << where << " warp_ts " << t << " exceeds ts_max "
                    << p.tsMax;
                violate(out, "TsBound", oss.str());
            }
        }
        if (l1.epoch > w.domain.epoch)
        {
            std::ostringstream oss;
            oss << where << " adopted epoch " << l1.epoch
                << " ahead of domain epoch " << w.domain.epoch;
            violate(out, "L1LineEpoch", oss.str());
        }

        // Lease containment against the L2 — only for L1s that have
        // adopted the current epoch (stale L1s flush on next touch).
        if (l1.epoch == w.domain.epoch)
        {
            for (const auto &l : l1.lines)
            {
                const auto *l2l = findLine(w.l2.lines, l.lineAddr);
                if (!l2l)
                {
                    if (l.meta.rts > w.l2.memTs)
                    {
                        std::ostringstream oss;
                        oss << where << " line " << lineName(l.lineAddr)
                            << " rts " << l.meta.rts
                            << " > mem_ts " << w.l2.memTs
                            << " with no L2 copy";
                        violate(out, "MemTsDominance", oss.str());
                    }
                    continue;
                }
                if (l.meta.wts > l2l->meta.wts)
                {
                    std::ostringstream oss;
                    oss << where << " line " << lineName(l.lineAddr)
                        << " wts " << l.meta.wts << " newer than L2 wts "
                        << l2l->meta.wts;
                    violate(out, "L1L2Containment", oss.str());
                }
                else if (l.meta.wts == l2l->meta.wts)
                {
                    if (l.meta.rts > l2l->meta.rts)
                    {
                        std::ostringstream oss;
                        oss << where << " line " << lineName(l.lineAddr)
                            << " same version wts " << l.meta.wts
                            << " but rts " << l.meta.rts << " > L2 rts "
                            << l2l->meta.rts;
                        violate(out, "L1L2Containment", oss.str());
                    }
                }
                else if (l.meta.rts > l2l->meta.wts)
                {
                    std::ostringstream oss;
                    oss << where << " line " << lineName(l.lineAddr)
                        << " old version wts " << l.meta.wts << " rts "
                        << l.meta.rts
                        << " overlaps newer L2 version wts "
                        << l2l->meta.wts;
                    violate(out, "L1L2Containment", oss.str());
                }
            }
        }

        // In-flight store bookkeeping must agree with itself.
        if (l1.storeByLine.size() != l1.pendingStores.size())
        {
            std::ostringstream oss;
            oss << where << " " << l1.storeByLine.size()
                << " locked lines vs " << l1.pendingStores.size()
                << " pending stores";
            violate(out, "StoreLockConsistency", oss.str());
        }
        for (const auto &[line, id] : l1.storeByLine)
        {
            bool found = false;
            for (const auto &ps : l1.pendingStores)
            {
                if (ps.id == id)
                {
                    found = ps.access.lineAddr == line;
                    break;
                }
            }
            if (!found)
            {
                std::ostringstream oss;
                oss << where << " lock on line " << lineName(line)
                    << " names store id " << id
                    << " with no matching pending store";
                violate(out, "StoreLockConsistency", oss.str());
            }
        }

        for (const auto &m : l1.mshr)
        {
            if (m.waiters.empty())
            {
                violate(out, "MshrLive",
                        where + " empty MSHR entry for line " +
                            lineName(m.lineAddr));
            }
            if (!m.lockWait && m.outstanding == 0)
            {
                std::ostringstream oss;
                oss << where << " MSHR entry for line "
                    << lineName(m.lineAddr)
                    << " expects no response (lost message)";
                violate(out, "MshrLive", oss.str());
            }
        }
    }

    for (const auto &l : w.l2.lines)
        checkLine(l, "L2");
    if (w.l2.memTs > p.tsMax)
    {
        std::ostringstream oss;
        oss << "L2 mem_ts " << w.l2.memTs << " exceeds ts_max "
            << p.tsMax;
        violate(out, "TsBound", oss.str());
    }

    // Same version => same data, across every up-to-date cache.
    std::map<std::pair<Addr, Ts>, const core::VerifyLineState *> seen;
    auto checkCopy = [&](const core::VerifyLineState &l,
                         const std::string &where) {
        if (storeLocked.count(l.lineAddr))
            return;
        auto key = std::make_pair(l.lineAddr, l.meta.wts);
        auto [it, inserted] = seen.emplace(key, &l);
        if (!inserted && !(it->second->data == l.data))
        {
            std::ostringstream oss;
            oss << where << " line " << lineName(l.lineAddr)
                << " version wts " << l.meta.wts
                << " differs from another cached copy of the same "
                   "version";
            violate(out, "SameVersionSameData", oss.str());
        }
    };
    for (const auto &l : w.l2.lines)
        checkCopy(l, "L2");
    for (std::size_t sm = 0; sm < w.l1.size(); ++sm)
    {
        if (w.l1[sm].epoch != w.domain.epoch)
            continue;
        for (const auto &l : w.l1[sm].lines)
            checkCopy(l, "L1[sm" + std::to_string(sm) + "]");
    }

    return out;
}

std::vector<std::string>
checkTransitionInvariants(const WorldState &before,
                          const WorldState &after)
{
    std::vector<std::string> out;
    if (after.domain.epoch < before.domain.epoch)
    {
        std::ostringstream oss;
        oss << "domain epoch rewound " << before.domain.epoch << " -> "
            << after.domain.epoch;
        violate(out, "EpochMonotone", oss.str());
    }
    if (after.domain.epoch != before.domain.epoch)
        return out; // reset rewinds timestamps by design

    if (after.l2.memTs < before.l2.memTs)
    {
        std::ostringstream oss;
        oss << "mem_ts rewound " << before.l2.memTs << " -> "
            << after.l2.memTs;
        violate(out, "MemTsMonotone", oss.str());
    }
    for (const auto &bl : before.l2.lines)
    {
        const auto *al = findLine(after.l2.lines, bl.lineAddr);
        if (al && al->meta.wts < bl.meta.wts)
        {
            std::ostringstream oss;
            oss << "L2 line " << lineName(bl.lineAddr) << " wts rewound "
                << bl.meta.wts << " -> " << al->meta.wts;
            violate(out, "L2WtsMonotone", oss.str());
        }
    }
    for (std::size_t sm = 0;
         sm < before.l1.size() && sm < after.l1.size(); ++sm)
    {
        if (before.l1[sm].epoch != after.l1[sm].epoch)
            continue; // epoch adoption rewinds warp timestamps
        for (std::size_t wid = 0; wid < before.l1[sm].warpTs.size();
             ++wid)
        {
            if (after.l1[sm].warpTs[wid] < before.l1[sm].warpTs[wid])
            {
                std::ostringstream oss;
                oss << "sm" << sm << " warp" << wid << " ts rewound "
                    << before.l1[sm].warpTs[wid] << " -> "
                    << after.l1[sm].warpTs[wid];
                violate(out, "WarpTsMonotone", oss.str());
            }
        }
    }
    return out;
}

} // namespace gtsc::verify
