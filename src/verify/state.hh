/**
 * @file
 * The model checker's world state: every bit of information that
 * determines the future behaviour of the explored system, captured at
 * a settled point (event queue empty, DRAM idle, all in-flight
 * coherence messages held by the harness).
 *
 * Canonicalization quotients the state for visited-set dedup:
 *  - request/response ids are remapped to a dense order-preserving
 *    numbering (absolute ids encode arrival history, not behaviour);
 *  - held messages are stably sorted by source SM (the harness
 *    delivers FIFO per SM, so cross-SM arrival interleavings of the
 *    pending multiset are behaviourally identical);
 *  - diagnostics that never feed back into transitions (LRU stamps,
 *    absolute cycles, injection timestamps, wire sizes) are captured
 *    as zero or omitted by the core snapshot structs already.
 */

#ifndef GTSC_VERIFY_STATE_HH_
#define GTSC_VERIFY_STATE_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "core/gtsc_state.hh"
#include "mem/packet.hh"
#include "verify/oracle.hh"

namespace gtsc::verify
{

/** One transition the model checker can take. */
struct Action
{
    enum class Kind : std::uint8_t
    {
        IssueLoad,   ///< SM `sm` issues a load to line `line`
        IssueStore,  ///< SM `sm` issues a store to line `line`
        DeliverReq,  ///< deliver SM `sm`'s oldest held request to L2
        DeliverResp, ///< deliver the oldest held response to SM `sm`
        EvictL1,     ///< drop line `line` from SM `sm`'s L1
        EvictL2,     ///< evict line `line` from the L2
        Boost,       ///< spin-retry timestamp boost at SM `sm`
    };

    Kind kind = Kind::IssueLoad;
    std::uint16_t sm = 0;
    std::uint16_t line = 0;

    bool
    operator==(const Action &o) const
    {
        return kind == o.kind && sm == o.sm && line == o.line;
    }

    std::string describe() const;
};

/** Per-thread (per-SM, one warp each) exploration bookkeeping. */
struct ThreadState
{
    unsigned issued = 0;      ///< ops issued so far
    unsigned outstanding = 0; ///< ops not yet completed
    unsigned boosts = 0;      ///< Boost actions taken
};

/** Complete settled-system snapshot. */
struct WorldState
{
    std::vector<core::L1VerifyState> l1;
    core::L2VerifyState l2;
    core::TsDomainVerifyState domain;
    /** Held coherence messages, in capture (send) order. */
    std::vector<mem::Packet> reqs;
    std::vector<mem::Packet> resps;
    std::vector<ThreadState> threads;
    /** Backing-memory contents of the tracked lines, line-index order. */
    std::vector<mem::LineData> memLines;
    VersionOracle::State oracle;
    /** Monotone id source; excluded from the canonical key. */
    std::uint64_t nextAccessId = 1;
};

/**
 * Canonical serialization of a world state (see file comment). Two
 * states with equal keys are behaviourally identical under the
 * harness's transition set.
 */
std::string canonicalKey(const WorldState &w);

/** 128-bit hash of a canonical key (visited-set entry). */
struct Hash128
{
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;

    bool
    operator==(const Hash128 &o) const
    {
        return lo == o.lo && hi == o.hi;
    }
};

Hash128 hashKey(const std::string &key);

struct Hash128Hasher
{
    std::size_t
    operator()(const Hash128 &h) const
    {
        return static_cast<std::size_t>(h.lo ^ (h.hi * 0x9e3779b97f4a7c15ULL));
    }
};

} // namespace gtsc::verify

#endif // GTSC_VERIFY_STATE_HH_
