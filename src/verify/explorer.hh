/**
 * @file
 * Exhaustive small-state explorer: DFS over settled simulator states
 * of the real G-TSC controllers (verify::ModelSim), checking the
 * invariant library after every transition and reporting a minimized
 * witness trace on violation.
 *
 * The state space is finite by construction (bounded op budgets,
 * bounded message multisets, canonicalized dedup) but caps guard
 * against blowup anyway:
 *  - verify.max_states (1000000): unique states before giving up
 *  - verify.max_depth (64): DFS depth; deeper states are not expanded
 *  - verify.max_epochs (3): states at or past this domain epoch are
 *    not expanded (bounds rollover exploration)
 *  - verify.max_witnesses (1): stop after this many violations
 * A run is `complete` only if nothing was truncated by any cap and no
 * witness cut the search short — i.e. the reachable space was fully
 * enumerated.
 */

#ifndef GTSC_VERIFY_EXPLORER_HH_
#define GTSC_VERIFY_EXPLORER_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "verify/model.hh"
#include "verify/state.hh"

namespace gtsc::verify
{

struct ExploreStats
{
    std::uint64_t statesVisited = 0; ///< unique canonical states
    std::uint64_t transitions = 0;   ///< step() calls
    std::uint64_t deduped = 0;       ///< transitions into known states
    std::uint64_t truncated = 0;     ///< states not expanded (caps)
    std::uint64_t terminals = 0;     ///< states with no transition
    std::uint64_t maxDepth = 0;
    bool complete = false; ///< full enumeration, nothing truncated
    double seconds = 0.0;
    double statesPerSec = 0.0;
};

/** One invariant violation with its minimized replay. */
struct Witness
{
    /** Minimized action path from the initial state (1-minimal:
     *  removing any single action no longer reproduces). */
    std::vector<Action> actions;
    std::vector<std::string> violations;
    /** Human-readable report: violations, trace, message transcript
     *  in the obs::Transcript format. */
    std::string report;
};

struct ExploreResult
{
    ExploreStats stats;
    std::vector<Witness> witnesses;

    bool ok() const { return witnesses.empty(); }
};

/**
 * Build a ModelSim from `cfg` and exhaust its state space. All
 * verify.* / gtsc.* knobs are read from the config; the run is fully
 * deterministic.
 */
ExploreResult explore(const sim::Config &cfg);

} // namespace gtsc::verify

#endif // GTSC_VERIFY_EXPLORER_HH_
