#include "verify/explorer.hh"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "sim/log.hh"
#include "verify/shrink.hh"

namespace gtsc::verify
{

namespace
{

/**
 * Replay `path` from the initial state. Returns false (and leaves
 * `violations` empty) if some action is not enabled at its turn —
 * shrink candidates routinely drop an action a later one depended on.
 * With `wantTerminal`, the path only "fails" if it ends in a stuck
 * terminal; otherwise any invariant violation along the way counts.
 */
bool
replayFails(ModelSim &model, const WorldState &root,
            const std::vector<Action> &path, bool wantTerminal,
            std::vector<std::string> *violations = nullptr)
{
    WorldState cur = root;
    for (const Action &a : path)
    {
        auto enabled = model.enabledActions(cur);
        if (std::find(enabled.begin(), enabled.end(), a) ==
            enabled.end())
            return false;
        auto out = model.step(cur, a);
        if (!out.violations.empty())
        {
            if (wantTerminal)
                return false;
            if (violations)
                *violations = std::move(out.violations);
            return true;
        }
        cur = std::move(out.state);
    }
    if (!wantTerminal)
        return false;
    if (!model.enabledActions(cur).empty())
        return false;
    auto term = model.checkTerminal(cur);
    if (term.empty())
        return false;
    if (violations)
        *violations = std::move(term);
    return true;
}

Witness
buildWitness(ModelSim &model, const WorldState &root,
             std::vector<Action> path, bool wantTerminal)
{
    Witness w;
    w.actions = ddmin(std::move(path), [&](const std::vector<Action> &c) {
        return replayFails(model, root, c, wantTerminal);
    });

    // One last replay with a fresh transcript: the report's message
    // history covers exactly the minimized trace.
    model.clearTranscript();
    bool fails =
        replayFails(model, root, w.actions, wantTerminal, &w.violations);
    GTSC_ASSERT(fails, "minimized witness stopped reproducing");

    std::ostringstream oss;
    oss << "=== G-TSC verification witness ===\n";
    oss << "violations:\n";
    for (const auto &v : w.violations)
        oss << "  - " << v << "\n";
    oss << "trace (" << w.actions.size() << " actions from reset):\n";
    for (std::size_t i = 0; i < w.actions.size(); ++i)
        oss << "  " << (i + 1) << ". " << w.actions[i].describe()
            << "\n";
    oss << "message transcript:\n";
    model.transcript().writeText(oss);
    w.report = oss.str();
    return w;
}

} // namespace

ExploreResult
explore(const sim::Config &cfg)
{
    ModelSim model(cfg);
    const std::uint64_t maxStates =
        cfg.getUint("verify.max_states", 1000000);
    const std::uint64_t maxDepth = cfg.getUint("verify.max_depth", 64);
    const std::uint32_t maxEpochs = static_cast<std::uint32_t>(
        cfg.getUint("verify.max_epochs", 3));
    const std::uint64_t maxWitnesses =
        cfg.getUint("verify.max_witnesses", 1);

    ExploreResult result;
    ExploreStats &stats = result.stats;
    const auto t0 = std::chrono::steady_clock::now();
    bool capped = false;

    auto init = model.init();
    WorldState root = init.state;
    if (!init.violations.empty())
    {
        Witness w;
        w.violations = init.violations;
        w.report = "=== G-TSC verification witness ===\n"
                   "violations (in the initial state):\n";
        for (const auto &v : w.violations)
            w.report += "  - " + v + "\n";
        result.witnesses.push_back(std::move(w));
    }
    else
    {
        std::unordered_set<Hash128, Hash128Hasher> visited;
        visited.insert(hashKey(canonicalKey(root)));
        stats.statesVisited = 1;

        struct Frame
        {
            WorldState state;
            std::vector<Action> actions;
            std::size_t next = 0;
            /** Action that produced this frame (unused on the root). */
            Action via{};
        };
        std::vector<Frame> stack;
        stack.push_back(
            Frame{root, model.enabledActions(root), 0, Action{}});

        auto currentPath = [&](const Action &last) {
            std::vector<Action> path;
            for (std::size_t i = 1; i < stack.size(); ++i)
                path.push_back(stack[i].via);
            path.push_back(last);
            return path;
        };

        while (!stack.empty())
        {
            Frame &top = stack.back();
            if (top.actions.empty())
            {
                ++stats.terminals;
                if (!model.checkTerminal(top.state).empty())
                {
                    std::vector<Action> path;
                    for (std::size_t i = 1; i < stack.size(); ++i)
                        path.push_back(stack[i].via);
                    result.witnesses.push_back(buildWitness(
                        model, root, std::move(path), true));
                    if (result.witnesses.size() >= maxWitnesses)
                        break;
                }
                stack.pop_back();
                continue;
            }
            if (top.next >= top.actions.size())
            {
                stack.pop_back();
                continue;
            }
            const Action action = top.actions[top.next++];
            ++stats.transitions;
            auto out = model.step(top.state, action);
            if (!out.violations.empty())
            {
                result.witnesses.push_back(buildWitness(
                    model, root, currentPath(action), false));
                if (result.witnesses.size() >= maxWitnesses)
                    break;
                continue;
            }
            if (!visited.insert(hashKey(canonicalKey(out.state)))
                     .second)
            {
                ++stats.deduped;
                continue;
            }
            ++stats.statesVisited;
            if (stats.statesVisited >= maxStates)
            {
                capped = true;
                break;
            }
            const std::uint64_t depth = stack.size();
            stats.maxDepth = std::max(stats.maxDepth, depth);
            if (depth >= maxDepth ||
                out.state.domain.epoch >= maxEpochs)
            {
                ++stats.truncated;
                continue;
            }
            std::vector<Action> actions =
                model.enabledActions(out.state);
            stack.push_back(Frame{std::move(out.state),
                                  std::move(actions), 0, action});
        }
    }

    const auto t1 = std::chrono::steady_clock::now();
    stats.seconds =
        std::chrono::duration<double>(t1 - t0).count();
    stats.statesPerSec =
        stats.seconds > 0.0
            ? static_cast<double>(stats.statesVisited) / stats.seconds
            : 0.0;
    stats.complete =
        !capped && stats.truncated == 0 && result.witnesses.empty();
    return result;
}

} // namespace gtsc::verify
