#include "verify/oracle.hh"

#include <sstream>

namespace gtsc::verify
{

namespace
{

std::string
hex(Addr a)
{
    std::ostringstream oss;
    oss << "0x" << std::hex << a;
    return oss.str();
}

} // namespace

void
VersionOracle::onStoreTs(Addr word_addr, std::uint32_t epoch, Ts wts,
                         std::uint32_t value, SmId sm, WarpId warp)
{
    (void)warp;
    auto &hist = state_.words[word_addr];
    if (!hist.empty() && hist.back().epoch == epoch &&
        wts <= hist.back().wts)
    {
        std::ostringstream oss;
        oss << "StoreWtsMonotone: store by sm" << sm << " at word "
            << hex(word_addr) << " epoch " << epoch << " wts " << wts
            << " value " << value << " not after previous version wts "
            << hist.back().wts << " value " << hist.back().value;
        violations_.push_back(oss.str());
    }
    hist.push_back(Version{epoch, wts, value});
}

void
VersionOracle::onLoadTs(Addr word_addr, std::uint32_t epoch, Ts ts,
                        std::uint32_t value, SmId sm, WarpId warp)
{
    (void)warp;
    // A load from an epoch older than the oracle's is a completion
    // that raced a reset inside the same settle window; its history
    // was collapsed, so it cannot be validated here. (The pre-reset
    // history already validated everything visible at that time.)
    if (epoch < state_.epoch)
        return;

    auto it = state_.words.find(word_addr);
    if (it == state_.words.end() || it->second.empty())
    {
        // Never stored: the load must see the initial value the
        // model wrote to backing memory, which the oracle does not
        // track — nothing to check.
        return;
    }
    const auto &hist = it->second;
    // The version in force at logical time ts: the last one with
    // wts <= ts. Everything before the first version is the initial
    // memory value, which the oracle does not track.
    const Version *current = nullptr;
    for (const Version &v : hist)
    {
        if (v.epoch == epoch && v.wts <= ts)
            current = &v;
        if (v.epoch == epoch && v.wts > ts)
            break;
    }
    if (!current)
        return; // load logically before the first tracked store
    if (value != current->value)
    {
        std::ostringstream oss;
        oss << "LoadSerializability: load by sm" << sm << " at word "
            << hex(word_addr) << " epoch " << epoch << " ts " << ts
            << " observed " << value << " but version wts "
            << current->wts << " holds " << current->value;
        violations_.push_back(oss.str());
    }
}

void
VersionOracle::onEpochReset(std::uint32_t new_epoch)
{
    state_.epoch = new_epoch;
    for (auto &[addr, hist] : state_.words)
    {
        if (hist.empty())
            continue;
        Version last = hist.back();
        hist.clear();
        // The surviving value re-enters the new epoch as the base
        // version: L2 rewinds the line to wts=1 keeping its data.
        hist.push_back(Version{new_epoch, 0, last.value});
    }
}

} // namespace gtsc::verify
