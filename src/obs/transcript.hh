/**
 * @file
 * Protocol transcript: ordered coherence-message history per cache
 * line.
 *
 * Every coherence message crossing the interconnect is logged (at
 * delivery, a single point both request and response traffic passes
 * through in program order) into a bounded per-line history. The
 * harness::CoherenceChecker consults the transcript to report the
 * recent message history of a line when a violation is found —
 * exactly the kind of ordered timestamp transcript the Tardis
 * correctness argument reasons over. An address-range filter keeps
 * the memory bound tight when only one structure is under suspicion.
 */

#ifndef GTSC_OBS_TRANSCRIPT_HH_
#define GTSC_OBS_TRANSCRIPT_HH_

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <string>

#include "sim/types.hh"

namespace gtsc::obs
{

/**
 * One logged message. `msg` must point at a string with static
 * storage duration (mem::msgTypeName qualifies); ts0/ts1 are the
 * protocol's timestamp pair (wts/rts for G-TSC, grant/lease for TC),
 * zero where unused.
 */
struct TranscriptEntry
{
    Cycle cycle = 0;
    Addr line = 0;
    const char *msg = "";
    std::uint16_t src = 0;  ///< SM (requests) or partition (responses)
    std::uint16_t dst = 0;
    std::uint16_t warp = 0;
    bool response = false;
    std::uint64_t ts0 = 0;
    std::uint64_t ts1 = 0;
};

class Transcript
{
  public:
    /**
     * @param depth  messages retained per line (oldest dropped)
     * @param filter "" = all lines; "lo-hi" or "lo:hi" hex line-
     *               address range (inclusive); a single hex value
     *               selects exactly one line. Fatal on parse errors.
     */
    Transcript(std::size_t depth, const std::string &filter);

    /** True when `line` falls inside the configured filter. */
    bool
    wants(Addr line) const
    {
        return line >= lo_ && line <= hi_;
    }

    void log(const TranscriptEntry &e);

    std::size_t depth() const { return depth_; }
    std::size_t numLines() const { return lines_.size(); }
    std::uint64_t totalLogged() const { return total_; }

    /**
     * Render the most recent `n` entries for one line, one per text
     * line, oldest first. Empty string when nothing was logged.
     */
    std::string describeLine(Addr line, std::size_t n) const;

    /** Full dump, lines in address order (deterministic). */
    void writeText(std::ostream &os) const;

  private:
    struct LineLog
    {
        std::uint64_t total = 0;
        std::deque<TranscriptEntry> entries;
    };

    std::size_t depth_;
    Addr lo_ = 0;
    Addr hi_ = ~static_cast<Addr>(0);
    std::uint64_t total_ = 0;
    std::map<Addr, LineLog> lines_;
};

} // namespace gtsc::obs

#endif // GTSC_OBS_TRANSCRIPT_HH_
