/**
 * @file
 * Typed, cycle-stamped trace events.
 *
 * Every instrumented component (SM, L1, L2, NoC, DRAM, MSHR) emits
 * these into a per-component ring buffer owned by obs::Tracer. The
 * struct is a flat POD on purpose: recording one event is a couple of
 * stores, cheap enough to leave compiled in behind a null-pointer
 * check. Field meaning is per-kind (see eventArgNames) so one layout
 * serves every emitter without virtual dispatch or allocation.
 */

#ifndef GTSC_OBS_EVENTS_HH_
#define GTSC_OBS_EVENTS_HH_

#include <array>
#include <cstdint>

#include "sim/types.hh"

namespace gtsc::obs
{

enum class EventKind : std::uint8_t
{
    WarpIssue,     ///< SM issued an instruction for a warp
    WarpStall,     ///< warp entered a wait state (reason in `a2`)
    WarpResume,    ///< warp left a wait state and became ready
    L1Hit,         ///< load serviced from the private cache
    L1MissCold,    ///< load missed with no local copy
    L1MissExpired, ///< load missed on a self-invalidated/expired copy
    L1Renewal,     ///< data-less renewal request sent (G-TSC BusRnw)
    MshrAlloc,     ///< MSHR entry allocated for a line
    MshrRetire,    ///< MSHR entry freed (fill or ack resolved it)
    NocInject,     ///< packet entered the interconnect
    NocDeliver,    ///< packet ejected at its destination
    DramActivate,  ///< DRAM channel started servicing a request
    DramReturn,    ///< DRAM read data returned to the requester
    WtsUpdate,     ///< L2 advanced a block's write timestamp
    LeaseExtend,   ///< L2 extended a block's read lease (rts/leaseEnd)
    EpochReset,    ///< timestamp-overflow epoch rollover
};

inline constexpr unsigned kNumEventKinds = 16;

/** Stable lowercase name used in exported traces. */
const char *eventKindName(EventKind k);

/**
 * Per-kind argument names for the generic fields, in the order
 * {a1, a2, addr, v0, v1}; nullptr = field unused by this kind.
 */
struct EventArgNames
{
    const char *a1;
    const char *a2;
    const char *addr;
    const char *v0;
    const char *v1;
};

const EventArgNames &eventArgNames(EventKind k);

/** WarpStall reasons carried in `a2`. */
enum class StallReason : std::uint16_t
{
    Mem = 0,     ///< waiting on an outstanding memory access
    Fence = 1,   ///< waiting on a fence / outstanding stores
    Compute = 2, ///< compute latency or spin-wait backoff
};

/**
 * One trace event. 40 bytes; meaning of a1/a2/addr/v0/v1 depends on
 * `kind` (see eventArgNames). `cycle` is the simulated cycle the
 * event happened at, which doubles as the trace timestamp.
 */
struct Event
{
    Cycle cycle = 0;
    std::uint64_t addr = 0;
    std::uint64_t v0 = 0;
    std::uint64_t v1 = 0;
    EventKind kind = EventKind::WarpIssue;
    std::uint16_t a1 = 0;
    std::uint16_t a2 = 0;
};

} // namespace gtsc::obs

#endif // GTSC_OBS_EVENTS_HH_
