/**
 * @file
 * One run's worth of observability state.
 *
 * A Session bundles the tracer, the stat timeline and the protocol
 * transcript behind the `obs.*` config knobs and owns writing their
 * output files. Construction is two-phase: fromConfig() decides what
 * is enabled, then bindStats() (called by GpuSystem::attachObs once
 * the run's StatSet exists) instantiates the timeline. When every
 * knob is off, fromConfig() returns nullptr and the simulator runs
 * with zero observability state at all.
 */

#ifndef GTSC_OBS_SESSION_HH_
#define GTSC_OBS_SESSION_HH_

#include <memory>
#include <string>
#include <vector>

#include "obs/timeline.hh"
#include "obs/tracer.hh"
#include "obs/transcript.hh"
#include "sim/types.hh"

namespace gtsc::sim
{
class Config;
class StatSet;
}

namespace gtsc::obs
{

class Session
{
  public:
    /**
     * Build from `obs.*` knobs; nullptr when nothing is enabled.
     *
     *   obs.trace             master switch for event tracing (and,
     *                         by default, transcript + timeline)
     *   obs.ring_capacity     events retained per track
     *   obs.sample_interval   timeline period; 0 = off (defaults to
     *                         1000 when obs.trace is on)
     *   obs.sample_keys       comma-separated counter-name prefixes
     *                         to sample ("" = all counters)
     *   obs.transcript        per-line message history (defaults to
     *                         obs.trace)
     *   obs.transcript_depth  messages kept per line
     *   obs.transcript_filter hex line-address range "lo-hi" ("" =
     *                         every line)
     */
    static std::unique_ptr<Session> fromConfig(const sim::Config &cfg);

    Tracer *tracer() { return tracer_.get(); }
    const Tracer *tracer() const { return tracer_.get(); }
    Transcript *transcript() { return transcript_.get(); }
    const Transcript *transcript() const { return transcript_.get(); }
    StatTimeline *timeline() { return timeline_.get(); }
    const StatTimeline *timeline() const { return timeline_.get(); }

    Cycle sampleInterval() const { return sampleInterval_; }

    /** Create the timeline against the run's StatSet (idempotent). */
    void bindStats(const sim::StatSet &stats);

    /**
     * Write `<stem>.trace.json` / `<stem>.timeline.csv` /
     * `<stem>.transcript.txt` under `dir` (created if missing) for
     * whichever components are enabled. Returns the paths written.
     */
    std::vector<std::string> writeFiles(const std::string &dir,
                                        const std::string &stem) const;

  private:
    Session() = default;

    std::unique_ptr<Tracer> tracer_;
    std::unique_ptr<Transcript> transcript_;
    std::unique_ptr<StatTimeline> timeline_;
    Cycle sampleInterval_ = 0;
    std::vector<std::string> sampleKeys_;
};

/**
 * Deterministic per-run output-file stem:
 * `<workload>_<protocol>_<consistency>_<hash8>` where hash8 is an
 * FNV-1a digest of the run's explicit config string, so sweep runs
 * that differ only in a knob get distinct files.
 */
std::string fileStem(const std::string &workload,
                     const std::string &protocol,
                     const std::string &consistency,
                     const std::string &config_fingerprint);

} // namespace gtsc::obs

#endif // GTSC_OBS_SESSION_HH_
