/**
 * @file
 * Structured event tracer with per-component ring buffers.
 *
 * Components register a named track once (at attach time) and then
 * record events into it; each track keeps the most recent
 * `ringCapacity` events and counts the total ever recorded, so a
 * bounded-memory trace of an arbitrarily long run is always
 * available. Export is Chrome/Perfetto `trace_event` JSON: one
 * "thread" per track, loadable directly in chrome://tracing or
 * ui.perfetto.dev.
 *
 * The hot-path contract: components hold a raw `Tracer *` that is
 * nullptr when tracing is off, so the disabled cost is a single
 * predictable branch (proven in bench/micro_protocol_ops.cc).
 */

#ifndef GTSC_OBS_TRACER_HH_
#define GTSC_OBS_TRACER_HH_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/events.hh"

namespace gtsc::obs
{

class Tracer
{
  public:
    using TrackId = std::uint32_t;

    explicit Tracer(std::size_t ring_capacity = 65536);

    /**
     * Register (or look up) a track by name and return its id.
     * Registration is not hot-path; recording is.
     */
    TrackId track(const std::string &name);

    /** Record one event into a track's ring. */
    void
    record(TrackId t, const Event &e)
    {
        Track &tr = tracks_[t];
        if (tr.ring.size() < capacity_) {
            tr.ring.push_back(e);
        } else {
            tr.ring[tr.next] = e;
            if (++tr.next == capacity_)
                tr.next = 0;
        }
        ++tr.total;
    }

    std::size_t ringCapacity() const { return capacity_; }
    std::size_t numTracks() const { return tracks_.size(); }

    /** Total events recorded across all tracks (including dropped). */
    std::uint64_t totalRecorded() const;

    /** Events currently retained across all tracks. */
    std::uint64_t totalRetained() const;

    /**
     * Visit a track's retained events oldest-first. Returns the
     * track's total recorded count (> retained when the ring
     * wrapped). TrackId must come from track().
     */
    struct Track
    {
        std::string name;
        std::vector<Event> ring;
        std::size_t next = 0;    ///< overwrite cursor once full
        std::uint64_t total = 0; ///< events ever recorded
    };

    const std::vector<Track> &tracks() const { return tracks_; }

    /**
     * Export all tracks as Chrome `trace_event` JSON. Deterministic:
     * track order is registration order, event order is record
     * order. Timestamps are simulated cycles (1 cycle = 1 "us" in
     * the viewer's timeline).
     */
    void writeChromeTrace(std::ostream &os) const;

  private:
    std::size_t capacity_;
    std::vector<Track> tracks_;
};

} // namespace gtsc::obs

#endif // GTSC_OBS_TRACER_HH_
