#include "obs/session.hh"

#include <filesystem>
#include <fstream>

#include "sim/config.hh"
#include "sim/log.hh"
#include "sim/stats.hh"

namespace gtsc::obs
{

namespace
{

std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        std::size_t comma = s.find(',', start);
        if (comma == std::string::npos)
            comma = s.size();
        std::string item = s.substr(start, comma - start);
        if (!item.empty())
            out.push_back(std::move(item));
        start = comma + 1;
    }
    return out;
}

} // namespace

std::unique_ptr<Session>
Session::fromConfig(const sim::Config &cfg)
{
    bool trace = cfg.getBool("obs.trace", false);
    bool transcript = cfg.getBool("obs.transcript", trace);
    Cycle interval =
        cfg.getUint("obs.sample_interval", trace ? 1000 : 0);
    if (!trace && !transcript && interval == 0)
        return nullptr;

    auto s = std::unique_ptr<Session>(new Session);
    if (trace) {
        s->tracer_ = std::make_unique<Tracer>(
            cfg.getUint("obs.ring_capacity", 65536));
    }
    if (transcript) {
        s->transcript_ = std::make_unique<Transcript>(
            cfg.getUint("obs.transcript_depth", 64),
            cfg.getString("obs.transcript_filter", ""));
    }
    s->sampleInterval_ = interval;
    s->sampleKeys_ = splitCsv(cfg.getString("obs.sample_keys", ""));
    return s;
}

void
Session::bindStats(const sim::StatSet &stats)
{
    if (timeline_ || sampleInterval_ == 0)
        return;
    timeline_ = std::make_unique<StatTimeline>(stats, sampleInterval_,
                                               sampleKeys_);
}

std::vector<std::string>
Session::writeFiles(const std::string &dir,
                    const std::string &stem) const
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec)
        GTSC_FATAL("cannot create trace dir '", dir,
                   "': ", ec.message());

    std::vector<std::string> written;
    auto open = [&](const char *suffix) {
        std::string path = (fs::path(dir) / (stem + suffix)).string();
        std::ofstream out(path);
        if (!out)
            GTSC_FATAL("cannot write '", path, "'");
        written.push_back(path);
        return out;
    };
    if (tracer_) {
        std::ofstream out = open(".trace.json");
        tracer_->writeChromeTrace(out);
    }
    if (timeline_) {
        std::ofstream out = open(".timeline.csv");
        timeline_->writeCsv(out);
    }
    if (transcript_) {
        std::ofstream out = open(".transcript.txt");
        transcript_->writeText(out);
    }
    return written;
}

std::string
fileStem(const std::string &workload, const std::string &protocol,
         const std::string &consistency,
         const std::string &config_fingerprint)
{
    auto sanitize = [](const std::string &s) {
        std::string out;
        for (char c : s) {
            bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '.';
            out.push_back(ok ? c : '_');
        }
        return out;
    };
    // FNV-1a over the explicit config so distinct sweep points that
    // share workload/protocol/consistency still get distinct files.
    std::uint64_t h = 1469598103934665603ull;
    for (char c : config_fingerprint) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    static const char *kDigits = "0123456789abcdef";
    std::string hash8;
    for (int i = 7; i >= 0; --i)
        hash8.push_back(kDigits[(h >> (i * 4)) & 0xf]);
    return sanitize(workload) + "_" + sanitize(protocol) + "_" +
           sanitize(consistency) + "_" + hash8;
}

} // namespace gtsc::obs
