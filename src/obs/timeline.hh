/**
 * @file
 * Stat timeline sampler: periodic snapshots of a StatSet.
 *
 * Every `interval` cycles the sampler snapshots the counters whose
 * names match a configurable prefix list, turning end-of-run
 * aggregates (e.g. the Figure-13 stall breakdown) into a time
 * series. Export is CSV (one row per interval, per-interval deltas)
 * or JSON. Sampling only happens when the subsystem is enabled, so
 * there is no steady-state cost when off; the GPU main loop clamps
 * fast-forward jumps at sample boundaries so the series is identical
 * with `gpu.fast_forward` on or off.
 */

#ifndef GTSC_OBS_TIMELINE_HH_
#define GTSC_OBS_TIMELINE_HH_

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace gtsc::sim
{
class StatSet;
}

namespace gtsc::obs
{

class StatTimeline
{
  public:
    /**
     * @param stats    the live StatSet to snapshot (not owned)
     * @param interval sampling period in cycles (> 0)
     * @param prefixes counter-name prefixes to keep; empty = all
     */
    StatTimeline(const sim::StatSet &stats, Cycle interval,
                 std::vector<std::string> prefixes);

    Cycle interval() const { return interval_; }

    /**
     * Cycle the next sample is due at. The main loop must not skip
     * past this while fast-forwarding.
     */
    Cycle nextSampleAt() const { return nextAt_; }

    /**
     * Take a snapshot if `now` has reached the next sample point.
     * Idempotent per cycle (safe to call every iteration).
     */
    void
    sample(Cycle now)
    {
        if (now >= nextAt_)
            takeSample(now);
    }

    /** Force a final partial-interval snapshot at end of run. */
    void finish(Cycle now);

    std::size_t numSamples() const { return samples_.size(); }

    /**
     * CSV: header `cycle,<key>,...`; one row per sample with the
     * per-interval delta of each counter. Columns are the sorted
     * union of keys seen across all samples.
     */
    void writeCsv(std::ostream &os) const;

    /** Same data as JSON: {"interval":N,"samples":[{...},...]}. */
    void writeJson(std::ostream &os) const;

  private:
    struct Sample
    {
        Cycle cycle;
        std::map<std::string, std::uint64_t> values; ///< cumulative
    };

    void takeSample(Cycle now);
    std::vector<std::string> columnUnion() const;

    const sim::StatSet &stats_;
    Cycle interval_;
    Cycle nextAt_;
    Cycle lastSampled_ = kCycleNever; ///< duplicate-cycle guard
    std::vector<std::string> prefixes_;
    std::vector<Sample> samples_;
};

} // namespace gtsc::obs

#endif // GTSC_OBS_TIMELINE_HH_
