#include "obs/transcript.hh"

#include <ostream>
#include <sstream>

#include "sim/log.hh"

namespace gtsc::obs
{

namespace
{

Addr
parseHex(const std::string &s)
{
    std::size_t pos = 0;
    Addr v = 0;
    try {
        v = std::stoull(s, &pos, 16);
    } catch (const std::exception &) {
        GTSC_FATAL("bad obs.transcript_filter value '", s, "'");
    }
    if (pos != s.size())
        GTSC_FATAL("bad obs.transcript_filter value '", s, "'");
    return v;
}

} // namespace

Transcript::Transcript(std::size_t depth, const std::string &filter)
    : depth_(depth ? depth : 1)
{
    if (filter.empty())
        return;
    std::size_t sep = filter.find_first_of("-:");
    if (sep == std::string::npos) {
        lo_ = hi_ = parseHex(filter);
    } else {
        lo_ = parseHex(filter.substr(0, sep));
        hi_ = parseHex(filter.substr(sep + 1));
        if (lo_ > hi_)
            GTSC_FATAL("obs.transcript_filter range is inverted: ",
                       filter);
    }
}

void
Transcript::log(const TranscriptEntry &e)
{
    LineLog &l = lines_[e.line];
    ++l.total;
    ++total_;
    l.entries.push_back(e);
    if (l.entries.size() > depth_)
        l.entries.pop_front();
}

namespace
{

void
renderEntry(std::ostream &os, const TranscriptEntry &e)
{
    os << "  [" << e.cycle << "] " << e.msg
       << (e.response ? " resp " : " req  ")
       << (e.response ? "part" : "sm") << e.src << "->"
       << (e.response ? "sm" : "part") << e.dst;
    if (!e.response)
        os << " warp" << e.warp;
    if (e.ts0 || e.ts1)
        os << " ts=" << e.ts0 << "/" << e.ts1;
}

} // namespace

std::string
Transcript::describeLine(Addr line, std::size_t n) const
{
    auto it = lines_.find(line);
    if (it == lines_.end())
        return {};
    const LineLog &l = it->second;
    std::ostringstream oss;
    std::size_t have = l.entries.size();
    std::size_t show = n < have ? n : have;
    if (l.total > show) {
        oss << "  ... " << (l.total - show)
            << " earlier message(s) elided\n";
    }
    for (std::size_t i = have - show; i < have; ++i) {
        renderEntry(oss, l.entries[i]);
        oss << '\n';
    }
    return oss.str();
}

void
Transcript::writeText(std::ostream &os) const
{
    for (const auto &kv : lines_) {
        os << "line 0x" << std::hex << kv.first << std::dec << " ("
           << kv.second.total << " messages";
        if (kv.second.total > kv.second.entries.size())
            os << ", last " << kv.second.entries.size() << " kept";
        os << ")\n";
        for (const TranscriptEntry &e : kv.second.entries) {
            renderEntry(os, e);
            os << '\n';
        }
    }
}

} // namespace gtsc::obs
