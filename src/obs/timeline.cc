#include "obs/timeline.hh"

#include <algorithm>
#include <ostream>
#include <set>

#include "sim/log.hh"
#include "sim/stats.hh"

namespace gtsc::obs
{

StatTimeline::StatTimeline(const sim::StatSet &stats, Cycle interval,
                           std::vector<std::string> prefixes)
    : stats_(stats), interval_(interval), nextAt_(interval),
      prefixes_(std::move(prefixes))
{
    GTSC_ASSERT(interval_ > 0, "timeline interval must be > 0");
}

void
StatTimeline::takeSample(Cycle now)
{
    if (now == lastSampled_)
        return;
    lastSampled_ = now;
    Sample s;
    s.cycle = now;
    for (const auto &kv : stats_.counters()) {
        if (!prefixes_.empty()) {
            bool match = false;
            for (const std::string &p : prefixes_) {
                if (kv.first.rfind(p, 0) == 0) {
                    match = true;
                    break;
                }
            }
            if (!match)
                continue;
        }
        s.values[kv.first] = kv.second;
    }
    samples_.push_back(std::move(s));
    while (nextAt_ <= now)
        nextAt_ += interval_;
}

void
StatTimeline::finish(Cycle now)
{
    takeSample(now);
}

std::vector<std::string>
StatTimeline::columnUnion() const
{
    std::set<std::string> keys;
    for (const Sample &s : samples_) {
        for (const auto &kv : s.values)
            keys.insert(kv.first);
    }
    return {keys.begin(), keys.end()};
}

namespace
{

std::uint64_t
valueOf(const std::map<std::string, std::uint64_t> &m,
        const std::string &k)
{
    auto it = m.find(k);
    return it == m.end() ? 0 : it->second;
}

} // namespace

void
StatTimeline::writeCsv(std::ostream &os) const
{
    std::vector<std::string> cols = columnUnion();
    os << "cycle";
    for (const std::string &c : cols)
        os << ',' << c;
    os << '\n';
    std::map<std::string, std::uint64_t> prev;
    for (const Sample &s : samples_) {
        os << s.cycle;
        for (const std::string &c : cols) {
            std::uint64_t cur = valueOf(s.values, c);
            os << ',' << (cur - valueOf(prev, c));
        }
        os << '\n';
        prev = s.values;
    }
}

void
StatTimeline::writeJson(std::ostream &os) const
{
    os << "{\"interval\":" << interval_ << ",\"samples\":[";
    std::map<std::string, std::uint64_t> prev;
    bool firstSample = true;
    for (const Sample &s : samples_) {
        if (!firstSample)
            os << ',';
        firstSample = false;
        os << "\n{\"cycle\":" << s.cycle;
        for (const auto &kv : s.values) {
            os << ",\"" << kv.first
               << "\":" << (kv.second - valueOf(prev, kv.first));
        }
        os << '}';
        prev = s.values;
    }
    os << "]}\n";
}

} // namespace gtsc::obs
