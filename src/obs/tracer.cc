#include "obs/tracer.hh"

#include <algorithm>
#include <ostream>

#include "sim/log.hh"

namespace gtsc::obs
{

const char *
eventKindName(EventKind k)
{
    switch (k) {
    case EventKind::WarpIssue:
        return "warp_issue";
    case EventKind::WarpStall:
        return "warp_stall";
    case EventKind::WarpResume:
        return "warp_resume";
    case EventKind::L1Hit:
        return "l1_hit";
    case EventKind::L1MissCold:
        return "l1_miss_cold";
    case EventKind::L1MissExpired:
        return "l1_miss_expired";
    case EventKind::L1Renewal:
        return "l1_renewal";
    case EventKind::MshrAlloc:
        return "mshr_alloc";
    case EventKind::MshrRetire:
        return "mshr_retire";
    case EventKind::NocInject:
        return "noc_inject";
    case EventKind::NocDeliver:
        return "noc_deliver";
    case EventKind::DramActivate:
        return "dram_activate";
    case EventKind::DramReturn:
        return "dram_return";
    case EventKind::WtsUpdate:
        return "wts_update";
    case EventKind::LeaseExtend:
        return "lease_extend";
    case EventKind::EpochReset:
        return "epoch_reset";
    }
    return "unknown";
}

const EventArgNames &
eventArgNames(EventKind k)
{
    // Indexed by EventKind value; fields are {a1, a2, addr, v0, v1}.
    static const EventArgNames kNames[kNumEventKinds] = {
        /* WarpIssue     */ {"warp", "op", "addr", nullptr, nullptr},
        /* WarpStall     */ {"warp", "reason", "addr", nullptr, nullptr},
        /* WarpResume    */ {"warp", nullptr, "addr", nullptr, nullptr},
        /* L1Hit         */ {"warp", nullptr, "addr", "wts", "rts"},
        /* L1MissCold    */ {"warp", nullptr, "addr", nullptr, nullptr},
        /* L1MissExpired */ {"warp", nullptr, "addr", "wts", "rts"},
        /* L1Renewal     */ {"warp", nullptr, "addr", "wts", nullptr},
        /* MshrAlloc     */ {nullptr, nullptr, "addr", "occupancy",
                             nullptr},
        /* MshrRetire    */ {nullptr, nullptr, "addr", "occupancy",
                             nullptr},
        /* NocInject     */ {"src", "dst", "addr", "msg", "bytes"},
        /* NocDeliver    */ {"src", "dst", "addr", "msg", "latency"},
        /* DramActivate  */ {"bank", "row_hit", "addr", "latency",
                             nullptr},
        /* DramReturn    */ {nullptr, nullptr, "addr", nullptr, nullptr},
        /* WtsUpdate     */ {"src", "warp", "addr", "wts", "rts"},
        /* LeaseExtend   */ {"src", "warp", "addr", "old_rts", "rts"},
        /* EpochReset    */ {nullptr, nullptr, nullptr, "epoch",
                             nullptr},
    };
    auto idx = static_cast<unsigned>(k);
    GTSC_ASSERT(idx < kNumEventKinds, "bad event kind");
    return kNames[idx];
}

Tracer::Tracer(std::size_t ring_capacity)
    : capacity_(std::max<std::size_t>(1, ring_capacity))
{
}

Tracer::TrackId
Tracer::track(const std::string &name)
{
    for (TrackId i = 0; i < tracks_.size(); ++i) {
        if (tracks_[i].name == name)
            return i;
    }
    tracks_.push_back(Track{name, {}, 0, 0});
    return static_cast<TrackId>(tracks_.size() - 1);
}

std::uint64_t
Tracer::totalRecorded() const
{
    std::uint64_t n = 0;
    for (const Track &t : tracks_)
        n += t.total;
    return n;
}

std::uint64_t
Tracer::totalRetained() const
{
    std::uint64_t n = 0;
    for (const Track &t : tracks_)
        n += t.ring.size();
    return n;
}

namespace
{

void
writeHex(std::ostream &os, std::uint64_t v)
{
    static const char *kDigits = "0123456789abcdef";
    char buf[16];
    int n = 0;
    do {
        buf[n++] = kDigits[v & 0xf];
        v >>= 4;
    } while (v);
    os << "\"0x";
    while (n)
        os << buf[--n];
    os << '"';
}

void
writeEvent(std::ostream &os, const Tracer::Track &tr, unsigned tid,
           const Event &e)
{
    const EventArgNames &names = eventArgNames(e.kind);
    os << "{\"name\":\"" << eventKindName(e.kind)
       << "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":" << tid
       << ",\"ts\":" << e.cycle << ",\"cat\":\"" << tr.name
       << "\",\"args\":{";
    bool first = true;
    auto arg = [&](const char *name, auto value, bool hex) {
        if (!name)
            return;
        if (!first)
            os << ',';
        first = false;
        os << '"' << name << "\":";
        if (hex)
            writeHex(os, value);
        else
            os << value;
    };
    arg(names.a1, static_cast<std::uint64_t>(e.a1), false);
    arg(names.a2, static_cast<std::uint64_t>(e.a2), false);
    arg(names.addr, e.addr, true);
    arg(names.v0, e.v0, false);
    arg(names.v1, e.v1, false);
    os << "}}";
}

} // namespace

void
Tracer::writeChromeTrace(std::ostream &os) const
{
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;
    for (unsigned ti = 0; ti < tracks_.size(); ++ti) {
        const Track &tr = tracks_[ti];
        unsigned tid = ti + 1;
        if (!first)
            os << ",\n";
        first = false;
        // Thread-name metadata gives each track a labeled row.
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
           << "\"tid\":" << tid << ",\"args\":{\"name\":\"" << tr.name
           << "\"}}";
        if (tr.total > tr.ring.size()) {
            os << ",\n{\"name\":\"dropped_events\",\"ph\":\"M\","
               << "\"pid\":0,\"tid\":" << tid << ",\"args\":{\"count\":"
               << (tr.total - tr.ring.size()) << "}}";
        }
        // Oldest first: the ring cursor points at the oldest entry
        // once the buffer has wrapped. A stable per-track sort by
        // cycle canonicalizes the dump: the sharded main loop
        // records NoC injections at window barriers (after the
        // deliveries of later cycles in the same window), so their
        // ring order is not cycle-monotone the way the serial loop's
        // is — but same-cycle insertion order matches the serial
        // loop in both modes, so the sorted dumps are bit-identical.
        std::size_t n = tr.ring.size();
        std::vector<const Event *> ordered;
        ordered.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            ordered.push_back(&tr.ring[(tr.next + i) % n]);
        std::stable_sort(ordered.begin(), ordered.end(),
                         [](const Event *a, const Event *b) {
                             return a->cycle < b->cycle;
                         });
        for (const Event *e : ordered) {
            os << ",\n";
            writeEvent(os, tr, tid, *e);
        }
    }
    os << "]}\n";
}

} // namespace gtsc::obs
