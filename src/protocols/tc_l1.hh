/**
 * @file
 * Temporal Coherence (TC, HPCA 2013) private-cache controller,
 * reimplemented as the paper's comparison baseline (Section VI-A).
 *
 * Every block carries an absolute lease-expiry cycle granted by the
 * L2's globally synchronized counter (= the simulator cycle). A tag
 * match with an expired lease is a coherence miss: the block has
 * self-invalidated and a fresh fill (with data — TC has no data-less
 * renewal) is requested. Stores are write-through and invalidate the
 * local copy; the L2 decides when the store globally performs
 * (TC-Strong stalls it, TC-Weak acks immediately with a GWCT).
 */

#ifndef GTSC_PROTOCOLS_TC_L1_HH_
#define GTSC_PROTOCOLS_TC_L1_HH_

#include <vector>

#include "mem/cache_array.hh"
#include "mem/coherence_probe.hh"
#include "mem/controllers.hh"
#include "mem/mshr.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/flat_map.hh"
#include "sim/slot_pool.hh"
#include "sim/stats.hh"

namespace gtsc::protocols
{

class TcL1 final : public mem::L1Controller
{
  public:
    TcL1(SmId sm, const sim::Config &cfg, sim::StatSet &stats,
         sim::EventQueue &events, mem::CoherenceProbe *probe);

    bool access(const mem::Access &acc, Cycle now) override;
    void receiveResponse(mem::Packet &&pkt, Cycle now) override;
    void tick(Cycle now) override { (void)now; }

    /**
     * tick() is a no-op: lease expiry is checked lazily at access
     * time and completions are response-driven. Under active-set
     * scheduling this controller is therefore never armed — it calls
     * no wake hook, and load/store completions reach the SM through
     * its own callbacks (wake contract, mem/controllers.hh).
     */
    Cycle
    nextWorkCycle(Cycle now) const override
    {
        (void)now;
        return kCycleNever;
    }
    void flush(Cycle now) override;
    bool quiescent() const override;
    void attachTracer(obs::Tracer &tracer) override;

  private:
    void completeLoad(const mem::Access &acc, const mem::LineData &data,
                      bool hit, Cycle grant, Cycle now);

    SmId sm_;
    sim::StatSet &stats_;
    sim::EventQueue &events_;
    mem::CoherenceProbe *probe_;

    mem::CacheArray array_;
    mem::Mshr mshr_;
    sim::SmallFlatMap<std::uint64_t, mem::Access> pendingStores_;
    /** Fill-waiter scratch: capacity circulates between this and the
     *  pooled MSHR entries (swap, never free). */
    std::vector<mem::Access> waitersScratch_;

    /** Completed-load payloads parked here so the completion event
     *  captures only [this, slot] (inline SmallFunction, no per-load
     *  closure allocation). */
    struct LoadReply
    {
        mem::Access acc;
        mem::AccessResult res;
    };
    sim::SlotPool<LoadReply> loadReplies_;

    unsigned numPartitions_;
    Cycle hitLatency_;

    std::uint64_t *hits_;
    std::uint64_t *missCold_;
    std::uint64_t *missExpired_;
    std::uint64_t *merged_;
    std::uint64_t *busRdSent_;
    std::uint64_t *busWrSent_;
    std::uint64_t *tagAccesses_;
    std::uint64_t *dataReads_;
    std::uint64_t *dataWrites_;
    std::uint64_t *rejects_;

    obs::Tracer *trace_ = nullptr;
    std::uint32_t track_ = 0; ///< obs::Tracer::TrackId
};

} // namespace gtsc::protocols

#endif // GTSC_PROTOCOLS_TC_L1_HH_
