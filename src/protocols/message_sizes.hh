/**
 * @file
 * Wire sizes for the TC and baseline protocols.
 *
 * TC carries 32-bit physical timestamps (the paper, Section V-D:
 * "TC uses a 32-bit local timestamp ... 32-bit global timestamp"),
 * so its lease/GWCT fields cost 4 bytes. The L1-less baseline and
 * the non-coherent L1 carry no timing metadata at all. TC has no
 * data-less renewal: an expired block is re-fetched with a full
 * fill, which is one of the traffic differences Figure 15 measures.
 */

#ifndef GTSC_PROTOCOLS_MESSAGE_SIZES_HH_
#define GTSC_PROTOCOLS_MESSAGE_SIZES_HH_

#include "mem/packet.hh"

namespace gtsc::protocols
{

inline constexpr std::uint32_t kHeaderBytes = 8;
inline constexpr std::uint32_t kTcTimeBytes = 4;

inline std::uint32_t
tcMessageBytes(mem::MsgType type, std::uint32_t word_mask)
{
    switch (type) {
      case mem::MsgType::BusRd:
        return kHeaderBytes;
      case mem::MsgType::BusWr:
        return kHeaderBytes + mem::maskedDataBytes(word_mask);
      case mem::MsgType::BusFill:
        return kHeaderBytes + kTcTimeBytes + mem::kLineBytes;
      case mem::MsgType::BusWrAck:
        return kHeaderBytes + kTcTimeBytes; // carries the GWCT
      case mem::MsgType::BusRnw:
        break; // TC has no renewal message
    }
    return kHeaderBytes;
}

inline std::uint32_t
baselineMessageBytes(mem::MsgType type, std::uint32_t word_mask)
{
    switch (type) {
      case mem::MsgType::BusRd:
        return kHeaderBytes;
      case mem::MsgType::BusWr:
        return kHeaderBytes + mem::maskedDataBytes(word_mask);
      case mem::MsgType::BusFill:
        return kHeaderBytes + mem::kLineBytes;
      case mem::MsgType::BusWrAck:
        return kHeaderBytes;
      case mem::MsgType::BusRnw:
        break; // unused
    }
    return kHeaderBytes;
}

} // namespace gtsc::protocols

#endif // GTSC_PROTOCOLS_MESSAGE_SIZES_HH_
