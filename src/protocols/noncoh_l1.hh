/**
 * @file
 * "Baseline W/L1": a conventional non-coherent GPU L1 — write-
 * through, write-no-allocate, no invalidations ever. Only correct
 * for workloads that do not need coherence (the paper's second
 * benchmark group, Figure 12 right cluster).
 */

#ifndef GTSC_PROTOCOLS_NONCOH_L1_HH_
#define GTSC_PROTOCOLS_NONCOH_L1_HH_

#include <vector>

#include "mem/cache_array.hh"
#include "mem/coherence_probe.hh"
#include "mem/controllers.hh"
#include "mem/mshr.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/flat_map.hh"
#include "sim/slot_pool.hh"
#include "sim/stats.hh"

namespace gtsc::protocols
{

class NonCohL1 final : public mem::L1Controller
{
  public:
    NonCohL1(SmId sm, const sim::Config &cfg, sim::StatSet &stats,
             sim::EventQueue &events, mem::CoherenceProbe *probe);

    bool access(const mem::Access &acc, Cycle now) override;
    void receiveResponse(mem::Packet &&pkt, Cycle now) override;
    void tick(Cycle now) override { (void)now; }

    /** tick() is a no-op: all completions are response-driven, so
     *  under active-set scheduling this controller is never armed
     *  and calls no wake hook (wake contract, mem/controllers.hh). */
    Cycle
    nextWorkCycle(Cycle now) const override
    {
        (void)now;
        return kCycleNever;
    }
    void flush(Cycle now) override;
    bool quiescent() const override;
    void attachTracer(obs::Tracer &tracer) override;

  private:
    void completeLoad(const mem::Access &acc, const mem::LineData &data,
                      bool hit, Cycle grant, Cycle now);

    SmId sm_;
    sim::StatSet &stats_;
    sim::EventQueue &events_;
    mem::CoherenceProbe *probe_;

    mem::CacheArray array_;
    mem::Mshr mshr_;
    sim::SmallFlatMap<std::uint64_t, mem::Access> pendingStores_;
    /** Fill-waiter scratch: capacity circulates between this and the
     *  pooled MSHR entries (swap, never free). */
    std::vector<mem::Access> waitersScratch_;

    /** Completed-load payloads parked here so the completion event
     *  captures only [this, slot] (inline SmallFunction, no per-load
     *  closure allocation). */
    struct LoadReply
    {
        mem::Access acc;
        mem::AccessResult res;
    };
    sim::SlotPool<LoadReply> loadReplies_;

    unsigned numPartitions_;
    Cycle hitLatency_;

    std::uint64_t *hits_;
    std::uint64_t *missCold_;
    std::uint64_t *merged_;
    std::uint64_t *busRdSent_;
    std::uint64_t *busWrSent_;
    std::uint64_t *tagAccesses_;
    std::uint64_t *dataReads_;
    std::uint64_t *dataWrites_;
    std::uint64_t *rejects_;

    obs::Tracer *trace_ = nullptr;
    std::uint32_t track_ = 0; ///< obs::Tracer::TrackId
};

} // namespace gtsc::protocols

#endif // GTSC_PROTOCOLS_NONCOH_L1_HH_
