/**
 * @file
 * "Baseline W/L1": a conventional non-coherent GPU L1 — write-
 * through, write-no-allocate, no invalidations ever. Only correct
 * for workloads that do not need coherence (the paper's second
 * benchmark group, Figure 12 right cluster).
 */

#ifndef GTSC_PROTOCOLS_NONCOH_L1_HH_
#define GTSC_PROTOCOLS_NONCOH_L1_HH_

#include <unordered_map>

#include "mem/cache_array.hh"
#include "mem/coherence_probe.hh"
#include "mem/controllers.hh"
#include "mem/mshr.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace gtsc::protocols
{

class NonCohL1 : public mem::L1Controller
{
  public:
    NonCohL1(SmId sm, const sim::Config &cfg, sim::StatSet &stats,
             sim::EventQueue &events, mem::CoherenceProbe *probe);

    bool access(const mem::Access &acc, Cycle now) override;
    void receiveResponse(mem::Packet &&pkt, Cycle now) override;
    void tick(Cycle now) override;

    /** tick() is a no-op: all completions are response-driven. */
    Cycle
    nextWorkCycle(Cycle now) const override
    {
        (void)now;
        return kCycleNever;
    }
    void flush(Cycle now) override;
    bool quiescent() const override;
    void attachTracer(obs::Tracer &tracer) override;

  private:
    void completeLoad(const mem::Access &acc, const mem::LineData &data,
                      bool hit, Cycle grant, Cycle now);

    SmId sm_;
    sim::StatSet &stats_;
    sim::EventQueue &events_;
    mem::CoherenceProbe *probe_;

    mem::CacheArray array_;
    mem::Mshr mshr_;
    std::unordered_map<std::uint64_t, mem::Access> pendingStores_;

    unsigned numPartitions_;
    Cycle hitLatency_;

    std::uint64_t *hits_;
    std::uint64_t *missCold_;
    std::uint64_t *merged_;
    std::uint64_t *busRdSent_;
    std::uint64_t *busWrSent_;
    std::uint64_t *tagAccesses_;
    std::uint64_t *dataReads_;
    std::uint64_t *dataWrites_;
    std::uint64_t *rejects_;

    obs::Tracer *trace_ = nullptr;
    std::uint32_t track_ = 0; ///< obs::Tracer::TrackId
};

} // namespace gtsc::protocols

#endif // GTSC_PROTOCOLS_NONCOH_L1_HH_
