/**
 * @file
 * ProtocolBuilders for the baseline protocols and a name-based
 * registry covering every protocol in the repository (including
 * G-TSC, so harness code can instantiate any configuration from a
 * string): "gtsc", "tc", "nol1" (BL), "noncoh" (baseline w/ L1).
 */

#ifndef GTSC_PROTOCOLS_BUILDERS_HH_
#define GTSC_PROTOCOLS_BUILDERS_HH_

#include <memory>
#include <string>

#include "gpu/protocol_builder.hh"
#include "protocols/no_l1.hh"
#include "protocols/noncoh_l1.hh"
#include "protocols/simple_l2.hh"
#include "protocols/tc_l1.hh"
#include "protocols/tc_l2.hh"

namespace gtsc::protocols
{

/** Temporal Coherence: TC-Strong under SC, TC-Weak under RC. */
class TcBuilder : public gpu::ProtocolBuilder
{
  public:
    std::string name() const override { return "tc"; }

    void
    prepare(const sim::Config &cfg, sim::StatSet &stats,
            const gpu::GpuParams &params) override
    {
        (void)stats;
        std::string mode = cfg.getString("tc.mode", "auto");
        if (mode == "strong")
            strong_ = true;
        else if (mode == "weak")
            strong_ = false;
        else
            strong_ = (params.consistency == gpu::Consistency::SC);
    }

    std::unique_ptr<mem::L1Controller>
    makeL1(SmId sm, const sim::Config &cfg, sim::StatSet &stats,
           sim::EventQueue &events, mem::CoherenceProbe *probe) override
    {
        return std::make_unique<TcL1>(sm, cfg, stats, events, probe);
    }

    std::unique_ptr<mem::L2Controller>
    makeL2(PartitionId part, const sim::Config &cfg, sim::StatSet &stats,
           sim::EventQueue &events, mem::DramChannel &dram,
           mem::MainMemory &memory, mem::CoherenceProbe *probe) override
    {
        return std::make_unique<TcL2>(part, cfg, stats, events, dram,
                                      memory, strong_, probe);
    }

  private:
    bool strong_ = false;
};

/** BL: coherence by disabling the private caches. */
class NoL1Builder : public gpu::ProtocolBuilder
{
  public:
    std::string name() const override { return "nol1"; }
    bool usesL1() const override { return false; }

    std::unique_ptr<mem::L1Controller>
    makeL1(SmId sm, const sim::Config &cfg, sim::StatSet &stats,
           sim::EventQueue &events, mem::CoherenceProbe *probe) override
    {
        return std::make_unique<NoL1>(sm, cfg, stats, events, probe);
    }

    std::unique_ptr<mem::L2Controller>
    makeL2(PartitionId part, const sim::Config &cfg, sim::StatSet &stats,
           sim::EventQueue &events, mem::DramChannel &dram,
           mem::MainMemory &memory, mem::CoherenceProbe *probe) override
    {
        return std::make_unique<SimpleL2>(part, cfg, stats, events, dram,
                                          memory, probe);
    }
};

/** Baseline W/L1: conventional non-coherent private caches. */
class NonCohBuilder : public gpu::ProtocolBuilder
{
  public:
    std::string name() const override { return "noncoh"; }

    std::unique_ptr<mem::L1Controller>
    makeL1(SmId sm, const sim::Config &cfg, sim::StatSet &stats,
           sim::EventQueue &events, mem::CoherenceProbe *probe) override
    {
        return std::make_unique<NonCohL1>(sm, cfg, stats, events, probe);
    }

    std::unique_ptr<mem::L2Controller>
    makeL2(PartitionId part, const sim::Config &cfg, sim::StatSet &stats,
           sim::EventQueue &events, mem::DramChannel &dram,
           mem::MainMemory &memory, mem::CoherenceProbe *probe) override
    {
        return std::make_unique<SimpleL2>(part, cfg, stats, events, dram,
                                          memory, probe);
    }
};

/**
 * Instantiate a protocol builder by name ("gtsc", "tc", "nol1",
 * "noncoh"). Fatal on unknown names.
 */
std::unique_ptr<gpu::ProtocolBuilder>
makeProtocol(const std::string &name);

} // namespace gtsc::protocols

#endif // GTSC_PROTOCOLS_BUILDERS_HH_
