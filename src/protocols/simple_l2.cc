#include "protocols/simple_l2.hh"

#include <string>

#include "obs/tracer.hh"
#include "protocols/message_sizes.hh"
#include "sim/log.hh"

namespace gtsc::protocols
{

SimpleL2::SimpleL2(PartitionId part, const sim::Config &cfg,
                   sim::StatSet &stats, sim::EventQueue &events,
                   mem::DramChannel &dram, mem::MainMemory &memory,
                   mem::CoherenceProbe *probe)
    : part_(part), stats_(stats), events_(events), dram_(dram),
      memory_(memory), probe_(probe),
      array_(cfg.getUint("l2.partition_bytes", 128 * 1024),
             cfg.getUint("l2.assoc", 8))
{
    ports_ = static_cast<unsigned>(cfg.getUint("l2.ports", 1));
    accessLatency_ = cfg.getUint("l2.access_latency", 20);
    mshrCapacity_ = cfg.getUint("l2.mshr_entries", 32);

    accesses_ = &stats_.counter("l2.accesses");
    hits_ = &stats_.counter("l2.hits");
    missesStat_ = &stats_.counter("l2.misses");
    writes_ = &stats_.counter("l2.writes");
    evictions_ = &stats_.counter("l2.evictions");
    writebacks_ = &stats_.counter("l2.writebacks");
    stallMshrFull_ = &stats_.counter("l2.stall_mshr_full");
    queueCycles_ = &stats_.counter("l2.queue_occupancy_cycles");
    serviceLatency_ = &stats_.distribution("l2.service_latency");
}

void
SimpleL2::attachTracer(obs::Tracer &tracer)
{
    trace_ = &tracer;
    track_ = tracer.track("l2.part" + std::to_string(part_));
}

bool
SimpleL2::quiescent() const
{
    return queue_.empty() && misses_.empty();
}

void
SimpleL2::flushAll(Cycle now)
{
    (void)now;
    GTSC_ASSERT(quiescent(), "L2 flush while busy");
    array_.forEachValid([this](mem::CacheBlock &blk) {
        if (blk.dirty)
            memory_.writeLine(blk.lineAddr, array_.dataOf(blk));
        array_.invalidate(blk);
    });
}

void
SimpleL2::receiveRequest(mem::Packet &&pkt, Cycle now)
{
    queue_.push_back(std::move(pkt));
    // The service queue is this controller's only source of tick()
    // work; misses complete through events (wake contract).
    wake(now);
}

void
SimpleL2::respond(mem::Packet &&resp, Cycle now)
{
    std::uint32_t slot = respPool_.acquire();
    respPool_[slot] = std::move(resp);
    events_.schedule(now + accessLatency_, [this, slot]() {
        send_(std::move(respPool_[slot]));
        respPool_.release(slot);
    });
}

void
SimpleL2::serve(mem::CacheBlock &blk, mem::Packet &pkt, Cycle now)
{
    array_.touch(blk);
    if (pkt.type == mem::MsgType::BusRd) {
        mem::Packet resp;
        resp.type = mem::MsgType::BusFill;
        resp.lineAddr = pkt.lineAddr;
        resp.src = pkt.src;
        resp.part = part_;
        resp.warp = pkt.warp;
        resp.gwct = now; // service cycle (checker bookkeeping)
        resp.data = array_.dataOf(blk);
        resp.reqId = pkt.reqId;
        resp.sizeBytes = baselineMessageBytes(mem::MsgType::BusFill, 0);
        respond(std::move(resp), now);
        return;
    }
    GTSC_ASSERT(pkt.type == mem::MsgType::BusWr,
                "SimpleL2 unexpected packet ", pkt.toString());
    array_.dataOf(blk).mergeMasked(pkt.data, pkt.wordMask);
    blk.dirty = true;
    ++(*writes_);
    if (trace_) {
        trace_->record(track_,
                       obs::Event{now, pkt.lineAddr, now, 0,
                                  obs::EventKind::WtsUpdate, pkt.src,
                                  pkt.warp});
    }
    if (probe_) {
        for (unsigned w = 0; w < mem::kWordsPerLine; ++w) {
            if (pkt.wordMask & (1u << w)) {
                probe_->onStorePhys(pkt.lineAddr + w * mem::kWordBytes,
                                    now, pkt.data.word(w), pkt.src,
                                    pkt.warp);
            }
        }
    }
    mem::Packet resp;
    resp.type = mem::MsgType::BusWrAck;
    resp.lineAddr = pkt.lineAddr;
    resp.src = pkt.src;
    resp.part = part_;
    resp.warp = pkt.warp;
    resp.reqId = pkt.reqId;
    resp.sizeBytes = baselineMessageBytes(mem::MsgType::BusWrAck, 0);
    respond(std::move(resp), now);
}

bool
SimpleL2::process(mem::Packet &pkt, Cycle now)
{
    ++(*accesses_);
    if (pkt.injectedAt > 0) {
        serviceLatency_->sample(static_cast<double>(now - pkt.injectedAt));
        pkt.injectedAt = 0; // waiter replays sample only once
    }
    mem::CacheBlock *blk = array_.lookup(pkt.lineAddr);
    if (blk) {
        ++(*hits_);
        serve(*blk, pkt, now);
        return true;
    }
    if (MissEntry *pending = misses_.find(pkt.lineAddr)) {
        pending->waiters.push_back(pkt);
        return true;
    }
    if (misses_.size() >= mshrCapacity_)
        return false;
    ++(*missesStat_);
    MissEntry &entry = misses_.emplace(pkt.lineAddr);
    entry.waiters.clear(); // recycled slot: stale waiters possible
    entry.waiters.push_back(pkt);
    Addr line = pkt.lineAddr;
    dram_.pushRead(line, [this, line](const mem::LineData &data) {
        onDramFill(line, data, events_.now());
    });
    return true;
}

void
SimpleL2::onDramFill(Addr line, const mem::LineData &data, Cycle now)
{
    mem::CacheBlock *victim = array_.victim(line);
    GTSC_ASSERT(victim, "SimpleL2 victim selection cannot fail");
    if (victim->valid) {
        ++(*evictions_);
        if (victim->dirty) {
            ++(*writebacks_);
            dram_.pushWrite(victim->lineAddr,
                            array_.dataOf(*victim), 0xffffffffu);
        }
    }
    array_.insert(*victim, line);
    array_.dataOf(*victim) = data;

    MissEntry *entry = misses_.find(line);
    GTSC_ASSERT(entry, "fill without miss entry");
    waitersScratch_.clear();
    waitersScratch_.swap(entry->waiters);
    misses_.erase(line);
    for (auto &w : waitersScratch_)
        serve(*victim, w, now);
}

void
SimpleL2::tickQueue(Cycle now)
{
    (*queueCycles_) += queue_.size();
    for (unsigned i = 0; i < ports_ && !queue_.empty(); ++i) {
        if (!process(queue_.front(), now)) {
            ++(*stallMshrFull_);
            break;
        }
        queue_.pop_front();
    }
}

} // namespace gtsc::protocols
