/**
 * @file
 * The BL baseline: private caches disabled. Every access is sent
 * straight to the home L2 partition over the NoC — no L1 tags, no
 * L1 MSHRs, no request merging (Section VI-A: "G-TSC implements BL
 * by essentially sending all requests directly to the L2 cache").
 */

#ifndef GTSC_PROTOCOLS_NO_L1_HH_
#define GTSC_PROTOCOLS_NO_L1_HH_

#include <unordered_map>

#include "mem/coherence_probe.hh"
#include "mem/controllers.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace gtsc::protocols
{

class NoL1 final : public mem::L1Controller
{
  public:
    NoL1(SmId sm, const sim::Config &cfg, sim::StatSet &stats,
         sim::EventQueue &events, mem::CoherenceProbe *probe);

    bool access(const mem::Access &acc, Cycle now) override;
    void receiveResponse(mem::Packet &&pkt, Cycle now) override;
    void tick(Cycle now) override { (void)now; }

    /** tick() is a no-op: all completions are response-driven, so
     *  under active-set scheduling this controller is never armed
     *  and calls no wake hook (wake contract, mem/controllers.hh). */
    Cycle
    nextWorkCycle(Cycle now) const override
    {
        (void)now;
        return kCycleNever;
    }
    void flush(Cycle now) override;
    bool quiescent() const override;

  private:
    SmId sm_;
    sim::StatSet &stats_;
    sim::EventQueue &events_;
    mem::CoherenceProbe *probe_;

    std::unordered_map<std::uint64_t, mem::Access> pendingLoads_;
    std::unordered_map<std::uint64_t, mem::Access> pendingStores_;

    unsigned numPartitions_;
    std::size_t maxPending_;

    std::uint64_t *reads_;
    std::uint64_t *writes_;
    std::uint64_t *rejects_;
};

} // namespace gtsc::protocols

#endif // GTSC_PROTOCOLS_NO_L1_HH_
