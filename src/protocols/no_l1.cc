#include "protocols/no_l1.hh"

#include "protocols/message_sizes.hh"
#include "sim/log.hh"

namespace gtsc::protocols
{

NoL1::NoL1(SmId sm, const sim::Config &cfg, sim::StatSet &stats,
           sim::EventQueue &events, mem::CoherenceProbe *probe)
    : sm_(sm), stats_(stats), events_(events), probe_(probe)
{
    numPartitions_ =
        static_cast<unsigned>(cfg.getUint("gpu.num_partitions", 8));
    maxPending_ = cfg.getUint("nol1.max_pending", 256);

    reads_ = &stats_.counter("l1.bypass_reads");
    writes_ = &stats_.counter("l1.bypass_writes");
    rejects_ = &stats_.counter("l1.rejects_mshr_full");
}

bool
NoL1::quiescent() const
{
    return pendingLoads_.empty() && pendingStores_.empty();
}

void
NoL1::flush(Cycle now)
{
    (void)now;
}

bool
NoL1::access(const mem::Access &acc, Cycle now)
{
    (void)now;
    if (pendingLoads_.size() + pendingStores_.size() >= maxPending_) {
        ++(*rejects_);
        return false;
    }
    mem::Packet pkt;
    pkt.lineAddr = acc.lineAddr;
    pkt.src = sm_;
    pkt.part = mem::partitionOf(acc.lineAddr, numPartitions_);
    pkt.warp = acc.warp;
    pkt.reqId = acc.id;
    if (acc.isStore) {
        pkt.type = mem::MsgType::BusWr;
        pkt.wordMask = acc.wordMask;
        pkt.data = acc.storeData;
        pkt.sizeBytes =
            baselineMessageBytes(mem::MsgType::BusWr, acc.wordMask);
        pendingStores_[acc.id] = acc;
        ++(*writes_);
    } else {
        pkt.type = mem::MsgType::BusRd;
        pkt.sizeBytes = baselineMessageBytes(mem::MsgType::BusRd, 0);
        pendingLoads_[acc.id] = acc;
        ++(*reads_);
    }
    send_(std::move(pkt));
    return true;
}

void
NoL1::receiveResponse(mem::Packet &&pkt, Cycle now)
{
    if (pkt.type == mem::MsgType::BusWrAck) {
        auto it = pendingStores_.find(pkt.reqId);
        GTSC_ASSERT(it != pendingStores_.end(),
                    "BL ack without pending store");
        mem::Access acc = it->second;
        pendingStores_.erase(it);
        storeDone_(acc, 0);
        return;
    }
    GTSC_ASSERT(pkt.type == mem::MsgType::BusFill,
                "BL unexpected response ", pkt.toString());
    auto it = pendingLoads_.find(pkt.reqId);
    GTSC_ASSERT(it != pendingLoads_.end(), "BL fill without pending load");
    mem::Access acc = it->second;
    pendingLoads_.erase(it);

    mem::AccessResult res;
    res.data = pkt.data;
    res.l1Hit = false;
    res.leaseGrant = pkt.gwct;
    if (probe_) {
        for (unsigned w = 0; w < mem::kWordsPerLine; ++w) {
            if (acc.wordMask & (1u << w)) {
                probe_->onLoadPhys(acc.lineAddr + w * mem::kWordBytes,
                                   pkt.gwct, now, res.data.word(w), sm_,
                                   acc.warp);
            }
        }
    }
    events_.schedule(now + 1, [this, acc, res]() {
        loadDone_(acc, res);
    });
}

} // namespace gtsc::protocols
