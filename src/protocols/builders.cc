#include "protocols/builders.hh"

#include "core/gtsc_builder.hh"
#include "sim/log.hh"

namespace gtsc::protocols
{

std::unique_ptr<gpu::ProtocolBuilder>
makeProtocol(const std::string &name)
{
    if (name == "gtsc")
        return std::make_unique<core::GtscBuilder>();
    if (name == "tc")
        return std::make_unique<TcBuilder>();
    if (name == "nol1" || name == "bl")
        return std::make_unique<NoL1Builder>();
    if (name == "noncoh")
        return std::make_unique<NonCohBuilder>();
    GTSC_FATAL("unknown protocol '", name,
               "' (want gtsc|tc|nol1|noncoh)");
}

} // namespace gtsc::protocols
