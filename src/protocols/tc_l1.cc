#include "protocols/tc_l1.hh"

#include <string>

#include "obs/tracer.hh"
#include "protocols/message_sizes.hh"
#include "sim/log.hh"

namespace gtsc::protocols
{

TcL1::TcL1(SmId sm, const sim::Config &cfg, sim::StatSet &stats,
           sim::EventQueue &events, mem::CoherenceProbe *probe)
    : sm_(sm), stats_(stats), events_(events), probe_(probe),
      array_(cfg.getUint("l1.size_bytes", 16 * 1024),
             cfg.getUint("l1.assoc", 4)),
      mshr_(cfg.getUint("l1.mshr_entries", 32))
{
    numPartitions_ =
        static_cast<unsigned>(cfg.getUint("gpu.num_partitions", 8));
    hitLatency_ = std::max<Cycle>(1, cfg.getUint("l1.hit_latency", 4));

    hits_ = &stats_.counter("l1.hits");
    missCold_ = &stats_.counter("l1.miss_cold");
    missExpired_ = &stats_.counter("l1.miss_expired");
    merged_ = &stats_.counter("l1.merged");
    busRdSent_ = &stats_.counter("l1.busrd_sent");
    busWrSent_ = &stats_.counter("l1.buswr_sent");
    tagAccesses_ = &stats_.counter("l1.tag_accesses");
    dataReads_ = &stats_.counter("l1.data_reads");
    dataWrites_ = &stats_.counter("l1.data_writes");
    rejects_ = &stats_.counter("l1.rejects_mshr_full");
}

void
TcL1::attachTracer(obs::Tracer &tracer)
{
    trace_ = &tracer;
    track_ = tracer.track("l1.sm" + std::to_string(sm_));
    mshr_.setTrace(&tracer, track_, &events_);
}

bool
TcL1::quiescent() const
{
    return mshr_.size() == 0 && pendingStores_.empty();
}

void
TcL1::flush(Cycle now)
{
    (void)now;
    GTSC_ASSERT(quiescent(), "L1 flush while busy");
    array_.invalidateAll();
}

void
TcL1::completeLoad(const mem::Access &acc, const mem::LineData &data,
                   bool hit, Cycle grant, Cycle now)
{
    std::uint32_t slot = loadReplies_.acquire();
    LoadReply &rec = loadReplies_[slot];
    rec.acc = acc;
    mem::AccessResult &res = rec.res;
    res.data = data;
    res.l1Hit = hit;
    res.loadTs = 0; // recycled slot: reset every field
    res.epoch = 0;
    res.leaseGrant = grant;
    if (probe_) {
        for (unsigned w = 0; w < mem::kWordsPerLine; ++w) {
            if (acc.wordMask & (1u << w)) {
                probe_->onLoadPhys(acc.lineAddr + w * mem::kWordBytes,
                                   grant, now, data.word(w), sm_,
                                   acc.warp);
            }
        }
    }
    Cycle delay = hit ? hitLatency_ : 1;
    events_.schedule(now + delay, [this, slot]() {
        LoadReply &r = loadReplies_[slot];
        loadDone_(r.acc, r.res);
        loadReplies_.release(slot);
    });
}

bool
TcL1::access(const mem::Access &acc, Cycle now)
{
    ++(*tagAccesses_);
    mem::CacheBlock *blk = array_.lookup(acc.lineAddr);

    if (acc.isStore) {
        // Write-through, no local update: the private copy is
        // invalidated and the L2 performs the write.
        if (blk)
            array_.invalidate(*blk);
        pendingStores_[acc.id] = acc;
        mem::Packet pkt;
        pkt.type = mem::MsgType::BusWr;
        pkt.lineAddr = acc.lineAddr;
        pkt.src = sm_;
        pkt.part = mem::partitionOf(acc.lineAddr, numPartitions_);
        pkt.warp = acc.warp;
        pkt.wordMask = acc.wordMask;
        pkt.data = acc.storeData;
        pkt.reqId = acc.id;
        pkt.sizeBytes =
            tcMessageBytes(mem::MsgType::BusWr, acc.wordMask);
        ++(*busWrSent_);
        ++(*dataWrites_);
        send_(std::move(pkt));
        return true;
    }

    // Load: a valid tag with an unexpired lease is a hit.
    if (blk && now < blk->meta.leaseEnd) {
        array_.touch(*blk);
        ++(*hits_);
        ++(*dataReads_);
        if (trace_) {
            trace_->record(track_,
                           obs::Event{now, acc.lineAddr,
                                      blk->meta.grant, blk->meta.leaseEnd,
                                      obs::EventKind::L1Hit, acc.warp,
                                      0});
        }
        completeLoad(acc, array_.dataOf(*blk), true,
                     blk->meta.grant, now);
        return true;
    }

    if (mem::MshrEntry *entry = mshr_.find(acc.lineAddr)) {
        entry->waiters.push_back(acc);
        ++(*merged_);
        return true;
    }
    mem::MshrEntry *entry = mshr_.alloc(acc.lineAddr);
    if (!entry) {
        ++(*rejects_);
        return false;
    }
    if (blk) {
        ++(*missExpired_); // self-invalidated: coherence miss
        if (trace_) {
            trace_->record(track_,
                           obs::Event{now, acc.lineAddr,
                                      blk->meta.grant, blk->meta.leaseEnd,
                                      obs::EventKind::L1MissExpired,
                                      acc.warp, 0});
        }
    } else {
        ++(*missCold_);
        if (trace_) {
            trace_->record(track_,
                           obs::Event{now, acc.lineAddr, 0, 0,
                                      obs::EventKind::L1MissCold,
                                      acc.warp, 0});
        }
    }
    entry->requestSent = true;
    entry->waiters.push_back(acc);

    mem::Packet pkt;
    pkt.type = mem::MsgType::BusRd;
    pkt.lineAddr = acc.lineAddr;
    pkt.src = sm_;
    pkt.part = mem::partitionOf(acc.lineAddr, numPartitions_);
    pkt.warp = acc.warp;
    pkt.sizeBytes = tcMessageBytes(mem::MsgType::BusRd, 0);
    ++(*busRdSent_);
    send_(std::move(pkt));
    return true;
}

void
TcL1::receiveResponse(mem::Packet &&pkt, Cycle now)
{
    if (pkt.type == mem::MsgType::BusWrAck) {
        mem::Access *pending = pendingStores_.find(pkt.reqId);
        GTSC_ASSERT(pending, "TC BusWrAck without pending store");
        mem::Access acc = *pending;
        pendingStores_.erase(pkt.reqId);
        storeDone_(acc, pkt.gwct);
        return;
    }
    GTSC_ASSERT(pkt.type == mem::MsgType::BusFill,
                "TC L1 unexpected response ", pkt.toString());

    mem::CacheBlock *blk = array_.lookup(pkt.lineAddr);
    if (!blk) {
        mem::CacheBlock *victim = array_.victim(pkt.lineAddr);
        if (victim) {
            array_.insert(*victim, pkt.lineAddr);
            blk = victim;
        }
    }
    if (blk) {
        array_.dataOf(*blk) = pkt.data;
        blk->meta.leaseEnd = pkt.leaseEnd;
        blk->meta.grant = pkt.gwct; // grant cycle carried in gwct
        array_.touch(*blk);
    }

    if (mem::MshrEntry *entry = mshr_.find(pkt.lineAddr)) {
        waitersScratch_.clear();
        waitersScratch_.swap(entry->waiters);
        mshr_.free(pkt.lineAddr);
        for (const auto &acc : waitersScratch_)
            completeLoad(acc, pkt.data, false, pkt.gwct, now);
    }
}

} // namespace gtsc::protocols
