/**
 * @file
 * Temporal Coherence shared-cache (L2 partition) controller.
 *
 * Tracks, per block, the latest lease expiry granted to any L1
 * (the globally synchronized counter is the simulator cycle).
 *
 *  - TC-Strong (used under SC): a write to a block with an unexpired
 *    lease stalls at the L2 until the lease expires, and subsequent
 *    accesses to that line queue behind it (Section II-D3).
 *  - TC-Weak (used under RC): writes perform immediately; the ack
 *    carries the Global Write Completion Time (the old lease expiry)
 *    which fences use to stall warps.
 *
 * The L2 is inclusive: a block whose lease has not expired cannot be
 * evicted, so fills may stall waiting for a victim (delayed
 * eviction). Fill responses carry the grant cycle in pkt.gwct.
 */

#ifndef GTSC_PROTOCOLS_TC_L2_HH_
#define GTSC_PROTOCOLS_TC_L2_HH_

#include <deque>
#include <map>
#include <vector>

#include "mem/cache_array.hh"
#include "mem/coherence_probe.hh"
#include "mem/controllers.hh"
#include "mem/dram.hh"
#include "mem/main_memory.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/ring_buffer.hh"
#include "sim/slot_pool.hh"
#include "sim/stats.hh"

namespace gtsc::protocols
{

class TcL2 final : public mem::L2Controller
{
  public:
    TcL2(PartitionId part, const sim::Config &cfg, sim::StatSet &stats,
         sim::EventQueue &events, mem::DramChannel &dram,
         mem::MainMemory &memory, bool strong,
         mem::CoherenceProbe *probe);

    void receiveRequest(mem::Packet &&pkt, Cycle now) override;
    void tick(Cycle now) override;

    /**
     * Queued requests, lease-stalled writes and delayed-eviction
     * retries all act (and accrue their stall statistics) every
     * cycle; only a fully drained partition can be skipped.
     */
    Cycle
    nextWorkCycle(Cycle now) const override
    {
        if (queue_.empty() && stalled_.empty() && pendingInserts_.empty())
            return kCycleNever;
        return now + 1;
    }
    void flushAll(Cycle now) override;
    bool quiescent() const override;
    void attachTracer(obs::Tracer &tracer) override;

  private:
    struct MissEntry
    {
        std::vector<mem::Packet> waiters;
    };

    struct PendingInsert
    {
        Addr lineAddr;
        mem::LineData data;
    };

    bool process(mem::Packet &pkt, Cycle now);
    void serveRead(mem::CacheBlock &blk, mem::Packet &pkt, Cycle now);
    void performWrite(mem::CacheBlock &blk, mem::Packet &pkt, Cycle now);
    void onDramFill(Addr line, const mem::LineData &data, Cycle now);
    bool tryInsert(Addr line, const mem::LineData &data, Cycle now);
    void drainStalled(Cycle now);
    void respond(mem::Packet &&resp, Cycle now);

    PartitionId part_;
    sim::StatSet &stats_;
    sim::EventQueue &events_;
    mem::DramChannel &dram_;
    mem::MainMemory &memory_;
    bool strong_;
    mem::CoherenceProbe *probe_;

    mem::CacheArray array_;
    sim::RingBuffer<mem::Packet> queue_;
    sim::PooledKeyMap<Addr, MissEntry> misses_;
    std::vector<mem::Packet> waitersScratch_;
    sim::SlotPool<mem::Packet> respPool_;
    /** Strong mode: per-line ops queued behind a stalled store.
     *  Stays an ordered map: drainStalled must visit lines in
     *  sorted-address order for run-to-run determinism. */
    std::map<Addr, std::deque<mem::Packet>> stalled_;
    /** Fills waiting for an evictable (expired) victim. */
    sim::RingBuffer<PendingInsert> pendingInserts_;

    unsigned ports_;
    Cycle accessLatency_;
    Cycle lease_;
    std::size_t mshrCapacity_;

    std::uint64_t *accesses_;
    std::uint64_t *hits_;
    std::uint64_t *missesStat_;
    std::uint64_t *writes_;
    std::uint64_t *evictions_;
    std::uint64_t *writebacks_;
    std::uint64_t *stallMshrFull_;
    std::uint64_t *writeStallCycles_;
    std::uint64_t *evictStallCycles_;
    std::uint64_t *queueCycles_;
    sim::Distribution *serviceLatency_;

    obs::Tracer *trace_ = nullptr;
    std::uint32_t track_ = 0; ///< obs::Tracer::TrackId
};

} // namespace gtsc::protocols

#endif // GTSC_PROTOCOLS_TC_L2_HH_
