#include "protocols/tc_l2.hh"

#include <algorithm>
#include <string>

#include "obs/tracer.hh"
#include "protocols/message_sizes.hh"
#include "sim/log.hh"

namespace gtsc::protocols
{

TcL2::TcL2(PartitionId part, const sim::Config &cfg, sim::StatSet &stats,
           sim::EventQueue &events, mem::DramChannel &dram,
           mem::MainMemory &memory, bool strong,
           mem::CoherenceProbe *probe)
    : part_(part), stats_(stats), events_(events), dram_(dram),
      memory_(memory), strong_(strong), probe_(probe),
      array_(cfg.getUint("l2.partition_bytes", 128 * 1024),
             cfg.getUint("l2.assoc", 8))
{
    ports_ = static_cast<unsigned>(cfg.getUint("l2.ports", 1));
    accessLatency_ = cfg.getUint("l2.access_latency", 20);
    lease_ = cfg.getUint("tc.lease", 100);
    mshrCapacity_ = cfg.getUint("l2.mshr_entries", 32);

    accesses_ = &stats_.counter("l2.accesses");
    hits_ = &stats_.counter("l2.hits");
    missesStat_ = &stats_.counter("l2.misses");
    writes_ = &stats_.counter("l2.writes");
    evictions_ = &stats_.counter("l2.evictions");
    writebacks_ = &stats_.counter("l2.writebacks");
    stallMshrFull_ = &stats_.counter("l2.stall_mshr_full");
    writeStallCycles_ = &stats_.counter("l2.write_stall_cycles");
    evictStallCycles_ = &stats_.counter("l2.evict_stall_cycles");
    queueCycles_ = &stats_.counter("l2.queue_occupancy_cycles");
    serviceLatency_ = &stats_.distribution("l2.service_latency");
}

void
TcL2::attachTracer(obs::Tracer &tracer)
{
    trace_ = &tracer;
    track_ = tracer.track("l2.part" + std::to_string(part_));
}

bool
TcL2::quiescent() const
{
    return queue_.empty() && misses_.empty() && stalled_.empty() &&
           pendingInserts_.empty();
}

void
TcL2::flushAll(Cycle now)
{
    (void)now;
    GTSC_ASSERT(quiescent(), "TC L2 flush while busy");
    array_.forEachValid([this](mem::CacheBlock &blk) {
        if (blk.dirty)
            memory_.writeLine(blk.lineAddr, array_.dataOf(blk));
        array_.invalidate(blk);
        blk.meta.leaseEnd = 0;
    });
}

void
TcL2::receiveRequest(mem::Packet &&pkt, Cycle now)
{
    queue_.push_back(std::move(pkt));
    wake(now);
}

void
TcL2::respond(mem::Packet &&resp, Cycle now)
{
    std::uint32_t slot = respPool_.acquire();
    respPool_[slot] = std::move(resp);
    events_.schedule(now + accessLatency_, [this, slot]() {
        send_(std::move(respPool_[slot]));
        respPool_.release(slot);
    });
}

void
TcL2::serveRead(mem::CacheBlock &blk, mem::Packet &pkt, Cycle now)
{
    Cycle new_lease = std::max(blk.meta.leaseEnd, now + lease_);
    if (trace_ && new_lease > blk.meta.leaseEnd) {
        trace_->record(track_,
                       obs::Event{now, pkt.lineAddr, blk.meta.leaseEnd,
                                  new_lease, obs::EventKind::LeaseExtend,
                                  pkt.src, pkt.warp});
    }
    blk.meta.leaseEnd = new_lease;
    array_.touch(blk);

    mem::Packet resp;
    resp.type = mem::MsgType::BusFill;
    resp.lineAddr = pkt.lineAddr;
    resp.src = pkt.src;
    resp.part = part_;
    resp.warp = pkt.warp;
    resp.leaseEnd = blk.meta.leaseEnd;
    resp.gwct = now; // grant cycle (checker bookkeeping)
    resp.data = array_.dataOf(blk);
    resp.reqId = pkt.reqId;
    resp.sizeBytes = tcMessageBytes(mem::MsgType::BusFill, 0);
    respond(std::move(resp), now);
}

void
TcL2::performWrite(mem::CacheBlock &blk, mem::Packet &pkt, Cycle now)
{
    Cycle gwct = std::max(now, blk.meta.leaseEnd);
    array_.dataOf(blk).mergeMasked(pkt.data, pkt.wordMask);
    blk.dirty = true;
    array_.touch(blk);
    ++(*writes_);
    if (trace_) {
        trace_->record(track_,
                       obs::Event{now, pkt.lineAddr, now, gwct,
                                  obs::EventKind::WtsUpdate, pkt.src,
                                  pkt.warp});
    }

    if (probe_) {
        for (unsigned w = 0; w < mem::kWordsPerLine; ++w) {
            if (pkt.wordMask & (1u << w)) {
                probe_->onStorePhys(pkt.lineAddr + w * mem::kWordBytes,
                                    now, pkt.data.word(w), pkt.src,
                                    pkt.warp);
            }
        }
    }

    mem::Packet resp;
    resp.type = mem::MsgType::BusWrAck;
    resp.lineAddr = pkt.lineAddr;
    resp.src = pkt.src;
    resp.part = part_;
    resp.warp = pkt.warp;
    resp.gwct = gwct; // TC-Weak fence target; == now for strong
    resp.reqId = pkt.reqId;
    resp.sizeBytes = tcMessageBytes(mem::MsgType::BusWrAck, 0);
    respond(std::move(resp), now);
}

bool
TcL2::process(mem::Packet &pkt, Cycle now)
{
    ++(*accesses_);
    if (pkt.injectedAt > 0) {
        serviceLatency_->sample(static_cast<double>(now - pkt.injectedAt));
        pkt.injectedAt = 0; // waiter replays sample only once
    }

    // Strong mode: anything to a line with stalled ops queues behind
    // them, preserving per-line order ("subsequent reads are
    // delayed until the write is performed").
    auto st = stalled_.find(pkt.lineAddr);
    if (st != stalled_.end()) {
        st->second.push_back(pkt);
        return true;
    }

    mem::CacheBlock *blk = array_.lookup(pkt.lineAddr);
    if (blk) {
        ++(*hits_);
        if (pkt.type == mem::MsgType::BusRd) {
            serveRead(*blk, pkt, now);
        } else if (pkt.type == mem::MsgType::BusWr) {
            if (strong_ && blk->meta.leaseEnd > now) {
                // TC-Strong: delay until every private copy has
                // self-invalidated.
                stalled_[pkt.lineAddr].push_back(pkt);
            } else {
                performWrite(*blk, pkt, now);
            }
        } else {
            GTSC_PANIC("TC L2 unexpected packet ", pkt.toString());
        }
        return true;
    }

    if (MissEntry *pending = misses_.find(pkt.lineAddr)) {
        pending->waiters.push_back(pkt);
        return true;
    }
    if (misses_.size() >= mshrCapacity_)
        return false;

    ++(*missesStat_);
    MissEntry &entry = misses_.emplace(pkt.lineAddr);
    entry.waiters.clear(); // recycled slot: stale waiters possible
    entry.waiters.push_back(pkt);
    Addr line = pkt.lineAddr;
    dram_.pushRead(line, [this, line](const mem::LineData &data) {
        onDramFill(line, data, events_.now());
    });
    return true;
}

bool
TcL2::tryInsert(Addr line, const mem::LineData &data, Cycle now)
{
    // Inclusive cache: only blocks whose lease has expired may be
    // evicted (delayed eviction, Section II-D3). Lines with stalled
    // operations queued on them are pinned as well.
    auto evictable = [this, now](const mem::CacheBlock &b) {
        return b.meta.leaseEnd <= now &&
               stalled_.find(b.lineAddr) == stalled_.end();
    };
    mem::CacheBlock *victim = array_.victim(line, evictable);
    if (!victim)
        return false;
    if (victim->valid) {
        ++(*evictions_);
        if (victim->dirty) {
            ++(*writebacks_);
            dram_.pushWrite(victim->lineAddr,
                            array_.dataOf(*victim), 0xffffffffu);
        }
    }
    array_.insert(*victim, line);
    array_.dataOf(*victim) = data;
    victim->meta.leaseEnd = 0;

    MissEntry *entry = misses_.find(line);
    GTSC_ASSERT(entry, "TC fill without miss entry");
    waitersScratch_.clear();
    waitersScratch_.swap(entry->waiters);
    misses_.erase(line);
    for (auto &w : waitersScratch_) {
        if (!process(w, now))
            GTSC_PANIC("TC waiter replay rejected");
    }
    return true;
}

void
TcL2::onDramFill(Addr line, const mem::LineData &data, Cycle now)
{
    if (!tryInsert(line, data, now))
        pendingInserts_.push_back(PendingInsert{line, data});
    // An event-queue callback that creates tick() work: a deferred
    // insert, or waiters replayed by tryInsert() landing in the
    // stall table (wake contract — per-cycle stall counters included).
    if (!pendingInserts_.empty() || !stalled_.empty())
        wake(now);
}

void
TcL2::drainStalled(Cycle now)
{
    if (!stalled_.empty())
        (*writeStallCycles_) += stalled_.size();
    for (auto it = stalled_.begin(); it != stalled_.end();) {
        auto &q = it->second;
        while (!q.empty()) {
            mem::Packet &head = q.front();
            mem::CacheBlock *blk = array_.lookup(it->first);
            GTSC_ASSERT(blk, "stalled op on non-resident TC line");
            if (head.type == mem::MsgType::BusWr) {
                if (blk->meta.leaseEnd > now)
                    break; // still leased: keep stalling
                performWrite(*blk, head, now);
            } else {
                serveRead(*blk, head, now);
            }
            q.pop_front();
        }
        if (q.empty())
            it = stalled_.erase(it);
        else
            ++it;
    }
}

void
TcL2::tick(Cycle now)
{
    // Retry delayed-eviction fills first.
    if (!pendingInserts_.empty()) {
        (*evictStallCycles_) += pendingInserts_.size();
        while (!pendingInserts_.empty()) {
            PendingInsert &pi = pendingInserts_.front();
            if (!tryInsert(pi.lineAddr, pi.data, now))
                break;
            pendingInserts_.pop_front();
        }
    }

    drainStalled(now);

    if (!queue_.empty())
        (*queueCycles_) += queue_.size();
    for (unsigned i = 0; i < ports_ && !queue_.empty(); ++i) {
        if (!process(queue_.front(), now)) {
            ++(*stallMshrFull_);
            break;
        }
        queue_.pop_front();
    }
}

} // namespace gtsc::protocols
