#include "protocols/noncoh_l1.hh"

#include <string>

#include "obs/tracer.hh"
#include "protocols/message_sizes.hh"
#include "sim/log.hh"

namespace gtsc::protocols
{

NonCohL1::NonCohL1(SmId sm, const sim::Config &cfg, sim::StatSet &stats,
                   sim::EventQueue &events, mem::CoherenceProbe *probe)
    : sm_(sm), stats_(stats), events_(events), probe_(probe),
      array_(cfg.getUint("l1.size_bytes", 16 * 1024),
             cfg.getUint("l1.assoc", 4)),
      mshr_(cfg.getUint("l1.mshr_entries", 32))
{
    numPartitions_ =
        static_cast<unsigned>(cfg.getUint("gpu.num_partitions", 8));
    hitLatency_ = std::max<Cycle>(1, cfg.getUint("l1.hit_latency", 4));

    hits_ = &stats_.counter("l1.hits");
    missCold_ = &stats_.counter("l1.miss_cold");
    merged_ = &stats_.counter("l1.merged");
    busRdSent_ = &stats_.counter("l1.busrd_sent");
    busWrSent_ = &stats_.counter("l1.buswr_sent");
    tagAccesses_ = &stats_.counter("l1.tag_accesses");
    dataReads_ = &stats_.counter("l1.data_reads");
    dataWrites_ = &stats_.counter("l1.data_writes");
    rejects_ = &stats_.counter("l1.rejects_mshr_full");
}

void
NonCohL1::attachTracer(obs::Tracer &tracer)
{
    trace_ = &tracer;
    track_ = tracer.track("l1.sm" + std::to_string(sm_));
    mshr_.setTrace(&tracer, track_, &events_);
}

bool
NonCohL1::quiescent() const
{
    return mshr_.size() == 0 && pendingStores_.empty();
}

void
NonCohL1::flush(Cycle now)
{
    (void)now;
    GTSC_ASSERT(quiescent(), "L1 flush while busy");
    array_.invalidateAll();
}

void
NonCohL1::completeLoad(const mem::Access &acc, const mem::LineData &data,
                       bool hit, Cycle grant, Cycle now)
{
    std::uint32_t slot = loadReplies_.acquire();
    LoadReply &rec = loadReplies_[slot];
    rec.acc = acc;
    mem::AccessResult &res = rec.res;
    res.data = data;
    res.l1Hit = hit;
    res.loadTs = 0; // recycled slot: reset every field
    res.epoch = 0;
    res.leaseGrant = grant;
    if (probe_) {
        // Words covered by this SM's own in-flight stores are store
        // forwarding (the value is not globally performed yet), not
        // a memory observation.
        std::uint32_t forwarded = 0;
        pendingStores_.forEach(
            [&](std::uint64_t, const mem::Access &st) {
                if (st.lineAddr == acc.lineAddr)
                    forwarded |= st.wordMask;
            });
        for (unsigned w = 0; w < mem::kWordsPerLine; ++w) {
            if ((acc.wordMask & (1u << w)) &&
                !(forwarded & (1u << w))) {
                probe_->onLoadPhys(acc.lineAddr + w * mem::kWordBytes,
                                   grant, now, data.word(w), sm_,
                                   acc.warp);
            }
        }
    }
    Cycle delay = hit ? hitLatency_ : 1;
    events_.schedule(now + delay, [this, slot]() {
        LoadReply &r = loadReplies_[slot];
        loadDone_(r.acc, r.res);
        loadReplies_.release(slot);
    });
}

bool
NonCohL1::access(const mem::Access &acc, Cycle now)
{
    ++(*tagAccesses_);
    mem::CacheBlock *blk = array_.lookup(acc.lineAddr);

    if (acc.isStore) {
        // Write-through, no allocate; keep the local copy updated so
        // the SM's own later reads see its writes.
        if (blk) {
            array_.dataOf(*blk).mergeMasked(acc.storeData,
                                            acc.wordMask);
            ++(*dataWrites_);
        }
        pendingStores_[acc.id] = acc;
        mem::Packet pkt;
        pkt.type = mem::MsgType::BusWr;
        pkt.lineAddr = acc.lineAddr;
        pkt.src = sm_;
        pkt.part = mem::partitionOf(acc.lineAddr, numPartitions_);
        pkt.warp = acc.warp;
        pkt.wordMask = acc.wordMask;
        pkt.data = acc.storeData;
        pkt.reqId = acc.id;
        pkt.sizeBytes =
            baselineMessageBytes(mem::MsgType::BusWr, acc.wordMask);
        ++(*busWrSent_);
        send_(std::move(pkt));
        return true;
    }

    if (blk) {
        array_.touch(*blk);
        ++(*hits_);
        ++(*dataReads_);
        if (trace_) {
            trace_->record(track_,
                           obs::Event{now, acc.lineAddr,
                                      blk->meta.grant, 0,
                                      obs::EventKind::L1Hit, acc.warp,
                                      0});
        }
        completeLoad(acc, array_.dataOf(*blk), true,
                     blk->meta.grant, now);
        return true;
    }

    if (mem::MshrEntry *entry = mshr_.find(acc.lineAddr)) {
        entry->waiters.push_back(acc);
        ++(*merged_);
        return true;
    }
    mem::MshrEntry *entry = mshr_.alloc(acc.lineAddr);
    if (!entry) {
        ++(*rejects_);
        return false;
    }
    ++(*missCold_);
    if (trace_) {
        trace_->record(track_,
                       obs::Event{now, acc.lineAddr, 0, 0,
                                  obs::EventKind::L1MissCold, acc.warp,
                                  0});
    }
    entry->requestSent = true;
    entry->waiters.push_back(acc);

    mem::Packet pkt;
    pkt.type = mem::MsgType::BusRd;
    pkt.lineAddr = acc.lineAddr;
    pkt.src = sm_;
    pkt.part = mem::partitionOf(acc.lineAddr, numPartitions_);
    pkt.warp = acc.warp;
    pkt.sizeBytes = baselineMessageBytes(mem::MsgType::BusRd, 0);
    ++(*busRdSent_);
    send_(std::move(pkt));
    return true;
}

void
NonCohL1::receiveResponse(mem::Packet &&pkt, Cycle now)
{
    if (pkt.type == mem::MsgType::BusWrAck) {
        mem::Access *pending = pendingStores_.find(pkt.reqId);
        GTSC_ASSERT(pending, "ack without pending store");
        mem::Access acc = *pending;
        pendingStores_.erase(pkt.reqId);
        storeDone_(acc, 0);
        return;
    }
    GTSC_ASSERT(pkt.type == mem::MsgType::BusFill,
                "NonCoh L1 unexpected response ", pkt.toString());

    mem::CacheBlock *blk = array_.lookup(pkt.lineAddr);
    if (!blk) {
        mem::CacheBlock *victim = array_.victim(pkt.lineAddr);
        if (victim) {
            array_.insert(*victim, pkt.lineAddr);
            blk = victim;
        }
    }
    if (blk) {
        array_.dataOf(*blk) = pkt.data;
        blk->meta.grant = pkt.gwct;
        array_.touch(*blk);
    }

    if (mem::MshrEntry *entry = mshr_.find(pkt.lineAddr)) {
        waitersScratch_.clear();
        waitersScratch_.swap(entry->waiters);
        mshr_.free(pkt.lineAddr);
        for (const auto &acc : waitersScratch_)
            completeLoad(acc, pkt.data, false, pkt.gwct, now);
    }
}

} // namespace gtsc::protocols
